// Admission planner CLI: capacity-plan a MicroEdge cluster from a YAML
// scenario without touching hardware.
//
//   admission_planner [scenario.yaml] [--simulate[=seconds]]
//
// Planning shows placements/rejections instantly; --simulate additionally
// streams the fleet on the simulated data plane and reports measured FPS,
// latency and utilization. With no scenario file, a built-in demo runs: a
// mixed fleet on the paper's 6-TPU pool, showing fractional placement,
// workload partitioning, the Model Size Rule steering co-residency, and
// explicit rejections.

#include <fstream>
#include <iostream>
#include <sstream>

#include "models/zoo.hpp"
#include "testbed/planner.hpp"

using namespace microedge;

namespace {

constexpr const char* kDemoScenario = R"(# MicroEdge capacity-planning demo
cluster:
  tpus: 6
scheduler:
  mode: microedge-wp
  co-compile: true
  strategy: first-fit
pods:
  - name: gate-cam-0
    model: ssd-mobilenet-v2
    fps: 15
  - name: gate-cam-1
    model: ssd-mobilenet-v2
    fps: 15
  - name: gate-cam-2
    model: ssd-mobilenet-v2
    fps: 15
  - name: lobby-seg-0          # 1.2 units: must be partitioned
    model: bodypix-mobilenet-v1
    fps: 15
  - name: lobby-seg-1
    model: bodypix-mobilenet-v1
    fps: 15
  - name: kiosk-classifier     # tiny; co-compiles into residuals
    model: mobilenet-v1
    fps: 30
  - name: heavy-classifier     # 25 MB of parameters: needs an empty TPU
    model: resnet-50
    tpu-units: 0.9
  - name: late-arrival         # likely rejected once the pool is full
    model: efficientdet-lite0
    fps: 15
)";

}  // namespace

int main(int argc, char** argv) {
  std::string yaml;
  bool simulate = false;
  double simulateSeconds = 30.0;
  std::string scenarioPath;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--simulate", 0) == 0) {
      simulate = true;
      auto eq = arg.find('=');
      if (eq != std::string::npos) {
        simulateSeconds = std::atof(arg.c_str() + eq + 1);
        if (simulateSeconds <= 0) simulateSeconds = 30.0;
      }
    } else {
      scenarioPath = arg;
    }
  }

  if (!scenarioPath.empty()) {
    std::ifstream file(scenarioPath);
    if (!file) {
      std::cerr << "cannot open " << scenarioPath << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    yaml = buffer.str();
  } else {
    std::cout << "(no scenario file given; using the built-in demo)\n\n"
              << kDemoScenario << "\n";
    yaml = kDemoScenario;
    simulate = true;  // the demo shows the full flow
  }

  ModelRegistry registry = zoo::standardZoo();
  auto scenario = scenarioFromYaml(yaml, registry);
  if (!scenario.isOk()) {
    std::cerr << "scenario error: " << scenario.status() << "\n";
    return 1;
  }
  PlannerResult result = planScenario(*scenario, registry);
  std::cout << renderPlan(*scenario, result);

  if (simulate) {
    SimDuration horizon = secondsF(simulateSeconds);
    SimulationOutcome outcome = simulateScenario(*scenario, horizon);
    std::cout << renderSimulation(*scenario, outcome, horizon);
  }
  return result.rejected > 0 && !scenarioPath.empty() ? 2 : 0;
}
