// Quickstart: deploy one camera application on a MicroEdge cluster and watch
// the SLO and latency breakdown.
//
// Walks the public API end to end:
//   1. boot the paper's reference cluster (25 RPis, 6 Coral TPUs);
//   2. submit a pod spec written in YAML, with the two MicroEdge extension
//      knobs (model + tpu-units);
//   3. let the extended scheduler admit it (fractional TPU allocation, model
//      load, LB weights);
//   4. stream 15 FPS camera frames through the shared TPU Service;
//   5. print throughput, per-frame latency components, and TPU utilization.

#include <iostream>

#include "metrics/report.hpp"
#include "orch/spec.hpp"
#include "testbed/testbed.hpp"
#include "util/strings.hpp"

using namespace microedge;

int main() {
  // 1. Boot the cluster.
  Testbed testbed;
  std::cout << "cluster: " << testbed.topology().nodes().size() << " RPis, "
            << testbed.pool().size() << " Coral TPUs\n";

  // 2. The client-facing YAML (the §4.1 interface). The tpu-units value
  //    comes from MicroEdge's offline profiling service:
  double units = testbed.profiledUnits(zoo::kSsdMobileNetV2, 15.0);
  std::string yaml = strCat(
      "name: quickstart-cam\n"
      "image: coral-pie:1.4\n"
      "fps: 15\n"
      "resources:\n"
      "  cpu: 1000m\n"
      "  memory: 512Mi\n"
      "  tpu-units: ", fmtDouble(units, 2), "\n"
      "  model: ", zoo::kSsdMobileNetV2, "\n");
  std::cout << "\nsubmitting pod spec:\n" << yaml << "\n";
  auto spec = podSpecFromYaml(yaml);
  if (!spec.isOk()) {
    std::cerr << "bad spec: " << spec.status() << "\n";
    return 1;
  }

  // 3+4. Deploy through the harness (createPod + client + frame source).
  CameraDeployment deployment;
  deployment.name = spec->name;
  deployment.model = spec->tpu->model;
  deployment.tpuUnits = spec->tpu->tpuUnits;
  deployment.fps = spec->fps;
  auto camera = testbed.deployCamera(deployment);
  if (!camera.isOk()) {
    std::cerr << "deployment rejected: " << camera.status() << "\n";
    return 1;
  }
  const Pod* pod = testbed.api().findPodByName(deployment.name);
  std::cout << "pod bound to " << pod->nodeName << "; TPU shares:";
  for (const LbWeight& w : testbed.scheduler().lbConfig(pod->uid)->weights) {
    std::cout << " " << w.tpuId << "=" << w.weight << "m";
  }
  std::cout << "\n\nstreaming 30 seconds of 15 FPS video...\n";

  // 5. Run and report.
  testbed.run(seconds(30));
  const CameraPipeline& pipeline = **camera;
  std::cout << "\nframes completed: " << pipeline.slo().completed()
            << ", achieved FPS: " << fmtDouble(pipeline.slo().achievedFps(), 2)
            << ", SLO " << (pipeline.slo().sloMet() ? "met" : "MISSED") << "\n";
  std::cout << "\n" << pipeline.breakdown().render("per-frame latency");
  std::cout << "\nmean TPU utilization: "
            << fmtDouble(testbed.meanTpuUtilization() * 100.0, 1)
            << "% (one 0.35-unit tenant on a 6-TPU pool — room for "
            << "16 more cameras; see examples/vehicle_tracking)\n";
  return 0;
}
