// Dynamic fleet: cameras that come and go (the §6.3 scenario).
//
// Replays a seeded MAF-style trace — 24x7 detection streams, sparse
// classification wake-ups, bursty segmentation events — against the full
// MicroEdge stack. Admission control accepts what fits, the reclamation
// poller returns TPU units when streams retire, and the pool's utilization
// breathes with the workload.

#include <iostream>

#include "metrics/report.hpp"
#include "testbed/scenarios.hpp"
#include "util/strings.hpp"

using namespace microedge;

int main() {
  TraceScenarioConfig config;
  config.trace = MafTraceGenerator::paperDefaults();
  config.trace.horizon = minutes(12);
  config.trace.seed = 7;
  config.capacityUnits = 7.0;
  config.sampleWindow = minutes(1);
  config.testbed.mode = SchedulingMode::kMicroEdgeWp;
  config.testbed.enableCoCompile = true;

  std::cout << "replaying a " << toSeconds(config.trace.horizon) / 60.0
            << "-minute trace (continuous=" << config.trace.continuousModel
            << ", sparse=" << config.trace.sparseModel
            << ", bursty=" << config.trace.burstyModel << ")...\n";

  TraceRunResult result = runTraceScenario(config);

  std::cout << banner("fleet timeline");
  TextTable table({"minute", "cameras served", "mean TPU utilization"});
  for (std::size_t w = 0; w < result.activePerWindow.size(); ++w) {
    table.addRow({std::to_string(w + 1),
                  std::to_string(result.activePerWindow[w]),
                  w < result.utilizationPerWindow.size()
                      ? fmtDouble(result.utilizationPerWindow[w] * 100.0, 1) + "%"
                      : "-"});
  }
  std::cout << table.render();

  std::cout << "\nstream deployments: " << result.attempted << " attempted, "
            << result.accepted << " admitted, " << result.rejected
            << " rejected by admission control\n";
  std::cout << "streams meeting SLO: " << result.slo.streamsMeetingSlo << "/"
            << result.slo.streams << "\n";
  std::cout << "\nAdmission only accepts duty cycles the TPUs can absorb, so\n"
               "admitted streams (essentially all of them) keep their\n"
               "throughput SLO; rejected requests fail fast at deployment\n"
               "time instead of degrading everyone at runtime.\n";
  return 0;
}
