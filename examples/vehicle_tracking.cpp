// Vehicle tracking: a Coral-Pie-style geo-distributed camera chain.
//
// Four cameras along a corridor run the full Coral-Pie pipeline — NoScope
// difference detector, SSD MobileNet V2 detection on shared TPUs, and a
// re-identification stage on a second RPi that receives upstream
// notifications and constructs space-time tracks. All four share the
// MicroEdge TPU pool (4 x 0.35 = 1.4 TPUs instead of 4 dedicated ones).

#include <iostream>

#include "metrics/report.hpp"
#include "testbed/testbed.hpp"
#include "util/strings.hpp"

using namespace microedge;

int main() {
  Testbed testbed;

  constexpr int kCameras = 4;
  std::vector<CoralPieApp*> chain;
  for (int i = 0; i < kCameras; ++i) {
    CameraDeployment deployment;
    deployment.name = "corridor-cam-" + std::to_string(i);
    deployment.model = zoo::kSsdMobileNetV2;
    deployment.fps = 15.0;
    deployment.useDiffDetector = true;
    auto app = testbed.deployCoralPie(deployment);
    if (!app.isOk()) {
      std::cerr << "deploy failed: " << app.status() << "\n";
      return 1;
    }
    chain.push_back(*app);
  }
  // Wire the corridor: camera i notifies camera i+1 about leaving vehicles.
  for (int i = 0; i + 1 < kCameras; ++i) {
    chain[i]->linkDownstream(chain[i + 1]);
  }
  std::cout << "deployed " << kCameras
            << " Coral-Pie instances (detection pod + re-id pod each);\n"
            << "TPU pool load: "
            << testbed.pool().totalLoad().toString() << " units across "
            << testbed.pool().usedTpuCount() << " TPU(s)\n\n"
            << "running 3 minutes of corridor traffic...\n\n";

  testbed.run(minutes(3));

  TextTable table({"camera", "frames inferred", "frames filtered",
                   "vehicles seen", "re-identified", "new tracks"});
  for (int i = 0; i < kCameras; ++i) {
    CoralPieApp* app = chain[i];
    const DiffDetector* diff = app->detection().diffDetector();
    table.addRow({app->name(),
                  std::to_string(app->detection().slo().completed()),
                  std::to_string(diff ? diff->suppressedCount() : 0),
                  std::to_string(app->vehiclesReported()),
                  std::to_string(app->reid().reIdentifiedCount()),
                  std::to_string(app->reid().newTrackCount())});
  }
  std::cout << table.render();

  SloReport slo = testbed.sloReport();
  std::cout << "\nstreams meeting SLO: " << slo.streamsMeetingSlo << "/"
            << slo.streams << ", p99 frame latency "
            << fmtDouble(slo.p99LatencyMs, 1) << " ms\n";
  std::cout << "mean TPU utilization: "
            << fmtDouble(testbed.meanTpuUtilization() * 100.0, 1)
            << "% (the difference detector suppresses quiet-road frames,\n"
               "leaving even more headroom than the 0.35-unit profile)\n";
  return 0;
}
