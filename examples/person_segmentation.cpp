// Person segmentation: BodyPix, the paper's "heavy model" application.
//
// BodyPix MobileNet V1 costs 1.2 TPU units at 15 FPS — more than one whole
// TPU — so no single device can serve a camera. MicroEdge's workload
// partitioning fans successive frames across two TPU Services with weights
// chosen by admission control; the bare-metal alternative burns two
// dedicated TPUs per camera. This example deploys three segmentation
// cameras onto the 6-TPU pool and shows the weight split, the per-TPU frame
// counts, occupancy analytics, and utilization.

#include <iostream>

#include "metrics/report.hpp"
#include "testbed/testbed.hpp"
#include "util/strings.hpp"

using namespace microedge;

int main() {
  Testbed testbed;
  std::cout << "BodyPix at 15 FPS needs "
            << fmtDouble(testbed.profiledUnits(zoo::kBodyPixMobileNetV1, 15.0), 2)
            << " TPU units -> every camera must span TPUs.\n\n";

  constexpr int kCameras = 3;
  std::vector<BodyPixApp*> apps;
  for (int i = 0; i < kCameras; ++i) {
    CameraDeployment deployment;
    deployment.name = "lobby-cam-" + std::to_string(i);
    deployment.model = zoo::kBodyPixMobileNetV1;
    deployment.fps = 15.0;
    auto app = testbed.deployBodyPix(deployment);
    if (!app.isOk()) {
      std::cerr << "deploy failed: " << app.status() << "\n";
      return 1;
    }
    apps.push_back(*app);
    const Pod* pod = testbed.api().findPodByName(deployment.name);
    std::cout << deployment.name << " partition:";
    for (const LbWeight& w : testbed.scheduler().lbConfig(pod->uid)->weights) {
      std::cout << " " << w.tpuId << "=" << fmtDouble(w.weight / 1000.0, 2);
    }
    std::cout << "\n";
  }

  std::cout << "\npool after admission: "
            << testbed.pool().totalLoad().toString() << " units on "
            << testbed.pool().usedTpuCount() << " TPUs\n"
            << "running 60 seconds...\n\n";
  testbed.run(seconds(60));

  TextTable table({"camera", "frames", "achieved FPS", "p99 latency (ms)",
                   "mean occupancy", "frames w/ people"});
  for (BodyPixApp* app : apps) {
    const SloMonitor& slo = app->pipeline().slo();
    table.addRow({app->name(), std::to_string(slo.completed()),
                  fmtDouble(slo.achievedFps(), 2),
                  fmtDouble(slo.latency().p99Ms(), 1),
                  fmtDouble(app->occupancy().mean(), 3),
                  std::to_string(app->framesWithPeople())});
  }
  std::cout << table.render();

  std::cout << "\nper-TPU frames served:\n";
  for (TpuService* service : testbed.dataPlane().services()) {
    if (service->invokeCount() == 0) continue;
    std::cout << "  " << service->tpuId() << ": " << service->invokeCount()
              << " invokes, utilization "
              << fmtDouble(toSeconds(service->device().busyTime()) /
                               toSeconds(testbed.sim().now() - kSimEpoch) *
                               100.0,
                           1)
              << "%\n";
  }
  std::cout << "\n3 cameras x 1.2 units = 3.6 TPUs of real demand on "
            << testbed.pool().size()
            << " TPUs; the baseline would already need "
            << kCameras * 2 << " dedicated TPUs.\n";
  return 0;
}
