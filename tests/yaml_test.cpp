// YAML-subset parser tests: the accepted grammar, error handling and scalar
// coercions.

#include <gtest/gtest.h>

#include "orch/yaml.hpp"
#include "util/rng.hpp"

namespace microedge {
namespace {

TEST(YamlTest, FlatMapping) {
  auto doc = parseYaml("name: cam-1\nimage: app:1.0\n");
  ASSERT_TRUE(doc.isOk());
  ASSERT_TRUE(doc->isMapping());
  EXPECT_EQ(doc->find("name")->scalar(), "cam-1");
  EXPECT_EQ(doc->find("image")->scalar(), "app:1.0");
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(YamlTest, NestedMapping) {
  auto doc = parseYaml(
      "resources:\n"
      "  cpu: 500m\n"
      "  memory: 256Mi\n"
      "fps: 15\n");
  ASSERT_TRUE(doc.isOk());
  const YamlNode* res = doc->find("resources");
  ASSERT_NE(res, nullptr);
  ASSERT_TRUE(res->isMapping());
  EXPECT_EQ(res->find("cpu")->scalar(), "500m");
  EXPECT_EQ(doc->find("fps")->scalar(), "15");
}

TEST(YamlTest, DeepNesting) {
  auto doc = parseYaml(
      "a:\n"
      "  b:\n"
      "    c: deep\n"
      "  d: shallow\n");
  ASSERT_TRUE(doc.isOk());
  EXPECT_EQ(doc->find("a")->find("b")->find("c")->scalar(), "deep");
  EXPECT_EQ(doc->find("a")->find("d")->scalar(), "shallow");
}

TEST(YamlTest, Sequences) {
  auto doc = parseYaml(
      "models:\n"
      "  - ssd-mobilenet-v2\n"
      "  - mobilenet-v1\n");
  ASSERT_TRUE(doc.isOk());
  const YamlNode* models = doc->find("models");
  ASSERT_NE(models, nullptr);
  ASSERT_TRUE(models->isSequence());
  ASSERT_EQ(models->items().size(), 2u);
  EXPECT_EQ(models->items()[0].scalar(), "ssd-mobilenet-v2");
}

TEST(YamlTest, SequenceOfMappings) {
  auto doc = parseYaml(
      "pods:\n"
      "  - name: a\n"
      "    fps: 15\n"
      "  - name: b\n"
      "    fps: 10\n");
  ASSERT_TRUE(doc.isOk());
  const YamlNode* pods = doc->find("pods");
  ASSERT_TRUE(pods->isSequence());
  ASSERT_EQ(pods->items().size(), 2u);
  EXPECT_EQ(pods->items()[0].find("name")->scalar(), "a");
  EXPECT_EQ(pods->items()[1].find("fps")->scalar(), "10");
}

TEST(YamlTest, CommentsAndBlankLines) {
  auto doc = parseYaml(
      "# full-line comment\n"
      "\n"
      "name: cam-1  # trailing comment\n"
      "image: \"app # not a comment\"\n");
  ASSERT_TRUE(doc.isOk());
  EXPECT_EQ(doc->find("name")->scalar(), "cam-1");
  EXPECT_EQ(doc->find("image")->scalar(), "app # not a comment");
}

TEST(YamlTest, QuotedScalars) {
  auto doc = parseYaml("a: 'single'\nb: \"double\"\nc: plain\n");
  ASSERT_TRUE(doc.isOk());
  EXPECT_EQ(doc->find("a")->scalar(), "single");
  EXPECT_EQ(doc->find("b")->scalar(), "double");
  EXPECT_EQ(doc->find("c")->scalar(), "plain");
}

TEST(YamlTest, EmptyDocumentIsNull) {
  auto doc = parseYaml("\n# nothing here\n");
  ASSERT_TRUE(doc.isOk());
  EXPECT_TRUE(doc->isNull());
}

TEST(YamlTest, NullValueForKeyWithoutChildren) {
  auto doc = parseYaml("a:\nb: 1\n");
  ASSERT_TRUE(doc.isOk());
  EXPECT_TRUE(doc->find("a")->isNull());
}

TEST(YamlTest, ScalarCoercions) {
  auto doc = parseYaml("d: 0.35\ni: 42\nt: true\nf: off\nbad: abc\n");
  ASSERT_TRUE(doc.isOk());
  EXPECT_NEAR(*doc->find("d")->asDouble(), 0.35, 1e-12);
  EXPECT_EQ(*doc->find("i")->asLong(), 42);
  EXPECT_TRUE(*doc->find("t")->asBool());
  EXPECT_FALSE(*doc->find("f")->asBool());
  EXPECT_FALSE(doc->find("bad")->asDouble().isOk());
  EXPECT_FALSE(doc->find("bad")->asBool().isOk());
}

TEST(YamlTest, RejectsTabs) {
  auto doc = parseYaml("a:\n\tb: 1\n");
  EXPECT_FALSE(doc.isOk());
}

TEST(YamlTest, RejectsDuplicateKeys) {
  auto doc = parseYaml("a: 1\na: 2\n");
  EXPECT_FALSE(doc.isOk());
  EXPECT_NE(doc.status().message().find("duplicate"), std::string::npos);
}

TEST(YamlTest, RejectsBareText) {
  EXPECT_FALSE(parseYaml("just some text\n").isOk());
}

TEST(YamlTest, ErrorMessagesCarryLineNumbers) {
  auto doc = parseYaml("a: 1\nb: 2\nb: 3\n");
  ASSERT_FALSE(doc.isOk());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos);
}

TEST(YamlTest, ColonInsideQuotedValueIsNotAKey) {
  auto doc = parseYaml("image: \"repo:tag\"\n");
  ASSERT_TRUE(doc.isOk());
  EXPECT_EQ(doc->find("image")->scalar(), "repo:tag");
}

TEST(YamlTest, FuzzedInputsNeverCrash) {
  // Random mutations of a valid document: the parser must always return (a
  // document or a clean error), never crash or hang.
  const std::string base =
      "name: cam-1\n"
      "resources:\n"
      "  cpu: 500m\n"
      "  memory: 256Mi\n"
      "  tpu-units: 0.35\n"
      "  model: ssd-mobilenet-v2\n"
      "labels:\n"
      "  app: camera\n"
      "pods:\n"
      "  - a\n"
      "  - b: 1\n";
  Pcg32 rng(20260704);
  const std::string charset = " \t\n:-#\"'abz019.";
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 600; ++trial) {
    std::string doc = base;
    int mutations = 1 + static_cast<int>(rng.nextBounded(6));
    for (int m = 0; m < mutations; ++m) {
      if (doc.empty()) break;
      std::size_t pos = rng.nextBounded(static_cast<std::uint32_t>(doc.size()));
      switch (rng.nextBounded(3)) {
        case 0:  // replace
          doc[pos] = charset[rng.nextBounded(
              static_cast<std::uint32_t>(charset.size()))];
          break;
        case 1:  // insert
          doc.insert(doc.begin() + static_cast<std::ptrdiff_t>(pos),
                     charset[rng.nextBounded(
                         static_cast<std::uint32_t>(charset.size()))]);
          break;
        default:  // delete
          doc.erase(doc.begin() + static_cast<std::ptrdiff_t>(pos));
          break;
      }
    }
    auto result = parseYaml(doc);
    result.isOk() ? ++parsed : ++rejected;
    if (!result.isOk()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  // Both outcomes should occur across 600 mutated documents.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(YamlTest, KeysKeepDocumentOrder) {
  auto doc = parseYaml("z: 1\na: 2\nm: 3\n");
  ASSERT_TRUE(doc.isOk());
  ASSERT_EQ(doc->entries().size(), 3u);
  EXPECT_EQ(doc->entries()[0].first, "z");
  EXPECT_EQ(doc->entries()[1].first, "a");
  EXPECT_EQ(doc->entries()[2].first, "m");
}

}  // namespace
}  // namespace microedge
