// src/sweep: grid enumeration, seed derivation, the work-stealing runner's
// determinism contract (merged bytes = f(grid, point function) for any
// thread/shard/resume history), checkpoint manifests, and the InternScope
// isolation that makes a worker's run bit-identical to a solo run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "sweep/checkpoint.hpp"
#include "sweep/drivers.hpp"
#include "sweep/grid.hpp"
#include "sweep/runner.hpp"
#include "sweep/shard.hpp"
#include "sweep/thread_pool.hpp"
#include "util/intern.hpp"
#include "util/strings.hpp"

namespace microedge {
namespace {

SweepGrid testGrid() {
  return SweepGrid::cartesian(
      "unit",
      {SweepGrid::Axis{"a", {JsonValue(1), JsonValue(2), JsonValue(3)}},
       SweepGrid::Axis{"b", {JsonValue("x"), JsonValue("y")}}},
      /*baseSeed=*/42);
}

// Deterministic synthetic point function: cheap, pure in (values, seed).
JsonValue syntheticPoint(const SweepPoint& p) {
  JsonValue r = JsonValue::object();
  r.set("a", p.getInt("a", -1));
  r.set("b", p.getString("b", "?"));
  r.set("seed_lo", static_cast<std::int64_t>(p.seed & 0xffff));
  return r;
}

// TempDir() is shared across test runs; claiming a path removes any stale
// file a previous run left behind.
std::string tempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "sweep_" + name;
  std::remove(path.c_str());
  return path;
}

// ---------------------------------------------------------------- grid --

TEST(SweepGridTest, CartesianEnumerationRowMajorLastAxisFastest) {
  SweepGrid grid = testGrid();
  ASSERT_EQ(grid.pointCount(), 6u);
  // Order: (1,x) (1,y) (2,x) (2,y) (3,x) (3,y).
  std::vector<std::pair<std::int64_t, std::string>> expect = {
      {1, "x"}, {1, "y"}, {2, "x"}, {2, "y"}, {3, "x"}, {3, "y"}};
  for (std::size_t i = 0; i < grid.pointCount(); ++i) {
    SweepPoint p = grid.point(i);
    EXPECT_EQ(p.index, i);
    EXPECT_EQ(p.getInt("a", -1), expect[i].first) << i;
    EXPECT_EQ(p.getString("b", "?"), expect[i].second) << i;
    ASSERT_EQ(p.coords.size(), 2u);
    EXPECT_EQ(p.coords[0], i / 2);
    EXPECT_EQ(p.coords[1], i % 2);
  }
}

TEST(SweepGridTest, ExplicitPointsKeepListOrder) {
  JsonValue p0 = JsonValue::object();
  p0.set("label", "first");
  JsonValue p1 = JsonValue::object();
  p1.set("label", "second");
  SweepGrid grid =
      SweepGrid::explicitPoints("variants", {p0, p1}, /*baseSeed=*/9);
  ASSERT_EQ(grid.pointCount(), 2u);
  EXPECT_TRUE(grid.isExplicit());
  EXPECT_EQ(grid.point(0).getString("label", ""), "first");
  EXPECT_EQ(grid.point(1).getString("label", ""), "second");
  // Explicit points are addressed by list position.
  EXPECT_EQ(grid.point(1).coords, (std::vector<std::size_t>{1}));
}

TEST(SweepGridTest, JsonRoundTripPreservesIdentity) {
  SweepGrid grid = testGrid();
  grid.setDriver("scalability");
  auto back = SweepGrid::fromJson(grid.toJson());
  ASSERT_TRUE(back.isOk());
  EXPECT_EQ(back->name(), grid.name());
  EXPECT_EQ(back->driver(), grid.driver());
  EXPECT_EQ(back->baseSeed(), grid.baseSeed());
  EXPECT_EQ(back->fingerprint(), grid.fingerprint());
  ASSERT_EQ(back->pointCount(), grid.pointCount());
  for (std::size_t i = 0; i < grid.pointCount(); ++i) {
    EXPECT_EQ(back->point(i).values.dump(), grid.point(i).values.dump()) << i;
    EXPECT_EQ(back->point(i).seed, grid.point(i).seed) << i;
  }
}

TEST(SweepGridTest, FromJsonTextRejectsGarbage) {
  EXPECT_FALSE(SweepGrid::fromJsonText("{not json").isOk());
}

TEST(SweepGridTest, FingerprintSeparatesGrids) {
  SweepGrid a = testGrid();
  SweepGrid b = SweepGrid::cartesian(
      "unit",
      {SweepGrid::Axis{"a", {JsonValue(1), JsonValue(2), JsonValue(3)}},
       SweepGrid::Axis{"b", {JsonValue("x"), JsonValue("y")}}},
      /*baseSeed=*/43);  // only the base seed differs
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), testGrid().fingerprint());
}

TEST(SweepGridTest, SeedDerivationIsCoordinatePure) {
  // Same coords + base -> same seed; any coordinate or base change -> a
  // different seed. Nothing about threads or order can enter.
  EXPECT_EQ(deriveSweepSeed(7, {1, 2}), deriveSweepSeed(7, {1, 2}));
  EXPECT_NE(deriveSweepSeed(7, {1, 2}), deriveSweepSeed(8, {1, 2}));
  EXPECT_NE(deriveSweepSeed(7, {1, 2}), deriveSweepSeed(7, {2, 1}));
  EXPECT_NE(deriveSweepSeed(7, {1, 2}), deriveSweepSeed(7, {1, 2, 0}));

  SweepGrid grid = testGrid();
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < grid.pointCount(); ++i) {
    seeds.insert(grid.point(i).seed);
  }
  EXPECT_EQ(seeds.size(), grid.pointCount());  // all distinct
}

// ---------------------------------------------------------------- pool --

TEST(WorkStealingPoolTest, RunsEveryTaskExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    std::atomic<int> calls{0};
    std::vector<std::atomic<int>> per(64);
    std::vector<WorkStealingPool::Task> tasks;
    for (std::size_t i = 0; i < per.size(); ++i) {
      tasks.push_back([&, i] {
        per[i].fetch_add(1);
        calls.fetch_add(1);
      });
    }
    WorkStealingPool pool(threads);
    pool.run(std::move(tasks));
    EXPECT_EQ(calls.load(), 64) << threads << " threads";
    for (std::size_t i = 0; i < per.size(); ++i) {
      EXPECT_EQ(per[i].load(), 1) << "task " << i;
    }
  }
}

// -------------------------------------------------------------- runner --

TEST(SweepRunnerTest, SerialRunProducesCanonicalMerge) {
  SweepOptions options;  // threads=1, in-memory
  auto report = runSweep(testGrid(), syntheticPoint, options);
  ASSERT_TRUE(report.isOk());
  EXPECT_TRUE(report->complete);
  EXPECT_EQ(report->ran, 6u);
  EXPECT_EQ(report->resumed, 0u);

  const JsonValue& merged = report->merged;
  EXPECT_EQ(merged.getString("grid", ""), "unit");
  EXPECT_EQ(merged.getString("fingerprint", ""), testGrid().fingerprint());
  const auto& points = merged.find("points")->items();
  ASSERT_EQ(points.size(), 6u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].getInt("i", -1), static_cast<std::int64_t>(i));
    SweepPoint p = testGrid().point(i);
    EXPECT_EQ(points[i].find("config")->dump(), p.values.dump());
    EXPECT_EQ(points[i].find("seed")->asUint(), p.seed);
    EXPECT_EQ(points[i].find("result")->getInt("a", -2), p.getInt("a", -1));
  }
}

TEST(SweepRunnerTest, EmptyGridIsAnError) {
  SweepGrid empty;
  SweepOptions options;
  EXPECT_FALSE(runSweep(empty, syntheticPoint, options).isOk());
}

TEST(SweepRunnerTest, ShardingRequiresAnOutputPath) {
  SweepOptions options;
  options.shards = 4;  // no outPath
  EXPECT_FALSE(runSweep(testGrid(), syntheticPoint, options).isOk());
}

TEST(SweepRunnerTest, MergedBytesIdenticalAcrossThreadsAndShards) {
  // The subsystem's central property: every (threads, shards) combination
  // writes the same bytes.
  std::string reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      std::string out = tempPath(strCat("det_t", threads, "_s", shards,
                                        ".json"));
      SweepOptions options;
      options.threads = threads;
      options.shards = shards;
      options.outPath = out;
      auto report = runSweep(testGrid(), syntheticPoint, options);
      ASSERT_TRUE(report.isOk()) << report.status().toString();
      ASSERT_TRUE(report->complete);
      auto bytes = readTextFile(out);
      ASSERT_TRUE(bytes.isOk());
      if (reference.empty()) {
        reference = *bytes;
      } else {
        EXPECT_EQ(*bytes, reference)
            << "threads=" << threads << " shards=" << shards;
      }
      // Shard files (written only when actually sharded) partition the
      // points by index % K.
      ASSERT_EQ(report->shardPaths.size(), shards > 1 ? shards : 0u);
      for (std::size_t k = 0; k < report->shardPaths.size(); ++k) {
        auto shardText = readTextFile(report->shardPaths[k]);
        ASSERT_TRUE(shardText.isOk());
        auto doc = JsonValue::parse(*shardText);
        ASSERT_TRUE(doc.isOk());
        for (const JsonValue& p : doc->find("points")->items()) {
          EXPECT_EQ(sweepShardOf(static_cast<std::size_t>(p.getInt("i", -1)),
                                 shards),
                    k);
        }
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(SweepRunnerTest, InterruptedThenResumedRunIsByteIdentical) {
  // Fresh reference run.
  std::string refOut = tempPath("resume_ref.json");
  SweepOptions ref;
  ref.outPath = refOut;
  ASSERT_TRUE(runSweep(testGrid(), syntheticPoint, ref).isOk());

  // Interrupted run: 3 of 6 points, then a simulated kill.
  std::string out = tempPath("resume.json");
  std::string manifest = tempPath("resume.json.manifest.jsonl");
  std::atomic<int> calls{0};
  SweepPointFn counting = [&](const SweepPoint& p) {
    calls.fetch_add(1);
    return syntheticPoint(p);
  };
  SweepOptions first;
  first.threads = 2;
  first.outPath = out;
  first.manifestPath = manifest;
  first.maxNewPoints = 3;
  auto interrupted = runSweep(testGrid(), counting, first);
  ASSERT_TRUE(interrupted.isOk());
  EXPECT_FALSE(interrupted->complete);
  EXPECT_EQ(interrupted->ran, 3u);
  EXPECT_EQ(calls.load(), 3);
  EXPECT_FALSE(readTextFile(out).isOk());  // no partial merged output

  // Resume: only the missing points run, and the bytes match the fresh run.
  SweepOptions second;
  second.threads = 2;
  second.outPath = out;
  second.manifestPath = manifest;
  second.resume = true;
  auto resumed = runSweep(testGrid(), counting, second);
  ASSERT_TRUE(resumed.isOk()) << resumed.status().toString();
  EXPECT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->resumed, 3u);
  EXPECT_EQ(resumed->ran, 3u);
  EXPECT_EQ(calls.load(), 6);  // no point ever ran twice

  auto a = readTextFile(refOut);
  auto b = readTextFile(out);
  ASSERT_TRUE(a.isOk());
  ASSERT_TRUE(b.isOk());
  EXPECT_EQ(*a, *b);
}

TEST(SweepRunnerTest, ResumeWithoutManifestRunsEverything) {
  std::string out = tempPath("resume_cold.json");
  SweepOptions options;
  options.outPath = out;
  options.manifestPath = tempPath("resume_cold.json.manifest.jsonl");
  options.resume = true;  // nothing to fold in: behaves like a fresh run
  auto report = runSweep(testGrid(), syntheticPoint, options);
  ASSERT_TRUE(report.isOk()) << report.status().toString();
  EXPECT_TRUE(report->complete);
  EXPECT_EQ(report->resumed, 0u);
  EXPECT_EQ(report->ran, 6u);
}

// ---------------------------------------------------------- checkpoint --

TEST(SweepManifestTest, FingerprintMismatchIsRejected) {
  std::string path = tempPath("manifest_fp.jsonl");
  SweepManifest manifest(path);
  ASSERT_TRUE(manifest.openForAppend("unit", "aaaa", false).isOk());
  manifest.append(0, JsonValue(1));
  EXPECT_TRUE(SweepManifest(path).load("aaaa", 6).isOk());
  EXPECT_FALSE(SweepManifest(path).load("bbbb", 6).isOk());
}

TEST(SweepManifestTest, TruncatedTrailingLineIsDropped) {
  std::string path = tempPath("manifest_trunc.jsonl");
  SweepManifest manifest(path);
  ASSERT_TRUE(manifest.openForAppend("unit", "aaaa", false).isOk());
  manifest.append(0, JsonValue(1));
  manifest.append(4, JsonValue(2));
  {
    // Simulate a kill mid-append: a partial final line with no newline.
    std::ofstream out(path, std::ios::app);
    out << "{\"i\": 5, \"result\": {\"ha";
  }
  auto entries = SweepManifest(path).load("aaaa", 6);
  ASSERT_TRUE(entries.isOk()) << entries.status().toString();
  ASSERT_EQ(entries->size(), 2u);  // the torn line reruns, not corrupts
  EXPECT_EQ((*entries)[0].pointIndex, 0u);
  EXPECT_EQ((*entries)[1].pointIndex, 4u);
}

TEST(SweepManifestTest, MissingFileMeansFreshSweep) {
  auto entries =
      SweepManifest(tempPath("manifest_missing.jsonl")).load("aaaa", 6);
  ASSERT_TRUE(entries.isOk());
  EXPECT_TRUE(entries->empty());
}

TEST(SweepManifestTest, OutOfRangePointIndexFails) {
  std::string path = tempPath("manifest_range.jsonl");
  SweepManifest manifest(path);
  ASSERT_TRUE(manifest.openForAppend("unit", "aaaa", false).isOk());
  manifest.append(11, JsonValue(1));
  EXPECT_FALSE(SweepManifest(path).load("aaaa", 6).isOk());
}

// --------------------------------------------------------- intern scope --

TEST(InternScopeTest, FreshDomainPerScopeAndRestoration) {
  // Names interned outside must be invisible inside a scope, and handle
  // assignment inside a fresh scope must start from zero — that is what
  // makes a sweep point's handles independent of everything around it.
  ModelId outer = internModel("scope-test-outer");
  {
    InternScope scope;
    EXPECT_FALSE(lookupModel("scope-test-outer").valid());
    ModelId a = internModel("scope-test-a");
    ModelId b = internModel("scope-test-b");
    EXPECT_EQ(b.value, a.value + 1);  // dense, scope-local assignment
    {
      InternScope nested;
      EXPECT_FALSE(lookupModel("scope-test-a").valid());
      ModelId n = internModel("scope-test-a");
      EXPECT_EQ(n.value, a.value);  // same sequence -> same handle
    }
    // Nested scope popped: the middle domain is intact.
    EXPECT_EQ(lookupModel("scope-test-a").value, a.value);
  }
  EXPECT_EQ(lookupModel("scope-test-outer").value, outer.value);
  EXPECT_FALSE(lookupModel("scope-test-a").valid());
}

TEST(InternScopeTest, ScopedRunsAssignIdenticalHandles) {
  // Two runs of the same intern sequence in fresh scopes get identical
  // handles regardless of what ran in between.
  std::vector<std::uint32_t> first, second;
  {
    InternScope scope;
    for (const char* n : {"m0", "m1", "m2"}) {
      first.push_back(internModel(n).value);
    }
  }
  internModel("drift-the-default-domain");
  {
    InternScope scope;
    for (const char* n : {"m0", "m1", "m2"}) {
      second.push_back(internModel(n).value);
    }
  }
  EXPECT_EQ(first, second);
}

// ------------------------------------------------- worker == solo run  --

TEST(SweepSoloEquivalenceTest, WorkerResultsMatchSoloRuns) {
  // Run the real smoke grid (scalability driver, full Testbed + Simulator
  // per point) across 8 workers, then replay every point alone on this
  // thread and demand identical result bytes. This is the satellite-2
  // acceptance check: no hidden global state leaks between runs.
  SweepGrid grid = smokeSweepGrid();
  auto driver = findSweepDriver(grid.driver());
  ASSERT_TRUE(driver.isOk());

  SweepOptions options;
  options.threads = 8;
  auto report = runSweep(grid, *driver, options);
  ASSERT_TRUE(report.isOk()) << report.status().toString();
  ASSERT_TRUE(report->complete);
  const auto& points = report->merged.find("points")->items();
  ASSERT_EQ(points.size(), grid.pointCount());

  for (std::size_t i = 0; i < grid.pointCount(); ++i) {
    InternScope scope;  // what the runner provides around each point
    JsonValue solo = (*driver)(grid.point(i));
    EXPECT_EQ(points[i].find("result")->dump(), solo.dump()) << "point " << i;
  }
}

TEST(SweepDriversTest, BuiltinGridsResolve) {
  for (const char* name : {"fig5", "fig6", "smoke"}) {
    auto grid = builtinSweepGrid(name);
    ASSERT_TRUE(grid.isOk()) << name;
    EXPECT_GT(grid->pointCount(), 0u) << name;
    EXPECT_TRUE(findSweepDriver(grid->driver()).isOk()) << name;
  }
  EXPECT_FALSE(builtinSweepGrid("fig9").isOk());
  EXPECT_FALSE(findSweepDriver("nope").isOk());
}

}  // namespace
}  // namespace microedge
