// Reclamation: polled release of TPU units for dead pods, lazy model
// reclamation, and the releaseNow escape hatch.

#include <gtest/gtest.h>

#include <set>

#include "core/reclamation.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

class ReclamationTest : public ::testing::Test {
 protected:
  ReclamationTest() : zoo_(zoo::standardZoo()) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(pool_.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
    }
    admission_ = std::make_unique<AdmissionController>(pool_, zoo_,
                                                       AdmissionConfig{});
    reclamation_ = std::make_unique<Reclamation>(*admission_);
  }

  Allocation admitPod(std::uint64_t uid, double units) {
    auto result =
        admission_->admit(uid, zoo::kMobileNetV1, TpuUnit::fromDouble(units));
    EXPECT_TRUE(result.isOk());
    reclamation_->track(uid, result->allocation);
    return result->allocation;
  }

  ModelRegistry zoo_;
  TpuPool pool_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<Reclamation> reclamation_;
};

TEST_F(ReclamationTest, LivePodsAreUntouched) {
  admitPod(1, 0.5);
  EXPECT_EQ(reclamation_->pollOnce([](std::uint64_t) { return true; }), 0u);
  EXPECT_EQ(pool_.totalLoad().milli(), 500);
  EXPECT_TRUE(reclamation_->isTracked(1));
}

TEST_F(ReclamationTest, DeadPodsReclaimUnits) {
  admitPod(1, 0.5);
  admitPod(2, 0.3);
  std::set<std::uint64_t> alive = {2};
  std::vector<std::uint64_t> reclaimed;
  std::size_t count = reclamation_->pollOnce(
      [&](std::uint64_t uid) { return alive.count(uid) > 0; },
      [&](std::uint64_t uid) { reclaimed.push_back(uid); });
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(reclaimed, std::vector<std::uint64_t>{1});
  EXPECT_EQ(pool_.totalLoad().milli(), 300);
  EXPECT_FALSE(reclamation_->isTracked(1));
  EXPECT_TRUE(reclamation_->isTracked(2));
}

TEST_F(ReclamationTest, ModelsStayResidentUntilNextCoCompile) {
  admitPod(1, 0.5);
  reclamation_->pollOnce([](std::uint64_t) { return false; });
  const TpuState* tpu = pool_.find("tpu-0");
  // Lazy model reclamation (§4.2): the reference count dropped to zero, the
  // model lingers in the resident order.
  EXPECT_FALSE(tpu->hasModel(zoo::kMobileNetV1));
  EXPECT_EQ(tpu->residentOrder().size(), 1u);
  // A later admission's co-compile purges it.
  auto result =
      admission_->admit(2, zoo::kUNetV2, TpuUnit::fromDouble(0.2));
  ASSERT_TRUE(result.isOk());
  EXPECT_EQ(pool_.find("tpu-0")->residentOrder(),
            std::vector<std::string>{zoo::kUNetV2});
}

TEST_F(ReclamationTest, PartitionedAllocationsFullyReturned) {
  auto result = admission_->admit(7, zoo::kBodyPixMobileNetV1,
                                  TpuUnit::fromDouble(1.2));
  ASSERT_TRUE(result.isOk());
  ASSERT_GT(result->allocation.shares.size(), 1u);
  reclamation_->track(7, result->allocation);
  reclamation_->pollOnce([](std::uint64_t) { return false; });
  EXPECT_TRUE(pool_.totalLoad().isZero());
}

TEST_F(ReclamationTest, ReleaseNow) {
  admitPod(1, 0.4);
  EXPECT_TRUE(reclamation_->releaseNow(1).isOk());
  EXPECT_TRUE(pool_.totalLoad().isZero());
  EXPECT_EQ(reclamation_->releaseNow(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(reclamation_->reclaimedCount(), 1u);
}

TEST_F(ReclamationTest, ReclaimUpdatesPackingIndexInPlace) {
  // Pod death -> pollOnce must surface the freed units through the pool's
  // incremental indexes, not just the TpuState loads.
  Allocation a = admitPod(1, 0.9);
  ASSERT_EQ(a.shares.size(), 1u);
  const std::string victimTpu = a.shares[0].tpuId;
  // Occupy the other two TPUs as well so no TPU has >= 950 milli free.
  admitPod(2, 0.9);
  admitPod(3, 0.9);
  ASSERT_EQ(pool_.firstWithResidualAtLeast(TpuUnit::fromMilli(950)),
            TpuPool::npos);

  reclamation_->pollOnce([](std::uint64_t uid) { return uid != 1; });

  // The freed TPU is immediately visible via the segment tree...
  std::uint32_t freed = pool_.firstWithResidualAtLeast(TpuUnit::fromMilli(950));
  ASSERT_NE(freed, TpuPool::npos);
  EXPECT_EQ(pool_.tpus()[freed].id(), victimTpu);
  EXPECT_TRUE(pool_.indexConsistent());

  // ...and a re-admission lands on it.
  auto result =
      admission_->admit(9, zoo::kMobileNetV1, TpuUnit::fromMilli(950));
  ASSERT_TRUE(result.isOk());
  ASSERT_EQ(result->allocation.shares.size(), 1u);
  EXPECT_EQ(result->allocation.shares[0].tpuId, victimTpu);
  EXPECT_TRUE(pool_.indexConsistent());
}

TEST_F(ReclamationTest, PurgeAfterReclaimKeepsIndexConsistent) {
  admitPod(1, 0.5);
  reclamation_->pollOnce([](std::uint64_t) { return false; });
  TpuState* tpu = pool_.find("tpu-0");
  ASSERT_NE(tpu, nullptr);
  // The model lingers with zero references; purging it touches the resident
  // set but not the load, so the indexes must stay untouched and consistent.
  ASSERT_EQ(tpu->residentOrder().size(), 1u);
  tpu->purgeDeadModels();
  EXPECT_TRUE(tpu->residentOrder().empty());
  EXPECT_EQ(tpu->liveModelCount(), 0u);
  EXPECT_TRUE(pool_.indexConsistent());
}

TEST_F(ReclamationTest, CapacityIsReusableAfterReclaim) {
  // Fill the pool, kill everything, refill — the need-basis allocation model
  // from §2 (cameras come and go).
  for (std::uint64_t uid = 1; uid <= 6; ++uid) admitPod(uid, 0.5);
  EXPECT_FALSE(
      admission_->admit(99, zoo::kMobileNetV1, TpuUnit::fromDouble(0.5))
          .isOk());
  reclamation_->pollOnce([](std::uint64_t) { return false; });
  for (std::uint64_t uid = 11; uid <= 16; ++uid) admitPod(uid, 0.5);
  EXPECT_EQ(pool_.totalLoad().milli(), 3000);
}

}  // namespace
}  // namespace microedge
