// Simulated Edge TPU device: serial run-to-completion execution, co-compiled
// residency, swap and partial-caching penalties, busy-time accounting.

#include <gtest/gtest.h>

#include "cluster/tpu_device.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

class TpuDeviceTest : public ::testing::Test {
 protected:
  TpuDeviceTest() : zoo_(zoo::standardZoo()), tpu_(sim_, zoo_, "tpu-00") {}

  void loadAndSettle(const std::vector<std::string>& models) {
    ASSERT_TRUE(tpu_.loadModels(models).isOk());
    sim_.run();
  }

  Simulator sim_;
  ModelRegistry zoo_;
  TpuDevice tpu_;
};

TEST_F(TpuDeviceTest, LoadInstallsResidentSet) {
  loadAndSettle({zoo::kMobileNetV1, zoo::kUNetV2});
  EXPECT_TRUE(tpu_.isResident(zoo::kMobileNetV1));
  EXPECT_TRUE(tpu_.isResident(zoo::kUNetV2));
  EXPECT_FALSE(tpu_.isResident(zoo::kResNet50));
  EXPECT_NEAR(tpu_.residentParamMb(), 4.2 + 2.5, 1e-9);
  EXPECT_DOUBLE_EQ(tpu_.cachedFraction(zoo::kMobileNetV1), 1.0);
}

TEST_F(TpuDeviceTest, LoadRejectsUnknownModel) {
  EXPECT_FALSE(tpu_.loadModels({"no-such-model"}).isOk());
  EXPECT_FALSE(tpu_.loadModels({}).isOk());
}

TEST_F(TpuDeviceTest, InvokeTakesInferenceLatencyWhenResident) {
  loadAndSettle({zoo::kMobileNetV1});
  SimTime start = sim_.now();
  TpuDevice::InvokeStats seen;
  ASSERT_TRUE(tpu_.invoke(zoo::kMobileNetV1,
                          [&](const TpuDevice::InvokeStats& s) { seen = s; })
                  .isOk());
  sim_.run();
  EXPECT_EQ(seen.serviceTime, zoo_.at(zoo::kMobileNetV1).inferenceLatency);
  EXPECT_FALSE(seen.paidSwap);
  EXPECT_FALSE(seen.paidResidentSwitch);
  EXPECT_EQ(seen.finishTime - start,
            zoo_.at(zoo::kMobileNetV1).inferenceLatency);
}

TEST_F(TpuDeviceTest, SerialRunToCompletion) {
  loadAndSettle({zoo::kMobileNetV1});
  // Two invokes enqueued back to back: the second waits for the first.
  std::vector<TpuDevice::InvokeStats> stats;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(tpu_.invoke(zoo::kMobileNetV1,
                            [&](const TpuDevice::InvokeStats& s) {
                              stats.push_back(s);
                            })
                    .isOk());
  }
  EXPECT_EQ(tpu_.queueDepth(), 2u);
  sim_.run();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].queueDelay, SimDuration::zero());
  EXPECT_EQ(stats[1].queueDelay, stats[0].serviceTime);
  EXPECT_EQ(stats[1].startTime, stats[0].finishTime);
}

TEST_F(TpuDeviceTest, NonResidentModelPaysSwapAndReplacesResidentSet) {
  loadAndSettle({zoo::kMobileNetV1});
  TpuDevice::InvokeStats seen;
  ASSERT_TRUE(tpu_.invoke(zoo::kUNetV2,
                          [&](const TpuDevice::InvokeStats& s) { seen = s; })
                  .isOk());
  sim_.run();
  EXPECT_TRUE(seen.paidSwap);
  EXPECT_GT(seen.serviceTime, zoo_.at(zoo::kUNetV2).inferenceLatency);
  EXPECT_EQ(tpu_.swapCount(), 1u);
  EXPECT_TRUE(tpu_.isResident(zoo::kUNetV2));
  EXPECT_FALSE(tpu_.isResident(zoo::kMobileNetV1));  // evicted
}

TEST_F(TpuDeviceTest, CoCompiledSwitchIsCheap) {
  loadAndSettle({zoo::kMobileNetV1, zoo::kUNetV2});
  TpuDevice::InvokeStats first, second;
  ASSERT_TRUE(tpu_.invoke(zoo::kMobileNetV1,
                          [&](const TpuDevice::InvokeStats& s) { first = s; })
                  .isOk());
  ASSERT_TRUE(tpu_.invoke(zoo::kUNetV2,
                          [&](const TpuDevice::InvokeStats& s) { second = s; })
                  .isOk());
  sim_.run();
  EXPECT_TRUE(second.paidResidentSwitch);
  EXPECT_FALSE(second.paidSwap);
  SimDuration penalty =
      second.serviceTime - zoo_.at(zoo::kUNetV2).inferenceLatency;
  EXPECT_EQ(penalty, tpu_.config().residentSwitchPenalty);
  // The co-compiled switch penalty is orders of magnitude below a swap.
  EXPECT_LT(penalty, milliseconds(1));
}

TEST_F(TpuDeviceTest, BackToBackSameModelPaysNoSwitch) {
  loadAndSettle({zoo::kMobileNetV1, zoo::kUNetV2});
  std::vector<TpuDevice::InvokeStats> stats;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tpu_.invoke(zoo::kMobileNetV1,
                            [&](const TpuDevice::InvokeStats& s) {
                              stats.push_back(s);
                            })
                    .isOk());
  }
  sim_.run();
  EXPECT_FALSE(stats[1].paidResidentSwitch);
  EXPECT_FALSE(stats[2].paidResidentSwitch);
  EXPECT_EQ(stats[1].serviceTime, zoo_.at(zoo::kMobileNetV1).inferenceLatency);
}

TEST_F(TpuDeviceTest, PartialCachingStreamsUncachedRemainder) {
  // ResNet-50 (25 MB) cannot fully cache in 6.9 MB: every inference streams
  // the remainder.
  loadAndSettle({zoo::kResNet50});
  EXPECT_LT(tpu_.cachedFraction(zoo::kResNet50), 1.0);
  TpuDevice::InvokeStats seen;
  ASSERT_TRUE(tpu_.invoke(zoo::kResNet50,
                          [&](const TpuDevice::InvokeStats& s) { seen = s; })
                  .isOk());
  sim_.run();
  EXPECT_GT(seen.serviceTime, zoo_.at(zoo::kResNet50).inferenceLatency);
  // Second invoke pays the streaming penalty again (it recurs per request).
  TpuDevice::InvokeStats again;
  ASSERT_TRUE(tpu_.invoke(zoo::kResNet50,
                          [&](const TpuDevice::InvokeStats& s) { again = s; })
                  .isOk());
  sim_.run();
  EXPECT_EQ(again.serviceTime, seen.serviceTime);
  EXPECT_GT(again.serviceTime, zoo_.at(zoo::kResNet50).inferenceLatency);
}

TEST_F(TpuDeviceTest, OverflowingCompositePartiallyCachesLowestPriority) {
  // 6.2 + 4.2 = 10.4 MB > 6.9 MB: the second (lower priority) model is
  // partially cached, the first stays fully cached.
  loadAndSettle({zoo::kSsdMobileNetV2, zoo::kMobileNetV1});
  EXPECT_DOUBLE_EQ(tpu_.cachedFraction(zoo::kSsdMobileNetV2), 1.0);
  EXPECT_LT(tpu_.cachedFraction(zoo::kMobileNetV1), 1.0);
  EXPECT_GT(tpu_.cachedFraction(zoo::kMobileNetV1), 0.0);
}

TEST_F(TpuDeviceTest, InvokeUnknownModelRejected) {
  EXPECT_EQ(tpu_.invoke("bogus", nullptr).code(), StatusCode::kNotFound);
  EXPECT_EQ(tpu_.invocations(), 0u);
}

TEST_F(TpuDeviceTest, BusyTimeIntegratesOccupancy) {
  loadAndSettle({zoo::kMobileNetV1});
  SimDuration busyAfterLoad = tpu_.busyTime();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(tpu_.invoke(zoo::kMobileNetV1, nullptr).isOk());
  }
  sim_.run();
  SimDuration expected = zoo_.at(zoo::kMobileNetV1).inferenceLatency * 4;
  EXPECT_EQ(tpu_.busyTime() - busyAfterLoad, expected);
}

TEST_F(TpuDeviceTest, BusyTimeCountsPartialInFlightWork) {
  loadAndSettle({zoo::kEfficientNetLite0});
  SimDuration base = tpu_.busyTime();
  ASSERT_TRUE(tpu_.invoke(zoo::kEfficientNetLite0, nullptr).isOk());
  sim_.runUntil(sim_.now() + milliseconds(10));
  EXPECT_EQ(tpu_.busyTime() - base, milliseconds(10));
}

TEST_F(TpuDeviceTest, UtilizationSince) {
  loadAndSettle({zoo::kMobileNetV1});
  SimTime windowStart = sim_.now();
  SimDuration busyStart = tpu_.busyTime();
  // 4.5 ms of work in a 45 ms window -> 10%.
  ASSERT_TRUE(tpu_.invoke(zoo::kMobileNetV1, nullptr).isOk());
  sim_.runUntil(windowStart + millisecondsF(45.0));
  EXPECT_NEAR(tpu_.utilizationSince(busyStart, windowStart), 0.1, 1e-6);
}

TEST_F(TpuDeviceTest, LoadQueuesBehindInFlightInference) {
  loadAndSettle({zoo::kEfficientNetLite0});
  bool inferenceDone = false;
  ASSERT_TRUE(tpu_.invoke(zoo::kEfficientNetLite0,
                          [&](const TpuDevice::InvokeStats&) {
                            inferenceDone = true;
                          })
                  .isOk());
  // Load issued mid-inference must not preempt it.
  ASSERT_TRUE(tpu_.loadModels({zoo::kMobileNetV1}).isOk());
  EXPECT_FALSE(inferenceDone);
  sim_.run();
  EXPECT_TRUE(inferenceDone);
  EXPECT_TRUE(tpu_.isResident(zoo::kMobileNetV1));
  EXPECT_FALSE(tpu_.isResident(zoo::kEfficientNetLite0));
}

TEST_F(TpuDeviceTest, QueuedEmitterJobTaintsInFlightCompletion) {
  sim_.setEmitterTracking(true);
  loadAndSettle({zoo::kMobileNetV1});
  const SimTime start = sim_.now();
  const SimTime firstDone = start + zoo_.at(zoo::kMobileNetV1).inferenceLatency;
  // Untagged in-flight inference: its completion is not an emitter.
  ASSERT_TRUE(tpu_.invoke(zoo::kMobileNetV1, nullptr).isOk());
  EXPECT_EQ(sim_.nextEmitterTime(), SimTime::max());
  // From a tagged cascade, queue a second job behind it. The queued job has
  // no event of its own yet, so the device must retroactively taint the
  // in-flight completion — otherwise the emitter bound would miss the whole
  // FIFO chain (the deferred-work hazard, DESIGN.md §12).
  bool doneWasEmitter = false;
  sim_.schedule(
      start + microseconds(1),
      [&] {
        ASSERT_TRUE(tpu_.invoke(zoo::kMobileNetV1,
                                [&](const TpuDevice::InvokeStats&) {
                                  doneWasEmitter = sim_.firingEmitter();
                                })
                        .isOk());
      },
      /*emitter=*/true);
  sim_.runUntil(start + microseconds(2));
  // The (tainted) in-flight completion is now the earliest emitter.
  EXPECT_EQ(sim_.nextEmitterTime(), firstDone);
  sim_.run();
  // The queued job's completion inherited the tag through the cascade.
  EXPECT_TRUE(doneWasEmitter);
}

}  // namespace
}  // namespace microedge
