// Chaos soak: N seeded random fault plans against the full stack. Each run
// asserts the reliability invariants the paper's recovery story depends on:
//   - every submitted frame reaches exactly one terminal outcome (no frame
//     is silently lost, no context slot leaks);
//   - TPU units are conserved (Σ tracked allocations == pool load, no TPU
//     oversubscribed, parameter memory within capacity);
//   - health masks converge once faults clear (live streams keep completing);
//   - the same plan replayed produces the identical applied-fault log and
//     identical per-stream outcome totals (simulation determinism).
//
// Seed count is env-tunable: MICROEDGE_CHAOS_SEEDS (default 50). CI runs a
// smaller N under ASan/UBSan via the `chaos` ctest label.

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "models/zoo.hpp"
#include "testbed/testbed.hpp"

namespace microedge {
namespace {

int seedCount() {
  const char* env = std::getenv("MICROEDGE_CHAOS_SEEDS");
  if (env != nullptr && std::atoi(env) > 0) return std::atoi(env);
  return 50;
}

TestbedConfig soakConfig() {
  TestbedConfig config;
  config.topology.vRpiCount = 4;
  config.topology.tRpiCount = 4;  // 4 TPUs; plans kill at most 1
  config.frameDeadline = milliseconds(400);
  config.maxFailovers = 1;
  config.lbHealth.failureThreshold = 2;
  config.lbHealth.maskDuration = milliseconds(200);
  config.reclamationPeriod = milliseconds(500);
  return config;
}

FaultPlan soakPlan(std::uint64_t seed, Testbed& testbed) {
  FaultPlan::RandomConfig random;
  for (const auto& tpu : testbed.topology().tpus()) {
    random.tpus.push_back(tpu->id());
  }
  random.earliest = seconds(1);
  random.horizon = seconds(6);
  random.maxTpuCrashes = 1;
  random.maxTpuHangs = 2;
  random.maxTransportFaults = 2;
  return FaultPlan::random(seed, random);
}

struct CameraTotals {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::array<std::uint64_t, kFrameOutcomeCount> outcomes{};

  friend bool operator==(const CameraTotals& a, const CameraTotals& b) {
    return a.submitted == b.submitted && a.completed == b.completed &&
           a.outcomes == b.outcomes;
  }
};

struct SoakRun {
  std::string planJson;  // the reproducer for a failing seed
  std::vector<FaultInjector::Applied> faultLog;
  std::map<std::string, CameraTotals> cameras;
  std::size_t transportDrops = 0;
  std::uint64_t ledgerAccepted = 0;  // Σ over clients (admission runs only)
  std::uint64_t ledgerRejected = 0;
};

// One full run: deploy, arm, soak, drain, check invariants, return totals.
SoakRun runSoak(std::uint64_t seed, TestbedConfig config = soakConfig()) {
  Testbed testbed(config);
  for (int i = 0; i < 5; ++i) {
    CameraDeployment deployment;
    deployment.name = "cam-" + std::to_string(i);
    deployment.model = zoo::kSsdMobileNetV2;
    EXPECT_TRUE(testbed.deployCamera(deployment).isOk()) << "seed " << seed;
  }
  FaultPlan plan = soakPlan(seed, testbed);
  FaultInjector& injector = testbed.armFaults(plan);
  SoakRun result;
  result.planJson = plan.toJson();

  // Soak through every fault window ([1 s, 6 s] + <=1.5 s + detection),
  // then a calm tail during which masks must converge.
  testbed.run(seconds(10));

  // Convergence: live streams (evictions are legal under capacity loss)
  // keep completing frames after the last fault cleared.
  std::map<std::string, std::uint64_t> beforeTail;
  for (CameraPipeline* camera : testbed.liveCameras()) {
    beforeTail[camera->name()] = camera->client().completedCount();
  }
  testbed.run(seconds(2));
  for (CameraPipeline* camera : testbed.liveCameras()) {
    EXPECT_GT(camera->client().completedCount(), beforeTail[camera->name()])
        << "seed " << seed << ": live stream " << camera->name()
        << " stopped completing after faults cleared";
    EXPECT_EQ(camera->client().lbService().maskedCount(), 0u)
        << "seed " << seed << ": stale health mask on " << camera->name();
  }

  // Drain: stop frame generation and let in-flight work terminate.
  for (CameraPipeline* camera : testbed.liveCameras()) camera->stop();
  testbed.run(seconds(2));

  result.faultLog = injector.log();
  result.transportDrops = testbed.dataPlane().transport().droppedMessages();
  EXPECT_EQ(result.faultLog.size(), injector.scheduledCount())
      << "seed " << seed << ": some scheduled fault edges never fired";

  for (const CameraPipeline* camera : testbed.allCameras()) {
    const TpuClient& client = camera->client();
    CameraTotals totals;
    totals.submitted = client.submittedCount();
    totals.completed = client.completedCount();
    std::uint64_t terminal = 0;
    for (std::size_t i = 0; i < kFrameOutcomeCount; ++i) {
      totals.outcomes[i] =
          client.outcomeCount(static_cast<FrameOutcome>(i));
      if (i != 0) terminal += totals.outcomes[i];
    }
    // Exactly-one-terminal-state: Σ terminal outcomes == submissions, no
    // in-flight residue, no leaked context slots.
    EXPECT_EQ(totals.outcomes[0], 0u) << "seed " << seed;
    EXPECT_EQ(terminal, totals.submitted)
        << "seed " << seed << ": " << camera->name();
    EXPECT_EQ(client.outstanding(), 0u)
        << "seed " << seed << ": " << camera->name();
    EXPECT_EQ(client.contextsInFlight(), 0u)
        << "seed " << seed << ": " << camera->name();
    // SLO accounting saw every terminal frame too.
    EXPECT_EQ(camera->slo().submitted(),
              camera->slo().completed() + camera->slo().dropped())
        << "seed " << seed << ": " << camera->name();
    // Admission-ledger conservation: exactly one credit per charge, so a
    // drained client's ledger reads zero outstanding even after crashes,
    // failovers and weight pushes moved charges across entries.
    if (config.frameAdmission.enabled) {
      const AdmissionLedger& ledger = client.admissionLedger();
      EXPECT_EQ(ledger.chargedMilli(), 0)
          << "seed " << seed << ": " << camera->name()
          << " leaked admission charge";
      EXPECT_EQ(ledger.acceptedCount(), ledger.creditedCount())
          << "seed " << seed << ": " << camera->name()
          << " charge/credit imbalance";
      for (std::uint32_t e = 0; e < ledger.entryCount(); ++e) {
        EXPECT_EQ(ledger.entryCharged(e), 0)
            << "seed " << seed << ": " << camera->name() << " entry " << e;
      }
      result.ledgerAccepted += ledger.acceptedCount();
      result.ledgerRejected += ledger.rejectedCount();
    }
    result.cameras[camera->name()] = totals;
  }

  // Unit conservation across crash + recovery + eviction churn.
  std::int64_t trackedMilli = 0;
  for (const auto& [uid, allocation] :
       testbed.reclamation().trackedAllocations()) {
    trackedMilli += allocation.totalUnits().milli();
    for (const TpuShare& share : allocation.shares) {
      EXPECT_NE(testbed.pool().find(share.tpuId), nullptr)
          << "seed " << seed << ": tracked share on a TPU not in the pool";
    }
  }
  EXPECT_EQ(trackedMilli, testbed.pool().totalLoad().milli())
      << "seed " << seed;
  for (const TpuState& tpu : testbed.pool().tpus()) {
    EXPECT_LE(tpu.currentLoad(), TpuUnit::full()) << "seed " << seed;
    EXPECT_LE(tpu.usedParamMb(testbed.zoo()), tpu.paramCapacityMb() + 1e-9)
        << "seed " << seed;
  }
  return result;
}

TEST(ChaosSoakTest, EveryFrameTerminatesAcrossSeeds) {
  const int seeds = seedCount();
  std::uint64_t totalFrames = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    SoakRun run = runSoak(static_cast<std::uint64_t>(seed));
    for (const auto& [name, totals] : run.cameras) {
      totalFrames += totals.submitted;
    }
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "invariant violated at seed " << seed
             << "; reproduce with this plan: " << run.planJson;
    }
  }
  // Sanity: the soak exercised real traffic, not an idle cluster.
  EXPECT_GT(totalFrames, static_cast<std::uint64_t>(seeds) * 100u);
}

// Same seeded plans with the per-frame admission ledger live on every
// client: the charge must follow each frame through hangs, transport loss,
// crash-failover and recovery weight pushes, and be credited exactly once
// at whichever terminal outcome the frame reaches. runSoak asserts the
// drained ledgers read zero; this loop drives it across the seed corpus.
TEST(ChaosSoakTest, AdmissionLedgerConservesAcrossSeeds) {
  const int seeds = seedCount();
  TestbedConfig config = soakConfig();
  config.frameAdmission.enabled = true;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    SoakRun run = runSoak(static_cast<std::uint64_t>(seed), config);
    accepted += run.ledgerAccepted;
    rejected += run.ledgerRejected;
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "admission conservation violated at seed " << seed
             << "; reproduce with this plan: " << run.planJson;
    }
  }
  // Sanity: the ledger actually admitted traffic (an always-reject ledger
  // would conserve trivially).
  EXPECT_GT(accepted, static_cast<std::uint64_t>(seeds) * 100u);
  (void)rejected;  // may be zero when every fault window stays short
}

TEST(ChaosSoakTest, ReplayIsDeterministic) {
  SoakRun first = runSoak(424242);
  SoakRun second = runSoak(424242);
  ASSERT_EQ(first.faultLog.size(), second.faultLog.size());
  for (std::size_t i = 0; i < first.faultLog.size(); ++i) {
    EXPECT_TRUE(first.faultLog[i] == second.faultLog[i]) << "edge " << i;
  }
  EXPECT_EQ(first.transportDrops, second.transportDrops);
  ASSERT_EQ(first.cameras.size(), second.cameras.size());
  for (const auto& [name, totals] : first.cameras) {
    ASSERT_TRUE(second.cameras.count(name)) << name;
    EXPECT_TRUE(second.cameras.at(name) == totals)
        << name << ": outcome totals diverged between identical runs";
  }
}

// Acceptance: killing 1 of K TPUs mid-trace loses only detection-window
// frames. With fail-fast broadcasts + client failover the loss is near
// zero; it must never exceed a few frames per stream.
TEST(ChaosSoakTest, SingleTpuFailureLossBoundedByDetectionWindow) {
  Testbed testbed(soakConfig());
  for (int i = 0; i < 5; ++i) {
    CameraDeployment deployment;
    deployment.name = "cam-" + std::to_string(i);
    deployment.model = zoo::kSsdMobileNetV2;
    ASSERT_TRUE(testbed.deployCamera(deployment).isOk());
  }
  FaultPlan plan;
  plan.detectionDelay = milliseconds(750);
  plan.events.push_back(
      FaultEvent{seconds(3), FaultKind::kTpuCrash, "tpu-00", {}, 0.0});
  testbed.armFaults(plan);
  testbed.run(seconds(8));

  // 5 * 0.35 units fit the 3 survivors: nobody is evicted.
  EXPECT_EQ(testbed.liveCameraCount(), 5u);
  EXPECT_EQ(testbed.pool().size(), 3u);
  // Loss bound: the worst case is a stream whose ENTIRE share lived on the
  // dead TPU — its LB config has no survivor to fail over to, so every
  // frame submitted inside the 0.75 s detection window drops explicitly
  // (kDroppedDeadTarget) until recovery pushes fresh weights. That is
  // 15 fps * 0.75 s ~= 12 frames, plus the couple in flight at the crash
  // instant; streams with a surviving target lose at most the in-flight
  // ones. Nothing may be lost silently and nothing beyond the window.
  const std::uint64_t windowFrames =
      static_cast<std::uint64_t>(15.0 * 0.75) + 4;  // fps * detection + slack
  for (CameraPipeline* camera : testbed.liveCameras()) {
    const TpuClient& client = camera->client();
    EXPECT_LE(client.failedCount(), windowFrames) << camera->name();
    EXPECT_GT(client.completedCount(), 60u) << camera->name();
    // Every loss is an explicit terminal outcome, not a vanished frame
    // (only the frame currently on the wire may still be open mid-run).
    EXPECT_LE(client.outstanding(), 2u) << camera->name();
  }

  // Post-failover SLO: streams complete at full rate on the survivors, and
  // the loss stays confined to the detection window — zero new failures
  // once the replan landed.
  std::map<std::string, std::uint64_t> before;
  std::map<std::string, std::uint64_t> failedAtRecovery;
  for (CameraPipeline* camera : testbed.liveCameras()) {
    before[camera->name()] = camera->slo().completed();
    failedAtRecovery[camera->name()] = camera->client().failedCount();
  }
  testbed.run(seconds(4));
  for (CameraPipeline* camera : testbed.liveCameras()) {
    std::uint64_t delta = camera->slo().completed() - before[camera->name()];
    EXPECT_GE(delta, 50u) << camera->name();  // ~15 fps * 4 s, some slack
    EXPECT_EQ(camera->client().failedCount(),
              failedAtRecovery[camera->name()])
        << camera->name() << ": frames lost after failover completed";
  }
}

}  // namespace
}  // namespace microedge
