// util/json: the deterministic JSON value the sweep subsystem rides on.
// The properties under test are exactly the ones the byte-identical merge
// depends on: insertion-ordered objects, one spelling per value, int/double
// storage kept distinct through round trips.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "util/json.hpp"

namespace microedge {
namespace {

TEST(JsonValueTest, TypesAndAccessors) {
  EXPECT_TRUE(JsonValue().isNull());
  EXPECT_TRUE(JsonValue(true).isBool());
  EXPECT_TRUE(JsonValue(7).isInt());
  EXPECT_TRUE(JsonValue(1.5).isDouble());
  EXPECT_TRUE(JsonValue("s").isString());
  EXPECT_TRUE(JsonValue::array().isArray());
  EXPECT_TRUE(JsonValue::object().isObject());

  EXPECT_EQ(JsonValue(7).asInt(), 7);
  EXPECT_EQ(JsonValue(7).asDouble(), 7.0);  // int widens on request
  EXPECT_EQ(JsonValue(1.5).asDouble(), 1.5);
  EXPECT_EQ(JsonValue("s").asString(), "s");
}

TEST(JsonValueTest, ObjectsKeepInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zebra", 1);
  obj.set("apple", 2);
  obj.set("mango", 3);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");

  // Replacing a key keeps its original position.
  obj.set("apple", 99);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":99,\"mango\":3}");
}

TEST(JsonValueTest, SetOnNullMakesObjectPushMakesArray) {
  JsonValue v;
  v.set("k", 1);
  EXPECT_TRUE(v.isObject());

  JsonValue a;
  a.push(1);
  a.push(2);
  EXPECT_TRUE(a.isArray());
  EXPECT_EQ(a.size(), 2u);
}

TEST(JsonValueTest, FindAndGetHelpers) {
  JsonValue obj = JsonValue::object();
  obj.set("i", 42);
  obj.set("d", 2.5);
  obj.set("s", "hello");
  obj.set("b", true);
  EXPECT_EQ(obj.getInt("i", -1), 42);
  EXPECT_EQ(obj.getDouble("d", -1.0), 2.5);
  EXPECT_EQ(obj.getString("s", "x"), "hello");
  EXPECT_TRUE(obj.getBool("b", false));
  EXPECT_EQ(obj.getInt("missing", -1), -1);
  EXPECT_EQ(obj.find("missing"), nullptr);
  ASSERT_NE(obj.find("i"), nullptr);
  EXPECT_EQ(obj.find("i")->asInt(), 42);
}

TEST(JsonValueTest, IntAndDoubleAreDistinctStorage) {
  // int 1 and double 1.0 must neither compare equal nor print alike —
  // otherwise a seed that happens to equal a double would change spelling
  // between runs.
  EXPECT_NE(JsonValue(1), JsonValue(1.0));
  EXPECT_EQ(JsonValue(1).dump(), "1");
  EXPECT_NE(JsonValue(1.0).dump(), "1");
}

TEST(JsonValueTest, Int64RoundTripsExactly) {
  std::int64_t big = std::numeric_limits<std::int64_t>::max();
  JsonValue v(big);
  auto parsed = JsonValue::parse(v.dump());
  ASSERT_TRUE(parsed.isOk());
  EXPECT_TRUE(parsed->isInt());
  EXPECT_EQ(parsed->asInt(), big);

  // A u64 seed stored through the int64 channel survives the cast pair.
  std::uint64_t seed = 0xdeadbeefcafef00dULL;
  JsonValue s(seed);
  auto parsedSeed = JsonValue::parse(s.dump());
  ASSERT_TRUE(parsedSeed.isOk());
  EXPECT_EQ(parsedSeed->asUint(), seed);
}

TEST(JsonValueTest, DoubleRoundTripsExactly) {
  for (double d : {0.1, 1.0 / 3.0, 6878875e-7, 15.063968341614, 1e300}) {
    auto parsed = JsonValue::parse(JsonValue(d).dump());
    ASSERT_TRUE(parsed.isOk()) << d;
    EXPECT_TRUE(parsed->isDouble()) << d;
    EXPECT_EQ(parsed->asDouble(), d) << d;
  }
}

TEST(JsonValueTest, StringEscapes) {
  JsonValue v(std::string("a\"b\\c\n\t\x01"));
  std::string dumped = v.dump();
  auto parsed = JsonValue::parse(dumped);
  ASSERT_TRUE(parsed.isOk()) << dumped;
  EXPECT_EQ(parsed->asString(), v.asString());
}

TEST(JsonValueTest, ParseRejectsGarbage) {
  EXPECT_FALSE(JsonValue::parse("").isOk());
  EXPECT_FALSE(JsonValue::parse("{").isOk());
  EXPECT_FALSE(JsonValue::parse("[1,]").isOk());
  EXPECT_FALSE(JsonValue::parse("{\"a\":}").isOk());
  EXPECT_FALSE(JsonValue::parse("nul").isOk());
  EXPECT_FALSE(JsonValue::parse("1 2").isOk());  // trailing tokens
}

TEST(JsonValueTest, ParseNestedDocument) {
  auto parsed = JsonValue::parse(
      "{\"a\": [1, 2.5, \"x\", true, null], \"b\": {\"c\": -3}}");
  ASSERT_TRUE(parsed.isOk());
  const JsonValue& a = *parsed->find("a");
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a.items()[0].asInt(), 1);
  EXPECT_EQ(a.items()[1].asDouble(), 2.5);
  EXPECT_EQ(a.items()[2].asString(), "x");
  EXPECT_TRUE(a.items()[3].asBool());
  EXPECT_TRUE(a.items()[4].isNull());
  EXPECT_EQ(parsed->find("b")->getInt("c", 0), -3);
}

TEST(JsonValueTest, DumpParseDumpIsAFixedPoint) {
  // Canonical serialization: re-parsing the writer's output and dumping
  // again must reproduce the bytes (this is what lets shard merges compare
  // with string equality).
  JsonValue doc = JsonValue::object();
  doc.set("name", "smoke");
  doc.set("seed", std::int64_t{-4284403714027608248});
  JsonValue pts = JsonValue::array();
  JsonValue p = JsonValue::object();
  p.set("util", 0.8509541709999999);
  p.set("fps", 15.0);
  p.set("n", 5);
  pts.push(std::move(p));
  doc.set("points", std::move(pts));

  for (int indent : {-1, 2}) {
    std::string once = doc.dump(indent);
    auto parsed = JsonValue::parse(once);
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed->dump(indent), once);
    EXPECT_EQ(*parsed, doc);
  }
}

TEST(JsonValueTest, PrettyDumpShape) {
  JsonValue doc = JsonValue::object();
  doc.set("a", 1);
  JsonValue arr = JsonValue::array();
  arr.push(2);
  doc.set("b", std::move(arr));
  EXPECT_EQ(doc.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
  EXPECT_EQ(JsonValue::object().dump(2), "{}");
  EXPECT_EQ(JsonValue::array().dump(2), "[]");
}

TEST(JsonValueTest, FormatDoubleIsIntegralSafe) {
  // Integral-valued doubles must keep a ".0" (or exponent) so they re-parse
  // as doubles, not ints — spelling is part of the determinism contract.
  std::string s = jsonFormatDouble(15.0);
  auto parsed = JsonValue::parse(s);
  ASSERT_TRUE(parsed.isOk()) << s;
  EXPECT_TRUE(parsed->isDouble()) << s;
}

}  // namespace
}  // namespace microedge
