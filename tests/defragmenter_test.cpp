// Defragmenter: consolidation of partitioned pods and full FFD replans,
// with transactional rollback when a replan is infeasible.

#include <gtest/gtest.h>

#include "core/defragmenter.hpp"
#include "models/zoo.hpp"
#include "testbed/testbed.hpp"

namespace microedge {
namespace {

class DefragmenterTest : public ::testing::Test {
 protected:
  DefragmenterTest() : zoo_(zoo::standardZoo()) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(pool_.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
    }
    admission_ = std::make_unique<AdmissionController>(pool_, zoo_,
                                                       AdmissionConfig{});
    reclamation_ = std::make_unique<Reclamation>(*admission_);
    defrag_ = std::make_unique<Defragmenter>(*admission_, *reclamation_,
                                             Defragmenter::Callbacks{});
  }

  Allocation admitAndTrack(std::uint64_t uid, const std::string& model,
                           double units) {
    auto result = admission_->admit(uid, model, TpuUnit::fromDouble(units));
    EXPECT_TRUE(result.isOk()) << result.status();
    reclamation_->track(uid, result->allocation);
    return result->allocation;
  }

  void release(std::uint64_t uid) {
    ASSERT_TRUE(reclamation_->releaseNow(uid).isOk());
  }

  ModelRegistry zoo_;
  TpuPool pool_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<Reclamation> reclamation_;
  std::unique_ptr<Defragmenter> defrag_;
};

TEST_F(DefragmenterTest, EmptyPoolIsTrivial) {
  auto report = defrag_->replanAll();
  EXPECT_TRUE(report.applied);
  EXPECT_EQ(report.podsReplanned, 0u);
  EXPECT_EQ(report.reason, Defragmenter::Reason::kNone);
}

TEST_F(DefragmenterTest, ConsolidateCollapsesPartitionedPod) {
  // Fragment on purpose: fill 0.6 everywhere, partition a 0.9 pod, then
  // drain the fillers — the 0.9 pod is left scattered 0.4/0.4/0.1 across
  // three now-mostly-empty TPUs.
  admitAndTrack(1, zoo::kMobileNetV1, 0.6);
  admitAndTrack(2, zoo::kMobileNetV1, 0.6);
  admitAndTrack(3, zoo::kMobileNetV1, 0.6);
  admitAndTrack(4, zoo::kMobileNetV1, 0.6);
  Allocation scattered = admitAndTrack(5, zoo::kMobileNetV1, 0.9);
  ASSERT_EQ(scattered.shares.size(), 3u);
  release(1);
  release(2);
  release(3);
  release(4);

  auto report = defrag_->consolidate();
  EXPECT_TRUE(report.applied);
  EXPECT_EQ(report.podsReplanned, 1u);
  const Allocation* after = reclamation_->allocationOf(5);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->shares.size(), 1u);  // one TPU now fits the whole 0.9
  EXPECT_EQ(after->totalUnits().milli(), 900);
  EXPECT_EQ(pool_.totalLoad().milli(), 900);
}

TEST_F(DefragmenterTest, ConsolidateKeepsPlacementWhenNoImprovement) {
  admitAndTrack(1, zoo::kMobileNetV1, 0.8);
  admitAndTrack(2, zoo::kMobileNetV1, 0.8);
  admitAndTrack(3, zoo::kMobileNetV1, 0.8);
  admitAndTrack(4, zoo::kMobileNetV1, 0.8);
  // 1.2-unit pod cannot fit any single TPU: must stay partitioned.
  Allocation split = admitAndTrack(5, zoo::kMobileNetV1, 0.6);
  ASSERT_GT(split.shares.size(), 1u);
  auto report = defrag_->consolidate();
  EXPECT_EQ(report.podsReplanned, 0u);
  EXPECT_EQ(report.reason, Defragmenter::Reason::kNoImprovement);
  EXPECT_EQ(reclamation_->allocationOf(5)->shares.size(),
            split.shares.size());
  EXPECT_EQ(pool_.totalLoad().milli(), 3800);
}

TEST_F(DefragmenterTest, ReplanAllCompactsLoadOntoFewerTpus) {
  // Churn pattern: admit small pods everywhere, release alternating ones so
  // load is smeared thin across all four TPUs.
  for (std::uint64_t uid = 1; uid <= 8; ++uid) {
    admitAndTrack(uid, zoo::kMobileNetV1, 0.25);
  }
  for (std::uint64_t uid = 1; uid <= 8; uid += 2) release(uid);
  // 4 x 0.25 = 1.0 unit spread over several TPUs.
  std::size_t usedBefore = pool_.usedTpuCount();
  auto report = defrag_->replanAll();
  EXPECT_TRUE(report.applied);
  EXPECT_LE(report.usedTpusAfter, usedBefore);
  EXPECT_EQ(report.usedTpusAfter, 1u);  // 1.0 unit fits one TPU exactly
  EXPECT_EQ(pool_.totalLoad().milli(), 1000);
  // Every pod still tracked with its full request.
  for (std::uint64_t uid = 2; uid <= 8; uid += 2) {
    ASSERT_TRUE(reclamation_->isTracked(uid));
    EXPECT_EQ(reclamation_->allocationOf(uid)->totalUnits().milli(), 250);
  }
}

TEST_F(DefragmenterTest, ReplanEmitsLoadAndLbCallbacks) {
  std::vector<LoadCommand> loads;
  std::vector<std::uint64_t> reconfigured;
  Defragmenter::Callbacks callbacks;
  callbacks.loadModel = [&](const LoadCommand& cmd) {
    loads.push_back(cmd);
    return Status::ok();
  };
  callbacks.reconfigureLb = [&](std::uint64_t uid, const LbConfig& config) {
    reconfigured.push_back(uid);
    EXPECT_FALSE(config.empty());
  };
  Defragmenter defrag(*admission_, *reclamation_, std::move(callbacks));

  for (std::uint64_t uid = 1; uid <= 4; ++uid) {
    admitAndTrack(uid, zoo::kMobileNetV1, 0.6);
  }
  Allocation split = admitAndTrack(5, zoo::kMobileNetV1, 0.9);
  ASSERT_GT(split.shares.size(), 1u);
  release(1);
  release(2);
  auto report = defrag.consolidate();
  EXPECT_EQ(report.podsReplanned, 1u);
  EXPECT_EQ(reconfigured, std::vector<std::uint64_t>{5});
}

TEST_F(DefragmenterTest, CapacityRecoveredAfterDefrag) {
  // The motivating scenario: fragmentation blocks a large request that the
  // total free capacity could serve on one TPU.
  admitAndTrack(1, zoo::kMobileNetV1, 0.6);
  admitAndTrack(2, zoo::kMobileNetV1, 0.6);
  admitAndTrack(3, zoo::kMobileNetV1, 0.6);
  admitAndTrack(4, zoo::kMobileNetV1, 0.6);
  admitAndTrack(5, zoo::kMobileNetV1, 0.9);  // scattered over residuals
  release(1);
  release(3);
  // ResNet-50 (25 MB params) needs an *empty* TPU; fragmentation denies it.
  auto blocked = admission_->admit(6, zoo::kResNet50, TpuUnit::fromDouble(0.5));
  ASSERT_FALSE(blocked.isOk());

  auto report = defrag_->replanAll();
  ASSERT_TRUE(report.applied);
  EXPECT_LT(report.usedTpusAfter, report.usedTpusBefore);

  auto unblocked =
      admission_->admit(6, zoo::kResNet50, TpuUnit::fromDouble(0.5));
  EXPECT_TRUE(unblocked.isOk()) << unblocked.status();
}

// ---- Through the testbed ---------------------------------------------------

// Forces the replanAll rollback path and checks the snapshot-restore left
// the pool — including its incremental packing indexes — exactly where it
// was. The infeasibility is a param-capacity trap: FFD re-places the
// largest pod onto the roomy TPU first, which strands a model pair whose
// combined parameter data exceeds the small TPU.
TEST(DefragRollbackTest, InfeasibleReplanRestoresPackingIndexes) {
  ModelRegistry zoo = zoo::standardZoo();
  auto addModel = [&zoo](const char* name) {
    ModelInfo info;
    info.name = name;
    info.inferenceLatency = millisecondsF(5.0);
    info.paramSizeMb = 4.0;
    info.inputWidth = 224;
    info.inputHeight = 224;
    ASSERT_TRUE(zoo.add(info).isOk());
  };
  addModel("defrag-a");
  addModel("defrag-b");
  addModel("defrag-c");

  TpuPool pool;
  ASSERT_TRUE(pool.addTpu("tpu-big", 9.0).isOk());    // fits two models
  ASSERT_TRUE(pool.addTpu("tpu-small", 4.5).isOk());  // fits one model
  AdmissionController admission(pool, zoo, AdmissionConfig{});
  Reclamation reclamation(admission);
  Defragmenter defrag(admission, reclamation, Defragmenter::Callbacks{});

  // Feasible hand placement: a(0.4) + b(0.6) share tpu-big (8 MB <= 9),
  // c(1.0) fills tpu-small.
  auto admitAndTrack = [&](std::uint64_t uid, const char* model,
                           double units) {
    auto result = admission.admit(uid, model, TpuUnit::fromDouble(units));
    ASSERT_TRUE(result.isOk()) << result.status();
    reclamation.track(uid, result->allocation);
  };
  admitAndTrack(1, "defrag-a", 0.4);
  admitAndTrack(2, "defrag-b", 0.6);
  admitAndTrack(3, "defrag-c", 1.0);

  // Reference state before the replan attempt.
  const TpuPool before = pool;
  const Allocation allocA = *reclamation.allocationOf(1);
  const Allocation allocB = *reclamation.allocationOf(2);
  const Allocation allocC = *reclamation.allocationOf(3);

  // FFD order is c(1.0), b(0.6), a(0.4): c grabs tpu-big, b falls to
  // tpu-small, and a has units on tpu-small but 4+4 MB params do not fit —
  // infeasible, roll back.
  auto report = defrag.replanAll();
  EXPECT_FALSE(report.applied);
  EXPECT_EQ(report.reason, Defragmenter::Reason::kInfeasiblePlacement);
  EXPECT_EQ(report.podsReplanned, 0u);

  // Placements and tracked allocations restored exactly.
  auto expectSameAllocation = [](const Allocation& got,
                                 const Allocation& want) {
    ASSERT_EQ(got.shares.size(), want.shares.size());
    for (std::size_t i = 0; i < got.shares.size(); ++i) {
      EXPECT_EQ(got.shares[i].tpuId, want.shares[i].tpuId);
      EXPECT_EQ(got.shares[i].units.milli(), want.shares[i].units.milli());
    }
  };
  expectSameAllocation(*reclamation.allocationOf(1), allocA);
  expectSameAllocation(*reclamation.allocationOf(2), allocB);
  expectSameAllocation(*reclamation.allocationOf(3), allocC);
  ASSERT_EQ(pool.size(), before.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const TpuState& got = pool.tpus()[i];
    const TpuState& want = before.tpus()[i];
    EXPECT_EQ(got.id(), want.id());
    EXPECT_EQ(got.currentLoad().milli(), want.currentLoad().milli());
    EXPECT_EQ(got.liveModelCount(), want.liveModelCount());
    EXPECT_EQ(got.residentOrder(), want.residentOrder());
  }

  // The restored pool's incremental indexes must be self-consistent AND
  // enumerate candidates differentially identically to the naive scan for
  // every strategy and probe size — snapshot-restore goes through the pool
  // copy assignment, which rebuilds them from scratch.
  EXPECT_TRUE(pool.indexConsistent());
  const PackingStrategy strategies[] = {
      PackingStrategy::kFirstFit, PackingStrategy::kNextFit,
      PackingStrategy::kBestFit, PackingStrategy::kWorstFit};
  for (PackingStrategy strategy : strategies) {
    for (int probeMilli : {1, 200, 400, 600, 1000}) {
      const TpuUnit probe = TpuUnit::fromMilli(probeMilli);
      SCOPED_TRACE(std::string(toString(strategy)) + " probe " +
                   std::to_string(probeMilli));
      std::vector<std::size_t> naive;
      for (std::size_t pos : packingScanOrder(strategy, pool, 0)) {
        const TpuState& tpu = pool.tpus()[pos];
        const std::int64_t residual =
            TpuUnit::full().milli() - tpu.currentLoad().milli();
        if (residual >= probe.milli()) naive.push_back(pos);
      }
      std::vector<std::size_t> indexed;
      auto cursor = pool.scan(strategy, probe, 0);
      for (std::uint32_t pos = cursor.next(); pos != TpuPool::npos;
           pos = cursor.next()) {
        indexed.push_back(pos);
      }
      EXPECT_EQ(indexed, naive);
    }
  }
}

TEST(DefragTestbedTest, LiveStreamsSurviveDefrag) {
  Testbed testbed;
  // Create fragmentation with real churn.
  for (int i = 0; i < 12; ++i) {
    CameraDeployment deployment;
    deployment.name = "cam-" + std::to_string(i);
    deployment.model = zoo::kSsdMobileNetV2;
    ASSERT_TRUE(testbed.deployCamera(deployment).isOk());
  }
  testbed.run(seconds(3));
  for (int i = 0; i < 12; i += 2) {
    ASSERT_TRUE(testbed.removeCamera("cam-" + std::to_string(i)).isOk());
  }
  testbed.run(seconds(5));  // reclamation poller returns the units

  auto report = testbed.defragment(/*full=*/true);
  EXPECT_TRUE(report.applied);
  EXPECT_LE(report.usedTpusAfter, report.usedTpusBefore);

  // Remaining streams keep flowing at 15 FPS after the replan.
  std::vector<std::uint64_t> before;
  for (CameraPipeline* camera : testbed.liveCameras()) {
    before.push_back(camera->slo().completed());
  }
  testbed.run(seconds(10));
  std::size_t i = 0;
  for (CameraPipeline* camera : testbed.liveCameras()) {
    EXPECT_GT(camera->slo().completed(), before[i] + 130) << camera->name();
    EXPECT_TRUE(camera->slo().sloMet()) << camera->name();
    ++i;
  }
}

TEST(DefragTestbedTest, BaselineModeIsNoop) {
  TestbedConfig config;
  config.mode = SchedulingMode::kBaselineDedicated;
  Testbed testbed(config);
  auto report = testbed.defragment();
  EXPECT_FALSE(report.applied);
}

}  // namespace
}  // namespace microedge
