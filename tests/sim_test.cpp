// Discrete-event simulator: ordering, determinism, cancellation, periodic
// tasks and partial runs.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace microedge {
namespace {

TEST(SimulatorTest, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(kSimEpoch + milliseconds(30), [&] { order.push_back(3); });
  sim.schedule(kSimEpoch + milliseconds(10), [&] { order.push_back(1); });
  sim.schedule(kSimEpoch + milliseconds(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EqualTimestampsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  SimTime t = kSimEpoch + milliseconds(5);
  for (int i = 0; i < 10; ++i) {
    sim.schedule(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
  Simulator sim;
  SimTime seen{};
  sim.scheduleAfter(milliseconds(42), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, kSimEpoch + milliseconds(42));
  EXPECT_EQ(sim.now(), kSimEpoch + milliseconds(42));
}

TEST(SimulatorTest, ScheduleInPastClampsToNow) {
  Simulator sim;
  sim.scheduleAfter(milliseconds(10), [&] {
    // Attempt to schedule "before now": clamped, still fires.
    sim.schedule(kSimEpoch, [] {});
  });
  EXPECT_EQ(sim.run(), 2u);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.scheduleAfter(milliseconds(5), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.firedCount(), 0u);
}

TEST(SimulatorTest, CancelInvalidIdIsNoop) {
  Simulator sim;
  sim.cancel(EventId{});
  sim.cancel(EventId{9999});
  EXPECT_EQ(sim.run(), 0u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAfter(milliseconds(10), [&] { ++fired; });
  sim.scheduleAfter(milliseconds(20), [&] { ++fired; });
  sim.scheduleAfter(milliseconds(30), [&] { ++fired; });
  EXPECT_EQ(sim.runUntil(kSimEpoch + milliseconds(20)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), kSimEpoch + milliseconds(20));
  EXPECT_EQ(sim.pendingCount(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, RunUntilAdvancesNowEvenWithoutEvents) {
  Simulator sim;
  sim.runUntil(kSimEpoch + seconds(9));
  EXPECT_EQ(sim.now(), kSimEpoch + seconds(9));
}

TEST(SimulatorTest, EventsScheduledDuringRunAreProcessed) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.scheduleAfter(milliseconds(1), chain);
  };
  sim.scheduleAfter(milliseconds(1), chain);
  sim.run();
  EXPECT_EQ(depth, 5);
}

TEST(SimulatorTest, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAfter(milliseconds(1), [&] { ++fired; });
  sim.scheduleAfter(milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(PeriodicTaskTest, FiresAtFixedInterval) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, milliseconds(100), [&] { fires.push_back(sim.now()); });
  task.start();
  sim.runUntil(kSimEpoch + milliseconds(350));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], kSimEpoch + milliseconds(100));
  EXPECT_EQ(fires[2], kSimEpoch + milliseconds(300));
}

TEST(PeriodicTaskTest, StopHalts) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, milliseconds(10), [&] { ++count; });
  task.start();
  sim.runUntil(kSimEpoch + milliseconds(35));
  task.stop();
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTaskTest, CallbackCanStopItself) {
  Simulator sim;
  int count = 0;
  PeriodicTask* handle = nullptr;
  PeriodicTask task(sim, milliseconds(10), [&] {
    if (++count == 2) handle->stop();
  });
  handle = &task;
  task.start();
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, DestructorCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, milliseconds(10), [&] { ++count; });
    task.start();
    sim.runUntil(kSimEpoch + milliseconds(15));
  }
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(SimulatorTest, CancelFiredIdKeepsPendingCountSane) {
  // Regression: the seed engine tombstoned cancels of already-fired ids,
  // which made pendingCount() (queue size minus tombstones) wrap and
  // empty() lie.
  Simulator sim;
  EventId id = sim.scheduleAfter(milliseconds(1), [] {});
  sim.scheduleAfter(milliseconds(2), [] {});
  ASSERT_TRUE(sim.step());  // fires `id`
  sim.cancel(id);           // stale id: must be a no-op
  sim.cancel(id);           // double-cancel: still a no-op
  EXPECT_EQ(sim.pendingCount(), 1u);
  EXPECT_FALSE(sim.empty());
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(sim.pendingCount(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, DoubleCancelDoesNotUnderflowPendingCount) {
  Simulator sim;
  EventId id = sim.scheduleAfter(milliseconds(1), [] {});
  sim.cancel(id);
  sim.cancel(id);
  EXPECT_EQ(sim.pendingCount(), 0u);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.run(), 0u);
}

TEST(SimulatorTest, StaleIdOnRecycledSlotIsNoop) {
  Simulator sim;
  EventId a = sim.scheduleAfter(milliseconds(1), [] {});
  sim.run();
  // B re-uses A's slot; the stale A handle must not cancel it.
  bool bFired = false;
  sim.scheduleAfter(milliseconds(1), [&] { bFired = true; });
  sim.cancel(a);
  EXPECT_EQ(sim.pendingCount(), 1u);
  sim.run();
  EXPECT_TRUE(bFired);
}

TEST(SimulatorTest, RearmCurrentRepeatsTheFiringCallback) {
  Simulator sim;
  int count = 0;
  sim.scheduleAfter(milliseconds(1), [&] {
    if (++count < 3) sim.rearmCurrentAfter(milliseconds(1));
  });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), kSimEpoch + milliseconds(3));
}

TEST(SimulatorTest, CancellingRearmedIdStopsRepetition) {
  Simulator sim;
  int count = 0;
  sim.scheduleAfter(milliseconds(1), [&] {
    ++count;
    EventId next = sim.rearmCurrentAfter(milliseconds(1));
    if (count >= 2) sim.cancel(next);
  });
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(sim.empty());
}

TEST(PeriodicTaskTest, StopTwiceThenRestartIsSafe) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, milliseconds(10), [&] { ++count; });
  task.start();
  sim.runUntil(kSimEpoch + milliseconds(25));
  task.stop();
  task.stop();  // regression: re-stop must not re-cancel a stale id
  bool bystander = false;
  sim.scheduleAfter(milliseconds(1), [&] { bystander = true; });
  task.stop();  // nor after an unrelated event took over the seq space
  sim.run();
  EXPECT_TRUE(bystander);
  EXPECT_EQ(count, 2);
  task.start();
  sim.runFor(milliseconds(15));
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto runOnce = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule(kSimEpoch + milliseconds(i % 7), [&order, i] {
        order.push_back(i);
      });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

}  // namespace
}  // namespace microedge
