// Offline admission planner: scenario parsing, plan correctness across
// scheduler modes, and rendering.

#include <gtest/gtest.h>

#include "models/zoo.hpp"
#include "testbed/planner.hpp"

namespace microedge {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  ModelRegistry registry_ = zoo::standardZoo();
};

TEST_F(PlannerTest, ParsesFullScenario) {
  auto scenario = scenarioFromYaml(
      "cluster:\n"
      "  tpus: 4\n"
      "  param-memory-mb: 6.9\n"
      "scheduler:\n"
      "  mode: microedge\n"
      "  co-compile: false\n"
      "  strategy: best-fit\n"
      "pods:\n"
      "  - name: a\n"
      "    model: mobilenet-v1\n"
      "    fps: 30\n"
      "  - name: b\n"
      "    model: unet-v2\n"
      "    tpu-units: 0.5\n",
      registry_);
  ASSERT_TRUE(scenario.isOk()) << scenario.status();
  EXPECT_EQ(scenario->tpus, 4);
  EXPECT_EQ(scenario->mode, SchedulingMode::kMicroEdgeNoWp);
  EXPECT_FALSE(scenario->coCompile);
  EXPECT_EQ(scenario->strategy, PackingStrategy::kBestFit);
  ASSERT_EQ(scenario->pods.size(), 2u);
  EXPECT_DOUBLE_EQ(scenario->pods[0].fps, 30.0);
  EXPECT_DOUBLE_EQ(scenario->pods[1].tpuUnits, 0.5);
}

TEST_F(PlannerTest, DefaultsApply) {
  auto scenario = scenarioFromYaml(
      "pods:\n"
      "  - name: a\n"
      "    model: ssd-mobilenet-v2\n",
      registry_);
  ASSERT_TRUE(scenario.isOk()) << scenario.status();
  EXPECT_EQ(scenario->tpus, 6);
  EXPECT_EQ(scenario->mode, SchedulingMode::kMicroEdgeWp);
  EXPECT_TRUE(scenario->coCompile);
}

TEST_F(PlannerTest, ValidationErrors) {
  EXPECT_FALSE(scenarioFromYaml("pods:\n", registry_).isOk());
  EXPECT_FALSE(scenarioFromYaml("cluster:\n  tpus: 0\npods:\n  - name: a\n"
                                "    model: mobilenet-v1\n",
                                registry_)
                   .isOk());
  EXPECT_FALSE(
      scenarioFromYaml("pods:\n  - name: a\n    model: nope\n", registry_)
          .isOk());
  EXPECT_FALSE(scenarioFromYaml(
                   "scheduler:\n  mode: chaotic\npods:\n  - name: a\n"
                   "    model: mobilenet-v1\n",
                   registry_)
                   .isOk());
  EXPECT_FALSE(scenarioFromYaml(
                   "pods:\n  - name: a\n    model: mobilenet-v1\n"
                   "    tpu-units: -1\n",
                   registry_)
                   .isOk());
}

TEST_F(PlannerTest, PlanMatchesAdmissionMath) {
  PlannerScenario scenario;
  scenario.tpus = 2;
  for (int i = 0; i < 6; ++i) {
    scenario.pods.push_back(
        {"cam-" + std::to_string(i), zoo::kSsdMobileNetV2, 15.0, 0.0});
  }
  PlannerResult result = planScenario(scenario, registry_);
  // 2 TPUs / 0.35 units -> 5 cameras with workload partitioning.
  EXPECT_EQ(result.accepted, 5u);
  EXPECT_EQ(result.rejected, 1u);
  EXPECT_FALSE(result.placements[5].accepted);
  EXPECT_FALSE(result.placements[5].reason.empty());
  // The fifth camera is the partitioned one.
  EXPECT_EQ(result.placements[4].shares.size(), 2u);
  ASSERT_EQ(result.tpus.size(), 2u);
  EXPECT_DOUBLE_EQ(result.tpus[0].load, 1.0);
  EXPECT_DOUBLE_EQ(result.tpus[1].load, 0.75);
}

TEST_F(PlannerTest, BaselineModePlansWholeTpus) {
  PlannerScenario scenario;
  scenario.mode = SchedulingMode::kBaselineDedicated;
  scenario.tpus = 4;
  scenario.pods.push_back({"seg", zoo::kBodyPixMobileNetV1, 15.0, 0.0});
  scenario.pods.push_back({"cam", zoo::kSsdMobileNetV2, 15.0, 0.0});
  PlannerResult result = planScenario(scenario, registry_);
  EXPECT_EQ(result.accepted, 2u);
  EXPECT_EQ(result.placements[0].shares.size(), 2u);  // BodyPix: 2 TPUs
  // Three TPUs fully dedicated.
  int fullyLoaded = 0;
  for (const auto& row : result.tpus) {
    if (row.load == 1.0) ++fullyLoaded;
  }
  EXPECT_EQ(fullyLoaded, 3);
}

TEST_F(PlannerTest, ModelSizeRuleVisibleInPlan) {
  PlannerScenario scenario;
  scenario.tpus = 2;
  scenario.pods.push_back({"ssd", zoo::kSsdMobileNetV2, 15.0, 0.0});
  scenario.pods.push_back({"mn", zoo::kMobileNetV1, 15.0, 0.0});
  PlannerResult result = planScenario(scenario, registry_);
  ASSERT_EQ(result.accepted, 2u);
  // 6.2 + 4.2 MB cannot co-reside: distinct TPUs.
  EXPECT_NE(result.placements[0].shares[0].tpuId,
            result.placements[1].shares[0].tpuId);
  for (const auto& row : result.tpus) {
    EXPECT_LE(row.usedParamMb, 6.9);
  }
}

TEST_F(PlannerTest, RenderContainsKeyFacts) {
  PlannerScenario scenario;
  scenario.tpus = 1;
  scenario.pods.push_back({"cam", zoo::kSsdMobileNetV2, 15.0, 0.0});
  scenario.pods.push_back({"big", zoo::kBodyPixMobileNetV1, 15.0, 0.0});
  PlannerResult result = planScenario(scenario, registry_);
  std::string rendered = renderPlan(scenario, result);
  EXPECT_NE(rendered.find("cam"), std::string::npos);
  EXPECT_NE(rendered.find("REJECTED"), std::string::npos);
  EXPECT_NE(rendered.find("tpu-00"), std::string::npos);
  EXPECT_NE(rendered.find("accepted 1 / rejected 1"), std::string::npos);
}

TEST_F(PlannerTest, EndToEndFromYaml) {
  auto scenario = scenarioFromYaml(
      "cluster:\n"
      "  tpus: 6\n"
      "pods:\n"
      "  - name: seg-0\n"
      "    model: bodypix-mobilenet-v1\n"
      "  - name: seg-1\n"
      "    model: bodypix-mobilenet-v1\n"
      "  - name: seg-2\n"
      "    model: bodypix-mobilenet-v1\n"
      "  - name: seg-3\n"
      "    model: bodypix-mobilenet-v1\n"
      "  - name: seg-4\n"
      "    model: bodypix-mobilenet-v1\n"
      "  - name: seg-5\n"
      "    model: bodypix-mobilenet-v1\n",
      registry_);
  ASSERT_TRUE(scenario.isOk()) << scenario.status();
  PlannerResult result = planScenario(*scenario, registry_);
  // Fig. 5c's W.P. point: floor(6 / 1.2) = 5 BodyPix cameras.
  EXPECT_EQ(result.accepted, 5u);
  EXPECT_EQ(result.rejected, 1u);
}

TEST_F(PlannerTest, SimulateScenarioDeliversThePlan) {
  PlannerScenario scenario;
  scenario.tpus = 2;
  for (int i = 0; i < 5; ++i) {
    scenario.pods.push_back(
        {"cam-" + std::to_string(i), zoo::kSsdMobileNetV2, 15.0, 0.0});
  }
  scenario.pods.push_back({"overflow", zoo::kSsdMobileNetV2, 15.0, 0.0});
  SimulationOutcome outcome = simulateScenario(scenario, seconds(15));
  EXPECT_EQ(outcome.admitted, 5u);
  EXPECT_EQ(outcome.rejected, 1u);
  ASSERT_EQ(outcome.streams.size(), 6u);
  for (const auto& row : outcome.streams) {
    if (row.pod == "overflow") {
      EXPECT_FALSE(row.admitted);
      continue;
    }
    EXPECT_TRUE(row.admitted);
    EXPECT_NEAR(row.achievedFps, 15.0, 0.6) << row.pod;
    EXPECT_TRUE(row.sloMet) << row.pod;
  }
  // 5 * 0.35 units on 2 TPUs.
  EXPECT_NEAR(outcome.meanTpuUtilization, 0.875, 0.03);
  std::string rendered = renderSimulation(scenario, outcome, seconds(15));
  EXPECT_NE(rendered.find("rejected"), std::string::npos);
  EXPECT_NE(rendered.find("utilization"), std::string::npos);
}

}  // namespace
}  // namespace microedge
