// Admission control (Algorithm 1): the TPU Units Rule, the Model Size Rule,
// workload partitioning, all-or-nothing commit, and pool invariants under
// randomized request/release sequences.

#include <gtest/gtest.h>

#include <set>

#include "core/admission.hpp"
#include "models/zoo.hpp"
#include "util/rng.hpp"

namespace microedge {
namespace {

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest() : zoo_(zoo::standardZoo()) {}

  void buildPool(int tpus) {
    for (int i = 0; i < tpus; ++i) {
      ASSERT_TRUE(pool_.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
    }
  }

  ModelRegistry zoo_;
  TpuPool pool_;
};

TEST_F(AdmissionTest, SingleRequestLandsOnFirstTpu) {
  buildPool(3);
  AdmissionController admission(pool_, zoo_, {});
  auto result = admission.admit(1, zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35));
  ASSERT_TRUE(result.isOk());
  ASSERT_EQ(result->allocation.shares.size(), 1u);
  EXPECT_EQ(result->allocation.shares[0].tpuId, "tpu-0");
  EXPECT_EQ(result->allocation.shares[0].units.milli(), 350);
  ASSERT_EQ(result->loads.size(), 1u);
  EXPECT_EQ(result->loads[0].composite,
            std::vector<std::string>{zoo::kSsdMobileNetV2});
}

TEST_F(AdmissionTest, TpuUnitsRuleTwo035FitThirdSpills) {
  buildPool(2);
  AdmissionController admission(pool_, zoo_, {});
  TpuUnit units = TpuUnit::fromDouble(0.35);
  for (std::uint64_t pod = 1; pod <= 3; ++pod) {
    auto result = admission.admit(pod, zoo::kSsdMobileNetV2, units);
    ASSERT_TRUE(result.isOk()) << "pod " << pod;
    EXPECT_EQ(result->allocation.shares[0].tpuId, pod <= 2 ? "tpu-0" : "tpu-1");
  }
  EXPECT_EQ(pool_.find("tpu-0")->currentLoad().milli(), 700);
  EXPECT_EQ(pool_.find("tpu-1")->currentLoad().milli(), 350);
}

TEST_F(AdmissionTest, SecondPodSameModelProducesNoNewLoadCommand) {
  buildPool(1);
  AdmissionController admission(pool_, zoo_, {});
  auto first = admission.admit(1, zoo::kMobileNetV1, TpuUnit::fromDouble(0.2));
  ASSERT_TRUE(first.isOk());
  EXPECT_EQ(first->loads.size(), 1u);
  auto second = admission.admit(2, zoo::kMobileNetV1, TpuUnit::fromDouble(0.2));
  ASSERT_TRUE(second.isOk());
  // Model already resident: no model-switching overhead (§4.1's motivation
  // for the Model knob).
  EXPECT_TRUE(second->loads.empty());
}

TEST_F(AdmissionTest, ModelSizeRuleForcesSeparateTpus) {
  buildPool(2);
  AdmissionController admission(pool_, zoo_, {});
  // SSD (6.2 MB) occupies tpu-0; MobileNet V1 (4.2 MB) cannot co-reside.
  ASSERT_TRUE(
      admission.admit(1, zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35))
          .isOk());
  auto second = admission.admit(2, zoo::kMobileNetV1, TpuUnit::fromDouble(0.1));
  ASSERT_TRUE(second.isOk());
  EXPECT_EQ(second->allocation.shares[0].tpuId, "tpu-1");
}

TEST_F(AdmissionTest, CoResidentModelsWithinBudgetShareOneTpu) {
  buildPool(2);
  AdmissionController admission(pool_, zoo_, {});
  ASSERT_TRUE(
      admission.admit(1, zoo::kMobileNetV1, TpuUnit::fromDouble(0.2)).isOk());
  auto second = admission.admit(2, zoo::kUNetV2, TpuUnit::fromDouble(0.3));
  ASSERT_TRUE(second.isOk());
  EXPECT_EQ(second->allocation.shares[0].tpuId, "tpu-0");
  ASSERT_EQ(second->loads.size(), 1u);
  // The co-compiled composite holds both models, existing resident first.
  EXPECT_EQ(second->loads[0].composite,
            (std::vector<std::string>{zoo::kMobileNetV1, zoo::kUNetV2}));
}

TEST_F(AdmissionTest, PaperExampleThreePods06UnitsWithWp) {
  // §4.3's worked example: three 0.6-unit pods fit on two TPUs with
  // workload partitioning. Algorithm 1 partitions only when no single TPU
  // can host the request, so pods 1 and 2 take whole shares and pod 3
  // splits 0.4 / 0.2 across the residuals.
  buildPool(2);
  AdmissionController admission(pool_, zoo_, {});
  TpuUnit units = TpuUnit::fromDouble(0.6);

  auto pod1 = admission.admit(1, zoo::kMobileNetV1, units);
  ASSERT_TRUE(pod1.isOk());
  ASSERT_EQ(pod1->allocation.shares.size(), 1u);
  EXPECT_EQ(pod1->allocation.shares[0].tpuId, "tpu-0");

  auto pod2 = admission.admit(2, zoo::kMobileNetV1, units);
  ASSERT_TRUE(pod2.isOk());
  ASSERT_EQ(pod2->allocation.shares.size(), 1u);
  EXPECT_EQ(pod2->allocation.shares[0].tpuId, "tpu-1");

  auto pod3 = admission.admit(3, zoo::kMobileNetV1, units);
  ASSERT_TRUE(pod3.isOk());
  ASSERT_EQ(pod3->allocation.shares.size(), 2u);
  EXPECT_EQ(pod3->allocation.shares[0].tpuId, "tpu-0");
  EXPECT_EQ(pod3->allocation.shares[0].units.milli(), 400);
  EXPECT_EQ(pod3->allocation.shares[1].tpuId, "tpu-1");
  EXPECT_EQ(pod3->allocation.shares[1].units.milli(), 200);

  // 1.8 units packed onto two TPU Services (instead of three dedicated).
  EXPECT_EQ(pool_.find("tpu-0")->currentLoad(), TpuUnit::full());
  EXPECT_EQ(pool_.find("tpu-1")->currentLoad().milli(), 800);
  EXPECT_EQ(admission.partitionedCount(), 1u);
}

TEST_F(AdmissionTest, WithoutWpThreePods06NeedThreeTpus) {
  buildPool(3);
  AdmissionConfig config;
  config.enableWorkloadPartitioning = false;
  AdmissionController admission(pool_, zoo_, config);
  TpuUnit units = TpuUnit::fromDouble(0.6);
  for (std::uint64_t pod = 1; pod <= 3; ++pod) {
    auto result = admission.admit(pod, zoo::kMobileNetV1, units);
    ASSERT_TRUE(result.isOk());
    EXPECT_EQ(result->allocation.shares.size(), 1u);
  }
  EXPECT_EQ(pool_.usedTpuCount(), 3u);
}

TEST_F(AdmissionTest, BodyPixOver1UnitNeedsWp) {
  buildPool(2);
  TpuUnit units = TpuUnit::fromDouble(1.2);
  {
    AdmissionConfig config;
    config.enableWorkloadPartitioning = false;
    AdmissionController admission(pool_, zoo_, config);
    auto result = admission.admit(1, zoo::kBodyPixMobileNetV1, units);
    EXPECT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
  {
    AdmissionController admission(pool_, zoo_, {});
    auto result = admission.admit(1, zoo::kBodyPixMobileNetV1, units);
    ASSERT_TRUE(result.isOk());
    ASSERT_EQ(result->allocation.shares.size(), 2u);
    EXPECT_EQ(result->allocation.totalUnits().milli(), 1200);
  }
}

TEST_F(AdmissionTest, RejectionLeavesNoResidue) {
  buildPool(1);
  AdmissionController admission(pool_, zoo_, {});
  ASSERT_TRUE(
      admission.admit(1, zoo::kMobileNetV1, TpuUnit::fromDouble(0.8)).isOk());
  // 0.5 more cannot fit anywhere (only 0.2 free in the whole pool).
  auto rejected = admission.admit(2, zoo::kMobileNetV1, TpuUnit::fromDouble(0.5));
  ASSERT_FALSE(rejected.isOk());
  EXPECT_EQ(pool_.find("tpu-0")->currentLoad().milli(), 800);
  EXPECT_EQ(pool_.find("tpu-0")->refCount(zoo::kMobileNetV1), 1);
  EXPECT_EQ(admission.rejectedCount(), 1u);
}

TEST_F(AdmissionTest, WpSkipsTpusWhereModelCannotReside) {
  buildPool(2);
  AdmissionController admission(pool_, zoo_, {});
  // tpu-0 is dominated by SSD (6.2 MB) with 0.9 load free... but MobileNet
  // V1 cannot fit its memory; partitioned UNet can only use tpu-1.
  ASSERT_TRUE(
      admission.admit(1, zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.1))
          .isOk());
  auto result = admission.admit(2, zoo::kMobileNetV1, TpuUnit::fromDouble(0.9));
  ASSERT_TRUE(result.isOk());
  ASSERT_EQ(result->allocation.shares.size(), 1u);
  EXPECT_EQ(result->allocation.shares[0].tpuId, "tpu-1");
}

TEST_F(AdmissionTest, ReleaseReturnsUnitsAndDropsRefs) {
  buildPool(1);
  AdmissionController admission(pool_, zoo_, {});
  auto result = admission.admit(1, zoo::kMobileNetV1, TpuUnit::fromDouble(0.7));
  ASSERT_TRUE(result.isOk());
  ASSERT_TRUE(admission.release(result->allocation).isOk());
  EXPECT_TRUE(pool_.find("tpu-0")->currentLoad().isZero());
  EXPECT_FALSE(pool_.find("tpu-0")->hasModel(zoo::kMobileNetV1));
  // Released capacity is immediately reusable.
  EXPECT_TRUE(
      admission.admit(2, zoo::kUNetV2, TpuUnit::fromDouble(1.0)).isOk());
}

TEST_F(AdmissionTest, ReleaseToleratesRemovedTpu) {
  buildPool(2);
  AdmissionController admission(pool_, zoo_, {});
  auto result = admission.admit(1, zoo::kBodyPixMobileNetV1,
                                TpuUnit::fromDouble(1.2));
  ASSERT_TRUE(result.isOk());
  ASSERT_TRUE(pool_.removeTpu("tpu-0").isOk());
  EXPECT_TRUE(admission.release(result->allocation).isOk());
  EXPECT_TRUE(pool_.find("tpu-1")->currentLoad().isZero());
}

TEST_F(AdmissionTest, OversizedModelSchedulesAlone) {
  buildPool(1);
  AdmissionController admission(pool_, zoo_, {});
  // ResNet-50 (25 MB) exceeds the parameter memory entirely; it may only
  // run on an otherwise-empty TPU (partial caching).
  auto alone = admission.admit(1, zoo::kResNet50, TpuUnit::fromDouble(0.3));
  ASSERT_TRUE(alone.isOk());
  // Nothing else may join that TPU now.
  auto second = admission.admit(2, zoo::kMobileNetV1, TpuUnit::fromDouble(0.1));
  EXPECT_FALSE(second.isOk());
}

TEST_F(AdmissionTest, OversizedModelRejectedOnOccupiedTpu) {
  buildPool(1);
  AdmissionController admission(pool_, zoo_, {});
  ASSERT_TRUE(
      admission.admit(1, zoo::kMobileNetV1, TpuUnit::fromDouble(0.1)).isOk());
  EXPECT_FALSE(
      admission.admit(2, zoo::kResNet50, TpuUnit::fromDouble(0.3)).isOk());
}

TEST_F(AdmissionTest, NoCoCompileMeansOneDistinctModelPerTpu) {
  buildPool(2);
  AdmissionConfig config;
  config.enableCoCompile = false;
  AdmissionController admission(pool_, zoo_, config);
  // Same model can still time-share one TPU...
  ASSERT_TRUE(
      admission.admit(1, zoo::kMobileNetV1, TpuUnit::fromDouble(0.3)).isOk());
  auto same = admission.admit(2, zoo::kMobileNetV1, TpuUnit::fromDouble(0.3));
  ASSERT_TRUE(same.isOk());
  EXPECT_EQ(same->allocation.shares[0].tpuId, "tpu-0");
  // ...but a different model must take a fresh TPU even though 4.2 + 2.5
  // would fit the memory budget.
  auto other = admission.admit(3, zoo::kUNetV2, TpuUnit::fromDouble(0.2));
  ASSERT_TRUE(other.isOk());
  EXPECT_EQ(other->allocation.shares[0].tpuId, "tpu-1");
}

TEST_F(AdmissionTest, UnknownModelRejected) {
  buildPool(1);
  AdmissionController admission(pool_, zoo_, {});
  EXPECT_EQ(admission.admit(1, "bogus", TpuUnit::fromDouble(0.1))
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(
      admission.admit(2, zoo::kMobileNetV1, TpuUnit::zero()).isOk());
}

TEST_F(AdmissionTest, CapacityCoralPie17CamerasOn6Tpus) {
  // §6.2's headline: 17 cameras at 0.35 units on 6 TPUs (2.8x the baseline).
  buildPool(6);
  AdmissionController admission(pool_, zoo_, {});
  int admitted = 0;
  for (std::uint64_t pod = 1; pod <= 64; ++pod) {
    if (!admission
             .admit(pod, zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35))
             .isOk()) {
      break;
    }
    ++admitted;
  }
  EXPECT_EQ(admitted, 17);
}

TEST_F(AdmissionTest, CapacityWithoutWpIs12) {
  buildPool(6);
  AdmissionConfig config;
  config.enableWorkloadPartitioning = false;
  AdmissionController admission(pool_, zoo_, config);
  int admitted = 0;
  for (std::uint64_t pod = 1; pod <= 64; ++pod) {
    if (!admission
             .admit(pod, zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35))
             .isOk()) {
      break;
    }
    ++admitted;
  }
  EXPECT_EQ(admitted, 12);  // 2 per TPU
}

TEST_F(AdmissionTest, CapacityBodyPix5CamerasOn6TpusWithWp) {
  buildPool(6);
  AdmissionController admission(pool_, zoo_, {});
  int admitted = 0;
  for (std::uint64_t pod = 1; pod <= 16; ++pod) {
    if (!admission
             .admit(pod, zoo::kBodyPixMobileNetV1, TpuUnit::fromDouble(1.2))
             .isOk()) {
      break;
    }
    ++admitted;
  }
  EXPECT_EQ(admitted, 5);  // floor(6 / 1.2)
}

// ---- Randomized invariants ------------------------------------------------

struct RandomScenario {
  std::uint64_t seed;
  bool workloadPartitioning;
  bool coCompile;
};

class AdmissionPropertyTest : public ::testing::TestWithParam<RandomScenario> {
};

TEST_P(AdmissionPropertyTest, InvariantsHoldUnderChurn) {
  const RandomScenario scenario = GetParam();
  ModelRegistry zoo = zoo::standardZoo();
  TpuPool pool;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(pool.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
  }
  AdmissionConfig config;
  config.enableWorkloadPartitioning = scenario.workloadPartitioning;
  config.enableCoCompile = scenario.coCompile;
  AdmissionController admission(pool, zoo, config);

  const std::vector<std::string> models = {
      zoo::kMobileNetV1, zoo::kMobileNetV2, zoo::kUNetV2,
      zoo::kSsdMobileNetV2, zoo::kBodyPixMobileNetV1};
  Pcg32 rng(scenario.seed);
  std::vector<Allocation> live;
  std::uint64_t nextPod = 1;

  for (int step = 0; step < 600; ++step) {
    bool doRelease = !live.empty() && rng.bernoulli(0.4);
    if (doRelease) {
      std::size_t idx = rng.nextBounded(static_cast<std::uint32_t>(live.size()));
      ASSERT_TRUE(admission.release(live[idx]).isOk());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const std::string& model = models[rng.nextBounded(
          static_cast<std::uint32_t>(models.size()))];
      TpuUnit units = TpuUnit::fromMilli(50 + rng.nextBounded(1200));
      auto result = admission.admit(nextPod++, model, units);
      if (result.isOk()) {
        // Shares must sum exactly to the request and target distinct TPUs.
        EXPECT_EQ(result->allocation.totalUnits(), units);
        std::set<std::string> distinct;
        for (const auto& share : result->allocation.shares) {
          EXPECT_TRUE(share.units.isPositive());
          distinct.insert(share.tpuId);
        }
        EXPECT_EQ(distinct.size(), result->allocation.shares.size());
        if (!scenario.workloadPartitioning) {
          EXPECT_EQ(result->allocation.shares.size(), 1u);
        }
        live.push_back(result->allocation);
      }
    }

    // Pool invariants after every step.
    for (const TpuState& tpu : pool.tpus()) {
      // TPU Units Rule: never oversubscribed.
      EXPECT_LE(tpu.currentLoad(), TpuUnit::full()) << tpu.id();
      EXPECT_GE(tpu.currentLoad(), TpuUnit::zero()) << tpu.id();
      // Model Size Rule over live models (co-compile configurations), with
      // the documented oversized-model exception (alone on its TPU).
      if (scenario.coCompile) {
        double used = tpu.usedParamMb(zoo);
        if (used > 6.9) {
          EXPECT_EQ(tpu.liveModelCount(), 1u) << tpu.id();
        }
      } else {
        EXPECT_LE(tpu.liveModelCount(), 1u) << tpu.id();
      }
    }
    // Conservation: pool load equals the sum of live allocations.
    TpuUnit liveTotal;
    for (const auto& allocation : live) liveTotal += allocation.totalUnits();
    EXPECT_EQ(pool.totalLoad(), liveTotal);
  }

  // Draining everything returns the pool to zero.
  for (const auto& allocation : live) {
    EXPECT_TRUE(admission.release(allocation).isOk());
  }
  EXPECT_TRUE(pool.totalLoad().isZero());
  EXPECT_EQ(pool.usedTpuCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Churn, AdmissionPropertyTest,
    ::testing::Values(RandomScenario{1, true, true},
                      RandomScenario{2, true, false},
                      RandomScenario{3, false, true},
                      RandomScenario{4, false, false},
                      RandomScenario{5, true, true},
                      RandomScenario{6, true, true}));

}  // namespace
}  // namespace microedge
