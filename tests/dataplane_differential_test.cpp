// Differential check for the allocation-free fast path: the dense-handle
// client pipeline (3 fused events, ModelId/NodeId/TpuId throughout) must
// produce bit-for-bit identical FrameBreakdown timings to the literal
// five-stage string-path formulation built from the retained wrappers
// (transport.send(string,...), TpuService::invoke(string,...), one event per
// stage). SimTime is integer nanoseconds, so "identical" means EXPECT_EQ on
// every field — no tolerance.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dataplane/dataplane.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

struct Cluster {
  Cluster()
      : zoo(zoo::standardZoo()),
        topo(sim, zoo, spec()),
        dataPlane(sim, topo, zoo) {}

  static TopologySpec spec() {
    TopologySpec s;
    s.vRpiCount = 2;
    s.tRpiCount = 2;
    return s;
  }

  void loadAll(const std::string& model) {
    for (const char* tpu : {"tpu-00", "tpu-01"}) {
      ASSERT_TRUE(dataPlane.executeLoad(LoadCommand{tpu, {model}, {}}).isOk());
    }
    sim.run();
  }

  Simulator sim;
  ModelRegistry zoo;
  ClusterTopology topo;
  DataPlane dataPlane;
};

// The pre-refactor reference pipeline: five separate events per frame, all
// addressing by strings through the wrapper overloads.
class StringPathDriver {
 public:
  StringPathDriver(Cluster& cluster, std::string clientNode, std::string model)
      : cluster_(cluster), clientNode_(std::move(clientNode)),
        info_(cluster_.zoo.at(model)) {
    results_.reserve(256);  // pointers into results_ must stay stable
  }

  void invoke(const std::string& tpuId) {
    results_.emplace_back();
    FrameBreakdown* b = &results_.back();
    b->frameId = results_.size();
    b->submitted = cluster_.sim.now();
    b->preprocess = info_.preprocessLatency;
    TpuService* service = cluster_.dataPlane.service(tpuId);
    ASSERT_NE(service, nullptr);
    b->servedBy = service->tpu();
    const std::string serviceNode = service->node();
    // Stage 1: preprocess as its own event.
    cluster_.sim.scheduleAfter(info_.preprocessLatency, [=, this] {
      // Stage 2: request hop via the string overload.
      b->requestTransmit = cluster_.dataPlane.transport().send(
          clientNode_, serviceNode, info_.inputBytes(), [=, this] {
            // Stage 3: inference via the string overload.
            Status s = service->invoke(
                info_.name, [=, this](const TpuDevice::InvokeStats& stats) {
                  b->queueDelay = stats.queueDelay;
                  b->inference = stats.serviceTime;
                  // Stage 4: response hop via the string overload.
                  b->responseTransmit = cluster_.dataPlane.transport().send(
                      serviceNode, clientNode_, info_.outputBytes, [=, this] {
                        // Stage 5: postprocess as its own event.
                        b->postprocess = info_.postprocessLatency;
                        cluster_.sim.scheduleAfter(
                            info_.postprocessLatency,
                            [=, this] { b->completed = cluster_.sim.now(); });
                      });
                });
            ASSERT_TRUE(s.isOk());
          });
    });
  }

  const std::vector<FrameBreakdown>& results() const { return results_; }

 private:
  Cluster& cluster_;
  std::string clientNode_;
  ModelInfo info_;
  std::vector<FrameBreakdown> results_;
};

void expectIdentical(const FrameBreakdown& fast, const FrameBreakdown& ref) {
  EXPECT_EQ(fast.servedBy.value, ref.servedBy.value);
  EXPECT_EQ(fast.submitted, ref.submitted);
  EXPECT_EQ(fast.completed, ref.completed);
  EXPECT_EQ(fast.preprocess, ref.preprocess);
  EXPECT_EQ(fast.requestTransmit, ref.requestTransmit);
  EXPECT_EQ(fast.queueDelay, ref.queueDelay);
  EXPECT_EQ(fast.inference, ref.inference);
  EXPECT_EQ(fast.responseTransmit, ref.responseTransmit);
  EXPECT_EQ(fast.postprocess, ref.postprocess);
  EXPECT_EQ(fast.endToEnd(), ref.endToEnd());
}

TEST(DataplaneDifferentialTest, FusedPipelineMatchesFiveStageStringPath) {
  // Two separate simulations over identical topologies: one driven by the
  // dense-handle TpuClient, one by the literal string-path formulation.
  Cluster fast;
  Cluster ref;
  fast.loadAll(zoo::kSsdMobileNetV2);
  ref.loadAll(zoo::kSsdMobileNetV2);

  auto client = fast.dataPlane.makeClient("vrpi-00", zoo::kSsdMobileNetV2);
  ASSERT_TRUE(client
                  ->configureLb(LbConfig{{LbWeight{"tpu-00", 200},
                                          LbWeight{"tpu-01", 100}}})
                  .isOk());
  StringPathDriver driver(ref, "vrpi-00", zoo::kSsdMobileNetV2);

  // Drive both with the same arrival pattern and the same routing sequence
  // (the smooth-WRR 2:1 order is deterministic; mirror it on the reference).
  std::vector<FrameBreakdown> fastResults;
  fastResults.reserve(64);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client
                    ->invoke([&](const FrameBreakdown& b) {
                      fastResults.push_back(b);
                    })
                    .isOk());
    fast.sim.run();
  }
  ASSERT_EQ(fastResults.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    driver.invoke(fastResults[i].servedByName());
    ref.sim.run();
  }

  for (int i = 0; i < 30; ++i) {
    SCOPED_TRACE(i);
    expectIdentical(fastResults[i], driver.results()[i]);
  }
}

TEST(DataplaneDifferentialTest, QueueContentionMatchesBitForBit) {
  // Four frames submitted at the same instant against one serial device:
  // fused events must reproduce the exact queue delays of the five-stage
  // form, not just the sums.
  Cluster fast;
  Cluster ref;
  fast.loadAll(zoo::kEfficientNetLite0);
  ref.loadAll(zoo::kEfficientNetLite0);

  auto client = fast.dataPlane.makeClient("vrpi-00", zoo::kEfficientNetLite0);
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());
  std::vector<FrameBreakdown> fastResults;
  fastResults.reserve(8);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client
                    ->invoke([&](const FrameBreakdown& b) {
                      fastResults.push_back(b);
                    })
                    .isOk());
  }
  fast.sim.run();
  ASSERT_EQ(fastResults.size(), 4u);

  StringPathDriver driver(ref, "vrpi-00", zoo::kEfficientNetLite0);
  for (int i = 0; i < 4; ++i) driver.invoke("tpu-00");
  ref.sim.run();

  for (int i = 0; i < 4; ++i) {
    SCOPED_TRACE(i);
    expectIdentical(fastResults[i], driver.results()[i]);
  }
}

}  // namespace
}  // namespace microedge
