// Model descriptors, registry behaviour and the calibrated zoo (the facts
// the paper's text pins down).

#include <gtest/gtest.h>

#include "models/zoo.hpp"

namespace microedge {
namespace {

TEST(ModelInfoTest, TpuUnitsMatchDutyCycleDefinition) {
  ModelInfo m;
  m.inferenceLatency = milliseconds(30);
  // The paper's worked example: 30 ms service at 10 FPS -> 0.3 units.
  EXPECT_NEAR(m.tpuUnitsAt(10.0), 0.3, 1e-9);
}

TEST(ModelInfoTest, FullUtilizationFps) {
  ModelInfo m;
  m.inferenceLatency = milliseconds(20);
  EXPECT_NEAR(m.fpsForFullUtilization(), 50.0, 1e-9);
}

TEST(ModelInfoTest, InputBytes) {
  ModelInfo m;
  m.inputWidth = 300;
  m.inputHeight = 300;
  m.inputChannels = 3;
  EXPECT_EQ(m.inputBytes(), 270000u);
}

TEST(ModelRegistryTest, AddAndFind) {
  ModelRegistry reg;
  ModelInfo m;
  m.name = "m1";
  m.inferenceLatency = milliseconds(10);
  m.paramSizeMb = 1.0;
  m.inputWidth = m.inputHeight = 100;
  EXPECT_TRUE(reg.add(m).isOk());
  EXPECT_TRUE(reg.contains("m1"));
  auto found = reg.find("m1");
  ASSERT_TRUE(found.isOk());
  EXPECT_EQ(found->name, "m1");
  EXPECT_EQ(reg.find("m2").status().code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, RejectsDuplicatesAndBadFields) {
  ModelRegistry reg;
  ModelInfo m;
  m.name = "m1";
  m.inferenceLatency = milliseconds(10);
  m.paramSizeMb = 1.0;
  m.inputWidth = m.inputHeight = 100;
  EXPECT_TRUE(reg.add(m).isOk());
  EXPECT_EQ(reg.add(m).code(), StatusCode::kAlreadyExists);

  ModelInfo bad = m;
  bad.name = "";
  EXPECT_EQ(reg.add(bad).code(), StatusCode::kInvalidArgument);
  bad = m;
  bad.name = "m2";
  bad.inferenceLatency = SimDuration::zero();
  EXPECT_EQ(reg.add(bad).code(), StatusCode::kInvalidArgument);
  bad = m;
  bad.name = "m3";
  bad.paramSizeMb = 0.0;
  EXPECT_EQ(reg.add(bad).code(), StatusCode::kInvalidArgument);
  bad = m;
  bad.name = "m4";
  bad.inputWidth = 0;
  EXPECT_EQ(reg.add(bad).code(), StatusCode::kInvalidArgument);
}

TEST(ModelRegistryTest, AddOrReplaceOverwrites) {
  ModelRegistry reg = zoo::standardZoo();
  ModelInfo m = reg.at(zoo::kMobileNetV1);
  m.inferenceLatency = milliseconds(99);
  reg.addOrReplace(m);
  EXPECT_EQ(reg.at(zoo::kMobileNetV1).inferenceLatency, milliseconds(99));
}

// ---- zoo calibration against the paper's stated facts -------------------

class ZooTest : public ::testing::Test {
 protected:
  ModelRegistry zoo_ = zoo::standardZoo();
};

TEST_F(ZooTest, ContainsAllEvaluationModels) {
  for (const auto& name : zoo::fig1Models()) {
    EXPECT_TRUE(zoo_.contains(name)) << name;
  }
  EXPECT_TRUE(zoo_.contains(zoo::kEfficientNetLite0));
  EXPECT_TRUE(zoo_.contains(zoo::kBodyPixMobileNetV1));
  EXPECT_TRUE(zoo_.contains(zoo::kUNetV2));
  EXPECT_EQ(zoo::fig1Models().size(), 8u);
}

TEST_F(ZooTest, CoralPieDetectionNeeds035UnitsAt15Fps) {
  // §6.2: "The detection ML model used by Coral-Pie needs 0.35 TPU units".
  double units = zoo_.at(zoo::kSsdMobileNetV2).tpuUnitsAt(15.0);
  EXPECT_NEAR(units, 0.35, 0.005);
}

TEST_F(ZooTest, BodyPixNeeds12UnitsAt15Fps) {
  // §6.2: "the segmentation ML model used by BodyPix needs 1.2 TPU units".
  double units = zoo_.at(zoo::kBodyPixMobileNetV1).tpuUnitsAt(15.0);
  EXPECT_NEAR(units, 1.2, 0.01);
  EXPECT_GT(units, 1.0);  // the whole reason workload partitioning exists
}

TEST_F(ZooTest, EfficientNetLite0Takes69Ms) {
  // §1: "per-frame inference processing for the EfficientNet-Lite0 model on
  // a TPU takes 69ms".
  EXPECT_NEAR(toMilliseconds(zoo_.at(zoo::kEfficientNetLite0).inferenceLatency),
              69.0, 1e-6);
}

TEST_F(ZooTest, ExpensiveModelsExceedFramePeriodAt15Fps) {
  // §1: ResNet-50 and EfficientDet-Lite0 exceed the 66.7 ms inter-arrival
  // period even at 15 FPS.
  double period = toMilliseconds(framePeriod(15.0));
  EXPECT_GT(toMilliseconds(zoo_.at(zoo::kResNet50).inferenceLatency), period);
  EXPECT_GT(toMilliseconds(zoo_.at(zoo::kEfficientDetLite0).inferenceLatency),
            period);
}

TEST_F(ZooTest, MajorityOfFig1ModelsNeedOver50FpsForFullUtilization) {
  // Fig. 1: the orange line is above 50 FPS for most of the eight models.
  int over50 = 0;
  for (const auto& name : zoo::fig1Models()) {
    if (zoo_.at(name).fpsForFullUtilization() > 50.0) ++over50;
  }
  EXPECT_GE(over50, 4);
}

TEST_F(ZooTest, ResNet50DoesNotFitTpuParameterMemory) {
  // 25 MB of parameters vs 6.9 MB budget: partial caching territory.
  EXPECT_GT(zoo_.at(zoo::kResNet50).paramSizeMb, 6.9);
}

TEST_F(ZooTest, SegmentationReturnsDenseMask) {
  const ModelInfo& bodypix = zoo_.at(zoo::kBodyPixMobileNetV1);
  EXPECT_EQ(bodypix.outputBytes,
            static_cast<std::size_t>(bodypix.inputWidth) *
                static_cast<std::size_t>(bodypix.inputHeight));
  EXPECT_LT(zoo_.at(zoo::kSsdMobileNetV2).outputBytes, 10000u);
}

}  // namespace
}  // namespace microedge
