// Batched-ingest acceptance proof: TpuClient::submitBurst(k frames) must be
// observably indistinguishable — per-frame FrameBreakdown timings, outcomes,
// failover counts, and client counters — from k sequential invoke() calls at
// the same instant. Two separate simulations over identical topologies are
// driven through each mode and compared field by field (SimTime is integer
// nanoseconds: EXPECT_EQ, no tolerance), across the paths where batching
// could plausibly diverge: queue contention, deadline shedding, circuit-
// breaker trips during routing, a service removal racing the burst's wire
// time, and an active transport loss + latency-spike window (keyed clients).
// Plus the edge cases: empty burst, burst larger than the free slab run,
// every target masked (exactly one terminal outcome per frame).

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dataplane/dataplane.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

struct Cluster {
  Cluster()
      : zoo(zoo::standardZoo()),
        topo(sim, zoo, spec()),
        dataPlane(sim, topo, zoo) {}

  static TopologySpec spec() {
    TopologySpec s;
    s.vRpiCount = 2;
    s.tRpiCount = 2;
    return s;
  }

  void loadAll(const std::string& model) {
    for (const char* tpu : {"tpu-00", "tpu-01"}) {
      ASSERT_TRUE(dataPlane.executeLoad(LoadCommand{tpu, {model}, {}}).isOk());
    }
    sim.run();
  }

  Simulator sim;
  ModelRegistry zoo;
  ClusterTopology topo;
  DataPlane dataPlane;
};

void expectIdentical(const FrameBreakdown& burst, const FrameBreakdown& seq) {
  EXPECT_EQ(burst.frameId, seq.frameId);
  EXPECT_EQ(burst.servedBy.value, seq.servedBy.value);
  EXPECT_EQ(static_cast<int>(burst.outcome), static_cast<int>(seq.outcome));
  EXPECT_EQ(burst.failovers, seq.failovers);
  EXPECT_EQ(burst.submitted, seq.submitted);
  EXPECT_EQ(burst.completed, seq.completed);
  EXPECT_EQ(burst.preprocess, seq.preprocess);
  EXPECT_EQ(burst.requestTransmit, seq.requestTransmit);
  EXPECT_EQ(burst.queueDelay, seq.queueDelay);
  EXPECT_EQ(burst.inference, seq.inference);
  EXPECT_EQ(burst.responseTransmit, seq.responseTransmit);
  EXPECT_EQ(burst.postprocess, seq.postprocess);
}

// Submits `k` frames through `client` — as one burst or as k sequential
// invokes — recording every completion into `out`.
void submit(TpuClient& client, std::size_t k, bool burst,
            std::vector<FrameBreakdown>* out) {
  auto record = [out](const FrameBreakdown& b) { out->push_back(b); };
  if (burst) {
    std::vector<TpuClient::FrameSpec> frames(k);
    for (auto& f : frames) f.done = record;
    ASSERT_TRUE(client.submitBurst(frames).isOk());
  } else {
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_TRUE(client.invoke(record).isOk());
    }
  }
}

void expectAllIdentical(const std::vector<FrameBreakdown>& burst,
                        const std::vector<FrameBreakdown>& seq) {
  ASSERT_EQ(burst.size(), seq.size());
  for (std::size_t i = 0; i < burst.size(); ++i) {
    SCOPED_TRACE(i);
    expectIdentical(burst[i], seq[i]);
  }
}

void expectSameCounters(const TpuClient& burst, const TpuClient& seq) {
  EXPECT_EQ(burst.submittedCount(), seq.submittedCount());
  EXPECT_EQ(burst.completedCount(), seq.completedCount());
  EXPECT_EQ(burst.failedCount(), seq.failedCount());
  EXPECT_EQ(burst.failoverCount(), seq.failoverCount());
  for (std::size_t o = 0; o < kFrameOutcomeCount; ++o) {
    EXPECT_EQ(burst.outcomeCount(static_cast<FrameOutcome>(o)),
              seq.outcomeCount(static_cast<FrameOutcome>(o)))
        << toString(static_cast<FrameOutcome>(o));
  }
}

// --- Differential: healthy, contended, mixed loopback/non-loopback ----------

TEST(BurstIngestTest, HealthyBurstsMatchSequentialBitForBit) {
  // Client on trpi-00: routes to tpu-00 are loopback, tpu-01 non-loopback,
  // so every round exercises BOTH coalesced groups plus queue contention on
  // the shared devices.
  Cluster a, b;
  a.loadAll(zoo::kSsdMobileNetV2);
  b.loadAll(zoo::kSsdMobileNetV2);
  const LbConfig lb{{LbWeight{"tpu-00", 200}, LbWeight{"tpu-01", 100}}};
  auto burstClient = a.dataPlane.makeClient("trpi-00", zoo::kSsdMobileNetV2);
  auto seqClient = b.dataPlane.makeClient("trpi-00", zoo::kSsdMobileNetV2);
  ASSERT_TRUE(burstClient->configureLb(lb).isOk());
  ASSERT_TRUE(seqClient->configureLb(lb).isOk());

  std::vector<FrameBreakdown> burstResults, seqResults;
  for (int round = 0; round < 4; ++round) {
    submit(*burstClient, 8, /*burst=*/true, &burstResults);
    submit(*seqClient, 8, /*burst=*/false, &seqResults);
    a.sim.run();
    b.sim.run();
  }
  ASSERT_EQ(burstResults.size(), 32u);
  expectAllIdentical(burstResults, seqResults);
  expectSameCounters(*burstClient, *seqClient);
  EXPECT_EQ(burstClient->outcomeCount(FrameOutcome::kCompleted), 32u);
}

// --- Differential: deadline shedding -----------------------------------------

TEST(BurstIngestTest, DeadlineSheddingMatchesSequential) {
  // One serial device, a burst deep enough that late arrivals' predicted
  // completion blows the deadline: the shed/timeout split must be identical
  // frame by frame, including deadline-timer behaviour (single splice vs k
  // appends).
  Cluster a, b;
  a.loadAll(zoo::kEfficientNetLite0);
  b.loadAll(zoo::kEfficientNetLite0);
  const LbConfig lb{{LbWeight{"tpu-00", 100}}};
  TpuClient::Config config;
  config.clientNode = "vrpi-00";
  config.model = zoo::kEfficientNetLite0;
  // ~69 ms inference per frame on one serial device: a 300 ms deadline lets
  // the first few frames through and sheds the deep tail at arrival.
  config.frameDeadline = milliseconds(300);
  auto burstClient = a.dataPlane.makeClient(config);
  auto seqClient = b.dataPlane.makeClient(config);
  ASSERT_TRUE(burstClient->configureLb(lb).isOk());
  ASSERT_TRUE(seqClient->configureLb(lb).isOk());

  std::vector<FrameBreakdown> burstResults, seqResults;
  submit(*burstClient, 24, /*burst=*/true, &burstResults);
  submit(*seqClient, 24, /*burst=*/false, &seqResults);
  a.sim.run();
  b.sim.run();

  ASSERT_EQ(burstResults.size(), 24u);
  expectAllIdentical(burstResults, seqResults);
  expectSameCounters(*burstClient, *seqClient);
  // The scenario actually sheds AND completes (not vacuous).
  EXPECT_GT(burstClient->outcomeCount(FrameOutcome::kShed), 0u);
  EXPECT_GT(burstClient->outcomeCount(FrameOutcome::kCompleted), 0u);
}

// --- Differential: breaker trips during burst routing -------------------------

TEST(BurstIngestTest, BreakerTripDuringRoutingMatchesSequential) {
  // tpu-00 is removed before the burst: its WRR draws feed the circuit
  // breaker until it masks the target mid-burst. The burst's prefetched raw
  // picks must replay the same draw sequence — same breaker trip point,
  // same serving targets.
  Cluster a, b;
  a.loadAll(zoo::kMobileNetV1);
  b.loadAll(zoo::kMobileNetV1);
  const LbConfig lb{{LbWeight{"tpu-00", 100}, LbWeight{"tpu-01", 100}}};
  auto burstClient = a.dataPlane.makeClient("vrpi-00", zoo::kMobileNetV1);
  auto seqClient = b.dataPlane.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(burstClient->configureLb(lb).isOk());
  ASSERT_TRUE(seqClient->configureLb(lb).isOk());
  a.dataPlane.removeService("tpu-00");
  b.dataPlane.removeService("tpu-00");

  std::vector<FrameBreakdown> burstResults, seqResults;
  submit(*burstClient, 12, /*burst=*/true, &burstResults);
  submit(*seqClient, 12, /*burst=*/false, &seqResults);
  a.sim.run();
  b.sim.run();

  ASSERT_EQ(burstResults.size(), 12u);
  expectAllIdentical(burstResults, seqResults);
  expectSameCounters(*burstClient, *seqClient);
  EXPECT_EQ(burstClient->outcomeCount(FrameOutcome::kCompleted), 12u);
  // The breaker visibly engaged: tpu-00 (weight index 0) is masked.
  EXPECT_EQ(burstClient->lbService().targetHealth(0), TargetHealth::kMasked);
  EXPECT_EQ(seqClient->lbService().targetHealth(0), TargetHealth::kMasked);
}

// --- Differential: removal racing the burst's wire time -----------------------

TEST(BurstIngestTest, RemovalWhileBurstInFlightMatchesSequential) {
  // The burst is on the wire (delivery event scheduled, frames in flight)
  // when tpu-01 vanishes: its frames fail over immediately via the fail-fast
  // broadcast, leaving stale handles in the coalesced fan-out list that the
  // generation check must skip.
  Cluster a, b;
  a.loadAll(zoo::kMobileNetV1);
  b.loadAll(zoo::kMobileNetV1);
  const LbConfig lb{{LbWeight{"tpu-00", 100}, LbWeight{"tpu-01", 100}}};
  auto burstClient = a.dataPlane.makeClient("vrpi-00", zoo::kMobileNetV1);
  auto seqClient = b.dataPlane.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(burstClient->configureLb(lb).isOk());
  ASSERT_TRUE(seqClient->configureLb(lb).isOk());

  std::vector<FrameBreakdown> burstResults, seqResults;
  submit(*burstClient, 10, /*burst=*/true, &burstResults);
  submit(*seqClient, 10, /*burst=*/false, &seqResults);
  // Same instant, after submission, before any delivery: the broadcast
  // sweeps the in-flight frames in frameId order in both modes.
  a.dataPlane.removeService("tpu-01");
  b.dataPlane.removeService("tpu-01");
  a.sim.run();
  b.sim.run();

  ASSERT_EQ(burstResults.size(), 10u);
  expectAllIdentical(burstResults, seqResults);
  expectSameCounters(*burstClient, *seqClient);
  // Failovers actually happened (the race was real) and every frame still
  // terminated exactly once.
  EXPECT_GT(burstClient->failoverCount(), 0u);
  EXPECT_EQ(burstClient->outstanding(), 0u);
  EXPECT_EQ(burstClient->contextsInFlight(), 0u);
}

// --- Differential: active loss + latency-spike window (keyed clients) ---------

TEST(BurstIngestTest, FaultWindowActiveMidBurstMatchesSequential) {
  // A transport fault (30% loss, 2x latency) is live while the bursts ship.
  // Both clients carry the same stream token (DataPlane auto-assigns 1 to
  // its first client), so which frames the window eats is a pure function
  // of (seed, token, frameId, attempt, hop) — identical across modes. Lost
  // frames surface as deadline timeouts.
  Cluster a, b;
  a.loadAll(zoo::kMobileNetV1);
  b.loadAll(zoo::kMobileNetV1);
  const LbConfig lb{{LbWeight{"tpu-00", 100}, LbWeight{"tpu-01", 100}}};
  TpuClient::Config config;
  config.clientNode = "vrpi-00";
  config.model = zoo::kMobileNetV1;
  config.frameDeadline = milliseconds(50);
  auto burstClient = a.dataPlane.makeClient(config);
  auto seqClient = b.dataPlane.makeClient(config);
  ASSERT_EQ(burstClient->config().streamToken, seqClient->config().streamToken);
  ASSERT_NE(burstClient->config().streamToken, 0u);
  ASSERT_TRUE(burstClient->configureLb(lb).isOk());
  ASSERT_TRUE(seqClient->configureLb(lb).isOk());
  a.dataPlane.transport().setFault(0.3, 2.0, /*seed=*/7);
  b.dataPlane.transport().setFault(0.3, 2.0, /*seed=*/7);

  std::vector<FrameBreakdown> burstResults, seqResults;
  for (int round = 0; round < 3; ++round) {
    submit(*burstClient, 16, /*burst=*/true, &burstResults);
    submit(*seqClient, 16, /*burst=*/false, &seqResults);
    a.sim.run();
    b.sim.run();
  }

  ASSERT_EQ(burstResults.size(), 48u);
  expectAllIdentical(burstResults, seqResults);
  expectSameCounters(*burstClient, *seqClient);
  // Loss visibly hit the wire and the cluster still completed frames.
  EXPECT_GT(burstClient->outcomeCount(FrameOutcome::kTimedOut), 0u);
  EXPECT_GT(burstClient->outcomeCount(FrameOutcome::kCompleted), 0u);
}

// --- Edge cases ---------------------------------------------------------------

TEST(BurstIngestTest, EmptyBurstIsANoop) {
  Cluster cluster;
  cluster.loadAll(zoo::kMobileNetV1);
  auto client = cluster.dataPlane.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(
      client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());
  std::vector<TpuClient::FrameSpec> none;
  EXPECT_TRUE(client->submitBurst(none).isOk());
  EXPECT_EQ(client->submittedCount(), 0u);
  EXPECT_EQ(client->contextsInFlight(), 0u);
  EXPECT_EQ(cluster.sim.pendingCount(), 0u);
}

TEST(BurstIngestTest, BurstLargerThanFreeSlabRunGrowsThePool) {
  // A burst far larger than any slab chunk: acquireRun must grow the pool
  // mid-acquisition, every frame must reach a terminal outcome, and every
  // slot must come back.
  Cluster cluster;
  cluster.loadAll(zoo::kMobileNetV1);
  auto client = cluster.dataPlane.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(
      client->configureLb(LbConfig{{LbWeight{"tpu-00", 100},
                                    LbWeight{"tpu-01", 100}}}).isOk());
  constexpr std::size_t kBig = 1500;
  std::size_t done = 0;
  std::vector<TpuClient::FrameSpec> frames(kBig);
  for (auto& f : frames) {
    f.done = [&done](const FrameBreakdown&) { ++done; };
  }
  ASSERT_TRUE(client->submitBurst(frames).isOk());
  EXPECT_EQ(client->submittedCount(), kBig);
  EXPECT_EQ(client->contextsInFlight(), kBig);
  cluster.sim.run();
  EXPECT_EQ(done, kBig);
  EXPECT_EQ(client->outcomeCount(FrameOutcome::kCompleted), kBig);
  EXPECT_EQ(client->contextsInFlight(), 0u);
}

TEST(BurstIngestTest, AllTargetsMaskedEveryFrameGetsExactlyOneOutcome) {
  // Both services are gone before the burst: every frame must terminate
  // kDroppedDeadTarget with its callback fired exactly once, synchronously,
  // mid-loop (the flush-before-callback path).
  Cluster cluster;
  cluster.loadAll(zoo::kMobileNetV1);
  auto client = cluster.dataPlane.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(
      client->configureLb(LbConfig{{LbWeight{"tpu-00", 100},
                                    LbWeight{"tpu-01", 100}}}).isOk());
  cluster.dataPlane.removeService("tpu-00");
  cluster.dataPlane.removeService("tpu-01");

  constexpr std::size_t kFrames = 5;
  std::vector<int> fired(kFrames, 0);
  std::vector<TpuClient::FrameSpec> frames(kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) {
    frames[i].done = [&fired, i](const FrameBreakdown& b) {
      ++fired[i];
      EXPECT_EQ(b.outcome, FrameOutcome::kDroppedDeadTarget);
    };
  }
  ASSERT_TRUE(client->submitBurst(frames).isOk());
  for (std::size_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(fired[i], 1) << "frame " << i;
  }
  EXPECT_EQ(client->outcomeCount(FrameOutcome::kDroppedDeadTarget), kFrames);
  EXPECT_EQ(client->contextsInFlight(), 0u);
  EXPECT_EQ(cluster.sim.pendingCount(), 0u);
}

}  // namespace
}  // namespace microedge
