// Closed-loop overload control (DESIGN.md §14): the admission ledger's
// charge/credit arithmetic and progress rule, the per-stream degradation
// ladder's hysteresis, the SLO-triggered repack supervisor's windowing, and
// the end-to-end contracts — admission-on below capacity is outcome-identical
// to admission-off, an overloaded admission-on client never lets an admitted
// frame miss its deadline, and the metrics export carries the new counters
// with features off reading all-zero.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/admission_ledger.hpp"
#include "core/overload_supervisor.hpp"
#include "dataplane/dataplane.hpp"
#include "models/zoo.hpp"
#include "testbed/degradation.hpp"
#include "testbed/sharded_cluster.hpp"
#include "testbed/testbed.hpp"

namespace microedge {
namespace {

// --- AdmissionLedger ---------------------------------------------------------

TEST(AdmissionLedgerTest, ChargesUpToCapacityThenRejects) {
  AdmissionLedger ledger;
  const AdmissionLedger::TargetCapacity targets[] = {{internTpu("al-a"), 500}};
  ledger.reconfigure(targets, 1, 1.0);
  const std::uint32_t entry = ledger.entryFor(internTpu("al-a"));
  ASSERT_NE(entry, AdmissionLedger::kNoEntry);
  EXPECT_EQ(ledger.entryCapacity(entry), 500);

  EXPECT_TRUE(ledger.tryCharge(entry, 200));
  EXPECT_TRUE(ledger.tryCharge(entry, 200));
  EXPECT_EQ(ledger.entryCharged(entry), 400);
  // 400 + 200 > 500: saturated, and the rejection has no side effects.
  EXPECT_FALSE(ledger.tryCharge(entry, 200));
  EXPECT_EQ(ledger.entryCharged(entry), 400);
  EXPECT_TRUE(ledger.tryCharge(entry, 100));  // exact fit admits
  EXPECT_EQ(ledger.entryCharged(entry), 500);

  ledger.credit(entry, 200);
  ledger.credit(entry, 200);
  ledger.credit(entry, 100);
  EXPECT_EQ(ledger.entryCharged(entry), 0);
  EXPECT_EQ(ledger.chargedMilli(), 0);
  EXPECT_EQ(ledger.acceptedCount(), 3u);
  EXPECT_EQ(ledger.rejectedCount(), 1u);
  EXPECT_EQ(ledger.creditedCount(), 3u);
}

TEST(AdmissionLedgerTest, ProgressRuleAdmitsOneOversizedFrame) {
  // A 50-milli share serving 75-milli frames must not starve: an entry with
  // zero outstanding charge always admits exactly one frame.
  AdmissionLedger ledger;
  const AdmissionLedger::TargetCapacity targets[] = {{internTpu("al-b"), 50}};
  ledger.reconfigure(targets, 1, 1.0);
  const std::uint32_t entry = ledger.entryFor(internTpu("al-b"));
  ASSERT_NE(entry, AdmissionLedger::kNoEntry);

  EXPECT_TRUE(ledger.tryCharge(entry, 75));   // progress rule
  EXPECT_FALSE(ledger.tryCharge(entry, 75));  // second one waits
  ledger.credit(entry, 75);
  EXPECT_TRUE(ledger.tryCharge(entry, 75));  // and again after the credit
  ledger.credit(entry, 75);
  EXPECT_EQ(ledger.chargedMilli(), 0);
}

TEST(AdmissionLedgerTest, OvercommitScalesCapacity) {
  AdmissionLedger ledger;
  const AdmissionLedger::TargetCapacity targets[] = {{internTpu("al-c"), 400}};
  ledger.reconfigure(targets, 1, 1.5);
  const std::uint32_t entry = ledger.entryFor(internTpu("al-c"));
  EXPECT_EQ(ledger.entryCapacity(entry), 600);
  ledger.reconfigure(targets, 1, 0.5);
  EXPECT_EQ(ledger.entryCapacity(entry), 200);
}

TEST(AdmissionLedgerTest, ReconfigurePreservesChargesAndDrainsZombies) {
  AdmissionLedger ledger;
  const TpuId a = internTpu("al-d");
  const TpuId b = internTpu("al-e");
  const AdmissionLedger::TargetCapacity both[] = {{a, 300}, {b, 300}};
  ledger.reconfigure(both, 2, 1.0);
  const std::uint32_t entryA = ledger.entryFor(a);
  const std::uint32_t entryB = ledger.entryFor(b);
  ASSERT_TRUE(ledger.tryCharge(entryA, 100));
  ASSERT_TRUE(ledger.tryCharge(entryB, 100));

  // A weight push drops target A: its entry survives at capacity zero (the
  // in-flight frame's index stays valid), B's capacity updates in place.
  const AdmissionLedger::TargetCapacity onlyB[] = {{b, 500}};
  ledger.reconfigure(onlyB, 1, 1.0);
  EXPECT_EQ(ledger.entryFor(a), entryA);
  EXPECT_EQ(ledger.entryFor(b), entryB);
  EXPECT_EQ(ledger.entryCapacity(entryA), 0);
  EXPECT_EQ(ledger.entryCapacity(entryB), 500);
  EXPECT_EQ(ledger.entryCharged(entryA), 100);  // charge preserved

  // The zombie's charge drains through the normal credit path.
  ledger.credit(entryA, 100);
  ledger.credit(entryB, 100);
  EXPECT_EQ(ledger.chargedMilli(), 0);
  EXPECT_EQ(ledger.entryCount(), 2u);  // append-only: the entry lingers
}

// --- RepackSupervisor --------------------------------------------------------

struct ScriptedSlo {
  RepackSupervisor::Sample current;
  int repacks = 0;

  RepackSupervisor makeSupervisor(RepackSupervisorConfig config) {
    config.enabled = true;
    return RepackSupervisor(
        config, [this] { return current; },
        [this] {
          ++repacks;
          Defragmenter::Report report;
          report.applied = true;
          return report;
        });
  }

  // Advances the cumulative counters by one window's worth of traffic.
  void window(std::uint64_t good, std::uint64_t total) {
    current.good += good;
    current.total += total;
  }
};

TEST(RepackSupervisorTest, TriggersAfterSustainedPressure) {
  ScriptedSlo slo;
  RepackSupervisorConfig config;
  config.attainmentThreshold = 0.9;
  config.sustainWindows = 3;
  config.cooldownWindows = 2;
  RepackSupervisor supervisor = slo.makeSupervisor(config);

  slo.window(100, 100);  // healthy
  EXPECT_FALSE(supervisor.onWindow());
  for (int i = 0; i < 2; ++i) {
    slo.window(50, 100);  // 0.5 < 0.9: pressured
    EXPECT_FALSE(supervisor.onWindow()) << "window " << i;
  }
  slo.window(50, 100);
  EXPECT_TRUE(supervisor.onWindow());  // third consecutive pressured window
  EXPECT_EQ(slo.repacks, 1);
  EXPECT_EQ(supervisor.repacksTriggered(), 1u);
  EXPECT_TRUE(supervisor.lastReport().applied);
  EXPECT_DOUBLE_EQ(supervisor.lastAttainment(), 0.5);
}

TEST(RepackSupervisorTest, CooldownHoldsOffRetrigger) {
  ScriptedSlo slo;
  RepackSupervisorConfig config;
  config.sustainWindows = 2;
  config.cooldownWindows = 3;
  RepackSupervisor supervisor = slo.makeSupervisor(config);

  // Sustained misery: a trigger costs sustain (2) + cooldown (3) windows,
  // so 12 windows yield exactly three — at windows 2, 7 and 12 — instead of
  // one every other window.
  int triggers = 0;
  for (int i = 0; i < 12; ++i) {
    slo.window(10, 100);
    if (supervisor.onWindow()) ++triggers;
  }
  EXPECT_EQ(triggers, 3);
  EXPECT_EQ(slo.repacks, 3);
}

TEST(RepackSupervisorTest, HealthyWindowResetsStreak) {
  ScriptedSlo slo;
  RepackSupervisorConfig config;
  config.sustainWindows = 2;
  RepackSupervisor supervisor = slo.makeSupervisor(config);

  slo.window(10, 100);
  EXPECT_FALSE(supervisor.onWindow());
  slo.window(100, 100);  // recovery resets the streak
  EXPECT_FALSE(supervisor.onWindow());
  slo.window(10, 100);
  EXPECT_FALSE(supervisor.onWindow());  // streak restarted at 1
  slo.window(10, 100);
  EXPECT_TRUE(supervisor.onWindow());
}

TEST(RepackSupervisorTest, QuietWindowsAreNeutral) {
  ScriptedSlo slo;
  RepackSupervisorConfig config;
  config.sustainWindows = 2;
  RepackSupervisor supervisor = slo.makeSupervisor(config);

  slo.window(10, 100);
  EXPECT_FALSE(supervisor.onWindow());
  // No traffic at all: neither pressured nor healthy, streak holds.
  EXPECT_FALSE(supervisor.onWindow());
  EXPECT_FALSE(supervisor.onWindow());
  slo.window(10, 100);
  EXPECT_TRUE(supervisor.onWindow());
  EXPECT_EQ(supervisor.pressuredWindows(), 2u);
}

TEST(RepackSupervisorTest, MaxRepacksCapsTriggers) {
  ScriptedSlo slo;
  RepackSupervisorConfig config;
  config.sustainWindows = 1;
  config.cooldownWindows = 1;
  config.maxRepacks = 1;
  RepackSupervisor supervisor = slo.makeSupervisor(config);
  int triggers = 0;
  for (int i = 0; i < 10; ++i) {
    slo.window(10, 100);
    if (supervisor.onWindow()) ++triggers;
  }
  EXPECT_EQ(triggers, 1);
  EXPECT_EQ(slo.repacks, 1);
}

// --- Data-plane fixture for degradation / differential tests -----------------

struct MiniCluster {
  ModelRegistry zoo;
  Simulator sim;
  ClusterTopology topo;
  DataPlane dataPlane;

  static TopologySpec spec(int tpus) {
    TopologySpec s;
    s.vRpiCount = 1;
    s.tRpiCount = tpus;
    s.tpusPerTRpi = 1;
    return s;
  }

  explicit MiniCluster(int tpus = 1)
      : zoo(zoo::standardZoo()), topo(sim, zoo, spec(tpus)),
        dataPlane(sim, topo, zoo) {
    for (const auto& tpu : topo.tpus()) {
      LoadCommand load{tpu->id(), {zoo::kMobileNetV1}, {}};
      if (!dataPlane.executeLoad(load).isOk()) std::abort();
    }
    sim.run();
  }

  LbConfig allTpus(std::uint32_t weightMilli) {
    LbConfig lb;
    for (const auto& tpu : topo.tpus()) {
      lb.weights.push_back(LbWeight{tpu->id(), weightMilli});
    }
    return lb;
  }

  std::unique_ptr<TpuClient> makeClient(SimDuration deadline, bool admission,
                                        std::uint32_t weightMilli = 1000) {
    TpuClient::Config config;
    config.clientNode = "vrpi-00";
    config.model = zoo::kMobileNetV1;
    config.frameDeadline = deadline;
    config.maxFailovers = 1;
    config.admission.enabled = admission;
    auto client = dataPlane.makeClient(std::move(config));
    EXPECT_TRUE(client->configureLb(allTpus(weightMilli)).isOk());
    return client;
  }
};

// --- StreamDegrader ----------------------------------------------------------

TEST(StreamDegraderTest, StepsDownUnderPressureAndBackUpWhenClean) {
  MiniCluster cluster;
  // Weight 100 with a 50 ms deadline: estimate = 4.5 ms / 50 ms = 90 milli,
  // so the ledger holds exactly one frame in flight (progress rule) and a
  // second back-to-back submission is rejected.
  auto client = cluster.makeClient(milliseconds(50), /*admission=*/true, 100);

  PeriodicTask task(cluster.sim, framePeriod(15.0), [] {});
  DegradationConfig config;
  config.enabled = true;
  config.ladder = {1.0, 0.75, 0.5};
  config.windowFrames = 10;
  config.stepDownPressure = 0.25;
  config.sustainWindows = 2;
  config.coolDownWindows = 3;
  StreamRateControl rate(task, framePeriod(15.0));
  StreamDegrader degrader(*client, rate, config);

  auto onDone = [&degrader](const FrameBreakdown&) { degrader.onFrame(); };
  // Pressured phase: pairs of back-to-back submissions — the second is
  // admission-rejected while the first is still charged, so every window
  // runs at pressure 0.5 >= 0.25.
  auto pressuredWindow = [&] {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(client->invoke(onDone).isOk());
      ASSERT_TRUE(client->invoke(onDone).isOk());  // rejected synchronously
      cluster.sim.run();                           // drain the admitted one
    }
  };
  pressuredWindow();
  EXPECT_EQ(degrader.rung(), 0u);  // one pressured window is not sustained
  pressuredWindow();
  EXPECT_EQ(degrader.rung(), 1u);
  EXPECT_EQ(degrader.stepDowns(), 1u);
  EXPECT_EQ(task.period(), SimDuration{framePeriod(15.0).count() * 4 / 3});

  // Two more sustained-pressure windows: down to the last rung, where the
  // controller must hold (never indexes past the ladder).
  pressuredWindow();
  pressuredWindow();
  EXPECT_EQ(degrader.rung(), 2u);
  pressuredWindow();
  pressuredWindow();
  EXPECT_EQ(degrader.rung(), 2u);  // bottom rung holds

  // Clean phase: one frame at a time, drained to completion — pressure 0.
  auto cleanWindow = [&] {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(client->invoke(onDone).isOk());
      cluster.sim.run();
    }
  };
  cleanWindow();
  cleanWindow();
  EXPECT_EQ(degrader.rung(), 2u);  // 2 clean windows < coolDownWindows
  cleanWindow();
  EXPECT_EQ(degrader.rung(), 1u);
  EXPECT_EQ(degrader.stepUps(), 1u);
  // Hysteresis: the cool-down streak resets after each step, so the next
  // rung takes another full coolDownWindows of clean traffic.
  cleanWindow();
  EXPECT_EQ(degrader.rung(), 1u);
  cleanWindow();
  cleanWindow();
  EXPECT_EQ(degrader.rung(), 0u);
  EXPECT_EQ(task.period(), framePeriod(15.0));
  EXPECT_EQ(client->admissionLedger().chargedMilli(), 0);
}

// --- Admission differential and overload contracts ---------------------------

// Below capacity the ledger must be invisible: a closed-loop stream (next
// frame submitted from the previous completion) holds one frame in flight,
// which the progress rule always admits — outcome totals match an
// admission-off twin frame for frame.
TEST(AdmissionDifferentialTest, BelowCapacityMatchesAdmissionOff) {
  auto runStream = [](bool admission) {
    MiniCluster cluster;
    auto client =
        cluster.makeClient(milliseconds(60), admission, 1000);
    std::uint64_t remaining = 500;
    std::vector<std::uint64_t> latencies;
    std::function<void()> pump = [&] {
      if (remaining == 0) return;
      --remaining;
      ASSERT_TRUE(client
                      ->invoke([&](const FrameBreakdown& b) {
                        latencies.push_back(
                            static_cast<std::uint64_t>(b.endToEnd().count()));
                        pump();
                      })
                      .isOk());
    };
    pump();
    cluster.sim.run();
    EXPECT_EQ(client->completedCount(), 500u);
    EXPECT_EQ(client->outcomeCount(FrameOutcome::kAdmissionRejected), 0u);
    if (admission) {
      EXPECT_EQ(client->admissionLedger().acceptedCount(), 500u);
      EXPECT_EQ(client->admissionLedger().creditedCount(), 500u);
      EXPECT_EQ(client->admissionLedger().rejectedCount(), 0u);
    }
    return latencies;
  };
  const auto withLedger = runStream(true);
  const auto without = runStream(false);
  // Frame-for-frame identical timing, not just equal totals.
  EXPECT_EQ(withLedger, without);
}

// The headline overload contract: at 2x offered load, an admission-on client
// rejects the excess up front and every admitted frame completes within its
// deadline — zero timeouts, zero sheds.
TEST(AdmissionOverloadTest, AdmittedFramesMissZeroDeadlines) {
  MiniCluster cluster;
  auto client = cluster.makeClient(milliseconds(60), /*admission=*/true, 1000);
  // One TPU serves mobilenet at 1/4.5 ms ~= 222 fps; submit at ~444 fps.
  PeriodicTask source(cluster.sim, framePeriod(444.0), [&] {
    (void)client->invoke([](const FrameBreakdown&) {});
  });
  source.start();
  cluster.sim.runFor(seconds(5));
  source.stop();
  cluster.sim.run();

  EXPECT_GT(client->outcomeCount(FrameOutcome::kAdmissionRejected), 0u);
  EXPECT_EQ(client->outcomeCount(FrameOutcome::kTimedOut), 0u);
  EXPECT_EQ(client->outcomeCount(FrameOutcome::kShed), 0u);
  // Goodput: the device stayed saturated — ~222 fps completed for 5 s.
  EXPECT_GT(client->completedCount(), 1000u);
  EXPECT_EQ(client->admissionLedger().chargedMilli(), 0);
  EXPECT_EQ(client->admissionLedger().acceptedCount(),
            client->admissionLedger().creditedCount());
}

// --- Metrics export ----------------------------------------------------------

TEST(OverloadMetricsTest, ShardedClusterExportsOverloadCounters) {
  ShardedClusterConfig config;
  config.shards = 1;
  config.racks = 2;
  config.tRpisPerRack = 1;
  config.vRpisPerRack = 2;
  config.tpusPerTRpi = 1;
  config.fps = 15.0;
  config.frameDeadline = milliseconds(60);
  ShardedCluster cluster(config);
  ASSERT_TRUE(cluster.setupStatus().isOk());
  cluster.run(seconds(1));

  const std::string metrics = cluster.metricsJson();
  // New keys are present, in deterministic positions, and read zero with
  // admission and degradation off.
  EXPECT_NE(metrics.find("\"degradeDowns\": 0"), std::string::npos);
  EXPECT_NE(metrics.find("\"degradeUps\": 0"), std::string::npos);
  EXPECT_NE(metrics.find("\"totalAdmissionRejected\": 0"), std::string::npos);
  EXPECT_NE(metrics.find("\"totalDegradeDowns\": 0"), std::string::npos);
  EXPECT_NE(metrics.find("\"totalDegradeUps\": 0"), std::string::npos);
  // The outcomes array grew to the full lattice (7 states).
  const std::size_t outcomes = metrics.find("\"outcomes\": [");
  ASSERT_NE(outcomes, std::string::npos);
  const std::size_t close = metrics.find(']', outcomes);
  const std::string row = metrics.substr(outcomes, close - outcomes);
  EXPECT_EQ(static_cast<int>(std::count(row.begin(), row.end(), ',')),
            kFrameOutcomeCount - 1);
  EXPECT_EQ(cluster.outcomeTotal(FrameOutcome::kAdmissionRejected), 0u);
  EXPECT_EQ(cluster.totalDegradeDowns(), 0u);
  EXPECT_EQ(cluster.totalDegradeUps(), 0u);
}

// Degradation on a deliberately overloaded sharded cluster: deterministic
// for a fixed shard count (same seed, same step sequence) and strictly
// bounded by the ladder.
TEST(OverloadMetricsTest, ShardedDegradationIsDeterministicAndBounded) {
  auto run = [] {
    ShardedClusterConfig config;
    config.shards = 2;
    config.racks = 2;
    config.tRpisPerRack = 1;
    config.vRpisPerRack = 2;
    config.tpusPerTRpi = 1;
    // 4 streams x 60 fps of mobilenet against 2 TPUs (~444 fps capacity):
    // heavily oversubscribed, every stream must step down.
    config.fps = 60.0;
    config.frameDeadline = milliseconds(60);
    config.frameAdmission.enabled = true;
    config.degradation.enabled = true;
    config.degradation.windowFrames = 20;
    config.degradation.stepDownPressure = 0.25;
    ShardedCluster cluster(config);
    EXPECT_TRUE(cluster.setupStatus().isOk());
    cluster.run(seconds(4));
    return cluster.metricsJson();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"totalDegradeDowns\": 0"), std::string::npos)
      << "overloaded streams never stepped down:\n"
      << first;
}

// --- Testbed wiring ----------------------------------------------------------

TEST(TestbedRepackTest, SupervisorWiredAndIdleWhenHealthy) {
  TestbedConfig config;
  config.topology.vRpiCount = 2;
  config.topology.tRpiCount = 2;
  config.repack.enabled = true;
  config.repack.window = milliseconds(500);
  Testbed testbed(config);
  ASSERT_NE(testbed.repackSupervisor(), nullptr);

  CameraDeployment deployment;
  deployment.name = "cam-0";
  deployment.model = zoo::kMobileNetV1;
  ASSERT_TRUE(testbed.deployCamera(deployment).isOk());
  testbed.run(seconds(4));

  // Windows ticked; a healthy cluster never repacks.
  EXPECT_GE(testbed.repackSupervisor()->windowsObserved(), 6u);
  EXPECT_EQ(testbed.repackSupervisor()->repacksTriggered(), 0u);
  EXPECT_EQ(testbed.repackSupervisor()->pressuredWindows(), 0u);
}

TEST(TestbedRepackTest, RepackFiresUnderLiveTrafficAndStreamsSurvive) {
  TestbedConfig config;
  config.topology.vRpiCount = 2;
  config.topology.tRpiCount = 2;
  config.repack.enabled = true;
  config.repack.window = milliseconds(500);
  // Attainment can never reach 1.1: every window is pressured, so this
  // forces the drain -> replan -> weight-push path to run repeatedly under
  // live traffic — the test is that nothing breaks and streams keep
  // completing, not that the replan finds improvement.
  config.repack.attainmentThreshold = 1.1;
  config.repack.sustainWindows = 2;
  config.repack.cooldownWindows = 2;
  Testbed testbed(config);
  ASSERT_NE(testbed.repackSupervisor(), nullptr);

  for (int i = 0; i < 3; ++i) {
    CameraDeployment deployment;
    deployment.name = "cam-" + std::to_string(i);
    deployment.model = zoo::kMobileNetV1;
    ASSERT_TRUE(testbed.deployCamera(deployment).isOk());
  }
  testbed.run(seconds(5));
  EXPECT_GE(testbed.repackSupervisor()->repacksTriggered(), 2u);

  // Repacks under live traffic lost nothing: streams keep completing after
  // the last one, and no frame ever reached a failure outcome.
  auto completedSum = [&testbed] {
    std::uint64_t sum = 0;
    for (CameraPipeline* camera : testbed.liveCameras()) {
      sum += camera->slo().completed();
    }
    return sum;
  };
  const std::uint64_t before = completedSum();
  testbed.run(seconds(2));
  EXPECT_GT(completedSum(), before + 50);
  for (CameraPipeline* camera : testbed.liveCameras()) {
    EXPECT_EQ(camera->client().failedCount(), 0u) << camera->name();
  }
}

TEST(TestbedRepackTest, DisabledByDefault) {
  Testbed testbed;
  EXPECT_EQ(testbed.repackSupervisor(), nullptr);
}

}  // namespace
}  // namespace microedge
