// The sharded-simulation acceptance proof: the SAME city-slice workload run
// at shard counts {1, 2, 8} produces byte-identical results — per-stream
// FrameBreakdown digests (every timing component of every frame), outcome
// counters, and the serialized metrics dump — on a healthy cluster AND
// under a chaos plan (TPU crash with delayed detection + recovery/eviction,
// hang window, transport loss, latency spike).
//
// What keeps the witness exact (see testbed/sharded_cluster.hpp):
//  * camera phases are staggered so no two events share a timestamp;
//  * the healthy cross-rack pipeline reproduces solo timestamps exactly;
//  * chaos plans run with rack-local streams only, because failure NACKs
//    legitimately resolve later cross-shard than solo;
//  * transport LOSS is on the differential path: the harness keys every
//    client with its stream uid, so each message's drop decision is a pure
//    function of (plan seed, uid, frame seq, attempt, hop) — no per-lane
//    draw order — and the loss pattern is shard-count invariant.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fault_injector.hpp"
#include "testbed/sharded_cluster.hpp"

namespace microedge {
namespace {

ShardedClusterConfig baseConfig(unsigned shards) {
  ShardedClusterConfig config;
  config.shards = shards;
  config.racks = 8;
  config.tRpisPerRack = 1;
  config.vRpisPerRack = 2;
  config.tpusPerTRpi = 1;
  config.fps = 15.0;
  config.frameDeadline = milliseconds(60);
  config.maxFailovers = 1;
  return config;
}

TEST(ShardedDifferential, HealthyClusterWithCrossRackStreams) {
  std::string reference;
  std::uint64_t referenceDigest = 0;
  for (unsigned shards : {1u, 2u, 8u}) {
    ShardedClusterConfig config = baseConfig(shards);
    config.crossRackStride = 3;  // every 3rd camera targets the next rack
    ShardedCluster cluster(config);
    ASSERT_TRUE(cluster.setupStatus().isOk())
        << cluster.setupStatus().toString();
    cluster.run(seconds(2));

    // The workload is live and the cross-shard path is actually exercised.
    EXPECT_GT(cluster.totalCompleted(), 400u) << "shards=" << shards;
    bool crossSawTraffic = false;
    for (std::size_t i = 0; i < cluster.streamCount(); ++i) {
      ShardedCluster::StreamStats stats = cluster.streamStats(i);
      if (stats.crossRack && stats.completed > 0) crossSawTraffic = true;
    }
    EXPECT_TRUE(crossSawTraffic) << "shards=" << shards;

    const std::string metrics = cluster.metricsJson();
    if (shards == 1) {
      reference = metrics;
      referenceDigest = cluster.digest();
      continue;
    }
    // Byte-for-byte: every per-frame timing digest, counter and total.
    EXPECT_EQ(metrics, reference) << "shards=" << shards;
    EXPECT_EQ(cluster.digest(), referenceDigest) << "shards=" << shards;
  }
}

TEST(ShardedDifferential, ChaosPlanCrashHangLossAndLatencySpike) {
  // Build the plan once against a probe instance's topology (TPU names are
  // identical at every shard count — same topology spec).
  std::vector<std::string> tpuIds;
  {
    ShardedCluster probe(baseConfig(1));
    ASSERT_TRUE(probe.setupStatus().isOk());
    for (const auto& tpu : probe.topology().tpus()) {
      tpuIds.push_back(tpu->id());
    }
  }
  ASSERT_EQ(tpuIds.size(), 8u);

  FaultPlan plan;
  plan.seed = 42;
  plan.detectionDelay = milliseconds(300);
  // Rack 0 has exactly one TPU: the crash leaves its two streams without a
  // target (dead-target drops), recovery finds an empty rack pool and
  // EVICTS both pods — the full control-plane path under the differential.
  plan.events.push_back(
      {milliseconds(500), FaultKind::kTpuCrash, tpuIds[0], {}, 0.0});
  plan.events.push_back({milliseconds(800), FaultKind::kTpuHang, tpuIds[3],
                         milliseconds(400), 0.0});
  // Keyed loss (clients carry streamToken = uid): which frames drop depends
  // only on (seed, uid, frame seq), so the exclusion that once kept LOSS off
  // the differential is lifted.
  plan.events.push_back({milliseconds(1000), FaultKind::kTransportLoss,
                         std::string(), milliseconds(600), 0.15});
  plan.events.push_back({milliseconds(1200), FaultKind::kLatencySpike,
                         std::string(), milliseconds(300), 3.0});

  std::string reference;
  for (unsigned shards : {1u, 2u, 8u}) {
    ShardedClusterConfig config = baseConfig(shards);
    config.crossRackStride = 0;  // chaos differential: rack-local only
    ShardedCluster cluster(config);
    ASSERT_TRUE(cluster.setupStatus().isOk());
    cluster.armFaults(plan);
    cluster.run(milliseconds(2500));

    // The faults visibly happened: frames died at the dead target, the loss
    // window timed frames out on the wire, and the cluster still made
    // forward progress everywhere else.
    EXPECT_GT(cluster.outcomeTotal(FrameOutcome::kDroppedDeadTarget), 0u)
        << "shards=" << shards;
    EXPECT_GT(cluster.outcomeTotal(FrameOutcome::kTimedOut), 0u)
        << "shards=" << shards;
    EXPECT_GT(cluster.totalCompleted(), 300u) << "shards=" << shards;

    const std::string metrics = cluster.metricsJson();
    if (shards == 1) {
      reference = metrics;
      continue;
    }
    EXPECT_EQ(metrics, reference) << "shards=" << shards;
  }
}

TEST(ShardedDifferential, RepeatedRunsAreByteIdentical) {
  auto runOnce = [] {
    ShardedClusterConfig config = baseConfig(2);
    config.crossRackStride = 4;
    ShardedCluster cluster(config);
    EXPECT_TRUE(cluster.setupStatus().isOk());
    cluster.run(seconds(1));
    return cluster.metricsJson();
  };
  const std::string first = runOnce();
  const std::string second = runOnce();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace microedge
