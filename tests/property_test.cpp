// Cross-cutting property tests: determinism of the full stack, capacity
// laws across parameter sweeps, device-level conservation properties, and
// spec round-trips under randomized inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "orch/spec.hpp"
#include "testbed/testbed.hpp"
#include "util/rng.hpp"

namespace microedge {
namespace {

// ---- Full-stack determinism -------------------------------------------------

struct StackFingerprint {
  std::uint64_t completedFrames = 0;
  double meanUtilization = 0.0;
  double meanLatencyMs = 0.0;
  std::uint64_t invokesPerTpu[6] = {0, 0, 0, 0, 0, 0};

  bool operator==(const StackFingerprint& other) const {
    if (completedFrames != other.completedFrames) return false;
    if (meanUtilization != other.meanUtilization) return false;
    if (meanLatencyMs != other.meanLatencyMs) return false;
    for (int i = 0; i < 6; ++i) {
      if (invokesPerTpu[i] != other.invokesPerTpu[i]) return false;
    }
    return true;
  }
};

StackFingerprint runStack(std::uint64_t seed) {
  TestbedConfig config;
  config.seed = seed;
  Testbed testbed(config);
  for (int i = 0; i < 9; ++i) {
    CameraDeployment deployment;
    deployment.name = "cam-" + std::to_string(i);
    deployment.model = zoo::kSsdMobileNetV2;
    deployment.useDiffDetector = (i % 3 == 0);
    EXPECT_TRUE(testbed.deployCamera(deployment).isOk());
  }
  testbed.run(seconds(20));
  StackFingerprint fp;
  Summary latency;
  for (CameraPipeline* camera : testbed.liveCameras()) {
    fp.completedFrames += camera->slo().completed();
    latency.merge(camera->breakdown().endToEnd().raw());
  }
  fp.meanUtilization = testbed.meanTpuUtilization();
  fp.meanLatencyMs = latency.mean();
  int i = 0;
  for (TpuService* service : testbed.dataPlane().services()) {
    fp.invokesPerTpu[i++] = service->invokeCount();
  }
  return fp;
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalRuns) {
  StackFingerprint a = runStack(77);
  StackFingerprint b = runStack(77);
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.completedFrames, 0u);
}

TEST(DeterminismTest, DifferentSeedsDifferInStochasticParts) {
  // Diff-detector scene processes are seeded: frame counts must differ.
  StackFingerprint a = runStack(1);
  StackFingerprint b = runStack(2);
  EXPECT_NE(a.completedFrames, b.completedFrames);
}

// ---- Capacity laws across sweeps --------------------------------------------

using CapacityParam = std::tuple<const char*, double, int>;  // model, fps, tpus

class CapacityLawTest : public ::testing::TestWithParam<CapacityParam> {};

TEST_P(CapacityLawTest, WpCapacityIsFloorOfPoolOverUnits) {
  const auto [model, fps, tpus] = GetParam();
  ModelRegistry zoo = zoo::standardZoo();
  TpuPool pool;
  for (int i = 0; i < tpus; ++i) {
    ASSERT_TRUE(pool.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
  }
  AdmissionController admission(pool, zoo, {});
  TpuUnit units = TpuUnit::fromDouble(zoo.at(model).tpuUnitsAt(fps));
  ASSERT_TRUE(units.isPositive());

  int admitted = 0;
  for (std::uint64_t uid = 1; uid <= 256; ++uid) {
    if (!admission.admit(uid, model, units).isOk()) break;
    ++admitted;
  }
  // With workload partitioning and a single model, capacity is exactly
  // floor(total milli-units / per-pod milli-units).
  int expected = static_cast<int>((1000LL * tpus) / units.milli());
  EXPECT_EQ(admitted, expected)
      << model << " @" << fps << " fps on " << tpus << " TPUs";
  // And the leftover is smaller than one more pod.
  EXPECT_LT((TpuUnit::fromMilli(1000 * tpus) - pool.totalLoad()).milli(),
            units.milli());
}

TEST_P(CapacityLawTest, NoWpNeverBeatsWp) {
  const auto [model, fps, tpus] = GetParam();
  ModelRegistry zoo = zoo::standardZoo();
  TpuUnit units = TpuUnit::fromDouble(zoo.at(model).tpuUnitsAt(fps));
  auto capacity = [&](bool wp) {
    TpuPool pool;
    for (int i = 0; i < tpus; ++i) {
      EXPECT_TRUE(pool.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
    }
    AdmissionConfig config;
    config.enableWorkloadPartitioning = wp;
    AdmissionController admission(pool, zoo, config);
    int admitted = 0;
    for (std::uint64_t uid = 1; uid <= 256; ++uid) {
      if (!admission.admit(uid, model, units).isOk()) break;
      ++admitted;
    }
    return admitted;
  };
  EXPECT_GE(capacity(true), capacity(false));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CapacityLawTest,
    ::testing::Values(
        CapacityParam{zoo::kSsdMobileNetV2, 15.0, 1},
        CapacityParam{zoo::kSsdMobileNetV2, 15.0, 6},
        CapacityParam{zoo::kSsdMobileNetV2, 10.0, 6},
        CapacityParam{zoo::kSsdMobileNetV2, 30.0, 6},
        CapacityParam{zoo::kMobileNetV1, 15.0, 2},
        CapacityParam{zoo::kBodyPixMobileNetV1, 15.0, 6},
        CapacityParam{zoo::kBodyPixMobileNetV1, 15.0, 3},
        CapacityParam{zoo::kEfficientNetLite0, 15.0, 4}));

// ---- Device-level conservation ----------------------------------------------

TEST(DeviceConservationTest, BusyTimeEqualsSumOfServiceTimes) {
  Simulator sim;
  ModelRegistry zoo = zoo::standardZoo();
  TpuDevice tpu(sim, zoo, "tpu-00");
  ASSERT_TRUE(tpu.loadModels({zoo::kMobileNetV1, zoo::kUNetV2}).isOk());
  sim.run();
  SimDuration base = tpu.busyTime();

  Pcg32 rng(31);
  SimDuration serviceSum{};
  std::vector<std::uint64_t> completionOrder;
  std::uint64_t id = 0;
  const std::vector<std::string> models = {zoo::kMobileNetV1, zoo::kUNetV2};
  for (int i = 0; i < 200; ++i) {
    // Random arrival gaps, random model choice.
    sim.runFor(millisecondsF(rng.uniform(0.0, 20.0)));
    std::uint64_t thisId = id++;
    ASSERT_TRUE(tpu.invoke(models[rng.nextBounded(2)],
                           [&, thisId](const TpuDevice::InvokeStats& stats) {
                             serviceSum += stats.serviceTime;
                             completionOrder.push_back(thisId);
                           })
                    .isOk());
  }
  sim.run();
  EXPECT_EQ(tpu.busyTime() - base, serviceSum);
  // Run-to-completion FIFO: completions in submission order.
  ASSERT_EQ(completionOrder.size(), 200u);
  EXPECT_TRUE(std::is_sorted(completionOrder.begin(), completionOrder.end()));
  EXPECT_EQ(tpu.invocations(), 200u);
}

TEST(NetworkMonotonicityTest, LatencyIsMonotoneInBytes) {
  NetworkModel net;
  SimDuration prev{};
  for (std::size_t bytes = 0; bytes <= 1 << 20; bytes += 64 * 1024) {
    SimDuration latency = net.transferLatency("a", "b", bytes);
    EXPECT_GE(latency, prev);
    prev = latency;
  }
}

// ---- Spec round-trips under randomized inputs -------------------------------

TEST(SpecRoundTripTest, RandomSpecsSurviveYamlRoundTrip) {
  Pcg32 rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    PodSpec spec;
    spec.name = "pod-" + std::to_string(trial);
    spec.image = "registry.local/app:v" + std::to_string(rng.nextBounded(100));
    spec.fps = 1.0 + rng.nextBounded(60);
    spec.resources.cpuMillicores = 100 + rng.nextBounded(3900);
    spec.resources.memoryMb = 64 + rng.nextBounded(4096);
    if (rng.bernoulli(0.7)) {
      spec.tpu = TpuRequest{"model-" + std::to_string(rng.nextBounded(8)),
                            0.001 * (1 + rng.nextBounded(2500))};
    }
    if (rng.bernoulli(0.5)) spec.labels["app"] = "camera";
    if (rng.bernoulli(0.3)) spec.nodeSelector["tpu"] = "true";
    if (rng.bernoulli(0.4)) spec.antiAffinityKey = "zone-a";

    auto reparsed = podSpecFromYaml(podSpecToYaml(spec));
    ASSERT_TRUE(reparsed.isOk()) << reparsed.status() << "\n"
                                 << podSpecToYaml(spec);
    EXPECT_EQ(reparsed->name, spec.name);
    EXPECT_EQ(reparsed->image, spec.image);
    EXPECT_DOUBLE_EQ(reparsed->fps, spec.fps);
    EXPECT_EQ(reparsed->resources.cpuMillicores, spec.resources.cpuMillicores);
    EXPECT_EQ(reparsed->resources.memoryMb, spec.resources.memoryMb);
    EXPECT_EQ(reparsed->tpu.has_value(), spec.tpu.has_value());
    if (spec.tpu.has_value()) {
      EXPECT_EQ(reparsed->tpu->model, spec.tpu->model);
      EXPECT_NEAR(reparsed->tpu->tpuUnits, spec.tpu->tpuUnits, 1e-4);
    }
    EXPECT_EQ(reparsed->labels, spec.labels);
    EXPECT_EQ(reparsed->nodeSelector, spec.nodeSelector);
    EXPECT_EQ(reparsed->antiAffinityKey, spec.antiAffinityKey);
  }
}

// ---- Utilization conservation across the harness ----------------------------

TEST(UtilizationConservationTest, MeasuredMatchesAdmittedDutyCycle) {
  // N identical always-on streams: measured mean utilization must approach
  // N * units / TPUs once the run is long enough.
  for (int cameras : {3, 8, 14}) {
    Testbed testbed;
    for (int i = 0; i < cameras; ++i) {
      CameraDeployment deployment;
      deployment.name = "cam-" + std::to_string(i);
      deployment.model = zoo::kSsdMobileNetV2;
      ASSERT_TRUE(testbed.deployCamera(deployment).isOk());
    }
    testbed.run(seconds(30));
    double expected = cameras * 0.35 / 6.0;
    EXPECT_NEAR(testbed.meanTpuUtilization(), expected, 0.02)
        << cameras << " cameras";
  }
}

}  // namespace
}  // namespace microedge
