// Metrics layer: utilization windows, SLO monitor logic, breakdown
// aggregation and report tables.

#include <gtest/gtest.h>

#include <set>

#include "metrics/breakdown.hpp"
#include "metrics/report.hpp"
#include "metrics/slo.hpp"
#include "metrics/utilization.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

TEST(UtilizationTrackerTest, MeasuresBusyFraction) {
  Simulator sim;
  ModelRegistry zoo = zoo::standardZoo();
  TpuDevice tpu(sim, zoo, "tpu-00");
  ASSERT_TRUE(tpu.loadModels({zoo::kMobileNetV1}).isOk());
  sim.run();

  UtilizationTracker tracker(sim, {&tpu}, seconds(1));
  tracker.start();
  // 45 ms of work per second for 5 seconds => ~4.5% utilization. The load
  // above already advanced the clock, so run relative to now().
  PeriodicTask driver(sim, milliseconds(100), [&] {
    Status s = tpu.invoke(zoo::kMobileNetV1, nullptr);  // 4.5 ms each
    (void)s;
  });
  driver.start();
  sim.runUntil(sim.now() + seconds(5) + milliseconds(1));
  driver.stop();
  tracker.stop();

  ASSERT_EQ(tracker.samples().size(), 5u);
  for (const auto& sample : tracker.samples()) {
    EXPECT_NEAR(sample.mean, 0.045, 0.01) << toString(sample.at);
  }
  EXPECT_NEAR(tracker.overallMean(), 0.045, 0.01);
  ASSERT_EQ(tracker.overallPerTpu().size(), 1u);
}

TEST(UtilizationTrackerTest, StartResetsBaseline) {
  Simulator sim;
  ModelRegistry zoo = zoo::standardZoo();
  TpuDevice tpu(sim, zoo, "tpu-00");
  ASSERT_TRUE(tpu.loadModels({zoo::kEfficientNetLite0}).isOk());
  // Burn 69 ms of busy time before tracking starts.
  ASSERT_TRUE(tpu.invoke(zoo::kEfficientNetLite0, nullptr).isOk());
  sim.run();

  UtilizationTracker tracker(sim, {&tpu}, seconds(1));
  tracker.start();
  sim.runUntil(sim.now() + seconds(2));
  // No work after start: utilization must be ~0 despite earlier busy time.
  EXPECT_NEAR(tracker.overallMean(), 0.0, 1e-9);
}

TEST(SloMonitorTest, ThroughputCheck) {
  SloMonitor monitor(SloMonitor::Config{15.0, 0.05, 8, {}});
  SimTime t = kSimEpoch;
  for (int i = 0; i < 150; ++i) {
    monitor.recordSubmitted(t);
    monitor.recordCompleted(t + milliseconds(30), milliseconds(30));
    t += framePeriod(15.0);
  }
  EXPECT_NEAR(monitor.achievedFps(), 15.0, 0.2);
  EXPECT_TRUE(monitor.throughputMet());
  EXPECT_TRUE(monitor.sloMet());
}

TEST(SloMonitorTest, SlowCompletionsFailThroughput) {
  SloMonitor monitor(SloMonitor::Config{15.0, 0.05, 8, {}});
  SimTime t = kSimEpoch;
  for (int i = 0; i < 100; ++i) {
    monitor.recordSubmitted(t);
    // Completions at only 10 FPS.
    monitor.recordCompleted(kSimEpoch + i * framePeriod(10.0),
                            milliseconds(50));
    t += framePeriod(15.0);
  }
  EXPECT_LT(monitor.achievedFps(), 11.0);
  EXPECT_FALSE(monitor.throughputMet());
}

TEST(SloMonitorTest, QueueStability) {
  SloMonitor monitor(SloMonitor::Config{0.0, 0.05, 4, {}});
  for (int i = 0; i < 10; ++i) monitor.recordSubmitted(kSimEpoch);
  for (int i = 0; i < 3; ++i) {
    monitor.recordCompleted(kSimEpoch + milliseconds(10), milliseconds(10));
  }
  EXPECT_EQ(monitor.outstanding(), 7u);
  EXPECT_FALSE(monitor.queueStable());
  EXPECT_FALSE(monitor.sloMet());
}

TEST(SloMonitorTest, LatencyBound) {
  SloMonitor::Config config{0.0, 0.05, 100, milliseconds(50)};
  SloMonitor monitor(config);
  monitor.recordSubmitted(kSimEpoch);
  monitor.recordCompleted(kSimEpoch + milliseconds(30), milliseconds(30));
  EXPECT_TRUE(monitor.latencyMet());
  monitor.recordSubmitted(kSimEpoch);
  monitor.recordCompleted(kSimEpoch + milliseconds(80), milliseconds(80));
  EXPECT_FALSE(monitor.latencyMet());
  EXPECT_FALSE(monitor.sloMet());
}

TEST(SloMonitorTest, IdleStreamMeetsSlo) {
  SloMonitor monitor(SloMonitor::Config{15.0, 0.05, 4, {}});
  EXPECT_TRUE(monitor.sloMet());  // never started => vacuously fine
}

TEST(SloReportTest, Summarizes) {
  SloMonitor good(SloMonitor::Config{0.0, 0.05, 8, {}});
  good.recordSubmitted(kSimEpoch);
  good.recordCompleted(kSimEpoch + milliseconds(20), milliseconds(20));
  SloMonitor bad(SloMonitor::Config{0.0, 0.05, 0, {}});
  bad.recordSubmitted(kSimEpoch);  // outstanding forever

  SloReport report = summarizeSlo({&good, &bad});
  EXPECT_EQ(report.streams, 2u);
  EXPECT_EQ(report.streamsMeetingSlo, 1u);
  EXPECT_FALSE(report.allMet());
}

TEST(BreakdownAggregatorTest, AggregatesComponents) {
  BreakdownAggregator agg;
  for (int i = 0; i < 10; ++i) {
    FrameBreakdown frame;
    frame.submitted = kSimEpoch;
    frame.preprocess = millisecondsF(2.5);
    frame.requestTransmit = milliseconds(8);
    frame.queueDelay = milliseconds(i);  // varies
    frame.inference = millisecondsF(23.3);
    frame.responseTransmit = microseconds(600);
    frame.postprocess = microseconds(800);
    frame.completed = kSimEpoch + frame.preprocess + frame.requestTransmit +
                      frame.queueDelay + frame.inference +
                      frame.responseTransmit + frame.postprocess;
    agg.add(frame);
  }
  EXPECT_EQ(agg.count(), 10u);
  EXPECT_NEAR(agg.preprocess().meanMs(), 2.5, 1e-9);
  EXPECT_NEAR(agg.inference().meanMs(), 23.3, 1e-9);
  EXPECT_NEAR(agg.queueDelay().meanMs(), 4.5, 1e-9);
  EXPECT_NEAR(agg.meanTransmissionMs(), 8.6, 1e-9);
  EXPECT_GT(agg.endToEnd().meanMs(), 35.0);
  std::string rendered = agg.render("coral-pie");
  EXPECT_NE(rendered.find("inference"), std::string::npos);
  EXPECT_NE(rendered.find("end-to-end"), std::string::npos);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"config", "#TPUs", "cost"});
  table.addRow({"baseline", "17", "$2550"});
  table.addRow({"microedge", "6", "$1725"});
  std::string out = table.render();
  EXPECT_NE(out.find("config"), std::string::npos);
  EXPECT_NE(out.find("$1725"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.addRow({"only-one"});
  EXPECT_NO_THROW(table.render());
}

TEST(TextTableTest, CsvRendering) {
  TextTable table({"config", "note"});
  table.addRow({"baseline", "plain"});
  table.addRow({"micro,edge", "says \"hi\""});
  std::string csv = table.renderCsv();
  EXPECT_EQ(csv,
            "config,note\n"
            "baseline,plain\n"
            "\"micro,edge\",\"says \"\"hi\"\"\"\n");
}

}  // namespace
}  // namespace microedge
