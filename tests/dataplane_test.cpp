// Simulated data plane: transport, TPU Service, LB Service and the full
// TpuClient invoke path with its latency breakdown.

#include <gtest/gtest.h>

#include <algorithm>

#include "dataplane/dataplane.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

class DataPlaneTest : public ::testing::Test {
 protected:
  DataPlaneTest()
      : zoo_(zoo::standardZoo()),
        topo_(sim_, zoo_, smallTopology()),
        dataPlane_(sim_, topo_, zoo_) {}

  static TopologySpec smallTopology() {
    TopologySpec spec;
    spec.vRpiCount = 2;
    spec.tRpiCount = 2;
    return spec;
  }

  LoadCommand loadCommand(const std::string& tpuId,
                          std::vector<std::string> models) {
    return LoadCommand{tpuId, std::move(models), {}};
  }

  Simulator sim_;
  ModelRegistry zoo_;
  ClusterTopology topo_;
  DataPlane dataPlane_;
};

TEST_F(DataPlaneTest, OneServicePerTpu) {
  EXPECT_EQ(dataPlane_.serviceCount(), 2u);
  TpuService* service = dataPlane_.service("tpu-00");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->tpuId(), "tpu-00");
  EXPECT_EQ(service->node(), topo_.nodeOfTpu("tpu-00"));
  EXPECT_EQ(dataPlane_.service("tpu-77"), nullptr);
}

TEST_F(DataPlaneTest, ExecuteLoadInstallsComposite) {
  ASSERT_TRUE(dataPlane_
                  .executeLoad(loadCommand("tpu-00", {zoo::kMobileNetV1,
                                                      zoo::kUNetV2}))
                  .isOk());
  sim_.run();
  EXPECT_TRUE(topo_.findTpu("tpu-00")->isResident(zoo::kMobileNetV1));
  EXPECT_TRUE(topo_.findTpu("tpu-00")->isResident(zoo::kUNetV2));
  EXPECT_EQ(dataPlane_.service("tpu-00")->loadCount(), 1u);
}

TEST_F(DataPlaneTest, ExecuteLoadOnMissingServiceFails) {
  EXPECT_EQ(dataPlane_.executeLoad(loadCommand("tpu-77", {zoo::kUNetV2}))
                .code(),
            StatusCode::kUnavailable);
}

TEST_F(DataPlaneTest, SimTransportDeliversAfterLatency) {
  SimTransport& transport = dataPlane_.transport();
  bool delivered = false;
  SimDuration latency =
      transport.send("vrpi-00", "trpi-00", 270000, [&] { delivered = true; });
  EXPECT_NEAR(toMilliseconds(latency), 8.0, 0.5);
  EXPECT_FALSE(delivered);
  sim_.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(sim_.now() - kSimEpoch, latency);
  EXPECT_EQ(transport.messagesSent(), 1u);
  EXPECT_EQ(transport.bytesSent(), 270000u);
}

TEST_F(DataPlaneTest, ClientEndToEndBreakdown) {
  ASSERT_TRUE(
      dataPlane_.executeLoad(loadCommand("tpu-00", {zoo::kSsdMobileNetV2}))
          .isOk());
  sim_.run();
  auto client = dataPlane_.makeClient("vrpi-00", zoo::kSsdMobileNetV2);
  LbConfig lb{{LbWeight{"tpu-00", 350}}};
  ASSERT_TRUE(client->configureLb(lb).isOk());

  FrameBreakdown seen;
  int completions = 0;
  ASSERT_TRUE(client
                  ->invoke([&](const FrameBreakdown& b) {
                    seen = b;
                    ++completions;
                  })
                  .isOk());
  sim_.run();
  ASSERT_EQ(completions, 1);
  EXPECT_EQ(seen.servedByName(), "tpu-00");
  const ModelInfo& model = zoo_.at(zoo::kSsdMobileNetV2);
  EXPECT_EQ(seen.preprocess, model.preprocessLatency);
  EXPECT_EQ(seen.inference, model.inferenceLatency);
  EXPECT_EQ(seen.queueDelay, SimDuration::zero());
  EXPECT_NEAR(toMilliseconds(seen.requestTransmit), 8.0, 0.5);
  EXPECT_LT(seen.responseTransmit, milliseconds(1));
  // End-to-end equals the sum of the stages.
  SimDuration sum = seen.preprocess + seen.requestTransmit + seen.queueDelay +
                    seen.inference + seen.responseTransmit + seen.postprocess;
  EXPECT_EQ(seen.endToEnd(), sum);
  EXPECT_EQ(client->completedCount(), 1u);
  EXPECT_EQ(client->outstanding(), 0u);
}

TEST_F(DataPlaneTest, ClientFansOutPerLbWeights) {
  for (const char* tpu : {"tpu-00", "tpu-01"}) {
    ASSERT_TRUE(
        dataPlane_.executeLoad(loadCommand(tpu, {zoo::kMobileNetV1})).isOk());
  }
  sim_.run();
  auto client = dataPlane_.makeClient("vrpi-00", zoo::kMobileNetV1);
  // 2:1 split, the §4.3 example.
  ASSERT_TRUE(client
                  ->configureLb(LbConfig{{LbWeight{"tpu-00", 400},
                                          LbWeight{"tpu-01", 200}}})
                  .isOk());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client->invoke(nullptr).isOk());
    sim_.run();
  }
  EXPECT_EQ(dataPlane_.service("tpu-00")->invokeCount(), 20u);
  EXPECT_EQ(dataPlane_.service("tpu-01")->invokeCount(), 10u);
  EXPECT_EQ(client->lbService().routedCountTo("tpu-00"), 20u);
}

TEST_F(DataPlaneTest, ClientRequiresConfiguration) {
  auto client = dataPlane_.makeClient("vrpi-00", zoo::kMobileNetV1);
  EXPECT_EQ(client->invoke(nullptr).code(), StatusCode::kFailedPrecondition);
}

TEST_F(DataPlaneTest, StoppedClientRefusesNewFrames) {
  ASSERT_TRUE(
      dataPlane_.executeLoad(loadCommand("tpu-00", {zoo::kMobileNetV1}))
          .isOk());
  sim_.run();
  auto client = dataPlane_.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());
  ASSERT_TRUE(client->invoke(nullptr).isOk());
  client->stop();
  EXPECT_FALSE(client->invoke(nullptr).isOk());
  sim_.run();
  // The in-flight frame drains.
  EXPECT_EQ(client->completedCount(), 1u);
}

TEST_F(DataPlaneTest, PartitionedClientFailsOverWhenOneTargetDies) {
  for (const char* tpu : {"tpu-00", "tpu-01"}) {
    ASSERT_TRUE(
        dataPlane_.executeLoad(LoadCommand{tpu, {zoo::kMobileNetV1}, {}})
            .isOk());
  }
  sim_.run();
  auto client = dataPlane_.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(client
                  ->configureLb(LbConfig{{LbWeight{"tpu-00", 500},
                                          LbWeight{"tpu-01", 500}}})
                  .isOk());
  // tpu-00 dies before recovery reconfigures the weights: the client's own
  // failover keeps frames flowing through tpu-01.
  dataPlane_.removeService("tpu-00");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client->invoke(nullptr).isOk());
    sim_.run();
  }
  EXPECT_EQ(client->completedCount(), 10u);
  EXPECT_EQ(client->failedCount(), 0u);
  EXPECT_EQ(dataPlane_.service("tpu-01")->invokeCount(), 10u);
}

TEST_F(DataPlaneTest, RemovedServiceDropsFrames) {
  ASSERT_TRUE(
      dataPlane_.executeLoad(loadCommand("tpu-00", {zoo::kMobileNetV1}))
          .isOk());
  sim_.run();
  auto client = dataPlane_.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());
  dataPlane_.removeService("tpu-00");  // node failure
  ASSERT_TRUE(client->invoke(nullptr).isOk());
  sim_.run();
  EXPECT_EQ(client->completedCount(), 0u);
  EXPECT_EQ(client->failedCount(), 1u);
}

TEST_F(DataPlaneTest, QueueDelayVisibleUnderContention) {
  ASSERT_TRUE(
      dataPlane_.executeLoad(loadCommand("tpu-00", {zoo::kEfficientNetLite0}))
          .isOk());
  sim_.run();
  auto a = dataPlane_.makeClient("vrpi-00", zoo::kEfficientNetLite0);
  auto c = dataPlane_.makeClient("vrpi-01", zoo::kEfficientNetLite0);
  LbConfig lb{{LbWeight{"tpu-00", 100}}};
  ASSERT_TRUE(a->configureLb(lb).isOk());
  ASSERT_TRUE(c->configureLb(lb).isOk());
  std::vector<SimDuration> queueDelays;
  auto record = [&](const FrameBreakdown& b) {
    queueDelays.push_back(b.queueDelay);
  };
  ASSERT_TRUE(a->invoke(record).isOk());
  ASSERT_TRUE(c->invoke(record).isOk());
  sim_.run();
  ASSERT_EQ(queueDelays.size(), 2u);
  // Same arrival instant, serial device: one of the two waited ~69 ms.
  SimDuration maxDelay = std::max(queueDelays[0], queueDelays[1]);
  EXPECT_EQ(maxDelay, zoo_.at(zoo::kEfficientNetLite0).inferenceLatency);
}

TEST_F(DataPlaneTest, BaselineCollocatedClientSkipsNetwork) {
  ASSERT_TRUE(
      dataPlane_.executeLoad(loadCommand("tpu-00", {zoo::kSsdMobileNetV2}))
          .isOk());
  sim_.run();
  // Client on the TPU's own node: loopback transport.
  auto client =
      dataPlane_.makeClient(topo_.nodeOfTpu("tpu-00"), zoo::kSsdMobileNetV2);
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 350}}}).isOk());
  FrameBreakdown seen;
  ASSERT_TRUE(client->invoke([&](const FrameBreakdown& b) { seen = b; }).isOk());
  sim_.run();
  EXPECT_LT(seen.requestTransmit, milliseconds(1));
}

}  // namespace
}  // namespace microedge
