// Control-plane TPU bookkeeping: loads, model reference counts and lazy
// reclamation semantics.

#include <gtest/gtest.h>

#include "core/tpu_state.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

class TpuStateTest : public ::testing::Test {
 protected:
  TpuStateTest() : zoo_(zoo::standardZoo()), tpu_("tpu-00", 6.9) {}

  ModelRegistry zoo_;
  TpuState tpu_;
};

TEST_F(TpuStateTest, FreshState) {
  EXPECT_TRUE(tpu_.currentLoad().isZero());
  EXPECT_EQ(tpu_.freeUnits(), TpuUnit::full());
  EXPECT_EQ(tpu_.liveModelCount(), 0u);
  EXPECT_DOUBLE_EQ(tpu_.usedParamMb(zoo_), 0.0);
}

TEST_F(TpuStateTest, AddAllocationTracksLoadAndRefs) {
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.3));
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.2));
  EXPECT_EQ(tpu_.currentLoad().milli(), 500);
  EXPECT_EQ(tpu_.refCount(zoo::kMobileNetV1), 2);
  EXPECT_TRUE(tpu_.hasModel(zoo::kMobileNetV1));
  EXPECT_EQ(tpu_.liveModelCount(), 1u);
  EXPECT_NEAR(tpu_.usedParamMb(zoo_), 4.2, 1e-9);
}

TEST_F(TpuStateTest, RemoveAllocationIsLazyForModels) {
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.3));
  ASSERT_TRUE(
      tpu_.removeAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.3))
          .isOk());
  EXPECT_TRUE(tpu_.currentLoad().isZero());
  // Reference dropped to zero: the model no longer counts as "in" the TPU
  // for admission, but remains in the resident order until a purge.
  EXPECT_FALSE(tpu_.hasModel(zoo::kMobileNetV1));
  EXPECT_EQ(tpu_.residentOrder().size(), 1u);
  EXPECT_DOUBLE_EQ(tpu_.usedParamMb(zoo_), 0.0);
  tpu_.purgeDeadModels();
  EXPECT_TRUE(tpu_.residentOrder().empty());
}

TEST_F(TpuStateTest, RemoveAllocationErrors) {
  EXPECT_FALSE(
      tpu_.removeAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.1))
          .isOk());
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.2));
  // Releasing more load than present is rejected.
  EXPECT_FALSE(
      tpu_.removeAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.5))
          .isOk());
}

TEST_F(TpuStateTest, ModelFitsRule) {
  // 6.2 MB SSD fits an empty 6.9 MB TPU; adding 4.2 MB MobileNet then fails.
  EXPECT_TRUE(tpu_.modelFits(zoo_, zoo_.at(zoo::kSsdMobileNetV2)));
  tpu_.addAllocation(zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35));
  EXPECT_FALSE(tpu_.modelFits(zoo_, zoo_.at(zoo::kMobileNetV1)));
  // An already-present model always "fits".
  EXPECT_TRUE(tpu_.modelFits(zoo_, zoo_.at(zoo::kSsdMobileNetV2)));
}

TEST_F(TpuStateTest, DeadModelsFreeMemoryForAdmission) {
  tpu_.addAllocation(zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35));
  ASSERT_TRUE(
      tpu_.removeAllocation(zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35))
          .isOk());
  // Zero-ref SSD still resident, but its memory counts as reclaimable.
  EXPECT_TRUE(tpu_.modelFits(zoo_, zoo_.at(zoo::kInceptionV1)));
}

TEST_F(TpuStateTest, LiveModelsPreserveLoadOrder) {
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.1));
  tpu_.addAllocation(zoo::kUNetV2, TpuUnit::fromDouble(0.1));
  tpu_.addAllocation(zoo::kMobileNetV2, TpuUnit::fromDouble(0.1));
  auto live = tpu_.liveModels();
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[0], zoo::kMobileNetV1);
  EXPECT_EQ(live[1], zoo::kUNetV2);
  EXPECT_EQ(live[2], zoo::kMobileNetV2);
}

TEST(TpuPoolTest, AddRemoveFind) {
  TpuPool pool;
  EXPECT_TRUE(pool.addTpu("tpu-00", 6.9).isOk());
  EXPECT_TRUE(pool.addTpu("tpu-01", 6.9).isOk());
  EXPECT_EQ(pool.addTpu("tpu-00", 6.9).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(pool.addTpu("tpu-02", 0.0).isOk());
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_NE(pool.find("tpu-01"), nullptr);
  EXPECT_EQ(pool.find("tpu-09"), nullptr);
  EXPECT_TRUE(pool.removeTpu("tpu-01").isOk());
  EXPECT_EQ(pool.removeTpu("tpu-01").code(), StatusCode::kNotFound);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TpuPoolTest, Aggregates) {
  ModelRegistry zoo = zoo::standardZoo();
  TpuPool pool;
  ASSERT_TRUE(pool.addTpu("tpu-00", 6.9).isOk());
  ASSERT_TRUE(pool.addTpu("tpu-01", 6.9).isOk());
  ASSERT_TRUE(pool.addTpu("tpu-02", 6.9).isOk());
  pool.find("tpu-00")->addAllocation(zoo::kMobileNetV1,
                                     TpuUnit::fromDouble(0.4));
  pool.find("tpu-02")->addAllocation(zoo::kUNetV2, TpuUnit::fromDouble(0.5));
  EXPECT_EQ(pool.totalLoad().milli(), 900);
  EXPECT_EQ(pool.usedTpuCount(), 2u);
}

}  // namespace
}  // namespace microedge
