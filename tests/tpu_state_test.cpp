// Control-plane TPU bookkeeping: loads, model reference counts and lazy
// reclamation semantics.

#include <gtest/gtest.h>

#include "core/tpu_state.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

class TpuStateTest : public ::testing::Test {
 protected:
  TpuStateTest() : zoo_(zoo::standardZoo()), tpu_("tpu-00", 6.9) {}

  ModelRegistry zoo_;
  TpuState tpu_;
};

TEST_F(TpuStateTest, FreshState) {
  EXPECT_TRUE(tpu_.currentLoad().isZero());
  EXPECT_EQ(tpu_.freeUnits(), TpuUnit::full());
  EXPECT_EQ(tpu_.liveModelCount(), 0u);
  EXPECT_DOUBLE_EQ(tpu_.usedParamMb(zoo_), 0.0);
}

TEST_F(TpuStateTest, AddAllocationTracksLoadAndRefs) {
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.3));
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.2));
  EXPECT_EQ(tpu_.currentLoad().milli(), 500);
  EXPECT_EQ(tpu_.refCount(zoo::kMobileNetV1), 2);
  EXPECT_TRUE(tpu_.hasModel(zoo::kMobileNetV1));
  EXPECT_EQ(tpu_.liveModelCount(), 1u);
  EXPECT_NEAR(tpu_.usedParamMb(zoo_), 4.2, 1e-9);
}

TEST_F(TpuStateTest, RemoveAllocationIsLazyForModels) {
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.3));
  ASSERT_TRUE(
      tpu_.removeAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.3))
          .isOk());
  EXPECT_TRUE(tpu_.currentLoad().isZero());
  // Reference dropped to zero: the model no longer counts as "in" the TPU
  // for admission, but remains in the resident order until a purge.
  EXPECT_FALSE(tpu_.hasModel(zoo::kMobileNetV1));
  EXPECT_EQ(tpu_.residentOrder().size(), 1u);
  EXPECT_DOUBLE_EQ(tpu_.usedParamMb(zoo_), 0.0);
  tpu_.purgeDeadModels();
  EXPECT_TRUE(tpu_.residentOrder().empty());
}

TEST_F(TpuStateTest, RemoveAllocationErrors) {
  EXPECT_FALSE(
      tpu_.removeAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.1))
          .isOk());
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.2));
  // Releasing more load than present is rejected.
  EXPECT_FALSE(
      tpu_.removeAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.5))
          .isOk());
}

TEST_F(TpuStateTest, ModelFitsRule) {
  // 6.2 MB SSD fits an empty 6.9 MB TPU; adding 4.2 MB MobileNet then fails.
  EXPECT_TRUE(tpu_.modelFits(zoo_, zoo_.at(zoo::kSsdMobileNetV2)));
  tpu_.addAllocation(zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35));
  EXPECT_FALSE(tpu_.modelFits(zoo_, zoo_.at(zoo::kMobileNetV1)));
  // An already-present model always "fits".
  EXPECT_TRUE(tpu_.modelFits(zoo_, zoo_.at(zoo::kSsdMobileNetV2)));
}

TEST_F(TpuStateTest, DeadModelsFreeMemoryForAdmission) {
  tpu_.addAllocation(zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35));
  ASSERT_TRUE(
      tpu_.removeAllocation(zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35))
          .isOk());
  // Zero-ref SSD still resident, but its memory counts as reclaimable.
  EXPECT_TRUE(tpu_.modelFits(zoo_, zoo_.at(zoo::kInceptionV1)));
}

TEST_F(TpuStateTest, LiveModelsPreserveLoadOrder) {
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.1));
  tpu_.addAllocation(zoo::kUNetV2, TpuUnit::fromDouble(0.1));
  tpu_.addAllocation(zoo::kMobileNetV2, TpuUnit::fromDouble(0.1));
  auto live = tpu_.liveModels();
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[0], zoo::kMobileNetV1);
  EXPECT_EQ(live[1], zoo::kUNetV2);
  EXPECT_EQ(live[2], zoo::kMobileNetV2);
}

TEST(TpuPoolTest, AddRemoveFind) {
  TpuPool pool;
  EXPECT_TRUE(pool.addTpu("tpu-00", 6.9).isOk());
  EXPECT_TRUE(pool.addTpu("tpu-01", 6.9).isOk());
  EXPECT_EQ(pool.addTpu("tpu-00", 6.9).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(pool.addTpu("tpu-02", 0.0).isOk());
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_NE(pool.find("tpu-01"), nullptr);
  EXPECT_EQ(pool.find("tpu-09"), nullptr);
  EXPECT_TRUE(pool.removeTpu("tpu-01").isOk());
  EXPECT_EQ(pool.removeTpu("tpu-01").code(), StatusCode::kNotFound);
  EXPECT_EQ(pool.size(), 1u);
}

TEST_F(TpuStateTest, PurgeDeadModelsKeepsLiveRefsAndCounts) {
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.2));
  tpu_.addAllocation(zoo::kUNetV2, TpuUnit::fromDouble(0.2));
  tpu_.addAllocation(zoo::kMobileNetV2, TpuUnit::fromDouble(0.2));
  ASSERT_TRUE(
      tpu_.removeAllocation(zoo::kUNetV2, TpuUnit::fromDouble(0.2)).isOk());
  EXPECT_EQ(tpu_.liveModelCount(), 2u);
  EXPECT_EQ(tpu_.residentOrder().size(), 3u);
  tpu_.purgeDeadModels();
  // Only the zero-reference model is evicted; live refs keep their counts
  // and first-touch order.
  EXPECT_EQ(tpu_.residentOrder(),
            (std::vector<std::string>{zoo::kMobileNetV1, zoo::kMobileNetV2}));
  EXPECT_EQ(tpu_.refCount(zoo::kMobileNetV1), 1);
  EXPECT_EQ(tpu_.liveModelCount(), 2u);
  EXPECT_EQ(tpu_.currentLoad().milli(), 400);
}

TEST_F(TpuStateTest, PurgeOnEmptyStateIsNoop) {
  tpu_.purgeDeadModels();
  EXPECT_TRUE(tpu_.residentOrder().empty());
  EXPECT_EQ(tpu_.liveModelCount(), 0u);
}

TEST_F(TpuStateTest, ModelIdAndStringApisAgree) {
  ModelId id = zoo_.at(zoo::kMobileNetV1).id;
  ASSERT_TRUE(id.valid());
  tpu_.addAllocation(id, TpuUnit::fromDouble(0.3));
  EXPECT_TRUE(tpu_.hasModel(zoo::kMobileNetV1));
  EXPECT_TRUE(tpu_.hasModel(id));
  EXPECT_EQ(tpu_.refCount(zoo::kMobileNetV1), tpu_.refCount(id));
  ASSERT_TRUE(
      tpu_.removeAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.3))
          .isOk());
  EXPECT_FALSE(tpu_.hasModel(id));
}

TEST(TpuPoolTest, IndexTracksDirectMutations) {
  ModelRegistry zoo = zoo::standardZoo();
  TpuPool pool;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
  }
  // Mutating a TpuState through the pool (the reclamation/defrag pattern)
  // must keep the incremental indexes in sync without an explicit rebuild.
  pool.find("tpu-1")->addAllocation(zoo::kMobileNetV1,
                                    TpuUnit::fromMilli(800));
  pool.find("tpu-2")->addAllocation(zoo::kMobileNetV1,
                                    TpuUnit::fromMilli(400));
  EXPECT_TRUE(pool.indexConsistent());
  EXPECT_EQ(pool.firstWithResidualAtLeast(TpuUnit::fromMilli(700)), 0u);
  EXPECT_EQ(pool.firstWithResidualAtLeast(TpuUnit::fromMilli(700), 1), 3u);
  EXPECT_EQ(pool.firstWithResidualAtLeast(TpuUnit::fromMilli(600), 1), 2u);
  ASSERT_TRUE(pool.find("tpu-1")
                  ->removeAllocation(zoo::kMobileNetV1, TpuUnit::fromMilli(800))
                  .isOk());
  EXPECT_EQ(pool.firstWithResidualAtLeast(TpuUnit::fromMilli(601), 1), 1u);
  EXPECT_TRUE(pool.indexConsistent());
}

TEST(TpuPoolTest, IndexSurvivesRemoveCopyAndMove) {
  ModelRegistry zoo = zoo::standardZoo();
  TpuPool pool;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pool.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
  }
  pool.find("tpu-3")->addAllocation(zoo::kMobileNetV1, TpuUnit::fromMilli(900));
  ASSERT_TRUE(pool.removeTpu("tpu-1").isOk());
  EXPECT_TRUE(pool.indexConsistent());

  // Copies (the defragmenter's rollback snapshot) carry a working index and
  // stay independent of the original.
  TpuPool copy = pool;
  EXPECT_TRUE(copy.indexConsistent());
  copy.find("tpu-0")->addAllocation(zoo::kMobileNetV1, TpuUnit::fromMilli(500));
  EXPECT_TRUE(copy.indexConsistent());
  EXPECT_TRUE(pool.find("tpu-0")->currentLoad().isZero());
  EXPECT_TRUE(pool.indexConsistent());

  TpuPool moved = std::move(copy);
  EXPECT_TRUE(moved.indexConsistent());
  EXPECT_EQ(moved.find("tpu-0")->currentLoad().milli(), 500);
}

TEST(TpuPoolTest, ScanCursorOrders) {
  ModelRegistry zoo = zoo::standardZoo();
  TpuPool pool;
  const int loads[] = {300, 700, 100, 900};  // residuals 700 300 900 100
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
    pool.tpus()[static_cast<std::size_t>(i)].addAllocation(
        zoo::kMobileNetV1, TpuUnit::fromMilli(loads[i]));
  }
  auto collect = [&](PackingStrategy strategy, int minMilli,
                     std::size_t from = 0) {
    std::vector<std::uint32_t> order;
    auto cursor = pool.scan(strategy, TpuUnit::fromMilli(minMilli), from);
    for (std::uint32_t p = cursor.next(); p != TpuPool::npos; p = cursor.next())
      order.push_back(p);
    return order;
  };
  EXPECT_EQ(collect(PackingStrategy::kFirstFit, 300),
            (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(collect(PackingStrategy::kNextFit, 300, 2),
            (std::vector<std::uint32_t>{2}));
  // Best-Fit: tightest residual first; Worst-Fit: emptiest first.
  EXPECT_EQ(collect(PackingStrategy::kBestFit, 100),
            (std::vector<std::uint32_t>{3, 1, 0, 2}));
  EXPECT_EQ(collect(PackingStrategy::kWorstFit, 100),
            (std::vector<std::uint32_t>{2, 0, 1, 3}));
  // A request larger than one TPU yields no single-TPU candidates.
  EXPECT_TRUE(collect(PackingStrategy::kBestFit, 1200).empty());
  EXPECT_TRUE(collect(PackingStrategy::kWorstFit, 1200).empty());
}

TEST(TpuPoolTest, Aggregates) {
  ModelRegistry zoo = zoo::standardZoo();
  TpuPool pool;
  ASSERT_TRUE(pool.addTpu("tpu-00", 6.9).isOk());
  ASSERT_TRUE(pool.addTpu("tpu-01", 6.9).isOk());
  ASSERT_TRUE(pool.addTpu("tpu-02", 6.9).isOk());
  pool.find("tpu-00")->addAllocation(zoo::kMobileNetV1,
                                     TpuUnit::fromDouble(0.4));
  pool.find("tpu-02")->addAllocation(zoo::kUNetV2, TpuUnit::fromDouble(0.5));
  EXPECT_EQ(pool.totalLoad().milli(), 900);
  EXPECT_EQ(pool.usedTpuCount(), 2u);
}

}  // namespace
}  // namespace microedge
