// Two-tier event-heap boundary semantics (satellite of the sharded-sim PR).
//
// The Simulator splits its pending set at kFarThreshold (64 ms): events
// scheduled >= that far from now land on the far heap, everything nearer on
// the near heap, and fireNext() picks the globally-minimal root of the two
// — there is no migration step, so an event "moves" between tiers only by
// firing or by being re-armed. These tests nail the boundary down: exact-
// threshold placement, firing order and (when, seq) tie order across the
// two heaps, and in-place cancel of far entries (including the far root
// while it is the globally next event).

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace microedge {
namespace {

TEST(SimHeapBoundary, ExactThresholdLandsFar) {
  Simulator sim;
  // One nanosecond under the threshold: near heap.
  sim.schedule(sim.now() + Simulator::farThreshold() - nanoseconds(1), [] {});
  EXPECT_EQ(sim.nearCount(), 1u);
  EXPECT_EQ(sim.farCount(), 0u);
  // Exactly the threshold: the >= comparison sends it far.
  sim.schedule(sim.now() + Simulator::farThreshold(), [] {});
  EXPECT_EQ(sim.nearCount(), 1u);
  EXPECT_EQ(sim.farCount(), 1u);
  sim.schedule(sim.now() + Simulator::farThreshold() + nanoseconds(1), [] {});
  EXPECT_EQ(sim.farCount(), 2u);
}

TEST(SimHeapBoundary, FiringOrderSpansBothHeaps) {
  Simulator sim;
  const SimTime start = sim.now();
  std::vector<int> order;
  // Interleave near and far events; they must fire in timestamp order no
  // matter which heap holds them.
  sim.schedule(start + Simulator::farThreshold() + milliseconds(1),
               [&order] { order.push_back(3); });
  sim.schedule(start + milliseconds(1), [&order] { order.push_back(0); });
  sim.schedule(start + Simulator::farThreshold(),
               [&order] { order.push_back(2); });
  sim.schedule(start + Simulator::farThreshold() - nanoseconds(1),
               [&order] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), start + Simulator::farThreshold() + milliseconds(1));
}

TEST(SimHeapBoundary, EqualTimestampTieBreaksBySeqAcrossHeaps) {
  Simulator sim;
  const SimTime start = sim.now();
  const SimTime when = start + milliseconds(70);
  std::vector<int> order;
  // e1 is scheduled 70 ms out -> far heap.
  sim.schedule(when, [&order] { order.push_back(1); });
  ASSERT_EQ(sim.farCount(), 1u);
  // Advance now by 10 ms, then schedule e2 for the SAME timestamp: it is
  // only 60 ms out now -> near heap. Same (when), different heaps.
  sim.schedule(start + milliseconds(10), [&] {
    sim.schedule(when, [&order] { order.push_back(2); });
    EXPECT_EQ(sim.nearCount(), 1u);
    EXPECT_EQ(sim.farCount(), 1u);
  });
  sim.run();
  // Global (when, seq) order: e1 was scheduled first and must fire first
  // even though it sits on the far heap.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimHeapBoundary, NextEventTimeSeesFarRoot) {
  Simulator sim;
  const SimTime start = sim.now();
  sim.schedule(start + milliseconds(100), [] {});
  EXPECT_EQ(sim.nearCount(), 0u);
  EXPECT_EQ(sim.farCount(), 1u);
  EXPECT_EQ(sim.nextEventTime(), start + milliseconds(100));
}

TEST(SimHeapBoundary, CancelFarRootInPlace) {
  Simulator sim;
  const SimTime start = sim.now();
  std::vector<int> order;
  EventId root =
      sim.schedule(start + milliseconds(100), [&order] { order.push_back(0); });
  sim.schedule(start + milliseconds(120), [&order] { order.push_back(1); });
  sim.schedule(start + milliseconds(140), [&order] { order.push_back(2); });
  ASSERT_EQ(sim.farCount(), 3u);
  // In-place removal of the far ROOT: no tombstone, the count drops now.
  sim.cancel(root);
  EXPECT_EQ(sim.farCount(), 2u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // Cancelling the already-fired / already-cancelled ids is a no-op.
  sim.cancel(root);
  EXPECT_EQ(sim.farCount(), 0u);
}

TEST(SimHeapBoundary, CancelFarEventWhileItIsGloballyNext) {
  Simulator sim;
  const SimTime start = sim.now();
  bool farFired = false;
  EventId far = sim.schedule(start + milliseconds(100),
                             [&farFired] { farFired = true; });
  // By the time this near event runs, the near heap is empty and the far
  // entry is the globally next event; the cancel must still find it via its
  // far-tagged position.
  sim.schedule(start + milliseconds(50), [&] {
    EXPECT_EQ(sim.farCount(), 1u);
    sim.cancel(far);
    EXPECT_EQ(sim.farCount(), 0u);
  });
  sim.runUntil(start + milliseconds(200));
  EXPECT_FALSE(farFired);
  EXPECT_EQ(sim.now(), start + milliseconds(200));
}

TEST(SimHeapBoundary, PeriodicRearmLandsPerBoundary) {
  Simulator sim;
  // Period over the threshold: every re-arm is a far event.
  int farTicks = 0;
  PeriodicTask farTask(sim, milliseconds(100), [&] {
    ++farTicks;
    EXPECT_EQ(sim.farCount(), 0u);  // our own slot is mid-rearm
  });
  farTask.start();
  EXPECT_EQ(sim.farCount(), 1u);
  EXPECT_EQ(sim.nearCount(), 0u);
  sim.runFor(milliseconds(350));
  EXPECT_EQ(farTicks, 3);
  EXPECT_EQ(sim.farCount(), 1u);  // re-armed 100 ms out again
  farTask.stop();
  EXPECT_EQ(sim.farCount(), 0u);

  // Period under the threshold: the re-arm stays near.
  int nearTicks = 0;
  PeriodicTask nearTask(sim, milliseconds(10), [&] { ++nearTicks; });
  nearTask.start();
  EXPECT_EQ(sim.nearCount(), 1u);
  EXPECT_EQ(sim.farCount(), 0u);
  sim.runFor(milliseconds(35));
  EXPECT_EQ(nearTicks, 3);
  EXPECT_EQ(sim.nearCount(), 1u);
  nearTask.stop();
}

TEST(SimHeapBoundary, EmitterBoundSeesFarEvents) {
  Simulator sim;
  sim.setEmitterTracking(true);
  const SimTime start = sim.now();
  // Untagged events — near or far — are invisible to the emitter bound.
  sim.schedule(start + milliseconds(100), [] {});
  sim.schedule(start + milliseconds(1), [] {});
  EXPECT_EQ(sim.nextEmitterTime(), SimTime::max());
  // A tagged far event is visible: the side heap spans both tiers.
  sim.schedule(start + milliseconds(200), [] {}, /*emitter=*/true);
  EXPECT_EQ(sim.nextEmitterTime(), start + milliseconds(200));
  // A nearer tagged near event takes over the bound.
  EventId nearTagged =
      sim.schedule(start + milliseconds(2), [] {}, /*emitter=*/true);
  EXPECT_EQ(sim.nextEmitterTime(), start + milliseconds(2));
  // Cancelled entries are purged lazily when they surface at the top.
  sim.cancel(nearTagged);
  EXPECT_EQ(sim.nextEmitterTime(), start + milliseconds(200));
}

TEST(SimHeapBoundary, RetroactiveTaintOfFarEntry) {
  Simulator sim;
  sim.setEmitterTracking(true);
  const SimTime start = sim.now();
  EventId far = sim.schedule(start + milliseconds(100), [] {});
  ASSERT_EQ(sim.farCount(), 1u);
  EXPECT_EQ(sim.nextEmitterTime(), SimTime::max());
  // taintEvent must locate the slot through its far-tagged heap position.
  sim.taintEvent(far);
  EXPECT_EQ(sim.nextEmitterTime(), start + milliseconds(100));
  // Idempotent while pending, and a stale id after firing is a no-op.
  sim.taintEvent(far);
  EXPECT_EQ(sim.nextEmitterTime(), start + milliseconds(100));
  sim.run();
  EXPECT_EQ(sim.nextEmitterTime(), SimTime::max());
  sim.taintEvent(far);
  EXPECT_EQ(sim.nextEmitterTime(), SimTime::max());
}

TEST(SimHeapBoundary, RunBeforeRespectsBoundAcrossHeaps) {
  Simulator sim;
  const SimTime start = sim.now();
  std::vector<int> order;
  sim.schedule(start + milliseconds(10), [&order] { order.push_back(0); });
  sim.schedule(start + milliseconds(70), [&order] { order.push_back(1); });
  // Strictly-before bound: the event AT the bound stays pending, and the
  // clock parks at advanceTo.
  sim.runBefore(start + milliseconds(70), start + milliseconds(65));
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(sim.now(), start + milliseconds(65));
  EXPECT_EQ(sim.farCount() + sim.nearCount(), 1u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace microedge
