// The bare-metal baseline: integral TPU dedication and the fragmentation it
// causes (the paper's comparison point).

#include <gtest/gtest.h>

#include "core/dedicated_allocator.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

class DedicatedAllocatorTest : public ::testing::Test {
 protected:
  DedicatedAllocatorTest() : zoo_(zoo::standardZoo()) {
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(pool_.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
    }
  }

  ModelRegistry zoo_;
  TpuPool pool_;
};

TEST_F(DedicatedAllocatorTest, CoralPieTakesOneWholeTpu) {
  DedicatedAllocator allocator(pool_, zoo_);
  auto result =
      allocator.admit(1, zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35));
  ASSERT_TRUE(result.isOk());
  ASSERT_EQ(result->allocation.shares.size(), 1u);
  // Pool bookkeeping shows the TPU fully taken even though the duty cycle is
  // 0.35 — that gap IS the internal fragmentation.
  EXPECT_EQ(pool_.find("tpu-0")->currentLoad(), TpuUnit::full());
}

TEST_F(DedicatedAllocatorTest, BodyPixTakesTwoTpusAlternatingFrames) {
  DedicatedAllocator allocator(pool_, zoo_);
  auto result =
      allocator.admit(1, zoo::kBodyPixMobileNetV1, TpuUnit::fromDouble(1.2));
  ASSERT_TRUE(result.isOk());
  ASSERT_EQ(result->allocation.shares.size(), 2u);
  // Equal weights -> the LBS alternates frames between the two TPUs.
  EXPECT_EQ(result->allocation.shares[0].units,
            result->allocation.shares[1].units);
  EXPECT_EQ(pool_.find("tpu-0")->currentLoad(), TpuUnit::full());
  EXPECT_EQ(pool_.find("tpu-1")->currentLoad(), TpuUnit::full());
}

TEST_F(DedicatedAllocatorTest, CapacityIsIntegral) {
  DedicatedAllocator allocator(pool_, zoo_);
  // 6 TPUs -> 6 Coral-Pie cameras, no matter how small the duty cycle.
  int admitted = 0;
  for (std::uint64_t pod = 1; pod <= 10; ++pod) {
    if (allocator.admit(pod, zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35))
            .isOk()) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 6);
  EXPECT_EQ(allocator.rejectedCount(), 4u);
}

TEST_F(DedicatedAllocatorTest, BodyPixCapacityIsThree) {
  DedicatedAllocator allocator(pool_, zoo_);
  int admitted = 0;
  for (std::uint64_t pod = 1; pod <= 6; ++pod) {
    if (allocator
            .admit(pod, zoo::kBodyPixMobileNetV1, TpuUnit::fromDouble(1.2))
            .isOk()) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 3);  // 2 TPUs each
}

TEST_F(DedicatedAllocatorTest, ReleaseFreesWholeTpus) {
  DedicatedAllocator allocator(pool_, zoo_);
  auto result =
      allocator.admit(1, zoo::kBodyPixMobileNetV1, TpuUnit::fromDouble(1.2));
  ASSERT_TRUE(result.isOk());
  ASSERT_TRUE(allocator.release(result->allocation).isOk());
  EXPECT_TRUE(pool_.totalLoad().isZero());
  // Freed TPUs are reusable, including their model memory.
  auto again =
      allocator.admit(2, zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35));
  EXPECT_TRUE(again.isOk());
}

TEST_F(DedicatedAllocatorTest, RejectsBadInputs) {
  DedicatedAllocator allocator(pool_, zoo_);
  EXPECT_FALSE(allocator.admit(1, "bogus", TpuUnit::fromDouble(0.5)).isOk());
  EXPECT_FALSE(allocator.admit(2, zoo::kMobileNetV1, TpuUnit::zero()).isOk());
}

TEST_F(DedicatedAllocatorTest, EmitsLoadCommandPerTpu) {
  DedicatedAllocator allocator(pool_, zoo_);
  auto result =
      allocator.admit(1, zoo::kBodyPixMobileNetV1, TpuUnit::fromDouble(1.2));
  ASSERT_TRUE(result.isOk());
  ASSERT_EQ(result->loads.size(), 2u);
  for (const auto& load : result->loads) {
    EXPECT_EQ(load.composite,
              std::vector<std::string>{zoo::kBodyPixMobileNetV1});
  }
}

}  // namespace
}  // namespace microedge
