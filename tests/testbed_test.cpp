// Full-stack integration through the Testbed harness: YAML-equivalent
// deployments -> K3s-surface admission -> extended scheduler -> data plane
// -> metrics, plus teardown/reclamation and failure injection.

#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace microedge {
namespace {

CameraDeployment coralPieCamera(const std::string& name) {
  CameraDeployment deployment;
  deployment.name = name;
  deployment.model = zoo::kSsdMobileNetV2;
  deployment.fps = 15.0;
  return deployment;
}

TEST(TestbedTest, BootsPaperReferenceCluster) {
  Testbed testbed;
  EXPECT_EQ(testbed.topology().nodes().size(), 25u);
  EXPECT_EQ(testbed.pool().size(), 6u);
  EXPECT_EQ(testbed.dataPlane().serviceCount(), 6u);
  // Profiling service: Coral-Pie's model needs 0.35 units at 15 FPS.
  EXPECT_NEAR(testbed.profiledUnits(zoo::kSsdMobileNetV2, 15.0), 0.35, 0.005);
}

TEST(TestbedTest, DeploysCameraEndToEnd) {
  Testbed testbed;
  auto camera = testbed.deployCamera(coralPieCamera("cam-0"));
  ASSERT_TRUE(camera.isOk()) << camera.status();
  EXPECT_EQ(testbed.liveCameraCount(), 1u);
  // The pod landed on a vRPi (the TPU Service reservation steers it away
  // from tRPis) and its client transmits over the network.
  const Pod* pod = testbed.api().findPodByName("cam-0");
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(testbed.nodeRegistry().find(pod->nodeName)->labels.at("tpu"),
            "false");

  testbed.run(seconds(10));
  const CameraPipeline* pipeline = *camera;
  EXPECT_GT(pipeline->slo().completed(), 100u);
  EXPECT_TRUE(pipeline->slo().sloMet());
  EXPECT_NEAR(pipeline->breakdown().requestTransmit().meanMs(), 8.0, 1.0);
}

TEST(TestbedTest, SloHeldAtFullWpCapacity) {
  // 17 Coral-Pie cameras on 6 TPUs: the paper's headline operating point.
  Testbed testbed;
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(testbed.deployCamera(coralPieCamera("cam-" + std::to_string(i)))
                    .isOk())
        << i;
  }
  EXPECT_FALSE(testbed.deployCamera(coralPieCamera("cam-17")).isOk());
  testbed.run(seconds(30));
  SloReport report = testbed.sloReport();
  EXPECT_EQ(report.streams, 17u);
  EXPECT_TRUE(report.allMet()) << "min fps " << report.minAchievedFps;
  // Near-full utilization (17 * 0.35 / 6 = 0.99).
  EXPECT_GT(testbed.meanTpuUtilization(), 0.9);
}

TEST(TestbedTest, RemoveCameraReclaimsUnitsViaPoller) {
  Testbed testbed;
  ASSERT_TRUE(testbed.deployCamera(coralPieCamera("cam-0")).isOk());
  TpuUnit loadBefore = testbed.pool().totalLoad();
  EXPECT_EQ(loadBefore.milli(), 350);
  testbed.run(seconds(2));
  ASSERT_TRUE(testbed.removeCamera("cam-0").isOk());
  // Units are reclaimed by the periodic poller, not synchronously.
  EXPECT_EQ(testbed.pool().totalLoad().milli(), 350);
  testbed.run(seconds(5));
  EXPECT_EQ(testbed.pool().totalLoad().milli(), 0);
  EXPECT_EQ(testbed.liveCameraCount(), 0u);
  EXPECT_EQ(testbed.reclamation().reclaimedCount(), 1u);
}

TEST(TestbedTest, PodCrashReclaimedToo) {
  Testbed testbed;
  auto camera = testbed.deployCamera(coralPieCamera("cam-0"));
  ASSERT_TRUE(camera.isOk());
  testbed.run(seconds(1));
  // Failure injection: the pod dies without a graceful delete.
  const Pod* pod = testbed.api().findPodByName("cam-0");
  ASSERT_NE(pod, nullptr);
  ASSERT_TRUE(testbed.api().failPod(pod->uid).isOk());
  (*camera)->stop();
  testbed.run(seconds(5));
  EXPECT_EQ(testbed.pool().totalLoad().milli(), 0);
}

TEST(TestbedTest, CapacityReusableAfterChurn) {
  Testbed testbed;
  for (int round = 0; round < 3; ++round) {
    std::string name = "cam-" + std::to_string(round);
    auto camera = testbed.deployCamera(coralPieCamera(name));
    ASSERT_TRUE(camera.isOk()) << "round " << round;
    testbed.run(seconds(3));
    ASSERT_TRUE(testbed.removeCamera(name).isOk());
    testbed.run(seconds(5));  // poller reclaims
  }
  EXPECT_EQ(testbed.pool().totalLoad().milli(), 0);
}

TEST(TestbedTest, BaselineModeDedicatesAndCollocates) {
  TestbedConfig config;
  config.mode = SchedulingMode::kBaselineDedicated;
  Testbed testbed(config);
  int admitted = 0;
  for (int i = 0; i < 8; ++i) {
    if (testbed.deployCamera(coralPieCamera("cam-" + std::to_string(i)))
            .isOk()) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 6);  // one whole TPU each
  testbed.run(seconds(10));
  // Dedicated duty cycle 0.35 -> ~35% utilization (the paper's ~33% bar).
  EXPECT_NEAR(testbed.meanTpuUtilization(), 0.35, 0.03);
  // Collocated client: no 8 ms transmission.
  for (CameraPipeline* camera : testbed.liveCameras()) {
    EXPECT_LT(camera->breakdown().requestTransmit().meanMs(), 1.0);
  }
  EXPECT_TRUE(testbed.sloReport().allMet());
}

TEST(TestbedTest, NoWpModeFitsTwoPerTpu) {
  TestbedConfig config;
  config.mode = SchedulingMode::kMicroEdgeNoWp;
  Testbed testbed(config);
  int admitted = 0;
  for (int i = 0; i < 20; ++i) {
    if (testbed.deployCamera(coralPieCamera("cam-" + std::to_string(i)))
            .isOk()) {
      ++admitted;
    }
  }
  EXPECT_EQ(admitted, 12);
  testbed.run(seconds(10));
  EXPECT_NEAR(testbed.meanTpuUtilization(), 0.70, 0.05);
  EXPECT_TRUE(testbed.sloReport().allMet());
}

TEST(TestbedTest, BodyPixPartitionsAcrossTwoTpus) {
  Testbed testbed;
  CameraDeployment deployment;
  deployment.name = "seg-0";
  deployment.model = zoo::kBodyPixMobileNetV1;
  auto app = testbed.deployBodyPix(deployment);
  ASSERT_TRUE(app.isOk()) << app.status();
  const LbConfig* lb = testbed.scheduler().lbConfig(
      testbed.api().findPodByName("seg-0")->uid);
  ASSERT_NE(lb, nullptr);
  EXPECT_EQ(lb->weights.size(), 2u);
  testbed.run(seconds(10));
  // 1.2 units split across two TPUs sustains 15 FPS.
  EXPECT_TRUE((*app)->pipeline().slo().throughputMet());
  EXPECT_GT((*app)->occupancy().count(), 100u);
}

TEST(TestbedTest, CoralPieAppDeploysDetectionAndReidPods) {
  Testbed testbed;
  CameraDeployment deployment = coralPieCamera("cp-0");
  deployment.useDiffDetector = true;
  auto app = testbed.deployCoralPie(deployment);
  ASSERT_TRUE(app.isOk()) << app.status();
  EXPECT_NE(testbed.api().findPodByName("cp-0"), nullptr);
  EXPECT_NE(testbed.api().findPodByName("cp-0-reid"), nullptr);
  testbed.run(seconds(20));
  EXPECT_GT((*app)->detection().slo().completed(), 0u);
  ASSERT_TRUE(testbed.removeCoralPie("cp-0").isOk());
  testbed.run(seconds(5));
  EXPECT_EQ(testbed.pool().totalLoad().milli(), 0);
  EXPECT_EQ(testbed.api().liveCount(), 0u);
}

TEST(TestbedTest, RejectionsDoNotLeakAnything) {
  TopologySpec topo;
  topo.tRpiCount = 1;
  topo.vRpiCount = 4;
  TestbedConfig config;
  config.topology = topo;
  Testbed testbed(config);
  ASSERT_TRUE(testbed.deployCamera(coralPieCamera("a")).isOk());
  ASSERT_TRUE(testbed.deployCamera(coralPieCamera("b")).isOk());
  // Third camera: 1.05 units > 1 TPU -> rejected.
  auto rejected = testbed.deployCamera(coralPieCamera("c"));
  EXPECT_FALSE(rejected.isOk());
  EXPECT_EQ(testbed.api().liveCount(), 2u);
  EXPECT_EQ(testbed.pool().totalLoad().milli(), 700);
  EXPECT_EQ(testbed.liveCameraCount(), 2u);
}

TEST(TestbedTest, DuplicateCameraNameRejected) {
  Testbed testbed;
  ASSERT_TRUE(testbed.deployCamera(coralPieCamera("cam")).isOk());
  EXPECT_EQ(testbed.deployCamera(coralPieCamera("cam")).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(testbed.removeCamera("ghost").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace microedge
