// Threaded mini-cluster integration: the complete control-plane pipeline
// (admission -> co-compiled composites -> LBS weights) driving a *real*
// concurrent data plane — several TPU worker threads, several client
// threads — under mixed multi-tenant workloads. Validates that MicroEdge's
// deployment-time artifacts are sufficient to run the data plane with no
// runtime scheduler in the loop, which is the paper's §2 design argument.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/extended_scheduler.hpp"
#include "dataplane/inproc_runtime.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

class InprocClusterTest : public ::testing::Test {
 protected:
  static constexpr int kTpus = 3;

  InprocClusterTest() : zoo_(zoo::standardZoo()) {
    for (int i = 0; i < kTpus; ++i) {
      std::string id = "tpu-0" + std::to_string(i);
      EXPECT_TRUE(pool_.addTpu(id, 6.9).isOk());
      InprocTpuService::Config config;
      config.tpuId = id;
      config.timeScale = 0.002;  // 500x faster than real time
      services_.emplace(id,
                        std::make_unique<InprocTpuService>(zoo_, config));
      directory_[id] = services_.at(id).get();
    }
    admission_ = std::make_unique<AdmissionController>(pool_, zoo_,
                                                       AdmissionConfig{});
  }

  // Admission + Load execution on the threaded services + client wiring:
  // the whole §3.1 control-plane workflow against real threads.
  std::unique_ptr<InprocClient> deploy(std::uint64_t uid,
                                       const std::string& model,
                                       double units) {
    auto result = admission_->admit(uid, model, TpuUnit::fromDouble(units));
    if (!result.isOk()) return nullptr;
    for (const LoadCommand& load : result->loads) {
      directory_.at(load.tpuId)->load(load.composite);
    }
    auto client = std::make_unique<InprocClient>(zoo_, model);
    LbConfig lb =
        ExtendedScheduler::lbConfigFromAllocation(result->allocation);
    EXPECT_TRUE(client->configure(lb, directory_).isOk());
    allocations_[uid] = result->allocation;
    return client;
  }

  ModelRegistry zoo_;
  TpuPool pool_;
  std::map<std::string, std::unique_ptr<InprocTpuService>> services_;
  std::map<std::string, InprocTpuService*> directory_;
  std::unique_ptr<AdmissionController> admission_;
  std::map<std::uint64_t, Allocation> allocations_;
};

TEST_F(InprocClusterTest, MixedTenantsNoSwapsAfterCoCompile) {
  // Two tenants with different models co-compiled on one TPU: interleaved
  // concurrent invokes must never swap.
  auto a = deploy(1, zoo::kMobileNetV1, 0.3);
  auto b = deploy(2, zoo::kUNetV2, 0.4);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  std::atomic<int> failures{0};
  auto hammer = [&failures](InprocClient* client, int n) {
    for (int i = 0; i < n; ++i) {
      auto result = client->invoke();
      if (!result.isOk() || result->paidSwap) ++failures;
    }
  };
  std::thread ta(hammer, a.get(), 40);
  std::thread tb(hammer, b.get(), 40);
  ta.join();
  tb.join();
  EXPECT_EQ(failures.load(), 0);
  std::uint64_t swaps = 0;
  for (auto& [id, service] : services_) swaps += service->swapCount();
  EXPECT_EQ(swaps, 0u);
}

TEST_F(InprocClusterTest, PartitionedTenantSpreadsAcrossWorkerThreads) {
  // Partially load every TPU so the next pod must partition.
  auto filler0 = deploy(1, zoo::kMobileNetV1, 0.8);
  auto filler1 = deploy(2, zoo::kMobileNetV1, 0.7);
  auto filler2 = deploy(3, zoo::kMobileNetV1, 0.7);
  ASSERT_NE(filler0, nullptr);
  ASSERT_NE(filler1, nullptr);
  ASSERT_NE(filler2, nullptr);
  auto split = deploy(4, zoo::kMobileNetV1, 0.6);  // 0.2 + 0.3 + 0.1
  ASSERT_NE(split, nullptr);
  ASSERT_GT(allocations_.at(4).shares.size(), 1u);

  std::uint64_t before[kTpus];
  int i = 0;
  for (auto& [id, service] : services_) before[i++] = service->servedCount();
  const int kInvokes = 60;
  for (int n = 0; n < kInvokes; ++n) {
    ASSERT_TRUE(split->invoke().isOk());
  }
  // Each share's TPU served its proportional slice (exact: smooth WRR).
  std::uint64_t total = 0;
  i = 0;
  std::map<std::string, std::uint64_t> served;
  for (auto& [id, service] : services_) {
    served[id] = service->servedCount() - before[i++];
    total += served[id];
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kInvokes));
  TpuUnit splitTotal = allocations_.at(4).totalUnits();
  for (const TpuShare& share : allocations_.at(4).shares) {
    double expected = static_cast<double>(kInvokes) *
                      static_cast<double>(share.units.milli()) /
                      static_cast<double>(splitTotal.milli());
    EXPECT_NEAR(static_cast<double>(served[share.tpuId]), expected, 1.01)
        << share.tpuId;
  }
}

TEST_F(InprocClusterTest, ConcurrentMixedFleetCompletesEverything) {
  // 6 tenants, 3 models, concurrent client threads; every invoke completes
  // and total served equals total submitted (run-to-completion, no loss).
  struct Tenant {
    std::unique_ptr<InprocClient> client;
    int invokes = 25;
  };
  std::vector<Tenant> tenants;
  const std::vector<std::pair<const char*, double>> mix = {
      {zoo::kMobileNetV1, 0.2}, {zoo::kUNetV2, 0.4},
      {zoo::kMobileNetV1, 0.3}, {zoo::kMobileNetV2, 0.2},
      {zoo::kUNetV2, 0.5},      {zoo::kMobileNetV2, 0.3}};
  std::uint64_t uid = 10;
  for (const auto& [model, units] : mix) {
    Tenant tenant;
    tenant.client = deploy(uid++, model, units);
    ASSERT_NE(tenant.client, nullptr) << model;
    tenants.push_back(std::move(tenant));
  }

  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (Tenant& tenant : tenants) {
    threads.emplace_back([&tenant, &completed] {
      for (int i = 0; i < tenant.invokes; ++i) {
        if (tenant.client->invoke().isOk()) ++completed;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), 150);
  std::uint64_t served = 0;
  for (auto& [id, service] : services_) served += service->servedCount();
  EXPECT_EQ(served, 150u);
}

TEST_F(InprocClusterTest, AdmissionRejectsBeyondThreadedCapacityToo) {
  // The control plane protects the threaded data plane identically.
  ASSERT_NE(deploy(1, zoo::kMobileNetV1, 1.0), nullptr);
  ASSERT_NE(deploy(2, zoo::kMobileNetV1, 1.0), nullptr);
  ASSERT_NE(deploy(3, zoo::kMobileNetV1, 1.0), nullptr);
  EXPECT_EQ(deploy(4, zoo::kMobileNetV1, 0.1), nullptr);
}

}  // namespace
}  // namespace microedge
