// Cross-module end-to-end scenarios: YAML -> admission, scalability drivers,
// the trace study machinery, the serverless comparator and the co-compile
// ablation on the data plane.

#include <gtest/gtest.h>

#include "orch/spec.hpp"
#include "testbed/scenarios.hpp"
#include "testbed/serverless_baseline.hpp"
#include "testbed/testbed.hpp"

namespace microedge {
namespace {

TEST(YamlToAdmissionTest, SpecDrivesTheFullControlPlane) {
  Testbed testbed;
  auto spec = podSpecFromYaml(
      "name: yaml-cam\n"
      "image: coral-pie:1.4\n"
      "fps: 15\n"
      "resources:\n"
      "  cpu: 1000m\n"
      "  memory: 512Mi\n"
      "  tpu-units: 0.35\n"
      "  model: ssd-mobilenet-v2\n");
  ASSERT_TRUE(spec.isOk()) << spec.status();
  auto uid = testbed.api().createPod(*spec);
  ASSERT_TRUE(uid.isOk()) << uid.status();
  EXPECT_EQ(testbed.pool().totalLoad().milli(), 350);
  const LbConfig* lb = testbed.scheduler().lbConfig(*uid);
  ASSERT_NE(lb, nullptr);
  EXPECT_EQ(lb->weights[0].weight, 350u);
  // The model was pushed to the TPU Service by the Load command.
  testbed.sim().run();
  EXPECT_TRUE(testbed.topology()
                  .findTpu(lb->weights[0].tpuId)
                  ->isResident(zoo::kSsdMobileNetV2));
}

TEST(ScenarioTest, AdmissionCapacitiesMatchPaperMath) {
  ScalabilityScenario scenario;
  scenario.deployment.name = "cam";
  scenario.deployment.model = zoo::kSsdMobileNetV2;

  scenario.mode = SchedulingMode::kBaselineDedicated;
  EXPECT_EQ(admissionCapacity(scenario, 6), 6);
  scenario.mode = SchedulingMode::kMicroEdgeNoWp;
  EXPECT_EQ(admissionCapacity(scenario, 6), 12);
  scenario.mode = SchedulingMode::kMicroEdgeWp;
  EXPECT_EQ(admissionCapacity(scenario, 6), 17);  // 2.8x the baseline
}

TEST(ScenarioTest, ScalabilityPointMeasuresUtilization) {
  ScalabilityScenario scenario;
  scenario.deployment.model = zoo::kSsdMobileNetV2;
  scenario.mode = SchedulingMode::kMicroEdgeWp;
  scenario.horizon = seconds(15);
  ScalabilityPoint point = runScalabilityPoint(scenario, 2);
  EXPECT_EQ(point.tpuCount, 2);
  EXPECT_EQ(point.camerasSupported, 5);  // floor(2 / 0.35)
  EXPECT_GT(point.meanUtilization, 0.8);
  EXPECT_TRUE(point.sloMet);
}

TEST(ScenarioTest, CostToSupportMatchesTable1Shape) {
  CameraDeployment deployment;
  deployment.model = zoo::kSsdMobileNetV2;
  CostPoint baseline =
      costToSupport(SchedulingMode::kBaselineDedicated, deployment, 17);
  CostPoint noWp = costToSupport(SchedulingMode::kMicroEdgeNoWp, deployment, 17);
  CostPoint wp = costToSupport(SchedulingMode::kMicroEdgeWp, deployment, 17);
  EXPECT_EQ(baseline.tpus, 17);
  EXPECT_EQ(noWp.tpus, 9);  // ceil(17 / 2); the paper lists 8 (see
                            // EXPERIMENTS.md on this delta)
  EXPECT_EQ(wp.tpus, 6);    // ceil(17 * 0.35)
  EXPECT_DOUBLE_EQ(baseline.totalCost, 2550.0);
  EXPECT_DOUBLE_EQ(wp.totalCost, 1725.0);
  EXPECT_LT(wp.totalCost, noWp.totalCost);
  EXPECT_LT(noWp.totalCost, baseline.totalCost);
}

TEST(ScenarioTest, TraceScenarioRunsAndServesStreams) {
  TraceScenarioConfig config;
  config.trace = MafTraceGenerator::paperDefaults();
  config.trace.horizon = minutes(6);
  config.trace.seed = 21;
  config.capacityUnits = 7.0;
  config.sampleWindow = minutes(1);
  TraceRunResult result = runTraceScenario(config);
  EXPECT_GT(result.attempted, 5u);
  EXPECT_GT(result.accepted, 0u);
  EXPECT_EQ(result.attempted, result.accepted + result.rejected);
  EXPECT_EQ(result.utilizationPerWindow.size(), 6u);
  EXPECT_EQ(result.activePerWindow.size(), 6u);
  for (double u : result.utilizationPerWindow) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(ScenarioTest, FullFeatureConfigAcceptsAtLeastAsManyAsRestricted) {
  auto runWith = [](bool wp, bool cc) {
    TraceScenarioConfig config;
    config.trace = MafTraceGenerator::paperDefaults();
    config.trace.horizon = minutes(6);
    config.trace.seed = 33;
    config.capacityUnits = 7.0;
    config.testbed.mode =
        wp ? SchedulingMode::kMicroEdgeWp : SchedulingMode::kMicroEdgeNoWp;
    config.testbed.enableCoCompile = cc;
    return runTraceScenario(config);
  };
  TraceRunResult full = runWith(true, true);
  TraceRunResult none = runWith(false, false);
  EXPECT_GE(full.accepted, none.accepted);
}

TEST(ServerlessTest, PerRequestSchedulingCostsMoreLatency) {
  Simulator sim;
  ModelRegistry zoo = zoo::standardZoo();
  TopologySpec topoSpec;
  topoSpec.vRpiCount = 4;
  topoSpec.tRpiCount = 2;
  ClusterTopology topo(sim, zoo, topoSpec);
  DataPlane dataPlane(sim, topo, zoo);
  for (const char* tpu : {"tpu-00", "tpu-01"}) {
    ASSERT_TRUE(
        dataPlane.executeLoad(LoadCommand{tpu, {zoo::kSsdMobileNetV2}, {}})
            .isOk());
  }
  sim.run();

  // MicroEdge path: direct client -> TPU Service.
  auto client = dataPlane.makeClient("vrpi-00", zoo::kSsdMobileNetV2);
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 350}}}).isOk());
  SimDuration directLatency{};
  ASSERT_TRUE(client
                  ->invoke([&](const FrameBreakdown& b) {
                    directLatency = b.endToEnd();
                  })
                  .isOk());
  sim.run();

  // Serverless path: client -> shared queue on vrpi-03 -> runtime pick.
  ServerlessDispatcher::Config config;
  config.dispatcherNode = "vrpi-03";
  ServerlessDispatcher dispatcher(sim, dataPlane, topo, zoo, config);
  SimDuration serverlessLatency{};
  ASSERT_TRUE(dispatcher
                  .invoke("vrpi-00", zoo::kSsdMobileNetV2,
                          [&](const FrameBreakdown& b) {
                            serverlessLatency = b.endToEnd();
                          })
                  .isOk());
  sim.run();

  EXPECT_GT(directLatency, SimDuration::zero());
  EXPECT_GT(serverlessLatency, SimDuration::zero());
  // The extra frame hop (~8 ms) plus the runtime decision must show up.
  EXPECT_GT(serverlessLatency, directLatency + milliseconds(8));
  EXPECT_EQ(dispatcher.dispatchedCount(), 1u);
}

TEST(CoCompileAblationTest, SwapSharingCollapsesThroughputOnTheDataPlane) {
  // Why the Model Size Rule exists: force two different-model tenants onto
  // one TPU *without* co-compiling and watch swaps destroy service times.
  Simulator sim;
  ModelRegistry zoo = zoo::standardZoo();
  TopologySpec topoSpec;
  topoSpec.vRpiCount = 2;
  topoSpec.tRpiCount = 1;
  ClusterTopology topo(sim, zoo, topoSpec);
  DataPlane dataPlane(sim, topo, zoo);
  ASSERT_TRUE(dataPlane
                  .executeLoad(LoadCommand{"tpu-00", {zoo::kMobileNetV1}, {}})
                  .isOk());
  sim.run();

  auto a = dataPlane.makeClient("vrpi-00", zoo::kMobileNetV1);
  auto b = dataPlane.makeClient("vrpi-01", zoo::kUNetV2);
  ASSERT_TRUE(a->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());
  ASSERT_TRUE(b->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());

  DurationSummary serviceTimes;
  for (int i = 0; i < 20; ++i) {
    auto record = [&](const FrameBreakdown& frame) {
      serviceTimes.add(frame.inference);
    };
    ASSERT_TRUE(a->invoke(record).isOk());
    sim.run();
    ASSERT_TRUE(b->invoke(record).isOk());
    sim.run();
  }
  TpuDevice* device = topo.findTpu("tpu-00");
  // Interleaved different-model requests swap on (nearly) every invoke.
  EXPECT_GT(device->swapCount(), 30u);
  // Mean service time well above the mean of the raw model latencies.
  double rawMeanMs =
      (toMilliseconds(zoo.at(zoo::kUNetV2).inferenceLatency) +
       toMilliseconds(zoo.at(zoo::kMobileNetV1).inferenceLatency)) /
      2.0;
  EXPECT_GT(serviceTimes.meanMs(), rawMeanMs + 10.0);

  // Same tenancy WITH a co-compiled composite: switches become cheap.
  ASSERT_TRUE(dataPlane
                  .executeLoad(LoadCommand{
                      "tpu-00", {zoo::kMobileNetV1, zoo::kUNetV2}, {}})
                  .isOk());
  sim.run();
  std::size_t swapsBefore = device->swapCount();
  DurationSummary coCompiled;
  for (int i = 0; i < 20; ++i) {
    auto record = [&](const FrameBreakdown& frame) {
      coCompiled.add(frame.inference);
    };
    ASSERT_TRUE(a->invoke(record).isOk());
    sim.run();
    ASSERT_TRUE(b->invoke(record).isOk());
    sim.run();
  }
  EXPECT_EQ(device->swapCount(), swapsBefore);  // zero new swaps
  EXPECT_LT(coCompiled.meanMs(), serviceTimes.meanMs());
}

}  // namespace
}  // namespace microedge
