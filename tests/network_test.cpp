// Network model and topology/cost substrate tests.

#include <gtest/gtest.h>

#include "cluster/cost.hpp"
#include "cluster/network.hpp"
#include "cluster/topology.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

TEST(NetworkModelTest, RemoteTransferScalesWithBytes) {
  NetworkModel net;
  SimDuration small = net.transferLatency("a", "b", 1000);
  SimDuration large = net.transferLatency("a", "b", 1000000);
  EXPECT_GT(large, small);
  EXPECT_GE(small, net.config().baseLatency);
}

TEST(NetworkModelTest, FrameTransmissionCalibratedToPaper) {
  // Fig. 7b: shipping a 300x300x3 pre-processed frame between RPis costs
  // about 8 ms.
  NetworkModel net;
  SimDuration latency = net.transferLatency("vrpi-00", "trpi-00", 270000);
  EXPECT_NEAR(toMilliseconds(latency), 8.0, 0.5);
}

TEST(NetworkModelTest, LoopbackIsFast) {
  NetworkModel net;
  SimDuration loop = net.transferLatency("a", "a", 270000);
  EXPECT_LT(loop, milliseconds(1));
  EXPECT_EQ(loop, net.config().loopbackLatency);
}

TEST(NetworkModelTest, ControlMessages) {
  NetworkModel net;
  EXPECT_EQ(net.controlLatency("a", "b"), net.config().baseLatency);
  EXPECT_EQ(net.controlLatency("a", "a"), net.config().loopbackLatency);
}

class TopologyTest : public ::testing::Test {
 protected:
  TopologyTest()
      : zoo_(zoo::standardZoo()),
        topo_(sim_, zoo_, ClusterTopology::microEdgeDefault()) {}

  Simulator sim_;
  ModelRegistry zoo_;
  ClusterTopology topo_;
};

TEST_F(TopologyTest, PaperReferenceClusterShape) {
  // 25 RPis, 6 of them with a TPU (19 vRPis + 6 tRPis).
  EXPECT_EQ(topo_.nodes().size(), 25u);
  EXPECT_EQ(topo_.vRpis().size(), 19u);
  EXPECT_EQ(topo_.tRpis().size(), 6u);
  EXPECT_EQ(topo_.tpus().size(), 6u);
}

TEST_F(TopologyTest, TpuToNodeMapping) {
  for (const auto& tpu : topo_.tpus()) {
    const std::string& host = topo_.nodeOfTpu(tpu->id());
    RpiNode* node = topo_.findNode(host);
    ASSERT_NE(node, nullptr);
    EXPECT_TRUE(node->isTRpi());
    bool attached = false;
    for (TpuDevice* attachedTpu : node->tpus()) {
      if (attachedTpu == tpu.get()) attached = true;
    }
    EXPECT_TRUE(attached);
  }
}

TEST_F(TopologyTest, Lookups) {
  EXPECT_NE(topo_.findTpu("tpu-00"), nullptr);
  EXPECT_EQ(topo_.findTpu("tpu-99"), nullptr);
  EXPECT_NE(topo_.findNode("vrpi-00"), nullptr);
  EXPECT_EQ(topo_.findNode("nope"), nullptr);
}

TEST(TopologyMultiTpuTest, BodyPixBaselineAttachesTwoTpusPerNode) {
  Simulator sim;
  ModelRegistry zoo = zoo::standardZoo();
  TopologySpec spec;
  spec.tRpiCount = 3;
  spec.tpusPerTRpi = 2;
  spec.vRpiCount = 4;
  ClusterTopology topo(sim, zoo, spec);
  EXPECT_EQ(topo.tpus().size(), 6u);
  for (RpiNode* node : topo.tRpis()) {
    EXPECT_EQ(node->tpus().size(), 2u);
  }
}

TEST(CostModelTest, Table1Totals) {
  // Solving the paper's Table 1: 17 RPis + 17 TPUs = $2550 and
  // 17 RPis + 6 TPUs = $1725.
  CostModel cost;
  EXPECT_DOUBLE_EQ(cost.clusterCost(17, 17), 2550.0);
  EXPECT_DOUBLE_EQ(cost.clusterCost(17, 6), 1725.0);
}

}  // namespace
}  // namespace microedge
