// Seeded fault injection: replayable plans, detection-window split between
// data-plane and control-plane edges, hang/transport windows, and the
// applied-fault log that witnesses replay determinism.

#include <gtest/gtest.h>

#include <algorithm>

#include "dataplane/dataplane.hpp"
#include "models/zoo.hpp"
#include "sim/fault_injector.hpp"

namespace microedge {
namespace {

FaultPlan::RandomConfig smallRandomConfig() {
  FaultPlan::RandomConfig config;
  config.tpus = {"tpu-00", "tpu-01", "tpu-02"};
  config.nodes = {"trpi-00", "trpi-01"};
  config.maxNodeDeaths = 1;
  return config;
}

TEST(FaultPlanTest, RandomIsDeterministicPerSeed) {
  FaultPlan::RandomConfig config = smallRandomConfig();
  FaultPlan a = FaultPlan::random(42, config);
  FaultPlan b = FaultPlan::random(42, config);
  EXPECT_EQ(a.toJson(), b.toJson());

  // Different seeds diverge (checked across a few, not guaranteed per pair).
  bool anyDifferent = false;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    if (FaultPlan::random(seed, config).toJson() != a.toJson()) {
      anyDifferent = true;
    }
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(FaultPlanTest, RandomRespectsBoundsAndOrdering) {
  FaultPlan::RandomConfig config = smallRandomConfig();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FaultPlan plan = FaultPlan::random(seed, config);
    std::size_t crashes = 0;
    SimDuration prev = SimDuration::zero();
    for (const FaultEvent& e : plan.events) {
      EXPECT_GE(e.at, config.earliest) << "seed " << seed;
      EXPECT_LE(e.at, config.horizon + config.maxWindow) << "seed " << seed;
      EXPECT_GE(e.at, prev) << "seed " << seed << ": events must be sorted";
      prev = e.at;
      switch (e.kind) {
        case FaultKind::kTpuCrash:
          ++crashes;
          EXPECT_TRUE(std::find(config.tpus.begin(), config.tpus.end(),
                                e.target) != config.tpus.end());
          break;
        case FaultKind::kTpuHang:
          EXPECT_GE(e.duration, config.minWindow);
          EXPECT_LE(e.duration, config.maxWindow);
          break;
        case FaultKind::kNodeDeath:
          EXPECT_TRUE(std::find(config.nodes.begin(), config.nodes.end(),
                                e.target) != config.nodes.end());
          break;
        case FaultKind::kTransportLoss:
          EXPECT_GT(e.magnitude, 0.0);
          EXPECT_LE(e.magnitude, config.maxLossProbability);
          break;
        case FaultKind::kLatencySpike:
          EXPECT_GT(e.magnitude, 1.0);
          EXPECT_LE(e.magnitude, config.maxLatencyMultiplier);
          break;
      }
    }
    EXPECT_LE(crashes, config.maxTpuCrashes);
  }
}

TEST(FaultPlanTest, JsonCarriesSeedKindsAndTargets) {
  FaultPlan plan;
  plan.seed = 77;
  plan.events.push_back(
      FaultEvent{seconds(1), FaultKind::kTpuCrash, "tpu-01", {}, 0.0});
  plan.events.push_back(FaultEvent{seconds(2), FaultKind::kTransportLoss, "",
                                   milliseconds(500), 0.25});
  std::string json = plan.toJson();
  EXPECT_NE(json.find("\"seed\":77"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"tpu-crash\""), std::string::npos);
  EXPECT_NE(json.find("\"target\":\"tpu-01\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"transport-loss\""), std::string::npos);
  EXPECT_NE(json.find("0.25"), std::string::npos);
}

TEST(FaultInjectorTest, CrashSplitsAcrossDetectionWindow) {
  Simulator sim;
  std::vector<std::pair<std::string, SimDuration>> calls;
  FaultInjector::Hooks hooks;
  hooks.tpuFailDataPlane = [&](const std::string& tpu) {
    calls.emplace_back("data:" + tpu, sim.now() - kSimEpoch);
  };
  hooks.tpuFailControlPlane = [&](const std::string& tpu) {
    calls.emplace_back("ctrl:" + tpu, sim.now() - kSimEpoch);
  };
  FaultInjector injector(sim, std::move(hooks));

  FaultPlan plan;
  plan.detectionDelay = milliseconds(750);
  plan.events.push_back(
      FaultEvent{seconds(2), FaultKind::kTpuCrash, "tpu-03", {}, 0.0});
  injector.arm(plan);
  EXPECT_EQ(injector.scheduledCount(), 2u);
  sim.run();

  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0].first, "data:tpu-03");
  EXPECT_EQ(calls[0].second, seconds(2));
  EXPECT_EQ(calls[1].first, "ctrl:tpu-03");
  EXPECT_EQ(calls[1].second, seconds(2) + milliseconds(750));

  ASSERT_EQ(injector.log().size(), 2u);
  EXPECT_TRUE(injector.log()[0].begin);
  EXPECT_FALSE(injector.log()[1].begin);
}

TEST(FaultInjectorTest, HangAndTransportWindowsHaveBothEdges) {
  Simulator sim;
  std::vector<std::string> calls;
  FaultInjector::Hooks hooks;
  hooks.setTpuHung = [&](const std::string& tpu, bool hung) {
    calls.push_back((hung ? "hang:" : "unhang:") + tpu);
  };
  hooks.setTransportFault = [&](double loss, double mult, std::uint64_t) {
    calls.push_back("fault:" + std::to_string(loss) + ":" +
                    std::to_string(mult));
  };
  hooks.clearTransportFault = [&] { calls.push_back("clear"); };
  FaultInjector injector(sim, std::move(hooks));

  FaultPlan plan;
  plan.events.push_back(FaultEvent{milliseconds(100), FaultKind::kTpuHang,
                                   "tpu-00", milliseconds(300), 0.0});
  plan.events.push_back(FaultEvent{milliseconds(600),
                                   FaultKind::kLatencySpike, "",
                                   milliseconds(200), 4.0});
  injector.arm(plan);
  sim.run();

  ASSERT_EQ(calls.size(), 4u);
  EXPECT_EQ(calls[0], "hang:tpu-00");
  EXPECT_EQ(calls[1], "unhang:tpu-00");
  EXPECT_EQ(calls[2], "fault:0.000000:4.000000");
  EXPECT_EQ(calls[3], "clear");
}

TEST(FaultInjectorTest, ReplayProducesIdenticalAppliedLog) {
  FaultPlan plan = FaultPlan::random(1234, smallRandomConfig());
  ASSERT_FALSE(plan.events.empty());

  auto runOnce = [&plan] {
    Simulator sim;
    FaultInjector injector(sim, FaultInjector::Hooks{});  // hooks optional
    injector.arm(plan);
    sim.run();
    return injector.log();
  };
  std::vector<FaultInjector::Applied> first = runOnce();
  std::vector<FaultInjector::Applied> second = runOnce();
  EXPECT_EQ(first.size(), plan.events.size() * 2);
  EXPECT_TRUE(first == second);
}

TEST(FaultInjectorTest, TransportLossWindowDropsThenHeals) {
  Simulator sim;
  ModelRegistry zoo = zoo::standardZoo();
  TopologySpec spec;
  spec.vRpiCount = 1;
  spec.tRpiCount = 1;
  ClusterTopology topo(sim, zoo, spec);
  DataPlane dataPlane(sim, topo, zoo);
  SimTransport& transport = dataPlane.transport();

  FaultInjector::Hooks hooks;
  hooks.setTransportFault = [&](double loss, double mult, std::uint64_t seed) {
    transport.setFault(loss, mult, seed);
  };
  hooks.clearTransportFault = [&] { transport.clearFault(); };
  FaultInjector injector(sim, std::move(hooks));

  FaultPlan plan;
  plan.events.push_back(FaultEvent{milliseconds(100),
                                   FaultKind::kTransportLoss, "",
                                   milliseconds(200), 1.0});  // drop all
  injector.arm(plan);

  int delivered = 0;
  // In-window message: dropped. (Send scheduled inside the window.)
  sim.schedule(kSimEpoch + milliseconds(150), [&] {
    transport.send("vrpi-00", "trpi-00", 1000, [&] { ++delivered; });
  });
  // Post-window message: delivered.
  sim.schedule(kSimEpoch + milliseconds(400), [&] {
    transport.send("vrpi-00", "trpi-00", 1000, [&] { ++delivered; });
  });
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(transport.droppedMessages(), 1u);
  EXPECT_FALSE(transport.faultActive());
}

}  // namespace
}  // namespace microedge
