// Chaos soak over the sharded harness (ctest label: chaos — the sanitizer
// CI runs this subset under TSan with shards=2, so every cross-shard code
// path executes under the race detector while faults fly).
//
// Per seeded random fault plan the soak asserts the frame-accounting
// invariants that must hold NO MATTER what the plan did:
//  * setup admits everything and the run makes forward progress;
//  * after stopping the cameras and draining, every submitted frame has
//    reached exactly one terminal outcome (nothing leaks, nothing double-
//    counts), per stream;
//  * the same seed replayed at the same shard count is bit-identical
//    (digest + serialized metrics).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fault_injector.hpp"
#include "sim/sharded_sim.hpp"
#include "testbed/sharded_cluster.hpp"

namespace microedge {
namespace {

ShardedClusterConfig soakConfig() {
  ShardedClusterConfig config;
  config.shards = 2;
  config.racks = 4;
  config.tRpisPerRack = 2;
  config.vRpisPerRack = 3;
  config.tpusPerTRpi = 1;
  config.fps = 15.0;
  // Every stream carries a deadline so frames stranded by dropped messages
  // or hung devices terminate as kTimedOut instead of leaking.
  config.frameDeadline = milliseconds(60);
  config.maxFailovers = 1;
  config.crossRackStride = 0;
  return config;
}

FaultPlan planForSeed(std::uint64_t seed, ShardedCluster& probe) {
  FaultPlan::RandomConfig random;
  for (const auto& tpu : probe.topology().tpus()) {
    random.tpus.push_back(tpu->id());
  }
  for (const RpiNode* node : probe.topology().tRpis()) {
    random.nodes.push_back(node->name());
  }
  random.earliest = milliseconds(500);
  random.horizon = seconds(3);
  random.maxTpuCrashes = 1;
  random.maxTpuHangs = 2;
  random.maxNodeDeaths = 1;
  random.maxTransportFaults = 2;  // loss allowed: fixed shard count here
  return FaultPlan::random(seed, random);
}

struct SoakResult {
  std::string metrics;
  std::uint64_t digest = 0;
  std::uint64_t completed = 0;
  std::uint64_t lost = 0;  // submitted but terminated non-completed
};

SoakResult runSoak(
    std::uint64_t seed,
    ShardedSim::WindowBound mode = ShardedSim::WindowBound::kFixed,
    unsigned crossRackStride = 0) {
  ShardedClusterConfig config = soakConfig();
  config.windowBound = mode;
  config.crossRackStride = crossRackStride;
  ShardedCluster probe(config);
  EXPECT_TRUE(probe.setupStatus().isOk()) << probe.setupStatus().toString();
  const FaultPlan plan = planForSeed(seed, probe);

  ShardedCluster cluster(config);
  EXPECT_TRUE(cluster.setupStatus().isOk());
  cluster.armFaults(plan);
  cluster.run(seconds(4));
  // Drain: no new frames; in-flight ones run to their terminal outcomes
  // (hang windows and transport faults are long over by +3 s).
  cluster.stopStreams();
  cluster.run(seconds(3));

  for (std::size_t i = 0; i < cluster.streamCount(); ++i) {
    const ShardedCluster::StreamStats stats = cluster.streamStats(i);
    std::uint64_t terminal = 0;
    for (std::size_t o = 0; o < kFrameOutcomeCount; ++o) {
      terminal += stats.outcomes[o];
    }
    EXPECT_EQ(stats.outcomes[static_cast<std::size_t>(FrameOutcome::kInFlight)],
              0u)
        << "seed=" << seed << " stream=" << stats.camera;
    // Conservation: every submitted frame reached exactly one terminal
    // outcome — the core no-leak/no-double-count invariant under chaos.
    EXPECT_EQ(stats.submitted, terminal)
        << "seed=" << seed << " stream=" << stats.camera << "\n"
        << plan.toJson();
    EXPECT_EQ(stats.outcomes[static_cast<std::size_t>(FrameOutcome::kCompleted)],
              stats.completed)
        << "seed=" << seed << " stream=" << stats.camera;
  }
  EXPECT_GT(cluster.totalCompleted(), 0u) << "seed=" << seed;

  SoakResult result;
  result.metrics = cluster.metricsJson();
  result.digest = cluster.digest();
  result.completed = cluster.totalCompleted();
  result.lost = cluster.totalSubmitted() - cluster.totalCompleted();
  return result;
}

TEST(ShardedChaosSoak, InvariantsAndReplayDeterminism) {
  std::uint64_t lostAcrossSeeds = 0;
  for (std::uint64_t seed : {11u, 23u}) {
    const SoakResult first = runSoak(seed);
    const SoakResult replay = runSoak(seed);
    EXPECT_EQ(first.metrics, replay.metrics) << "seed=" << seed;
    EXPECT_EQ(first.digest, replay.digest) << "seed=" << seed;
    lostAcrossSeeds += first.lost;
  }
  // A benign draw can cost nothing for one seed, but across the seed set
  // the chaos must have bitten somewhere.
  EXPECT_GT(lostAcrossSeeds, 0u);
}

TEST(ShardedChaosSoak, AdaptiveBoundBitForBitUnderChaos) {
  // The adaptive window bound is pure scheduling even while faults fly: for
  // a seeded fault plan the fixed and adaptive runs must be bit-identical
  // (digest + serialized metrics). Covered both without cross-rack streams
  // (cross-shard traffic only from failover) and with them (cross-shard
  // frames, NACKs and retries crossing fault windows mid-flight). TSan CI
  // runs this under the race detector via the chaos label.
  const struct {
    std::uint64_t seed;
    unsigned stride;
  } cases[] = {{11, 0}, {47, 3}};
  for (const auto& c : cases) {
    const SoakResult fixedRun =
        runSoak(c.seed, ShardedSim::WindowBound::kFixed, c.stride);
    const SoakResult adaptiveRun =
        runSoak(c.seed, ShardedSim::WindowBound::kAdaptive, c.stride);
    EXPECT_EQ(fixedRun.metrics, adaptiveRun.metrics)
        << "seed=" << c.seed << " stride=" << c.stride;
    EXPECT_EQ(fixedRun.digest, adaptiveRun.digest)
        << "seed=" << c.seed << " stride=" << c.stride;
  }
}

TEST(ShardedChaosSoak, DistinctSeedsDiverge) {
  // Cheap sanity that the plan actually drives the run: two different
  // seeds should (with these windows) produce different traces.
  const SoakResult a = runSoak(31);
  const SoakResult b = runSoak(47);
  EXPECT_NE(a.digest, b.digest);
}

}  // namespace
}  // namespace microedge
