// Multi-model cascade pipeline: duty-cycle math, gating behaviour, chained
// latency accounting, and full-stack deployment through the testbed.

#include <gtest/gtest.h>

#include "apps/cascade.hpp"
#include "testbed/testbed.hpp"

namespace microedge {
namespace {

TEST(CascadeUnitsTest, DutyCycleMath) {
  ModelRegistry zoo = zoo::standardZoo();
  const ModelInfo& gate = zoo.at(zoo::kMobileNetV1);
  const ModelInfo& expert = zoo.at(zoo::kSsdMobileNetV2);
  // Gate runs every frame: 4.5 ms * 15 = 0.0675 units.
  EXPECT_NEAR(CascadeApp::gateUnits(gate, 15.0), 0.0675, 1e-4);
  // Expert at a 40% hit rate: 23.3 ms * 15 * 0.4 = 0.14 units — an order of
  // magnitude below a dedicated-TPU reservation.
  EXPECT_NEAR(CascadeApp::expertUnits(expert, 15.0, 0.4), 0.1398, 1e-3);
}

class CascadeFixture : public ::testing::Test {
 protected:
  CascadeFixture()
      : zoo_(zoo::standardZoo()), topo_(sim_, zoo_, smallTopology()),
        dataPlane_(sim_, topo_, zoo_) {}

  static TopologySpec smallTopology() {
    TopologySpec spec;
    spec.vRpiCount = 3;
    spec.tRpiCount = 2;
    return spec;
  }

  std::unique_ptr<TpuClient> readyClient(const std::string& model,
                                         const std::string& tpuId) {
    Status loaded = dataPlane_.executeLoad(
        LoadCommand{tpuId, {zoo::kMobileNetV1, zoo::kUNetV2}, {}});
    EXPECT_TRUE(loaded.isOk());
    sim_.run();
    auto client = dataPlane_.makeClient("vrpi-00", model);
    EXPECT_TRUE(client->configureLb(LbConfig{{LbWeight{tpuId, 500}}}).isOk());
    return client;
  }

  Simulator sim_;
  ModelRegistry zoo_;
  ClusterTopology topo_;
  DataPlane dataPlane_;
};

TEST_F(CascadeFixture, GateSeesEveryFrameExpertOnlyEscalated) {
  CascadeApp::Config config;
  config.name = "cascade";
  config.fps = 15.0;
  config.maxFrames = 450;  // 30 s
  config.slo.targetFps = 15.0;
  CascadeApp app(sim_, readyClient(zoo::kMobileNetV1, "tpu-00"),
                 readyClient(zoo::kUNetV2, "tpu-01"), config, Pcg32(5));
  app.start();
  sim_.run();

  EXPECT_EQ(app.gateFrames(), 450u);
  EXPECT_GT(app.expertFrames(), 0u);
  EXPECT_LT(app.expertFrames(), app.gateFrames());
  EXPECT_NEAR(app.escalationRate(),
              static_cast<double>(app.expertFrames()) / 450.0, 1e-9);
  // Every frame completes (gate-only or full cascade).
  EXPECT_EQ(app.slo().completed(), 450u);
  EXPECT_TRUE(app.slo().sloMet());
}

TEST_F(CascadeFixture, CascadeLatencyCoversBothStages) {
  CascadeApp::Config config;
  config.name = "cascade";
  config.fps = 15.0;
  config.maxFrames = 300;
  config.scene.meanQuietGap = milliseconds(1);  // (almost) always active
  config.scene.meanActivityDwell = seconds(1000);
  config.slo.targetFps = 15.0;
  CascadeApp app(sim_, readyClient(zoo::kMobileNetV1, "tpu-00"),
                 readyClient(zoo::kUNetV2, "tpu-01"), config, Pcg32(6));
  app.start();
  sim_.run();

  // Nearly everything escalates.
  EXPECT_GT(app.escalationRate(), 0.95);
  ASSERT_GT(app.cascadeLatency().count(), 0u);
  // Chained latency exceeds the sum of both models' raw service times.
  double minMs = toMilliseconds(zoo_.at(zoo::kMobileNetV1).inferenceLatency) +
                 toMilliseconds(zoo_.at(zoo::kUNetV2).inferenceLatency);
  EXPECT_GT(app.cascadeLatency().meanMs(), minMs);
  // Gate-only frames are far cheaper than full-cascade frames.
  if (app.gateOnly().count() > 0) {
    EXPECT_LT(app.gateOnly().endToEnd().meanMs(),
              app.fullCascade().endToEnd().meanMs());
  }
}

TEST(CascadeTestbedTest, DeploysTwoPodsWithDistinctDutyCycles) {
  Testbed testbed;
  CascadeDeployment deployment;
  deployment.name = "noscope";
  deployment.gateModel = zoo::kMobileNetV1;
  deployment.expertModel = zoo::kUNetV2;
  deployment.expectedHitRate = 0.5;
  auto app = testbed.deployCascade(deployment);
  ASSERT_TRUE(app.isOk()) << app.status();

  const Pod* gate = testbed.api().findPodByName("noscope-gate");
  const Pod* expert = testbed.api().findPodByName("noscope-expert");
  ASSERT_NE(gate, nullptr);
  ASSERT_NE(expert, nullptr);
  EXPECT_NEAR(gate->spec.tpu->tpuUnits, 0.0675, 1e-3);
  EXPECT_NEAR(expert->spec.tpu->tpuUnits, 0.825 * 0.5, 1e-2);
  // Both duty cycles fit a single TPU together (and co-compile: 4.2 + 2.5
  // MB <= 6.9 MB).
  EXPECT_EQ(testbed.pool().usedTpuCount(), 1u);

  testbed.run(seconds(20));
  EXPECT_GT((*app)->gateFrames(), 290u);
  EXPECT_TRUE((*app)->slo().sloMet());

  ASSERT_TRUE(testbed.removeCascade("noscope").isOk());
  testbed.run(seconds(5));
  EXPECT_EQ(testbed.pool().totalLoad().milli(), 0);
  EXPECT_EQ(testbed.api().liveCount(), 0u);
}

TEST(CascadeTestbedTest, HitRateProfilingTradesDensityForSloRisk) {
  // The cascade's expert duty cycle is *content dependent*: reserving for
  // an optimistic hit rate packs more pipelines but risks transient
  // overload during long active phases; a conservative (worst-case) profile
  // keeps every SLO. This is why the paper's profiling service exists.
  auto runFleet = [](double expectedHitRate, int* admitted) {
    Testbed testbed;
    *admitted = 0;
    for (int i = 0; i < 16; ++i) {
      CascadeDeployment deployment;
      deployment.name = "cascade-" + std::to_string(i);
      deployment.gateModel = zoo::kMobileNetV1;
      deployment.expertModel = zoo::kUNetV2;
      deployment.expectedHitRate = expectedHitRate;
      if (!testbed.deployCascade(deployment).isOk()) break;
      ++*admitted;
    }
    testbed.run(seconds(10));
    return testbed.sloReport();
  };

  int optimisticAdmitted = 0;
  SloReport optimistic = runFleet(0.5, &optimisticAdmitted);
  int conservativeAdmitted = 0;
  SloReport conservative = runFleet(1.0, &conservativeAdmitted);

  // Optimistic profile: much denser packing (dedicated design would need 2
  // whole TPUs per cascade)...
  EXPECT_GE(optimisticAdmitted, 12);
  // ...but content bursts can exceed the reservation and dent some SLOs.
  EXPECT_GE(optimistic.streamsMeetingSlo * 4, optimistic.streams * 2);
  // Conservative (worst-case) profile: fewer pipelines, all SLOs hold.
  EXPECT_GE(conservativeAdmitted, 6);
  EXPECT_LT(conservativeAdmitted, optimisticAdmitted);
  EXPECT_EQ(conservative.streamsMeetingSlo, conservative.streams);
}

TEST(CascadeTestbedTest, PartialDeploymentRollsBack) {
  // Expert cannot fit => the already-created gate pod must not leak.
  TopologySpec topo;
  topo.tRpiCount = 1;
  topo.vRpiCount = 3;
  TestbedConfig config;
  config.topology = topo;
  Testbed testbed(config);
  // Occupy most of the single TPU.
  CameraDeployment filler;
  filler.name = "filler";
  filler.model = zoo::kMobileNetV1;
  filler.tpuUnits = 0.9;
  ASSERT_TRUE(testbed.deployCamera(filler).isOk());

  CascadeDeployment deployment;
  deployment.name = "wont-fit";
  deployment.gateModel = zoo::kMobileNetV1;
  deployment.expertModel = zoo::kUNetV2;
  deployment.expectedHitRate = 1.0;  // 0.825 units: cannot fit
  auto app = testbed.deployCascade(deployment);
  EXPECT_FALSE(app.isOk());
  EXPECT_EQ(testbed.api().findPodByName("wont-fit-gate"), nullptr);
  EXPECT_EQ(testbed.api().findPodByName("wont-fit-expert"), nullptr);
  // Only the filler's units remain.
  EXPECT_EQ(testbed.pool().totalLoad().milli(), 900);
}

}  // namespace
}  // namespace microedge
