// Application layer: camera cadence, the NoScope-style difference detector,
// the generic pipeline, and the Coral-Pie / BodyPix exemplars.

#include <gtest/gtest.h>

#include "apps/bodypix.hpp"
#include "apps/coral_pie.hpp"
#include "dataplane/dataplane.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

TEST(CameraStreamTest, EmitsAtConfiguredFps) {
  Simulator sim;
  int frames = 0;
  CameraStream camera(sim, CameraStream::Config{10.0, 0},
                      [&](std::uint64_t) { ++frames; });
  camera.start();
  sim.runUntil(kSimEpoch + seconds(2));
  EXPECT_EQ(frames, 20);
  camera.stop();
  sim.runUntil(kSimEpoch + seconds(3));
  EXPECT_EQ(frames, 20);
}

TEST(CameraStreamTest, MaxFramesStopsStream) {
  Simulator sim;
  std::vector<std::uint64_t> ids;
  CameraStream camera(sim, CameraStream::Config{15.0, 5},
                      [&](std::uint64_t id) { ids.push_back(id); });
  camera.start();
  sim.run();
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids.front(), 1u);
  EXPECT_EQ(ids.back(), 5u);
  EXPECT_FALSE(camera.running());
}

TEST(DiffDetectorTest, ForwardsEverythingDuringActivity) {
  DiffDetector::Config config;
  config.quietPassRate = 0.0;
  DiffDetector diff(config, Pcg32(42));
  // Find an active phase and verify every frame inside it forwards.
  SimTime t = kSimEpoch;
  while (!diff.activeAt(t)) t += milliseconds(50);
  int forwarded = 0;
  for (int i = 0; i < 5; ++i) {
    SimTime probe = t + milliseconds(i * 10);
    if (!diff.activeAt(probe)) break;
    if (diff.shouldForward(probe)) ++forwarded;
  }
  EXPECT_GE(forwarded, 1);
}

TEST(DiffDetectorTest, SuppressesMostQuietFrames) {
  DiffDetector::Config config;
  config.meanQuietGap = seconds(1000);  // effectively always quiet
  config.meanActivityDwell = milliseconds(1);
  config.quietPassRate = 0.05;
  DiffDetector diff(config, Pcg32(7));
  for (int i = 0; i < 2000; ++i) {
    diff.shouldForward(kSimEpoch + milliseconds(static_cast<std::int64_t>(i)));
  }
  double passRate = static_cast<double>(diff.forwardedCount()) /
                    static_cast<double>(diff.forwardedCount() +
                                        diff.suppressedCount());
  EXPECT_LT(passRate, 0.15);
  EXPECT_GT(diff.suppressedCount(), 1500u);
}

TEST(DiffDetectorTest, DeterministicPerSeed) {
  DiffDetector::Config config;
  DiffDetector a(config, Pcg32(5));
  DiffDetector b(config, Pcg32(5));
  for (int i = 0; i < 500; ++i) {
    SimTime t = kSimEpoch + milliseconds(static_cast<std::int64_t>(i * 66));
    EXPECT_EQ(a.shouldForward(t), b.shouldForward(t)) << i;
  }
  EXPECT_EQ(a.activePhaseCount(), b.activePhaseCount());
}

class AppsFixture : public ::testing::Test {
 protected:
  AppsFixture()
      : zoo_(zoo::standardZoo()), topo_(sim_, zoo_, smallTopology()),
        dataPlane_(sim_, topo_, zoo_) {}

  static TopologySpec smallTopology() {
    TopologySpec spec;
    spec.vRpiCount = 4;
    spec.tRpiCount = 2;
    return spec;
  }

  std::unique_ptr<TpuClient> readyClient(const std::string& model,
                                         const std::string& tpuId,
                                         std::uint32_t weight) {
    Status loaded = dataPlane_.executeLoad(LoadCommand{tpuId, {model}, {}});
    EXPECT_TRUE(loaded.isOk());
    sim_.run();
    auto client = dataPlane_.makeClient("vrpi-00", model);
    EXPECT_TRUE(client->configureLb(LbConfig{{LbWeight{tpuId, weight}}}).isOk());
    return client;
  }

  Simulator sim_;
  ModelRegistry zoo_;
  ClusterTopology topo_;
  DataPlane dataPlane_;
};

TEST_F(AppsFixture, PipelineSustains15FpsOnDedicatedTpu) {
  CameraPipeline::Config config;
  config.name = "cam";
  config.fps = 15.0;
  config.maxFrames = 60;
  config.slo.targetFps = 15.0;
  CameraPipeline pipeline(sim_,
                          readyClient(zoo::kSsdMobileNetV2, "tpu-00", 350),
                          config, Pcg32(1));
  pipeline.start();
  sim_.run();
  EXPECT_EQ(pipeline.slo().submitted(), 60u);
  EXPECT_EQ(pipeline.slo().completed(), 60u);
  EXPECT_TRUE(pipeline.slo().sloMet());
  EXPECT_NEAR(pipeline.slo().achievedFps(), 15.0, 0.5);
  EXPECT_EQ(pipeline.breakdown().count(), 60u);
}

TEST_F(AppsFixture, OversubscribedTpuViolatesSlo) {
  // EfficientNet-Lite0 needs ~1.04 units at 15 FPS: a single TPU cannot keep
  // up and the queue grows — exactly what admission control prevents.
  CameraPipeline::Config config;
  config.name = "cam";
  config.fps = 15.0;
  config.maxFrames = 120;
  config.slo.targetFps = 15.0;
  // Tight tolerance: the 3.5% duty-cycle overload is exactly what must trip.
  config.slo.fpsTolerance = 0.01;
  CameraPipeline pipeline(
      sim_, readyClient(zoo::kEfficientNetLite0, "tpu-00", 1000), config,
      Pcg32(1));
  pipeline.start();
  sim_.run();
  EXPECT_LT(pipeline.slo().achievedFps(), 14.9);
  EXPECT_FALSE(pipeline.slo().sloMet());
}

TEST_F(AppsFixture, PipelineWithDiffDetectorSubmitsFewerFrames) {
  CameraPipeline::Config config;
  config.name = "cam";
  config.fps = 15.0;
  config.maxFrames = 300;
  config.diffDetector = DiffDetector::Config{};
  config.slo.targetFps = 0.0;  // content-dependent rate
  CameraPipeline pipeline(sim_,
                          readyClient(zoo::kSsdMobileNetV2, "tpu-00", 350),
                          config, Pcg32(3));
  pipeline.start();
  sim_.run();
  ASSERT_NE(pipeline.diffDetector(), nullptr);
  EXPECT_LT(pipeline.slo().submitted(), 300u);
  EXPECT_EQ(pipeline.slo().submitted(), pipeline.diffDetector()->forwardedCount());
  EXPECT_TRUE(pipeline.slo().sloMet());
}

TEST_F(AppsFixture, CoralPieTracksVehiclesAcrossCameras) {
  CoralPieApp::Config upstreamConfig;
  upstreamConfig.name = "cam-up";
  upstreamConfig.fps = 15.0;
  upstreamConfig.maxFrames = 600;  // 40 s of video
  upstreamConfig.reid.node = "vrpi-01";
  upstreamConfig.slo.targetFps = 0.0;
  CoralPieApp::Config downstreamConfig = upstreamConfig;
  downstreamConfig.name = "cam-down";
  downstreamConfig.reid.node = "vrpi-02";

  // Same rng seed => both cameras observe the same vehicle schedule (the
  // paper's time-shifted dataset trick) and share the id space.
  CoralPieApp upstream(sim_, readyClient(zoo::kSsdMobileNetV2, "tpu-00", 350),
                       dataPlane_.transport(), upstreamConfig, Pcg32(99));
  CoralPieApp downstream(sim_,
                         readyClient(zoo::kSsdMobileNetV2, "tpu-01", 350),
                         dataPlane_.transport(), downstreamConfig, Pcg32(99));
  upstream.linkDownstream(&downstream);
  upstream.start();
  downstream.start();
  sim_.run();

  EXPECT_GT(upstream.vehiclesReported(), 0u);
  // The downstream camera re-identifies vehicles announced by upstream.
  EXPECT_GT(downstream.reid().reIdentifiedCount(), 0u);
  // The upstream camera has no upstream of its own: all tracks are new.
  EXPECT_EQ(upstream.reid().reIdentifiedCount(), 0u);
  EXPECT_GT(upstream.reid().newTrackCount(), 0u);
}

TEST_F(AppsFixture, BodyPixDerivesOccupancy) {
  BodyPixApp::Config config;
  config.name = "seg";
  config.fps = 15.0;
  config.maxFrames = 30;
  config.slo.targetFps = 0.0;  // single TPU can't do 15 FPS BodyPix; not
                               // under test here
  BodyPixApp app(sim_, readyClient(zoo::kBodyPixMobileNetV1, "tpu-00", 1000),
                 config, Pcg32(11));
  app.start();
  sim_.run();
  EXPECT_EQ(app.occupancy().count(), 30u);
  EXPECT_GT(app.framesWithPeople(), 0u);
  EXPECT_GE(app.occupancy().min(), 0.0);
  EXPECT_LE(app.occupancy().max(), 1.0);
}

}  // namespace
}  // namespace microedge
