// The extended scheduler: admission + Load dispatch + LBS configuration +
// reclamation registration + rollback on data-plane failure.

#include <gtest/gtest.h>

#include "core/extended_scheduler.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

class ExtendedSchedulerTest : public ::testing::Test {
 protected:
  ExtendedSchedulerTest() : zoo_(zoo::standardZoo()) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(pool_.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
    }
    admission_ = std::make_unique<AdmissionController>(pool_, zoo_,
                                                       AdmissionConfig{});
    reclamation_ = std::make_unique<Reclamation>(*admission_);
  }

  Pod makePod(std::uint64_t uid, const std::string& model, double units) {
    Pod pod;
    pod.uid = uid;
    pod.spec.name = "cam-" + std::to_string(uid);
    pod.spec.fps = 15.0;
    pod.spec.tpu = TpuRequest{model, units};
    return pod;
  }

  ModelRegistry zoo_;
  TpuPool pool_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<Reclamation> reclamation_;
  std::vector<std::string> candidates_ = {"vrpi-00", "vrpi-01"};
};

TEST_F(ExtendedSchedulerTest, HappyPathWiresEverything) {
  std::vector<LoadCommand> loads;
  std::vector<std::pair<std::uint64_t, LbConfig>> lbConfigs;
  ExtendedScheduler::Callbacks callbacks;
  callbacks.loadModel = [&](const LoadCommand& cmd) {
    loads.push_back(cmd);
    return Status::ok();
  };
  callbacks.configureLb = [&](std::uint64_t uid, const LbConfig& config) {
    lbConfigs.emplace_back(uid, config);
  };
  ExtendedScheduler scheduler(*admission_, *reclamation_, callbacks);

  auto node = scheduler.schedule(makePod(1, zoo::kSsdMobileNetV2, 0.35),
                                 candidates_);
  ASSERT_TRUE(node.isOk());
  EXPECT_EQ(*node, "vrpi-00");
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_EQ(loads[0].tpuId, "tpu-0");
  ASSERT_EQ(lbConfigs.size(), 1u);
  EXPECT_EQ(lbConfigs[0].first, 1u);
  ASSERT_EQ(lbConfigs[0].second.weights.size(), 1u);
  EXPECT_EQ(lbConfigs[0].second.weights[0].tpuId, "tpu-0");
  EXPECT_EQ(lbConfigs[0].second.weights[0].weight, 350u);
  EXPECT_TRUE(reclamation_->isTracked(1));
  ASSERT_NE(scheduler.lbConfig(1), nullptr);
}

TEST_F(ExtendedSchedulerTest, PartitionedPodGetsProportionalWeights) {
  ExtendedScheduler scheduler(*admission_, *reclamation_, {});
  // Fill all three TPUs to 0.6 so the fourth 0.6 request must partition
  // 0.4 / 0.2 across the first two residuals.
  for (std::uint64_t uid = 1; uid <= 3; ++uid) {
    ASSERT_TRUE(scheduler.schedule(makePod(uid, zoo::kMobileNetV1, 0.6),
                                   candidates_)
                    .isOk());
  }
  ASSERT_TRUE(scheduler.schedule(makePod(4, zoo::kMobileNetV1, 0.6),
                                 candidates_)
                  .isOk());
  const LbConfig* config = scheduler.lbConfig(4);
  ASSERT_NE(config, nullptr);
  ASSERT_EQ(config->weights.size(), 2u);
  EXPECT_EQ(config->weights[0].tpuId, "tpu-0");
  EXPECT_EQ(config->weights[0].weight, 400u);
  EXPECT_EQ(config->weights[1].tpuId, "tpu-1");
  EXPECT_EQ(config->weights[1].weight, 200u);
}

TEST_F(ExtendedSchedulerTest, NonTpuPodPassesThrough) {
  ExtendedScheduler scheduler(*admission_, *reclamation_, {});
  Pod pod;
  pod.uid = 5;
  pod.spec.name = "plain";
  auto node = scheduler.schedule(pod, candidates_);
  ASSERT_TRUE(node.isOk());
  EXPECT_EQ(*node, "vrpi-00");
  EXPECT_FALSE(reclamation_->isTracked(5));
}

TEST_F(ExtendedSchedulerTest, AdmissionRejectionPropagates) {
  ExtendedScheduler scheduler(*admission_, *reclamation_, {});
  auto node = scheduler.schedule(makePod(1, zoo::kMobileNetV1, 3.5),
                                 candidates_);
  EXPECT_FALSE(node.isOk());
  EXPECT_EQ(node.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(pool_.totalLoad().isZero());
}

TEST_F(ExtendedSchedulerTest, LoadFailureRollsBackUnits) {
  ExtendedScheduler::Callbacks callbacks;
  callbacks.loadModel = [](const LoadCommand&) {
    return unavailable("tRPi rebooting");
  };
  ExtendedScheduler scheduler(*admission_, *reclamation_, callbacks);
  auto node = scheduler.schedule(makePod(1, zoo::kMobileNetV1, 0.4),
                                 candidates_);
  EXPECT_FALSE(node.isOk());
  EXPECT_EQ(node.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(pool_.totalLoad().isZero());
  EXPECT_FALSE(reclamation_->isTracked(1));
  EXPECT_EQ(scheduler.lbConfig(1), nullptr);
}

TEST_F(ExtendedSchedulerTest, EmptyCandidateListRejected) {
  ExtendedScheduler scheduler(*admission_, *reclamation_, {});
  auto node = scheduler.schedule(makePod(1, zoo::kMobileNetV1, 0.3), {});
  EXPECT_FALSE(node.isOk());
}

TEST_F(ExtendedSchedulerTest, ForgetPodDropsLbConfig) {
  ExtendedScheduler scheduler(*admission_, *reclamation_, {});
  ASSERT_TRUE(scheduler.schedule(makePod(1, zoo::kMobileNetV1, 0.3),
                                 candidates_)
                  .isOk());
  ASSERT_NE(scheduler.lbConfig(1), nullptr);
  scheduler.forgetPod(1);
  EXPECT_EQ(scheduler.lbConfig(1), nullptr);
}

}  // namespace
}  // namespace microedge
