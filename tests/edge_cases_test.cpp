// Edge-case and failure-path coverage across modules: the situations a
// production deployment hits that the happy-path suites do not.

#include <gtest/gtest.h>

#include "dataplane/dataplane.hpp"
#include "orch/api_server.hpp"
#include "orch/spec.hpp"
#include "testbed/testbed.hpp"
#include "trace/maf.hpp"

namespace microedge {
namespace {

// ---- Simulator ---------------------------------------------------------

TEST(SimulatorEdgeTest, RunForZeroHorizonOnlyFiresDueEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(sim.now(), [&] { ++fired; });
  sim.scheduleAfter(milliseconds(1), [&] { ++fired; });
  sim.runFor(SimDuration::zero());
  EXPECT_EQ(fired, 1);  // the due event fires; the future one stays pending
  EXPECT_EQ(sim.pendingCount(), 1u);
}

TEST(SimulatorEdgeTest, CancelledEventsDoNotCountAsPending) {
  Simulator sim;
  EventId a = sim.scheduleAfter(milliseconds(1), [] {});
  sim.scheduleAfter(milliseconds(2), [] {});
  sim.cancel(a);
  EXPECT_EQ(sim.pendingCount(), 1u);
  EXPECT_EQ(sim.run(), 1u);
}

TEST(SimulatorEdgeTest, CancelAfterFireIsHarmless) {
  Simulator sim;
  EventId id = sim.scheduleAfter(milliseconds(1), [] {});
  sim.run();
  sim.cancel(id);  // stale id: must not poison future events
  bool fired = false;
  sim.scheduleAfter(milliseconds(1), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

// ---- YAML / specs -------------------------------------------------------

TEST(YamlEdgeTest, SequenceDirectlyUnderValueKeyFails) {
  // "key: value" followed by deeper content is inconsistent.
  auto doc = parseYaml("a: 1\n  b: 2\n");
  EXPECT_FALSE(doc.isOk());
}

TEST(YamlEdgeTest, EmptySequenceItemIsNull) {
  auto doc = parseYaml("list:\n  -\n  - x\n");
  ASSERT_TRUE(doc.isOk()) << doc.status();
  const YamlNode* list = doc->find("list");
  ASSERT_TRUE(list->isSequence());
  ASSERT_EQ(list->items().size(), 2u);
  EXPECT_TRUE(list->items()[0].isNull());
  EXPECT_EQ(list->items()[1].scalar(), "x");
}

TEST(YamlEdgeTest, QuotedKeys) {
  auto doc = parseYaml("\"key with: colon\": value\n");
  ASSERT_TRUE(doc.isOk()) << doc.status();
  EXPECT_EQ(doc->find("key with: colon")->scalar(), "value");
}

TEST(SpecEdgeTest, WhitespaceOnlySpecFails) {
  EXPECT_FALSE(podSpecFromYaml("   \n\n").isOk());
}

TEST(SpecEdgeTest, HugeButValidNumbersParse) {
  auto spec = podSpecFromYaml(
      "name: big\nresources:\n  cpu: 128\n  memory: 64Gi\n");
  ASSERT_TRUE(spec.isOk());
  EXPECT_EQ(spec->resources.cpuMillicores, 128000);
  EXPECT_EQ(spec->resources.memoryMb, 65536);
}

// ---- Orchestrator -------------------------------------------------------

TEST(OrchEdgeTest, DistinctAntiAffinityKeysCoexist) {
  NodeRegistry reg;
  ASSERT_TRUE(reg.addNode("n1", 4000, 8192).isOk());
  PodSpec a;
  a.name = "a";
  a.resources = {100, 100};
  a.antiAffinityKey = "camera";
  PodSpec b = a;
  b.name = "b";
  b.antiAffinityKey = "reid";
  EXPECT_TRUE(reg.allocate("n1", a).isOk());
  EXPECT_TRUE(reg.allocate("n1", b).isOk());
}

TEST(OrchEdgeTest, FailUnknownPodErrors) {
  NodeRegistry reg;
  ASSERT_TRUE(reg.addNode("n1", 4000, 8192).isOk());
  ApiServer api(reg);
  EXPECT_EQ(api.failPod(42).code(), StatusCode::kNotFound);
  EXPECT_EQ(api.deletePod(42).code(), StatusCode::kNotFound);
}

TEST(OrchEdgeTest, TerminationHistoryAccumulates) {
  NodeRegistry reg;
  ASSERT_TRUE(reg.addNode("n1", 4000, 8192).isOk());
  ApiServer api(reg);
  for (int i = 0; i < 5; ++i) {
    PodSpec spec;
    spec.name = "p" + std::to_string(i);
    spec.resources = {100, 100};
    auto uid = api.createPod(spec);
    ASSERT_TRUE(uid.isOk());
    ASSERT_TRUE(api.deletePod(*uid).isOk());
  }
  EXPECT_EQ(api.terminatedPods().size(), 5u);
  EXPECT_EQ(api.liveCount(), 0u);
}

TEST(OrchEdgeTest, NotReadyNodeFilteredBeforeExtension) {
  NodeRegistry reg;
  ASSERT_TRUE(reg.addNode("n1", 4000, 8192).isOk());
  ASSERT_TRUE(reg.addNode("n2", 4000, 8192).isOk());
  ApiServer api(reg);
  ASSERT_TRUE(reg.setReady("n1", false).isOk());
  PodSpec spec;
  spec.name = "p";
  spec.resources = {100, 100};
  auto uid = api.createPod(spec);
  ASSERT_TRUE(uid.isOk());
  EXPECT_EQ(api.getPod(*uid)->nodeName, "n2");
}

// ---- Device & data plane -------------------------------------------------

TEST(DeviceEdgeTest, InvokeBeforeAnyLoadPaysSwap) {
  Simulator sim;
  ModelRegistry zoo = zoo::standardZoo();
  TpuDevice tpu(sim, zoo, "tpu-00");
  TpuDevice::InvokeStats seen;
  ASSERT_TRUE(tpu.invoke(zoo::kMobileNetV1,
                         [&](const TpuDevice::InvokeStats& s) { seen = s; })
                  .isOk());
  sim.run();
  EXPECT_TRUE(seen.paidSwap);
  EXPECT_TRUE(tpu.isResident(zoo::kMobileNetV1));
}

TEST(DeviceEdgeTest, QueuedInvokesSurviveMidStreamLoad) {
  Simulator sim;
  ModelRegistry zoo = zoo::standardZoo();
  TpuDevice tpu(sim, zoo, "tpu-00");
  ASSERT_TRUE(tpu.loadModels({zoo::kMobileNetV1}).isOk());
  sim.run();
  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tpu.invoke(zoo::kMobileNetV1,
                           [&](const TpuDevice::InvokeStats&) { ++completions; })
                    .isOk());
  }
  // Load lands behind the queued invokes (FIFO); they still complete with
  // the old composite.
  ASSERT_TRUE(tpu.loadModels({zoo::kUNetV2}).isOk());
  sim.run();
  EXPECT_EQ(completions, 3);
  EXPECT_TRUE(tpu.isResident(zoo::kUNetV2));
  EXPECT_FALSE(tpu.isResident(zoo::kMobileNetV1));
}

TEST(DataPlaneEdgeTest, LbReconfigureMidStreamShiftsRouting) {
  Simulator sim;
  ModelRegistry zoo = zoo::standardZoo();
  TopologySpec topoSpec;
  topoSpec.vRpiCount = 2;
  topoSpec.tRpiCount = 2;
  ClusterTopology topo(sim, zoo, topoSpec);
  DataPlane dataPlane(sim, topo, zoo);
  for (const char* tpu : {"tpu-00", "tpu-01"}) {
    ASSERT_TRUE(
        dataPlane.executeLoad(LoadCommand{tpu, {zoo::kMobileNetV1}, {}})
            .isOk());
  }
  sim.run();
  auto client = dataPlane.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->invoke(nullptr).isOk());
    sim.run();
  }
  // Failure recovery / defrag path: weights move to the other TPU.
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-01", 100}}}).isOk());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->invoke(nullptr).isOk());
    sim.run();
  }
  EXPECT_EQ(dataPlane.service("tpu-00")->invokeCount(), 5u);
  EXPECT_EQ(dataPlane.service("tpu-01")->invokeCount(), 5u);
}

// ---- Admission edge cases -------------------------------------------------

TEST(AdmissionEdgeTest, DoubleReleaseIsRejected) {
  ModelRegistry zoo = zoo::standardZoo();
  TpuPool pool;
  ASSERT_TRUE(pool.addTpu("tpu-0", 6.9).isOk());
  AdmissionController admission(pool, zoo, {});
  auto result = admission.admit(1, zoo::kMobileNetV1, TpuUnit::fromDouble(0.4));
  ASSERT_TRUE(result.isOk());
  ASSERT_TRUE(admission.release(result->allocation).isOk());
  EXPECT_FALSE(admission.release(result->allocation).isOk());
  EXPECT_TRUE(pool.totalLoad().isZero());
}

TEST(AdmissionEdgeTest, ExactRemainderPartition) {
  // Partition where the last share is exactly the last TPU's free space.
  ModelRegistry zoo = zoo::standardZoo();
  TpuPool pool;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
  }
  AdmissionController admission(pool, zoo, {});
  ASSERT_TRUE(
      admission.admit(1, zoo::kMobileNetV1, TpuUnit::fromDouble(0.7)).isOk());
  ASSERT_TRUE(
      admission.admit(2, zoo::kMobileNetV1, TpuUnit::fromDouble(0.7)).isOk());
  // 0.6 = 0.3 + 0.3: consumes both TPUs to exactly 1.0.
  auto split = admission.admit(3, zoo::kMobileNetV1, TpuUnit::fromDouble(0.6));
  ASSERT_TRUE(split.isOk());
  EXPECT_EQ(pool.find("tpu-0")->currentLoad(), TpuUnit::full());
  EXPECT_EQ(pool.find("tpu-1")->currentLoad(), TpuUnit::full());
  // The pool is now airtight.
  EXPECT_FALSE(
      admission.admit(4, zoo::kMobileNetV1, TpuUnit::fromMilli(1)).isOk());
}

TEST(AdmissionEdgeTest, ThreeModelTetris) {
  // MobileNet V1 (4.2 MB) + UNet (2.5 MB) co-reside; Inception (6.4 MB)
  // must open a new TPU; a second UNet tenant reuses the resident copy.
  ModelRegistry zoo = zoo::standardZoo();
  TpuPool pool;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
  }
  AdmissionController admission(pool, zoo, {});
  auto a = admission.admit(1, zoo::kMobileNetV1, TpuUnit::fromDouble(0.2));
  auto b = admission.admit(2, zoo::kUNetV2, TpuUnit::fromDouble(0.2));
  auto c = admission.admit(3, zoo::kInceptionV1, TpuUnit::fromDouble(0.2));
  auto d = admission.admit(4, zoo::kUNetV2, TpuUnit::fromDouble(0.2));
  ASSERT_TRUE(a.isOk());
  ASSERT_TRUE(b.isOk());
  ASSERT_TRUE(c.isOk());
  ASSERT_TRUE(d.isOk());
  EXPECT_EQ(a->allocation.shares[0].tpuId, "tpu-0");
  EXPECT_EQ(b->allocation.shares[0].tpuId, "tpu-0");
  EXPECT_EQ(c->allocation.shares[0].tpuId, "tpu-1");
  EXPECT_EQ(d->allocation.shares[0].tpuId, "tpu-0");
  EXPECT_TRUE(d->loads.empty());  // UNet already resident
}

// ---- Trace -----------------------------------------------------------------

TEST(TraceEdgeTest, ZeroCapacityDropsEverything) {
  ModelRegistry zoo = zoo::standardZoo();
  MafTraceConfig config = MafTraceGenerator::paperDefaults();
  config.horizon = minutes(5);
  auto events = MafTraceGenerator(config).generate(zoo);
  EXPECT_TRUE(downsizeToCapacity(events, 0.0, config.horizon).empty());
}

TEST(TraceEdgeTest, GenerousCapacityKeepsEverything) {
  ModelRegistry zoo = zoo::standardZoo();
  MafTraceConfig config = MafTraceGenerator::paperDefaults();
  config.horizon = minutes(5);
  auto events = MafTraceGenerator(config).generate(zoo);
  EXPECT_EQ(downsizeToCapacity(events, 1e9, config.horizon).size(),
            events.size());
}

// ---- Testbed guard rails -----------------------------------------------

TEST(TestbedEdgeTest, FailUnknownTpuIsNoop) {
  Testbed testbed;
  auto report = testbed.failTpu("tpu-99");
  EXPECT_EQ(report.affectedPods, 0u);
  EXPECT_EQ(testbed.pool().size(), 6u);
}

TEST(TestbedEdgeTest, DoubleTpuFailureHandled) {
  Testbed testbed;
  CameraDeployment deployment;
  deployment.name = "cam";
  deployment.model = zoo::kSsdMobileNetV2;
  ASSERT_TRUE(testbed.deployCamera(deployment).isOk());
  testbed.run(seconds(1));
  auto first = testbed.failTpu("tpu-00");
  auto second = testbed.failTpu("tpu-00");  // already dead
  EXPECT_EQ(second.affectedPods, 0u);
  EXPECT_EQ(testbed.pool().size(), 5u);
  (void)first;
}

TEST(TestbedEdgeTest, AllTpusDeadEvictsEveryStream) {
  TopologySpec topo;
  topo.tRpiCount = 2;
  topo.vRpiCount = 4;
  TestbedConfig config;
  config.topology = topo;
  Testbed testbed(config);
  for (int i = 0; i < 3; ++i) {
    CameraDeployment deployment;
    deployment.name = "cam-" + std::to_string(i);
    deployment.model = zoo::kSsdMobileNetV2;
    ASSERT_TRUE(testbed.deployCamera(deployment).isOk());
  }
  testbed.run(seconds(1));
  (void)testbed.failTpu("tpu-00");
  (void)testbed.failTpu("tpu-01");
  EXPECT_EQ(testbed.liveCameraCount(), 0u);
  EXPECT_EQ(testbed.pool().size(), 0u);
  // New deployments are cleanly rejected, not crashed.
  CameraDeployment late;
  late.name = "late";
  late.model = zoo::kSsdMobileNetV2;
  EXPECT_FALSE(testbed.deployCamera(late).isOk());
}

}  // namespace
}  // namespace microedge
