// LbService batched routing: routeBatch / routeHealthyBatch are pure
// optimizations over k single calls — the differential tests here hold the
// batch path to byte-identical pick sequences and counter states, including
// with health events (trips, probes) landing between batches.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/lb_service.hpp"
#include "util/intern.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace microedge {
namespace {

LbConfig makeConfig(const std::vector<std::uint32_t>& weights) {
  LbConfig config;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    LbWeight w;
    w.tpuId = strCat("tpu", i);
    w.weight = weights[i];
    config.weights.push_back(w);
  }
  return config;
}

void expectSameCounters(const LbService& a, const LbService& b) {
  EXPECT_EQ(a.routedCount(), b.routedCount());
  for (const LbWeight& w : a.config().weights) {
    EXPECT_EQ(a.routedCountTo(w.tpuId), b.routedCountTo(w.tpuId)) << w.tpuId;
  }
}

class LbBatchTest : public ::testing::TestWithParam<LbSpread> {};

TEST_P(LbBatchTest, BatchMatchesSingleRoutes) {
  InternScope scope;
  LbService single(GetParam());
  LbService batched(GetParam());
  LbConfig config = makeConfig({400, 200, 100});
  ASSERT_TRUE(single.configure(config).isOk());
  ASSERT_TRUE(batched.configure(config).isOk());

  std::vector<std::uint32_t> got;
  std::vector<std::uint32_t> want;
  for (std::size_t k : {std::size_t{1}, std::size_t{0}, std::size_t{4},
                        std::size_t{16}, std::size_t{7}}) {
    batched.routeBatch(k, got);
    for (std::size_t j = 0; j < k; ++j) {
      want.push_back(static_cast<std::uint32_t>(single.routeIndex()));
    }
  }
  EXPECT_EQ(got, want);
  expectSameCounters(single, batched);
}

TEST_P(LbBatchTest, HealthyBatchMatchesSingleRoutesAllHealthy) {
  InternScope scope;
  LbService single(GetParam());
  LbService batched(GetParam());
  LbConfig config = makeConfig({350, 350, 300});
  ASSERT_TRUE(single.configure(config).isOk());
  ASSERT_TRUE(batched.configure(config).isOk());

  SimTime now{};
  std::vector<std::uint32_t> got;
  std::size_t routed = batched.routeHealthyBatch(now, 30, got);
  EXPECT_EQ(routed, 30u);
  for (std::size_t j = 0; j < 30; ++j) {
    EXPECT_EQ(got[j], static_cast<std::uint32_t>(single.routeHealthyIndex(now)))
        << j;
  }
  expectSameCounters(single, batched);
}

INSTANTIATE_TEST_SUITE_P(Spreads, LbBatchTest,
                         ::testing::Values(LbSpread::kSmooth,
                                           LbSpread::kBurst));

TEST(LbBatchHealthTest, BatchMatchesSinglesWithHealthEventsBetweenBatches) {
  // Drive both services through identical (route, feedback) histories where
  // feedback lands between batches: trip target 1, route around it, let the
  // mask window lapse, probe, restore. Every batch must equal the k singles.
  InternScope scope;
  LbService single;
  LbService batched;
  LbConfig config = makeConfig({200, 200, 200});
  ASSERT_TRUE(single.configure(config).isOk());
  ASSERT_TRUE(batched.configure(config).isOk());

  auto routeBoth = [&](SimTime now, std::size_t k) {
    std::vector<std::uint32_t> got;
    std::size_t routed = batched.routeHealthyBatch(now, k, got);
    std::vector<std::uint32_t> want;
    for (std::size_t j = 0; j < k; ++j) {
      std::size_t index = single.routeHealthyIndex(now);
      if (index == LbService::kNoTarget) break;
      want.push_back(static_cast<std::uint32_t>(index));
    }
    EXPECT_EQ(routed, want.size());
    got.resize(routed);
    EXPECT_EQ(got, want);
    return got;
  };
  auto failBoth = [&](std::size_t index, SimTime now) {
    single.recordFailure(index, now);
    batched.recordFailure(index, now);
  };
  auto succeedBoth = [&](std::size_t index) {
    single.recordSuccess(index);
    batched.recordSuccess(index);
  };

  SimTime t0{};
  routeBoth(t0, 6);
  // Trip target 1 (default threshold: 3 consecutive failures).
  failBoth(1, t0);
  failBoth(1, t0);
  failBoth(1, t0);
  ASSERT_EQ(single.targetHealth(1), TargetHealth::kMasked);
  ASSERT_EQ(batched.targetHealth(1), TargetHealth::kMasked);

  // Batches inside the mask window route around target 1.
  for (std::uint32_t index : routeBoth(t0 + milliseconds(10), 9)) {
    EXPECT_NE(index, 1u);
  }

  // Window lapsed: the next draw of target 1 is the half-open probe.
  SimTime later = t0 + milliseconds(600);
  routeBoth(later, 9);
  EXPECT_EQ(single.targetHealth(1), TargetHealth::kProbing);
  EXPECT_EQ(batched.targetHealth(1), TargetHealth::kProbing);
  succeedBoth(1);
  EXPECT_EQ(batched.targetHealth(1), TargetHealth::kHealthy);

  routeBoth(later + milliseconds(1), 12);
  expectSameCounters(single, batched);
}

TEST(LbBatchHealthTest, AllMaskedBatchRoutesNothing) {
  InternScope scope;
  LbService lb;
  ASSERT_TRUE(lb.configure(makeConfig({100, 100})).isOk());
  SimTime t0{};
  for (std::size_t target : {std::size_t{0}, std::size_t{1}}) {
    for (int j = 0; j < 3; ++j) lb.recordFailure(target, t0);
  }
  ASSERT_EQ(lb.maskedCount(), 2u);
  std::vector<std::uint32_t> got;
  EXPECT_EQ(lb.routeHealthyBatch(t0 + milliseconds(1), 5, got), 0u);
  EXPECT_TRUE(got.empty());
}

}  // namespace
}  // namespace microedge
