// Randomized stress for the indexed-heap event engine: interleaved
// schedule / cancel / step / runFor / periodic activity with full structural
// invariant checks, monotonic-clock assertions and bit-exact replay of the
// fired-event trace across identically seeded runs.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace microedge {
namespace {

struct FiredRecord {
  std::int64_t atNs;
  std::uint64_t tag;
  bool operator==(const FiredRecord& o) const {
    return atNs == o.atNs && tag == o.tag;
  }
};

struct Workload {
  explicit Workload(std::uint64_t seed) : rng(seed) {}

  Pcg32 rng;
  Simulator sim;
  std::vector<FiredRecord> trace;
  std::vector<EventId> handles;  // fired/cancelled ids kept in: stale cancels
  std::unordered_set<std::uint64_t> rearms;  // tags already re-armed once
  std::uint64_t nextTag = 0;
  SimTime lastFire = kSimEpoch;
  bool monotonic = true;

  void record(std::uint64_t tag) {
    if (sim.now() < lastFire) monotonic = false;
    lastFire = sim.now();
    trace.push_back({sim.now().time_since_epoch().count(), tag});
  }

  void scheduleOne() {
    const std::uint64_t tag = nextTag++;
    const auto delay = microseconds(rng.nextBounded(5000));
    handles.push_back(sim.scheduleAfter(delay, [this, tag] {
      record(tag);
      // Some events chain a follow-up from inside their own firing, and some
      // re-arm in place -- both grow/mutate the heap mid-fire.
      if ((tag & 15u) == 0 && sim.now() < kSimEpoch + seconds(1)) {
        const std::uint64_t again = nextTag++;
        sim.scheduleAfter(microseconds(17), [this, again] { record(again); });
      } else if ((tag & 15u) == 1 && sim.now() < kSimEpoch + seconds(1) &&
                 rearms.insert(tag).second) {
        handles.push_back(sim.rearmCurrentAfter(microseconds(23)));
      }
    }));
  }

  // One random operation against the simulator.
  void act() {
    switch (rng.nextBounded(8)) {
      case 0:
      case 1:
      case 2:
        scheduleOne();
        break;
      case 3:  // burst
        for (int i = 0; i < 8; ++i) scheduleOne();
        break;
      case 4:  // cancel a random handle -- often already fired (stale)
        if (!handles.empty()) {
          sim.cancel(handles[rng.nextBounded(
              static_cast<std::uint32_t>(handles.size()))]);
        }
        break;
      case 5:
        sim.step();
        break;
      case 6:
        sim.runFor(microseconds(rng.nextBounded(2000)));
        break;
      case 7:  // schedule + immediately cancel (guaranteed-live cancel)
        sim.cancel(sim.scheduleAfter(microseconds(rng.nextBounded(5000)),
                                     [this] { record(~0ull); }));
        break;
    }
  }
};

TEST(SimStressTest, InvariantsHoldAcrossRandomInterleavings) {
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    Workload w(seed);
    for (int round = 0; round < 400; ++round) {
      w.act();
      ASSERT_TRUE(w.sim.checkInvariants())
          << "seed=" << seed << " round=" << round;
    }
    w.sim.run();
    ASSERT_TRUE(w.sim.checkInvariants()) << "seed=" << seed << " after drain";
    EXPECT_TRUE(w.sim.empty());
    EXPECT_TRUE(w.monotonic) << "seed=" << seed;
  }
}

TEST(SimStressTest, NowIsMonotonicThroughoutRandomRuns) {
  Workload w(7);
  SimTime prev = w.sim.now();
  for (int round = 0; round < 1000; ++round) {
    w.act();
    ASSERT_GE(w.sim.now(), prev) << "round=" << round;
    prev = w.sim.now();
  }
  w.sim.run();
  EXPECT_GE(w.sim.now(), prev);
  EXPECT_TRUE(w.monotonic);
}

TEST(SimStressTest, IdenticalSeedsReplayIdenticalTraces) {
  auto runOnce = [](std::uint64_t seed) {
    Workload w(seed);
    for (int round = 0; round < 600; ++round) w.act();
    w.sim.run();
    EXPECT_TRUE(w.monotonic);
    return std::move(w.trace);
  };
  for (std::uint64_t seed : {3ull, 99ull, 2026ull}) {
    const auto a = runOnce(seed);
    const auto b = runOnce(seed);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "seed=" << seed;
  }
  // Different seeds should diverge (sanity check the trace is seed-driven).
  EXPECT_NE(runOnce(3), runOnce(99));
}

TEST(SimStressTest, PeriodicTasksSurviveRandomChurn) {
  Pcg32 rng(11);
  Simulator sim;
  std::vector<int> counts(16, 0);
  std::vector<std::unique_ptr<PeriodicTask>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back(std::make_unique<PeriodicTask>(
        sim, microseconds(50 + 13 * i), [&counts, i] { ++counts[i]; }));
    tasks.back()->start();
  }
  for (int round = 0; round < 200; ++round) {
    const std::uint32_t pick = rng.nextBounded(16);
    switch (rng.nextBounded(4)) {
      case 0:
        tasks[pick]->stop();
        break;
      case 1:
        if (!tasks[pick]->running()) tasks[pick]->start();
        break;
      default:
        sim.runFor(microseconds(rng.nextBounded(500)));
        break;
    }
    ASSERT_TRUE(sim.checkInvariants()) << "round=" << round;
  }
  for (auto& t : tasks) t->stop();
  sim.run();
  EXPECT_TRUE(sim.empty());
  ASSERT_TRUE(sim.checkInvariants());
  // Every task ran at least once before the churn stopped it.
  for (int i = 0; i < 16; ++i) EXPECT_GT(counts[i], 0) << "task " << i;
}

// The heap must stay consistent even when callbacks schedule, cancel and
// re-enter runFor-adjacent entry points from inside fireNext().
TEST(SimStressTest, CallbacksMutatingTheQueueKeepInvariants) {
  Pcg32 rng(5);
  Simulator sim;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(sim.scheduleAfter(microseconds(10 + i), [&] {
      ++fired;
      EXPECT_TRUE(sim.checkInvariants());  // mid-fire: slot reserved
      if (rng.bernoulli(0.5)) {
        ids.push_back(
            sim.scheduleAfter(microseconds(rng.nextBounded(100)), [&fired] {
              ++fired;
            }));
      }
      if (!ids.empty() && rng.bernoulli(0.3)) {
        sim.cancel(ids[rng.nextBounded(static_cast<std::uint32_t>(ids.size()))]);
      }
    }));
  }
  sim.run();
  EXPECT_TRUE(sim.empty());
  EXPECT_TRUE(sim.checkInvariants());
  EXPECT_GT(fired, 0);
}

}  // namespace
}  // namespace microedge
