// Scenario runs through the sharded harness (DESIGN.md §15): the combined
// city workload — diurnal swing + flash crowd + camera churn + a correlated
// rack failure — must produce byte-identical metrics at shard counts
// {1, 2, 8} and across reruns; churn cameras must drain cleanly (every
// in-flight frame reaches exactly one terminal outcome, under chaos too);
// and the per-phase windowed metrics series must cover the horizon. Plus
// the single-Simulator attachment: Testbed::applyScenario.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "models/zoo.hpp"
#include "scenario/spec.hpp"
#include "sweep/drivers.hpp"
#include "testbed/sharded_cluster.hpp"
#include "testbed/testbed.hpp"

namespace microedge {
namespace {

ShardedClusterConfig scenarioConfig(unsigned shards, ScenarioSpec spec,
                                    bool controls) {
  ShardedClusterConfig config;
  config.shards = shards;
  config.racks = 8;
  config.tRpisPerRack = 1;
  config.vRpisPerRack = 2;
  config.tpusPerTRpi = 1;
  config.streamsPerVRpi = 1;
  config.fps = 10.0;
  config.scenario.enabled = true;
  config.scenario.spec = std::move(spec);
  config.scenario.sloDeadline = milliseconds(60);
  if (controls) {
    config.frameDeadline = milliseconds(60);
    config.frameAdmission.enabled = true;
    config.degradation.enabled = true;
    config.repack.enabled = true;
  }
  return config;
}

// Every frame a stream ever submitted reached exactly one terminal outcome
// (nothing stuck in flight, nothing double-counted).
void expectFullyDrained(const ShardedCluster::StreamStats& stats) {
  std::uint64_t terminal = 0;
  for (std::size_t o = 1; o < kFrameOutcomeCount; ++o) {
    terminal += stats.outcomes[o];
  }
  EXPECT_EQ(stats.outcomes[static_cast<std::size_t>(FrameOutcome::kInFlight)],
            0u)
      << stats.camera;
  EXPECT_EQ(terminal, stats.submitted) << stats.camera;
}

TEST(ScenarioCluster, CityByteIdenticalAcrossShardsAndReruns) {
  StatusOr<ScenarioSpec> spec = builtinScenario("city");
  ASSERT_TRUE(spec.isOk());
  std::string reference;
  std::uint64_t referenceDigest = 0;
  // Two shards=1 iterations: the first pair is the rerun witness, the rest
  // the shard-count witness — all four dumps must be the same bytes.
  for (unsigned shards : {1u, 1u, 2u, 8u}) {
    ShardedCluster cluster(scenarioConfig(shards, *spec, /*controls=*/true));
    ASSERT_TRUE(cluster.setupStatus().isOk())
        << cluster.setupStatus().toString();
    ASSERT_TRUE(cluster.runScenario().isOk()) << "shards=" << shards;
    EXPECT_GT(cluster.totalCompleted(), 100u) << "shards=" << shards;

    const std::string metrics = cluster.metricsJson();
    if (reference.empty()) {
      reference = metrics;
      referenceDigest = cluster.digest();
      continue;
    }
    EXPECT_EQ(metrics, reference) << "shards=" << shards;
    EXPECT_EQ(cluster.digest(), referenceDigest) << "shards=" << shards;
  }
}

TEST(ScenarioCluster, ChurnCamerasDrainToExactlyOneTerminalOutcome) {
  StatusOr<ScenarioSpec> spec = builtinScenario("churn");
  ASSERT_TRUE(spec.isOk());
  ShardedCluster cluster(scenarioConfig(1, *spec, /*controls=*/true));
  ASSERT_TRUE(cluster.setupStatus().isOk());
  ASSERT_TRUE(cluster.runScenario().isOk());

  std::size_t joiners = 0, leavers = 0;
  for (std::size_t i = 0; i < cluster.streamCount(); ++i) {
    ShardedCluster::StreamStats stats = cluster.streamStats(i);
    if (!stats.churn) continue;
    ++joiners;
    EXPECT_TRUE(stats.joined) << stats.camera;
    EXPECT_GT(stats.completed, 0u) << stats.camera;
    if (stats.departed) {
      ++leavers;
      // The drain contract: stopped at leave time, in-flight frames run to
      // terminal outcomes during the grace window, units credited back.
      expectFullyDrained(stats);
    }
  }
  // The builtin spec: a 4-camera join/leave wave plus 2 stay-resident joins.
  EXPECT_EQ(joiners, 6u);
  EXPECT_EQ(leavers, 4u);
}

TEST(ScenarioCluster, ChurnUnderChaosStaysConservative) {
  // The city scenario's correlated failure kills a tRPi while churn cameras
  // are live: recovery evicts what it cannot re-place, and every stream —
  // churned, evicted or healthy — must still account for every frame once
  // the run ends (frames in flight at the horizon belong to still-running
  // residents only). Deterministically, at two shard counts.
  StatusOr<ScenarioSpec> spec = builtinScenario("city");
  ASSERT_TRUE(spec.isOk());
  std::string reference;
  for (unsigned shards : {1u, 2u}) {
    ShardedCluster cluster(scenarioConfig(shards, *spec, /*controls=*/true));
    ASSERT_TRUE(cluster.setupStatus().isOk());
    ASSERT_TRUE(cluster.runScenario().isOk());

    // Departed cameras are already fully drained at the horizon — the leave
    // path stops them and their grace window ran inside the scenario.
    for (std::size_t i = 0; i < cluster.streamCount(); ++i) {
      ShardedCluster::StreamStats stats = cluster.streamStats(i);
      if (stats.departed) expectFullyDrained(stats);
    }
    const std::string metrics = cluster.metricsJson();
    if (reference.empty()) {
      reference = metrics;
    } else {
      EXPECT_EQ(metrics, reference) << "shards=" << shards;
    }

    // Residents may legitimately have frames in flight at the horizon cut;
    // after stopping them and draining, EVERY stream — churned, evicted by
    // the correlated failure, or healthy — accounts for every frame exactly
    // once.
    cluster.stopStreams();
    cluster.run(seconds(1));
    for (std::size_t i = 0; i < cluster.streamCount(); ++i) {
      expectFullyDrained(cluster.streamStats(i));
    }
  }
}

TEST(ScenarioCluster, PhaseSeriesCoversHorizonWithSaneMetrics) {
  StatusOr<ScenarioSpec> spec = builtinScenario("flashcrowd");
  ASSERT_TRUE(spec.isOk());
  ShardedCluster cluster(scenarioConfig(1, *spec, /*controls=*/true));
  ASSERT_TRUE(cluster.setupStatus().isOk());
  ASSERT_TRUE(cluster.runScenario().isOk());

  const std::vector<ShardedCluster::PhaseStats>& phases = cluster.phaseStats();
  ASSERT_EQ(phases.size(), 5u);
  EXPECT_EQ(phases.front().name, "baseline");
  EXPECT_EQ(phases.back().name, "recovery");
  EXPECT_EQ(phases.back().end, secondsF(spec->horizonS));
  std::uint64_t submitted = 0, completed = 0, deadlineMet = 0;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    if (p > 0) EXPECT_GT(phases[p].end, phases[p - 1].end);
    EXPECT_GE(phases[p].attainment, 0.0);
    EXPECT_LE(phases[p].attainment, 1.0);
    EXPECT_GT(phases[p].activeStreams, 0u);
    submitted += phases[p].submitted;
    completed += phases[p].completed;
    deadlineMet += phases[p].deadlineMet;
  }
  // The phase deltas tile the run exactly.
  EXPECT_EQ(submitted, cluster.totalSubmitted());
  EXPECT_EQ(completed, cluster.totalCompleted());
  EXPECT_EQ(deadlineMet, cluster.totalDeadlineMet());
  // The flash crowd actually moved the workload: peak-phase submissions
  // outpace the same-length recovery tail at nominal rate.
  EXPECT_GT(phases[2].submitted, phases[4].submitted);

  // Scenario runs are single-shot.
  EXPECT_FALSE(cluster.runScenario().isOk());
}

TEST(ScenarioCluster, SweepExposesScenarioAxes) {
  // Every builtin load shape x every control-policy bundle, resolvable by
  // the sweep runner's driver registry.
  SweepGrid grid = scenarioSweepGrid();
  EXPECT_EQ(grid.pointCount(), 20u);  // 5 scenarios x 4 policies
  EXPECT_EQ(grid.driver(), "scenario");
  EXPECT_TRUE(findSweepDriver("scenario").isOk());
}

TEST(ScenarioCluster, TestbedAppliesScenarioTimeline) {
  // The single-Simulator attachment: envelope retunes + churn + a failure
  // group ride the classic Testbed (quantum-free — solo runs need no
  // cross-shard lattice).
  Testbed testbed;
  CameraDeployment resident;
  resident.name = "resident-cam";
  resident.model = zoo::kMobileNetV1;
  resident.fps = 15.0;
  ASSERT_TRUE(testbed.deployCamera(resident).isOk());

  ScenarioSpec spec;
  spec.name = "testbed-smoke";
  spec.horizonS = 6.0;
  spec.quantumNs = 0;
  spec.diurnal.points = {{0.0, 1.0}, {3.0, 1.5}};
  spec.churn = {{/*tenant=*/0, /*joinS=*/1.0, /*leaveS=*/4.0, /*count=*/1}};
  CameraDeployment churnTemplate = resident;
  churnTemplate.name = "churn-cam";
  ASSERT_TRUE(testbed.applyScenario(spec, churnTemplate).isOk());
  // One timeline per testbed instance.
  EXPECT_FALSE(testbed.applyScenario(spec, churnTemplate).isOk());

  testbed.run(secondsF(spec.horizonS));
  // The churn camera joined at t=1 and was removed at t=4 (retired, so its
  // in-flight frames drained; the SLO report still counts both streams).
  EXPECT_EQ(testbed.liveCameraCount(), 1u);
  EXPECT_EQ(testbed.findCamera("churn-cam-0"), nullptr);
  EXPECT_EQ(testbed.sloReport().streams, 2u);
  // The diurnal retune actually sped the resident up: more frames than the
  // whole run at nominal rate (6 s x 15 fps = 90) could ever produce.
  CameraPipeline* pipeline = testbed.findCamera("resident-cam");
  ASSERT_NE(pipeline, nullptr);
  EXPECT_GT(pipeline->slo().completed(), 95u);
}

}  // namespace
}  // namespace microedge
