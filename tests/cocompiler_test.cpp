// Co-compile planner: composite construction, the 6.9 MB parameter budget,
// lazy exclusion of dead models, and latency estimation.

#include <gtest/gtest.h>

#include "core/cocompiler.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

class CoCompilerTest : public ::testing::Test {
 protected:
  CoCompilerTest()
      : zoo_(zoo::standardZoo()), compiler_(zoo_), tpu_("tpu-00", 6.9) {}

  ModelRegistry zoo_;
  CoCompiler compiler_;
  TpuState tpu_;
};

TEST_F(CoCompilerTest, FreshPlanSingleModel) {
  CoCompilePlan plan = compiler_.planFresh(tpu_, zoo_.at(zoo::kMobileNetV1));
  EXPECT_EQ(plan.tpuId, "tpu-00");
  ASSERT_EQ(plan.composite.size(), 1u);
  EXPECT_EQ(plan.composite[0], zoo::kMobileNetV1);
  EXPECT_NEAR(plan.totalParamMb, 4.2, 1e-9);
  EXPECT_GT(plan.compileLatency, SimDuration::zero());
}

TEST_F(CoCompilerTest, PlanAddAppendsNewModelLast) {
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.2));
  auto plan = compiler_.planAdd(tpu_, zoo_.at(zoo::kUNetV2));
  ASSERT_TRUE(plan.isOk()) << plan.status();
  ASSERT_EQ(plan->composite.size(), 2u);
  // Existing residents keep higher priority; new model is appended.
  EXPECT_EQ(plan->composite[0], zoo::kMobileNetV1);
  EXPECT_EQ(plan->composite[1], zoo::kUNetV2);
  EXPECT_NEAR(plan->totalParamMb, 4.2 + 2.5, 1e-9);
}

TEST_F(CoCompilerTest, PlanAddIdempotentForPresentModel) {
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.2));
  auto plan = compiler_.planAdd(tpu_, zoo_.at(zoo::kMobileNetV1));
  ASSERT_TRUE(plan.isOk());
  EXPECT_EQ(plan->composite.size(), 1u);
}

TEST_F(CoCompilerTest, EnforcesParameterBudget) {
  // SSD MobileNet V2 (6.2) + MobileNet V1 (4.2) > 6.9 MB.
  tpu_.addAllocation(zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35));
  auto plan = compiler_.planAdd(tpu_, zoo_.at(zoo::kMobileNetV1));
  ASSERT_FALSE(plan.isOk());
  EXPECT_EQ(plan.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(CoCompilerTest, DeadModelsExcludedFromComposite) {
  // Lazy reclamation: a zero-reference SSD must be excluded, making room.
  tpu_.addAllocation(zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35));
  ASSERT_TRUE(
      tpu_.removeAllocation(zoo::kSsdMobileNetV2, TpuUnit::fromDouble(0.35))
          .isOk());
  auto plan = compiler_.planAdd(tpu_, zoo_.at(zoo::kMobileNetV1));
  ASSERT_TRUE(plan.isOk()) << plan.status();
  ASSERT_EQ(plan->composite.size(), 1u);
  EXPECT_EQ(plan->composite[0], zoo::kMobileNetV1);
}

TEST_F(CoCompilerTest, LatencyGrowsWithCompositeSize) {
  SimDuration small = compiler_.estimateLatency(2.0);
  SimDuration large = compiler_.estimateLatency(6.5);
  EXPECT_GT(large, small);
  // Seconds-scale, not on the admission critical path (§6.4.1).
  EXPECT_GT(small, milliseconds(1000));
}

TEST_F(CoCompilerTest, PairThatFitsBudget) {
  // MobileNet V1 (4.2) + UNet V2 (2.5) = 6.7 <= 6.9: the trace study's
  // feasible co-residency pair.
  tpu_.addAllocation(zoo::kMobileNetV1, TpuUnit::fromDouble(0.1));
  auto plan = compiler_.planAdd(tpu_, zoo_.at(zoo::kUNetV2));
  ASSERT_TRUE(plan.isOk());
  EXPECT_LE(plan->totalParamMb, 6.9);
}

}  // namespace
}  // namespace microedge
