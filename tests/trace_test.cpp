// MAF-like trace generation and replay: class statistics, determinism,
// downsizing, and event scheduling.

#include <gtest/gtest.h>

#include <map>

#include "models/zoo.hpp"
#include "trace/replay.hpp"

namespace microedge {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : zoo_(zoo::standardZoo()) {}

  MafTraceConfig config() const {
    MafTraceConfig config = MafTraceGenerator::paperDefaults();
    config.horizon = minutes(20);
    config.seed = 42;
    return config;
  }

  ModelRegistry zoo_;
};

TEST_F(TraceTest, DeterministicForSeed) {
  MafTraceGenerator generator(config());
  auto a = generator.generate(zoo_);
  auto b = generator.generate(zoo_);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].createAt, b[i].createAt);
    EXPECT_EQ(a[i].instanceName, b[i].instanceName);
  }
}

TEST_F(TraceTest, SortedByCreateTime) {
  auto events = MafTraceGenerator(config()).generate(zoo_);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].createAt, events[i].createAt);
  }
}

TEST_F(TraceTest, AllThreeClassesPresentWithExpectedModels) {
  auto events = MafTraceGenerator(config()).generate(zoo_);
  std::map<InvocationClass, int> counts;
  for (const auto& ev : events) {
    counts[ev.cls]++;
    switch (ev.cls) {
      case InvocationClass::kContinuous:
        EXPECT_EQ(ev.model, zoo::kSsdMobileNetV2);
        EXPECT_EQ(ev.lifetime, SimDuration::zero());  // 24x7
        break;
      case InvocationClass::kSparse:
        EXPECT_EQ(ev.model, zoo::kMobileNetV1);
        EXPECT_GT(ev.lifetime, SimDuration::zero());
        break;
      case InvocationClass::kBursty:
        EXPECT_EQ(ev.model, zoo::kUNetV2);
        EXPECT_GT(ev.lifetime, SimDuration::zero());
        break;
    }
    EXPECT_NEAR(ev.tpuUnits, zoo_.at(ev.model).tpuUnitsAt(15.0), 1e-9);
  }
  EXPECT_EQ(counts[InvocationClass::kContinuous], 6);
  EXPECT_GT(counts[InvocationClass::kSparse], 5);
  EXPECT_GT(counts[InvocationClass::kBursty], 5);
}

TEST_F(TraceTest, BurstsArriveInClusters) {
  auto events = MafTraceGenerator(config()).generate(zoo_);
  // Count bursty instances landing within 3 s of another bursty instance;
  // by construction most should.
  std::vector<SimTime> burstTimes;
  for (const auto& ev : events) {
    if (ev.cls == InvocationClass::kBursty) burstTimes.push_back(ev.createAt);
  }
  ASSERT_GT(burstTimes.size(), 4u);
  int clustered = 0;
  for (std::size_t i = 1; i < burstTimes.size(); ++i) {
    if (burstTimes[i] - burstTimes[i - 1] <= seconds(3)) ++clustered;
  }
  EXPECT_GT(clustered, static_cast<int>(burstTimes.size()) / 2);
}

TEST_F(TraceTest, UniqueInstanceNames) {
  auto events = MafTraceGenerator(config()).generate(zoo_);
  std::set<std::string> names;
  for (const auto& ev : events) {
    EXPECT_TRUE(names.insert(ev.instanceName).second) << ev.instanceName;
  }
}

TEST_F(TraceTest, DownsizeRespectsCapacity) {
  auto events = MafTraceGenerator(config()).generate(zoo_);
  auto kept = downsizeToCapacity(events, 4.0, config().horizon);
  EXPECT_LE(kept.size(), events.size());
  // Recompute concurrency of the kept set: never above the cap.
  std::multimap<SimTime, double> endings;
  double concurrent = 0.0;
  for (const auto& ev : kept) {
    while (!endings.empty() && endings.begin()->first <= ev.createAt) {
      concurrent -= endings.begin()->second;
      endings.erase(endings.begin());
    }
    concurrent += ev.tpuUnits;
    EXPECT_LE(concurrent, 4.0 + 1e-9);
    SimTime endAt = ev.lifetime == SimDuration::zero()
                        ? kSimEpoch + config().horizon
                        : ev.createAt + ev.lifetime;
    endings.emplace(endAt, ev.tpuUnits);
  }
}

TEST_F(TraceTest, ReplayerDrivesCreateAndDelete) {
  Simulator sim;
  std::vector<TraceEvent> events;
  TraceEvent short1;
  short1.createAt = kSimEpoch + seconds(1);
  short1.lifetime = seconds(5);
  short1.instanceName = "a";
  TraceEvent forever;
  forever.createAt = kSimEpoch + seconds(2);
  forever.lifetime = SimDuration::zero();
  forever.instanceName = "b";
  TraceEvent rejectedEvent;
  rejectedEvent.createAt = kSimEpoch + seconds(3);
  rejectedEvent.lifetime = seconds(5);
  rejectedEvent.instanceName = "reject-me";
  events = {short1, forever, rejectedEvent};

  std::vector<std::string> log;
  TraceReplayer::Callbacks callbacks;
  callbacks.onCreate = [&](const TraceEvent& ev) {
    log.push_back("create:" + ev.instanceName);
    return ev.instanceName != "reject-me";
  };
  callbacks.onDelete = [&](const TraceEvent& ev) {
    log.push_back("delete:" + ev.instanceName);
  };
  TraceReplayer replayer(sim, events, callbacks);
  replayer.scheduleAll(seconds(30));
  sim.run();

  EXPECT_EQ(replayer.attempted(), 3u);
  EXPECT_EQ(replayer.accepted(), 2u);
  EXPECT_EQ(replayer.rejected(), 1u);
  EXPECT_EQ(replayer.activeCount(), 0u);
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log[0], "create:a");
  EXPECT_EQ(log[3], "delete:a");      // t = 6 s
  EXPECT_EQ(log[4], "delete:b");      // horizon
}

}  // namespace
}  // namespace microedge
