// Context-pool semantics of the allocation-free client fast path: slot
// recycling, generation-checked staleness, and accounting under churn.
// Exercised under ASan in CI — a use-after-release of a recycled slot or a
// leaked InvokeContext shows up here first.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dataplane/dataplane.hpp"
#include "models/zoo.hpp"
#include "util/slab_pool.hpp"

namespace microedge {
namespace {

// ---------------------------------------------------------------------------
// SlabPool unit level: the generation check is what makes a handle held by a
// stale in-flight event safe to dereference-or-reject.

TEST(SlabPoolTest, AcquireGetReleaseRoundTrip) {
  SlabPool<int> pool;
  auto h = pool.acquire();
  ASSERT_NE(pool.get(h), nullptr);
  *pool.get(h) = 42;
  EXPECT_EQ(pool.inUse(), 1u);
  EXPECT_TRUE(pool.release(h));
  EXPECT_EQ(pool.inUse(), 0u);
}

TEST(SlabPoolTest, GenerationCheckRejectsStaleHandle) {
  SlabPool<int> pool;
  auto first = pool.acquire();
  ASSERT_TRUE(pool.release(first));
  // The slot is recycled under a new generation; the old handle must die.
  auto second = pool.acquire();
  EXPECT_EQ(second.index, first.index);
  EXPECT_NE(second.generation, first.generation);
  EXPECT_EQ(pool.get(first), nullptr);
  EXPECT_FALSE(pool.release(first));  // double release is a no-op
  ASSERT_NE(pool.get(second), nullptr);
  EXPECT_TRUE(pool.release(second));
}

TEST(SlabPoolTest, DefaultHandleAndOutOfRangeAreInvalid) {
  SlabPool<int> pool;
  SlabPool<int>::Handle empty;
  EXPECT_EQ(pool.get(empty), nullptr);
  EXPECT_FALSE(pool.release(empty));
  SlabPool<int>::Handle bogus{9999, 1};
  EXPECT_EQ(pool.get(bogus), nullptr);
}

TEST(SlabPoolTest, FreeListRecyclesBeforeGrowing) {
  SlabPool<int, 4> pool;
  std::vector<SlabPool<int, 4>::Handle> handles;
  for (int i = 0; i < 4; ++i) handles.push_back(pool.acquire());
  EXPECT_EQ(pool.capacity(), 4u);
  for (auto& h : handles) ASSERT_TRUE(pool.release(h));
  // A full release/acquire cycle reuses the chunk — capacity is stable.
  for (int i = 0; i < 4; ++i) handles[i] = pool.acquire();
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.inUse(), 4u);
  // One more forces a second chunk.
  auto extra = pool.acquire();
  EXPECT_EQ(pool.capacity(), 8u);
  ASSERT_NE(pool.get(extra), nullptr);
}

// ---------------------------------------------------------------------------
// Client level: the pool's accounting must track the pipeline exactly.

class ClientPoolTest : public ::testing::Test {
 protected:
  ClientPoolTest()
      : zoo_(zoo::standardZoo()),
        topo_(sim_, zoo_, smallTopology()),
        dataPlane_(sim_, topo_, zoo_) {}

  static TopologySpec smallTopology() {
    TopologySpec spec;
    spec.vRpiCount = 2;
    spec.tRpiCount = 2;
    return spec;
  }

  void loadAll(const std::string& model) {
    for (const char* tpu : {"tpu-00", "tpu-01"}) {
      ASSERT_TRUE(dataPlane_.executeLoad(LoadCommand{tpu, {model}, {}}).isOk());
    }
    sim_.run();
  }

  Simulator sim_;
  ModelRegistry zoo_;
  ClusterTopology topo_;
  DataPlane dataPlane_;
};

TEST_F(ClientPoolTest, SlotReusedAfterCompletion) {
  loadAll(zoo::kMobileNetV1);
  auto client = dataPlane_.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());
  // Sequential frames cycle through the pool one slot at a time: the pool
  // never grows past the warm footprint of one in-flight frame.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client->invoke(nullptr).isOk());
    sim_.run();
    EXPECT_EQ(client->contextsInFlight(), 0u);
  }
  EXPECT_EQ(client->completedCount(), 200u);
}

TEST_F(ClientPoolTest, StopMidFlightDrainsInFlightFrames) {
  loadAll(zoo::kMobileNetV1);
  auto client = dataPlane_.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100},
                                            LbWeight{"tpu-01", 100}}})
                  .isOk());
  int completions = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        client->invoke([&](const FrameBreakdown&) { ++completions; }).isOk());
  }
  EXPECT_EQ(client->contextsInFlight(), 8u);
  client->stop();
  EXPECT_FALSE(client->invoke(nullptr).isOk());
  sim_.run();
  // Every pre-stop frame ran to completion and returned its slot.
  EXPECT_EQ(completions, 8);
  EXPECT_EQ(client->completedCount(), 8u);
  EXPECT_EQ(client->contextsInFlight(), 0u);
  EXPECT_EQ(client->outstanding(), 0u);
}

TEST_F(ClientPoolTest, RemovedServiceMidFlightRecyclesSlot) {
  loadAll(zoo::kMobileNetV1);
  auto client = dataPlane_.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());
  // The frame routes and departs, then its target dies while it is on the
  // wire: arrival re-resolves the dense handle, finds nothing, and the frame
  // is dropped — its slot must come back.
  ASSERT_TRUE(client->invoke(nullptr).isOk());
  EXPECT_EQ(client->contextsInFlight(), 1u);
  dataPlane_.removeService("tpu-00");
  sim_.run();
  EXPECT_EQ(client->completedCount(), 0u);
  EXPECT_EQ(client->failedCount(), 1u);
  EXPECT_EQ(client->contextsInFlight(), 0u);
  EXPECT_EQ(client->outstanding(), 0u);
}

TEST_F(ClientPoolTest, OutstandingTracksPoolUnderChurn) {
  loadAll(zoo::kMobileNetV1);
  auto client = dataPlane_.makeClient("vrpi-00", zoo::kMobileNetV1);
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100},
                                            LbWeight{"tpu-01", 100}}})
                  .isOk());
  // Closed loop with a fan-out of 16: every completion immediately resubmits
  // until 500 frames have drained. The pool population must equal the
  // client's outstanding count at every completion edge.
  std::uint64_t target = 500;
  std::uint64_t finished = 0;
  std::function<void(const FrameBreakdown&)> pump =
      [&](const FrameBreakdown&) {
        ++finished;
        EXPECT_EQ(client->contextsInFlight(), client->outstanding());
        if (finished + client->outstanding() < target) {
          ASSERT_TRUE(client->invoke([&](const FrameBreakdown& b) { pump(b); })
                          .isOk());
        }
      };
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        client->invoke([&](const FrameBreakdown& b) { pump(b); }).isOk());
  }
  EXPECT_EQ(client->contextsInFlight(), 16u);
  sim_.run();
  EXPECT_EQ(client->completedCount(), finished);
  EXPECT_EQ(client->contextsInFlight(), 0u);
  EXPECT_EQ(client->outstanding(), 0u);
}

}  // namespace
}  // namespace microedge
