// Adaptive window widening (ECSB) for the sharded simulation.
//
// The contract under test: the window-bound mode is PURE SCHEDULING — at
// any shard count, kAdaptive produces byte-identical results to kFixed
// (window partitioning never reorders events), while advancing far fewer,
// far fatter windows whenever the emitter-tagged event set is sparse.
//
// Layers covered:
//  * Simulator emitter taint: explicit tags, cascade closure (children of
//    a tagged event are tagged), periodic rearm inheritance, the lazy
//    min-heap behind nextEmitterTime(), and the tracking-off fallback.
//  * Raw ShardedSim: the all-quiet jump (no tagged events anywhere =>
//    one window straight to the stop time), a cross-shard send armed
//    exactly at the window edge, and mailbox-delivery re-tagging.
//  * Harness differentials: healthy + cross-rack, chaos (crash/hang/
//    keyed LOSS), relief interaction at several budgets, block placement,
//    and a downscaled 100k-style city slice (tRPi-hosted streams, shared
//    TPUs, deadline-free) — each bit-for-bit fixed vs adaptive.

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "sim/fault_injector.hpp"
#include "sim/sharded_sim.hpp"
#include "sim/simulator.hpp"
#include "testbed/sharded_cluster.hpp"

namespace microedge {
namespace {

// --- Simulator emitter taint -------------------------------------------------

TEST(EmitterTaint, ExplicitTagAndCascadeClosure) {
  Simulator sim;
  sim.setEmitterTracking(true);

  // Untagged events are invisible to the emitter bound.
  sim.schedule(sim.now() + milliseconds(1), [] {});
  EXPECT_EQ(sim.nextEmitterTime(), SimTime::max());
  EXPECT_EQ(sim.nextEventTime(), sim.now() + milliseconds(1));

  // A tagged event surfaces; children it schedules inherit the taint even
  // when scheduled without an explicit tag (closure under cascades).
  SimTime childSeen = SimTime::max();
  sim.schedule(
      sim.now() + milliseconds(5),
      [&] {
        sim.scheduleAfter(milliseconds(3), [&] { childSeen = sim.now(); });
      },
      /*emitter=*/true);
  EXPECT_EQ(sim.nextEmitterTime(), sim.now() + milliseconds(5));

  sim.runFor(milliseconds(6));
  // The untagged root and the tagged root fired; the tagged child is now
  // the emitter floor.
  EXPECT_EQ(sim.nextEmitterTime(), sim.now() + milliseconds(2));
  sim.runFor(milliseconds(10));
  EXPECT_NE(childSeen, SimTime::max());
  EXPECT_EQ(sim.nextEmitterTime(), SimTime::max());
}

TEST(EmitterTaint, UntaggedCascadeStaysUntagged) {
  Simulator sim;
  sim.setEmitterTracking(true);
  bool fired = false;
  sim.schedule(sim.now() + milliseconds(1), [&] {
    sim.scheduleAfter(milliseconds(1), [&] { fired = true; });
  });
  sim.runFor(milliseconds(1));
  EXPECT_EQ(sim.nextEmitterTime(), SimTime::max());
  sim.runFor(milliseconds(5));
  EXPECT_TRUE(fired);
}

TEST(EmitterTaint, PeriodicRearmInheritsTag) {
  Simulator sim;
  sim.setEmitterTracking(true);
  int fires = 0;
  PeriodicTask task(sim, milliseconds(10), [&] { ++fires; },
                    /*emitter=*/true);
  task.startAt(sim.now() + milliseconds(10));
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(sim.nextEmitterTime(), sim.now() + milliseconds(10));
    sim.runFor(milliseconds(10));
    EXPECT_EQ(fires, i);
  }
  task.stop();
  sim.runFor(milliseconds(10));
  EXPECT_EQ(sim.nextEmitterTime(), SimTime::max());
}

TEST(EmitterTaint, CanceledEventPurgedLazily) {
  Simulator sim;
  sim.setEmitterTracking(true);
  EventId h =
      sim.schedule(sim.now() + milliseconds(2), [] {}, /*emitter=*/true);
  sim.schedule(sim.now() + milliseconds(7), [] {}, /*emitter=*/true);
  EXPECT_EQ(sim.nextEmitterTime(), sim.now() + milliseconds(2));
  sim.cancel(h);
  // The stale heap top is skipped, not reported.
  EXPECT_EQ(sim.nextEmitterTime(), sim.now() + milliseconds(7));
}

TEST(EmitterTaint, TrackingOffFallsBackToNextEvent) {
  Simulator sim;  // tracking NOT enabled
  sim.schedule(sim.now() + milliseconds(3), [] {});
  // Sound degradation: every event is a potential emitter.
  EXPECT_EQ(sim.nextEmitterTime(), sim.now() + milliseconds(3));
  EXPECT_EQ(sim.nextEmitterTime(), sim.nextEventTime());
}

// --- Raw ShardedSim ----------------------------------------------------------

// No tagged events anywhere: the adaptive leader sees ECSB = +inf on every
// shard and advances ONE window straight past the stop time, instead of
// ~duration/lookahead fixed hops.
TEST(ShardedAdaptive, AllQuietJumpsToStopTime) {
  const SimDuration lookahead = microseconds(500);
  // Traces are collected PER SHARD (each vector is only touched by its
  // owner worker; cross-shard interleaving is not part of the contract).
  std::array<std::vector<int>, 2> fired;
  for (auto mode :
       {ShardedSim::WindowBound::kFixed, ShardedSim::WindowBound::kAdaptive}) {
    ShardedSim sharded(2, lookahead, mode);
    std::array<std::vector<int>, 2> local;
    for (int i = 0; i < 40; ++i) {
      const unsigned shard = static_cast<unsigned>(i) % 2;
      Simulator& sim = sharded.shardSim(shard);
      sim.schedule(sim.now() + milliseconds(i + 1),
                   [&local, shard, i] { local[shard].push_back(i); });
    }
    sharded.runFor(milliseconds(100));
    if (mode == ShardedSim::WindowBound::kFixed) {
      fired = local;
      // The fixed bound hops next-event + lookahead: roughly a window per
      // pending event (events are 1ms apart, lookahead 500us).
      EXPECT_GT(sharded.windowCount(), 20u);
      EXPECT_EQ(sharded.adaptiveWindowCount(), 0u);
    } else {
      EXPECT_EQ(local, fired);
      // One window straight to the stop time (plus at most the final done
      // round).
      EXPECT_LE(sharded.windowCount(), 2u);
      EXPECT_GE(sharded.adaptiveWindowCount(), 1u);
    }
  }
}

// A tagged cross-shard send armed to deliver EXACTLY at the window edge:
// the bound must not admit it early, and both modes must deliver it at the
// same instant.
TEST(ShardedAdaptive, CrossShardSendAtWindowEdge) {
  const SimDuration lookahead = microseconds(500);
  std::vector<long long> deliveries;
  for (auto mode :
       {ShardedSim::WindowBound::kFixed, ShardedSim::WindowBound::kAdaptive}) {
    ShardedSim sharded(2, lookahead, mode);
    std::vector<long long> local;
    Simulator& shard0 = sharded.shardSim(0);
    Simulator& shard1 = sharded.shardSim(1);
    // Shard 1 keeps purely local, untagged work ticking.
    for (int i = 0; i < 20; ++i) {
      shard1.schedule(shard1.now() + milliseconds(i), [] {});
    }
    // The tagged root fires at t=10ms and sends cross-shard at the minimum
    // legal latency — deliverAt lands exactly on the next window bound.
    shard0.schedule(
        shard0.now() + milliseconds(10),
        [&] {
          sharded.postToShard(1, shard0.now() + lookahead,
                              [&sharded, &local] {
                                local.push_back(sharded.shardSim(1)
                                                    .now()
                                                    .time_since_epoch()
                                                    .count());
                              },
                              /*emitter=*/true);
        },
        /*emitter=*/true);
    sharded.runFor(milliseconds(50));
    ASSERT_EQ(local.size(), 1u);
    if (mode == ShardedSim::WindowBound::kFixed) {
      deliveries = local;
    } else {
      EXPECT_EQ(local, deliveries);
    }
  }
}

// Drained mailbox deliveries are re-tagged on the destination shard, so a
// chain of cross-shard hops stays visible to the bound at every hop.
TEST(ShardedAdaptive, CrossShardChainStaysOrdered) {
  const SimDuration lookahead = microseconds(500);
  std::vector<int> order;
  for (auto mode :
       {ShardedSim::WindowBound::kFixed, ShardedSim::WindowBound::kAdaptive}) {
    ShardedSim sharded(2, lookahead, mode);
    std::vector<int> local;
    // Ping-pong: shard 0 -> 1 -> 0 -> 1, each hop at +lookahead.
    std::function<void(unsigned, int)> hop = [&](unsigned dst, int depth) {
      local.push_back(depth);
      if (depth >= 4) return;
      Simulator& here = sharded.shardSim(1 - dst);
      sharded.postToShard(dst, here.now() + lookahead,
                          [&hop, dst, depth] { hop(1 - dst, depth + 1); },
                          /*emitter=*/true);
    };
    Simulator& shard0 = sharded.shardSim(0);
    shard0.schedule(shard0.now() + milliseconds(1),
                    [&hop] { hop(1, 0); }, /*emitter=*/true);
    sharded.runFor(milliseconds(20));
    ASSERT_EQ(local.size(), 5u);
    if (mode == ShardedSim::WindowBound::kFixed) {
      order = local;
    } else {
      EXPECT_EQ(local, order);
    }
  }
}

// --- Harness differentials ---------------------------------------------------

ShardedClusterConfig baseConfig(unsigned shards,
                                ShardedSim::WindowBound mode) {
  ShardedClusterConfig config;
  config.shards = shards;
  config.racks = 8;
  config.tRpisPerRack = 1;
  config.vRpisPerRack = 2;
  config.tpusPerTRpi = 1;
  config.fps = 15.0;
  config.frameDeadline = milliseconds(60);
  config.maxFailovers = 1;
  config.windowBound = mode;
  return config;
}

// Healthy cluster with cross-rack (hence cross-shard) streams: adaptive is
// bit-for-bit fixed at shards {1, 2, 8}, and actually widens windows.
TEST(ShardedAdaptive, HealthyDifferentialAcrossShardCounts) {
  std::string reference;
  for (unsigned shards : {1u, 2u, 8u}) {
    std::string fixedMetrics;
    std::size_t fixedWindows = 0;
    for (auto mode : {ShardedSim::WindowBound::kFixed,
                      ShardedSim::WindowBound::kAdaptive}) {
      ShardedClusterConfig config = baseConfig(shards, mode);
      config.crossRackStride = 3;
      ShardedCluster cluster(config);
      ASSERT_TRUE(cluster.setupStatus().isOk())
          << cluster.setupStatus().toString();
      cluster.run(seconds(2));
      EXPECT_GT(cluster.totalCompleted(), 400u);
      const std::string metrics = cluster.metricsJson();
      if (reference.empty()) reference = metrics;
      // One reference across the whole mode x shard grid.
      EXPECT_EQ(metrics, reference) << "shards=" << shards;
      if (mode == ShardedSim::WindowBound::kFixed) {
        fixedMetrics = metrics;
        fixedWindows = cluster.shardedSim().windowCount();
        EXPECT_EQ(cluster.shardedSim().adaptiveWindowCount(), 0u);
      } else if (shards > 1) {
        EXPECT_EQ(metrics, fixedMetrics);
        // The bound visibly widened windows. The shrink factor depends on
        // how dense non-emitter local work is between cross-shard sends (the
        // big wins show up at scale — see bench_micro_shardsim); here we only
        // require strictly fewer barriers than the fixed bound.
        EXPECT_LT(cluster.shardedSim().windowCount(), fixedWindows);
        EXPECT_GT(cluster.shardedSim().adaptiveWindowCount(), 0u);
      }
    }
  }
}

// Chaos plan (crash + delayed recovery, hang window, keyed LOSS) with
// cross-rack streams in the mix: window bounds never change traces at a
// FIXED shard count, so — unlike the shards-vs-solo differential — the
// fixed-vs-adaptive comparison runs the NACK-heavy cross-shard workload
// too.
TEST(ShardedAdaptive, ChaosDifferentialWithCrossRackNacks) {
  std::vector<std::string> tpuIds;
  {
    ShardedCluster probe(baseConfig(1, ShardedSim::WindowBound::kFixed));
    ASSERT_TRUE(probe.setupStatus().isOk());
    for (const auto& tpu : probe.topology().tpus()) tpuIds.push_back(tpu->id());
  }
  ASSERT_EQ(tpuIds.size(), 8u);

  FaultPlan plan;
  plan.seed = 77;
  plan.detectionDelay = milliseconds(300);
  plan.events.push_back(
      {milliseconds(400), FaultKind::kTpuCrash, tpuIds[1], {}, 0.0});
  plan.events.push_back({milliseconds(700), FaultKind::kTpuHang, tpuIds[5],
                         milliseconds(350), 0.0});
  plan.events.push_back({milliseconds(900), FaultKind::kTransportLoss,
                         std::string(), milliseconds(500), 0.2});

  for (unsigned shards : {2u, 8u}) {
    std::string fixedMetrics;
    for (auto mode : {ShardedSim::WindowBound::kFixed,
                      ShardedSim::WindowBound::kAdaptive}) {
      ShardedClusterConfig config = baseConfig(shards, mode);
      config.crossRackStride = 3;  // cross-shard NACK traffic mid-window
      ShardedCluster cluster(config);
      ASSERT_TRUE(cluster.setupStatus().isOk());
      cluster.armFaults(plan);
      cluster.run(milliseconds(2500));
      EXPECT_GT(cluster.totalCompleted(), 0u);
      const std::string metrics = cluster.metricsJson();
      if (mode == ShardedSim::WindowBound::kFixed) {
        fixedMetrics = metrics;
      } else {
        EXPECT_EQ(metrics, fixedMetrics) << "shards=" << shards;
      }
    }
  }
}

// Adaptive x empty-mailbox relief: identical results at every relief
// budget, including relief disabled.
TEST(ShardedAdaptive, ReliefBudgetsBitForBit) {
  std::string reference;
  for (unsigned relief : {1u, 4u, 16u}) {
    ShardedClusterConfig config =
        baseConfig(4, ShardedSim::WindowBound::kAdaptive);
    config.crossRackStride = 3;
    config.barrierRelief = relief;
    ShardedCluster cluster(config);
    ASSERT_TRUE(cluster.setupStatus().isOk());
    cluster.run(seconds(1));
    const std::string metrics = cluster.metricsJson();
    if (reference.empty()) {
      reference = metrics;
    } else {
      EXPECT_EQ(metrics, reference) << "relief=" << relief;
    }
  }
}

// Block placement is result-invariant too, and is the layout that gives
// adaptive its long emitter-free stretches (stride streams stay
// shard-local except at block boundaries).
TEST(ShardedAdaptive, BlockMappingInvariantAndWide) {
  std::string reference;
  for (auto mapping : {RackMapping::kRoundRobin, RackMapping::kBlock}) {
    for (auto mode : {ShardedSim::WindowBound::kFixed,
                      ShardedSim::WindowBound::kAdaptive}) {
      ShardedClusterConfig config = baseConfig(2, mode);
      config.crossRackStride = 3;
      config.rackMapping = mapping;
      ShardedCluster cluster(config);
      ASSERT_TRUE(cluster.setupStatus().isOk());
      cluster.run(seconds(1));
      const std::string metrics = cluster.metricsJson();
      if (reference.empty()) {
        reference = metrics;
      } else {
        EXPECT_EQ(metrics, reference);
      }
    }
  }
}

// Downscaled 100k-style city slice: streams on tRPis AND vRPis, ten per
// host, ~1 fps, shared TPUs (explicit per-stream units), deadline-free,
// block placement — the bench's scale-up preset in miniature, run
// fixed-vs-adaptive bit-for-bit.
TEST(ShardedAdaptive, CitySliceScaleUpDifferential) {
  std::string fixedMetrics;
  for (auto mode :
       {ShardedSim::WindowBound::kFixed, ShardedSim::WindowBound::kAdaptive}) {
    ShardedClusterConfig config;
    config.shards = 2;
    config.racks = 10;
    config.tRpisPerRack = 2;
    config.vRpisPerRack = 8;
    config.tpusPerTRpi = 1;
    config.streamsPerVRpi = 10;
    config.streamsPerTRpi = 10;
    config.fps = 1.0;
    config.tpuUnits = 0.01;
    config.frameDeadline = SimDuration::zero();
    config.crossRackStride = 5;
    config.windowBound = mode;
    config.rackMapping = RackMapping::kBlock;
    ShardedCluster cluster(config);
    ASSERT_TRUE(cluster.setupStatus().isOk())
        << cluster.setupStatus().toString();
    cluster.run(milliseconds(2500));
    EXPECT_EQ(cluster.streamCount(), 1000u);
    EXPECT_GT(cluster.totalCompleted(), 1000u);
    const std::string metrics = cluster.metricsJson();
    if (mode == ShardedSim::WindowBound::kFixed) {
      fixedMetrics = metrics;
    } else {
      EXPECT_EQ(metrics, fixedMetrics);
    }
  }
}

// metricsJson stays byte-stable by default; the opt-in sim section carries
// the new observability without leaking into the compared dump.
TEST(ShardedAdaptive, MetricsJsonSimSectionIsOptIn) {
  ShardedClusterConfig config =
      baseConfig(2, ShardedSim::WindowBound::kAdaptive);
  config.crossRackStride = 3;
  ShardedCluster cluster(config);
  ASSERT_TRUE(cluster.setupStatus().isOk());
  cluster.run(seconds(1));
  const std::string plain = cluster.metricsJson();
  EXPECT_EQ(plain.find("\"sim\""), std::string::npos);
  const std::string withSim = cluster.metricsJson(/*withSimStats=*/true);
  EXPECT_NE(withSim.find("\"sim\""), std::string::npos);
  EXPECT_NE(withSim.find("\"adaptiveWindows\""), std::string::npos);
  EXPECT_NE(withSim.find("\"eventsPerWindowHist\""), std::string::npos);
  EXPECT_NE(withSim.find("\"perShardStallNanos\""), std::string::npos);
  // The plain dump is a strict prefix-plus-suffix of the stats dump: the
  // stats never perturb the compared fields.
  EXPECT_EQ(withSim.rfind(plain.substr(0, plain.size() - 3), 0), 0u);

  // The histogram recorded fat windows and every recorded window landed in
  // some bucket.
  std::uint64_t total = 0;
  for (std::uint64_t b : cluster.shardedSim().eventsPerWindowHist()) {
    total += b;
  }
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace microedge
