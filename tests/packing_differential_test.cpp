// Differential property test for the incremental packing indexes.
//
// The indexed scan (segment tree / load buckets, AdmissionConfig::indexedScan
// = true) must place *identically* to the retained naive linear scan
// (packingScanOrder) for every packing strategy, with and without workload
// partitioning. Two mirrored pools are driven through the same random
// admit/release sequence by one controller each; after every operation the
// statuses, the produced allocations (TPU ids, units, order) and the full
// pool states must agree, and the indexed pool's internal indexes must be
// consistent with its TPU states.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/admission.hpp"
#include "models/zoo.hpp"
#include "util/rng.hpp"

namespace microedge {
namespace {

struct DiffCase {
  PackingStrategy strategy;
  bool partitioning;
};

std::string caseName(const ::testing::TestParamInfo<DiffCase>& info) {
  std::string name{toString(info.param.strategy)};
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + (info.param.partitioning ? "_partitioned" : "_single");
}

class PackingDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

void expectSameAllocation(const Allocation& indexed, const Allocation& naive) {
  ASSERT_EQ(indexed.shares.size(), naive.shares.size());
  EXPECT_EQ(indexed.model, naive.model);
  for (std::size_t i = 0; i < indexed.shares.size(); ++i) {
    EXPECT_EQ(indexed.shares[i].tpuId, naive.shares[i].tpuId);
    EXPECT_EQ(indexed.shares[i].units.milli(), naive.shares[i].units.milli());
  }
}

void expectSamePools(const TpuPool& indexed, const TpuPool& naive) {
  ASSERT_EQ(indexed.tpus().size(), naive.tpus().size());
  for (std::size_t i = 0; i < indexed.tpus().size(); ++i) {
    const TpuState& a = indexed.tpus()[i];
    const TpuState& b = naive.tpus()[i];
    EXPECT_EQ(a.id(), b.id());
    EXPECT_EQ(a.currentLoad().milli(), b.currentLoad().milli());
    EXPECT_EQ(a.liveModelCount(), b.liveModelCount());
    EXPECT_EQ(a.residentOrder(), b.residentOrder());
  }
}

TEST_P(PackingDifferentialTest, RandomSequencesPlaceIdentically) {
  const DiffCase& param = GetParam();
  ModelRegistry zoo = zoo::standardZoo();
  const char* models[] = {zoo::kMobileNetV1, zoo::kMobileNetV2,
                          zoo::kSsdMobileNetV2, zoo::kEfficientNetLite0};

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TpuPool indexedPool;
    TpuPool naivePool;
    const int tpus = 24;
    for (int i = 0; i < tpus; ++i) {
      std::string id = "tpu-" + std::to_string(i);
      ASSERT_TRUE(indexedPool.addTpu(id, 6.9).isOk());
      ASSERT_TRUE(naivePool.addTpu(id, 6.9).isOk());
    }

    AdmissionConfig config;
    config.strategy = param.strategy;
    config.enableWorkloadPartitioning = param.partitioning;
    config.indexedScan = true;
    AdmissionController indexed(indexedPool, zoo, config);
    config.indexedScan = false;
    AdmissionController naive(naivePool, zoo, config);

    Pcg32 rng(seed);
    std::vector<std::pair<Allocation, Allocation>> live;
    std::uint64_t uid = 0;

    for (int step = 0; step < 400; ++step) {
      const bool doRelease = !live.empty() && rng.bernoulli(0.4);
      if (doRelease) {
        std::size_t victim =
            rng.nextBounded(static_cast<std::uint32_t>(live.size()));
        Status si = indexed.release(live[victim].first);
        Status sn = naive.release(live[victim].second);
        EXPECT_EQ(si.isOk(), sn.isOk()) << "seed " << seed << " step " << step;
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      } else {
        const char* model = models[rng.nextBounded(4)];
        // 50..1495 milli: exercises both single-TPU placement and (when
        // partitioning is on) multi-TPU splits.
        TpuUnit units = TpuUnit::fromMilli(50 + 5 * rng.nextBounded(290));
        auto ri = indexed.admit(++uid, model, units);
        auto rn = naive.admit(uid, model, units);
        ASSERT_EQ(ri.isOk(), rn.isOk())
            << "seed " << seed << " step " << step << " model " << model
            << " units " << units.milli();
        if (ri.isOk()) {
          expectSameAllocation(ri->allocation, rn->allocation);
          EXPECT_EQ(ri->loads.size(), rn->loads.size());
          live.emplace_back(std::move(ri->allocation),
                            std::move(rn->allocation));
        }
      }
      ASSERT_TRUE(indexedPool.indexConsistent())
          << "seed " << seed << " step " << step;
      expectSamePools(indexedPool, naivePool);
      if (::testing::Test::HasFailure()) {
        FAIL() << "diverged at seed " << seed << " step " << step;
      }
    }
    EXPECT_EQ(indexed.admittedCount(), naive.admittedCount());
    EXPECT_EQ(indexed.rejectedCount(), naive.rejectedCount());
    EXPECT_EQ(indexed.partitionedCount(), naive.partitionedCount());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PackingDifferentialTest,
    ::testing::Values(DiffCase{PackingStrategy::kFirstFit, false},
                      DiffCase{PackingStrategy::kFirstFit, true},
                      DiffCase{PackingStrategy::kNextFit, false},
                      DiffCase{PackingStrategy::kNextFit, true},
                      DiffCase{PackingStrategy::kBestFit, false},
                      DiffCase{PackingStrategy::kBestFit, true},
                      DiffCase{PackingStrategy::kWorstFit, false},
                      DiffCase{PackingStrategy::kWorstFit, true}),
    caseName);

}  // namespace
}  // namespace microedge
