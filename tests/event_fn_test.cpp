// EventFn: small-buffer-optimized move-only callable used by the event
// engine. Covers inline vs heap dispatch, move semantics, destruction
// balance and move-only payloads.

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "util/event_fn.hpp"

namespace microedge {
namespace {

// Counts live instances so tests can assert the manage path destroys
// exactly what it constructs (no leaks, no double-destroys).
struct Probe {
  static int live;
  int* hits;
  explicit Probe(int* h) : hits(h) { ++live; }
  Probe(Probe&& o) noexcept : hits(o.hits) { ++live; }
  Probe(const Probe& o) : hits(o.hits) { ++live; }
  ~Probe() { --live; }
  void operator()() const { ++*hits; }
};
int Probe::live = 0;

struct BigProbe : Probe {
  using Probe::Probe;
  char pad[96] = {};  // force the heap fallback
};

TEST(EventFnTest, DefaultConstructedIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(fn);
}

TEST(EventFnTest, InvokesStoredCallable) {
  int hits = 0;
  EventFn fn([&hits] { ++hits; });
  ASSERT_TRUE(fn);
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(EventFnTest, SmallCallablesStayInline) {
  struct Small {
    void* a;
    void* b;
    void* c;
    void operator()() const {}
  };
  static_assert(EventFn::fitsInline<Small>(),
                "3-pointer captures must not allocate");
  static_assert(!EventFn::fitsInline<BigProbe>(),
                "oversized callables take the heap path");
}

TEST(EventFnTest, InlineLifecycleIsBalanced) {
  int hits = 0;
  ASSERT_EQ(Probe::live, 0);
  {
    EventFn fn(Probe{&hits});
    EXPECT_EQ(Probe::live, 1);
    fn();
  }
  EXPECT_EQ(Probe::live, 0);
  EXPECT_EQ(hits, 1);
}

TEST(EventFnTest, HeapLifecycleIsBalanced) {
  int hits = 0;
  ASSERT_EQ(Probe::live, 0);
  {
    EventFn fn(BigProbe{&hits});
    EXPECT_EQ(Probe::live, 1);
    fn();
    fn();
  }
  EXPECT_EQ(Probe::live, 0);
  EXPECT_EQ(hits, 2);
}

TEST(EventFnTest, MoveTransfersOwnership) {
  int hits = 0;
  EventFn a(Probe{&hits});
  EventFn b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): testing moved-from
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(Probe::live, 1);
  b = EventFn();
  EXPECT_EQ(Probe::live, 0);
}

TEST(EventFnTest, MoveAssignReplacesExistingPayload) {
  int first = 0;
  int second = 0;
  EventFn fn(Probe{&first});
  fn = EventFn(Probe{&second});
  EXPECT_EQ(Probe::live, 1);  // the first payload was destroyed
  fn();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(EventFnTest, HeapPayloadMoveIsOwnershipTransfer) {
  int hits = 0;
  EventFn a(BigProbe{&hits});
  EXPECT_EQ(Probe::live, 1);
  EventFn b(std::move(a));
  EXPECT_EQ(Probe::live, 1);
  b();
  EXPECT_EQ(hits, 1);
}

TEST(EventFnTest, SupportsMoveOnlyCaptures) {
  auto owned = std::make_unique<int>(41);
  EventFn fn([p = std::move(owned)] { ++*p; });
  ASSERT_TRUE(fn);
  fn();
  // Move the whole closure between EventFns, unique_ptr and all.
  EventFn moved(std::move(fn));
  moved();
}

TEST(EventFnTest, SelfContainedAfterSourceScopeEnds) {
  EventFn fn;
  {
    int local = 7;
    fn = EventFn([v = local] {
      // capture by value: must not reference the dead stack frame
      volatile int sink = v;
      (void)sink;
    });
  }
  fn();
}

}  // namespace
}  // namespace microedge
