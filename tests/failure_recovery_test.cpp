// Failure recovery: replanning pods off a dead TPU, eviction when the
// surviving pool cannot hold them, and full-stack failover via the testbed.

#include <gtest/gtest.h>

#include "core/failure_recovery.hpp"
#include "models/zoo.hpp"
#include "testbed/testbed.hpp"

namespace microedge {
namespace {

class FailureRecoveryUnitTest : public ::testing::Test {
 protected:
  FailureRecoveryUnitTest() : zoo_(zoo::standardZoo()) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(pool_.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
    }
    admission_ = std::make_unique<AdmissionController>(pool_, zoo_,
                                                       AdmissionConfig{});
    reclamation_ = std::make_unique<Reclamation>(*admission_);
  }

  FailureRecovery makeRecovery(FailureRecovery::Callbacks callbacks = {}) {
    return FailureRecovery(*admission_, *reclamation_, std::move(callbacks));
  }

  void admitAndTrack(std::uint64_t uid, const std::string& model,
                     double units) {
    auto result = admission_->admit(uid, model, TpuUnit::fromDouble(units));
    ASSERT_TRUE(result.isOk()) << result.status();
    reclamation_->track(uid, result->allocation);
  }

  void killTpu(const std::string& id) {
    ASSERT_TRUE(pool_.removeTpu(id).isOk());
  }

  ModelRegistry zoo_;
  TpuPool pool_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<Reclamation> reclamation_;
};

TEST_F(FailureRecoveryUnitTest, UnaffectedPodsUntouched) {
  admitAndTrack(1, zoo::kMobileNetV1, 0.5);  // lands on tpu-0
  killTpu("tpu-2");
  FailureRecovery recovery = makeRecovery();
  auto report = recovery.onTpuFailure("tpu-2");
  EXPECT_EQ(report.affectedPods, 0u);
  EXPECT_EQ(pool_.totalLoad().milli(), 500);
  EXPECT_TRUE(reclamation_->isTracked(1));
}

TEST_F(FailureRecoveryUnitTest, AffectedPodMovesToSurvivor) {
  admitAndTrack(1, zoo::kMobileNetV1, 0.5);  // tpu-0
  std::vector<std::pair<std::uint64_t, LbConfig>> reconfigs;
  std::vector<LoadCommand> loads;
  FailureRecovery::Callbacks callbacks;
  callbacks.loadModel = [&](const LoadCommand& cmd) {
    loads.push_back(cmd);
    return Status::ok();
  };
  callbacks.reconfigureLb = [&](std::uint64_t uid, const LbConfig& config) {
    reconfigs.emplace_back(uid, config);
  };
  FailureRecovery recovery = makeRecovery(std::move(callbacks));

  killTpu("tpu-0");
  auto report = recovery.onTpuFailure("tpu-0");
  EXPECT_EQ(report.affectedPods, 1u);
  EXPECT_EQ(report.recoveredPods, 1u);
  EXPECT_EQ(report.evictedPods, 0u);

  const Allocation* allocation = reclamation_->allocationOf(1);
  ASSERT_NE(allocation, nullptr);
  ASSERT_EQ(allocation->shares.size(), 1u);
  EXPECT_EQ(allocation->shares[0].tpuId, "tpu-1");
  EXPECT_EQ(pool_.find("tpu-1")->currentLoad().milli(), 500);
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_EQ(loads[0].tpuId, "tpu-1");
  ASSERT_EQ(reconfigs.size(), 1u);
  EXPECT_EQ(reconfigs[0].second.weights[0].tpuId, "tpu-1");
}

TEST_F(FailureRecoveryUnitTest, PartitionedPodLosesOneShareAndReplans) {
  // Fill tpu-0/1/2 to 0.6 each, then a 0.9 pod splits across them.
  admitAndTrack(1, zoo::kMobileNetV1, 0.6);
  admitAndTrack(2, zoo::kMobileNetV1, 0.6);
  admitAndTrack(3, zoo::kMobileNetV1, 0.6);
  admitAndTrack(4, zoo::kMobileNetV1, 0.9);  // 0.4 + 0.4 + 0.1
  ASSERT_TRUE(reclamation_->allocationOf(4)->partitioned());

  killTpu("tpu-2");
  FailureRecovery recovery = makeRecovery();
  auto report = recovery.onTpuFailure("tpu-2");
  // Pods 3 (whole) and 4 (one share) were affected: 1.5 units must fit the
  // 0.8 units of residual on tpu-0/1 — impossible for both, so the larger
  // (0.9) pod is tried first and wins part of it... it needs 0.9 > 0.8
  // available: evicted; then 0.6 fits.
  EXPECT_EQ(report.affectedPods, 2u);
  EXPECT_EQ(report.recoveredPods + report.evictedPods, 2u);
  // Whatever the split, the surviving pool is never oversubscribed.
  for (const TpuState& tpu : pool_.tpus()) {
    EXPECT_LE(tpu.currentLoad(), TpuUnit::full());
  }
}

TEST_F(FailureRecoveryUnitTest, EvictsWhenNothingFits) {
  admitAndTrack(1, zoo::kMobileNetV1, 1.0);
  admitAndTrack(2, zoo::kMobileNetV1, 1.0);
  admitAndTrack(3, zoo::kMobileNetV1, 1.0);
  std::vector<std::uint64_t> evicted;
  FailureRecovery::Callbacks callbacks;
  callbacks.evictPod = [&](std::uint64_t uid, const Status& reason) {
    evicted.push_back(uid);
    EXPECT_FALSE(reason.isOk());
  };
  FailureRecovery recovery = makeRecovery(std::move(callbacks));
  killTpu("tpu-1");
  auto report = recovery.onTpuFailure("tpu-1");
  EXPECT_EQ(report.affectedPods, 1u);
  EXPECT_EQ(report.evictedPods, 1u);
  EXPECT_EQ(evicted, std::vector<std::uint64_t>{2});
  EXPECT_FALSE(reclamation_->isTracked(2));
  // Untouched pods keep their placements.
  EXPECT_TRUE(reclamation_->isTracked(1));
  EXPECT_TRUE(reclamation_->isTracked(3));
}

TEST_F(FailureRecoveryUnitTest, LoadFailureDuringRecoveryEvicts) {
  admitAndTrack(1, zoo::kMobileNetV1, 0.5);
  FailureRecovery::Callbacks callbacks;
  callbacks.loadModel = [](const LoadCommand&) {
    return unavailable("survivor also unreachable");
  };
  int evictions = 0;
  callbacks.evictPod = [&](std::uint64_t, const Status&) { ++evictions; };
  FailureRecovery recovery = makeRecovery(std::move(callbacks));
  killTpu("tpu-0");
  auto report = recovery.onTpuFailure("tpu-0");
  EXPECT_EQ(report.evictedPods, 1u);
  EXPECT_EQ(evictions, 1);
  EXPECT_TRUE(pool_.totalLoad().isZero());
}

// ---- Ordering contract -----------------------------------------------------
// failTpu / failNode promise: (1) remove the TPU from the pool BEFORE
// onTpuFailure, (2) reclaim dead pods BEFORE replanning TPU tenants. These
// tests pin down what happens when a caller gets the order wrong: the
// outcome may be suboptimal (avoidable evictions, replans onto the doomed
// TPU) but it is always *safe* — conservation and no-oversubscription hold.

TEST_F(FailureRecoveryUnitTest, RecoveryWithoutPoolRemovalIsSafe) {
  admitAndTrack(1, zoo::kMobileNetV1, 0.5);  // tpu-0
  FailureRecovery recovery = makeRecovery();
  // Wrong order: the "failed" TPU is still in the pool, so the replan may
  // legally land right back on it — which is exactly why failTpu removes
  // the TPU first. The operation must still be internally consistent.
  auto report = recovery.onTpuFailure("tpu-0");
  EXPECT_EQ(report.affectedPods, 1u);
  EXPECT_EQ(report.recoveredPods + report.evictedPods, 1u);
  std::int64_t tracked = 0;
  for (const auto& [uid, allocation] : reclamation_->trackedAllocations()) {
    tracked += allocation.totalUnits().milli();
  }
  EXPECT_EQ(tracked, pool_.totalLoad().milli());
  for (const TpuState& tpu : pool_.tpus()) {
    EXPECT_LE(tpu.currentLoad(), TpuUnit::full());
  }
}

TEST_F(FailureRecoveryUnitTest, EvictedPodNeedsNoLaterReclamation) {
  admitAndTrack(1, zoo::kMobileNetV1, 1.0);
  admitAndTrack(2, zoo::kMobileNetV1, 1.0);
  admitAndTrack(3, zoo::kMobileNetV1, 1.0);
  FailureRecovery recovery = makeRecovery();
  killTpu("tpu-1");
  auto report = recovery.onTpuFailure("tpu-1");
  ASSERT_EQ(report.evictedPods, 1u);
  std::int64_t loadAfterRecovery = pool_.totalLoad().milli();

  // The evicted pod was already released + untracked by recovery; a later
  // reclamation poll that sees it dead must not double-release its units.
  std::size_t reclaimed = reclamation_->pollOnce(
      [](std::uint64_t uid) { return uid != 2; });
  EXPECT_EQ(reclaimed, 0u);
  EXPECT_EQ(pool_.totalLoad().milli(), loadAfterRecovery);
}

TEST_F(FailureRecoveryUnitTest, RecoveryBeforeReclamationIsSafeButWasteful) {
  admitAndTrack(1, zoo::kMobileNetV1, 1.0);  // tpu-0; pod already dead
  admitAndTrack(2, zoo::kMobileNetV1, 1.0);  // tpu-1
  admitAndTrack(3, zoo::kMobileNetV1, 0.5);  // tpu-2
  FailureRecovery recovery = makeRecovery();
  killTpu("tpu-2");
  // Wrong order: replanning before the dead pod 1 was reclaimed. Pod 3's
  // 0.5 units find no residual (the dead pod's stale units block tpu-0), so
  // it is evicted — avoidable, but never an oversubscription.
  auto report = recovery.onTpuFailure("tpu-2");
  EXPECT_EQ(report.affectedPods, 1u);
  EXPECT_EQ(report.evictedPods, 1u);
  for (const TpuState& tpu : pool_.tpus()) {
    EXPECT_LE(tpu.currentLoad(), TpuUnit::full());
  }
  // The late reclamation still converges to a consistent state.
  EXPECT_EQ(reclamation_->pollOnce([](std::uint64_t uid) { return uid != 1; }),
            1u);
  std::int64_t tracked = 0;
  for (const auto& [uid, allocation] : reclamation_->trackedAllocations()) {
    tracked += allocation.totalUnits().milli();
  }
  EXPECT_EQ(tracked, pool_.totalLoad().milli());
}

TEST_F(FailureRecoveryUnitTest, ReclamationBeforeRecoveryAvoidsEviction) {
  admitAndTrack(1, zoo::kMobileNetV1, 1.0);  // tpu-0; pod already dead
  admitAndTrack(2, zoo::kMobileNetV1, 1.0);  // tpu-1
  admitAndTrack(3, zoo::kMobileNetV1, 0.5);  // tpu-2
  FailureRecovery recovery = makeRecovery();
  killTpu("tpu-2");
  // Right order (what failNode does): reclaim first, then replan — the dead
  // pod's units are free capacity and pod 3 survives.
  EXPECT_EQ(reclamation_->pollOnce([](std::uint64_t uid) { return uid != 1; }),
            1u);
  auto report = recovery.onTpuFailure("tpu-2");
  EXPECT_EQ(report.affectedPods, 1u);
  EXPECT_EQ(report.recoveredPods, 1u);
  EXPECT_EQ(report.evictedPods, 0u);
  EXPECT_TRUE(reclamation_->isTracked(3));
}

TEST_F(FailureRecoveryUnitTest, SecondRecoveryForSameTpuIsNoop) {
  admitAndTrack(1, zoo::kMobileNetV1, 0.5);
  FailureRecovery recovery = makeRecovery();
  killTpu("tpu-0");
  auto first = recovery.onTpuFailure("tpu-0");
  EXPECT_EQ(first.recoveredPods, 1u);
  std::int64_t loadAfter = pool_.totalLoad().milli();
  // Re-announcing the same failure (e.g. data-plane and control-plane edges
  // of the fault injector both funnel here) finds nothing left to do.
  auto second = recovery.onTpuFailure("tpu-0");
  EXPECT_EQ(second.affectedPods, 0u);
  EXPECT_EQ(pool_.totalLoad().milli(), loadAfter);
  EXPECT_TRUE(reclamation_->isTracked(1));
}

// ---- Full-stack failover through the testbed -------------------------------

TEST(FailoverIntegrationTest, StreamsKeepFlowingAfterTpuLoss) {
  Testbed testbed;
  // 8 cameras at 0.35 units: 2.8 units on 6 TPUs — ample slack to absorb
  // one TPU failure.
  for (int i = 0; i < 8; ++i) {
    CameraDeployment deployment;
    deployment.name = "cam-" + std::to_string(i);
    deployment.model = zoo::kSsdMobileNetV2;
    ASSERT_TRUE(testbed.deployCamera(deployment).isOk());
  }
  testbed.run(seconds(5));

  auto report = testbed.failTpu("tpu-00");
  EXPECT_GT(report.affectedPods, 0u);
  EXPECT_EQ(report.evictedPods, 0u);
  EXPECT_EQ(report.recoveredPods, report.affectedPods);
  EXPECT_EQ(testbed.liveCameraCount(), 8u);

  // Nothing routes to the dead TPU anymore; frames keep completing.
  std::vector<std::uint64_t> before;
  for (CameraPipeline* camera : testbed.liveCameras()) {
    before.push_back(camera->slo().completed());
  }
  testbed.run(seconds(10));
  std::size_t i = 0;
  for (CameraPipeline* camera : testbed.liveCameras()) {
    EXPECT_GT(camera->slo().completed(), before[i] + 100) << camera->name();
    ++i;
  }
  // The surviving 5 TPUs absorb 2.8 units.
  for (const TpuState& tpu : testbed.pool().tpus()) {
    EXPECT_LE(tpu.currentLoad(), TpuUnit::full());
  }
  EXPECT_EQ(testbed.pool().size(), 5u);
}

TEST(FailoverIntegrationTest, OverloadedClusterShedsLoadExplicitly) {
  Testbed testbed;
  // Fill to the paper's 17-camera capacity, then kill a TPU: 17 * 0.35 =
  // 5.95 units cannot fit 5 TPUs, so some pods must be evicted — never
  // silently oversubscribed.
  for (int i = 0; i < 17; ++i) {
    CameraDeployment deployment;
    deployment.name = "cam-" + std::to_string(i);
    deployment.model = zoo::kSsdMobileNetV2;
    ASSERT_TRUE(testbed.deployCamera(deployment).isOk());
  }
  testbed.run(seconds(3));
  auto report = testbed.failTpu("tpu-03");
  EXPECT_GT(report.evictedPods, 0u);
  EXPECT_EQ(testbed.liveCameraCount(), 17u - report.evictedPods);
  // Survivors: Σ units ≤ 1 per TPU and ≤ 5.0 total.
  EXPECT_LE(testbed.pool().totalLoad(), TpuUnit::fromDouble(5.0));
  for (const TpuState& tpu : testbed.pool().tpus()) {
    EXPECT_LE(tpu.currentLoad(), TpuUnit::full());
  }
  // Evicted pods are gone from the API server too.
  EXPECT_EQ(testbed.api().liveCount(), testbed.liveCameraCount());
  testbed.run(seconds(5));
  SloReport slo = testbed.sloReport();
  // Surviving streams keep their SLO.
  EXPECT_GE(slo.streamsMeetingSlo + report.evictedPods, 17u);
}

TEST(NodeFailureTest, DeadNodeTakesPodsAndTpuWithIt) {
  Testbed testbed;
  // Put cameras across the cluster, plus force one pod onto a tRPi by
  // exhausting vRPis... simpler: deploy and find a pod on the node we kill.
  for (int i = 0; i < 10; ++i) {
    CameraDeployment deployment;
    deployment.name = "cam-" + std::to_string(i);
    deployment.model = zoo::kSsdMobileNetV2;
    ASSERT_TRUE(testbed.deployCamera(deployment).isOk());
  }
  testbed.run(seconds(3));

  const std::string victim = testbed.topology().nodeOfTpu("tpu-01");
  auto report = testbed.failNode(victim);
  EXPECT_EQ(report.tpusLost, 1u);
  // Pods that held shares on tpu-01 were replanned or evicted explicitly.
  EXPECT_EQ(report.recovery.affectedPods,
            report.recovery.recoveredPods + report.recovery.evictedPods);
  // 10 * 0.35 = 3.5 units on 5 surviving TPUs: everything fits.
  EXPECT_EQ(report.recovery.evictedPods, 0u);

  // The node is unschedulable now.
  CameraDeployment extra;
  extra.name = "late";
  extra.model = zoo::kSsdMobileNetV2;
  auto late = testbed.deployCamera(extra);
  ASSERT_TRUE(late.isOk());
  EXPECT_NE(testbed.api().findPodByName("late")->nodeName, victim);

  // Remaining streams keep flowing.
  testbed.run(seconds(10));
  for (CameraPipeline* camera : testbed.liveCameras()) {
    EXPECT_GT(camera->slo().completed(), 0u);
  }
  for (const TpuState& tpu : testbed.pool().tpus()) {
    EXPECT_LE(tpu.currentLoad(), TpuUnit::full());
  }
}

TEST(NodeFailureTest, VRpiFailureKillsOnlyItsPods) {
  Testbed testbed;
  for (int i = 0; i < 6; ++i) {
    CameraDeployment deployment;
    deployment.name = "cam-" + std::to_string(i);
    deployment.model = zoo::kSsdMobileNetV2;
    ASSERT_TRUE(testbed.deployCamera(deployment).isOk());
  }
  testbed.run(seconds(2));
  // Find a vRPi hosting at least one camera pod.
  std::string victim;
  for (const Pod* pod : testbed.api().livePods()) {
    if (testbed.nodeRegistry().find(pod->nodeName)->labels.at("tpu") ==
        "false") {
      victim = pod->nodeName;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  std::size_t liveBefore = testbed.liveCameraCount();
  auto report = testbed.failNode(victim);
  EXPECT_EQ(report.tpusLost, 0u);
  EXPECT_GT(report.podsLost, 0u);
  EXPECT_EQ(testbed.liveCameraCount(), liveBefore - report.podsLost);
  // No TPU lost => the pool shrank only by the dead pods' units.
  testbed.run(seconds(5));
  EXPECT_EQ(testbed.pool().size(), 6u);
  EXPECT_EQ(testbed.pool().totalLoad().milli(),
            static_cast<std::int64_t>(testbed.liveCameraCount()) * 350);
}

TEST(NodeFailureTest, UnknownNodeIsNoop) {
  Testbed testbed;
  auto report = testbed.failNode("nope");
  EXPECT_EQ(report.podsLost, 0u);
  EXPECT_EQ(report.tpusLost, 0u);
}

}  // namespace
}  // namespace microedge
