// Threaded in-process data plane: the same control-plane artifacts driving
// real worker threads with run-to-completion semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/admission.hpp"
#include "dataplane/inproc_runtime.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

InprocTpuService::Config fastConfig(const std::string& id) {
  InprocTpuService::Config config;
  config.tpuId = id;
  config.timeScale = 0.005;  // 200x faster than real time
  return config;
}

TEST(InprocTpuServiceTest, ServesLoadedModel) {
  ModelRegistry zoo = zoo::standardZoo();
  InprocTpuService service(zoo, fastConfig("tpu-00"));
  service.load({zoo::kMobileNetV1});
  auto result = service.invoke(zoo::kMobileNetV1);
  ASSERT_TRUE(result.isOk());
  EXPECT_FALSE(result->paidSwap);
  EXPECT_GT(result->serviceTime.count(), 0);
  EXPECT_EQ(service.servedCount(), 1u);
}

TEST(InprocTpuServiceTest, UnknownModelRejected) {
  ModelRegistry zoo = zoo::standardZoo();
  InprocTpuService service(zoo, fastConfig("tpu-00"));
  EXPECT_FALSE(service.invoke("bogus").isOk());
}

TEST(InprocTpuServiceTest, NonResidentModelSwaps) {
  ModelRegistry zoo = zoo::standardZoo();
  InprocTpuService service(zoo, fastConfig("tpu-00"));
  service.load({zoo::kMobileNetV1});
  auto result = service.invoke(zoo::kUNetV2);
  ASSERT_TRUE(result.isOk());
  EXPECT_TRUE(result->paidSwap);
  EXPECT_EQ(service.swapCount(), 1u);
  // Now resident: the next invoke is swap-free.
  auto again = service.invoke(zoo::kUNetV2);
  ASSERT_TRUE(again.isOk());
  EXPECT_FALSE(again->paidSwap);
}

TEST(InprocTpuServiceTest, ConcurrentClientsSerialized) {
  ModelRegistry zoo = zoo::standardZoo();
  InprocTpuService service(zoo, fastConfig("tpu-00"));
  service.load({zoo::kMobileNetV1});
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 5; ++j) {
        auto result = service.invoke(zoo::kMobileNetV1);
        if (result.isOk()) ++done;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(done.load(), 40);
  EXPECT_EQ(service.servedCount(), 40u);
  EXPECT_EQ(service.swapCount(), 0u);
}

TEST(InprocClientTest, RoutesPerAdmissionWeights) {
  // Drive the threaded runtime with an allocation computed by the real
  // admission controller — the integration the runtime exists to prove.
  ModelRegistry zoo = zoo::standardZoo();
  TpuPool pool;
  ASSERT_TRUE(pool.addTpu("tpu-00", 6.9).isOk());
  ASSERT_TRUE(pool.addTpu("tpu-01", 6.9).isOk());
  AdmissionController admission(pool, zoo, {});
  // Pre-load tpu-00 to 0.6 and tpu-01 to 0.8 so a 0.6-unit pod has no
  // single-TPU home and splits 0.4 / 0.2.
  ASSERT_TRUE(
      admission.admit(1, zoo::kMobileNetV1, TpuUnit::fromDouble(0.6)).isOk());
  ASSERT_TRUE(
      admission.admit(2, zoo::kMobileNetV1, TpuUnit::fromDouble(0.8)).isOk());
  auto result = admission.admit(3, zoo::kMobileNetV1, TpuUnit::fromDouble(0.6));
  ASSERT_TRUE(result.isOk());
  ASSERT_EQ(result->allocation.shares.size(), 2u);

  InprocTpuService s0(zoo, fastConfig("tpu-00"));
  InprocTpuService s1(zoo, fastConfig("tpu-01"));
  s0.load({zoo::kMobileNetV1});
  s1.load({zoo::kMobileNetV1});

  InprocClient client(zoo, zoo::kMobileNetV1);
  LbConfig lb = ExtendedScheduler::lbConfigFromAllocation(result->allocation);
  ASSERT_TRUE(
      client.configure(lb, {{"tpu-00", &s0}, {"tpu-01", &s1}}).isOk());

  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client.invoke().isOk());
  }
  // 0.4 : 0.2 -> exactly 20 : 10 over 30 picks.
  EXPECT_EQ(s0.servedCount(), 20u);
  EXPECT_EQ(s1.servedCount(), 10u);
}

TEST(InprocClientTest, ConfigureRequiresKnownServices) {
  ModelRegistry zoo = zoo::standardZoo();
  InprocClient client(zoo, zoo::kMobileNetV1);
  LbConfig lb{{LbWeight{"tpu-99", 100}}};
  EXPECT_FALSE(client.configure(lb, {}).isOk());
  EXPECT_FALSE(client.invoke().isOk());
}

}  // namespace
}  // namespace microedge
