// Bin-packing scan orders and their effect on admission outcomes.

#include <gtest/gtest.h>

#include "core/admission.hpp"
#include "core/packing_strategy.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

class PackingOrderTest : public ::testing::Test {
 protected:
  PackingOrderTest() : zoo_(zoo::standardZoo()) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(pool_.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
    }
    // Loads: tpu-0 = 0.5, tpu-1 = 0.2, tpu-2 = 0.8, tpu-3 = 0.
    pool_.find("tpu-0")->addAllocation(zoo::kMobileNetV1,
                                       TpuUnit::fromDouble(0.5));
    pool_.find("tpu-1")->addAllocation(zoo::kMobileNetV1,
                                       TpuUnit::fromDouble(0.2));
    pool_.find("tpu-2")->addAllocation(zoo::kMobileNetV1,
                                       TpuUnit::fromDouble(0.8));
  }

  ModelRegistry zoo_;
  TpuPool pool_;
};

TEST_F(PackingOrderTest, FirstFitIsPoolOrder) {
  auto order = packingScanOrder(PackingStrategy::kFirstFit, pool_, 0);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST_F(PackingOrderTest, NextFitSkipsClosedBins) {
  auto order = packingScanOrder(PackingStrategy::kNextFit, pool_, 2);
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 3}));
  auto past = packingScanOrder(PackingStrategy::kNextFit, pool_, 9);
  EXPECT_TRUE(past.empty());
}

TEST_F(PackingOrderTest, BestFitMostLoadedFirst) {
  auto order = packingScanOrder(PackingStrategy::kBestFit, pool_, 0);
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 0, 1, 3}));
}

TEST_F(PackingOrderTest, WorstFitLeastLoadedFirst) {
  auto order = packingScanOrder(PackingStrategy::kWorstFit, pool_, 0);
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 1, 0, 2}));
}

TEST_F(PackingOrderTest, Names) {
  EXPECT_EQ(toString(PackingStrategy::kFirstFit), "first-fit");
  EXPECT_EQ(toString(PackingStrategy::kNextFit), "next-fit");
  EXPECT_EQ(toString(PackingStrategy::kBestFit), "best-fit");
  EXPECT_EQ(toString(PackingStrategy::kWorstFit), "worst-fit");
}

// Strategy comparison on a stream of identical requests: Best-Fit packs
// tightly, Worst-Fit spreads, Next-Fit abandons part-full bins.
TEST(PackingStrategyBehaviourTest, StrategiesProduceDifferentPlacements) {
  ModelRegistry zoo = zoo::standardZoo();

  auto admitStream = [&zoo](PackingStrategy strategy, int requests,
                            double units) {
    TpuPool pool;
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(pool.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
    }
    AdmissionConfig config;
    config.strategy = strategy;
    config.enableWorkloadPartitioning = false;
    AdmissionController admission(pool, zoo, config);
    int admitted = 0;
    for (int i = 0; i < requests; ++i) {
      if (admission
              .admit(static_cast<std::uint64_t>(i + 1), zoo::kMobileNetV1,
                     TpuUnit::fromDouble(units))
              .isOk()) {
        ++admitted;
      }
    }
    return std::make_pair(admitted, pool.usedTpuCount());
  };

  // 0.35-unit requests: First/Best fit 2 per TPU.
  auto firstFit = admitStream(PackingStrategy::kFirstFit, 12, 0.35);
  EXPECT_EQ(firstFit.first, 12);
  EXPECT_EQ(firstFit.second, 6u);

  // Worst-Fit spreads: after 6 requests every TPU carries exactly one.
  {
    TpuPool pool;
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(pool.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
    }
    AdmissionConfig config;
    config.strategy = PackingStrategy::kWorstFit;
    AdmissionController admission(pool, zoo, config);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(admission
                      .admit(static_cast<std::uint64_t>(i + 1),
                             zoo::kMobileNetV1, TpuUnit::fromDouble(0.35))
                      .isOk());
    }
    for (const TpuState& tpu : pool.tpus()) {
      EXPECT_EQ(tpu.currentLoad().milli(), 350) << tpu.id();
    }
  }

  // Next-Fit never revisits earlier bins: four 0.6 requests open four bins,
  // and the following 0.4 requests can only back-fill under First-Fit.
  auto alternating = [&zoo](PackingStrategy strategy) {
    TpuPool pool;
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(pool.addTpu("tpu-" + std::to_string(i), 6.9).isOk());
    }
    AdmissionConfig config;
    config.strategy = strategy;
    config.enableWorkloadPartitioning = false;
    AdmissionController admission(pool, zoo, config);
    int admitted = 0;
    for (int i = 0; i < 10; ++i) {
      double units = i < 4 ? 0.6 : 0.4;
      if (admission
              .admit(static_cast<std::uint64_t>(i + 1), zoo::kMobileNetV1,
                     TpuUnit::fromDouble(units))
              .isOk()) {
        ++admitted;
      }
    }
    return admitted;
  };
  EXPECT_GT(alternating(PackingStrategy::kFirstFit),
            alternating(PackingStrategy::kNextFit));
}

}  // namespace
}  // namespace microedge
