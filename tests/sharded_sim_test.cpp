// Unit tests for the sharded-simulation core: ShardMap rack parsing and
// assignment, the conservative-lookahead window loop, mailbox delivery
// ordering, and the shards=1 canonical bypass.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/sharded_sim.hpp"
#include "sim/topology.hpp"
#include "util/intern.hpp"

namespace microedge {
namespace {

TEST(ShardMap, RackOfNameParsing) {
  EXPECT_EQ(ShardMap::rackOfName("r0-trpi-00"), 0);
  EXPECT_EQ(ShardMap::rackOfName("r7-vrpi-13"), 7);
  EXPECT_EQ(ShardMap::rackOfName("r12-tpu-03"), 12);
  // Flat (legacy) names and malformed prefixes map to "no rack".
  EXPECT_EQ(ShardMap::rackOfName("trpi-00"), -1);
  EXPECT_EQ(ShardMap::rackOfName("tpu-01"), -1);
  EXPECT_EQ(ShardMap::rackOfName("r-trpi-00"), -1);
  EXPECT_EQ(ShardMap::rackOfName("rx-trpi-00"), -1);
  EXPECT_EQ(ShardMap::rackOfName(""), -1);
  EXPECT_EQ(ShardMap::rackOfName("r5"), -1);  // no '-' terminator
}

TEST(ShardMap, RoundRobinRackAssignment) {
  ShardMap map(3);
  EXPECT_EQ(map.shards(), 3u);
  EXPECT_EQ(map.shardOfRack(0), 0u);
  EXPECT_EQ(map.shardOfRack(1), 1u);
  EXPECT_EQ(map.shardOfRack(2), 2u);
  EXPECT_EQ(map.shardOfRack(3), 0u);
  EXPECT_EQ(map.shardOfRack(-1), 0u);

  EXPECT_EQ(map.assignByName("r4-vrpi-01"), 1u);
  EXPECT_EQ(map.shardOf(internNode("r4-vrpi-01")), 1u);
  // Flat names assign to shard 0; unmapped nodes read as shard 0 too.
  EXPECT_EQ(map.assignByName("vrpi-09"), 0u);
  EXPECT_EQ(map.shardOf(internNode("never-assigned")), 0u);
  EXPECT_EQ(map.mappedCount(), 2u);
}

TEST(ShardedSim, SoloShardBypassesWindowLoop) {
  ShardedSim sharded(1, microseconds(500));
  std::vector<int> order;
  sharded.shardSim(0).schedule(sharded.now() + milliseconds(1),
                               [&order] { order.push_back(1); });
  sharded.shardSim(0).schedule(sharded.now() + milliseconds(2),
                               [&order] { order.push_back(2); });
  const std::size_t fired = sharded.runFor(milliseconds(5));
  EXPECT_EQ(fired, 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // Canonical path: no windows, no cross-shard traffic, clock at deadline.
  EXPECT_EQ(sharded.windowCount(), 0u);
  EXPECT_EQ(sharded.crossShardMessages(), 0u);
  EXPECT_EQ(sharded.now().time_since_epoch(), milliseconds(5));
}

TEST(ShardedSim, CrossShardMessageArrivesAtDeliveryTime) {
  const SimDuration lookahead = microseconds(500);
  ShardedSim sharded(2, lookahead);
  // Per-shard traces: each vector is written only by its own shard's
  // worker; the run() barrier orders the writes before our reads.
  std::vector<std::pair<std::string, SimDuration>> trace0, trace1;

  const SimTime start = sharded.now();
  sharded.shardSim(0).schedule(start + milliseconds(1), [&] {
    trace0.emplace_back("send", sharded.shardSim(0).now() - start);
    sharded.postToShard(1, sharded.shardSim(0).now() + lookahead, [&] {
      trace1.emplace_back("recv", sharded.shardSim(1).now() - start);
    });
  });
  sharded.runFor(milliseconds(4));

  ASSERT_EQ(trace0.size(), 1u);
  ASSERT_EQ(trace1.size(), 1u);
  EXPECT_EQ(trace0[0].second, milliseconds(1));
  // Delivered exactly at the stamped delivery time, one lookahead later.
  EXPECT_EQ(trace1[0].second, milliseconds(1) + lookahead);
  EXPECT_EQ(sharded.crossShardMessages(), 1u);
  EXPECT_GE(sharded.windowCount(), 1u);
}

TEST(ShardedSim, PingPongAdvancesWindowByWindow) {
  const SimDuration lookahead = microseconds(500);
  ShardedSim sharded(2, lookahead);
  // A message chain bouncing between the shards: each hop lands exactly one
  // lookahead after its send, so hop k fires at start + (k+1) * lookahead.
  std::vector<SimDuration> hops0, hops1;
  constexpr int kHops = 8;
  const SimTime start = sharded.now();

  struct Bouncer {
    ShardedSim* sharded;
    SimTime start;
    std::vector<SimDuration>* hops0;
    std::vector<SimDuration>* hops1;
    SimDuration lookahead;
    void bounce(unsigned shard, int remaining) {
      Simulator& sim = sharded->shardSim(shard);
      (shard == 0 ? hops0 : hops1)->push_back(sim.now() - start);
      if (remaining == 0) return;
      Bouncer self = *this;
      sharded->postToShard(1 - shard, sim.now() + lookahead,
                           [self, shard, remaining]() mutable {
                             self.bounce(1 - shard, remaining - 1);
                           });
    }
  };
  Bouncer bouncer{&sharded, start, &hops0, &hops1, lookahead};
  sharded.shardSim(0).schedule(start + lookahead, [bouncer]() mutable {
    bouncer.bounce(0, kHops);
  });
  sharded.runFor(milliseconds(20));

  ASSERT_EQ(hops0.size() + hops1.size(), static_cast<std::size_t>(kHops + 1));
  // Shard 0 hosts hops 0, 2, 4, ...; shard 1 the odd ones; hop k fires at
  // (k + 1) * lookahead.
  for (std::size_t i = 0; i < hops0.size(); ++i) {
    EXPECT_EQ(hops0[i], (2 * i + 1) * lookahead) << "hop " << 2 * i;
  }
  for (std::size_t i = 0; i < hops1.size(); ++i) {
    EXPECT_EQ(hops1[i], (2 * i + 2) * lookahead) << "hop " << 2 * i + 1;
  }
  EXPECT_EQ(sharded.crossShardMessages(), static_cast<std::size_t>(kHops));
}

TEST(ShardedSim, PostToNodeRoutesThroughShardMap) {
  ShardedSim sharded(2, microseconds(500));
  sharded.shardMap().assignByName("r0-vrpi-00");
  sharded.shardMap().assignByName("r1-vrpi-01");
  // One flag per shard: each is written only by its own shard's worker.
  SimDuration fired0{}, fired1{};
  const SimTime start = sharded.now();
  sharded.postToNode(internNode("r1-vrpi-01"), start + milliseconds(1), [&] {
    fired1 = sharded.shardSim(1).now() - start;
  });
  sharded.postToNode(internNode("r0-vrpi-00"), start + milliseconds(2), [&] {
    fired0 = sharded.shardSim(0).now() - start;
  });
  sharded.runFor(milliseconds(3));
  EXPECT_EQ(fired1, milliseconds(1));
  EXPECT_EQ(fired0, milliseconds(2));
  EXPECT_EQ(sharded.shardMap().shardOf(internNode("r1-vrpi-01")), 1u);
}

TEST(ShardedSim, RepeatedRunsResumeCleanly) {
  ShardedSim sharded(2, microseconds(500));
  std::vector<SimDuration> at;
  const SimTime start = sharded.now();
  for (int i = 1; i <= 4; ++i) {
    sharded.shardSim(static_cast<unsigned>(i) % 2)
        .schedule(start + milliseconds(i),
                  [&at, &sharded, i] {
                    at.push_back(sharded.shardSim(static_cast<unsigned>(i) % 2)
                                     .now()
                                     .time_since_epoch());
                  });
  }
  sharded.runFor(milliseconds(2));  // fires events at 1 ms and 2 ms
  EXPECT_EQ(at.size(), 2u);
  EXPECT_EQ(sharded.now(), start + milliseconds(2));
  sharded.runFor(milliseconds(2));  // fires the rest
  ASSERT_EQ(at.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(at[static_cast<std::size_t>(i)], milliseconds(i + 1));
  }
  EXPECT_EQ(sharded.now(), start + milliseconds(4));
}

TEST(ShardedSim, BarrierReliefMatchesFullBarrierBitForBit) {
  // Barrier relief (sharded_sim.hpp): after a drain-free full barrier, up
  // to k-1 windows advance on the cheap atomic sub-barrier. The sub-window
  // bound uses serialPhase's formula verbatim, so the fire trace must be
  // IDENTICAL at every k — here a workload with long shard-local stretches
  // (which relief accelerates) punctuated by cross-shard sends (which
  // escalate back to the full barrier mid-episode).
  auto script = [](unsigned reliefK, std::vector<std::string>* trace,
                   std::size_t* reliefWindows) {
    const SimDuration lookahead = microseconds(500);
    ShardedSim sharded(2, lookahead);
    sharded.setBarrierRelief(reliefK);
    const SimTime start = sharded.now();
    std::vector<std::vector<std::string>> perShard(2);
    for (unsigned s = 0; s < 2; ++s) {
      // Dense local ticks: every 100us for 20ms — dozens of windows with
      // empty mailboxes, the case relief exists for.
      for (int i = 1; i <= 200; ++i) {
        sharded.shardSim(s).schedule(start + microseconds(100 * i), [&, s] {
          perShard[s].push_back(
              "tick@" + std::to_string(sharded.shardSim(s)
                                           .now()
                                           .time_since_epoch()
                                           .count()));
        });
      }
      // Sparse cross-shard sends land mid-episode and must escalate to the
      // full-barrier drain without perturbing any delivery time.
      for (int i = 1; i <= 4; ++i) {
        sharded.shardSim(s).schedule(
            start + milliseconds(5 * i) + microseconds(50), [&, s] {
              sharded.postToShard(
                  1 - s, sharded.shardSim(s).now() + lookahead, [&, s] {
                    perShard[1 - s].push_back(
                        "x" + std::to_string(s) + "@" +
                        std::to_string(sharded.shardSim(1 - s)
                                           .now()
                                           .time_since_epoch()
                                           .count()));
                  });
            });
      }
    }
    sharded.runFor(milliseconds(25));
    for (const auto& shardTrace : perShard) {
      for (const auto& entry : shardTrace) trace->push_back(entry);
    }
    *reliefWindows = sharded.reliefWindowCount();
  };

  std::vector<std::string> reference;
  std::size_t referenceRelief = 0;
  script(1, &reference, &referenceRelief);
  EXPECT_EQ(reference.size(), 2u * (200u + 4u));
  EXPECT_EQ(referenceRelief, 0u);  // k=1 disables relief entirely
  for (unsigned k : {4u, 16u}) {
    std::vector<std::string> trace;
    std::size_t reliefWindows = 0;
    script(k, &trace, &reliefWindows);
    EXPECT_EQ(trace, reference) << "reliefK=" << k;
    // Relief actually engaged: a meaningful share of windows skipped the
    // full barrier.
    EXPECT_GT(reliefWindows, 10u) << "reliefK=" << k;
  }
}

TEST(ShardedSim, DeterministicAcrossRuns) {
  // The same scripted workload produces the identical fire trace twice —
  // including equal-timestamp cross-shard deliveries, whose tie-break is
  // the deterministic mailbox merge order, not thread timing.
  auto script = [](std::vector<std::string>* trace) {
    const SimDuration lookahead = microseconds(500);
    ShardedSim sharded(4, lookahead);
    const SimTime start = sharded.now();
    std::vector<std::vector<std::string>> perShard(4);
    for (unsigned s = 0; s < 4; ++s) {
      sharded.shardSim(s).schedule(start + milliseconds(1), [&, s] {
        // Every shard posts to every other shard with the SAME delivery
        // time: the merge must order them by (src shard, seq).
        for (unsigned d = 0; d < 4; ++d) {
          if (d == s) continue;
          sharded.postToShard(
              d, sharded.shardSim(s).now() + lookahead, [&perShard, s, d] {
                perShard[d].push_back(std::to_string(s) + "->" +
                                      std::to_string(d));
              });
        }
      });
    }
    sharded.runFor(milliseconds(3));
    for (const auto& shardTrace : perShard) {
      for (const auto& entry : shardTrace) trace->push_back(entry);
    }
  };
  std::vector<std::string> first, second;
  script(&first);
  script(&second);
  EXPECT_EQ(first.size(), 12u);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace microedge
