// End-to-end data-plane reliability: per-frame deadlines, bounded failover,
// health-masked routing (per-target circuit breaker), deadline-based
// shedding, fail-fast on service removal, and Load retry with backoff.

#include <gtest/gtest.h>

#include "dataplane/dataplane.hpp"
#include "models/zoo.hpp"

namespace microedge {
namespace {

class ReliabilityTest : public ::testing::Test {
 protected:
  ReliabilityTest()
      : zoo_(zoo::standardZoo()),
        topo_(sim_, zoo_, smallTopology()),
        dataPlane_(sim_, topo_, zoo_) {}

  static TopologySpec smallTopology() {
    TopologySpec spec;
    spec.vRpiCount = 2;
    spec.tRpiCount = 3;
    return spec;
  }

  void loadEverywhere(const std::string& model) {
    for (const char* tpu : {"tpu-00", "tpu-01", "tpu-02"}) {
      ASSERT_TRUE(dataPlane_.executeLoad(LoadCommand{tpu, {model}, {}}).isOk());
    }
    sim_.run();
  }

  std::unique_ptr<TpuClient> makeClient(TpuClient::Config config) {
    return dataPlane_.makeClient(std::move(config));
  }

  TpuClient::Config baseConfig(const std::string& model) {
    TpuClient::Config config;
    config.clientNode = "vrpi-00";
    config.model = model;
    return config;
  }

  Simulator sim_;
  ModelRegistry zoo_;
  ClusterTopology topo_;
  DataPlane dataPlane_;
};

// ---- Deadlines -------------------------------------------------------------

TEST_F(ReliabilityTest, DeadlineFiresBeforeArrivalAndCountsTimedOut) {
  loadEverywhere(zoo::kMobileNetV1);
  TpuClient::Config config = baseConfig(zoo::kMobileNetV1);
  config.frameDeadline = milliseconds(1);  // transit alone takes ~8 ms
  config.maxFailovers = 0;
  auto client = makeClient(std::move(config));
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());

  FrameOutcome seen = FrameOutcome::kInFlight;
  SimTime firedAt{};
  const SimTime submitAt = sim_.now();
  ASSERT_TRUE(client
                  ->invoke([&](const FrameBreakdown& b) {
                    seen = b.outcome;
                    firedAt = sim_.now();
                  })
                  .isOk());
  sim_.run();
  EXPECT_EQ(seen, FrameOutcome::kTimedOut);
  EXPECT_EQ(client->outcomeCount(FrameOutcome::kTimedOut), 1u);
  EXPECT_EQ(client->completedCount(), 0u);
  EXPECT_EQ(client->failedCount(), 1u);
  EXPECT_EQ(client->contextsInFlight(), 0u);
  // The deadline fired at exactly submit + 1 ms, not at frame arrival (the
  // stale request-arrival event still drains later, but finds a retired
  // handle).
  EXPECT_EQ(firedAt - submitAt, milliseconds(1));
}

TEST_F(ReliabilityTest, CompletionBeatsDeadlineWithoutTimeout) {
  loadEverywhere(zoo::kMobileNetV1);
  TpuClient::Config config = baseConfig(zoo::kMobileNetV1);
  config.frameDeadline = seconds(1);  // generous: the frame wins the race
  auto client = makeClient(std::move(config));
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());

  FrameBreakdown seen;
  ASSERT_TRUE(
      client->invoke([&](const FrameBreakdown& b) { seen = b; }).isOk());
  sim_.run();
  EXPECT_EQ(client->completedCount(), 1u);
  EXPECT_EQ(client->outcomeCount(FrameOutcome::kTimedOut), 0u);
  // Completion did not wait on the deadline machinery: the frame finished
  // in transit+inference time. (The client-wide timer disarms lazily — one
  // pending no-op event may drain at +1 s, which costs nothing per frame.)
  EXPECT_LT(seen.endToEnd(), milliseconds(100));
}

TEST_F(ReliabilityTest, RepeatedTimeoutsTripTheBreaker) {
  loadEverywhere(zoo::kMobileNetV1);
  TpuClient::Config config = baseConfig(zoo::kMobileNetV1);
  config.frameDeadline = milliseconds(1);
  config.maxFailovers = 0;
  config.health.failureThreshold = 3;
  auto client = makeClient(std::move(config));
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->invoke(nullptr).isOk());
    sim_.run();
  }
  EXPECT_EQ(client->lbService().targetHealth(0), TargetHealth::kMasked);
  EXPECT_EQ(client->lbService().maskEvents(), 1u);
}

// ---- Failover --------------------------------------------------------------

TEST_F(ReliabilityTest, MidFlightFailoverMovesFrameToSurvivor) {
  loadEverywhere(zoo::kMobileNetV1);
  auto client = makeClient(baseConfig(zoo::kMobileNetV1));
  ASSERT_TRUE(client
                  ->configureLb(LbConfig{{LbWeight{"tpu-00", 500},
                                          LbWeight{"tpu-01", 500}}})
                  .isOk());
  FrameBreakdown seen;
  ASSERT_TRUE(
      client->invoke([&](const FrameBreakdown& b) { seen = b; }).isOk());
  // The frame is in flight toward tpu-00 (first smooth-WRR pick); the
  // service dies before arrival. Fail-fast re-ships it to tpu-01.
  dataPlane_.removeService("tpu-00");
  sim_.run();
  EXPECT_EQ(seen.outcome, FrameOutcome::kCompleted);
  EXPECT_EQ(seen.failovers, 1);
  EXPECT_EQ(seen.servedByName(), "tpu-01");
  EXPECT_EQ(client->completedCount(), 1u);
  EXPECT_EQ(client->failoverCount(), 1u);
  EXPECT_EQ(dataPlane_.service("tpu-01")->invokeCount(), 1u);
}

TEST_F(ReliabilityTest, FailoverKeepsAbsoluteDeadline) {
  loadEverywhere(zoo::kMobileNetV1);
  TpuClient::Config config = baseConfig(zoo::kMobileNetV1);
  // Tight enough that a failed-over frame (second ~8 ms transit) cannot
  // make it: the deadline is measured from the ORIGINAL submit.
  config.frameDeadline = milliseconds(12);
  auto client = makeClient(std::move(config));
  ASSERT_TRUE(client
                  ->configureLb(LbConfig{{LbWeight{"tpu-00", 500},
                                          LbWeight{"tpu-01", 500}}})
                  .isOk());
  FrameOutcome seen = FrameOutcome::kInFlight;
  ASSERT_TRUE(
      client->invoke([&](const FrameBreakdown& b) { seen = b.outcome; })
          .isOk());
  // The target dies 7 ms into the ~8 ms transit: the fail-fast broadcast
  // re-ships the frame, but only 5 ms of the original deadline remain —
  // not enough for the second wire hop plus the 4.5 ms inference.
  sim_.scheduleAfter(milliseconds(7), [&] {
    dataPlane_.removeService("tpu-00");
  });
  sim_.run();
  // The frame failed over but still timed out at the original deadline
  // (a per-attempt deadline would have granted the retry a fresh 12 ms).
  EXPECT_TRUE(seen == FrameOutcome::kTimedOut || seen == FrameOutcome::kShed)
      << toString(seen);
  EXPECT_EQ(client->failoverCount(), 1u);
  EXPECT_EQ(client->completedCount(), 0u);
  EXPECT_EQ(client->contextsInFlight(), 0u);
}

TEST_F(ReliabilityTest, FailoverBudgetBoundsReRoutes) {
  loadEverywhere(zoo::kMobileNetV1);
  TpuClient::Config config = baseConfig(zoo::kMobileNetV1);
  config.maxFailovers = 1;
  auto client = makeClient(std::move(config));
  ASSERT_TRUE(client
                  ->configureLb(LbConfig{{LbWeight{"tpu-00", 400},
                                          LbWeight{"tpu-01", 300},
                                          LbWeight{"tpu-02", 300}}})
                  .isOk());
  FrameOutcome seen = FrameOutcome::kInFlight;
  ASSERT_TRUE(
      client->invoke([&](const FrameBreakdown& b) { seen = b.outcome; })
          .isOk());
  // First target dies mid-flight -> failover #1. The survivor it re-shipped
  // to dies too -> budget (1) is spent: terminal, not a second re-route.
  dataPlane_.removeService("tpu-00");
  dataPlane_.removeService("tpu-01");
  dataPlane_.removeService("tpu-02");
  sim_.run();
  EXPECT_EQ(seen, FrameOutcome::kDroppedDeadTarget);
  EXPECT_EQ(client->outcomeCount(FrameOutcome::kDroppedDeadTarget), 1u);
  EXPECT_LE(client->failoverCount(), 1u);
  EXPECT_EQ(client->contextsInFlight(), 0u);
}

// ---- Fail-fast on service removal (satellites 1 + 2) -----------------------

TEST_F(ReliabilityTest, RemoveServiceFailsInFlightFramesImmediately) {
  loadEverywhere(zoo::kMobileNetV1);
  auto client = makeClient(baseConfig(zoo::kMobileNetV1));
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());

  int completions = 0;
  FrameOutcome seen = FrameOutcome::kInFlight;
  ASSERT_TRUE(client
                  ->invoke([&](const FrameBreakdown& b) {
                    seen = b.outcome;
                    ++completions;
                  })
                  .isOk());
  EXPECT_EQ(client->contextsInFlight(), 1u);
  // The broadcast terminates the frame synchronously — no waiting for the
  // (now pointless) arrival event at the dead service.
  dataPlane_.removeService("tpu-00");
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(seen, FrameOutcome::kDroppedDeadTarget);
  EXPECT_EQ(client->contextsInFlight(), 0u);
  sim_.run();
  EXPECT_EQ(completions, 1);  // stale arrival event hit the generation check
  EXPECT_EQ(client->failedCount(), 1u);
}

TEST_F(ReliabilityTest, SubmitAgainstDeadTargetIsExplicitNotSilent) {
  loadEverywhere(zoo::kMobileNetV1);
  auto client = makeClient(baseConfig(zoo::kMobileNetV1));
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());
  dataPlane_.removeService("tpu-00");

  FrameOutcome seen = FrameOutcome::kInFlight;
  // invoke still returns Ok — the loss is reported through the frame's
  // terminal outcome so per-frame accounting never loses it.
  ASSERT_TRUE(
      client->invoke([&](const FrameBreakdown& b) { seen = b.outcome; })
          .isOk());
  EXPECT_EQ(seen, FrameOutcome::kDroppedDeadTarget);
  EXPECT_EQ(client->submittedCount(), 1u);
  EXPECT_EQ(client->outcomeCount(FrameOutcome::kDroppedDeadTarget), 1u);
  EXPECT_EQ(client->outstanding(), 0u);
}

// ---- Health masking (per-target circuit breaker) ---------------------------

TEST_F(ReliabilityTest, HungTargetTripsMaskAndTrafficShiftsToSurvivor) {
  loadEverywhere(zoo::kMobileNetV1);
  TpuClient::Config config = baseConfig(zoo::kMobileNetV1);
  config.health.failureThreshold = 2;
  config.health.maskDuration = seconds(10);
  auto client = makeClient(std::move(config));
  ASSERT_TRUE(client
                  ->configureLb(LbConfig{{LbWeight{"tpu-00", 500},
                                          LbWeight{"tpu-01", 500}}})
                  .isOk());
  dataPlane_.service("tpu-00")->setHung(true);

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(client->invoke(nullptr).isOk());
    sim_.run();
  }
  // Two rejections trip the breaker; everything after routes to tpu-01.
  EXPECT_EQ(client->lbService().targetHealth(0), TargetHealth::kMasked);
  EXPECT_EQ(client->lbService().maskedCount(), 1u);
  EXPECT_GE(dataPlane_.service("tpu-01")->invokeCount(), 10u);
  EXPECT_EQ(client->completedCount() + client->failedCount(), 12u);
}

TEST_F(ReliabilityTest, HalfOpenProbeRestoresRecoveredTarget) {
  loadEverywhere(zoo::kMobileNetV1);
  TpuClient::Config config = baseConfig(zoo::kMobileNetV1);
  config.health.failureThreshold = 1;
  config.health.maskDuration = milliseconds(100);
  auto client = makeClient(std::move(config));
  ASSERT_TRUE(client
                  ->configureLb(LbConfig{{LbWeight{"tpu-00", 500},
                                          LbWeight{"tpu-01", 500}}})
                  .isOk());
  dataPlane_.service("tpu-00")->setHung(true);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->invoke(nullptr).isOk());
    sim_.run();
  }
  ASSERT_EQ(client->lbService().targetHealth(0), TargetHealth::kMasked);

  // The service recovers; after the mask window the next pick probes it.
  dataPlane_.service("tpu-00")->setHung(false);
  sim_.runFor(milliseconds(200));
  std::uint64_t before = dataPlane_.service("tpu-00")->invokeCount();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client->invoke(nullptr).isOk());
    sim_.run();
  }
  EXPECT_EQ(client->lbService().targetHealth(0), TargetHealth::kHealthy);
  EXPECT_GT(dataPlane_.service("tpu-00")->invokeCount(), before);
}

TEST_F(ReliabilityTest, FailedProbeRemasksWithLongerBackoff) {
  loadEverywhere(zoo::kMobileNetV1);
  TpuClient::Config config = baseConfig(zoo::kMobileNetV1);
  config.health.failureThreshold = 1;
  config.health.maskDuration = milliseconds(100);
  auto client = makeClient(std::move(config));
  ASSERT_TRUE(client
                  ->configureLb(LbConfig{{LbWeight{"tpu-00", 500},
                                          LbWeight{"tpu-01", 500}}})
                  .isOk());
  dataPlane_.service("tpu-00")->setHung(true);  // and it stays hung
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client->invoke(nullptr).isOk());
    sim_.run();
  }
  ASSERT_EQ(client->lbService().targetHealth(0), TargetHealth::kMasked);

  // First probe after 100 ms fails -> re-masked for 200 ms, then 400 ms...
  // capped. Over 2 s of traffic the hung target sees only a handful of
  // probe frames, not half the load.
  std::uint64_t hungBefore = dataPlane_.service("tpu-00")->invokeCount();
  for (int i = 0; i < 40; ++i) {
    sim_.runFor(milliseconds(50));
    ASSERT_TRUE(client->invoke(nullptr).isOk());
    sim_.run();
  }
  std::uint64_t probes =
      dataPlane_.service("tpu-00")->invokeCount() - hungBefore;
  EXPECT_LE(probes, 8u);
  EXPECT_GE(client->lbService().maskEvents(), 2u);
  EXPECT_EQ(client->lbService().targetHealth(0), TargetHealth::kMasked);
}

// ---- Deadline-based shedding -----------------------------------------------

TEST_F(ReliabilityTest, BacklogBeyondDeadlineShedsInsteadOfQueueing) {
  loadEverywhere(zoo::kEfficientNetLite0);  // 69 ms inference
  TpuClient::Config config = baseConfig(zoo::kEfficientNetLite0);
  config.frameDeadline = milliseconds(120);
  auto client = makeClient(std::move(config));
  ASSERT_TRUE(client->configureLb(LbConfig{{LbWeight{"tpu-00", 100}}}).isOk());

  // Burst of 5 frames at once: the first fits (8 + 69 < 120), later ones
  // find a backlog whose predicted completion blows the deadline.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(client->invoke(nullptr).isOk());
  sim_.run();
  EXPECT_GE(client->outcomeCount(FrameOutcome::kCompleted), 1u);
  EXPECT_GE(client->outcomeCount(FrameOutcome::kShed), 2u);
  // Shedding is load, not failure: the breaker never tripped.
  EXPECT_EQ(client->lbService().targetHealth(0), TargetHealth::kHealthy);
  EXPECT_EQ(client->lbService().maskEvents(), 0u);
  // Every frame terminated exactly once.
  std::uint64_t terminal = 0;
  for (std::size_t i = 1; i < kFrameOutcomeCount; ++i) {
    terminal += client->outcomeCount(static_cast<FrameOutcome>(i));
  }
  EXPECT_EQ(terminal, 5u);
  EXPECT_EQ(client->contextsInFlight(), 0u);
}

// ---- Load retry with bounded exponential backoff ---------------------------

TEST_F(ReliabilityTest, LoadRetriesAfterTransientHangClears) {
  TpuService* service = dataPlane_.service("tpu-00");
  ASSERT_NE(service, nullptr);
  service->setHung(true);
  // Un-hang after 25 ms — within the retry budget (10, 20, 40... ms).
  sim_.scheduleAfter(milliseconds(25), [&] { service->setHung(false); });

  Status final = internalError("never fired");
  ExpBackoff backoff;
  backoff.base = milliseconds(10);
  dataPlane_.executeLoadWithRetry(
      LoadCommand{"tpu-00", {zoo::kMobileNetV1}, {}}, backoff,
      [&](const Status& s) { final = s; });
  sim_.run();
  EXPECT_TRUE(final.isOk()) << final.toString();
  EXPECT_GE(dataPlane_.loadRetries(), 1u);
  EXPECT_TRUE(topo_.findTpu("tpu-00")->isResident(zoo::kMobileNetV1));
}

TEST_F(ReliabilityTest, LoadRetryStopsWhenBudgetExhausted) {
  dataPlane_.service("tpu-00")->setHung(true);  // forever
  Status final = Status::ok();
  ExpBackoff backoff;
  backoff.base = milliseconds(10);
  backoff.maxAttempts = 3;
  dataPlane_.executeLoadWithRetry(
      LoadCommand{"tpu-00", {zoo::kMobileNetV1}, {}}, backoff,
      [&](const Status& s) { final = s; });
  sim_.run();
  EXPECT_EQ(final.code(), StatusCode::kUnavailable);
  EXPECT_EQ(dataPlane_.loadRetries(), 3u);
}

TEST_F(ReliabilityTest, LoadRetryOnRemovedServiceFailsPermanentlyAndFast) {
  dataPlane_.removeService("tpu-00");
  Status final = Status::ok();
  dataPlane_.executeLoadWithRetry(
      LoadCommand{"tpu-00", {zoo::kMobileNetV1}, {}}, ExpBackoff{},
      [&](const Status& s) { final = s; });
  // Permanent failure: reported synchronously, no retry events scheduled.
  EXPECT_EQ(final.code(), StatusCode::kUnavailable);
  EXPECT_EQ(dataPlane_.loadRetries(), 0u);
  sim_.run();
  EXPECT_EQ(sim_.now(), kSimEpoch);
}

TEST_F(ReliabilityTest, BackoffDelaysDoubleAndCap) {
  ExpBackoff backoff;
  backoff.base = milliseconds(10);
  backoff.cap = milliseconds(50);
  EXPECT_EQ(backoff.delay(0), milliseconds(10));
  EXPECT_EQ(backoff.delay(1), milliseconds(20));
  EXPECT_EQ(backoff.delay(2), milliseconds(40));
  EXPECT_EQ(backoff.delay(3), milliseconds(50));   // capped
  EXPECT_EQ(backoff.delay(30), milliseconds(50));  // no overflow
}

}  // namespace
}  // namespace microedge
