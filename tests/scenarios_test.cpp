// Experiment drivers (testbed/scenarios): the machinery behind the Fig. 5 /
// Table 1 / Fig. 6 benches, exercised at small scale.

#include <gtest/gtest.h>

#include "cluster/cost.hpp"
#include "testbed/scenarios.hpp"

namespace microedge {
namespace {

ScalabilityScenario coralPieScenario(SchedulingMode mode) {
  ScalabilityScenario scenario;
  scenario.mode = mode;
  scenario.deployment.model = zoo::kSsdMobileNetV2;
  scenario.deployment.fps = 15.0;
  scenario.horizon = seconds(10);
  return scenario;
}

TEST(ScalabilityScenarioTest, CapacityGrowsLinearlyWithTpus) {
  ScalabilityScenario scenario = coralPieScenario(SchedulingMode::kMicroEdgeWp);
  int prev = 0;
  for (int tpus = 1; tpus <= 4; ++tpus) {
    int capacity = admissionCapacity(scenario, tpus);
    EXPECT_EQ(capacity, (1000 * tpus) / 350) << tpus;
    EXPECT_GT(capacity, prev);
    prev = capacity;
  }
}

TEST(ScalabilityScenarioTest, VariantOrderingHoldsEverywhere) {
  // baseline <= w/o WP <= w/ WP at every pool size — Fig. 5a's ordering.
  for (int tpus : {1, 2, 4, 6}) {
    int baseline = admissionCapacity(
        coralPieScenario(SchedulingMode::kBaselineDedicated), tpus);
    int noWp =
        admissionCapacity(coralPieScenario(SchedulingMode::kMicroEdgeNoWp), tpus);
    int wp =
        admissionCapacity(coralPieScenario(SchedulingMode::kMicroEdgeWp), tpus);
    EXPECT_LE(baseline, noWp) << tpus;
    EXPECT_LE(noWp, wp) << tpus;
    EXPECT_EQ(baseline, tpus);
  }
}

TEST(ScalabilityScenarioTest, BodyPixBaselineUsesTwoTpusPerNode) {
  ScalabilityScenario scenario =
      coralPieScenario(SchedulingMode::kBaselineDedicated);
  scenario.deployment.model = zoo::kBodyPixMobileNetV1;
  scenario.tpusPerNode = 2;
  EXPECT_EQ(admissionCapacity(scenario, 2), 1);
  EXPECT_EQ(admissionCapacity(scenario, 6), 3);
}

TEST(ScalabilityScenarioTest, MeasuredPointCarriesUtilizationAndSlo) {
  ScalabilityScenario scenario = coralPieScenario(SchedulingMode::kMicroEdgeNoWp);
  ScalabilityPoint point = runScalabilityPoint(scenario, 3);
  EXPECT_EQ(point.tpuCount, 3);
  EXPECT_EQ(point.camerasSupported, 6);
  EXPECT_NEAR(point.meanUtilization, 0.70, 0.05);
  EXPECT_TRUE(point.sloMet);
  EXPECT_GT(point.minAchievedFps, 14.0);
}

TEST(CostScenarioTest, SmallFleets) {
  CameraDeployment deployment;
  deployment.model = zoo::kSsdMobileNetV2;
  // 5 cameras: baseline 5 TPUs; w/o WP ceil(5/2)=3; w/ WP ceil(5*0.35)=2.
  CostPoint baseline =
      costToSupport(SchedulingMode::kBaselineDedicated, deployment, 5);
  CostPoint noWp = costToSupport(SchedulingMode::kMicroEdgeNoWp, deployment, 5);
  CostPoint wp = costToSupport(SchedulingMode::kMicroEdgeWp, deployment, 5);
  EXPECT_EQ(baseline.tpus, 5);
  EXPECT_EQ(noWp.tpus, 3);
  EXPECT_EQ(wp.tpus, 2);
  EXPECT_EQ(baseline.rpis, 5);
  CostModel cost;
  EXPECT_DOUBLE_EQ(wp.totalCost, cost.clusterCost(5, 2));
}

TEST(TraceScenarioTest, DeterministicForIdenticalConfig) {
  TraceScenarioConfig config;
  config.trace = MafTraceGenerator::paperDefaults();
  config.trace.horizon = minutes(4);
  config.trace.seed = 99;
  config.capacityUnits = 6.5;
  TraceRunResult a = runTraceScenario(config);
  TraceRunResult b = runTraceScenario(config);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  ASSERT_EQ(a.utilizationPerWindow.size(), b.utilizationPerWindow.size());
  for (std::size_t i = 0; i < a.utilizationPerWindow.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.utilizationPerWindow[i], b.utilizationPerWindow[i]);
  }
  EXPECT_EQ(a.activePerWindow, b.activePerWindow);
}

TEST(TraceScenarioTest, BaselineServesAtMostOneStreamPerTpu) {
  TraceScenarioConfig config;
  config.trace = MafTraceGenerator::paperDefaults();
  config.trace.horizon = minutes(4);
  config.trace.seed = 5;
  config.capacityUnits = 8.0;
  config.testbed.mode = SchedulingMode::kBaselineDedicated;
  TraceRunResult result = runTraceScenario(config);
  for (int active : result.activePerWindow) {
    EXPECT_LE(active, 6);
  }
}

TEST(TraceScenarioTest, TighterCapacityMeansFewerAttempts) {
  auto attemptsAt = [](double capacity) {
    TraceScenarioConfig config;
    config.trace = MafTraceGenerator::paperDefaults();
    config.trace.horizon = minutes(4);
    config.trace.seed = 13;
    config.capacityUnits = capacity;
    return runTraceScenario(config).attempted;
  };
  EXPECT_LE(attemptsAt(3.0), attemptsAt(9.0));
}

}  // namespace
}  // namespace microedge
