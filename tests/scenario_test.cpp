// Scenario engine unit tests (DESIGN.md §15): spec round-trip/validation,
// the envelope math and timeline compilation, the correlated-failure ->
// FaultPlan bridge, and the StreamRateControl arbitration law (envelope and
// degrader multipliers compose without lost updates, on the tick lattice).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "scenario/engine.hpp"
#include "scenario/spec.hpp"
#include "sim/simulator.hpp"
#include "testbed/rate_control.hpp"
#include "util/time.hpp"

namespace microedge {
namespace {

TEST(ScenarioSpec, BuiltinsValidateAndRoundTrip) {
  for (const char* name :
       {"diurnal", "flashcrowd", "churn", "failures", "city"}) {
    StatusOr<ScenarioSpec> spec = builtinScenario(name);
    ASSERT_TRUE(spec.isOk()) << name;
    EXPECT_TRUE(spec->validate().isOk()) << name;

    // JSON round-trip is byte-stable and fingerprint-preserving.
    const std::string dumped = spec->toJson().dump();
    StatusOr<ScenarioSpec> reparsed = ScenarioSpec::fromJsonText(dumped);
    ASSERT_TRUE(reparsed.isOk()) << name;
    EXPECT_EQ(reparsed->toJson().dump(), dumped) << name;
    EXPECT_EQ(reparsed->fingerprint(), spec->fingerprint()) << name;
  }
  EXPECT_FALSE(builtinScenario("no-such-scenario").isOk());
}

TEST(ScenarioSpec, ValidateRejectsMalformedSpecs) {
  ScenarioSpec bad;
  bad.horizonS = 0.0;
  EXPECT_FALSE(bad.validate().isOk());

  bad = ScenarioSpec{};
  bad.diurnal.points = {{2.0, 1.0}, {1.0, 1.5}};  // out of order
  EXPECT_FALSE(bad.validate().isOk());

  bad = ScenarioSpec{};
  bad.phases = {{"a", 4.0}, {"b", 3.0}};  // non-ascending boundaries
  EXPECT_FALSE(bad.validate().isOk());

  bad = ScenarioSpec{};
  bad.churn = {{0, /*joinS=*/20.0, 0.0, 1}};  // join after the horizon
  EXPECT_FALSE(bad.validate().isOk());

  bad = ScenarioSpec{};
  bad.flash = {{-1, 1.0, -0.5, 1.0, 1.0, 2.0}};  // negative edge
  EXPECT_FALSE(bad.validate().isOk());
}

TEST(ScenarioEnvelope, DiurnalInterpolatesAndClampsAtEdges) {
  ScenarioSpec spec;
  spec.horizonS = 10.0;
  spec.diurnal.points = {{2.0, 1.0}, {6.0, 3.0}};
  // Holds the boundary values outside the control points, interpolates
  // linearly between them.
  EXPECT_DOUBLE_EQ(scenarioEnvelopeAt(spec, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(scenarioEnvelopeAt(spec, 0, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(scenarioEnvelopeAt(spec, 0, 6.0), 3.0);
  EXPECT_DOUBLE_EQ(scenarioEnvelopeAt(spec, 0, 9.0), 3.0);
}

TEST(ScenarioEnvelope, FlashCrowdEdgesAndTenantScoping) {
  ScenarioSpec spec;
  spec.horizonS = 12.0;
  spec.flash = {{/*tenant=*/1, /*startS=*/4.0, /*rampS=*/1.0, /*holdS=*/2.0,
                 /*decayS=*/2.0, /*peakMultiplier=*/3.0}};
  // Tenant 0 never sees the crowd.
  EXPECT_DOUBLE_EQ(scenarioEnvelopeAt(spec, 0, 5.5), 1.0);
  // Tenant 1: flat, ramp to peak, hold, decay back to flat.
  EXPECT_DOUBLE_EQ(scenarioEnvelopeAt(spec, 1, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(scenarioEnvelopeAt(spec, 1, 5.0), 3.0);
  EXPECT_DOUBLE_EQ(scenarioEnvelopeAt(spec, 1, 6.5), 3.0);
  EXPECT_DOUBLE_EQ(scenarioEnvelopeAt(spec, 1, 9.0), 1.0);
  EXPECT_GT(scenarioEnvelopeAt(spec, 1, 4.5), 1.0);
  EXPECT_LT(scenarioEnvelopeAt(spec, 1, 4.5), 3.0);
}

TEST(ScenarioCompile, RateUpdatesOnlyOnChangeSortedByTime) {
  ScenarioSpec spec;
  spec.horizonS = 4.0;
  spec.envelopePeriodS = 0.5;
  spec.diurnal.points = {{0.0, 1.0}, {2.0, 2.0}};  // then flat at 2.0
  CompiledScenario compiled = compileScenario(spec, /*tenants=*/2);

  // One update per sample while the envelope moves (0.5..2.0), none once it
  // goes flat; tenant-uniform collapses to a single tenant=-1 series.
  ASSERT_EQ(compiled.rateUpdates.size(), 4u);
  for (std::size_t i = 0; i < compiled.rateUpdates.size(); ++i) {
    const ScenarioRateUpdate& update = compiled.rateUpdates[i];
    EXPECT_EQ(update.tenant, -1);
    EXPECT_EQ(update.at, secondsF(0.5 * static_cast<double>(i + 1)));
    EXPECT_DOUBLE_EQ(update.multiplier,
                     scenarioEnvelopeAt(spec, 0, 0.5 * (i + 1)));
    if (i > 0) {
      EXPECT_GT(update.at, compiled.rateUpdates[i - 1].at);
    }
  }
}

TEST(ScenarioCompile, ChurnRoundRobinAndPhaseNormalization) {
  ScenarioSpec spec;
  spec.horizonS = 5.0;
  spec.churn = {{/*tenant=*/-1, /*joinS=*/1.0, /*leaveS=*/4.0, /*count=*/3}};
  spec.phases = {{"a", 2.0}, {"b", 4.0}};  // does not reach the horizon
  CompiledScenario compiled = compileScenario(spec, /*tenants=*/2);

  // tenant=-1 entries expand to one camera each, round-robin over tenants.
  ASSERT_EQ(compiled.churn.size(), 3u);
  EXPECT_EQ(compiled.churn[0].tenant, 0);
  EXPECT_EQ(compiled.churn[1].tenant, 1);
  EXPECT_EQ(compiled.churn[2].tenant, 0);
  for (const ScenarioChurnCamera& camera : compiled.churn) {
    EXPECT_EQ(camera.joinAt, secondsF(1.0));
    EXPECT_EQ(camera.leaveAt, secondsF(4.0));
  }

  // Phase boundaries are normalized to cover exactly [0, horizon].
  ASSERT_EQ(compiled.phaseEnds.size(), compiled.phaseNames.size());
  EXPECT_EQ(compiled.phaseEnds.back(), compiled.horizon);
  for (std::size_t i = 1; i < compiled.phaseEnds.size(); ++i) {
    EXPECT_GT(compiled.phaseEnds[i], compiled.phaseEnds[i - 1]);
  }
}

TEST(ScenarioCompile, FailureGroupsBecomeNodeDeathPlans) {
  ScenarioSpec spec;
  spec.horizonS = 8.0;
  spec.seed = 77;
  spec.detectionDelayS = 0.5;
  spec.failures = {{/*atS=*/3.0, /*tenant=*/0, /*count=*/0},   // whole rack
                   {/*atS=*/5.0, /*tenant=*/1, /*count=*/1},   // first node
                   {/*atS=*/6.0, /*tenant=*/9, /*count=*/0}};  // no such rack
  const std::vector<std::vector<std::string>> nodesByRack = {
      {"t-0-0", "t-0-1"}, {"t-1-0", "t-1-1"}};
  FaultPlan plan = compileScenarioFaults(spec, nodesByRack);

  EXPECT_EQ(plan.seed, 77u);
  EXPECT_EQ(plan.detectionDelay, secondsF(0.5));
  ASSERT_EQ(plan.events.size(), 3u);  // 2 (rack 0) + 1 (rack 1), group 3 gone
  EXPECT_EQ(plan.events[0].kind, FaultKind::kNodeDeath);
  EXPECT_EQ(plan.events[0].target, "t-0-0");
  EXPECT_EQ(plan.events[0].at, secondsF(3.0));
  EXPECT_EQ(plan.events[1].target, "t-0-1");
  EXPECT_EQ(plan.events[2].target, "t-1-0");
  EXPECT_EQ(plan.events[2].at, secondsF(5.0));
}

TEST(RateControl, PeriodForQuantizesToLattice) {
  const SimDuration nominal = framePeriod(15.0);
  // quantum = 0: plain llround — byte-compatible with the pre-lattice
  // degrader math the overload suite pins.
  EXPECT_EQ(StreamRateControl::periodFor(nominal, 1.0, SimDuration::zero()),
            nominal);
  EXPECT_EQ(
      StreamRateControl::periodFor(nominal, 0.75, SimDuration::zero()).count(),
      std::llround(static_cast<double>(nominal.count()) / 0.75));

  // quantum > 0: nearest multiple of the quantum, never below one quantum.
  const SimDuration q{1 << 20};
  for (double mult : {0.25, 0.5, 1.0, 1.7, 2.0, 64.0}) {
    const SimDuration period = StreamRateControl::periodFor(nominal, mult, q);
    EXPECT_EQ(period.count() % q.count(), 0) << mult;
    EXPECT_GE(period, q) << mult;
    EXPECT_LE(std::llabs(period.count() -
                         std::llround(static_cast<double>(nominal.count()) /
                                      mult)),
              q.count() / 2)
        << mult;
  }
  // Absurdly fast retune still lands on the lattice floor.
  EXPECT_EQ(StreamRateControl::periodFor(SimDuration{100}, 50.0, q), q);
}

TEST(RateControl, EnvelopeAndDegradeComposeWithoutLostUpdates) {
  Simulator sim;
  PeriodicTask task(sim, framePeriod(10.0), [] {});
  const SimDuration q{1 << 20};
  StreamRateControl rate(task, framePeriod(10.0), q);

  // The arbitration law: effective period = nominal / (envelope * degrade),
  // quantized. Either side updating must preserve the other's multiplier.
  rate.setEnvelope(2.0);
  EXPECT_EQ(task.period(),
            StreamRateControl::periodFor(framePeriod(10.0), 2.0, q));
  rate.setDegrade(0.5);
  EXPECT_EQ(task.period(),
            StreamRateControl::periodFor(framePeriod(10.0), 1.0, q));

  // Scenario retune with the degrader engaged: the degrade factor is NOT
  // clobbered (the classic lost update this type exists to prevent)...
  rate.setEnvelope(1.0);
  EXPECT_EQ(task.period(),
            StreamRateControl::periodFor(framePeriod(10.0), 0.5, q));
  // ...and the degrader stepping back up does not clobber the envelope.
  rate.setEnvelope(4.0);
  rate.setDegrade(1.0);
  EXPECT_EQ(task.period(),
            StreamRateControl::periodFor(framePeriod(10.0), 4.0, q));
  EXPECT_DOUBLE_EQ(rate.envelope(), 4.0);
  EXPECT_DOUBLE_EQ(rate.degrade(), 1.0);

  // Non-positive multipliers are treated as "no scaling", not division
  // blow-ups.
  rate.setEnvelope(0.0);
  rate.setDegrade(-2.0);
  EXPECT_EQ(task.period(),
            StreamRateControl::periodFor(framePeriod(10.0), 1.0, q));
}

}  // namespace
}  // namespace microedge
