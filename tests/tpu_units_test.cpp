// TpuUnit fixed-point arithmetic: the §4.1 duty-cycle metric.

#include <gtest/gtest.h>

#include "core/tpu_units.hpp"

namespace microedge {
namespace {

TEST(TpuUnitTest, PaperDutyCycleExample) {
  // 30 ms service at 10 FPS (100 ms period) -> 0.3 units.
  TpuUnit u = TpuUnit::fromDutyCycle(milliseconds(30), milliseconds(100));
  EXPECT_EQ(u.milli(), 300);
  EXPECT_DOUBLE_EQ(u.value(), 0.3);
}

TEST(TpuUnitTest, FromServiceAtFps) {
  EXPECT_EQ(TpuUnit::fromServiceAtFps(millisecondsF(23.3), 15.0).milli(), 350);
  EXPECT_EQ(TpuUnit::fromServiceAtFps(milliseconds(80), 15.0).milli(), 1200);
  EXPECT_TRUE(TpuUnit::fromServiceAtFps(milliseconds(10), 0.0).isZero());
}

TEST(TpuUnitTest, FromDoubleRounds) {
  EXPECT_EQ(TpuUnit::fromDouble(0.35).milli(), 350);
  EXPECT_EQ(TpuUnit::fromDouble(0.3499).milli(), 350);
  EXPECT_EQ(TpuUnit::fromDouble(1.2).milli(), 1200);
}

TEST(TpuUnitTest, ExactCapacityComparisons) {
  // The motivating fixed-point case: three 0.35-unit pods must NOT fit in
  // one TPU, two must.
  TpuUnit pod = TpuUnit::fromDouble(0.35);
  EXPECT_LE(pod + pod, TpuUnit::full());
  EXPECT_GT(pod + pod + pod, TpuUnit::full());

  // And 0.1 ten times must fit exactly (floating point would be ambiguous).
  TpuUnit tenth = TpuUnit::fromDouble(0.1);
  TpuUnit sum;
  for (int i = 0; i < 10; ++i) sum += tenth;
  EXPECT_EQ(sum, TpuUnit::full());
}

TEST(TpuUnitTest, Arithmetic) {
  TpuUnit a = TpuUnit::fromMilli(400);
  TpuUnit b = TpuUnit::fromMilli(250);
  EXPECT_EQ((a + b).milli(), 650);
  EXPECT_EQ((a - b).milli(), 150);
  a -= b;
  EXPECT_EQ(a.milli(), 150);
  EXPECT_EQ(TpuUnit::min(a, b), a);
  EXPECT_TRUE(TpuUnit::zero().isZero());
  EXPECT_FALSE(TpuUnit::zero().isPositive());
  EXPECT_TRUE(b.isPositive());
}

TEST(TpuUnitTest, Ordering) {
  EXPECT_LT(TpuUnit::fromMilli(1), TpuUnit::fromMilli(2));
  EXPECT_GE(TpuUnit::full(), TpuUnit::fromDouble(1.0));
  EXPECT_NE(TpuUnit::fromMilli(1), TpuUnit::fromMilli(2));
}

TEST(TpuUnitTest, ToString) {
  EXPECT_EQ(TpuUnit::fromDouble(0.35).toString(), "0.350");
  EXPECT_EQ(TpuUnit::full().toString(), "1.000");
}

}  // namespace
}  // namespace microedge
