// Unit tests for the util substrate: time, status, strings, rng, histogram.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace microedge {
namespace {

// ---- time -------------------------------------------------------------

TEST(TimeTest, ConstructorsAndConversions) {
  EXPECT_EQ(milliseconds(1).count(), 1000000);
  EXPECT_EQ(seconds(2), milliseconds(2000));
  EXPECT_EQ(minutes(1), seconds(60));
  EXPECT_DOUBLE_EQ(toMilliseconds(milliseconds(15)), 15.0);
  EXPECT_DOUBLE_EQ(toSeconds(seconds(3)), 3.0);
  EXPECT_NEAR(toMilliseconds(millisecondsF(23.3)), 23.3, 1e-9);
}

TEST(TimeTest, FramePeriod) {
  EXPECT_NEAR(toMilliseconds(framePeriod(15.0)), 66.6667, 1e-3);
  EXPECT_NEAR(toMilliseconds(framePeriod(10.0)), 100.0, 1e-6);
}

TEST(TimeTest, SimTimeArithmetic) {
  SimTime t = kSimEpoch + seconds(5);
  EXPECT_DOUBLE_EQ(toSecondsSinceEpoch(t), 5.0);
  EXPECT_EQ(t - kSimEpoch, seconds(5));
}

TEST(TimeTest, ToStringPicksUnits) {
  EXPECT_EQ(toString(nanoseconds(500)), "500ns");
  EXPECT_EQ(toString(microseconds(12)), "12.00us");
  EXPECT_EQ(toString(milliseconds(8)), "8.00ms");
  EXPECT_EQ(toString(seconds(3)), "3.000s");
}

// ---- status -----------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.isOk());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.toString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = resourceExhausted("no TPUs left");
  EXPECT_FALSE(s.isOk());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.toString().find("no TPUs left"), std::string::npos);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.isOk());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.valueOr(0), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = notFound("nope");
  EXPECT_FALSE(v.isOk());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.valueOr(-1), -1);
}

TEST(StatusOrTest, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.isOk());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return invalidArgument("bad"); };
  auto wrapper = [&]() -> Status {
    ME_RETURN_IF_ERROR(fails());
    return Status::ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInvalidArgument);
}

// ---- strings ----------------------------------------------------------

TEST(StringsTest, StrCat) {
  EXPECT_EQ(strCat("a", 1, "-", 2.5), "a1-2.5");
}

TEST(StringsTest, FmtDouble) {
  EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
  EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcdef", 4), "abcdef");
}

TEST(StringsTest, SplitAndTrim) {
  auto lines = splitLines("a\nb\n\nc");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_TRUE(startsWith("- item", "- "));
  EXPECT_FALSE(startsWith("-", "- "));
}

// ---- rng --------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.nextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Pcg32 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.nextBounded(17), 17u);
  }
  EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Pcg32 rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RngTest, PoissonMeanRoughlyCorrect) {
  Pcg32 rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, GaussianMoments) {
  Pcg32 rng(17);
  const int n = 40000;
  double sum = 0.0, sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.gaussian(10.0, 2.0);
    sum += v;
    sumSq += v * v;
  }
  double mean = sum / n;
  double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Pcg32 parent(21);
  Pcg32 child = parent.split();
  // Child and parent should not emit identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, ShuffleKeepsElements) {
  Pcg32 rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// ---- histogram / summary ------------------------------------------------

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(SummaryTest, Quantiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.p50(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 0.01);
}

TEST(SummaryTest, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.p99(), 0.0);
}

TEST(SummaryTest, Merge) {
  Summary a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(DurationSummaryTest, ReportsMilliseconds) {
  DurationSummary s;
  s.add(milliseconds(10));
  s.add(milliseconds(30));
  EXPECT_DOUBLE_EQ(s.meanMs(), 20.0);
  EXPECT_DOUBLE_EQ(s.maxMs(), 30.0);
}

TEST(HistogramTest, Bucketing) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(-1.0);
  h.add(42.0);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucketValue(0), 1u);
  EXPECT_EQ(h.bucketValue(1), 2u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_FALSE(h.render().empty());
}

}  // namespace
}  // namespace microedge
