// Orchestrator substrate: node registry accounting, the default CPU/memory
// scheduler's filter + least-allocated scoring, and the ApiServer admission
// pipeline with extension hooks.

#include <gtest/gtest.h>

#include "orch/api_server.hpp"

namespace microedge {
namespace {

PodSpec makeSpec(const std::string& name, long cpu = 500, long mem = 256) {
  PodSpec spec;
  spec.name = name;
  spec.resources = {cpu, mem};
  return spec;
}

// ---- NodeRegistry -----------------------------------------------------

TEST(NodeRegistryTest, AddRemoveReady) {
  NodeRegistry reg;
  EXPECT_TRUE(reg.addNode("n1", 4000, 8192).isOk());
  EXPECT_EQ(reg.addNode("n1", 4000, 8192).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(reg.addNode("", 4000, 8192).isOk());
  EXPECT_FALSE(reg.addNode("n2", 0, 8192).isOk());
  EXPECT_TRUE(reg.contains("n1"));
  EXPECT_TRUE(reg.setReady("n1", false).isOk());
  EXPECT_FALSE(reg.find("n1")->ready);
  EXPECT_TRUE(reg.removeNode("n1").isOk());
  EXPECT_EQ(reg.removeNode("n1").code(), StatusCode::kNotFound);
}

TEST(NodeRegistryTest, AllocateAndRelease) {
  NodeRegistry reg;
  ASSERT_TRUE(reg.addNode("n1", 4000, 8192).isOk());
  PodSpec spec = makeSpec("p1", 1500, 2048);
  EXPECT_TRUE(reg.allocate("n1", spec).isOk());
  EXPECT_EQ(reg.find("n1")->cpuFree(), 2500);
  EXPECT_EQ(reg.find("n1")->memFree(), 8192 - 2048);
  EXPECT_TRUE(reg.release("n1", spec).isOk());
  EXPECT_EQ(reg.find("n1")->cpuFree(), 4000);
}

TEST(NodeRegistryTest, RejectsOverAllocation) {
  NodeRegistry reg;
  ASSERT_TRUE(reg.addNode("n1", 1000, 1024).isOk());
  EXPECT_FALSE(reg.allocate("n1", makeSpec("p1", 2000, 100)).isOk());
  EXPECT_FALSE(reg.allocate("n1", makeSpec("p2", 100, 4096)).isOk());
  EXPECT_FALSE(reg.allocate("missing", makeSpec("p3")).isOk());
}

TEST(NodeRegistryTest, NotReadyNodeRejectsAllocations) {
  NodeRegistry reg;
  ASSERT_TRUE(reg.addNode("n1", 4000, 8192).isOk());
  ASSERT_TRUE(reg.setReady("n1", false).isOk());
  EXPECT_EQ(reg.allocate("n1", makeSpec("p1")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(NodeRegistryTest, AntiAffinityKeysBlockCohabitation) {
  NodeRegistry reg;
  ASSERT_TRUE(reg.addNode("n1", 4000, 8192).isOk());
  PodSpec a = makeSpec("a");
  a.antiAffinityKey = "camera";
  PodSpec b = makeSpec("b");
  b.antiAffinityKey = "camera";
  EXPECT_TRUE(reg.allocate("n1", a).isOk());
  EXPECT_FALSE(reg.allocate("n1", b).isOk());
  EXPECT_TRUE(reg.release("n1", a).isOk());
  EXPECT_TRUE(reg.allocate("n1", b).isOk());
}

TEST(NodeRegistryTest, ReleaseMoreThanAllocatedIsError) {
  NodeRegistry reg;
  ASSERT_TRUE(reg.addNode("n1", 4000, 8192).isOk());
  EXPECT_FALSE(reg.release("n1", makeSpec("ghost", 100, 100)).isOk());
  EXPECT_EQ(reg.find("n1")->cpuAllocated, 0);
}

// ---- DefaultScheduler ---------------------------------------------------

class DefaultSchedulerTest : public ::testing::Test {
 protected:
  DefaultSchedulerTest() : scheduler_(reg_) {
    EXPECT_TRUE(reg_.addNode("big", 8000, 16384, {{"tier", "edge"}}).isOk());
    EXPECT_TRUE(reg_.addNode("small", 2000, 2048, {{"tier", "edge"}}).isOk());
    EXPECT_TRUE(
        reg_.addNode("tpu-node", 4000, 8192, {{"tpu", "true"}}).isOk());
  }

  NodeRegistry reg_;
  DefaultScheduler scheduler_;
};

TEST_F(DefaultSchedulerTest, PrefersLeastAllocatedNode) {
  auto node = scheduler_.pickNode(makeSpec("p1"));
  ASSERT_TRUE(node.isOk());
  EXPECT_EQ(*node, "big");  // most free capacity after placement
}

TEST_F(DefaultSchedulerTest, SelectorFiltersNodes) {
  PodSpec spec = makeSpec("p1");
  spec.nodeSelector = {{"tpu", "true"}};
  auto nodes = scheduler_.feasibleNodes(spec);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], "tpu-node");
}

TEST_F(DefaultSchedulerTest, ResourceFilter) {
  auto nodes = scheduler_.feasibleNodes(makeSpec("p1", 3000, 1000));
  // "small" (2000m) is filtered out.
  EXPECT_EQ(nodes.size(), 2u);
  for (const auto& n : nodes) EXPECT_NE(n, "small");
}

TEST_F(DefaultSchedulerTest, NoFeasibleNodeIsResourceExhausted) {
  auto node = scheduler_.pickNode(makeSpec("p1", 99999, 10));
  EXPECT_FALSE(node.isOk());
  EXPECT_EQ(node.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(DefaultSchedulerTest, ScoresShiftWithAllocations) {
  // Saturate "big" so "tpu-node" wins the next placement.
  ASSERT_TRUE(reg_.allocate("big", makeSpec("hog", 7000, 12000)).isOk());
  auto node = scheduler_.pickNode(makeSpec("p2"));
  ASSERT_TRUE(node.isOk());
  EXPECT_EQ(*node, "tpu-node");
}

// ---- ApiServer ----------------------------------------------------------

class ApiServerTest : public ::testing::Test {
 protected:
  ApiServerTest() : api_(reg_) {
    EXPECT_TRUE(reg_.addNode("n1", 4000, 8192).isOk());
    EXPECT_TRUE(reg_.addNode("n2", 4000, 8192).isOk());
    api_.watch([this](const PodEvent& ev) { events_.push_back(ev); });
  }

  NodeRegistry reg_;
  ApiServer api_;
  std::vector<PodEvent> events_;
};

TEST_F(ApiServerTest, CreateBindsAndRuns) {
  auto uid = api_.createPod(makeSpec("p1"));
  ASSERT_TRUE(uid.isOk());
  const Pod* pod = api_.getPod(*uid);
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(pod->phase, PodPhase::kRunning);
  EXPECT_FALSE(pod->nodeName.empty());
  EXPECT_EQ(api_.liveCount(), 1u);
  ASSERT_EQ(events_.size(), 1u);
  EXPECT_EQ(events_[0].type, PodEventType::kRunning);
}

TEST_F(ApiServerTest, DuplicateNamesRejected) {
  ASSERT_TRUE(api_.createPod(makeSpec("p1")).isOk());
  EXPECT_EQ(api_.createPod(makeSpec("p1")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ApiServerTest, DeleteReleasesResources) {
  auto uid = api_.createPod(makeSpec("p1", 3000, 4000));
  ASSERT_TRUE(uid.isOk());
  const std::string node = api_.getPod(*uid)->nodeName;
  long freeBefore = reg_.find(node)->cpuFree();
  ASSERT_TRUE(api_.deletePod(*uid).isOk());
  EXPECT_EQ(reg_.find(node)->cpuFree(), freeBefore + 3000);
  EXPECT_FALSE(api_.isAlive(*uid));
  ASSERT_EQ(api_.terminatedPods().size(), 1u);
  EXPECT_EQ(api_.terminatedPods()[0].phase, PodPhase::kSucceeded);
  EXPECT_EQ(events_.back().type, PodEventType::kTerminated);
}

TEST_F(ApiServerTest, FailPodMarksFailed) {
  auto uid = api_.createPod(makeSpec("p1"));
  ASSERT_TRUE(uid.isOk());
  ASSERT_TRUE(api_.failPod(*uid).isOk());
  EXPECT_EQ(api_.terminatedPods()[0].phase, PodPhase::kFailed);
}

TEST_F(ApiServerTest, RejectionWhenClusterFull) {
  ASSERT_TRUE(api_.createPod(makeSpec("a", 4000, 100)).isOk());
  ASSERT_TRUE(api_.createPod(makeSpec("b", 4000, 100)).isOk());
  auto rejected = api_.createPod(makeSpec("c", 4000, 100));
  EXPECT_FALSE(rejected.isOk());
  EXPECT_EQ(events_.back().type, PodEventType::kRejected);
  EXPECT_EQ(api_.liveCount(), 2u);
}

TEST_F(ApiServerTest, TpuPodWithoutExtensionRejected) {
  // Vanilla K3s cannot allocate TPU units — the paper's whole premise.
  PodSpec spec = makeSpec("tpu-pod");
  spec.tpu = TpuRequest{"ssd-mobilenet-v2", 0.35};
  auto result = api_.createPod(spec);
  EXPECT_FALSE(result.isOk());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ApiServerTest, ExtensionChoosesNodeAndCanReject) {
  int calls = 0;
  api_.setSchedulerExtension(
      [&calls](const Pod& pod,
               const std::vector<std::string>& candidates) -> StatusOr<std::string> {
        ++calls;
        if (pod.spec.tpu->tpuUnits > 1.0) {
          return resourceExhausted("not enough TPUs");
        }
        return candidates.back();
      });
  PodSpec ok = makeSpec("ok");
  ok.tpu = TpuRequest{"m", 0.5};
  auto uid = api_.createPod(ok);
  ASSERT_TRUE(uid.isOk());
  EXPECT_EQ(calls, 1);

  PodSpec tooBig = makeSpec("too-big");
  tooBig.tpu = TpuRequest{"m", 2.5};
  EXPECT_FALSE(api_.createPod(tooBig).isOk());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(api_.liveCount(), 1u);
}

TEST_F(ApiServerTest, ExtensionNotCalledForPlainPods) {
  int calls = 0;
  api_.setSchedulerExtension(
      [&calls](const Pod&, const std::vector<std::string>& candidates)
          -> StatusOr<std::string> {
        ++calls;
        return candidates.front();
      });
  ASSERT_TRUE(api_.createPod(makeSpec("plain")).isOk());
  EXPECT_EQ(calls, 0);
}

TEST_F(ApiServerTest, FindByNameAndList) {
  ASSERT_TRUE(api_.createPod(makeSpec("a")).isOk());
  ASSERT_TRUE(api_.createPod(makeSpec("b")).isOk());
  EXPECT_NE(api_.findPodByName("a"), nullptr);
  EXPECT_EQ(api_.findPodByName("zzz"), nullptr);
  EXPECT_EQ(api_.livePods().size(), 2u);
  EXPECT_TRUE(api_.deletePodByName("a").isOk());
  EXPECT_EQ(api_.deletePodByName("a").code(), StatusCode::kNotFound);
}

TEST_F(ApiServerTest, ClockStampsPods) {
  SimTime fake = kSimEpoch + seconds(42);
  NodeRegistry reg;
  ASSERT_TRUE(reg.addNode("n", 4000, 8192).isOk());
  ApiServer api(reg, [&fake] { return fake; });
  auto uid = api.createPod(makeSpec("p"));
  ASSERT_TRUE(uid.isOk());
  EXPECT_EQ(api.getPod(*uid)->createdAt, fake);
  fake += seconds(10);
  ASSERT_TRUE(api.deletePod(*uid).isOk());
  EXPECT_EQ(api.terminatedPods()[0].finishedAt, kSimEpoch + seconds(52));
}

}  // namespace
}  // namespace microedge
