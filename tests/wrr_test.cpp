// Weighted round-robin schedulers: proportionality, smoothness (the WFQ
// spread property) and the burst variant's contrasting behaviour. Includes
// parameterized property sweeps over weight mixes.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "dataplane/wrr.hpp"
#include "util/strings.hpp"

namespace microedge {
namespace {

std::vector<WrrTarget> makeTargets(const std::vector<std::uint32_t>& weights) {
  std::vector<WrrTarget> out;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    out.push_back(WrrTarget{strCat("t", i), weights[i]});
  }
  return out;
}

TEST(SmoothWrrTest, RejectsBadTargets) {
  SmoothWrr wrr;
  EXPECT_FALSE(wrr.setTargets({}).isOk());
  EXPECT_FALSE(wrr.setTargets({WrrTarget{"", 1}}).isOk());
  EXPECT_FALSE(wrr.setTargets({WrrTarget{"a", 0}}).isOk());
}

TEST(SmoothWrrTest, SingleTargetAlwaysPicked) {
  SmoothWrr wrr;
  ASSERT_TRUE(wrr.setTargets({WrrTarget{"only", 350}}).isOk());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(wrr.pick(), "only");
}

TEST(SmoothWrrTest, TwoToOneInterleavesSmoothly) {
  // The paper's §4.3 example: 0.4 vs 0.2 units -> 66% / 33% split. Smooth
  // WRR must not emit the heavy target more than twice in a row.
  SmoothWrr wrr;
  ASSERT_TRUE(wrr.setTargets({WrrTarget{"a", 400}, WrrTarget{"b", 200}}).isOk());
  int maxRun = 0, run = 0;
  std::string prev;
  for (int i = 0; i < 300; ++i) {
    std::string pick = wrr.pick();
    run = (pick == prev) ? run + 1 : 1;
    maxRun = std::max(maxRun, run);
    prev = pick;
  }
  EXPECT_EQ(wrr.pickCount("a"), 200u);
  EXPECT_EQ(wrr.pickCount("b"), 100u);
  EXPECT_LE(maxRun, 2);
}

TEST(BurstWrrTest, SameProportionsWorstSpread) {
  BurstWrr wrr;
  ASSERT_TRUE(wrr.setTargets({WrrTarget{"a", 400}, WrrTarget{"b", 200}}).isOk());
  // gcd reduction -> bursts of 2 and 1.
  std::vector<std::string> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(wrr.pick());
  EXPECT_EQ(picks,
            (std::vector<std::string>{"a", "a", "b", "a", "a", "b"}));
}

// Property sweep: exact proportionality over one full period, and the
// smoothness bound (over any window of n picks, each target is picked
// within +-1 of its proportional share).
class WrrPropertyTest
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(WrrPropertyTest, ExactProportionsOverOnePeriod) {
  SmoothWrr wrr;
  ASSERT_TRUE(wrr.setTargets(makeTargets(GetParam())).isOk());
  std::uint64_t period = wrr.totalWeight();
  std::map<std::string, std::uint64_t> counts;
  for (std::uint64_t i = 0; i < period; ++i) counts[wrr.pick()]++;
  for (std::size_t i = 0; i < wrr.targets().size(); ++i) {
    EXPECT_EQ(counts[wrr.targets()[i].id], wrr.targets()[i].weight)
        << "target " << i;
  }
}

TEST_P(WrrPropertyTest, SmoothnessBoundOverSlidingWindows) {
  SmoothWrr wrr;
  ASSERT_TRUE(wrr.setTargets(makeTargets(GetParam())).isOk());
  std::uint64_t period = wrr.totalWeight();
  std::vector<std::string> picks;
  for (std::uint64_t i = 0; i < period * 3; ++i) picks.push_back(wrr.pick());

  // For each target and each window of length w, the count must stay within
  // +-1 of w * weight / total (smooth WRR's defining spread property).
  for (const WrrTarget& target : wrr.targets()) {
    double share =
        static_cast<double>(target.weight) / static_cast<double>(period);
    for (std::size_t w : {period / 2 + 1, period}) {
      if (w == 0 || w > picks.size()) continue;
      std::size_t count = 0;
      for (std::size_t i = 0; i < w; ++i) {
        if (picks[i] == target.id) ++count;
      }
      for (std::size_t start = 0;; ++start) {
        double expected = share * static_cast<double>(w);
        // Prefix deviation of smooth WRR is < 1; a sliding window is the
        // difference of two prefixes, so its deviation stays < 2.
        EXPECT_LE(std::abs(static_cast<double>(count) - expected), 2.0)
            << "target " << target.id << " window [" << start << ", "
            << start + w << ")";
        if (start + w >= picks.size()) break;
        count -= picks[start] == target.id ? 1 : 0;
        count += picks[start + w] == target.id ? 1 : 0;
      }
    }
  }
}

TEST_P(WrrPropertyTest, BurstMatchesProportionsOverOnePeriod) {
  BurstWrr wrr;
  auto targets = makeTargets(GetParam());
  ASSERT_TRUE(wrr.setTargets(targets).isOk());
  std::uint64_t total = 0;
  std::uint32_t g = 0;
  for (auto& t : targets) g = std::gcd(g, t.weight);
  for (auto& t : targets) total += t.weight / g;
  std::map<std::string, std::uint64_t> counts;
  for (std::uint64_t i = 0; i < total; ++i) counts[wrr.pick()]++;
  for (auto& t : targets) {
    EXPECT_EQ(counts[t.id], t.weight / g) << t.id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeightMixes, WrrPropertyTest,
    ::testing::Values(std::vector<std::uint32_t>{1, 1},
                      std::vector<std::uint32_t>{400, 200},
                      std::vector<std::uint32_t>{350, 350, 300},
                      std::vector<std::uint32_t>{5, 1},
                      std::vector<std::uint32_t>{7, 3, 2},
                      std::vector<std::uint32_t>{650, 350},
                      std::vector<std::uint32_t>{1000, 200, 150, 100}));

}  // namespace
}  // namespace microedge
