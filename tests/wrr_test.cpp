// Weighted round-robin schedulers: proportionality, smoothness (the WFQ
// spread property) and the burst variant's contrasting behaviour. Includes
// parameterized property sweeps over weight mixes.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "dataplane/wrr.hpp"
#include "util/strings.hpp"

namespace microedge {
namespace {

std::vector<WrrTarget> makeTargets(const std::vector<std::uint32_t>& weights) {
  std::vector<WrrTarget> out;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    out.push_back(WrrTarget{strCat("t", i), weights[i]});
  }
  return out;
}

TEST(SmoothWrrTest, RejectsBadTargets) {
  SmoothWrr wrr;
  EXPECT_FALSE(wrr.setTargets({}).isOk());
  EXPECT_FALSE(wrr.setTargets({WrrTarget{"", 1}}).isOk());
  EXPECT_FALSE(wrr.setTargets({WrrTarget{"a", 0}}).isOk());
}

TEST(SmoothWrrTest, SingleTargetAlwaysPicked) {
  SmoothWrr wrr;
  ASSERT_TRUE(wrr.setTargets({WrrTarget{"only", 350}}).isOk());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(wrr.pick(), "only");
}

TEST(SmoothWrrTest, TwoToOneInterleavesSmoothly) {
  // The paper's §4.3 example: 0.4 vs 0.2 units -> 66% / 33% split. Smooth
  // WRR must not emit the heavy target more than twice in a row.
  SmoothWrr wrr;
  ASSERT_TRUE(wrr.setTargets({WrrTarget{"a", 400}, WrrTarget{"b", 200}}).isOk());
  int maxRun = 0, run = 0;
  std::string prev;
  for (int i = 0; i < 300; ++i) {
    std::string pick = wrr.pick();
    run = (pick == prev) ? run + 1 : 1;
    maxRun = std::max(maxRun, run);
    prev = pick;
  }
  EXPECT_EQ(wrr.pickCount("a"), 200u);
  EXPECT_EQ(wrr.pickCount("b"), 100u);
  EXPECT_LE(maxRun, 2);
}

TEST(BurstWrrTest, SameProportionsWorstSpread) {
  BurstWrr wrr;
  ASSERT_TRUE(wrr.setTargets({WrrTarget{"a", 400}, WrrTarget{"b", 200}}).isOk());
  // gcd reduction -> bursts of 2 and 1.
  std::vector<std::string> picks;
  for (int i = 0; i < 6; ++i) picks.push_back(wrr.pick());
  EXPECT_EQ(picks,
            (std::vector<std::string>{"a", "a", "b", "a", "a", "b"}));
}

// Property sweep: exact proportionality over one full period, and the
// smoothness bound (over any window of n picks, each target is picked
// within +-1 of its proportional share).
class WrrPropertyTest
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(WrrPropertyTest, ExactProportionsOverOnePeriod) {
  SmoothWrr wrr;
  ASSERT_TRUE(wrr.setTargets(makeTargets(GetParam())).isOk());
  std::uint64_t period = wrr.totalWeight();
  std::map<std::string, std::uint64_t> counts;
  for (std::uint64_t i = 0; i < period; ++i) counts[wrr.pick()]++;
  for (std::size_t i = 0; i < wrr.targets().size(); ++i) {
    EXPECT_EQ(counts[wrr.targets()[i].id], wrr.targets()[i].weight)
        << "target " << i;
  }
}

TEST_P(WrrPropertyTest, SmoothnessBoundOverSlidingWindows) {
  SmoothWrr wrr;
  ASSERT_TRUE(wrr.setTargets(makeTargets(GetParam())).isOk());
  std::uint64_t period = wrr.totalWeight();
  std::vector<std::string> picks;
  for (std::uint64_t i = 0; i < period * 3; ++i) picks.push_back(wrr.pick());

  // For each target and each window of length w, the count must stay within
  // +-1 of w * weight / total (smooth WRR's defining spread property).
  for (const WrrTarget& target : wrr.targets()) {
    double share =
        static_cast<double>(target.weight) / static_cast<double>(period);
    for (std::size_t w : {period / 2 + 1, period}) {
      if (w == 0 || w > picks.size()) continue;
      std::size_t count = 0;
      for (std::size_t i = 0; i < w; ++i) {
        if (picks[i] == target.id) ++count;
      }
      for (std::size_t start = 0;; ++start) {
        double expected = share * static_cast<double>(w);
        // Prefix deviation of smooth WRR is < 1; a sliding window is the
        // difference of two prefixes, so its deviation stays < 2.
        EXPECT_LE(std::abs(static_cast<double>(count) - expected), 2.0)
            << "target " << target.id << " window [" << start << ", "
            << start + w << ")";
        if (start + w >= picks.size()) break;
        count -= picks[start] == target.id ? 1 : 0;
        count += picks[start + w] == target.id ? 1 : 0;
      }
    }
  }
}

TEST_P(WrrPropertyTest, BurstMatchesProportionsOverOnePeriod) {
  BurstWrr wrr;
  auto targets = makeTargets(GetParam());
  ASSERT_TRUE(wrr.setTargets(targets).isOk());
  std::uint64_t total = 0;
  std::uint32_t g = 0;
  for (auto& t : targets) g = std::gcd(g, t.weight);
  for (auto& t : targets) total += t.weight / g;
  std::map<std::string, std::uint64_t> counts;
  for (std::uint64_t i = 0; i < total; ++i) counts[wrr.pick()]++;
  for (auto& t : targets) {
    EXPECT_EQ(counts[t.id], t.weight / g) << t.id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeightMixes, WrrPropertyTest,
    ::testing::Values(std::vector<std::uint32_t>{1, 1},
                      std::vector<std::uint32_t>{400, 200},
                      std::vector<std::uint32_t>{350, 350, 300},
                      std::vector<std::uint32_t>{5, 1},
                      std::vector<std::uint32_t>{7, 3, 2},
                      std::vector<std::uint32_t>{650, 350},
                      std::vector<std::uint32_t>{1000, 200, 150, 100}));

// Batched picking must be *identical* to single picks — the batch path is
// an optimization (the precomputed periodic schedule), never a different
// scheduler. Tested in both regimes: the cached cycle and the linear
// fallback for degenerate weight sets whose period exceeds the cap.

TEST_P(WrrPropertyTest, BatchMatchesSinglePicks) {
  SmoothWrr single, batched;
  ASSERT_TRUE(single.setTargets(makeTargets(GetParam())).isOk());
  ASSERT_TRUE(batched.setTargets(makeTargets(GetParam())).isOk());

  // Cover several periods with a mix of batch sizes, including k spanning
  // the period boundary and k == 0.
  std::vector<std::uint32_t> got;
  std::vector<std::uint32_t> want;
  std::uint64_t period = single.totalWeight();
  std::vector<std::size_t> batchSizes = {
      1, 3, 0, static_cast<std::size_t>(period),
      static_cast<std::size_t>(period) + 2, 7};
  for (std::size_t k : batchSizes) {
    batched.pickBatch(k, got);
    for (std::size_t j = 0; j < k; ++j) {
      want.push_back(static_cast<std::uint32_t>(single.pickIndex()));
    }
  }
  EXPECT_EQ(got, want);
  for (const WrrTarget& t : single.targets()) {
    EXPECT_EQ(batched.pickCount(t.id), single.pickCount(t.id)) << t.id;
  }
}

TEST_P(WrrPropertyTest, InterleavedBatchAndSingleMatchesAllSingles) {
  SmoothWrr mixed, reference;
  ASSERT_TRUE(mixed.setTargets(makeTargets(GetParam())).isOk());
  ASSERT_TRUE(reference.setTargets(makeTargets(GetParam())).isOk());

  std::vector<std::uint32_t> got;
  for (int round = 0; round < 5; ++round) {
    got.push_back(static_cast<std::uint32_t>(mixed.pickIndex()));
    mixed.pickBatch(static_cast<std::size_t>(round) + 2, got);
  }
  std::vector<std::uint32_t> want;
  for (std::size_t j = 0; j < got.size(); ++j) {
    want.push_back(static_cast<std::uint32_t>(reference.pickIndex()));
  }
  EXPECT_EQ(got, want);
}

TEST(SmoothWrrBatchTest, CycleCacheActiveForTypicalWeights) {
  SmoothWrr wrr;
  ASSERT_TRUE(wrr.setTargets({WrrTarget{"a", 400}, WrrTarget{"b", 200}}).isOk());
  EXPECT_EQ(wrr.cyclePeriod(), 0u);  // deferred until the first pick
  wrr.pickIndex();
  EXPECT_EQ(wrr.cyclePeriod(), 3u);  // 400:200 reduces to 2:1, period 3
}

TEST(SmoothWrrBatchTest, DegeneratePeriodFallsBackAndStillMatches) {
  // Coprime weights above the cap: reduced period 4099 + 2 > kMaxCyclePeriod,
  // so the cache is skipped — and the batch must still equal single picks.
  std::vector<WrrTarget> targets = {WrrTarget{"big", 4099},
                                    WrrTarget{"small", 2}};
  ASSERT_GT(4099u + 2u, SmoothWrr::kMaxCyclePeriod);
  SmoothWrr single, batched;
  ASSERT_TRUE(single.setTargets(targets).isOk());
  ASSERT_TRUE(batched.setTargets(targets).isOk());
  batched.pickIndex();
  EXPECT_EQ(batched.cyclePeriod(), 0u);  // fallback regime

  std::vector<std::uint32_t> got;
  batched.pickBatch(5000, got);
  single.pickIndex();
  for (std::size_t j = 0; j < 5000; ++j) {
    EXPECT_EQ(got[j], static_cast<std::uint32_t>(single.pickIndex())) << j;
  }
}

TEST(SmoothWrrBatchTest, SetTargetsResetsTheSchedule) {
  SmoothWrr wrr;
  ASSERT_TRUE(wrr.setTargets({WrrTarget{"a", 2}, WrrTarget{"b", 1}}).isOk());
  std::vector<std::uint32_t> first;
  wrr.pickBatch(5, first);
  ASSERT_TRUE(wrr.setTargets({WrrTarget{"a", 2}, WrrTarget{"b", 1}}).isOk());
  std::vector<std::uint32_t> second;
  wrr.pickBatch(5, second);
  EXPECT_EQ(first, second);  // reconfigure restarts from the schedule start
}

}  // namespace
}  // namespace microedge
