// PodSpec <-> YAML binding: the §4.1 client interface with the two
// MicroEdge extension knobs.

#include <gtest/gtest.h>

#include "orch/spec.hpp"

namespace microedge {
namespace {

constexpr const char* kFullSpec =
    "name: camera-03\n"
    "image: coral-pie:1.4\n"
    "fps: 15\n"
    "resources:\n"
    "  cpu: 500m\n"
    "  memory: 256Mi\n"
    "  tpu-units: 0.35\n"
    "  model: ssd-mobilenet-v2\n"
    "labels:\n"
    "  app: coral-pie\n"
    "nodeSelector:\n"
    "  tier: edge\n"
    "antiAffinity: coral-pie-camera\n";

TEST(SpecTest, ParsesFullSpec) {
  auto spec = podSpecFromYaml(std::string(kFullSpec));
  ASSERT_TRUE(spec.isOk()) << spec.status();
  EXPECT_EQ(spec->name, "camera-03");
  EXPECT_EQ(spec->image, "coral-pie:1.4");
  EXPECT_DOUBLE_EQ(spec->fps, 15.0);
  EXPECT_EQ(spec->resources.cpuMillicores, 500);
  EXPECT_EQ(spec->resources.memoryMb, 256);
  ASSERT_TRUE(spec->tpu.has_value());
  EXPECT_EQ(spec->tpu->model, "ssd-mobilenet-v2");
  EXPECT_NEAR(spec->tpu->tpuUnits, 0.35, 1e-12);
  EXPECT_EQ(spec->labels.at("app"), "coral-pie");
  EXPECT_EQ(spec->nodeSelector.at("tier"), "edge");
  EXPECT_EQ(spec->antiAffinityKey, "coral-pie-camera");
}

TEST(SpecTest, MinimalSpecWithoutTpu) {
  auto spec = podSpecFromYaml("name: plain\n");
  ASSERT_TRUE(spec.isOk());
  EXPECT_EQ(spec->name, "plain");
  EXPECT_FALSE(spec->tpu.has_value());
}

TEST(SpecTest, NameIsRequired) {
  EXPECT_FALSE(podSpecFromYaml("image: x\n").isOk());
}

TEST(SpecTest, TpuUnitsAndModelMustComeTogether) {
  EXPECT_FALSE(
      podSpecFromYaml("name: a\nresources:\n  tpu-units: 0.5\n").isOk());
  EXPECT_FALSE(
      podSpecFromYaml("name: a\nresources:\n  model: mobilenet-v1\n").isOk());
}

TEST(SpecTest, TpuUnitsMustBePositive) {
  EXPECT_FALSE(podSpecFromYaml("name: a\nresources:\n  tpu-units: 0\n"
                               "  model: m\n")
                   .isOk());
  EXPECT_FALSE(podSpecFromYaml("name: a\nresources:\n  tpu-units: -0.2\n"
                               "  model: m\n")
                   .isOk());
}

TEST(SpecTest, UnitsAboveOneAreLegal) {
  // BodyPix requests 1.2 units; workload partitioning handles it.
  auto spec = podSpecFromYaml(
      "name: seg\nresources:\n  tpu-units: 1.2\n  model: bodypix\n");
  ASSERT_TRUE(spec.isOk());
  EXPECT_NEAR(spec->tpu->tpuUnits, 1.2, 1e-12);
}

TEST(SpecTest, CpuUnitSyntax) {
  EXPECT_EQ(*parseCpuMillicores("500m"), 500);
  EXPECT_EQ(*parseCpuMillicores("1"), 1000);
  EXPECT_EQ(*parseCpuMillicores("2.5"), 2500);
  EXPECT_FALSE(parseCpuMillicores("").isOk());
  EXPECT_FALSE(parseCpuMillicores("abc").isOk());
  EXPECT_FALSE(parseCpuMillicores("-1").isOk());
  EXPECT_FALSE(parseCpuMillicores("12mx").isOk());
}

TEST(SpecTest, MemoryUnitSyntax) {
  EXPECT_EQ(*parseMemoryMb("256Mi"), 256);
  EXPECT_EQ(*parseMemoryMb("2Gi"), 2048);
  EXPECT_EQ(*parseMemoryMb("512"), 512);
  EXPECT_FALSE(parseMemoryMb("lots").isOk());
  EXPECT_FALSE(parseMemoryMb("").isOk());
}

TEST(SpecTest, NegativeFpsRejected) {
  EXPECT_FALSE(podSpecFromYaml("name: a\nfps: -5\n").isOk());
}

TEST(SpecTest, RoundTripThroughYaml) {
  auto spec = podSpecFromYaml(std::string(kFullSpec));
  ASSERT_TRUE(spec.isOk());
  std::string rendered = podSpecToYaml(*spec);
  auto reparsed = podSpecFromYaml(rendered);
  ASSERT_TRUE(reparsed.isOk()) << reparsed.status() << "\n" << rendered;
  EXPECT_EQ(reparsed->name, spec->name);
  EXPECT_EQ(reparsed->resources.cpuMillicores, spec->resources.cpuMillicores);
  EXPECT_EQ(reparsed->resources.memoryMb, spec->resources.memoryMb);
  EXPECT_NEAR(reparsed->tpu->tpuUnits, spec->tpu->tpuUnits, 1e-9);
  EXPECT_EQ(reparsed->tpu->model, spec->tpu->model);
  EXPECT_EQ(reparsed->labels, spec->labels);
  EXPECT_EQ(reparsed->nodeSelector, spec->nodeSelector);
  EXPECT_EQ(reparsed->antiAffinityKey, spec->antiAffinityKey);
}

TEST(SpecTest, MalformedYamlSurfacesParserError) {
  auto spec = podSpecFromYaml("name: a\n\tbad: tab\n");
  ASSERT_FALSE(spec.isOk());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace microedge
