#pragma once

// Data-plane assembly: instantiates one TPU Service per physical TPU at
// cluster boot (as MicroEdge does at system initialization) and provides
// the glue the control plane needs — a Load executor for the extended
// scheduler and a client factory for application pods.
//
// Reliability glue: the DataPlane keeps a registry of the clients it
// created; removeService() broadcasts the removal so every in-flight frame
// addressed to the dead service fails over or terminates immediately
// (fail-fast) instead of waiting for its arrival event. Clients unregister
// themselves on destruction, so the registry never dangles regardless of
// which side dies first.
//
// Sharded runs: one DataPlane serves every shard. The string->service map
// is immutable after construction and service objects are never destroyed
// by removal (so a frame mid-invoke on another shard never chases a freed
// pointer); what changes is the per-shard dense view serviceViews_[shard]
// — "is this service alive, as observed by this shard?". removeService()
// must run on the failed TPU's owner shard: it nulls that shard's view and
// notifies that shard's clients synchronously (identical to solo), then
// posts the same removal notice to every other shard one lookahead later —
// exactly the failure-detection broadcast latency the conservative window
// already budgets for. Clients are bucketed per shard so the broadcast
// touches only shard-local client state. The solo constructor wraps the
// single Simulator in an owned SoloRouter; every code path is shared and
// shard 0 is the only shard.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/topology.hpp"
#include "dataplane/tpu_client.hpp"
#include "dataplane/tpu_service.hpp"
#include "dataplane/transport.hpp"
#include "sim/sharded_sim.hpp"
#include "util/backoff.hpp"

namespace microedge {

class DataPlane {
 public:
  DataPlane(Simulator& sim, const ClusterTopology& topology,
            const ModelRegistry& registry);
  DataPlane(ShardRouter& router, const ClusterTopology& topology,
            const ModelRegistry& registry);
  ~DataPlane();

  DataPlane(const DataPlane&) = delete;
  DataPlane& operator=(const DataPlane&) = delete;

  SimTransport& transport() { return transport_; }
  ShardRouter& router() { return router_; }

  // Service lookups resolve against the CALLING shard's view: a service
  // removed on its owner shard stays visible to other shards for up to one
  // lookahead (the modelled detection delay), exactly as the window
  // discipline requires. Solo: there is one view and the behaviour is the
  // pre-sharding one.
  TpuService* service(const std::string& tpuId);
  // Dense-handle lookup (what per-frame routing uses): one bounds-checked
  // vector index, no string map probe.
  TpuService* serviceById(TpuId tpu);
  std::vector<TpuService*> services();
  std::size_t serviceCount() const {
    return liveCount_[ShardRouter::currentShard()];
  }

  // Removes a TPU Service (node failure injection) and fails fast: every
  // registered client immediately fails over or terminates its in-flight
  // frames addressed to the removed service. Sharded runs: must execute on
  // the service's owner shard; other shards observe the removal one
  // lookahead later.
  void removeService(const std::string& tpuId);

  // ExtendedScheduler::Callbacks::loadModel implementation.
  Status executeLoad(const LoadCommand& command);

  // Async Load with bounded exponential backoff, for transient service
  // faults (hung TPU Service mid-recovery). Retries are ordinary simulator
  // events on the calling shard; `done` (optional) fires with the final
  // status — synchronously when the first attempt succeeds or the target
  // service is gone (permanent failure: retrying a removed service is
  // pointless).
  using LoadDone = MoveFn<void(const Status&)>;
  void executeLoadWithRetry(LoadCommand command, ExpBackoff backoff,
                            LoadDone done);
  std::uint64_t loadRetries() const;

  // Creates the client library instance baked into an application pod and
  // registers it for fail-fast service-removal broadcasts. The client is
  // bound to its node's shard: its Simulator& is that shard's event loop.
  std::unique_ptr<TpuClient> makeClient(std::string clientNode,
                                        std::string model,
                                        LbSpread spread = LbSpread::kSmooth);
  // Same, with the reliability knobs (deadline / failover / breaker) set.
  std::unique_ptr<TpuClient> makeClient(TpuClient::Config config);
  std::size_t clientCount() const { return clients_.size(); }

 private:
  DataPlane(const ClusterTopology& topology, const ModelRegistry& registry,
            std::unique_ptr<SoloRouter> solo, ShardRouter* router);

  void retryLoad(LoadCommand command, ExpBackoff backoff,
                 std::uint32_t attempt, LoadDone done);
  // Applies the removal on one shard: nulls the view entry and notifies the
  // shard's clients. Returns false if that shard already saw the removal.
  bool removeFromShard(unsigned shard, TpuId handle);

  std::unique_ptr<SoloRouter> soloRouter_;  // owns the router in solo mode
  ShardRouter& router_;
  const ModelRegistry& registry_;
  SimTransport transport_;
  // Immutable after construction: keys AND values live for the plane's
  // lifetime (removal is a per-shard view change, never a destruction).
  std::map<std::string, std::unique_ptr<TpuService>> services_;
  // [shard][TpuId.value] -> service, or nullptr where removed (or the
  // handle belongs to another cluster instance). Each inner vector is
  // written only by its own shard after construction.
  std::vector<std::vector<TpuService*>> serviceViews_;
  std::vector<std::size_t> liveCount_;  // live services per shard view
  // Live clients created by makeClient (they unregister on destruction);
  // clients_ is the teardown registry, clientsByShard_ the broadcast fan-
  // out. Both mutate only during single-threaded setup/teardown.
  std::vector<TpuClient*> clients_;
  std::vector<std::vector<TpuClient*>> clientsByShard_;
  std::vector<std::uint64_t> loadRetriesByShard_;
  // Next auto-assigned TpuClient::Config::streamToken (see makeClient).
  std::uint64_t nextStreamToken_ = 1;
};

}  // namespace microedge
