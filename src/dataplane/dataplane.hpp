#pragma once

// Data-plane assembly: instantiates one TPU Service per physical TPU at
// cluster boot (as MicroEdge does at system initialization) and provides
// the glue the control plane needs — a Load executor for the extended
// scheduler and a client factory for application pods.
//
// Reliability glue: the DataPlane keeps a registry of the clients it
// created; removeService() broadcasts the removal so every in-flight frame
// addressed to the dead service fails over or terminates immediately
// (fail-fast) instead of waiting for its arrival event. Clients unregister
// themselves on destruction, so the registry never dangles regardless of
// which side dies first.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/topology.hpp"
#include "dataplane/tpu_client.hpp"
#include "dataplane/tpu_service.hpp"
#include "dataplane/transport.hpp"
#include "util/backoff.hpp"

namespace microedge {

class DataPlane {
 public:
  DataPlane(Simulator& sim, const ClusterTopology& topology,
            const ModelRegistry& registry);
  ~DataPlane();

  DataPlane(const DataPlane&) = delete;
  DataPlane& operator=(const DataPlane&) = delete;

  SimTransport& transport() { return transport_; }

  TpuService* service(const std::string& tpuId);
  // Dense-handle lookup (what per-frame routing uses): one bounds-checked
  // vector index, no string map probe.
  TpuService* serviceById(TpuId tpu);
  std::vector<TpuService*> services();
  std::size_t serviceCount() const { return services_.size(); }

  // Removes a TPU Service (node failure injection) and fails fast: every
  // registered client immediately fails over or terminates its in-flight
  // frames addressed to the removed service.
  void removeService(const std::string& tpuId);

  // ExtendedScheduler::Callbacks::loadModel implementation.
  Status executeLoad(const LoadCommand& command);

  // Async Load with bounded exponential backoff, for transient service
  // faults (hung TPU Service mid-recovery). Retries are ordinary simulator
  // events; `done` (optional) fires with the final status — synchronously
  // when the first attempt succeeds or the target service is gone
  // (permanent failure: retrying a removed service is pointless).
  using LoadDone = MoveFn<void(const Status&)>;
  void executeLoadWithRetry(LoadCommand command, ExpBackoff backoff,
                            LoadDone done);
  std::uint64_t loadRetries() const { return loadRetries_; }

  // Creates the client library instance baked into an application pod and
  // registers it for fail-fast service-removal broadcasts.
  std::unique_ptr<TpuClient> makeClient(std::string clientNode,
                                        std::string model,
                                        LbSpread spread = LbSpread::kSmooth);
  // Same, with the reliability knobs (deadline / failover / breaker) set.
  std::unique_ptr<TpuClient> makeClient(TpuClient::Config config);
  std::size_t clientCount() const { return clients_.size(); }

 private:
  void retryLoad(LoadCommand command, ExpBackoff backoff,
                 std::uint32_t attempt, LoadDone done);

  Simulator& sim_;
  const ModelRegistry& registry_;
  SimTransport transport_;
  std::map<std::string, std::unique_ptr<TpuService>> services_;
  // Indexed by TpuId.value; nullptr where the service was removed or the
  // handle belongs to another cluster instance.
  std::vector<TpuService*> serviceById_;
  // Live clients created by makeClient (they unregister on destruction).
  std::vector<TpuClient*> clients_;
  std::uint64_t loadRetries_ = 0;
};

}  // namespace microedge
