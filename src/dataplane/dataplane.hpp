#pragma once

// Data-plane assembly: instantiates one TPU Service per physical TPU at
// cluster boot (as MicroEdge does at system initialization) and provides
// the glue the control plane needs — a Load executor for the extended
// scheduler and a client factory for application pods.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/topology.hpp"
#include "dataplane/tpu_client.hpp"
#include "dataplane/tpu_service.hpp"
#include "dataplane/transport.hpp"

namespace microedge {

class DataPlane {
 public:
  DataPlane(Simulator& sim, const ClusterTopology& topology,
            const ModelRegistry& registry);

  DataPlane(const DataPlane&) = delete;
  DataPlane& operator=(const DataPlane&) = delete;

  SimTransport& transport() { return transport_; }

  TpuService* service(const std::string& tpuId);
  // Dense-handle lookup (what per-frame routing uses): one bounds-checked
  // vector index, no string map probe.
  TpuService* serviceById(TpuId tpu);
  std::vector<TpuService*> services();
  std::size_t serviceCount() const { return services_.size(); }

  // Removes a TPU Service (node failure injection). Clients routing to it
  // will drop frames until reconfigured.
  void removeService(const std::string& tpuId);

  // ExtendedScheduler::Callbacks::loadModel implementation.
  Status executeLoad(const LoadCommand& command);

  // Creates the client library instance baked into an application pod.
  std::unique_ptr<TpuClient> makeClient(std::string clientNode,
                                        std::string model,
                                        LbSpread spread = LbSpread::kSmooth);

 private:
  Simulator& sim_;
  const ModelRegistry& registry_;
  SimTransport transport_;
  std::map<std::string, std::unique_ptr<TpuService>> services_;
  // Indexed by TpuId.value; nullptr where the service was removed or the
  // handle belongs to another cluster instance.
  std::vector<TpuService*> serviceById_;
};

}  // namespace microedge
