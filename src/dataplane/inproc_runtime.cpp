#include "dataplane/inproc_runtime.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace microedge {

InprocTpuService::InprocTpuService(const ModelRegistry& registry,
                                   Config config)
    : registry_(registry), config_(std::move(config)),
      worker_([this] { workerLoop(); }) {}

InprocTpuService::~InprocTpuService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

std::chrono::nanoseconds InprocTpuService::scaled(SimDuration d) const {
  return std::chrono::nanoseconds(static_cast<std::int64_t>(
      static_cast<double>(d.count()) * config_.timeScale));
}

void InprocTpuService::load(std::vector<std::string> composite) {
  Job job;
  job.isLoad = true;
  job.composite = std::move(composite);
  job.enqueued = std::chrono::steady_clock::now();
  std::future<Result> fut = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  fut.wait();
}

StatusOr<InprocTpuService::Result> InprocTpuService::invoke(
    const std::string& model) {
  if (!registry_.contains(model)) {
    return notFound(strCat("inproc invoke: unknown model ", model));
  }
  Job job;
  job.model = model;
  job.enqueued = std::chrono::steady_clock::now();
  std::future<Result> fut = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return unavailable("TPU service shut down");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return fut.get();
}

std::uint64_t InprocTpuService::servedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return served_;
}

std::uint64_t InprocTpuService::swapCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return swaps_;
}

void InprocTpuService::workerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    auto start = std::chrono::steady_clock::now();
    Result result;
    result.queueDelay = start - job.enqueued;

    if (job.isLoad) {
      // Pushing the composite takes time proportional to its size.
      double totalMb = 0.0;
      for (const auto& name : job.composite) {
        totalMb += registry_.at(name).paramSizeMb;
      }
      std::this_thread::sleep_for(scaled(millisecondsF(5.0 + totalMb * 3.0)));
      std::lock_guard<std::mutex> lock(mu_);
      resident_ = std::move(job.composite);
      lastModel_.clear();
    } else {
      const ModelInfo& info = registry_.at(job.model);
      SimDuration service = info.inferenceLatency;
      {
        std::lock_guard<std::mutex> lock(mu_);
        bool isResident = std::find(resident_.begin(), resident_.end(),
                                    job.model) != resident_.end();
        if (!isResident) {
          // Full swap: the model replaces the resident set (no co-compile).
          service += millisecondsF(5.0 + info.paramSizeMb * 3.0);
          resident_ = {job.model};
          ++swaps_;
          result.paidSwap = true;
        }
        lastModel_ = job.model;
        ++served_;
      }
      std::this_thread::sleep_for(scaled(service));
      result.serviceTime = std::chrono::steady_clock::now() - start;
    }
    job.promise.set_value(result);
  }
}

InprocClient::InprocClient(const ModelRegistry& registry, std::string model)
    : registry_(registry), model_(std::move(model)) {}

Status InprocClient::configure(
    const LbConfig& config,
    const std::map<std::string, InprocTpuService*>& directory) {
  std::vector<WrrTarget> targets;
  std::vector<InprocTpuService*> resolved;
  for (const LbWeight& w : config.weights) {
    auto it = directory.find(w.tpuId);
    if (it == directory.end()) {
      return notFound(strCat("inproc client: no service for ", w.tpuId));
    }
    targets.push_back(WrrTarget{w.tpuId, w.weight});
    resolved.push_back(it->second);
  }
  ME_RETURN_IF_ERROR(wrr_.setTargets(std::move(targets)));
  resolved_ = std::move(resolved);
  return Status::ok();
}

StatusOr<InprocTpuService::Result> InprocClient::invoke() {
  InprocTpuService* target = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (wrr_.empty()) return failedPrecondition("inproc client not configured");
    target = resolved_[wrr_.pickIndex()];
    ++invokes_;
  }
  return target->invoke(model_);
}

}  // namespace microedge
