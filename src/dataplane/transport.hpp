#pragma once

// Simulated message transport between cluster nodes.
//
// Wraps the NetworkModel in the event loop: send() delivers the payload's
// callback after the modelled one-way latency. Flows between distinct node
// pairs do not contend (switched full-duplex fabric); per-message costs are
// captured by the NetworkModel's base latency.
//
// Hot path: endpoints are pre-resolved NodeId handles (interned once at
// client/service construction), so a per-frame send costs an integer
// compare, one multiply and an event insertion — no strings. The string
// overload interns on entry and is kept for control-plane and test callers.
//
// `departAfter` models sender-side work (e.g. the client's preprocess stage)
// that delays the message's departure without occupying the wire: the
// callback fires at now + departAfter + latency, and only the latency is
// returned/attributed to transmission. Folding that stage into the delivery
// event halves the client pipeline's event count without changing any
// timestamp.
//
// Sharded runs: one SimTransport serves every shard. All mutable state —
// counters and the fault window's RNG — lives in per-shard cache-line-sized
// lanes indexed by ShardRouter::currentShard(), so concurrent shard workers
// never touch the same bytes. send() schedules on the calling shard's own
// Simulator and is therefore only correct for same-shard deliveries; a
// cross-shard hop uses sendRouted() (model + account, no scheduling) and
// posts the delivery through the router's mailbox itself. The solo
// constructor degenerates to a single lane with the exact pre-sharding
// behaviour.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/network.hpp"
#include "sim/sharded_sim.hpp"
#include "sim/simulator.hpp"
#include "util/event_fn.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"

namespace microedge {

class SimTransport {
 public:
  SimTransport(Simulator& sim, const NetworkModel& network)
      : sim_(&sim), network_(network), lanes_(1) {}
  SimTransport(ShardRouter& router, const NetworkModel& network)
      : router_(&router), network_(network), lanes_(router.shardCount()) {}

  // Stable per-message identity for fault decisions. A keyed message's drop
  // draw under a loss window is a pure function of (fault seed, key) —
  // independent of lane, shard count, and every other message — so loss
  // outcomes replay identically at any shard count. Key 0 means "unkeyed":
  // the message draws from the lane's sequential RNG (control-plane and
  // test traffic that predates keying). Frame traffic derives its key from
  // (stream token, frame id, attempt, hop) in TpuClient.
  static constexpr std::uint64_t kUnkeyed = 0;

  // Delivers `onDelivered` after the transfer latency of `bytes` from
  // `fromNode` to `toNode` (plus `departAfter` of sender-side delay).
  // Returns the modelled transfer latency (for breakdowns). EventFn keeps
  // inline-sized completion closures off the heap all the way into the
  // event slot. Sharded runs: delivery is scheduled on the calling shard's
  // Simulator, so both endpoints must live on that shard.
  SimDuration send(NodeId fromNode, NodeId toNode, std::size_t bytes,
                   EventFn onDelivered,
                   SimDuration departAfter = SimDuration::zero(),
                   std::uint64_t msgKey = kUnkeyed);

  // String wrapper: interns both endpoints, then takes the path above.
  SimDuration send(const std::string& fromNode, const std::string& toNode,
                   std::size_t bytes, EventFn onDelivered,
                   SimDuration departAfter = SimDuration::zero());

  // Models and accounts a message WITHOUT scheduling its delivery: returns
  // the (fault-adjusted) transfer latency and sets *dropped when the fault
  // window eats the message. The caller owns delivery — this is the
  // cross-shard path, where the delivery event must travel through the
  // router's mailbox rather than the local event loop.
  SimDuration sendRouted(NodeId fromNode, NodeId toNode, std::size_t bytes,
                         bool* dropped, std::uint64_t msgKey = kUnkeyed);

  // Coalesced burst delivery: models and accounts each of the `count`
  // messages individually — counters, keyed loss draws and the per-message
  // latencies written to `latencyOut` are exactly what `count` send() calls
  // would produce (all messages share endpoints and size, so all survivors
  // share one latency; a dropped message's latency skips the fault
  // multiplier, same as send()) — but schedules ONE delivery event for the
  // whole group instead of one per message. The caller fans surviving
  // messages out on arrival: `droppedOut[i]` is set per message, and the
  // event is skipped entirely when the fault window ate the whole group
  // (matching send(), whose delivery never fires for a dropped message).
  // Same-shard only, like send(). Returns true iff the delivery event was
  // scheduled.
  bool sendCoalesced(NodeId fromNode, NodeId toNode, std::size_t bytesEach,
                     const std::uint64_t* keys, std::size_t count,
                     std::uint8_t* droppedOut, SimDuration* latencyOut,
                     EventFn onDelivered,
                     SimDuration departAfter = SimDuration::zero());

  const NetworkModel& network() const { return network_; }

  // Fault window (driven by the fault injector): every message is dropped
  // with `lossProbability` (its delivery callback never fires — the frame's
  // deadline timer is what notices), and surviving deliveries take
  // `latencyMultiplier` times the modelled latency. Draws come from a
  // dedicated seeded Pcg32 so a replayed plan drops identical messages.
  // Sharded runs seed lane s with `seed + s`: each shard's drop sequence is
  // a pure function of (seed, shard, its own send order), so replays remain
  // deterministic at any shard count. Steady-state cost with no fault
  // active: one branch per send.
  void setFault(double lossProbability, double latencyMultiplier,
                std::uint64_t seed);
  void clearFault();
  // Single-lane variants for sharded runs: a fault window that starts or
  // ends mid-run must be armed as one event per shard, each touching only
  // its own lane (the whole-transport setters above write every lane and
  // are only safe while no shard worker is sending). Lane s draws from
  // Pcg32{seed + s}, matching setFault's seeding.
  void setFaultOnLane(unsigned shard, double lossProbability,
                      double latencyMultiplier, std::uint64_t seed);
  void clearFaultOnLane(unsigned shard);
  bool faultActive() const;
  std::size_t droppedMessages() const;

  std::size_t messagesSent() const;
  std::size_t bytesSent() const;

 private:
  // One lane per shard: all counters and fault state a shard worker mutates
  // on its send path, padded to a cache line so lanes never false-share.
  struct alignas(64) Lane {
    std::size_t messages = 0;
    std::size_t bytes = 0;
    std::size_t dropped = 0;
    bool faultActive = false;
    double lossProbability = 0.0;
    double latencyMultiplier = 1.0;
    Pcg32 faultRng{0};                // unkeyed draws: sequential, per-lane
    std::uint64_t faultSeed = 0;      // keyed draws: base seed, lane-invariant
  };

  Lane& lane() {
    return lanes_[router_ != nullptr ? ShardRouter::currentShard() : 0];
  }
  // Accounts the message on `lane` and returns its fault-adjusted latency;
  // sets *dropped when the fault window eats it. Keyed messages (msgKey !=
  // kUnkeyed) decide the drop from (lane.faultSeed, msgKey) without touching
  // the lane RNG; unkeyed messages draw sequentially from it.
  SimDuration modelMessage(Lane& lane, NodeId fromNode, NodeId toNode,
                           std::size_t bytes, bool* dropped,
                           std::uint64_t msgKey);

  Simulator* sim_ = nullptr;       // solo mode
  ShardRouter* router_ = nullptr;  // sharded mode
  const NetworkModel& network_;
  std::vector<Lane> lanes_;
};

}  // namespace microedge
