#pragma once

// Simulated message transport between cluster nodes.
//
// Wraps the NetworkModel in the event loop: send() delivers the payload's
// callback after the modelled one-way latency. Flows between distinct node
// pairs do not contend (switched full-duplex fabric); per-message costs are
// captured by the NetworkModel's base latency.

#include <cstddef>
#include <string>

#include "cluster/network.hpp"
#include "sim/simulator.hpp"
#include "util/event_fn.hpp"

namespace microedge {

class SimTransport {
 public:
  SimTransport(Simulator& sim, const NetworkModel& network)
      : sim_(sim), network_(network) {}

  // Delivers `onDelivered` after the transfer latency of `bytes` from
  // `fromNode` to `toNode`. Returns the modelled latency (for breakdowns).
  // EventFn keeps inline-sized completion closures off the heap all the way
  // into the event slot.
  SimDuration send(const std::string& fromNode, const std::string& toNode,
                   std::size_t bytes, EventFn onDelivered);

  std::size_t messagesSent() const { return messages_; }
  std::size_t bytesSent() const { return bytes_; }

 private:
  Simulator& sim_;
  const NetworkModel& network_;
  std::size_t messages_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace microedge
