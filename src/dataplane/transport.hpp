#pragma once

// Simulated message transport between cluster nodes.
//
// Wraps the NetworkModel in the event loop: send() delivers the payload's
// callback after the modelled one-way latency. Flows between distinct node
// pairs do not contend (switched full-duplex fabric); per-message costs are
// captured by the NetworkModel's base latency.
//
// Hot path: endpoints are pre-resolved NodeId handles (interned once at
// client/service construction), so a per-frame send costs an integer
// compare, one multiply and an event insertion — no strings. The string
// overload interns on entry and is kept for control-plane and test callers.
//
// `departAfter` models sender-side work (e.g. the client's preprocess stage)
// that delays the message's departure without occupying the wire: the
// callback fires at now + departAfter + latency, and only the latency is
// returned/attributed to transmission. Folding that stage into the delivery
// event halves the client pipeline's event count without changing any
// timestamp.

#include <cstddef>
#include <cstdint>
#include <string>

#include "cluster/network.hpp"
#include "sim/simulator.hpp"
#include "util/event_fn.hpp"
#include "util/intern.hpp"
#include "util/rng.hpp"

namespace microedge {

class SimTransport {
 public:
  SimTransport(Simulator& sim, const NetworkModel& network)
      : sim_(sim), network_(network) {}

  // Delivers `onDelivered` after the transfer latency of `bytes` from
  // `fromNode` to `toNode` (plus `departAfter` of sender-side delay).
  // Returns the modelled transfer latency (for breakdowns). EventFn keeps
  // inline-sized completion closures off the heap all the way into the
  // event slot.
  SimDuration send(NodeId fromNode, NodeId toNode, std::size_t bytes,
                   EventFn onDelivered,
                   SimDuration departAfter = SimDuration::zero());

  // String wrapper: interns both endpoints, then takes the path above.
  SimDuration send(const std::string& fromNode, const std::string& toNode,
                   std::size_t bytes, EventFn onDelivered,
                   SimDuration departAfter = SimDuration::zero());

  // Fault window (driven by the fault injector): every message is dropped
  // with `lossProbability` (its delivery callback never fires — the frame's
  // deadline timer is what notices), and surviving deliveries take
  // `latencyMultiplier` times the modelled latency. Draws come from a
  // dedicated seeded Pcg32 so a replayed plan drops identical messages.
  // Steady-state cost with no fault active: one branch on faultActive_.
  void setFault(double lossProbability, double latencyMultiplier,
                std::uint64_t seed);
  void clearFault() { faultActive_ = false; }
  bool faultActive() const { return faultActive_; }
  std::size_t droppedMessages() const { return dropped_; }

  std::size_t messagesSent() const { return messages_; }
  std::size_t bytesSent() const { return bytes_; }

 private:
  Simulator& sim_;
  const NetworkModel& network_;
  std::size_t messages_ = 0;
  std::size_t bytes_ = 0;
  std::size_t dropped_ = 0;
  bool faultActive_ = false;
  double lossProbability_ = 0.0;
  double latencyMultiplier_ = 1.0;
  Pcg32 faultRng_{0};
};

}  // namespace microedge
