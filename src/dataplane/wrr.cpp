#include "dataplane/wrr.hpp"

#include <cassert>
#include <numeric>

#include "util/strings.hpp"

namespace microedge {

namespace {
Status validateTargets(const std::vector<WrrTarget>& targets) {
  if (targets.empty()) return invalidArgument("WRR: empty target set");
  for (const auto& t : targets) {
    if (t.id.empty()) return invalidArgument("WRR: empty target id");
    if (t.weight == 0) {
      return invalidArgument(strCat("WRR: target ", t.id, " has zero weight"));
    }
  }
  return Status::ok();
}

// Dividing by the gcd keeps proportions identical while shortening the
// schedule period (weights arrive as milli-units, e.g. 400:200 -> 2:1).
void reduceByGcd(std::vector<WrrTarget>& targets) {
  std::uint32_t g = 0;
  for (const auto& t : targets) g = std::gcd(g, t.weight);
  if (g > 1) {
    for (auto& t : targets) t.weight /= g;
  }
}
}  // namespace

Status SmoothWrr::setTargets(std::vector<WrrTarget> targets) {
  ME_RETURN_IF_ERROR(validateTargets(targets));
  reduceByGcd(targets);
  targets_ = std::move(targets);
  current_.assign(targets_.size(), 0);
  counts_.assign(targets_.size(), 0);
  totalWeight_ = 0;
  for (const auto& t : targets_) totalWeight_ += t.weight;
  cycle_.clear();
  phase_ = 0;
  cycleBuilt_ = false;
  return Status::ok();
}

std::size_t SmoothWrr::stepLinear() {
  std::size_t best = 0;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    current_[i] += static_cast<std::int64_t>(targets_[i].weight);
    if (current_[i] > current_[best]) best = i;
  }
  current_[best] -= static_cast<std::int64_t>(totalWeight_);
  return best;
}

void SmoothWrr::buildCycleIfNeeded() {
  if (cycleBuilt_) return;
  cycleBuilt_ = true;
  if (totalWeight_ > kMaxCyclePeriod) return;  // degenerate set: keep O(n) scan
  // Deferred to the first pick so configure-heavy paths (admission churn)
  // pay nothing for pods that never route. phase_ == 0 here by definition,
  // and running the argmax one full period leaves the credits back at zero.
  cycle_.reserve(static_cast<std::size_t>(totalWeight_));
  for (std::uint64_t j = 0; j < totalWeight_; ++j) {
    cycle_.push_back(static_cast<std::uint32_t>(stepLinear()));
  }
  for (std::int64_t c : current_) {
    assert(c == 0 && "smooth WRR period did not close");
    (void)c;
  }
}

std::size_t SmoothWrr::pickIndex() {
  assert(!targets_.empty() && "pick() on empty WRR");
  buildCycleIfNeeded();
  std::size_t best;
  if (cycle_.empty()) {
    best = stepLinear();
  } else {
    best = cycle_[phase_];
    if (++phase_ == totalWeight_) phase_ = 0;
  }
  ++counts_[best];
  return best;
}

void SmoothWrr::pickBatch(std::size_t k, std::vector<std::uint32_t>& out) {
  assert(!targets_.empty() && "pickBatch() on empty WRR");
  buildCycleIfNeeded();
  out.reserve(out.size() + k);
  if (cycle_.empty()) {
    for (std::size_t j = 0; j < k; ++j) {
      std::size_t best = stepLinear();
      ++counts_[best];
      out.push_back(static_cast<std::uint32_t>(best));
    }
    return;
  }
  for (std::size_t j = 0; j < k; ++j) {
    std::uint32_t best = cycle_[phase_];
    if (++phase_ == totalWeight_) phase_ = 0;
    ++counts_[best];
    out.push_back(best);
  }
}

std::uint64_t SmoothWrr::pickCount(const std::string& id) const {
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i].id == id) return counts_[i];
  }
  return 0;
}

Status BurstWrr::setTargets(std::vector<WrrTarget> targets) {
  ME_RETURN_IF_ERROR(validateTargets(targets));
  reduceByGcd(targets);
  targets_ = std::move(targets);
  index_ = 0;
  emitted_ = 0;
  return Status::ok();
}

std::size_t BurstWrr::pickIndex() {
  assert(!targets_.empty() && "pick() on empty WRR");
  if (emitted_ >= targets_[index_].weight) {
    emitted_ = 0;
    index_ = (index_ + 1) % targets_.size();
  }
  ++emitted_;
  return index_;
}

}  // namespace microedge
