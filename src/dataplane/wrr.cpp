#include "dataplane/wrr.hpp"

#include <cassert>
#include <numeric>

#include "util/strings.hpp"

namespace microedge {

namespace {
Status validateTargets(const std::vector<WrrTarget>& targets) {
  if (targets.empty()) return invalidArgument("WRR: empty target set");
  for (const auto& t : targets) {
    if (t.id.empty()) return invalidArgument("WRR: empty target id");
    if (t.weight == 0) {
      return invalidArgument(strCat("WRR: target ", t.id, " has zero weight"));
    }
  }
  return Status::ok();
}

// Dividing by the gcd keeps proportions identical while shortening the
// schedule period (weights arrive as milli-units, e.g. 400:200 -> 2:1).
void reduceByGcd(std::vector<WrrTarget>& targets) {
  std::uint32_t g = 0;
  for (const auto& t : targets) g = std::gcd(g, t.weight);
  if (g > 1) {
    for (auto& t : targets) t.weight /= g;
  }
}
}  // namespace

Status SmoothWrr::setTargets(std::vector<WrrTarget> targets) {
  ME_RETURN_IF_ERROR(validateTargets(targets));
  reduceByGcd(targets);
  targets_ = std::move(targets);
  current_.assign(targets_.size(), 0);
  counts_.assign(targets_.size(), 0);
  totalWeight_ = 0;
  for (const auto& t : targets_) totalWeight_ += t.weight;
  return Status::ok();
}

std::size_t SmoothWrr::pickIndex() {
  assert(!targets_.empty() && "pick() on empty WRR");
  std::size_t best = 0;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    current_[i] += static_cast<std::int64_t>(targets_[i].weight);
    if (current_[i] > current_[best]) best = i;
  }
  current_[best] -= static_cast<std::int64_t>(totalWeight_);
  ++counts_[best];
  return best;
}

std::uint64_t SmoothWrr::pickCount(const std::string& id) const {
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i].id == id) return counts_[i];
  }
  return 0;
}

Status BurstWrr::setTargets(std::vector<WrrTarget> targets) {
  ME_RETURN_IF_ERROR(validateTargets(targets));
  reduceByGcd(targets);
  targets_ = std::move(targets);
  index_ = 0;
  emitted_ = 0;
  return Status::ok();
}

std::size_t BurstWrr::pickIndex() {
  assert(!targets_.empty() && "pick() on empty WRR");
  if (emitted_ >= targets_[index_].weight) {
    emitted_ = 0;
    index_ = (index_ + 1) % targets_.size();
  }
  ++emitted_;
  return index_;
}

}  // namespace microedge
