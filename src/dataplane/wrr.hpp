#pragma once

// Weighted round-robin schedulers for the LB Service (§5.3).
//
// The paper forwards requests "using Weighted Round Robin (WRR) with Weight
// Fair Queuing (WFQ) spread": targets are interleaved so that a 2:1 weight
// ratio produces A B A A B A ... rather than A A B (smooth WRR, the
// algorithm nginx uses, which matches WFQ's virtual-finish-time spread for
// equal-size requests). The naive burst variant is kept for the ablation
// bench: bursty dispatch into a serial device inflates queueing-delay tails
// even when long-run proportions are identical.

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace microedge {

struct WrrTarget {
  std::string id;
  std::uint32_t weight = 0;
};

// Smooth WRR: each pick adds weight_i to current_i, selects the max, then
// subtracts the total weight from the winner. Deterministic; over any window
// of totalWeight picks each target is chosen exactly weight_i times, and
// picks of the same target are spread maximally apart.
class SmoothWrr {
 public:
  // Replaces the target set. Zero-weight targets are rejected.
  Status setTargets(std::vector<WrrTarget> targets);

  bool empty() const { return targets_.empty(); }
  std::size_t targetCount() const { return targets_.size(); }
  std::uint64_t totalWeight() const { return totalWeight_; }
  const std::vector<WrrTarget>& targets() const { return targets_; }

  // Index of the next target into targets(). Precondition: !empty().
  // The per-frame hot path: no string is touched.
  std::size_t pickIndex();
  // Next target id. Precondition: !empty().
  const std::string& pick() { return targets_[pickIndex()].id; }

  std::uint64_t pickCount(const std::string& id) const;

 private:
  std::vector<WrrTarget> targets_;
  std::vector<std::int64_t> current_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t totalWeight_ = 0;
};

// Naive burst WRR: emits weight_i consecutive picks of target i before
// moving on. Same long-run proportions, worst-case burstiness.
class BurstWrr {
 public:
  Status setTargets(std::vector<WrrTarget> targets);

  bool empty() const { return targets_.empty(); }
  const std::vector<WrrTarget>& targets() const { return targets_; }
  std::size_t pickIndex();
  const std::string& pick() { return targets_[pickIndex()].id; }

 private:
  std::vector<WrrTarget> targets_;
  std::size_t index_ = 0;
  std::uint32_t emitted_ = 0;
};

}  // namespace microedge
