#pragma once

// Weighted round-robin schedulers for the LB Service (§5.3).
//
// The paper forwards requests "using Weighted Round Robin (WRR) with Weight
// Fair Queuing (WFQ) spread": targets are interleaved so that a 2:1 weight
// ratio produces A B A A B A ... rather than A A B (smooth WRR, the
// algorithm nginx uses, which matches WFQ's virtual-finish-time spread for
// equal-size requests). The naive burst variant is kept for the ablation
// bench: bursty dispatch into a serial device inflates queueing-delay tails
// even when long-run proportions are identical.

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace microedge {

struct WrrTarget {
  std::string id;
  std::uint32_t weight = 0;
};

// Smooth WRR: each pick adds weight_i to current_i, selects the max, then
// subtracts the total weight from the winner. Deterministic; over any window
// of totalWeight picks each target is chosen exactly weight_i times, and
// picks of the same target are spread maximally apart.
//
// Batching: the credit state returns to its initial value after exactly
// totalWeight() picks (each target wins weight_i times, so every credit
// gains weight_i * W and loses weight_i * W), so the pick sequence is
// periodic with period W. On the first pick the schedule's one period is
// materialized in a single pass of W argmax steps over the weight vector
// and every subsequent pick — single or batched — is a table read, which is
// what makes routing k frames of a burst O(k) instead of O(k * n). Both
// paths produce the sequence of the original incremental argmax by
// construction (the cache is *built by* that argmax). Degenerate weight
// sets whose reduced period exceeds kMaxCyclePeriod skip the cache and keep
// the O(n)-per-pick scan.
class SmoothWrr {
 public:
  // Reduced periods above this fall back to the per-pick argmax scan
  // (weights are milli-units, so a pathological pair like 349:651 has
  // period 1000; the cap bounds cache memory per LB service).
  static constexpr std::uint64_t kMaxCyclePeriod = 4096;

  // Replaces the target set. Zero-weight targets are rejected.
  Status setTargets(std::vector<WrrTarget> targets);

  bool empty() const { return targets_.empty(); }
  std::size_t targetCount() const { return targets_.size(); }
  std::uint64_t totalWeight() const { return totalWeight_; }
  const std::vector<WrrTarget>& targets() const { return targets_; }

  // Index of the next target into targets(). Precondition: !empty().
  // The per-frame hot path: no string is touched.
  std::size_t pickIndex();
  // Appends k picks to out, identical to k successive pickIndex() calls.
  // Precondition: !empty().
  void pickBatch(std::size_t k, std::vector<std::uint32_t>& out);
  // Next target id. Precondition: !empty().
  const std::string& pick() { return targets_[pickIndex()].id; }

  std::uint64_t pickCount(const std::string& id) const;

  // Cycle length when the periodic cache is active, 0 when the target set
  // fell back to the linear scan (telemetry / tests).
  std::uint64_t cyclePeriod() const { return cycle_.size(); }

 private:
  // One step of the original incremental argmax (cache builder + fallback).
  std::size_t stepLinear();
  void buildCycleIfNeeded();

  std::vector<WrrTarget> targets_;
  std::vector<std::int64_t> current_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t totalWeight_ = 0;
  // One period of winner indices (empty: fallback or not built yet).
  std::vector<std::uint32_t> cycle_;
  std::uint64_t phase_ = 0;  // picks since setTargets, mod totalWeight_
  bool cycleBuilt_ = false;
};

// Naive burst WRR: emits weight_i consecutive picks of target i before
// moving on. Same long-run proportions, worst-case burstiness.
class BurstWrr {
 public:
  Status setTargets(std::vector<WrrTarget> targets);

  bool empty() const { return targets_.empty(); }
  const std::vector<WrrTarget>& targets() const { return targets_; }
  std::size_t pickIndex();
  const std::string& pick() { return targets_[pickIndex()].id; }

 private:
  std::vector<WrrTarget> targets_;
  std::size_t index_ = 0;
  std::uint32_t emitted_ = 0;
};

}  // namespace microedge
