#include "dataplane/transport.hpp"

namespace microedge {

SimDuration SimTransport::send(NodeId fromNode, NodeId toNode,
                               std::size_t bytes, EventFn onDelivered,
                               SimDuration departAfter) {
  SimDuration latency = network_.transferLatency(fromNode, toNode, bytes);
  ++messages_;
  bytes_ += bytes;
  sim_.scheduleAfter(departAfter + latency, std::move(onDelivered));
  return latency;
}

SimDuration SimTransport::send(const std::string& fromNode,
                               const std::string& toNode, std::size_t bytes,
                               EventFn onDelivered, SimDuration departAfter) {
  return send(internNode(fromNode), internNode(toNode), bytes,
              std::move(onDelivered), departAfter);
}

}  // namespace microedge
