#include "dataplane/transport.hpp"

namespace microedge {

SimDuration SimTransport::send(const std::string& fromNode,
                               const std::string& toNode, std::size_t bytes,
                               EventFn onDelivered) {
  SimDuration latency = network_.transferLatency(fromNode, toNode, bytes);
  ++messages_;
  bytes_ += bytes;
  sim_.scheduleAfter(latency, std::move(onDelivered));
  return latency;
}

}  // namespace microedge
