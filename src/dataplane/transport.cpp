#include "dataplane/transport.hpp"

namespace microedge {

SimDuration SimTransport::send(NodeId fromNode, NodeId toNode,
                               std::size_t bytes, EventFn onDelivered,
                               SimDuration departAfter) {
  SimDuration latency = network_.transferLatency(fromNode, toNode, bytes);
  ++messages_;
  bytes_ += bytes;
  if (faultActive_) {
    if (lossProbability_ > 0.0 && faultRng_.bernoulli(lossProbability_)) {
      // Dropped on the wire: the delivery callback never fires. The sender
      // still paid the modelled latency (returned for the breakdown); the
      // loss surfaces as a frame that never comes back.
      ++dropped_;
      return latency;
    }
    if (latencyMultiplier_ != 1.0) {
      latency = SimDuration{static_cast<SimDuration::rep>(
          static_cast<double>(latency.count()) * latencyMultiplier_)};
    }
  }
  sim_.scheduleAfter(departAfter + latency, std::move(onDelivered));
  return latency;
}

SimDuration SimTransport::send(const std::string& fromNode,
                               const std::string& toNode, std::size_t bytes,
                               EventFn onDelivered, SimDuration departAfter) {
  return send(internNode(fromNode), internNode(toNode), bytes,
              std::move(onDelivered), departAfter);
}

void SimTransport::setFault(double lossProbability, double latencyMultiplier,
                            std::uint64_t seed) {
  faultActive_ = true;
  lossProbability_ = lossProbability;
  latencyMultiplier_ = latencyMultiplier;
  faultRng_ = Pcg32{seed};
}

}  // namespace microedge
