#include "dataplane/transport.hpp"

namespace microedge {

SimDuration SimTransport::modelMessage(Lane& lane, NodeId fromNode,
                                       NodeId toNode, std::size_t bytes,
                                       bool* dropped) {
  SimDuration latency = network_.transferLatency(fromNode, toNode, bytes);
  ++lane.messages;
  lane.bytes += bytes;
  *dropped = false;
  if (lane.faultActive) {
    if (lane.lossProbability > 0.0 &&
        lane.faultRng.bernoulli(lane.lossProbability)) {
      // Dropped on the wire: the delivery callback never fires. The sender
      // still paid the modelled latency (returned for the breakdown); the
      // loss surfaces as a frame that never comes back.
      ++lane.dropped;
      *dropped = true;
      return latency;
    }
    if (lane.latencyMultiplier != 1.0) {
      latency = SimDuration{static_cast<SimDuration::rep>(
          static_cast<double>(latency.count()) * lane.latencyMultiplier)};
    }
  }
  return latency;
}

SimDuration SimTransport::send(NodeId fromNode, NodeId toNode,
                               std::size_t bytes, EventFn onDelivered,
                               SimDuration departAfter) {
  bool dropped = false;
  SimDuration latency = modelMessage(lane(), fromNode, toNode, bytes, &dropped);
  if (dropped) return latency;
  Simulator& sim = router_ != nullptr ? router_->currentSim() : *sim_;
  sim.scheduleAfter(departAfter + latency, std::move(onDelivered));
  return latency;
}

SimDuration SimTransport::send(const std::string& fromNode,
                               const std::string& toNode, std::size_t bytes,
                               EventFn onDelivered, SimDuration departAfter) {
  return send(internNode(fromNode), internNode(toNode), bytes,
              std::move(onDelivered), departAfter);
}

SimDuration SimTransport::sendRouted(NodeId fromNode, NodeId toNode,
                                     std::size_t bytes, bool* dropped) {
  return modelMessage(lane(), fromNode, toNode, bytes, dropped);
}

void SimTransport::setFault(double lossProbability, double latencyMultiplier,
                            std::uint64_t seed) {
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    lanes_[s].faultActive = true;
    lanes_[s].lossProbability = lossProbability;
    lanes_[s].latencyMultiplier = latencyMultiplier;
    lanes_[s].faultRng = Pcg32{seed + s};
  }
}

void SimTransport::clearFault() {
  for (Lane& lane : lanes_) lane.faultActive = false;
}

void SimTransport::setFaultOnLane(unsigned shard, double lossProbability,
                                  double latencyMultiplier,
                                  std::uint64_t seed) {
  Lane& lane = lanes_[shard];
  lane.faultActive = true;
  lane.lossProbability = lossProbability;
  lane.latencyMultiplier = latencyMultiplier;
  lane.faultRng = Pcg32{seed + shard};
}

void SimTransport::clearFaultOnLane(unsigned shard) {
  lanes_[shard].faultActive = false;
}

bool SimTransport::faultActive() const {
  for (const Lane& lane : lanes_) {
    if (lane.faultActive) return true;
  }
  return false;
}

std::size_t SimTransport::droppedMessages() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.dropped;
  return n;
}

std::size_t SimTransport::messagesSent() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.messages;
  return n;
}

std::size_t SimTransport::bytesSent() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.bytes;
  return n;
}

}  // namespace microedge
