#include "dataplane/transport.hpp"

namespace microedge {

namespace {

// Keyed drop decision: a uniform in [0,1) that is a pure function of
// (fault seed, message key). splitMix64's finalizer gives full avalanche, so
// adjacent frame keys decorrelate; >>11 keeps the top 53 bits — the same
// mantissa construction Pcg32::nextDouble uses — so keyed and unkeyed draws
// compare against `p` with identical granularity.
bool keyedBernoulli(std::uint64_t seed, std::uint64_t key, double p) {
  std::uint64_t bits = splitMix64(seed ^ splitMix64(key));
  double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
  return u < p;
}

}  // namespace

SimDuration SimTransport::modelMessage(Lane& lane, NodeId fromNode,
                                       NodeId toNode, std::size_t bytes,
                                       bool* dropped, std::uint64_t msgKey) {
  SimDuration latency = network_.transferLatency(fromNode, toNode, bytes);
  ++lane.messages;
  lane.bytes += bytes;
  *dropped = false;
  if (lane.faultActive) {
    if (lane.lossProbability > 0.0) {
      bool drop = msgKey != kUnkeyed
                      ? keyedBernoulli(lane.faultSeed, msgKey,
                                       lane.lossProbability)
                      : lane.faultRng.bernoulli(lane.lossProbability);
      if (drop) {
        // Dropped on the wire: the delivery callback never fires. The sender
        // still paid the modelled latency (returned for the breakdown); the
        // loss surfaces as a frame that never comes back.
        ++lane.dropped;
        *dropped = true;
        return latency;
      }
    }
    if (lane.latencyMultiplier != 1.0) {
      latency = SimDuration{static_cast<SimDuration::rep>(
          static_cast<double>(latency.count()) * lane.latencyMultiplier)};
    }
  }
  return latency;
}

SimDuration SimTransport::send(NodeId fromNode, NodeId toNode,
                               std::size_t bytes, EventFn onDelivered,
                               SimDuration departAfter, std::uint64_t msgKey) {
  bool dropped = false;
  SimDuration latency =
      modelMessage(lane(), fromNode, toNode, bytes, &dropped, msgKey);
  if (dropped) return latency;
  Simulator& sim = router_ != nullptr ? router_->currentSim() : *sim_;
  sim.scheduleAfter(departAfter + latency, std::move(onDelivered));
  return latency;
}

SimDuration SimTransport::send(const std::string& fromNode,
                               const std::string& toNode, std::size_t bytes,
                               EventFn onDelivered, SimDuration departAfter) {
  return send(internNode(fromNode), internNode(toNode), bytes,
              std::move(onDelivered), departAfter);
}

SimDuration SimTransport::sendRouted(NodeId fromNode, NodeId toNode,
                                     std::size_t bytes, bool* dropped,
                                     std::uint64_t msgKey) {
  return modelMessage(lane(), fromNode, toNode, bytes, dropped, msgKey);
}

bool SimTransport::sendCoalesced(NodeId fromNode, NodeId toNode,
                                 std::size_t bytesEach,
                                 const std::uint64_t* keys, std::size_t count,
                                 std::uint8_t* droppedOut,
                                 SimDuration* latencyOut, EventFn onDelivered,
                                 SimDuration departAfter) {
  Lane& l = lane();
  SimDuration survivorLatency = SimDuration::zero();
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < count; ++i) {
    // Endpoints and size are shared, so every surviving message models to
    // the same latency; the per-message calls are kept so counters, loss
    // draws and per-message latencies stay exactly what `count` send()
    // calls would have produced.
    bool dropped = false;
    latencyOut[i] = modelMessage(l, fromNode, toNode, bytesEach, &dropped,
                                 keys != nullptr ? keys[i] : kUnkeyed);
    droppedOut[i] = dropped ? 1 : 0;
    if (!dropped) {
      survivorLatency = latencyOut[i];
      ++survivors;
    }
  }
  if (survivors == 0) return false;
  Simulator& sim = router_ != nullptr ? router_->currentSim() : *sim_;
  sim.scheduleAfter(departAfter + survivorLatency, std::move(onDelivered));
  return true;
}

void SimTransport::setFault(double lossProbability, double latencyMultiplier,
                            std::uint64_t seed) {
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    lanes_[s].faultActive = true;
    lanes_[s].lossProbability = lossProbability;
    lanes_[s].latencyMultiplier = latencyMultiplier;
    lanes_[s].faultRng = Pcg32{seed + s};
    lanes_[s].faultSeed = seed;  // lane-invariant: keyed draws replay at any
                                 // shard count
  }
}

void SimTransport::clearFault() {
  for (Lane& lane : lanes_) lane.faultActive = false;
}

void SimTransport::setFaultOnLane(unsigned shard, double lossProbability,
                                  double latencyMultiplier,
                                  std::uint64_t seed) {
  Lane& lane = lanes_[shard];
  lane.faultActive = true;
  lane.lossProbability = lossProbability;
  lane.latencyMultiplier = latencyMultiplier;
  lane.faultRng = Pcg32{seed + shard};
  lane.faultSeed = seed;
}

void SimTransport::clearFaultOnLane(unsigned shard) {
  lanes_[shard].faultActive = false;
}

bool SimTransport::faultActive() const {
  for (const Lane& lane : lanes_) {
    if (lane.faultActive) return true;
  }
  return false;
}

std::size_t SimTransport::droppedMessages() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.dropped;
  return n;
}

std::size_t SimTransport::messagesSent() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.messages;
  return n;
}

std::size_t SimTransport::bytesSent() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.bytes;
  return n;
}

}  // namespace microedge
