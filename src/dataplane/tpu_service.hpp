#pragma once

// TPU Service (§5.1): the per-TPU server process on a tRPi.
//
// Instantiated at cluster boot for every physical TPU, it listens for two
// request kinds:
//   Load   — from the extended scheduler: install a (co-compiled) model
//            composite into TPU memory;
//   Invoke — from TPU Clients: run one inference, reply with the result.
//
// Time sharing falls out of the underlying device's serial FIFO; space
// sharing falls out of installing co-compiled composites. The service keeps
// per-model counters so experiments can attribute load.
//
// Hot path: Invoke takes a dense interned ModelId and bumps a vector-indexed
// counter — no string-map probe per frame. The hosting node is interned at
// construction so clients address response hops by NodeId. String overloads
// remain as thin wrappers.

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/tpu_device.hpp"
#include "core/admission.hpp"
#include "util/intern.hpp"
#include "util/status.hpp"

namespace microedge {

class TpuService {
 public:
  // `node` is the hosting tRPi (the client needs it to route frames).
  TpuService(TpuDevice& device, std::string node)
      : device_(device), node_(std::move(node)), nodeId_(internNode(node_)) {}

  const std::string& tpuId() const { return device_.id(); }
  // Dense handle for this service's TPU (what LB weights route by).
  TpuId tpu() const { return device_.handle(); }
  const std::string& node() const { return node_; }
  // Pre-interned hosting node, resolved once at construction.
  NodeId nodeId() const { return nodeId_; }
  TpuDevice& device() { return device_; }
  const TpuDevice& device() const { return device_; }

  // Load primitive: installs the command's composite on the TPU. The
  // compile itself ran off-path in the Co-compiler service; this just pushes
  // the compiled parameters to the device.
  Status load(const LoadCommand& command);

  // Invoke primitive: one inference, completion via callback (the response
  // hop back to the client is the caller's concern — the client library
  // owns the connection).
  Status invoke(ModelId model, TpuDevice::InvokeCallback done);
  // String wrapper: resolves the dense handle, then takes the path above.
  Status invoke(const std::string& model, TpuDevice::InvokeCallback done);
  // Capacity hint for a burst about to fan into this service's device FIFO;
  // see TpuDevice::reserveBacklog.
  void reserveBacklog(std::size_t n) { device_.reserveBacklog(n); }

  // Hang fault (USB stall, wedged runtime): the process is up but stops
  // answering — Load and Invoke return kUnavailable until the hang clears.
  // Distinct from removal: clients see rejects (breaker feedback) instead
  // of a missing service, and recovery can retry the Load with backoff.
  void setHung(bool hung) { hung_ = hung; }
  bool hung() const { return hung_; }

  std::uint64_t invokeCount() const { return invokes_; }
  std::uint64_t loadCount() const { return loads_; }
  std::uint64_t invokeCountFor(ModelId model) const;
  std::uint64_t invokeCountFor(const std::string& model) const;

 private:
  TpuDevice& device_;
  std::string node_;
  NodeId nodeId_{};
  bool hung_ = false;
  std::uint64_t invokes_ = 0;
  std::uint64_t loads_ = 0;
  // Indexed by ModelId.value (process-wide dense handles); grown on first
  // sight of a model, then bumped with one vector index per invoke.
  std::vector<std::uint64_t> perModel_;
};

}  // namespace microedge
