#include "dataplane/tpu_client.hpp"

#include <algorithm>
#include <memory>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace microedge {

TpuClient::TpuClient(Simulator& sim, const ModelRegistry& registry,
                     SimTransport& transport, Directory directory,
                     Config config)
    : sim_(sim), registry_(registry), transport_(transport),
      directory_(std::move(directory)), config_(std::move(config)),
      lb_(config_.spread) {}

Status TpuClient::invoke(CompletionCallback done) {
  if (stopped_) return failedPrecondition("TPU client is stopped");
  if (!lb_.configured()) {
    return failedPrecondition("TPU client LB not configured");
  }
  auto model = registry_.find(config_.model);
  if (!model.isOk()) return model.status();
  const ModelInfo info = std::move(model).value();

  auto b = std::make_shared<FrameBreakdown>();
  b->frameId = nextFrameId_++;
  b->submitted = sim_.now();
  b->preprocess = info.preprocessLatency;
  ++submitted_;

  // Shared continuation state keeps the callback chain readable.
  auto onPostprocessDone = [this, b](CompletionCallback cb) {
    b->completed = sim_.now();
    ++completed_;
    if (cb) cb(*b);
  };

  // Stage 1: client-side resize to the model's input resolution.
  sim_.scheduleAfter(
      info.preprocessLatency,
      [this, b, info, done = std::move(done), onPostprocessDone]() mutable {
        // Stage 2: route via the pod's LBS and transmit the frame. If the
        // chosen TPU Service stopped answering (tRPi died between the
        // failure and the recovery reconfiguring our weights), fail over to
        // the pod's other shares before dropping the frame.
        TpuService* service = nullptr;
        std::string target;
        std::size_t attempts =
            std::max<std::size_t>(1, lb_.config().weights.size());
        for (std::size_t i = 0; i < attempts && service == nullptr; ++i) {
          target = lb_.route();
          service = directory_(target);
        }
        if (service == nullptr) {
          ++failed_;
          ME_LOG(kWarning) << "no reachable TPU service for "
                           << config_.model << "; frame dropped";
          return;
        }
        b->servedBy = target;
        const std::string serviceNode = service->node();
        b->requestTransmit = transport_.send(
            config_.clientNode, serviceNode, info.inputBytes(),
            [this, b, info, service, serviceNode, done = std::move(done),
             onPostprocessDone]() mutable {
              // Stage 3: inference on the (serial, run-to-completion) TPU.
              Status s = service->invoke(
                  info.name,
                  [this, b, info, serviceNode, done = std::move(done),
                   onPostprocessDone](const TpuDevice::InvokeStats& stats) mutable {
                    b->queueDelay = stats.queueDelay;
                    b->inference = stats.serviceTime;
                    // Stage 4: response back to the application pod.
                    b->responseTransmit = transport_.send(
                        serviceNode, config_.clientNode, info.outputBytes,
                        [this, b, info, done = std::move(done),
                         onPostprocessDone]() mutable {
                          // Stage 5: application post-processing.
                          b->postprocess = info.postprocessLatency;
                          sim_.scheduleAfter(
                              info.postprocessLatency,
                              [done = std::move(done), onPostprocessDone]() mutable {
                                onPostprocessDone(std::move(done));
                              });
                        });
                  });
              if (!s.isOk()) {
                ++failed_;
                ME_LOG(kWarning) << "invoke on " << b->servedBy
                                 << " failed: " << s.toString();
              }
            });
      });
  return Status::ok();
}

}  // namespace microedge
