#include "dataplane/tpu_client.hpp"

#include <algorithm>
#include <memory>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace microedge {

// One heap allocation per frame carries the whole pipeline: the breakdown
// being filled in, the model info (resolved once, never re-copied), the
// routing decision and the user completion. Stage closures capture only
// {this, shared_ptr} (24 bytes) and so ride inline in their event slots.
struct TpuClient::InvokeContext {
  FrameBreakdown breakdown;
  ModelInfo info;
  CompletionCallback done;
  TpuService* service = nullptr;
  std::string serviceNode;
};

TpuClient::TpuClient(Simulator& sim, const ModelRegistry& registry,
                     SimTransport& transport, Directory directory,
                     Config config)
    : sim_(sim), registry_(registry), transport_(transport),
      directory_(std::move(directory)), config_(std::move(config)),
      lb_(config_.spread) {}

Status TpuClient::invoke(CompletionCallback done) {
  if (stopped_) return failedPrecondition("TPU client is stopped");
  if (!lb_.configured()) {
    return failedPrecondition("TPU client LB not configured");
  }
  auto model = registry_.find(config_.model);
  if (!model.isOk()) return model.status();

  auto ctx = std::make_shared<InvokeContext>();
  ctx->info = std::move(model).value();
  ctx->done = std::move(done);
  ctx->breakdown.frameId = nextFrameId_++;
  ctx->breakdown.submitted = sim_.now();
  ctx->breakdown.preprocess = ctx->info.preprocessLatency;
  ++submitted_;

  // Stage 1: client-side resize to the model's input resolution. (Read the
  // latency before the capture moves `ctx`: argument order is unspecified.)
  const SimDuration preprocess = ctx->info.preprocessLatency;
  sim_.scheduleAfter(preprocess,
                     [this, ctx = std::move(ctx)] { routeAndSend(ctx); });
  return Status::ok();
}

void TpuClient::routeAndSend(const std::shared_ptr<InvokeContext>& ctx) {
  // Stage 2: route via the pod's LBS and transmit the frame. If the chosen
  // TPU Service stopped answering (tRPi died between the failure and the
  // recovery reconfiguring our weights), fail over to the pod's other
  // shares before dropping the frame.
  TpuService* service = nullptr;
  const LbWeight* target = nullptr;
  std::size_t attempts = std::max<std::size_t>(1, lb_.config().weights.size());
  for (std::size_t i = 0; i < attempts && service == nullptr; ++i) {
    target = &lb_.config().weights[lb_.routeIndex()];
    service = directory_(target->tpuId);
  }
  if (service == nullptr) {
    ++failed_;
    ME_LOG(kWarning) << "no reachable TPU service for " << config_.model
                     << "; frame dropped";
    return;
  }
  ctx->breakdown.servedBy = target->tpuId;
  ctx->service = service;
  ctx->serviceNode = service->node();
  ctx->breakdown.requestTransmit = transport_.send(
      config_.clientNode, ctx->serviceNode, ctx->info.inputBytes(),
      [this, ctx] { onRequestDelivered(ctx); });
}

void TpuClient::onRequestDelivered(const std::shared_ptr<InvokeContext>& ctx) {
  // Stage 3: inference on the (serial, run-to-completion) TPU.
  Status s = ctx->service->invoke(
      ctx->info.name, [this, ctx](const TpuDevice::InvokeStats& stats) {
        ctx->breakdown.queueDelay = stats.queueDelay;
        ctx->breakdown.inference = stats.serviceTime;
        // Stage 4: response back to the application pod.
        ctx->breakdown.responseTransmit = transport_.send(
            ctx->serviceNode, config_.clientNode, ctx->info.outputBytes,
            [this, ctx] { onResponseDelivered(ctx); });
      });
  if (!s.isOk()) {
    ++failed_;
    ME_LOG(kWarning) << "invoke on " << ctx->breakdown.servedBy
                     << " failed: " << s.toString();
  }
}

void TpuClient::onResponseDelivered(const std::shared_ptr<InvokeContext>& ctx) {
  // Stage 5: application post-processing.
  ctx->breakdown.postprocess = ctx->info.postprocessLatency;
  sim_.scheduleAfter(ctx->info.postprocessLatency,
                     [this, ctx] { complete(ctx); });
}

void TpuClient::complete(const std::shared_ptr<InvokeContext>& ctx) {
  ctx->breakdown.completed = sim_.now();
  ++completed_;
  if (ctx->done) ctx->done(ctx->breakdown);
}

}  // namespace microedge
