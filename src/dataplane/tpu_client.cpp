#include "dataplane/tpu_client.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace microedge {

std::string_view toString(FrameOutcome outcome) {
  switch (outcome) {
    case FrameOutcome::kInFlight:
      return "in-flight";
    case FrameOutcome::kCompleted:
      return "completed";
    case FrameOutcome::kTimedOut:
      return "timed-out";
    case FrameOutcome::kShed:
      return "shed";
    case FrameOutcome::kDroppedDeadTarget:
      return "dropped-dead-target";
    case FrameOutcome::kRejected:
      return "rejected";
    case FrameOutcome::kAdmissionRejected:
      return "admission-rejected";
  }
  return "unknown";
}

const std::string& FrameBreakdown::servedByName() const {
  static const std::string kEmpty;
  return servedBy.valid() ? tpuName(servedBy) : kEmpty;
}

TpuClient::TpuClient(Simulator& sim, const ModelRegistry& registry,
                     SimTransport& transport, Directory directory,
                     Config config, ShardRouter* router)
    : sim_(sim), registry_(registry), transport_(transport),
      directory_(std::move(directory)), config_(std::move(config)),
      router_(router), clientNode_(internNode(config_.clientNode)),
      model_(internModel(config_.model)), lb_(config_.spread) {
  lb_.setHealthConfig(config_.health);
  if (router_ != nullptr && router_->shardCount() > 1) {
    sharded_ = true;
    myShard_ = router_->shardOfNode(clientNode_);
  }
}

Status TpuClient::configureLb(const LbConfig& config) {
  Status s = lb_.configure(config);
  if (!s.isOk() || !config_.admission.enabled) return s;
  // Capacity line = the pushed share weights (milli units) scaled by the
  // overcommit knob. Control-plane path: a local vector is fine here; the
  // per-frame charge/credit path below allocates nothing.
  std::vector<AdmissionLedger::TargetCapacity> targets;
  targets.reserve(lb_.config().weights.size());
  for (const LbWeight& w : lb_.config().weights) {
    targets.push_back({w.tpu, w.weight});
  }
  admission_.reconfigure(targets.data(), targets.size(),
                         config_.admission.overcommit);
  // One model + one deadline per client, so the SLEDGE estimate
  // (execution / deadline) is a per-client constant. Zero disables the
  // per-frame check (no deadline, or the model is not registered yet —
  // deployments register models before pushing LB configs).
  const ModelInfo* info = registry_.byId(model_);
  if (info != nullptr && config_.frameDeadline > SimDuration::zero()) {
    const std::int64_t est =
        info->inferenceLatency.count() * 1000 / config_.frameDeadline.count();
    admissionEstimateMilli_ =
        static_cast<std::uint32_t>(std::max<std::int64_t>(1, est));
  } else {
    admissionEstimateMilli_ = 0;
  }
  return s;
}

TpuClient::~TpuClient() {
  // One id to cancel, however many frames are in flight (the harness keeps
  // clients alive until the simulation drains, but don't leave a timer
  // pointing at a dead `this` if someone tears down early).
  if (dlTimer_.valid()) sim_.cancel(dlTimer_);
  if (onDestroy_) onDestroy_(this);
}

// ---- Deadline queue ---------------------------------------------------------

void TpuClient::dlEnqueue(Handle h, InvokeContext* c) {
  c->dlPrev = dlTail_;
  c->dlNext = Handle{};
  if (dlTail_.valid()) {
    pool_.get(dlTail_)->dlNext = h;
  } else {
    dlHead_ = h;
  }
  dlTail_ = h;
  // Monotonic deadlines: an armed timer always targets a time <= this
  // frame's deadline, so only an idle queue needs a fresh event. During a
  // sweep the epilogue of onDeadlineTimer re-arms instead.
  if (!dlTimer_.valid() && !dlSweeping_) {
    dlTimer_ = sim_.schedule(c->deadlineAt, [this] { onDeadlineTimer(); });
  }
}

void TpuClient::dlUnlink(Handle h, InvokeContext* c) {
  const bool queued =
      c->dlPrev.valid() || c->dlNext.valid() || dlHead_ == h;
  if (!queued) return;  // frame terminated before it was ever enqueued
  if (c->dlPrev.valid()) {
    pool_.get(c->dlPrev)->dlNext = c->dlNext;
  } else {
    dlHead_ = c->dlNext;
  }
  if (c->dlNext.valid()) {
    pool_.get(c->dlNext)->dlPrev = c->dlPrev;
  } else {
    dlTail_ = c->dlPrev;
  }
  c->dlPrev = Handle{};
  c->dlNext = Handle{};
  // The timer deliberately stays armed — even when the queue just emptied.
  // It fires at the departed head's deadline, finds whatever is at the head
  // then, and re-arms forward (or lazily disarms on an empty queue). That
  // is at most one spurious wake per deadline window, instead of a heap
  // cancel per completing frame; the price is one pending no-op event that
  // can hold a fully-drained simulation for up to one frameDeadline.
}

void TpuClient::dlReplace(Handle h, InvokeContext* c, Handle nh,
                          InvokeContext* nc) {
  const bool queued =
      c->dlPrev.valid() || c->dlNext.valid() || dlHead_ == h;
  nc->dlPrev = c->dlPrev;
  nc->dlNext = c->dlNext;
  if (!queued) return;
  if (nc->dlPrev.valid()) {
    pool_.get(nc->dlPrev)->dlNext = nh;
  } else {
    dlHead_ = nh;
  }
  if (nc->dlNext.valid()) {
    pool_.get(nc->dlNext)->dlPrev = nh;
  } else {
    dlTail_ = nh;
  }
  c->dlPrev = Handle{};
  c->dlNext = Handle{};
}

void TpuClient::onDeadlineTimer() {
  dlTimer_ = EventId{};
  dlSweeping_ = true;  // completion callbacks may re-enter invoke()
  const SimTime now = sim_.now();
  while (dlHead_.valid()) {
    Handle h = dlHead_;
    InvokeContext* c = pool_.get(h);
    if (c->deadlineAt > now) break;
    // A timeout is breaker feedback: a hung service or a lossy link shows
    // up as frames that never come back.
    lb_.recordFailure(c->targetIndex, now);
    finish(h, FrameOutcome::kTimedOut);  // unlinks h, advancing dlHead_
  }
  dlSweeping_ = false;
  if (dlHead_.valid()) {
    dlTimer_ = sim_.rearmCurrentAfter(pool_.get(dlHead_)->deadlineAt - now);
  }
}

std::uint64_t TpuClient::frameMsgKey(std::uint64_t frameId,
                                     std::uint32_t attempt,
                                     std::uint32_t hop) const {
  if (config_.streamToken == 0) return SimTransport::kUnkeyed;
  // splitMix64 chain over (token, frame, attempt, hop): full-avalanche, so
  // adjacent frames of one stream decorrelate under a loss window, and the
  // key depends on nothing positional (lane, draw order, shard count).
  std::uint64_t key = splitMix64(config_.streamToken ^ splitMix64(frameId));
  key = splitMix64(key ^ ((static_cast<std::uint64_t>(attempt) << 1) | hop));
  return key != 0 ? key : 1;  // 0 is reserved for "unkeyed"
}

TpuService* TpuClient::routeToLiveTarget(std::size_t* index) {
  // Route at submit time (the WRR state only advances here). A healthy-state
  // draw that resolves to a removed service — the tRPi died between the
  // failure and the recovery reconfiguring our weights — feeds the breaker
  // and re-draws, so a dead target is masked after a few frames and the
  // pod's surviving shares carry the stream through the detection window.
  const SimTime now = sim_.now();
  const std::size_t attempts = lb_.config().weights.size() + 1;
  for (std::size_t i = 0; i < attempts; ++i) {
    std::size_t idx = lb_.routeHealthyIndex(now);
    if (idx == LbService::kNoTarget) return nullptr;
    TpuService* service = directory_(lb_.config().weights[idx].tpu);
    if (service != nullptr) {
      *index = idx;
      return service;
    }
    lb_.recordFailure(idx, now);
  }
  return nullptr;
}

Status TpuClient::invoke(CompletionCallback done) {
  if (stopped_) return failedPrecondition("TPU client is stopped");
  if (!lb_.configured()) {
    return failedPrecondition("TPU client LB not configured");
  }
  const ModelInfo* info = registry_.byId(model_);
  if (info == nullptr) {
    return notFound(strCat("model not registered: ", config_.model));
  }

  std::size_t index = 0;
  TpuService* service = routeToLiveTarget(&index);

  // Per-frame admission: charge the routed target's ledger entry before any
  // slab slot or transport event exists, so a rejection costs a stack-built
  // breakdown and nothing else. estimate == 0 means admission is off and the
  // submit path is untouched.
  std::uint32_t ledgerEntry = AdmissionLedger::kNoEntry;
  std::uint32_t ledgerCharge = 0;
  if (service != nullptr && admissionEstimateMilli_ != 0) {
    ledgerEntry = admission_.entryFor(lb_.config().weights[index].tpu);
    if (ledgerEntry != AdmissionLedger::kNoEntry) {
      if (!admission_.tryCharge(ledgerEntry, admissionEstimateMilli_)) {
        ++submitted_;
        ++failed_;
        ++outcomes_[static_cast<std::size_t>(
            FrameOutcome::kAdmissionRejected)];
        FrameBreakdown b;
        b.frameId = nextFrameId_++;
        b.submitted = sim_.now();
        b.outcome = FrameOutcome::kAdmissionRejected;
        if (done) done(b);
        return Status::ok();
      }
      ledgerCharge = admissionEstimateMilli_;
    }
  }

  ++submitted_;
  Handle h = pool_.acquire();
  InvokeContext* c = pool_.get(h);
  c->breakdown = FrameBreakdown{};
  c->breakdown.frameId = nextFrameId_++;
  c->breakdown.submitted = sim_.now();
  c->dlPrev = Handle{};  // recycled slot: clear stale queue links
  c->dlNext = Handle{};
  c->ledgerEntry = ledgerEntry;
  c->ledgerCharge = ledgerCharge;
  c->done = std::move(done);
  if (service == nullptr) {
    // Every target is dead or masked: terminal drop, explicitly counted (the
    // completion still fires so the application sees the loss).
    ME_LOG(kWarning) << "no reachable TPU service for " << config_.model
                     << "; frame dropped";
    finish(h, FrameOutcome::kDroppedDeadTarget);
    return Status::ok();
  }
  c->breakdown.preprocess = info->preprocessLatency;
  c->breakdown.servedBy = lb_.config().weights[index].tpu;
  c->serviceNode = service->nodeId();
  c->inputBytes = info->inputBytes();
  c->outputBytes = info->outputBytes;
  c->inferenceEstimate = info->inferenceLatency;
  c->postprocessLatency = info->postprocessLatency;
  c->targetIndex = static_cast<std::uint32_t>(index);

  // Deadline: append to the client's intrusive deadline FIFO — a few index
  // writes; the one client-wide timer is armed only when the queue was
  // idle. No per-frame event, no allocation.
  if (config_.frameDeadline > SimDuration::zero()) {
    c->deadlineAt = c->breakdown.submitted + config_.frameDeadline;
    dlEnqueue(h, c);
  }

  // Stages 1+2 fused: client-side resize to the model's input resolution,
  // then the request hop. The preprocess stage delays departure
  // (departAfter) rather than taking its own event; only the wire latency
  // lands in requestTransmit.
  if (sharded_ && router_->shardOfNode(c->serviceNode) != myShard_) {
    submitRemote(h, c, /*departAfter=*/info->preprocessLatency);
    return Status::ok();
  }
  c->breakdown.requestTransmit = transport_.send(
      clientNode_, c->serviceNode, c->inputBytes,
      [this, h] { onRequestDelivered(h); },
      /*departAfter=*/info->preprocessLatency,
      frameMsgKey(c->breakdown.frameId, /*attempt=*/0, /*hop=*/0));
  return Status::ok();
}

// ---- Batched ingest ---------------------------------------------------------

Status TpuClient::submitBurst(std::span<FrameSpec> frames) {
  if (stopped_) return failedPrecondition("TPU client is stopped");
  if (!lb_.configured()) {
    return failedPrecondition("TPU client LB not configured");
  }
  const ModelInfo* info = registry_.byId(model_);
  if (info == nullptr) {
    return notFound(strCat("model not registered: ", config_.model));
  }
  const std::size_t k = frames.size();
  if (k == 0) return Status::ok();

  // Burst prologue: one WRR cycle-cache walk and one slab-run acquisition
  // for the whole burst. Both are pure prefetches — every downstream
  // decision still happens per frame, in submit order, against live state.
  lb_.beginBurst(k);
  const std::size_t base = burstScratch_.size();
  pool_.acquireRun(k, burstScratch_);
  BurstState burst;
  const SimTime now = sim_.now();
  burst.deadlineAt = now + config_.frameDeadline;

  for (std::size_t i = 0; i < k; ++i) {
    std::size_t index = 0;
    TpuService* service = routeToLiveTarget(&index);
    // Same admission gate as invoke(), at the same sequential position. A
    // rejected frame gives back its pre-acquired slot and fires its callback
    // mid-burst exactly where sequential would — after a flush, so
    // re-entrant submissions observe sequential state.
    std::uint32_t ledgerEntry = AdmissionLedger::kNoEntry;
    std::uint32_t ledgerCharge = 0;
    if (service != nullptr && admissionEstimateMilli_ != 0) {
      ledgerEntry = admission_.entryFor(lb_.config().weights[index].tpu);
      if (ledgerEntry != AdmissionLedger::kNoEntry) {
        if (!admission_.tryCharge(ledgerEntry, admissionEstimateMilli_)) {
          ++submitted_;
          ++failed_;
          ++outcomes_[static_cast<std::size_t>(
              FrameOutcome::kAdmissionRejected)];
          FrameBreakdown b;
          b.frameId = nextFrameId_++;
          b.submitted = now;
          b.outcome = FrameOutcome::kAdmissionRejected;
          pool_.release(burstScratch_[base + i]);
          CompletionCallback done = std::move(frames[i].done);
          flushBurst(burst);
          if (done) done(b);
          continue;
        }
        ledgerCharge = admissionEstimateMilli_;
      }
    }
    ++submitted_;
    // Index by value each iteration: a re-entrant burst from a mid-loop
    // completion callback may reallocate the scratch vector.
    Handle h = burstScratch_[base + i];
    InvokeContext* c = pool_.get(h);
    c->breakdown = FrameBreakdown{};
    c->breakdown.frameId = nextFrameId_++;
    c->breakdown.submitted = now;
    c->dlPrev = Handle{};
    c->dlNext = Handle{};
    c->ledgerEntry = ledgerEntry;
    c->ledgerCharge = ledgerCharge;
    c->done = std::move(frames[i].done);
    if (service == nullptr) {
      ME_LOG(kWarning) << "no reachable TPU service for " << config_.model
                       << "; frame dropped";
      // Sequential fires this callback between frame i-1 and i+1; flush so
      // it observes (and its re-entrant submissions extend) the same
      // deadline-queue and event state it would have seen there.
      flushBurst(burst);
      finish(h, FrameOutcome::kDroppedDeadTarget);
      continue;
    }
    c->breakdown.preprocess = info->preprocessLatency;
    c->breakdown.servedBy = lb_.config().weights[index].tpu;
    c->serviceNode = service->nodeId();
    c->inputBytes = info->inputBytes();
    c->outputBytes = info->outputBytes;
    c->inferenceEstimate = info->inferenceLatency;
    c->postprocessLatency = info->postprocessLatency;
    c->targetIndex = static_cast<std::uint32_t>(index);
    if (config_.frameDeadline > SimDuration::zero()) {
      // Locally-linked chain, spliced onto the queue in one append at flush
      // (all frames of the burst share submit time, hence deadline).
      c->deadlineAt = burst.deadlineAt;
      c->dlPrev = burst.chainTail;
      if (burst.chainTail.valid()) {
        pool_.get(burst.chainTail)->dlNext = h;
      } else {
        burst.chainHead = h;
      }
      burst.chainTail = h;
    }
    if (sharded_ && router_->shardOfNode(c->serviceNode) != myShard_) {
      // Cross-shard frames stay per-frame: mailbox sequence numbers must
      // preserve submit order, and the remote path allocates anyway.
      submitRemote(h, c, /*departAfter=*/info->preprocessLatency);
      continue;
    }
    // Coalesce by arrival latency. The network charges every non-loopback
    // pair the same base + size cost, so all non-loopback frames of the
    // burst share one delivery timestamp regardless of target node — one
    // event replaces up to k. Loopback (a target on the client's own node)
    // is the one other latency class.
    const int which = c->serviceNode == clientNode_ ? 1 : 0;
    GroupHandle& gh = burst.group[which];
    if (!gh.valid()) {
      gh = groupPool_.acquire();
      groupPool_.get(gh)->members.clear();
    }
    groupPool_.get(gh)->members.push_back(h);
  }
  flushBurst(burst);
  burstScratch_.resize(base);
  return Status::ok();
}

void TpuClient::flushBurst(BurstState& burst) {
  // Deadline splice first: sequential arms the timer during the first
  // routed frame's dlEnqueue, before any delivery event is scheduled, so
  // the timer's event id sorts ahead of same-timestamp deliveries.
  if (burst.chainHead.valid()) {
    pool_.get(burst.chainHead)->dlPrev = dlTail_;
    if (dlTail_.valid()) {
      pool_.get(dlTail_)->dlNext = burst.chainHead;
    } else {
      dlHead_ = burst.chainHead;
    }
    dlTail_ = burst.chainTail;
    if (!dlTimer_.valid() && !dlSweeping_) {
      dlTimer_ =
          sim_.schedule(burst.deadlineAt, [this] { onDeadlineTimer(); });
    }
    burst.chainHead = Handle{};
    burst.chainTail = Handle{};
  }
  closeBurstGroup(burst, 0);
  closeBurstGroup(burst, 1);
}

void TpuClient::closeBurstGroup(BurstState& burst, int which) {
  GroupHandle gh = burst.group[which];
  if (!gh.valid()) return;
  burst.group[which] = GroupHandle{};
  BurstGroup* g = groupPool_.get(gh);
  const std::size_t n = g->members.size();
  InvokeContext* first = pool_.get(g->members[0]);
  keyScratch_.clear();
  for (Handle h : g->members) {
    InvokeContext* c = pool_.get(h);
    keyScratch_.push_back(
        frameMsgKey(c->breakdown.frameId, c->breakdown.failovers, /*hop=*/0));
  }
  latScratch_.resize(n);
  dropScratch_.resize(n);
  // The first member's node stands in for the whole group: every member
  // shares the latency class `which` encodes (all non-loopback pairs model
  // to the same latency for equal bytes), and the transport's accounting
  // never records endpoints — so counters, draws and latencies are exactly
  // the member-wise ones.
  bool scheduled = transport_.sendCoalesced(
      clientNode_, first->serviceNode, first->inputBytes, keyScratch_.data(),
      n, dropScratch_.data(), latScratch_.data(),
      [this, gh] { onBurstDelivered(gh); },
      /*departAfter=*/first->breakdown.preprocess);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    InvokeContext* c = pool_.get(g->members[i]);
    c->breakdown.requestTransmit = latScratch_[i];
    // A message the fault window ate never delivers (send() semantics): the
    // frame leaves the fan-out list and sits in flight until its deadline.
    if (dropScratch_[i] == 0) g->members[kept++] = g->members[i];
  }
  g->members.resize(kept);
  if (!scheduled) {
    g->members.clear();
    groupPool_.release(gh);
  }
}

void TpuClient::onBurstDelivered(GroupHandle gh) {
  BurstGroup* g = groupPool_.get(gh);
  if (g == nullptr) return;
  // Batched FIFO reservation: one capacity hint per same-target run before
  // the per-frame invokes push. Purely pre-sizing — no queue contents move.
  const std::size_t n = g->members.size();
  std::size_t i = 0;
  while (i < n) {
    InvokeContext* c = pool_.get(g->members[i]);
    if (c == nullptr) {
      ++i;  // frame terminated while the burst was on the wire
      continue;
    }
    std::size_t run = 1;
    while (i + run < n) {
      InvokeContext* next = pool_.get(g->members[i + run]);
      if (next == nullptr || !(next->breakdown.servedBy == c->breakdown.servedBy)) {
        break;
      }
      ++run;
    }
    if (run > 1) {
      TpuService* service = directory_(c->breakdown.servedBy);
      if (service != nullptr) service->reserveBacklog(run);
    }
    i += run;
  }
  // Fan out in submit order == the order sequential deliveries (consecutive
  // event ids at one timestamp) would have executed.
  for (Handle h : g->members) onRequestDelivered(h);
  g->members.clear();
  groupPool_.release(gh);
}

// ---- Cross-shard remote path ------------------------------------------------

void TpuClient::submitRemote(Handle h, InvokeContext* c,
                             SimDuration departAfter) {
  bool dropped = false;
  SimDuration reqLat = transport_.sendRouted(
      clientNode_, c->serviceNode, c->inputBytes, &dropped,
      frameMsgKey(c->breakdown.frameId, c->breakdown.failovers, /*hop=*/0));
  c->breakdown.requestTransmit += reqLat;
  if (dropped) return;  // lost on the wire; the deadline timer notices
  RemoteHop hop;
  hop.client = this;
  hop.h = h;
  hop.target = c->breakdown.servedBy;
  hop.model = model_;
  hop.serviceNode = c->serviceNode;
  hop.clientNode = clientNode_;
  hop.clientShard = myShard_;
  hop.inferenceEstimate = c->inferenceEstimate;
  hop.deadlineAt = config_.frameDeadline > SimDuration::zero()
                       ? c->deadlineAt
                       : SimTime::max();
  hop.outputBytes = c->outputBytes;
  hop.postprocess = c->postprocessLatency;
  hop.respKey =
      frameMsgKey(c->breakdown.frameId, c->breakdown.failovers, /*hop=*/1);
  // Arrival time is exactly the solo path's: now + departAfter + transfer
  // latency. Cross-shard implies cross-node, so reqLat >= the network base
  // latency == the router's lookahead and the mailbox invariant holds.
  const SimTime arriveAt = sim_.now() + departAfter + reqLat;
  router_->postToShard(router_->shardOfNode(c->serviceNode), arriveAt,
                       [hop] { remoteArrival(hop); });
}

void TpuClient::remoteArrival(RemoteHop hop) {
  // Runs on the service shard: only the envelope, the service's own state
  // and this shard's transport lane may be touched here.
  TpuClient* client = hop.client;
  Simulator& sim = client->router_->currentSim();
  TpuService* service = client->directory_(hop.target);
  if (service == nullptr) {
    postRemoteNack(hop, RemoteNack::kDeadTarget);
    return;
  }
  // Deadline-based shedding, same predicate as onRequestDelivered.
  if (hop.deadlineAt != SimTime::max()) {
    SimDuration wait =
        service->device().estimatedBacklog(sim.now(), hop.inferenceEstimate);
    if (sim.now() + wait + hop.inferenceEstimate > hop.deadlineAt) {
      postRemoteNack(hop, RemoteNack::kShed);
      return;
    }
  }
  Status s = service->invoke(
      hop.model, [hop](const TpuDevice::InvokeStats& stats) {
        remoteComplete(hop, stats);
      });
  if (!s.isOk()) postRemoteNack(hop, RemoteNack::kRejected);
}

void TpuClient::remoteComplete(const RemoteHop& hop,
                               const TpuDevice::InvokeStats& stats) {
  // Still on the service shard, at the device's finish time t2. The
  // response hop is modelled on this shard's lane; the client-side
  // completion lands at t2 + postprocess + respLat — identical to the solo
  // formulation's fused stages 4+5.
  TpuClient* client = hop.client;
  Simulator& sim = client->router_->currentSim();
  bool dropped = false;
  SimDuration respLat = client->transport_.sendRouted(
      hop.serviceNode, hop.clientNode, hop.outputBytes, &dropped, hop.respKey);
  if (dropped) return;
  const SimTime deliverAt = sim.now() + hop.postprocess + respLat;
  client->router_->postToShard(
      hop.clientShard, deliverAt,
      [client, h = hop.h, queueDelay = stats.queueDelay,
       serviceTime = stats.serviceTime, respLat] {
        client->onRemoteDone(h, queueDelay, serviceTime, respLat);
      });
}

void TpuClient::postRemoteNack(const RemoteHop& hop, RemoteNack kind) {
  // Arrival-time failure: solo resolves these synchronously on the client;
  // cross-shard the client learns one control message later. Zero-byte
  // piggyback — deliberately not counted in the transport's counters.
  TpuClient* client = hop.client;
  Simulator& sim = client->router_->currentSim();
  SimDuration delay = std::max(
      client->transport_.network().controlLatency(hop.serviceNode,
                                                  hop.clientNode),
      client->router_->lookahead());
  client->router_->postToShard(
      hop.clientShard, sim.now() + delay,
      [client, h = hop.h, kind] { client->onRemoteNack(h, kind); });
}

void TpuClient::onRemoteDone(Handle h, SimDuration queueDelay,
                             SimDuration serviceTime,
                             SimDuration responseTransmit) {
  InvokeContext* c = pool_.get(h);
  if (c == nullptr) return;  // frame already terminal; stale event
  c->breakdown.queueDelay = queueDelay;
  c->breakdown.inference = serviceTime;
  c->breakdown.postprocess = c->postprocessLatency;
  c->breakdown.responseTransmit = responseTransmit;
  finish(h, FrameOutcome::kCompleted);
}

void TpuClient::onRemoteNack(Handle h, RemoteNack kind) {
  InvokeContext* c = pool_.get(h);
  if (c == nullptr) return;  // deadline beat the NACK home; stale event
  switch (kind) {
    case RemoteNack::kShed:
      // Mirrors onRequestDelivered: shedding is not breaker feedback (the
      // target is alive, just oversubscribed).
      finish(h, FrameOutcome::kShed);
      return;
    case RemoteNack::kDeadTarget:
      lb_.recordFailure(c->targetIndex, sim_.now());
      if (!tryFailover(h, c)) finish(h, FrameOutcome::kDroppedDeadTarget);
      return;
    case RemoteNack::kRejected:
      lb_.recordFailure(c->targetIndex, sim_.now());
      if (!tryFailover(h, c)) finish(h, FrameOutcome::kRejected);
      return;
  }
}

bool TpuClient::tryFailover(Handle h, InvokeContext* c) {
  if (c->breakdown.failovers >= config_.maxFailovers) return false;
  std::size_t index = 0;
  TpuService* service = routeToLiveTarget(&index);
  if (service == nullptr) return false;

  // Move the frame into a fresh slot: the generation check then retires
  // every event still addressed to the old attempt (a completion from a
  // device that kept executing the first request, the old deadline timer)
  // without bookkeeping. Slot recycling is O(1) and allocation-free.
  Handle nh = pool_.acquire();
  InvokeContext* nc = pool_.get(nh);
  nc->breakdown = c->breakdown;
  nc->inputBytes = c->inputBytes;
  nc->outputBytes = c->outputBytes;
  nc->inferenceEstimate = c->inferenceEstimate;
  nc->postprocessLatency = c->postprocessLatency;
  nc->deadlineAt = c->deadlineAt;
  // The ledger charge follows the frame, not the attempt: the new slot
  // carries it to its terminal outcome (credited once, in finish); the old
  // slot is released below without ever reaching finish. The charge stays
  // against the original entry — conservation is per-frame, and re-charging
  // the failover target could deadlock a frame mid-recovery.
  nc->ledgerEntry = c->ledgerEntry;
  nc->ledgerCharge = c->ledgerCharge;
  c->ledgerCharge = 0;
  nc->done = std::move(c->done);
  c->done = nullptr;
  // The deadline is a property of the frame, not of the attempt: the new
  // slot takes over the old one's queue position (same absolute deadline,
  // so FIFO order is preserved) and the armed timer is untouched.
  dlReplace(h, c, nh, nc);
  pool_.release(h);

  ++nc->breakdown.failovers;
  ++failovers_;
  nc->breakdown.servedBy = lb_.config().weights[index].tpu;
  nc->serviceNode = service->nodeId();
  nc->targetIndex = static_cast<std::uint32_t>(index);
  // Re-ship the already-preprocessed frame to the new target; transmit cost
  // accumulates across attempts.
  if (sharded_ && router_->shardOfNode(nc->serviceNode) != myShard_) {
    submitRemote(nh, nc, SimDuration::zero());
    return true;
  }
  nc->breakdown.requestTransmit += transport_.send(
      clientNode_, nc->serviceNode, nc->inputBytes,
      [this, nh] { onRequestDelivered(nh); }, SimDuration::zero(),
      frameMsgKey(nc->breakdown.frameId, nc->breakdown.failovers, /*hop=*/0));
  return true;
}

void TpuClient::onRequestDelivered(Handle h) {
  InvokeContext* c = pool_.get(h);
  if (c == nullptr) return;  // frame already terminal; stale event
  // Stage 3: inference on the (serial, run-to-completion) TPU. The service
  // is re-resolved by dense handle at arrival — if it was removed while the
  // frame was on the wire, the frame fails over instead of touching a dead
  // instance.
  TpuService* service = directory_(c->breakdown.servedBy);
  if (service == nullptr) {
    lb_.recordFailure(c->targetIndex, sim_.now());
    if (!tryFailover(h, c)) {
      ME_LOG(kWarning) << "TPU service " << c->breakdown.servedByName()
                       << " vanished mid-flight; frame dropped";
      finish(h, FrameOutcome::kDroppedDeadTarget);
    }
    return;
  }
  // Deadline-based shedding: if the device backlog plus our own service
  // time already overruns the deadline, drop now instead of queueing work
  // whose result nobody can use. Conservative (response hop and postprocess
  // are not included) and no breaker feedback — the target is alive, just
  // momentarily oversubscribed.
  if (config_.frameDeadline > SimDuration::zero()) {
    SimDuration wait =
        service->device().estimatedBacklog(sim_.now(), c->inferenceEstimate);
    if (sim_.now() + wait + c->inferenceEstimate > c->deadlineAt) {
      finish(h, FrameOutcome::kShed);
      return;
    }
  }
  Status s = service->invoke(model_, [this, h](const TpuDevice::InvokeStats&
                                                   stats) {
    onInvokeDone(h, stats);
  });
  if (!s.isOk()) {
    lb_.recordFailure(c->targetIndex, sim_.now());
    if (!tryFailover(h, c)) {
      ME_LOG(kWarning) << "invoke on " << c->breakdown.servedByName()
                       << " failed: " << s.toString();
      finish(h, FrameOutcome::kRejected);
    }
  }
}

void TpuClient::onInvokeDone(Handle h, const TpuDevice::InvokeStats& stats) {
  InvokeContext* c = pool_.get(h);
  if (c == nullptr) return;
  c->breakdown.queueDelay = stats.queueDelay;
  c->breakdown.inference = stats.serviceTime;
  c->breakdown.postprocess = c->postprocessLatency;
  // Stages 4+5 fused: response hop back to the application pod, with the
  // post-processing stage folded into the delivery event (departAfter on
  // the receive side is symmetric: completion fires at
  // now + latency + postprocess either way).
  c->breakdown.responseTransmit = transport_.send(
      c->serviceNode, clientNode_, c->outputBytes,
      [this, h] { finish(h, FrameOutcome::kCompleted); },
      /*departAfter=*/c->postprocessLatency,
      frameMsgKey(c->breakdown.frameId, c->breakdown.failovers, /*hop=*/1));
}

void TpuClient::finish(Handle h, FrameOutcome outcome) {
  InvokeContext* c = pool_.get(h);
  if (c == nullptr) return;
  dlUnlink(h, c);
  // Exactly-one-credit: finish is the single terminal path, so crediting
  // here covers every outcome — completion, timeout, shed, dead-target
  // drops, remote NACKs, and failover chains (the charge rode to this slot).
  if (c->ledgerCharge != 0) {
    admission_.credit(c->ledgerEntry, c->ledgerCharge);
    c->ledgerCharge = 0;
  }
  c->breakdown.outcome = outcome;
  ++outcomes_[static_cast<std::size_t>(outcome)];
  if (outcome == FrameOutcome::kCompleted) {
    c->breakdown.completed = sim_.now();
    lb_.recordSuccess(c->targetIndex);
    ++completed_;
  } else {
    ++failed_;
  }
  // Release the slot before running the completion: the callback may
  // re-enter invoke() (closed-loop drivers) and legitimately reuse it.
  FrameBreakdown result = c->breakdown;
  CompletionCallback done = std::move(c->done);
  c->done = nullptr;
  pool_.release(h);
  if (done) done(result);
}

void TpuClient::onServiceRemoved(TpuId tpu) {
  // Snapshot first: failovers acquire fresh slots while we walk the pool.
  std::vector<Handle> doomed;
  pool_.forEachLive([&](Handle h, InvokeContext& c) {
    if (c.breakdown.servedBy == tpu) doomed.push_back(h);
  });
  if (doomed.empty()) return;
  // Canonical submission order, not pool-slot order: slot identities differ
  // between invoke() and submitBurst() (run acquisition vs LIFO recycling),
  // so the broadcast's failover/breaker sequence must key on frame ids to
  // stay bit-identical across ingest modes.
  std::sort(doomed.begin(), doomed.end(), [this](Handle a, Handle b) {
    return pool_.get(a)->breakdown.frameId < pool_.get(b)->breakdown.frameId;
  });
  const SimTime now = sim_.now();
  for (Handle h : doomed) {
    InvokeContext* c = pool_.get(h);
    if (c == nullptr) continue;
    lb_.recordFailure(c->targetIndex, now);
    if (!tryFailover(h, c)) finish(h, FrameOutcome::kDroppedDeadTarget);
  }
}

}  // namespace microedge
