#include "dataplane/tpu_client.hpp"

#include <algorithm>
#include <utility>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace microedge {

const std::string& FrameBreakdown::servedByName() const {
  static const std::string kEmpty;
  return servedBy.valid() ? tpuName(servedBy) : kEmpty;
}

TpuClient::TpuClient(Simulator& sim, const ModelRegistry& registry,
                     SimTransport& transport, Directory directory,
                     Config config)
    : sim_(sim), registry_(registry), transport_(transport),
      directory_(std::move(directory)), config_(std::move(config)),
      clientNode_(internNode(config_.clientNode)),
      model_(internModel(config_.model)), lb_(config_.spread) {}

Status TpuClient::invoke(CompletionCallback done) {
  if (stopped_) return failedPrecondition("TPU client is stopped");
  if (!lb_.configured()) {
    return failedPrecondition("TPU client LB not configured");
  }
  const ModelInfo* info = registry_.byId(model_);
  if (info == nullptr) {
    return notFound(strCat("model not registered: ", config_.model));
  }

  // Route first: the decision is made at submit time (same LB sequence as
  // routing after the preprocess delay — the WRR state only advances here),
  // so a dead target is discovered before any event is scheduled. If the
  // chosen TPU Service stopped answering (tRPi died between the failure and
  // the recovery reconfiguring our weights), fail over to the pod's other
  // shares before dropping the frame.
  TpuService* service = nullptr;
  const LbWeight* target = nullptr;
  std::size_t attempts = std::max<std::size_t>(1, lb_.config().weights.size());
  for (std::size_t i = 0; i < attempts && service == nullptr; ++i) {
    target = &lb_.config().weights[lb_.routeIndex()];
    service = directory_(target->tpu);
  }
  if (service == nullptr) {
    ++submitted_;
    ++failed_;
    ME_LOG(kWarning) << "no reachable TPU service for " << config_.model
                     << "; frame dropped";
    return Status::ok();
  }

  Handle h = pool_.acquire();
  InvokeContext* c = pool_.get(h);
  c->breakdown = FrameBreakdown{};
  c->breakdown.frameId = nextFrameId_++;
  c->breakdown.submitted = sim_.now();
  c->breakdown.preprocess = info->preprocessLatency;
  c->breakdown.servedBy = target->tpu;
  c->serviceNode = service->nodeId();
  c->outputBytes = info->outputBytes;
  c->postprocessLatency = info->postprocessLatency;
  c->done = std::move(done);
  ++submitted_;

  // Stages 1+2 fused: client-side resize to the model's input resolution,
  // then the request hop. The preprocess stage delays departure
  // (departAfter) rather than taking its own event; only the wire latency
  // lands in requestTransmit.
  c->breakdown.requestTransmit = transport_.send(
      clientNode_, c->serviceNode, info->inputBytes(),
      [this, h] { onRequestDelivered(h); },
      /*departAfter=*/info->preprocessLatency);
  return Status::ok();
}

void TpuClient::onRequestDelivered(Handle h) {
  InvokeContext* c = pool_.get(h);
  if (c == nullptr) return;  // frame was dropped; stale event
  // Stage 3: inference on the (serial, run-to-completion) TPU. The service
  // is re-resolved by dense handle at arrival — if it was removed while the
  // frame was on the wire, the frame is dropped here instead of touching a
  // dead instance.
  TpuService* service = directory_(c->breakdown.servedBy);
  if (service == nullptr) {
    ME_LOG(kWarning) << "TPU service " << c->breakdown.servedByName()
                     << " vanished mid-flight; frame dropped";
    fail(h);
    return;
  }
  Status s = service->invoke(model_, [this, h](const TpuDevice::InvokeStats&
                                                   stats) {
    onInvokeDone(h, stats);
  });
  if (!s.isOk()) {
    ME_LOG(kWarning) << "invoke on " << c->breakdown.servedByName()
                     << " failed: " << s.toString();
    fail(h);
  }
}

void TpuClient::onInvokeDone(Handle h, const TpuDevice::InvokeStats& stats) {
  InvokeContext* c = pool_.get(h);
  if (c == nullptr) return;
  c->breakdown.queueDelay = stats.queueDelay;
  c->breakdown.inference = stats.serviceTime;
  c->breakdown.postprocess = c->postprocessLatency;
  // Stages 4+5 fused: response hop back to the application pod, with the
  // post-processing stage folded into the delivery event (departAfter on
  // the receive side is symmetric: completion fires at
  // now + latency + postprocess either way).
  c->breakdown.responseTransmit = transport_.send(
      c->serviceNode, clientNode_, c->outputBytes, [this, h] { complete(h); },
      /*departAfter=*/c->postprocessLatency);
}

void TpuClient::complete(Handle h) {
  InvokeContext* c = pool_.get(h);
  if (c == nullptr) return;
  c->breakdown.completed = sim_.now();
  ++completed_;
  // Release the slot before running the completion: the callback may
  // re-enter invoke() (closed-loop drivers) and legitimately reuse it.
  FrameBreakdown result = c->breakdown;
  CompletionCallback done = std::move(c->done);
  c->done = nullptr;
  pool_.release(h);
  if (done) done(result);
}

void TpuClient::fail(Handle h) {
  InvokeContext* c = pool_.get(h);
  if (c == nullptr) return;
  ++failed_;
  c->done = nullptr;
  pool_.release(h);
}

}  // namespace microedge
