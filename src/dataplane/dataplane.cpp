#include "dataplane/dataplane.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace microedge {

DataPlane::DataPlane(Simulator& sim, const ClusterTopology& topology,
                     const ModelRegistry& registry)
    : sim_(sim), registry_(registry), transport_(sim, topology.network()) {
  for (const auto& tpu : topology.tpus()) {
    auto service =
        std::make_unique<TpuService>(*tpu, topology.nodeOfTpu(tpu->id()));
    TpuId handle = service->tpu();
    if (handle.value >= serviceById_.size()) {
      serviceById_.resize(handle.value + 1, nullptr);
    }
    serviceById_[handle.value] = service.get();
    services_.emplace(tpu->id(), std::move(service));
  }
}

DataPlane::~DataPlane() {
  // Clients created by this plane may outlive it (harness teardown order is
  // the owner's business); detach their unregister hooks so a later client
  // destruction doesn't call into freed memory.
  for (TpuClient* client : clients_) client->setOnDestroy(nullptr);
}

TpuService* DataPlane::service(const std::string& tpuId) {
  auto it = services_.find(tpuId);
  return it == services_.end() ? nullptr : it->second.get();
}

TpuService* DataPlane::serviceById(TpuId tpu) {
  return tpu.valid() && tpu.value < serviceById_.size()
             ? serviceById_[tpu.value]
             : nullptr;
}

std::vector<TpuService*> DataPlane::services() {
  std::vector<TpuService*> out;
  out.reserve(services_.size());
  for (auto& [id, service] : services_) out.push_back(service.get());
  return out;
}

void DataPlane::removeService(const std::string& tpuId) {
  auto it = services_.find(tpuId);
  if (it == services_.end()) return;
  TpuId handle = it->second->tpu();
  if (handle.value < serviceById_.size()) {
    serviceById_[handle.value] = nullptr;
  }
  services_.erase(it);
  // Fail fast: frames already shipped toward the dead service would only
  // discover the loss at their arrival event; broadcast the removal so they
  // re-route (or terminate with an explicit outcome) right now.
  for (TpuClient* client : clients_) client->onServiceRemoved(handle);
}

Status DataPlane::executeLoad(const LoadCommand& command) {
  TpuService* target = service(command.tpuId);
  if (target == nullptr) {
    return unavailable(strCat("TPU service ", command.tpuId, " not running"));
  }
  return target->load(command);
}

void DataPlane::executeLoadWithRetry(LoadCommand command, ExpBackoff backoff,
                                     LoadDone done) {
  Status s = executeLoad(command);
  if (s.isOk() || backoff.maxAttempts == 0 ||
      service(command.tpuId) == nullptr) {
    if (done) done(s);
    return;
  }
  retryLoad(std::move(command), backoff, 0, std::move(done));
}

void DataPlane::retryLoad(LoadCommand command, ExpBackoff backoff,
                          std::uint32_t attempt, LoadDone done) {
  sim_.scheduleAfter(
      backoff.delay(attempt),
      [this, command = std::move(command), backoff, attempt,
       done = std::move(done)]() mutable {
        ++loadRetries_;
        Status s = executeLoad(command);
        // Success, budget exhausted, or the service disappeared while we
        // were backing off (permanent — eviction is the caller's move).
        if (s.isOk() || attempt + 1 >= backoff.maxAttempts ||
            service(command.tpuId) == nullptr) {
          if (done) done(s);
          return;
        }
        retryLoad(std::move(command), backoff, attempt + 1, std::move(done));
      });
}

std::unique_ptr<TpuClient> DataPlane::makeClient(std::string clientNode,
                                                 std::string model,
                                                 LbSpread spread) {
  TpuClient::Config config;
  config.clientNode = std::move(clientNode);
  config.model = std::move(model);
  config.spread = spread;
  return makeClient(std::move(config));
}

std::unique_ptr<TpuClient> DataPlane::makeClient(TpuClient::Config config) {
  auto client = std::make_unique<TpuClient>(
      sim_, registry_, transport_,
      [this](TpuId tpu) { return serviceById(tpu); }, std::move(config));
  clients_.push_back(client.get());
  client->setOnDestroy([this](TpuClient* dying) {
    clients_.erase(std::remove(clients_.begin(), clients_.end(), dying),
                   clients_.end());
  });
  return client;
}

}  // namespace microedge
