#include "dataplane/dataplane.hpp"

#include <algorithm>
#include <cassert>

#include "util/strings.hpp"

namespace microedge {

DataPlane::DataPlane(Simulator& sim, const ClusterTopology& topology,
                     const ModelRegistry& registry)
    : DataPlane(topology, registry, std::make_unique<SoloRouter>(sim),
                nullptr) {}

DataPlane::DataPlane(ShardRouter& router, const ClusterTopology& topology,
                     const ModelRegistry& registry)
    : DataPlane(topology, registry, nullptr, &router) {}

DataPlane::DataPlane(const ClusterTopology& topology,
                     const ModelRegistry& registry,
                     std::unique_ptr<SoloRouter> solo, ShardRouter* router)
    : soloRouter_(std::move(solo)),
      router_(router != nullptr ? *router : *soloRouter_),
      registry_(registry), transport_(router_, topology.network()) {
  const unsigned shards = router_.shardCount();
  serviceViews_.resize(shards);
  clientsByShard_.resize(shards);
  loadRetriesByShard_.assign(shards, 0);
  for (const auto& tpu : topology.tpus()) {
    auto service =
        std::make_unique<TpuService>(*tpu, topology.nodeOfTpu(tpu->id()));
    TpuId handle = service->tpu();
    for (unsigned s = 0; s < shards; ++s) {
      auto& view = serviceViews_[s];
      if (handle.value >= view.size()) view.resize(handle.value + 1, nullptr);
      view[handle.value] = service.get();
    }
    services_.emplace(tpu->id(), std::move(service));
  }
  liveCount_.assign(shards, services_.size());
}

DataPlane::~DataPlane() {
  // Clients created by this plane may outlive it (harness teardown order is
  // the owner's business); detach their unregister hooks so a later client
  // destruction doesn't call into freed memory.
  for (TpuClient* client : clients_) client->setOnDestroy(nullptr);
}

TpuService* DataPlane::service(const std::string& tpuId) {
  auto it = services_.find(tpuId);
  if (it == services_.end()) return nullptr;
  // The map never forgets a service; aliveness is the calling shard's view.
  return serviceById(it->second->tpu());
}

TpuService* DataPlane::serviceById(TpuId tpu) {
  const auto& view = serviceViews_[ShardRouter::currentShard()];
  return tpu.valid() && tpu.value < view.size() ? view[tpu.value] : nullptr;
}

std::vector<TpuService*> DataPlane::services() {
  std::vector<TpuService*> out;
  out.reserve(liveCount_[ShardRouter::currentShard()]);
  for (auto& [id, service] : services_) {
    if (serviceById(service->tpu()) != nullptr) out.push_back(service.get());
  }
  return out;
}

bool DataPlane::removeFromShard(unsigned shard, TpuId handle) {
  auto& view = serviceViews_[shard];
  if (handle.value >= view.size() || view[handle.value] == nullptr) {
    return false;
  }
  view[handle.value] = nullptr;
  --liveCount_[shard];
  // Fail fast: frames already shipped toward the dead service would only
  // discover the loss at their arrival event; broadcast the removal so they
  // re-route (or terminate with an explicit outcome) right now. Only this
  // shard's clients — their state belongs to this shard's event loop.
  for (TpuClient* client : clientsByShard_[shard]) {
    client->onServiceRemoved(handle);
  }
  return true;
}

void DataPlane::removeService(const std::string& tpuId) {
  auto it = services_.find(tpuId);
  if (it == services_.end()) return;
  TpuService* service = it->second.get();
  const TpuId handle = service->tpu();
  const unsigned here = ShardRouter::currentShard();
  const unsigned shards = router_.shardCount();
  // Sharded runs: the removal must originate on the service's owner shard
  // (the failure is a local hardware event there).
  assert(shards == 1 || router_.shardOfNode(service->nodeId()) == here);
  if (!removeFromShard(here, handle)) return;  // already removed
  if (shards > 1) {
    // Failure-detection broadcast: every other shard observes the removal
    // one lookahead later — the minimum cross-shard notification latency
    // the conservative window already accounts for.
    const SimTime noticeAt = router_.currentSim().now() + router_.lookahead();
    for (unsigned s = 0; s < shards; ++s) {
      if (s == here) continue;
      router_.postToShard(s, noticeAt,
                          [this, s, handle] { removeFromShard(s, handle); });
    }
  }
}

Status DataPlane::executeLoad(const LoadCommand& command) {
  TpuService* target = service(command.tpuId);
  if (target == nullptr) {
    return unavailable(strCat("TPU service ", command.tpuId, " not running"));
  }
  return target->load(command);
}

void DataPlane::executeLoadWithRetry(LoadCommand command, ExpBackoff backoff,
                                     LoadDone done) {
  Status s = executeLoad(command);
  if (s.isOk() || backoff.maxAttempts == 0 ||
      service(command.tpuId) == nullptr) {
    if (done) done(s);
    return;
  }
  retryLoad(std::move(command), backoff, 0, std::move(done));
}

void DataPlane::retryLoad(LoadCommand command, ExpBackoff backoff,
                          std::uint32_t attempt, LoadDone done) {
  router_.currentSim().scheduleAfter(
      backoff.delay(attempt),
      [this, command = std::move(command), backoff, attempt,
       done = std::move(done)]() mutable {
        ++loadRetriesByShard_[ShardRouter::currentShard()];
        Status s = executeLoad(command);
        // Success, budget exhausted, or the service disappeared while we
        // were backing off (permanent — eviction is the caller's move).
        if (s.isOk() || attempt + 1 >= backoff.maxAttempts ||
            service(command.tpuId) == nullptr) {
          if (done) done(s);
          return;
        }
        retryLoad(std::move(command), backoff, attempt + 1, std::move(done));
      });
}

std::uint64_t DataPlane::loadRetries() const {
  std::uint64_t n = 0;
  for (std::uint64_t r : loadRetriesByShard_) n += r;
  return n;
}

std::unique_ptr<TpuClient> DataPlane::makeClient(std::string clientNode,
                                                 std::string model,
                                                 LbSpread spread) {
  TpuClient::Config config;
  config.clientNode = std::move(clientNode);
  config.model = std::move(model);
  config.spread = spread;
  return makeClient(std::move(config));
}

std::unique_ptr<TpuClient> DataPlane::makeClient(TpuClient::Config config) {
  // Keyed transport-loss identity: clients that don't bring their own
  // stream token get a deterministic sequential one (creation order is
  // fixed single-threaded setup), so loss outcomes replay identically at
  // any shard count and under any submission batching.
  if (config.streamToken == 0) config.streamToken = nextStreamToken_++;
  const unsigned shard = router_.shardOfNode(internNode(config.clientNode));
  auto client = std::make_unique<TpuClient>(
      router_.shardSim(shard), registry_, transport_,
      [this](TpuId tpu) { return serviceById(tpu); }, std::move(config),
      &router_);
  clients_.push_back(client.get());
  clientsByShard_[shard].push_back(client.get());
  client->setOnDestroy([this, shard](TpuClient* dying) {
    clients_.erase(std::remove(clients_.begin(), clients_.end(), dying),
                   clients_.end());
    auto& bucket = clientsByShard_[shard];
    bucket.erase(std::remove(bucket.begin(), bucket.end(), dying),
                 bucket.end());
  });
  return client;
}

}  // namespace microedge
