#include "dataplane/dataplane.hpp"

#include "util/strings.hpp"

namespace microedge {

DataPlane::DataPlane(Simulator& sim, const ClusterTopology& topology,
                     const ModelRegistry& registry)
    : sim_(sim), registry_(registry), transport_(sim, topology.network()) {
  for (const auto& tpu : topology.tpus()) {
    auto service =
        std::make_unique<TpuService>(*tpu, topology.nodeOfTpu(tpu->id()));
    TpuId handle = service->tpu();
    if (handle.value >= serviceById_.size()) {
      serviceById_.resize(handle.value + 1, nullptr);
    }
    serviceById_[handle.value] = service.get();
    services_.emplace(tpu->id(), std::move(service));
  }
}

TpuService* DataPlane::service(const std::string& tpuId) {
  auto it = services_.find(tpuId);
  return it == services_.end() ? nullptr : it->second.get();
}

TpuService* DataPlane::serviceById(TpuId tpu) {
  return tpu.valid() && tpu.value < serviceById_.size()
             ? serviceById_[tpu.value]
             : nullptr;
}

std::vector<TpuService*> DataPlane::services() {
  std::vector<TpuService*> out;
  out.reserve(services_.size());
  for (auto& [id, service] : services_) out.push_back(service.get());
  return out;
}

void DataPlane::removeService(const std::string& tpuId) {
  auto it = services_.find(tpuId);
  if (it == services_.end()) return;
  TpuId handle = it->second->tpu();
  if (handle.value < serviceById_.size()) {
    serviceById_[handle.value] = nullptr;
  }
  services_.erase(it);
}

Status DataPlane::executeLoad(const LoadCommand& command) {
  TpuService* target = service(command.tpuId);
  if (target == nullptr) {
    return unavailable(strCat("TPU service ", command.tpuId, " not running"));
  }
  return target->load(command);
}

std::unique_ptr<TpuClient> DataPlane::makeClient(std::string clientNode,
                                                 std::string model,
                                                 LbSpread spread) {
  TpuClient::Config config;
  config.clientNode = std::move(clientNode);
  config.model = std::move(model);
  config.spread = spread;
  return std::make_unique<TpuClient>(
      sim_, registry_, transport_,
      [this](TpuId tpu) { return serviceById(tpu); }, std::move(config));
}

}  // namespace microedge
