#pragma once

// TPU load balancing service (§5.3): per-pod component, seeded by the
// extended scheduler with the workload-partitioning weights, that fans the
// pod's successive Invoke requests out to TPU Service instances.
//
// K3s's default Service load balancer cannot pin requests to *specific*
// TPUs, which the partitioning scheme requires — hence this bespoke LBS.
// Default spread is smooth WRR (WFQ-like); the burst variant exists for the
// ablation bench.

#include <cstdint>
#include <string>
#include <vector>

#include "core/extended_scheduler.hpp"
#include "dataplane/wrr.hpp"
#include "util/status.hpp"

namespace microedge {

enum class LbSpread { kSmooth, kBurst };

class LbService {
 public:
  explicit LbService(LbSpread spread = LbSpread::kSmooth) : spread_(spread) {}

  // Installs the weights computed at admission (milli-units per TPU).
  Status configure(const LbConfig& config);
  bool configured() const { return configured_; }

  // Routes the next request; returns the index of the target in
  // config().weights. Per-frame hot path — no string is touched.
  // Precondition: configured().
  std::size_t routeIndex();
  // Routes the next request; returns the target TPU id.
  // Precondition: configured().
  const std::string& route() { return lbConfig_.weights[routeIndex()].tpuId; }

  std::uint64_t routedCount() const { return routed_; }
  std::uint64_t routedCountTo(const std::string& tpuId) const;
  const LbConfig& config() const { return lbConfig_; }

 private:
  LbSpread spread_;
  SmoothWrr smooth_;
  BurstWrr burst_;
  LbConfig lbConfig_;
  bool configured_ = false;
  std::uint64_t routed_ = 0;
  // Aligned with lbConfig_.weights (the WRR preserves target order).
  std::vector<std::uint64_t> perTarget_;
};

}  // namespace microedge
