#pragma once

// TPU load balancing service (§5.3): per-pod component, seeded by the
// extended scheduler with the workload-partitioning weights, that fans the
// pod's successive Invoke requests out to TPU Service instances.
//
// K3s's default Service load balancer cannot pin requests to *specific*
// TPUs, which the partitioning scheme requires — hence this bespoke LBS.
// Default spread is smooth WRR (WFQ-like); the burst variant exists for the
// ablation bench.
//
// Health masking: each target carries a small circuit breaker. Consecutive
// routing failures (dead service, rejected invoke, frame timeout) trip the
// target into kMasked; routeHealthyIndex() skips masked targets until their
// mask window elapses, then lets exactly the frames that re-pick it probe
// the target half-open (kProbing). A successful probe restores kHealthy; a
// failed probe re-masks with doubled (capped) backoff. This keeps frames
// flowing through a pod's surviving shares during the detection window —
// before failure recovery rewrites the weights — without any per-frame
// allocation (health state is a flat vector aligned with the weights).

#include <cstdint>
#include <string>
#include <vector>

#include "core/extended_scheduler.hpp"
#include "dataplane/wrr.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace microedge {

enum class LbSpread { kSmooth, kBurst };

// Per-target circuit-breaker tuning. Defaults favour fast convergence in
// simulation: one good probe restores a target.
struct LbHealthConfig {
  // Consecutive failures that trip a healthy target into kMasked.
  std::uint32_t failureThreshold = 3;
  // Base mask window; multiplied by the per-target backoff multiplier.
  SimDuration maskDuration = milliseconds(500);
  // Consecutive probe successes needed to restore a masked target.
  std::uint32_t probeSuccesses = 1;
  // Backoff multiplier cap for repeated failed probes (window <=
  // maskDuration * maxBackoffMultiplier).
  std::uint32_t maxBackoffMultiplier = 4;
};

enum class TargetHealth : std::uint8_t { kHealthy, kMasked, kProbing };

class LbService {
 public:
  // routeHealthyIndex() result when every target is masked or absent.
  static constexpr std::size_t kNoTarget = static_cast<std::size_t>(-1);

  explicit LbService(LbSpread spread = LbSpread::kSmooth) : spread_(spread) {}

  // Installs the weights computed at admission (milli-units per TPU).
  // Resets routing counters AND health state: a weight push from recovery
  // names live targets, so they start healthy.
  Status configure(const LbConfig& config);
  bool configured() const { return configured_; }

  void setHealthConfig(const LbHealthConfig& config) { health_ = config; }
  const LbHealthConfig& healthConfig() const { return health_; }

  // Routes the next request; returns the index of the target in
  // config().weights. Per-frame hot path — no string is touched.
  // Precondition: configured().
  std::size_t routeIndex();
  // Routes k requests in one call (a pod submitting a burst of frames),
  // appending the target indices to `out`. The pick sequence is identical
  // to k routeIndex() calls — the smooth spread serves the batch from its
  // precomputed periodic schedule (one pass over the weight vector,
  // amortized), so the per-frame cost is a table read instead of an O(n)
  // credit scan. Precondition: configured().
  void routeBatch(std::size_t k, std::vector<std::uint32_t>& out);
  // Health-aware routing: repeatedly draws from the WRR, skipping targets
  // whose mask window has not elapsed; a target whose window elapsed is
  // moved to kProbing and returned (half-open probe). Returns kNoTarget
  // when every target is masked. Precondition: configured().
  std::size_t routeHealthyIndex(SimTime now);
  // Health-aware batch: equivalent to calling routeHealthyIndex(now) k
  // times (no health feedback can interleave within one call), except it
  // stops at the first kNoTarget draw. Appends the routed target indices to
  // `out` and returns how many of the k frames were routed.
  std::size_t routeHealthyBatch(SimTime now, std::size_t k,
                                std::vector<std::uint32_t>& out);
  // Burst routing prologue: prefetches `k` RAW smooth-WRR picks in one
  // cycle-cache walk. Subsequent routeIndex()/routeHealthyIndex() calls
  // consume the prefetched picks transparently — the health filter is still
  // applied at serve time, against whatever the health state is THEN — and
  // fall back to live picks once the buffer drains. Because the raw pick
  // sequence is feedback-independent (health affects only the filter, never
  // the WRR credits), every downstream routing decision is bit-identical to
  // the unprefetched sequence; the burst merely pays one amortized walk
  // instead of k credit scans. Health feedback between the prefetch and the
  // serve (breaker trips mid-burst) is therefore safe. kBurst spread: no-op
  // (its pick is already O(1)). Unconsumed picks simply serve later routes.
  void beginBurst(std::size_t k);
  // Routes the next request; returns the target TPU id.
  // Precondition: configured().
  const std::string& route() { return lbConfig_.weights[routeIndex()].tpuId; }

  // Health feedback from the client. Out-of-range indices (stale after a
  // reconfigure) are ignored.
  void recordSuccess(std::size_t index);
  void recordFailure(std::size_t index, SimTime now);

  TargetHealth targetHealth(std::size_t index) const;
  std::size_t maskedCount() const;
  // Total healthy->masked transitions since configure() (telemetry).
  std::uint64_t maskEvents() const { return maskEvents_; }

  std::uint64_t routedCount() const { return routed_; }
  std::uint64_t routedCountTo(const std::string& tpuId) const;
  const LbConfig& config() const { return lbConfig_; }

 private:
  struct TargetState {
    TargetHealth state = TargetHealth::kHealthy;
    std::uint32_t consecutiveFailures = 0;
    std::uint32_t probeSuccesses = 0;
    std::uint32_t backoffMultiplier = 1;
    SimTime retryAt{};  // mask window end (valid while kMasked)
  };

  void trip(TargetState& target, SimTime now);
  // Next raw WRR pick: the prefetch buffer when non-empty, else a live draw.
  std::size_t rawPick();

  LbSpread spread_;
  SmoothWrr smooth_;
  BurstWrr burst_;
  LbConfig lbConfig_;
  LbHealthConfig health_;
  bool configured_ = false;
  std::uint64_t routed_ = 0;
  std::uint64_t maskEvents_ = 0;
  // Aligned with lbConfig_.weights (the WRR preserves target order).
  std::vector<std::uint64_t> perTarget_;
  std::vector<TargetState> targetState_;
  // beginBurst() prefetch of raw WRR picks; capacity retained across bursts.
  std::vector<std::uint32_t> pickBuffer_;
  std::size_t pickCursor_ = 0;
};

}  // namespace microedge
