#include "dataplane/lb_service.hpp"

#include <cassert>

namespace microedge {

Status LbService::configure(const LbConfig& config) {
  std::vector<WrrTarget> targets;
  targets.reserve(config.weights.size());
  for (const LbWeight& w : config.weights) {
    targets.push_back(WrrTarget{w.tpuId, w.weight});
  }
  Status s = spread_ == LbSpread::kSmooth ? smooth_.setTargets(targets)
                                          : burst_.setTargets(targets);
  if (!s.isOk()) return s;
  lbConfig_ = config;
  // Hand-built configs (tests, benches) often carry only the string id; the
  // hot routing path reads the dense handle, so resolve it once here.
  for (LbWeight& w : lbConfig_.weights) {
    if (!w.tpu.valid()) w.tpu = internTpu(w.tpuId);
  }
  configured_ = true;
  routed_ = 0;
  perTarget_.assign(lbConfig_.weights.size(), 0);
  return Status::ok();
}

std::size_t LbService::routeIndex() {
  assert(configured_ && "LbService::route before configure");
  std::size_t index =
      spread_ == LbSpread::kSmooth ? smooth_.pickIndex() : burst_.pickIndex();
  ++routed_;
  ++perTarget_[index];
  return index;
}

std::uint64_t LbService::routedCountTo(const std::string& tpuId) const {
  for (std::size_t i = 0; i < lbConfig_.weights.size(); ++i) {
    if (lbConfig_.weights[i].tpuId == tpuId) return perTarget_[i];
  }
  return 0;
}

}  // namespace microedge
