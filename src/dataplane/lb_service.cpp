#include "dataplane/lb_service.hpp"

#include <algorithm>
#include <cassert>

namespace microedge {

Status LbService::configure(const LbConfig& config) {
  std::vector<WrrTarget> targets;
  targets.reserve(config.weights.size());
  for (const LbWeight& w : config.weights) {
    targets.push_back(WrrTarget{w.tpuId, w.weight});
  }
  Status s = spread_ == LbSpread::kSmooth ? smooth_.setTargets(targets)
                                          : burst_.setTargets(targets);
  if (!s.isOk()) return s;
  lbConfig_ = config;
  // Hand-built configs (tests, benches) often carry only the string id; the
  // hot routing path reads the dense handle, so resolve it once here.
  for (LbWeight& w : lbConfig_.weights) {
    if (!w.tpu.valid()) w.tpu = internTpu(w.tpuId);
  }
  configured_ = true;
  routed_ = 0;
  maskEvents_ = 0;
  perTarget_.assign(lbConfig_.weights.size(), 0);
  targetState_.assign(lbConfig_.weights.size(), TargetState{});
  pickBuffer_.clear();  // prefetched picks belong to the old schedule
  pickCursor_ = 0;
  return Status::ok();
}

std::size_t LbService::rawPick() {
  if (pickCursor_ < pickBuffer_.size()) return pickBuffer_[pickCursor_++];
  return spread_ == LbSpread::kSmooth ? smooth_.pickIndex()
                                      : burst_.pickIndex();
}

void LbService::beginBurst(std::size_t k) {
  assert(configured_ && "LbService::beginBurst before configure");
  if (spread_ != LbSpread::kSmooth || k == 0) return;
  // Compact already-served picks instead of appending behind them so the
  // buffer never grows past one burst's worth.
  pickBuffer_.erase(pickBuffer_.begin(),
                    pickBuffer_.begin() +
                        static_cast<std::ptrdiff_t>(pickCursor_));
  pickCursor_ = 0;
  if (pickBuffer_.size() >= k) return;
  smooth_.pickBatch(k - pickBuffer_.size(), pickBuffer_);
}

std::size_t LbService::routeIndex() {
  assert(configured_ && "LbService::route before configure");
  std::size_t index = rawPick();
  ++routed_;
  ++perTarget_[index];
  return index;
}

void LbService::routeBatch(std::size_t k, std::vector<std::uint32_t>& out) {
  assert(configured_ && "LbService::routeBatch before configure");
  if (spread_ == LbSpread::kSmooth) {
    const std::size_t first = out.size();
    // Serve any beginBurst() prefetch first so the pick sequence stays
    // identical however the caller mixes the routing entry points.
    std::size_t fromBuffer = std::min(k, pickBuffer_.size() - pickCursor_);
    for (std::size_t i = 0; i < fromBuffer; ++i) {
      out.push_back(pickBuffer_[pickCursor_++]);
    }
    if (k > fromBuffer) smooth_.pickBatch(k - fromBuffer, out);
    routed_ += k;
    for (std::size_t i = first; i < out.size(); ++i) ++perTarget_[out[i]];
    return;
  }
  out.reserve(out.size() + k);
  for (std::size_t j = 0; j < k; ++j) {
    std::size_t index = burst_.pickIndex();
    ++routed_;
    ++perTarget_[index];
    out.push_back(static_cast<std::uint32_t>(index));
  }
}

std::size_t LbService::routeHealthyIndex(SimTime now) {
  assert(configured_ && "LbService::route before configure");
  // Each draw advances the WRR even when the target is skipped; with every
  // target healthy this is exactly one draw, so the smooth interleaving (and
  // the per-target counters the partitioning tests assert) is unchanged.
  const std::size_t n = lbConfig_.weights.size();
  for (std::size_t draw = 0; draw < n; ++draw) {
    std::size_t index = rawPick();
    TargetState& t = targetState_[index];
    if (t.state == TargetHealth::kMasked) {
      if (now < t.retryAt) continue;  // window still open: skip this target
      t.state = TargetHealth::kProbing;  // half-open: this frame is the probe
      t.probeSuccesses = 0;
    }
    ++routed_;
    ++perTarget_[index];
    return index;
  }
  return kNoTarget;
}

std::size_t LbService::routeHealthyBatch(SimTime now, std::size_t k,
                                         std::vector<std::uint32_t>& out) {
  assert(configured_ && "LbService::routeHealthyBatch before configure");
  // With every target healthy (the steady state) each frame is exactly one
  // cached O(1) draw; the masked-skip loop only runs during a failure
  // window. Identical to k sequential routeHealthyIndex calls because
  // health state can only change between calls, never inside one.
  out.reserve(out.size() + k);
  std::size_t routed = 0;
  for (; routed < k; ++routed) {
    std::size_t index = routeHealthyIndex(now);
    if (index == kNoTarget) break;
    out.push_back(static_cast<std::uint32_t>(index));
  }
  return routed;
}

void LbService::recordSuccess(std::size_t index) {
  if (index >= targetState_.size()) return;
  TargetState& t = targetState_[index];
  t.consecutiveFailures = 0;
  if (t.state == TargetHealth::kProbing &&
      ++t.probeSuccesses >= health_.probeSuccesses) {
    t.state = TargetHealth::kHealthy;
    t.backoffMultiplier = 1;
  }
}

void LbService::recordFailure(std::size_t index, SimTime now) {
  if (index >= targetState_.size()) return;
  TargetState& t = targetState_[index];
  t.probeSuccesses = 0;
  switch (t.state) {
    case TargetHealth::kProbing:
      // Failed probe: re-mask with doubled (capped) backoff.
      t.backoffMultiplier =
          std::min(t.backoffMultiplier * 2, health_.maxBackoffMultiplier);
      trip(t, now);
      break;
    case TargetHealth::kHealthy:
      if (++t.consecutiveFailures >= health_.failureThreshold) trip(t, now);
      break;
    case TargetHealth::kMasked:
      break;  // late failure from a frame routed before the trip
  }
}

void LbService::trip(TargetState& target, SimTime now) {
  target.state = TargetHealth::kMasked;
  target.consecutiveFailures = 0;
  target.retryAt = now + target.backoffMultiplier * health_.maskDuration;
  ++maskEvents_;  // every transition into masked, including failed probes
}

TargetHealth LbService::targetHealth(std::size_t index) const {
  return index < targetState_.size() ? targetState_[index].state
                                     : TargetHealth::kHealthy;
}

std::size_t LbService::maskedCount() const {
  std::size_t n = 0;
  for (const TargetState& t : targetState_) {
    if (t.state == TargetHealth::kMasked) ++n;
  }
  return n;
}

std::uint64_t LbService::routedCountTo(const std::string& tpuId) const {
  for (std::size_t i = 0; i < lbConfig_.weights.size(); ++i) {
    if (lbConfig_.weights[i].tpuId == tpuId) return perTarget_[i];
  }
  return 0;
}

}  // namespace microedge
