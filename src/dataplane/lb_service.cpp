#include "dataplane/lb_service.hpp"

#include <cassert>

namespace microedge {

Status LbService::configure(const LbConfig& config) {
  std::vector<WrrTarget> targets;
  targets.reserve(config.weights.size());
  for (const LbWeight& w : config.weights) {
    targets.push_back(WrrTarget{w.tpuId, w.weight});
  }
  Status s = spread_ == LbSpread::kSmooth ? smooth_.setTargets(targets)
                                          : burst_.setTargets(targets);
  if (!s.isOk()) return s;
  lbConfig_ = config;
  configured_ = true;
  routed_ = 0;
  perTarget_.clear();
  return Status::ok();
}

const std::string& LbService::route() {
  assert(configured_ && "LbService::route before configure");
  const std::string& target =
      spread_ == LbSpread::kSmooth ? smooth_.pick() : burst_.pick();
  ++routed_;
  ++perTarget_[target];
  return target;
}

std::uint64_t LbService::routedCountTo(const std::string& tpuId) const {
  auto it = perTarget_.find(tpuId);
  return it == perTarget_.end() ? 0 : it->second;
}

}  // namespace microedge
