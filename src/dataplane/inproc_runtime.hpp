#pragma once

// In-process *threaded* data plane.
//
// The simulator validates scheduling behaviour; this runtime validates that
// the same control-plane artifacts (co-compiled composites, LBS weights)
// drive a real concurrent data plane correctly. Each InprocTpuService runs a
// worker thread that executes requests serially, run to completion — the
// defining Edge TPU property — with service times taken from the model zoo
// and scaled down so tests stay fast. Clients block on a future, exactly how
// the Python TPU Client blocks on its socket.

#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/extended_scheduler.hpp"
#include "dataplane/wrr.hpp"
#include "models/registry.hpp"
#include "util/status.hpp"

namespace microedge {

class InprocTpuService {
 public:
  struct Config {
    std::string tpuId;
    // Wall-clock scale factor: 0.02 runs a 23.3 ms inference in ~0.47 ms.
    double timeScale = 0.02;
    double paramMemoryMb = 6.9;
  };

  struct Result {
    std::chrono::nanoseconds queueDelay{};
    std::chrono::nanoseconds serviceTime{};
    bool paidSwap = false;
  };

  InprocTpuService(const ModelRegistry& registry, Config config);
  ~InprocTpuService();
  InprocTpuService(const InprocTpuService&) = delete;
  InprocTpuService& operator=(const InprocTpuService&) = delete;

  const std::string& tpuId() const { return config_.tpuId; }

  // Load primitive: installs the composite (synchronous w.r.t. new invokes:
  // it is queued behind in-flight requests like any other job).
  void load(std::vector<std::string> composite);

  // Invoke primitive: blocks the calling thread until the inference is done.
  StatusOr<Result> invoke(const std::string& model);

  std::uint64_t servedCount() const;
  std::uint64_t swapCount() const;

 private:
  struct Job {
    bool isLoad = false;
    std::string model;
    std::vector<std::string> composite;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<Result> promise;
  };

  void workerLoop();
  std::chrono::nanoseconds scaled(SimDuration d) const;

  const ModelRegistry& registry_;
  Config config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool shutdown_ = false;
  std::vector<std::string> resident_;
  std::string lastModel_;
  std::uint64_t served_ = 0;
  std::uint64_t swaps_ = 0;
  std::thread worker_;
};

// Client-side fan-out: smooth WRR over the pod's allocated TPU services.
class InprocClient {
 public:
  InprocClient(const ModelRegistry& registry, std::string model);

  Status configure(const LbConfig& config,
                   const std::map<std::string, InprocTpuService*>& directory);

  // One blocking end-to-end invoke (route + inference).
  StatusOr<InprocTpuService::Result> invoke();

  std::uint64_t invokeCount() const { return invokes_; }

 private:
  const ModelRegistry& registry_;
  std::string model_;
  SmoothWrr wrr_;
  // Services pre-resolved at configure time, aligned with the WRR targets —
  // each invoke routes with one pickIndex() and no map probe.
  std::vector<InprocTpuService*> resolved_;
  std::mutex mu_;  // WRR state is not thread-safe on its own
  std::uint64_t invokes_ = 0;
};

}  // namespace microedge
