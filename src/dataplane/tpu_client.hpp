#pragma once

// TPU Client (§5.2): the library an application pod links to issue Invoke
// requests against its allocated TPU share.
//
// Per the paper, the client resizes the raw frame to the model's input
// resolution *before* transmission (data movement dominates on RPis), asks
// its LB Service for the target TPU, ships the pre-processed frame to the
// hosting tRPi, and hands the response to application post-processing. The
// full per-frame latency breakdown (Fig. 7b's four components, plus queueing
// visibility inside the TPU Service) is reported on completion.
//
// Fast path: the per-frame pipeline is heap-allocation-free and string-free
// in steady state. Frame state lives in a slab pool of InvokeContext slots
// addressed by generation-checked handles; each pipeline stage captures
// {this, handle} (16 bytes — inline in its event slot) and re-resolves the
// context on entry, so a dropped frame's stale events are rejected instead
// of dereferencing recycled state. Routing, transport and the TPU Service
// all speak dense interned handles (TpuId / NodeId / ModelId); the client
// interns its node and model once at construction. The frame takes three
// simulator events end to end (arrival at the service, device completion,
// client completion) — preprocess rides the request hop and postprocess the
// response hop, with identical timestamps to the five-event formulation.
//
// Reliability: every frame reaches exactly one terminal FrameOutcome and
// the completion callback fires for all of them (apps gate on kCompleted).
// With a frameDeadline configured, in-flight frames sit on an intrusive
// deadline queue threaded through their slab slots. All frames of a client
// share one deadline duration, so absolute deadlines are monotonic in
// submit order and the queue is FIFO — ONE timer event per client, armed
// for the head frame's deadline, replaces a schedule/cancel pair per frame.
// Enqueue/unlink are a handful of index writes, completions leave the
// armed timer alone (it re-arms forward when it fires and finds the head
// still alive), and the whole layer stays allocation-free and costs ~zero
// when nothing misses its deadline. A frame that lands on a
// dead or rejecting target feeds the LB Service's per-target circuit
// breaker and takes one bounded failover: it moves to a fresh slab slot (so
// the generation check retires every event addressed to the old attempt)
// and re-ships to the next healthy target the WRR picks. At arrival the
// client sheds frames whose predicted completion (device backlog + one
// service time) already misses the deadline, so an overloaded surviving
// pool degrades by dropping late frames instead of queueing without bound.
//
// Object lifetime: completions reference the client; the experiment harness
// keeps client objects alive until the simulation drains (a stopped client
// simply refuses new invokes).
//
// Sharded runs: a client is bound to its node's shard (its Simulator& IS
// that shard's event loop; invoke() and every client-side stage run there).
// A frame whose target TPU lives on another shard takes the remote path:
// the request hop is modelled with SimTransport::sendRouted (accounting on
// the client shard's lane) and a RemoteHop envelope — a POD copy of
// everything the service side needs — is posted through the router's
// mailbox to arrive at exactly the same timestamp the solo path would
// deliver it. The service-shard stages (arrival, shed check, device invoke,
// completion) touch only service-shard state plus the envelope, then post
// the response back; timestamps of the healthy pipeline are bit-identical
// to the solo path. Failure NACKs (dead target, shed, reject) are the one
// divergence: solo resolves them instantly on the client, cross-shard they
// ride a control message back (one controlLatency >= lookahead later) —
// the differential suite keeps deadline-carrying streams rack-local so
// these paths never occur cross-shard. NACKs are zero-byte control
// piggybacks and are not counted in the transport's message counters.

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/admission_ledger.hpp"
#include "dataplane/lb_service.hpp"
#include "dataplane/tpu_service.hpp"
#include "dataplane/transport.hpp"
#include "models/registry.hpp"
#include "sim/sharded_sim.hpp"
#include "sim/simulator.hpp"
#include "util/event_fn.hpp"
#include "util/intern.hpp"
#include "util/slab_pool.hpp"

namespace microedge {

// Terminal state of one frame. Every submitted frame ends in exactly one of
// the non-kInFlight states and is counted there (BreakdownAggregator);
// failover is not a terminal state but a counter (a failed-over frame still
// ends kCompleted / kTimedOut / ...).
enum class FrameOutcome : std::uint8_t {
  kInFlight = 0,        // not terminal: frame still in the pipeline
  kCompleted,           // post-processing finished
  kTimedOut,            // frameDeadline elapsed before completion
  kShed,                // dropped at arrival: backlog already blows the deadline
  kDroppedDeadTarget,   // no live target (at submit, mid-flight, or failover)
  kRejected,            // target's invoke refused and no failover possible
  // Per-frame admission ledger said no at submit: the routed target has no
  // estimate headroom. Deliberately the LAST enumerator — the digest
  // witnesses fold outcomes as integers, so appending keeps every
  // admission-off digest identical to before the ledger existed.
  kAdmissionRejected,
};
inline constexpr std::size_t kFrameOutcomeCount = 7;
std::string_view toString(FrameOutcome outcome);

struct FrameBreakdown {
  std::uint64_t frameId = 0;
  TpuId servedBy{};  // dense TPU handle; servedByName() resolves the string
  FrameOutcome outcome = FrameOutcome::kInFlight;
  std::uint8_t failovers = 0;  // re-routes this frame took before terminating
  SimTime submitted{};
  SimTime completed{};
  SimDuration preprocess{};
  SimDuration requestTransmit{};
  SimDuration queueDelay{};
  SimDuration inference{};  // device occupancy incl. switch/stream penalties
  SimDuration responseTransmit{};
  SimDuration postprocess{};

  SimDuration endToEnd() const { return completed - submitted; }
  // String id of the serving TPU (empty if the frame never routed).
  const std::string& servedByName() const;
};

class TpuClient {
 public:
  struct Config {
    std::string clientNode;  // RPi hosting the application pod
    std::string model;
    LbSpread spread = LbSpread::kSmooth;
    // Per-frame deadline measured from submit; zero disables the deadline
    // timer AND deadline-based shedding (seed behaviour).
    SimDuration frameDeadline{};
    // Re-route budget per frame when its target dies or rejects.
    std::uint32_t maxFailovers = 1;
    LbHealthConfig health{};
    // Stable identity of this client's frame stream for keyed transport-loss
    // draws: with a nonzero token, whether a frame drops under a loss window
    // is a pure function of (fault seed, token, frame id, attempt, hop) —
    // invariant to shard count, submission batching, and every other
    // stream's traffic. Zero keeps the legacy per-lane sequential draws.
    // DataPlane::makeClient auto-assigns a token when left at zero.
    std::uint64_t streamToken = 0;
    // Per-frame admission (DESIGN.md §14). Disabled keeps the submit path
    // bit-identical to a ledger-free build.
    FrameAdmissionConfig admission{};
  };
  // Resolves a TPU handle to its TPU Service instance (nullptr if gone).
  // Dense-handle lookup so per-frame routing never touches a string map.
  using Directory = std::function<TpuService*(TpuId tpu)>;
  // Move-only SBO callable: completions with inline-sized captures ride the
  // context slot without a std::function heap allocation per frame.
  using CompletionCallback = MoveFn<void(const FrameBreakdown&)>;

  // `sim` must be the event loop of the client node's shard; `router` (may
  // be null, and may be a SoloRouter) enables the cross-shard remote path —
  // with a null router or shardCount() == 1 the client behaves exactly as
  // before sharding existed.
  TpuClient(Simulator& sim, const ModelRegistry& registry,
            SimTransport& transport, Directory directory, Config config,
            ShardRouter* router = nullptr);
  ~TpuClient();

  // Seeds the embedded LB Service (done by the extended scheduler at pod
  // initialization, §3.1 step 4) and, with admission enabled, rebuilds the
  // ledger's capacity line from the pushed weights (share milli-units).
  Status configureLb(const LbConfig& config);
  bool ready() const { return lb_.configured() && !stopped_; }

  // Submits one frame through the full pipeline. `done` fires once the
  // frame reaches its terminal outcome (kCompleted after post-processing;
  // other outcomes possibly synchronously, e.g. no live target at submit).
  Status invoke(CompletionCallback done);

  // One frame of a burst; completion callbacks are moved out on submit.
  struct FrameSpec {
    CompletionCallback done;
  };
  // Batched ingest: submits `frames.size()` frames exactly as that many
  // sequential invoke() calls would — bit-identical per-frame timings and
  // outcomes — but amortizes the per-frame machinery across the burst:
  //  * one slab-run acquisition instead of k free-list probes;
  //  * one raw-WRR cycle-cache walk (LbService::beginBurst) instead of k
  //    credit scans, with the health filter still applied per frame at
  //    serve time;
  //  * frames sharing an arrival latency (all non-loopback targets of one
  //    model do — the network charges the same base + size cost to every
  //    non-loopback pair) coalesce into ONE transport delivery event that
  //    fans out in submit order on arrival, batching the device FIFO
  //    reservations per same-target run;
  //  * one deadline-FIFO splice per burst instead of k list appends.
  // Synchronous terminal outcomes (e.g. no live target) still fire their
  // callbacks mid-burst at exactly the sequential position: pending burst
  // state is flushed before each such callback, so re-entrant submissions
  // observe the same queue/transport/WRR state either way. Under an active
  // loss window, bit-identity to sequential additionally requires a keyed
  // client (nonzero streamToken) — unkeyed draws are order-dependent.
  // An empty burst is a no-op. The single-frame invoke() stays canonical.
  Status submitBurst(std::span<FrameSpec> frames);

  // Stops accepting new frames (pod termination); in-flight frames finish.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  // Fail-fast notification from the DataPlane: `tpu`'s service was removed.
  // Every in-flight frame addressed to it immediately fails over (budget
  // permitting) or terminates kDroppedDeadTarget — nothing waits for an
  // arrival event at a dead service.
  void onServiceRemoved(TpuId tpu);
  // Owner hook invoked from the destructor (DataPlane unregisters the
  // client from its fail-fast broadcast list).
  void setOnDestroy(std::function<void(TpuClient*)> hook) {
    onDestroy_ = std::move(hook);
  }

  const Config& config() const { return config_; }
  LbService& lbService() { return lb_; }
  const LbService& lbService() const { return lb_; }
  std::uint64_t submittedCount() const { return submitted_; }
  std::uint64_t completedCount() const { return completed_; }
  // Frames that reached a terminal outcome other than kCompleted.
  std::uint64_t failedCount() const { return failed_; }
  std::uint64_t outcomeCount(FrameOutcome outcome) const {
    return outcomes_[static_cast<std::size_t>(outcome)];
  }
  // Successful re-routes (frames may appear in a terminal count too).
  std::uint64_t failoverCount() const { return failovers_; }
  std::uint64_t outstanding() const {
    return submitted_ - completed_ - failed_;
  }
  // Live context slots (== outstanding()); exposed for pool-accounting tests.
  std::size_t contextsInFlight() const { return pool_.inUse(); }
  // Per-frame admission ledger (meaningful only with admission enabled).
  const AdmissionLedger& admissionLedger() const { return admission_; }

 private:
  // All per-frame pipeline state (breakdown, the model's POD cost figures,
  // completion) lives in one recycled pool slot so each stage's closure
  // captures just {this, handle} — small enough to stay inline in the event
  // slot — and no string or heap allocation recurs per frame.
  struct InvokeContext;
  using ContextPool = SlabPool<InvokeContext>;
  using Handle = ContextPool::Handle;

  struct InvokeContext {
    FrameBreakdown breakdown{};
    NodeId serviceNode{};
    std::size_t inputBytes = 0;
    std::size_t outputBytes = 0;
    SimDuration inferenceEstimate{};  // model service time, for shedding
    SimDuration postprocessLatency{};
    SimTime deadlineAt{};
    // Intrusive deadline-queue links (valid while the frame is enqueued).
    Handle dlPrev{};
    Handle dlNext{};
    std::uint32_t targetIndex = 0;  // index into lb_.config().weights
    // Admission-ledger charge riding the frame: credited exactly once in
    // finish(), whatever the terminal outcome. ledgerCharge == 0 marks "not
    // charged" (admission off, or the frame was rejected up front).
    std::uint32_t ledgerEntry = AdmissionLedger::kNoEntry;
    std::uint32_t ledgerCharge = 0;
    CompletionCallback done;
  };

  // Why a cross-shard NACK exists: the service-shard stages cannot touch
  // the client's slab pool or LB state, so arrival-time failures are
  // reported back as a control message and resolved on the client's shard.
  enum class RemoteNack : std::uint8_t { kDeadTarget, kShed, kRejected };

  // Everything the service-shard stages need, copied out of the context
  // slot at submit time (the slot itself is client-shard state and may be
  // concurrently recycled). ~90 bytes; posting it through the mailbox costs
  // one MoveFn heap allocation per cross-shard frame — the price of leaving
  // the same-shard fast path allocation-free.
  struct RemoteHop {
    TpuClient* client = nullptr;
    Handle h{};
    TpuId target{};
    ModelId model{};
    NodeId serviceNode{};
    NodeId clientNode{};
    unsigned clientShard = 0;
    SimDuration inferenceEstimate{};
    SimTime deadlineAt{};  // SimTime::max() when the frame has no deadline
    std::size_t outputBytes = 0;
    SimDuration postprocess{};
    // Keyed-loss key for the response hop, precomputed on the client shard
    // (the service shard must not reach into client config to derive it).
    std::uint64_t respKey = 0;
  };

  // Client-shard half of the remote path: models the request hop on this
  // shard's transport lane and posts the envelope to the service shard at
  // the exact solo-path arrival time (now + departAfter + transfer latency).
  void submitRemote(Handle h, InvokeContext* c, SimDuration departAfter);
  // Service-shard stages (static: they run on another shard's event loop
  // and must only touch the envelope + service-shard state).
  static void remoteArrival(RemoteHop hop);
  static void remoteComplete(const RemoteHop& hop,
                             const TpuDevice::InvokeStats& stats);
  static void postRemoteNack(const RemoteHop& hop, RemoteNack kind);
  // Client-shard completions of the remote path.
  void onRemoteDone(Handle h, SimDuration queueDelay, SimDuration serviceTime,
                    SimDuration responseTransmit);
  void onRemoteNack(Handle h, RemoteNack kind);

  // Draws healthy targets from the LB until one resolves to a live service
  // (each dead draw feeds the breaker). Returns nullptr when none does.
  TpuService* routeToLiveTarget(std::size_t* index);
  // Moves the frame to a fresh slot and re-ships it to the next healthy
  // target. Returns false (context untouched) when the failover budget is
  // spent or no live target remains; on true the old handle is dead.
  bool tryFailover(Handle h, InvokeContext* c);
  void onRequestDelivered(Handle h);
  void onInvokeDone(Handle h, const TpuDevice::InvokeStats& stats);
  // Deadline queue: FIFO == deadline order because every frame of this
  // client carries the same frameDeadline (failover keeps the absolute
  // deadline, so position is preserved there too).
  void dlEnqueue(Handle h, InvokeContext* c);
  void dlUnlink(Handle h, InvokeContext* c);
  // Failover: the frame moved from slot `h` to `nh`; splice the new handle
  // into the old one's queue position.
  void dlReplace(Handle h, InvokeContext* c, Handle nh, InvokeContext* nc);
  // The client-wide deadline timer: expires every head frame whose deadline
  // has passed, then re-arms for the new head (or disarms when idle).
  void onDeadlineTimer();
  // Terminates the frame: unlinks it from the deadline queue, stamps +
  // counts the outcome, recycles the slot, and runs the completion callback.
  void finish(Handle h, FrameOutcome outcome);

  // ---- Burst machinery ------------------------------------------------------
  // A coalesced delivery's fan-out list: the handles of the burst frames
  // sharing one arrival event, in submit order. Pooled so the vector's
  // capacity is retained across recycling (zero allocations in steady
  // state).
  struct BurstGroup {
    std::vector<Handle> members;
  };
  using GroupPool = SlabPool<BurstGroup>;
  using GroupHandle = GroupPool::Handle;
  // Open coalesced groups while a burst is being built (locals of
  // submitBurst, passed down so mid-burst flushes can close them).
  struct BurstState {
    GroupHandle group[2]{};  // [0] = non-loopback targets, [1] = loopback
    Handle chainHead{};      // locally-linked deadline chain
    Handle chainTail{};
    SimTime deadlineAt{};
  };
  // Message key for keyed transport-loss draws; kUnkeyed when the client
  // has no stream token. hop: 0 = request, 1 = response.
  std::uint64_t frameMsgKey(std::uint64_t frameId, std::uint32_t attempt,
                            std::uint32_t hop) const;
  // Closes one open group: one sendCoalesced for its members (per-message
  // accounting + keyed draws identical to member-wise send()), stamps each
  // member's requestTransmit, evicts messages the fault window dropped, and
  // schedules the single fan-out event.
  void closeBurstGroup(BurstState& burst, int which);
  // Flushes everything a synchronous mid-burst callback must observe in
  // sequential state: splices the deadline chain (arming the timer exactly
  // where sequential would) and closes both open groups, so re-entrant
  // submissions schedule their events after the burst's so-far and before
  // its remainder — the sequential interleaving.
  void flushBurst(BurstState& burst);
  // The coalesced delivery event: batches device-FIFO reservations per
  // same-target run, then runs onRequestDelivered for each member in submit
  // order (stale handles — frames that terminated while the burst was on
  // the wire — are skipped by the generation check).
  void onBurstDelivered(GroupHandle gh);

  Simulator& sim_;
  const ModelRegistry& registry_;
  SimTransport& transport_;
  Directory directory_;  // immutable after construction (read cross-shard)
  Config config_;
  ShardRouter* router_ = nullptr;
  unsigned myShard_ = 0;  // shard owning clientNode_ (== this client's sim_)
  bool sharded_ = false;  // router present with >1 shard: remote path armed
  NodeId clientNode_{};  // interned once; every frame's transport endpoint
  ModelId model_{};      // interned once; every frame's invoke argument
  LbService lb_;
  AdmissionLedger admission_;
  // Per-frame charge in milli execution/deadline units, fixed per client
  // (one model + one deadline): inferenceEstimate * 1000 / frameDeadline,
  // floored at 1. Zero when admission is off or no deadline is configured.
  std::uint32_t admissionEstimateMilli_ = 0;
  ContextPool pool_;
  GroupPool groupPool_;
  // Burst scratch, capacity retained across bursts. burstScratch_ holds the
  // acquired slab run; nested (re-entrant) bursts append behind the caller's
  // range and truncate back on exit, so each burst indexes only its own
  // [base, base+k) slice. The lat/drop buffers are used only inside
  // closeBurstGroup, which runs no user code — safe across re-entrancy.
  std::vector<Handle> burstScratch_;
  std::vector<std::uint64_t> keyScratch_;
  std::vector<SimDuration> latScratch_;
  std::vector<std::uint8_t> dropScratch_;
  // Deadline queue state: head/tail of the intrusive FIFO plus the single
  // armed timer (invalid while the queue is empty or a sweep is running).
  Handle dlHead_{};
  Handle dlTail_{};
  EventId dlTimer_{};
  bool dlSweeping_ = false;
  std::function<void(TpuClient*)> onDestroy_;
  bool stopped_ = false;
  std::uint64_t nextFrameId_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t failovers_ = 0;
  std::array<std::uint64_t, kFrameOutcomeCount> outcomes_{};
};

}  // namespace microedge
