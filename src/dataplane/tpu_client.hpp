#pragma once

// TPU Client (§5.2): the library an application pod links to issue Invoke
// requests against its allocated TPU share.
//
// Per the paper, the client resizes the raw frame to the model's input
// resolution *before* transmission (data movement dominates on RPis), asks
// its LB Service for the target TPU, ships the pre-processed frame to the
// hosting tRPi, and hands the response to application post-processing. The
// full per-frame latency breakdown (Fig. 7b's four components, plus queueing
// visibility inside the TPU Service) is reported on completion.
//
// Fast path: the per-frame pipeline is heap-allocation-free and string-free
// in steady state. Frame state lives in a slab pool of InvokeContext slots
// addressed by generation-checked handles; each pipeline stage captures
// {this, handle} (16 bytes — inline in its event slot) and re-resolves the
// context on entry, so a dropped frame's stale events are rejected instead
// of dereferencing recycled state. Routing, transport and the TPU Service
// all speak dense interned handles (TpuId / NodeId / ModelId); the client
// interns its node and model once at construction. The frame takes three
// simulator events end to end (arrival at the service, device completion,
// client completion) — preprocess rides the request hop and postprocess the
// response hop, with identical timestamps to the five-event formulation.
//
// Object lifetime: completions reference the client; the experiment harness
// keeps client objects alive until the simulation drains (a stopped client
// simply refuses new invokes).

#include <cstdint>
#include <functional>
#include <string>

#include "dataplane/lb_service.hpp"
#include "dataplane/tpu_service.hpp"
#include "dataplane/transport.hpp"
#include "models/registry.hpp"
#include "sim/simulator.hpp"
#include "util/event_fn.hpp"
#include "util/intern.hpp"
#include "util/slab_pool.hpp"

namespace microedge {

struct FrameBreakdown {
  std::uint64_t frameId = 0;
  TpuId servedBy{};  // dense TPU handle; servedByName() resolves the string
  SimTime submitted{};
  SimTime completed{};
  SimDuration preprocess{};
  SimDuration requestTransmit{};
  SimDuration queueDelay{};
  SimDuration inference{};  // device occupancy incl. switch/stream penalties
  SimDuration responseTransmit{};
  SimDuration postprocess{};

  SimDuration endToEnd() const { return completed - submitted; }
  // String id of the serving TPU (empty if the frame never routed).
  const std::string& servedByName() const;
};

class TpuClient {
 public:
  struct Config {
    std::string clientNode;  // RPi hosting the application pod
    std::string model;
    LbSpread spread = LbSpread::kSmooth;
  };
  // Resolves a TPU handle to its TPU Service instance (nullptr if gone).
  // Dense-handle lookup so per-frame routing never touches a string map.
  using Directory = std::function<TpuService*(TpuId tpu)>;
  // Move-only SBO callable: completions with inline-sized captures ride the
  // context slot without a std::function heap allocation per frame.
  using CompletionCallback = MoveFn<void(const FrameBreakdown&)>;

  TpuClient(Simulator& sim, const ModelRegistry& registry,
            SimTransport& transport, Directory directory, Config config);

  // Seeds the embedded LB Service (done by the extended scheduler at pod
  // initialization, §3.1 step 4).
  Status configureLb(const LbConfig& config) { return lb_.configure(config); }
  bool ready() const { return lb_.configured() && !stopped_; }

  // Submits one frame through the full pipeline. `done` fires after
  // post-processing completes.
  Status invoke(CompletionCallback done);

  // Stops accepting new frames (pod termination); in-flight frames finish.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  const Config& config() const { return config_; }
  LbService& lbService() { return lb_; }
  std::uint64_t submittedCount() const { return submitted_; }
  std::uint64_t completedCount() const { return completed_; }
  std::uint64_t failedCount() const { return failed_; }
  std::uint64_t outstanding() const {
    return submitted_ - completed_ - failed_;
  }
  // Live context slots (== outstanding()); exposed for pool-accounting tests.
  std::size_t contextsInFlight() const { return pool_.inUse(); }

 private:
  // All per-frame pipeline state (breakdown, the model's POD cost figures,
  // completion) lives in one recycled pool slot so each stage's closure
  // captures just {this, handle} — small enough to stay inline in the event
  // slot — and no string or heap allocation recurs per frame.
  struct InvokeContext {
    FrameBreakdown breakdown{};
    NodeId serviceNode{};
    std::size_t outputBytes = 0;
    SimDuration postprocessLatency{};
    CompletionCallback done;
  };
  using ContextPool = SlabPool<InvokeContext>;
  using Handle = ContextPool::Handle;

  void onRequestDelivered(Handle h);
  void onInvokeDone(Handle h, const TpuDevice::InvokeStats& stats);
  void complete(Handle h);
  // Drops the frame and recycles its slot (route/invoke failure).
  void fail(Handle h);

  Simulator& sim_;
  const ModelRegistry& registry_;
  SimTransport& transport_;
  Directory directory_;
  Config config_;
  NodeId clientNode_{};  // interned once; every frame's transport endpoint
  ModelId model_{};      // interned once; every frame's invoke argument
  LbService lb_;
  ContextPool pool_;
  bool stopped_ = false;
  std::uint64_t nextFrameId_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace microedge
