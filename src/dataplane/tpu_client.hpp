#pragma once

// TPU Client (§5.2): the library an application pod links to issue Invoke
// requests against its allocated TPU share.
//
// Per the paper, the client resizes the raw frame to the model's input
// resolution *before* transmission (data movement dominates on RPis), asks
// its LB Service for the target TPU, ships the pre-processed frame to the
// hosting tRPi, and hands the response to application post-processing. The
// full per-frame latency breakdown (Fig. 7b's four components, plus queueing
// visibility inside the TPU Service) is reported on completion.
//
// Object lifetime: completions reference the client; the experiment harness
// keeps client objects alive until the simulation drains (a stopped client
// simply refuses new invokes).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "dataplane/lb_service.hpp"
#include "dataplane/tpu_service.hpp"
#include "dataplane/transport.hpp"
#include "models/registry.hpp"
#include "sim/simulator.hpp"

namespace microedge {

struct FrameBreakdown {
  std::uint64_t frameId = 0;
  std::string servedBy;  // TPU id
  SimTime submitted{};
  SimTime completed{};
  SimDuration preprocess{};
  SimDuration requestTransmit{};
  SimDuration queueDelay{};
  SimDuration inference{};  // device occupancy incl. switch/stream penalties
  SimDuration responseTransmit{};
  SimDuration postprocess{};

  SimDuration endToEnd() const { return completed - submitted; }
};

class TpuClient {
 public:
  struct Config {
    std::string clientNode;  // RPi hosting the application pod
    std::string model;
    LbSpread spread = LbSpread::kSmooth;
  };
  // Resolves a TPU id to its TPU Service instance (nullptr if gone).
  using Directory = std::function<TpuService*(const std::string& tpuId)>;
  using CompletionCallback = std::function<void(const FrameBreakdown&)>;

  TpuClient(Simulator& sim, const ModelRegistry& registry,
            SimTransport& transport, Directory directory, Config config);

  // Seeds the embedded LB Service (done by the extended scheduler at pod
  // initialization, §3.1 step 4).
  Status configureLb(const LbConfig& config) { return lb_.configure(config); }
  bool ready() const { return lb_.configured() && !stopped_; }

  // Submits one frame through the full pipeline. `done` fires after
  // post-processing completes.
  Status invoke(CompletionCallback done);

  // Stops accepting new frames (pod termination); in-flight frames finish.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  const Config& config() const { return config_; }
  LbService& lbService() { return lb_; }
  std::uint64_t submittedCount() const { return submitted_; }
  std::uint64_t completedCount() const { return completed_; }
  std::uint64_t failedCount() const { return failed_; }
  std::uint64_t outstanding() const {
    return submitted_ - completed_ - failed_;
  }

 private:
  // All per-frame pipeline state (breakdown, model info, completion) lives
  // in one shared context so each stage's closure captures just {this, ctx}
  // — small enough to stay inline in the event slot instead of re-copying
  // the model info and callback through every stage.
  struct InvokeContext;

  void routeAndSend(const std::shared_ptr<InvokeContext>& ctx);
  void onRequestDelivered(const std::shared_ptr<InvokeContext>& ctx);
  void onResponseDelivered(const std::shared_ptr<InvokeContext>& ctx);
  void complete(const std::shared_ptr<InvokeContext>& ctx);

  Simulator& sim_;
  const ModelRegistry& registry_;
  SimTransport& transport_;
  Directory directory_;
  Config config_;
  LbService lb_;
  bool stopped_ = false;
  std::uint64_t nextFrameId_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace microedge
