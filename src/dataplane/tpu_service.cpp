#include "dataplane/tpu_service.hpp"

namespace microedge {

Status TpuService::load(const LoadCommand& command) {
  ++loads_;
  return device_.loadModels(command.composite);
}

Status TpuService::invoke(const std::string& model,
                          TpuDevice::InvokeCallback done) {
  Status s = device_.invoke(model, std::move(done));
  if (s.isOk()) {
    ++invokes_;
    ++perModel_[model];
  }
  return s;
}

std::uint64_t TpuService::invokeCountFor(const std::string& model) const {
  auto it = perModel_.find(model);
  return it == perModel_.end() ? 0 : it->second;
}

}  // namespace microedge
