#include "dataplane/tpu_service.hpp"

#include "util/strings.hpp"

namespace microedge {

Status TpuService::load(const LoadCommand& command) {
  if (hung_) {
    return unavailable(strCat("TPU service ", tpuId(), " not answering"));
  }
  ++loads_;
  return device_.loadModels(command.composite);
}

Status TpuService::invoke(ModelId model, TpuDevice::InvokeCallback done) {
  if (hung_) {
    return unavailable(strCat("TPU service ", tpuId(), " not answering"));
  }
  Status s = device_.invoke(model, std::move(done));
  if (s.isOk()) {
    ++invokes_;
    if (model.value >= perModel_.size()) {
      perModel_.resize(model.value + 1, 0);  // first sight of this model only
    }
    ++perModel_[model.value];
  }
  return s;
}

Status TpuService::invoke(const std::string& model,
                          TpuDevice::InvokeCallback done) {
  ModelId id = lookupModel(model);
  if (!id.valid()) {
    return notFound(strCat("invoke: unknown model ", model));
  }
  return invoke(id, std::move(done));
}

std::uint64_t TpuService::invokeCountFor(ModelId model) const {
  return model.valid() && model.value < perModel_.size()
             ? perModel_[model.value]
             : 0;
}

std::uint64_t TpuService::invokeCountFor(const std::string& model) const {
  return invokeCountFor(lookupModel(model));
}

}  // namespace microedge
