#include "trace/maf.hpp"

#include <algorithm>
#include <map>

#include "models/zoo.hpp"
#include "util/strings.hpp"

namespace microedge {

std::string_view toString(InvocationClass cls) {
  switch (cls) {
    case InvocationClass::kContinuous:
      return "continuous";
    case InvocationClass::kSparse:
      return "sparse";
    case InvocationClass::kBursty:
      return "bursty";
  }
  return "unknown";
}

MafTraceConfig MafTraceGenerator::paperDefaults() {
  MafTraceConfig config;
  config.continuousModel = zoo::kSsdMobileNetV2;  // vehicle watching, 24x7
  config.sparseModel = zoo::kMobileNetV1;         // on-demand classification
  config.burstyModel = zoo::kUNetV2;              // event-driven segmentation
  return config;
}

std::vector<TraceEvent> MafTraceGenerator::generate(
    const ModelRegistry& registry) const {
  Pcg32 rng(config_.seed);
  std::vector<TraceEvent> events;
  double horizonSec = toSeconds(config_.horizon);
  int counter = 0;

  auto unitsFor = [&](const std::string& model) {
    return registry.at(model).tpuUnitsAt(config_.fps);
  };
  auto push = [&](InvocationClass cls, const std::string& model, double atSec,
                  SimDuration lifetime) {
    TraceEvent ev;
    ev.createAt = kSimEpoch + secondsF(atSec);
    ev.lifetime = lifetime;
    ev.instanceName = strCat("trace-", toString(cls), "-", counter++);
    ev.cls = cls;
    ev.model = model;
    ev.fps = config_.fps;
    ev.tpuUnits = unitsFor(model);
    events.push_back(std::move(ev));
  };

  // Continuous (24x7) streams: present from the start, never leave.
  for (int i = 0; i < config_.continuousStreams; ++i) {
    push(InvocationClass::kContinuous, config_.continuousModel,
         0.5 * static_cast<double>(i), SimDuration::zero());
  }

  // Sparse: Poisson arrivals, exponential lifetimes.
  {
    Pcg32 sparseRng = rng.split();
    double meanGapSec = 60.0 / config_.sparseArrivalsPerMin;
    double t = sparseRng.exponential(meanGapSec);
    while (t < horizonSec) {
      double life = sparseRng.exponential(
          toSeconds(config_.sparseMeanLifetime));
      push(InvocationClass::kSparse, config_.sparseModel, t,
           secondsF(std::max(life, 5.0)));
      t += sparseRng.exponential(meanGapSec);
    }
  }

  // Bursty: Poisson burst epochs, each spawning several short streams.
  {
    Pcg32 burstRng = rng.split();
    double meanGapSec = 60.0 / config_.burstEpochsPerMin;
    double t = burstRng.exponential(meanGapSec);
    while (t < horizonSec) {
      int size = 1 + burstRng.poisson(config_.burstMeanSize - 1.0);
      for (int i = 0; i < size; ++i) {
        double jitter = burstRng.uniform(0.0, 3.0);
        double life = burstRng.exponential(
            toSeconds(config_.burstMeanLifetime));
        push(InvocationClass::kBursty, config_.burstyModel, t + jitter,
             secondsF(std::max(life, 10.0)));
      }
      t += burstRng.exponential(meanGapSec);
    }
  }

  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.createAt != b.createAt) return a.createAt < b.createAt;
              return a.instanceName < b.instanceName;
            });
  return events;
}

std::vector<TraceEvent> downsizeToCapacity(std::vector<TraceEvent> events,
                                           double maxConcurrentUnits,
                                           SimDuration horizon) {
  // Sweep in time order, tracking the demand that would be concurrent if
  // everything were admitted; drop creations that exceed the cap.
  std::vector<TraceEvent> kept;
  std::multimap<SimTime, double> endings;  // endAt -> units
  double concurrent = 0.0;
  for (TraceEvent& ev : events) {
    while (!endings.empty() && endings.begin()->first <= ev.createAt) {
      concurrent -= endings.begin()->second;
      endings.erase(endings.begin());
    }
    if (concurrent + ev.tpuUnits > maxConcurrentUnits) continue;
    concurrent += ev.tpuUnits;
    SimTime endAt = ev.lifetime == SimDuration::zero()
                        ? kSimEpoch + horizon
                        : ev.createAt + ev.lifetime;
    endings.emplace(endAt, ev.tpuUnits);
    kept.push_back(std::move(ev));
  }
  return kept;
}

}  // namespace microedge
