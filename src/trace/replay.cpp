#include "trace/replay.hpp"

#include <cassert>

namespace microedge {

TraceReplayer::TraceReplayer(Simulator& sim, std::vector<TraceEvent> events,
                             Callbacks callbacks)
    : sim_(sim), events_(std::move(events)), callbacks_(std::move(callbacks)) {
  assert(callbacks_.onCreate && callbacks_.onDelete);
}

void TraceReplayer::scheduleAll(SimDuration horizon) {
  SimTime horizonEnd = sim_.now() + horizon;
  for (const TraceEvent& ev : events_) {
    sim_.schedule(ev.createAt, [this, &ev, horizonEnd] {
      ++attempted_;
      if (!callbacks_.onCreate(ev)) {
        ++rejected_;
        return;
      }
      ++accepted_;
      ++active_;
      SimTime deleteAt = ev.lifetime == SimDuration::zero()
                             ? horizonEnd
                             : ev.createAt + ev.lifetime;
      sim_.schedule(deleteAt, [this, &ev] {
        callbacks_.onDelete(ev);
        --active_;
      });
    });
  }
}

}  // namespace microedge
