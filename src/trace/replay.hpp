#pragma once

// Trace replay: turns TraceEvents into pod creations/deletions against the
// experiment harness. The replayer is deliberately decoupled from the
// testbed through two callbacks so it can also drive pure control-plane
// simulations in tests.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "trace/maf.hpp"

namespace microedge {

class TraceReplayer {
 public:
  struct Callbacks {
    // Attempt to deploy the stream; return false if admission rejected it.
    std::function<bool(const TraceEvent&)> onCreate;
    // Tear down a previously accepted stream.
    std::function<void(const TraceEvent&)> onDelete;
  };

  TraceReplayer(Simulator& sim, std::vector<TraceEvent> events,
                Callbacks callbacks);

  // Schedules every event; deletions land at createAt + lifetime (streams
  // with zero lifetime are torn down at the horizon).
  void scheduleAll(SimDuration horizon);

  std::size_t attempted() const { return attempted_; }
  std::size_t accepted() const { return accepted_; }
  std::size_t rejected() const { return rejected_; }
  std::size_t activeCount() const { return active_; }

 private:
  Simulator& sim_;
  std::vector<TraceEvent> events_;
  Callbacks callbacks_;
  std::size_t attempted_ = 0;
  std::size_t accepted_ = 0;
  std::size_t rejected_ = 0;
  std::size_t active_ = 0;
};

}  // namespace microedge
