#pragma once

// Synthetic Microsoft-Azure-Functions-like trace (§6.3).
//
// The paper takes the MAF'20 serverless trace, maps each function invocation
// to a camera stream, and downsizes invocation counts to the cluster's
// capacity while keeping the functions' diversity (duration, periodicity).
// The dataset itself is not redistributable, so this generator reproduces
// the three behaviour classes the paper derives from it and assigns one
// model to each, as §6.3 does:
//
//   continuous — 24x7 processing: streams that live for the whole horizon;
//   sparse     — rare Poisson arrivals with minute-scale lifetimes
//                (a camera waking up on an upstream notification);
//   bursty     — correlated arrival bursts (events drawing crowds): burst
//                epochs arrive as a Poisson process and each spawns several
//                short-lived streams at once.
//
// Generation is seeded and deterministic.

#include <string>
#include <vector>

#include "models/registry.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace microedge {

enum class InvocationClass { kContinuous, kSparse, kBursty };

std::string_view toString(InvocationClass cls);

struct TraceEvent {
  SimTime createAt{};
  // Stream lifetime; zero means "runs until the horizon".
  SimDuration lifetime{};
  std::string instanceName;
  InvocationClass cls = InvocationClass::kSparse;
  std::string model;
  double fps = 15.0;
  double tpuUnits = 0.0;  // profiled duty cycle at `fps`
};

struct MafTraceConfig {
  SimDuration horizon = minutes(30);
  std::uint64_t seed = 42;
  double fps = 15.0;

  // Class parameters (rates are per minute of simulated time), tuned so the
  // offered load meaningfully pressures a 6-TPU pool (the paper downsizes
  // the MAF trace to just fit its cluster's capacity).
  int continuousStreams = 6;
  double sparseArrivalsPerMin = 12.0;
  SimDuration sparseMeanLifetime = seconds(80);
  double burstEpochsPerMin = 1.0;
  double burstMeanSize = 5.0;
  SimDuration burstMeanLifetime = seconds(150);

  // Model per class (defaults follow §6.1/§6.3's mix).
  std::string continuousModel;
  std::string sparseModel;
  std::string burstyModel;
};

class MafTraceGenerator {
 public:
  explicit MafTraceGenerator(MafTraceConfig config)
      : config_(std::move(config)) {}

  // Events sorted by creation time. TPU units are profiled from the zoo.
  std::vector<TraceEvent> generate(const ModelRegistry& registry) const;

  // §6.1/§6.3 defaults: detection 24x7, classification sparse, segmentation
  // bursty.
  static MafTraceConfig paperDefaults();

  const MafTraceConfig& config() const { return config_; }

 private:
  MafTraceConfig config_;
};

// The paper's "downsize to cluster capacity" step: walks the trace in time
// order assuming every stream is admitted, and drops creations that would
// push concurrent demand above `maxConcurrentUnits` (a mild oversubscription
// factor keeps enough pressure to differentiate scheduler configs).
std::vector<TraceEvent> downsizeToCapacity(std::vector<TraceEvent> events,
                                           double maxConcurrentUnits,
                                           SimDuration horizon);

}  // namespace microedge
