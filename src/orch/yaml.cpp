#include "orch/yaml.hpp"

#include <cctype>
#include <cstdlib>

#include "util/strings.hpp"

namespace microedge {

namespace {

struct Line {
  int indent = 0;
  std::string content;
  int number = 0;  // 1-based source line, for error messages
};

// Removes an unquoted trailing comment.
std::string stripComment(const std::string& line) {
  char quote = '\0';
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quote != '\0') {
      if (c == quote) quote = '\0';
    } else if (c == '\'' || c == '"') {
      quote = c;
    } else if (c == '#' && (i == 0 || std::isspace(static_cast<unsigned char>(
                                          line[i - 1])))) {
      return line.substr(0, i);
    }
  }
  return line;
}

std::string unquote(std::string_view s) {
  s = trim(s);
  if (s.size() >= 2 && (s.front() == '"' || s.front() == '\'') &&
      s.back() == s.front()) {
    return std::string(s.substr(1, s.size() - 2));
  }
  return std::string(s);
}

Status yamlError(int line, const std::string& message) {
  return invalidArgument(strCat("yaml line ", line, ": ", message));
}

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  StatusOr<YamlNode> parseDocument() {
    if (lines_.empty()) return YamlNode{};
    StatusOr<YamlNode> root = parseBlock(lines_[0].indent);
    if (!root.isOk()) return root;
    if (pos_ != lines_.size()) {
      return yamlError(lines_[pos_].number, "unexpected de-indented content");
    }
    return root;
  }

 private:
  bool atEnd() const { return pos_ >= lines_.size(); }
  const Line& cur() const { return lines_[pos_]; }

  static bool isSequenceItem(const std::string& content) {
    return content == "-" || startsWith(content, "- ");
  }

  StatusOr<YamlNode> parseBlock(int indent) {
    if (atEnd()) return YamlNode{};
    if (cur().indent != indent) {
      return yamlError(cur().number, "inconsistent indentation");
    }
    if (isSequenceItem(cur().content)) return parseSequence(indent);
    return parseMapping(indent);
  }

  StatusOr<YamlNode> parseSequence(int indent) {
    YamlNode seq = YamlNode::makeSequence();
    while (!atEnd() && cur().indent == indent && isSequenceItem(cur().content)) {
      std::string rest(trim(std::string_view(cur().content).substr(1)));
      if (rest.empty()) {
        // Nested block on following, deeper-indented lines.
        ++pos_;
        if (atEnd() || cur().indent <= indent) {
          seq.addItem(YamlNode{});
        } else {
          auto item = parseBlock(cur().indent);
          if (!item.isOk()) return item;
          seq.addItem(std::move(item).value());
        }
      } else if (looksLikeMappingEntry(rest)) {
        // "- key: value": rewrite as a virtual mapping line two columns in.
        lines_[pos_].indent = indent + 2;
        lines_[pos_].content = rest;
        auto item = parseMapping(indent + 2);
        if (!item.isOk()) return item;
        seq.addItem(std::move(item).value());
      } else {
        seq.addItem(YamlNode::makeScalar(unquote(rest)));
        ++pos_;
      }
    }
    if (!atEnd() && cur().indent > indent) {
      return yamlError(cur().number, "unexpected indent inside sequence");
    }
    return seq;
  }

  // "key: value", "key:" — with the colon outside quotes.
  static bool looksLikeMappingEntry(const std::string& s) {
    char quote = '\0';
    for (std::size_t i = 0; i < s.size(); ++i) {
      char c = s[i];
      if (quote != '\0') {
        if (c == quote) quote = '\0';
      } else if (c == '\'' || c == '"') {
        quote = c;
      } else if (c == ':') {
        return i + 1 == s.size() || s[i + 1] == ' ';
      }
    }
    return false;
  }

  static std::size_t findKeyColon(const std::string& s) {
    char quote = '\0';
    for (std::size_t i = 0; i < s.size(); ++i) {
      char c = s[i];
      if (quote != '\0') {
        if (c == quote) quote = '\0';
      } else if (c == '\'' || c == '"') {
        quote = c;
      } else if (c == ':' && (i + 1 == s.size() || s[i + 1] == ' ')) {
        return i;
      }
    }
    return std::string::npos;
  }

  StatusOr<YamlNode> parseMapping(int indent) {
    YamlNode map = YamlNode::makeMapping();
    while (!atEnd() && cur().indent == indent) {
      if (isSequenceItem(cur().content)) {
        return yamlError(cur().number, "sequence item inside mapping");
      }
      std::size_t colon = findKeyColon(cur().content);
      if (colon == std::string::npos) {
        return yamlError(cur().number, "expected 'key: value'");
      }
      std::string key = unquote(std::string_view(cur().content).substr(0, colon));
      if (key.empty()) return yamlError(cur().number, "empty mapping key");
      if (map.has(key)) {
        return yamlError(cur().number, strCat("duplicate key '", key, "'"));
      }
      std::string rest(trim(std::string_view(cur().content).substr(colon + 1)));
      int lineNo = cur().number;
      (void)lineNo;
      ++pos_;
      if (!rest.empty()) {
        map.addEntry(std::move(key), YamlNode::makeScalar(unquote(rest)));
      } else if (!atEnd() && cur().indent > indent) {
        auto child = parseBlock(cur().indent);
        if (!child.isOk()) return child;
        map.addEntry(std::move(key), std::move(child).value());
      } else {
        map.addEntry(std::move(key), YamlNode{});
      }
    }
    if (!atEnd() && cur().indent > indent) {
      return yamlError(cur().number, "unexpected indent inside mapping");
    }
    return map;
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

}  // namespace

YamlNode YamlNode::makeScalar(std::string value) {
  YamlNode n;
  n.kind_ = Kind::kScalar;
  n.scalar_ = std::move(value);
  return n;
}

YamlNode YamlNode::makeMapping() {
  YamlNode n;
  n.kind_ = Kind::kMapping;
  return n;
}

YamlNode YamlNode::makeSequence() {
  YamlNode n;
  n.kind_ = Kind::kSequence;
  return n;
}

void YamlNode::addEntry(std::string key, YamlNode value) {
  kind_ = Kind::kMapping;
  entries_.emplace_back(std::move(key), std::move(value));
}

void YamlNode::addItem(YamlNode value) {
  kind_ = Kind::kSequence;
  items_.push_back(std::move(value));
}

const YamlNode* YamlNode::find(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

StatusOr<double> YamlNode::asDouble() const {
  if (!isScalar()) return invalidArgument("yaml: not a scalar");
  const char* begin = scalar_.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    return invalidArgument(strCat("yaml: '", scalar_, "' is not a number"));
  }
  return v;
}

StatusOr<long> YamlNode::asLong() const {
  if (!isScalar()) return invalidArgument("yaml: not a scalar");
  const char* begin = scalar_.c_str();
  char* end = nullptr;
  long v = std::strtol(begin, &end, 10);
  if (end == begin || *end != '\0') {
    return invalidArgument(strCat("yaml: '", scalar_, "' is not an integer"));
  }
  return v;
}

StatusOr<bool> YamlNode::asBool() const {
  if (!isScalar()) return invalidArgument("yaml: not a scalar");
  if (scalar_ == "true" || scalar_ == "yes" || scalar_ == "on") return true;
  if (scalar_ == "false" || scalar_ == "no" || scalar_ == "off") return false;
  return invalidArgument(strCat("yaml: '", scalar_, "' is not a boolean"));
}

StatusOr<YamlNode> parseYaml(const std::string& text) {
  std::vector<Line> lines;
  int number = 0;
  for (const auto& raw : splitLines(text)) {
    ++number;
    std::string noComment = stripComment(raw);
    std::string_view body = trim(noComment);
    if (body.empty()) continue;
    std::size_t indent = 0;
    while (indent < noComment.size() && noComment[indent] == ' ') ++indent;
    if (indent < noComment.size() && noComment[indent] == '\t') {
      return yamlError(number, "tabs are not allowed for indentation");
    }
    lines.push_back(
        Line{static_cast<int>(indent), std::string(body), number});
  }
  Parser parser(std::move(lines));
  return parser.parseDocument();
}

}  // namespace microedge
