#include "orch/node_registry.hpp"

#include "util/strings.hpp"

namespace microedge {

Status NodeRegistry::addNode(const std::string& name, long cpuMillicores,
                             long memoryMb,
                             std::map<std::string, std::string> labels) {
  if (name.empty()) return invalidArgument("node name must be non-empty");
  if (cpuMillicores <= 0 || memoryMb <= 0) {
    return invalidArgument(strCat("node ", name, ": non-positive capacity"));
  }
  NodeEntry entry;
  entry.name = name;
  entry.cpuCapacity = cpuMillicores;
  entry.memCapacity = memoryMb;
  entry.labels = std::move(labels);
  auto [it, inserted] = nodes_.emplace(name, std::move(entry));
  (void)it;
  if (!inserted) return alreadyExists(strCat("node ", name, " already exists"));
  return Status::ok();
}

Status NodeRegistry::removeNode(const std::string& name) {
  if (nodes_.erase(name) == 0) {
    return notFound(strCat("node ", name, " not registered"));
  }
  return Status::ok();
}

Status NodeRegistry::setReady(const std::string& name, bool ready) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return notFound(strCat("node ", name, " not registered"));
  it->second.ready = ready;
  return Status::ok();
}

bool NodeRegistry::contains(const std::string& name) const {
  return nodes_.count(name) > 0;
}

const NodeEntry* NodeRegistry::find(const std::string& name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<const NodeEntry*> NodeRegistry::nodes() const {
  std::vector<const NodeEntry*> out;
  out.reserve(nodes_.size());
  for (const auto& [name, entry] : nodes_) out.push_back(&entry);
  return out;
}

Status NodeRegistry::allocate(const std::string& node, const PodSpec& spec) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return notFound(strCat("node ", node, " not registered"));
  NodeEntry& entry = it->second;
  if (!entry.ready) {
    return failedPrecondition(strCat("node ", node, " is not ready"));
  }
  if (entry.cpuFree() < spec.resources.cpuMillicores ||
      entry.memFree() < spec.resources.memoryMb) {
    return resourceExhausted(strCat("node ", node, ": insufficient CPU/memory"));
  }
  if (!spec.antiAffinityKey.empty() &&
      entry.antiAffinityKeys.count(spec.antiAffinityKey) > 0) {
    return failedPrecondition(
        strCat("node ", node, ": anti-affinity key '", spec.antiAffinityKey,
               "' already present"));
  }
  entry.cpuAllocated += spec.resources.cpuMillicores;
  entry.memAllocated += spec.resources.memoryMb;
  if (!spec.antiAffinityKey.empty()) {
    entry.antiAffinityKeys.insert(spec.antiAffinityKey);
  }
  return Status::ok();
}

Status NodeRegistry::release(const std::string& node, const PodSpec& spec) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return notFound(strCat("node ", node, " not registered"));
  NodeEntry& entry = it->second;
  entry.cpuAllocated -= spec.resources.cpuMillicores;
  entry.memAllocated -= spec.resources.memoryMb;
  if (entry.cpuAllocated < 0 || entry.memAllocated < 0) {
    entry.cpuAllocated = std::max(entry.cpuAllocated, 0L);
    entry.memAllocated = std::max(entry.memAllocated, 0L);
    return internalError(strCat("node ", node, ": released more than allocated"));
  }
  if (!spec.antiAffinityKey.empty()) {
    auto keyIt = entry.antiAffinityKeys.find(spec.antiAffinityKey);
    if (keyIt != entry.antiAffinityKeys.end()) {
      entry.antiAffinityKeys.erase(keyIt);
    }
  }
  return Status::ok();
}

}  // namespace microedge
