#pragma once

// Node registry: the control plane's view of schedulable capacity.
//
// Tracks per-node allocatable CPU/memory, labels, readiness, and which
// anti-affinity keys are present on each node. The default scheduler and the
// extended scheduler both read from this registry; only the API server
// writes allocations.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "orch/pod.hpp"
#include "util/status.hpp"

namespace microedge {

struct NodeEntry {
  std::string name;
  long cpuCapacity = 0;
  long memCapacity = 0;
  long cpuAllocated = 0;
  long memAllocated = 0;
  bool ready = true;
  std::map<std::string, std::string> labels;
  // Anti-affinity keys of pods currently placed here.
  std::multiset<std::string> antiAffinityKeys;

  long cpuFree() const { return cpuCapacity - cpuAllocated; }
  long memFree() const { return memCapacity - memAllocated; }
};

class NodeRegistry {
 public:
  Status addNode(const std::string& name, long cpuMillicores, long memoryMb,
                 std::map<std::string, std::string> labels = {});
  Status removeNode(const std::string& name);
  Status setReady(const std::string& name, bool ready);

  bool contains(const std::string& name) const;
  const NodeEntry* find(const std::string& name) const;
  std::vector<const NodeEntry*> nodes() const;
  std::size_t size() const { return nodes_.size(); }

  // Reserves the pod's CPU/memory on the node and records its anti-affinity
  // key. Fails (without side effects) if capacity is insufficient.
  Status allocate(const std::string& node, const PodSpec& spec);
  // Releases a previous allocation.
  Status release(const std::string& node, const PodSpec& spec);

 private:
  std::map<std::string, NodeEntry> nodes_;
};

}  // namespace microedge
