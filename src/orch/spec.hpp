#pragma once

// PodSpec <-> YAML binding.
//
// Accepted document shape (the paper's §4.1 interface; quantities use the
// usual K3s suffixes):
//
//   name: camera-03
//   image: coral-pie:1.4
//   fps: 15
//   resources:
//     cpu: 500m          # or whole cores: "1"
//     memory: 256Mi      # Mi / Gi
//     tpu-units: 0.35    # MicroEdge extension
//     model: ssd-mobilenet-v2   # MicroEdge extension
//   labels:
//     app: coral-pie
//   nodeSelector:
//     tier: edge
//   antiAffinity: coral-pie-camera

#include <string>

#include "orch/pod.hpp"
#include "orch/yaml.hpp"
#include "util/status.hpp"

namespace microedge {

StatusOr<PodSpec> podSpecFromYaml(const std::string& yamlText);
StatusOr<PodSpec> podSpecFromYaml(const YamlNode& root);

// "500m" -> 500, "2" -> 2000. K3s CPU-unit syntax.
StatusOr<long> parseCpuMillicores(const std::string& text);
// "256Mi" -> 256, "2Gi" -> 2048, bare number -> MB.
StatusOr<long> parseMemoryMb(const std::string& text);

// Renders a spec back to YAML (round-trips through podSpecFromYaml).
std::string podSpecToYaml(const PodSpec& spec);

}  // namespace microedge
