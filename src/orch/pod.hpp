#pragma once

// Pod model: the smallest unit of deployment (K3s semantics).
//
// A PodSpec carries the standard K3s resource requests (CPU millicores,
// memory) plus MicroEdge's two extension knobs from §4.1: the inference
// *model* the application uses, and the fractional *TPU units* it needs
// (duty cycle t/T). Label selectors and an anti-affinity key reproduce the
// K3s placement features the paper relies on (§2).

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "util/time.hpp"

namespace microedge {

struct ResourceRequest {
  long cpuMillicores = 0;
  long memoryMb = 0;
};

// MicroEdge extension knobs (§4.1).
struct TpuRequest {
  std::string model;    // inference model the pod will invoke
  double tpuUnits = 0;  // fractional duty cycle; may exceed 1.0
};

struct PodSpec {
  std::string name;
  std::string image;
  ResourceRequest resources;
  std::optional<TpuRequest> tpu;
  // Expected input frame rate; constant for a camera stream's lifetime (§2).
  double fps = 0.0;
  std::map<std::string, std::string> labels;
  // Node must carry every selector label with the given value.
  std::map<std::string, std::string> nodeSelector;
  // Pods sharing a non-empty anti-affinity key refuse to share a node.
  std::string antiAffinityKey;
};

enum class PodPhase {
  kPending,
  kRunning,
  kSucceeded,
  kFailed,
};

std::string_view toString(PodPhase phase);

struct Pod {
  std::uint64_t uid = 0;
  PodSpec spec;
  PodPhase phase = PodPhase::kPending;
  std::string nodeName;  // empty until bound
  SimTime createdAt{};
  SimTime finishedAt{};

  bool alive() const {
    return phase == PodPhase::kPending || phase == PodPhase::kRunning;
  }
};

}  // namespace microedge
