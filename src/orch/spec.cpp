#include "orch/spec.hpp"

#include "util/strings.hpp"

namespace microedge {

namespace {

StatusOr<std::map<std::string, std::string>> readStringMap(
    const YamlNode& node, const char* what) {
  if (!node.isMapping()) {
    return invalidArgument(strCat(what, " must be a mapping"));
  }
  std::map<std::string, std::string> out;
  for (const auto& [key, value] : node.entries()) {
    if (!value.isScalar()) {
      return invalidArgument(
          strCat(what, ".", key, " must be a scalar value"));
    }
    out[key] = value.scalar();
  }
  return out;
}

}  // namespace

StatusOr<long> parseCpuMillicores(const std::string& text) {
  if (text.empty()) return invalidArgument("cpu: empty value");
  if (text.back() == 'm') {
    const std::string digits = text.substr(0, text.size() - 1);
    char* end = nullptr;
    long v = std::strtol(digits.c_str(), &end, 10);
    if (end == digits.c_str() || *end != '\0' || v < 0) {
      return invalidArgument(strCat("cpu: bad millicore value '", text, "'"));
    }
    return v;
  }
  char* end = nullptr;
  double cores = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || cores < 0) {
    return invalidArgument(strCat("cpu: bad value '", text, "'"));
  }
  return static_cast<long>(cores * 1000.0 + 0.5);
}

StatusOr<long> parseMemoryMb(const std::string& text) {
  if (text.empty()) return invalidArgument("memory: empty value");
  double multiplier = 1.0;
  std::string digits = text;
  if (text.size() > 2) {
    std::string suffix = text.substr(text.size() - 2);
    if (suffix == "Mi") {
      digits = text.substr(0, text.size() - 2);
    } else if (suffix == "Gi") {
      multiplier = 1024.0;
      digits = text.substr(0, text.size() - 2);
    }
  }
  char* end = nullptr;
  double v = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str() || *end != '\0' || v < 0) {
    return invalidArgument(strCat("memory: bad value '", text, "'"));
  }
  return static_cast<long>(v * multiplier + 0.5);
}

StatusOr<PodSpec> podSpecFromYaml(const std::string& yamlText) {
  auto root = parseYaml(yamlText);
  if (!root.isOk()) return root.status();
  return podSpecFromYaml(*root);
}

StatusOr<PodSpec> podSpecFromYaml(const YamlNode& root) {
  if (!root.isMapping()) {
    return invalidArgument("pod spec: document must be a mapping");
  }
  PodSpec spec;

  const YamlNode* name = root.find("name");
  if (name == nullptr || !name->isScalar() || name->scalar().empty()) {
    return invalidArgument("pod spec: 'name' is required");
  }
  spec.name = name->scalar();

  if (const YamlNode* image = root.find("image"); image != nullptr) {
    if (!image->isScalar()) return invalidArgument("pod spec: bad 'image'");
    spec.image = image->scalar();
  }

  if (const YamlNode* fps = root.find("fps"); fps != nullptr) {
    auto v = fps->asDouble();
    if (!v.isOk()) return v.status();
    if (*v < 0) return invalidArgument("pod spec: fps must be >= 0");
    spec.fps = *v;
  }

  if (const YamlNode* res = root.find("resources"); res != nullptr) {
    if (!res->isMapping()) {
      return invalidArgument("pod spec: 'resources' must be a mapping");
    }
    if (const YamlNode* cpu = res->find("cpu"); cpu != nullptr) {
      auto v = parseCpuMillicores(cpu->scalar());
      if (!v.isOk()) return v.status();
      spec.resources.cpuMillicores = *v;
    }
    if (const YamlNode* mem = res->find("memory"); mem != nullptr) {
      auto v = parseMemoryMb(mem->scalar());
      if (!v.isOk()) return v.status();
      spec.resources.memoryMb = *v;
    }
    const YamlNode* units = res->find("tpu-units");
    const YamlNode* model = res->find("model");
    if ((units == nullptr) != (model == nullptr)) {
      return invalidArgument(
          "pod spec: 'tpu-units' and 'model' must be given together");
    }
    if (units != nullptr) {
      auto v = units->asDouble();
      if (!v.isOk()) return v.status();
      if (*v <= 0) {
        return invalidArgument("pod spec: tpu-units must be positive");
      }
      if (!model->isScalar() || model->scalar().empty()) {
        return invalidArgument("pod spec: bad 'model'");
      }
      spec.tpu = TpuRequest{model->scalar(), *v};
    }
  }

  if (const YamlNode* labels = root.find("labels"); labels != nullptr) {
    auto m = readStringMap(*labels, "labels");
    if (!m.isOk()) return m.status();
    spec.labels = std::move(m).value();
  }
  if (const YamlNode* sel = root.find("nodeSelector"); sel != nullptr) {
    auto m = readStringMap(*sel, "nodeSelector");
    if (!m.isOk()) return m.status();
    spec.nodeSelector = std::move(m).value();
  }
  if (const YamlNode* anti = root.find("antiAffinity"); anti != nullptr) {
    if (!anti->isScalar()) {
      return invalidArgument("pod spec: bad 'antiAffinity'");
    }
    spec.antiAffinityKey = anti->scalar();
  }
  return spec;
}

std::string podSpecToYaml(const PodSpec& spec) {
  std::string out = strCat("name: ", spec.name, "\n");
  if (!spec.image.empty()) out += strCat("image: ", spec.image, "\n");
  if (spec.fps > 0) out += strCat("fps: ", fmtDouble(spec.fps, 2), "\n");
  out += "resources:\n";
  out += strCat("  cpu: ", spec.resources.cpuMillicores, "m\n");
  out += strCat("  memory: ", spec.resources.memoryMb, "Mi\n");
  if (spec.tpu.has_value()) {
    out += strCat("  tpu-units: ", fmtDouble(spec.tpu->tpuUnits, 4), "\n");
    out += strCat("  model: ", spec.tpu->model, "\n");
  }
  if (!spec.labels.empty()) {
    out += "labels:\n";
    for (const auto& [k, v] : spec.labels) out += strCat("  ", k, ": ", v, "\n");
  }
  if (!spec.nodeSelector.empty()) {
    out += "nodeSelector:\n";
    for (const auto& [k, v] : spec.nodeSelector) {
      out += strCat("  ", k, ": ", v, "\n");
    }
  }
  if (!spec.antiAffinityKey.empty()) {
    out += strCat("antiAffinity: ", spec.antiAffinityKey, "\n");
  }
  return out;
}

}  // namespace microedge
