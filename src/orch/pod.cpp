#include "orch/pod.hpp"

namespace microedge {

std::string_view toString(PodPhase phase) {
  switch (phase) {
    case PodPhase::kPending:
      return "Pending";
    case PodPhase::kRunning:
      return "Running";
    case PodPhase::kSucceeded:
      return "Succeeded";
    case PodPhase::kFailed:
      return "Failed";
  }
  return "Unknown";
}

}  // namespace microedge
