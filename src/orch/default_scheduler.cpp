#include "orch/default_scheduler.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace microedge {

bool DefaultScheduler::matchesSelector(const NodeEntry& node,
                                       const PodSpec& spec) {
  for (const auto& [key, value] : spec.nodeSelector) {
    auto it = node.labels.find(key);
    if (it == node.labels.end() || it->second != value) return false;
  }
  return true;
}

bool DefaultScheduler::fitsResources(const NodeEntry& node,
                                     const PodSpec& spec) {
  return node.cpuFree() >= spec.resources.cpuMillicores &&
         node.memFree() >= spec.resources.memoryMb;
}

bool DefaultScheduler::satisfiesAntiAffinity(const NodeEntry& node,
                                             const PodSpec& spec) {
  return spec.antiAffinityKey.empty() ||
         node.antiAffinityKeys.count(spec.antiAffinityKey) == 0;
}

double DefaultScheduler::score(const NodeEntry& node,
                               const PodSpec& spec) const {
  // Least-allocated scoring: average of free-fraction for CPU and memory
  // after hypothetically placing the pod. Higher is better.
  double cpuFrac =
      node.cpuCapacity > 0
          ? static_cast<double>(node.cpuFree() - spec.resources.cpuMillicores) /
                static_cast<double>(node.cpuCapacity)
          : 0.0;
  double memFrac =
      node.memCapacity > 0
          ? static_cast<double>(node.memFree() - spec.resources.memoryMb) /
                static_cast<double>(node.memCapacity)
          : 0.0;
  return (cpuFrac + memFrac) / 2.0;
}

std::vector<std::string> DefaultScheduler::feasibleNodes(
    const PodSpec& spec) const {
  struct Scored {
    double score;
    std::string name;
  };
  std::vector<Scored> scored;
  for (const NodeEntry* node : registry_.nodes()) {
    if (!node->ready) continue;
    if (!matchesSelector(*node, spec)) continue;
    if (!fitsResources(*node, spec)) continue;
    if (!satisfiesAntiAffinity(*node, spec)) continue;
    scored.push_back(Scored{score(*node, spec), node->name});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.name < b.name;
  });
  std::vector<std::string> out;
  out.reserve(scored.size());
  for (auto& s : scored) out.push_back(std::move(s.name));
  return out;
}

StatusOr<std::string> DefaultScheduler::pickNode(const PodSpec& spec) const {
  auto nodes = feasibleNodes(spec);
  if (nodes.empty()) {
    return resourceExhausted(
        strCat("no feasible node for pod ", spec.name));
  }
  return nodes.front();
}

}  // namespace microedge
