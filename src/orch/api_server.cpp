#include "orch/api_server.hpp"

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace microedge {

ApiServer::ApiServer(NodeRegistry& registry, Clock clock)
    : registry_(registry), scheduler_(registry), clock_(std::move(clock)) {}

StatusOr<std::uint64_t> ApiServer::createPod(PodSpec spec) {
  if (spec.name.empty()) return invalidArgument("pod name must be non-empty");
  if (findPodByName(spec.name) != nullptr) {
    return alreadyExists(strCat("pod ", spec.name, " already exists"));
  }

  Pod pod;
  pod.uid = nextUid_++;
  pod.spec = std::move(spec);
  pod.createdAt = now();

  auto reject = [&](Status status) -> StatusOr<std::uint64_t> {
    emit(PodEvent{PodEventType::kRejected, pod.uid, pod.spec.name, ""});
    ME_LOG(kInfo) << "pod " << pod.spec.name
                  << " rejected: " << status.toString();
    return status;
  };

  // Step 1: default scheduler narrows the node pool (CPU, memory, labels,
  // anti-affinity).
  std::vector<std::string> candidates = scheduler_.feasibleNodes(pod.spec);
  if (candidates.empty()) {
    return reject(resourceExhausted(
        strCat("pod ", pod.spec.name, ": no node satisfies CPU/memory/"
               "placement constraints")));
  }

  // Step 2: TPU allocation through the extension, if requested.
  std::string chosenNode;
  if (pod.spec.tpu.has_value() && extension_) {
    auto choice = extension_(pod, candidates);
    if (!choice.isOk()) return reject(choice.status());
    chosenNode = std::move(choice).value();
  } else if (pod.spec.tpu.has_value()) {
    return reject(failedPrecondition(
        strCat("pod ", pod.spec.name,
               " requests TPU resources but no scheduler extension is "
               "registered (vanilla K3s cannot allocate TPU units)")));
  } else {
    chosenNode = candidates.front();
  }

  // Step 3: bind.
  Status bound = registry_.allocate(chosenNode, pod.spec);
  if (!bound.isOk()) {
    // The extension must pick from the candidate list, so this indicates a
    // race/bug; surface it rather than leaking TPU allocations.
    return reject(internalError(strCat("pod ", pod.spec.name, ": bind to ",
                                       chosenNode,
                                       " failed: ", bound.message())));
  }
  pod.nodeName = chosenNode;
  pod.phase = PodPhase::kRunning;
  std::uint64_t uid = pod.uid;
  PodEvent event{PodEventType::kRunning, uid, pod.spec.name, chosenNode};
  pods_.emplace(uid, std::move(pod));
  emit(event);
  return uid;
}

Status ApiServer::terminate(std::uint64_t uid, PodPhase finalPhase) {
  auto it = pods_.find(uid);
  if (it == pods_.end()) {
    return notFound(strCat("pod uid ", uid, " not found"));
  }
  Pod pod = std::move(it->second);
  pods_.erase(it);
  Status released = registry_.release(pod.nodeName, pod.spec);
  if (!released.isOk()) {
    ME_LOG(kError) << "release for pod " << pod.spec.name
                   << " failed: " << released.toString();
  }
  pod.phase = finalPhase;
  pod.finishedAt = now();
  PodEvent event{PodEventType::kTerminated, pod.uid, pod.spec.name,
                 pod.nodeName};
  terminated_.push_back(std::move(pod));
  emit(event);
  return Status::ok();
}

Status ApiServer::deletePod(std::uint64_t uid) {
  return terminate(uid, PodPhase::kSucceeded);
}

Status ApiServer::deletePodByName(const std::string& name) {
  const Pod* pod = findPodByName(name);
  if (pod == nullptr) return notFound(strCat("pod ", name, " not found"));
  return deletePod(pod->uid);
}

Status ApiServer::failPod(std::uint64_t uid) {
  return terminate(uid, PodPhase::kFailed);
}

bool ApiServer::isAlive(std::uint64_t uid) const {
  return pods_.count(uid) > 0;
}

const Pod* ApiServer::getPod(std::uint64_t uid) const {
  auto it = pods_.find(uid);
  return it == pods_.end() ? nullptr : &it->second;
}

const Pod* ApiServer::findPodByName(const std::string& name) const {
  for (const auto& [uid, pod] : pods_) {
    if (pod.spec.name == name) return &pod;
  }
  return nullptr;
}

std::vector<const Pod*> ApiServer::livePods() const {
  std::vector<const Pod*> out;
  out.reserve(pods_.size());
  for (const auto& [uid, pod] : pods_) out.push_back(&pod);
  return out;
}

void ApiServer::emit(const PodEvent& event) {
  for (const auto& watcher : watchers_) watcher(event);
}

}  // namespace microedge
