#pragma once

// Minimal YAML-subset parser for pod specifications.
//
// Clients hand MicroEdge a YAML file describing the application pod (§3.1
// step 1); the extended scheduler reads the two extension knobs (model,
// tpu-units) from the same file. We implement the subset those specs need:
//
//   * nested mappings via 2-space indentation
//   * block sequences ("- item", scalar items or nested mappings)
//   * scalars (unquoted, or single/double quoted), inline comments (#)
//   * blank lines and full-line comments
//
// Anchors, flow style, multi-line scalars and type tags are out of scope.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace microedge {

class YamlNode {
 public:
  enum class Kind { kNull, kScalar, kMapping, kSequence };

  Kind kind() const { return kind_; }
  bool isScalar() const { return kind_ == Kind::kScalar; }
  bool isMapping() const { return kind_ == Kind::kMapping; }
  bool isSequence() const { return kind_ == Kind::kSequence; }
  bool isNull() const { return kind_ == Kind::kNull; }

  // Scalar access.
  const std::string& scalar() const { return scalar_; }
  StatusOr<double> asDouble() const;
  StatusOr<long> asLong() const;
  StatusOr<bool> asBool() const;

  // Mapping access. Returns nullptr if absent or not a mapping.
  const YamlNode* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  // Keys in document order.
  const std::vector<std::pair<std::string, YamlNode>>& entries() const {
    return entries_;
  }

  // Sequence access.
  const std::vector<YamlNode>& items() const { return items_; }

  // Construction (used by the parser and by tests).
  static YamlNode makeScalar(std::string value);
  static YamlNode makeMapping();
  static YamlNode makeSequence();
  void addEntry(std::string key, YamlNode value);
  void addItem(YamlNode value);

 private:
  Kind kind_ = Kind::kNull;
  std::string scalar_;
  std::vector<std::pair<std::string, YamlNode>> entries_;
  std::vector<YamlNode> items_;
};

// Parses a document; the root must be a mapping (or empty => null node).
StatusOr<YamlNode> parseYaml(const std::string& text);

}  // namespace microedge
