#pragma once

// API server: pod lifecycle and the scheduling pipeline (K3s surface).
//
// createPod() runs the paper's §3.1 control-plane workflow synchronously:
//
//   1. validate the spec; run the default CPU/memory scheduler to produce a
//      candidate node list;
//   2. if the pod requests TPU resources and a scheduler extension is
//      registered, hand the candidates to the extension (MicroEdge's
//      extended scheduler) — it allocates TPU resources and picks the node;
//   3. bind the pod: reserve CPU/memory on the chosen node, mark Running,
//      emit watch events.
//
// Deletion releases CPU/memory immediately (native K3s behaviour); TPU units
// are reclaimed *asynchronously* by the Reclamation component in src/core,
// which polls pod liveness through this class — exactly the paper's split.
//
// The orchestrator is deliberately independent of the simulator: it takes a
// clock callback for timestamps, so the same code serves simulated and
// wall-clock (threaded) runtimes.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "orch/default_scheduler.hpp"
#include "orch/node_registry.hpp"
#include "orch/pod.hpp"
#include "util/status.hpp"
#include "util/time.hpp"

namespace microedge {

enum class PodEventType { kRunning, kTerminated, kRejected };

struct PodEvent {
  PodEventType type;
  std::uint64_t uid;
  std::string name;
  std::string node;  // empty for rejections
};

class ApiServer {
 public:
  using Clock = std::function<SimTime()>;
  using WatchCallback = std::function<void(const PodEvent&)>;

  // The extension receives the pod (spec + uid) and the default scheduler's
  // candidate nodes (best score first); it performs TPU bookkeeping and
  // returns the node to bind to (which must be a candidate).
  using SchedulerExtension = std::function<StatusOr<std::string>(
      const Pod&, const std::vector<std::string>& candidates)>;

  explicit ApiServer(NodeRegistry& registry, Clock clock = nullptr);

  void setSchedulerExtension(SchedulerExtension extension) {
    extension_ = std::move(extension);
  }
  void watch(WatchCallback callback) {
    watchers_.push_back(std::move(callback));
  }

  const DefaultScheduler& defaultScheduler() const { return scheduler_; }

  // Runs the admission pipeline. On success the pod is Running and its uid
  // is returned; on rejection nothing is allocated anywhere.
  StatusOr<std::uint64_t> createPod(PodSpec spec);

  // Graceful completion (phase Succeeded). Releases CPU/memory.
  Status deletePod(std::uint64_t uid);
  Status deletePodByName(const std::string& name);
  // Failure injection: pod dies abruptly (phase Failed); resources released.
  Status failPod(std::uint64_t uid);

  bool isAlive(std::uint64_t uid) const;
  const Pod* getPod(std::uint64_t uid) const;           // live pods only
  const Pod* findPodByName(const std::string& name) const;
  std::vector<const Pod*> livePods() const;
  std::size_t liveCount() const { return pods_.size(); }

  // Terminated pod records (bounded by experiment lifetime; used by tests
  // and the reclamation poller's bookkeeping assertions).
  const std::vector<Pod>& terminatedPods() const { return terminated_; }

 private:
  Status terminate(std::uint64_t uid, PodPhase finalPhase);
  void emit(const PodEvent& event);
  SimTime now() const { return clock_ ? clock_() : kSimEpoch; }

  NodeRegistry& registry_;
  DefaultScheduler scheduler_;
  Clock clock_;
  SchedulerExtension extension_;
  std::vector<WatchCallback> watchers_;
  std::map<std::uint64_t, Pod> pods_;
  std::vector<Pod> terminated_;
  std::uint64_t nextUid_ = 1;
};

}  // namespace microedge
