#pragma once

// The default (K3s-like) CPU/memory scheduler.
//
// Two phases, mirroring kube-scheduler: *filter* (node ready, resources fit,
// nodeSelector labels match, anti-affinity satisfied) and *score*
// (least-allocated: prefer the node with the most free CPU+memory after
// placement, for load spreading). MicroEdge leaves CPU/memory scheduling to
// this component and layers TPU allocation on top (§4): the filtered
// candidate list is handed to the extended scheduler, which may narrow the
// choice further.

#include <string>
#include <vector>

#include "orch/node_registry.hpp"
#include "orch/pod.hpp"
#include "util/status.hpp"

namespace microedge {

class DefaultScheduler {
 public:
  explicit DefaultScheduler(const NodeRegistry& registry)
      : registry_(registry) {}

  // Nodes passing all filter predicates, best score first (deterministic:
  // ties broken by node name).
  std::vector<std::string> feasibleNodes(const PodSpec& spec) const;

  // Best feasible node, or kResourceExhausted if none fits.
  StatusOr<std::string> pickNode(const PodSpec& spec) const;

  // Individual predicates, exposed for tests and for the extended scheduler.
  static bool matchesSelector(const NodeEntry& node, const PodSpec& spec);
  static bool fitsResources(const NodeEntry& node, const PodSpec& spec);
  static bool satisfiesAntiAffinity(const NodeEntry& node, const PodSpec& spec);

 private:
  double score(const NodeEntry& node, const PodSpec& spec) const;

  const NodeRegistry& registry_;
};

}  // namespace microedge
