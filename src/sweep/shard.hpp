#pragma once

// Sharded result emission and the deterministic merge.
//
// A sweep's points are partitioned into K shards by point index
// (index % K). Each shard file carries the grid identity plus its points
// sorted by global index; merging folds shard files back into one document
// whose bytes depend only on (grid, per-point results) — the shard count,
// thread count and completion order all cancel out:
//
//   shard file:  {"sweep_shard": 1, "grid": ..., "fingerprint": ...,
//                 "shard": k, "shards": K, "points": [...]}
//   merged file: {"sweep": 1, "grid": ..., "fingerprint": ...,
//                 "points": [ {"i": 0, "seed": ..., "config": {...},
//                              "result": {...}}, ... ]}
//
// The merged document deliberately excludes anything run-dependent (wall
// clock, thread count, shard paths); timing lives in the runner's report
// and stderr progress lines instead, so BENCH_sweep.json can be compared
// byte-for-byte across configurations — that equality is the subsystem's
// central test.

#include <string>
#include <vector>

#include "sweep/grid.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace microedge {

// Which shard owns a point. Modulo striping balances shards even when the
// grid is ordered cheap-to-expensive (pool-size axes usually are).
inline std::size_t sweepShardOf(std::size_t pointIndex,
                                std::size_t shardCount) {
  return shardCount < 2 ? 0 : pointIndex % shardCount;
}

// Shard file path: "<base>.shard<k>-of<K>.json".
std::string sweepShardPath(const std::string& basePath, std::size_t shard,
                           std::size_t shardCount);

// One completed point, fully described (config + seed are embedded so the
// merged file is self-contained and replayable).
struct SweepPointRecord {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  JsonValue config;  // the point's axis values
  JsonValue result;  // the point function's output
};

// Builds one shard document from the records owned by `shard` (records may
// arrive in any completion order; they are sorted by index here).
JsonValue buildShardDocument(const SweepGrid& grid,
                             std::vector<SweepPointRecord> records,
                             std::size_t shard, std::size_t shardCount);

// Folds shard documents into the canonical merged document. Validates that
// every document belongs to `grid`, that no point is missing or duplicated,
// and orders points by global index.
StatusOr<JsonValue> mergeShardDocuments(const SweepGrid& grid,
                                        const std::vector<JsonValue>& shards);

// File-level conveniences for the sweep_runner CLI and tests.
Status writeTextFile(const std::string& path, const std::string& contents);
StatusOr<std::string> readTextFile(const std::string& path);
StatusOr<JsonValue> mergeShardFiles(const SweepGrid& grid,
                                    const std::vector<std::string>& paths);

}  // namespace microedge
