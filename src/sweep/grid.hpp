#pragma once

// Experiment-grid description for the sweep subsystem (§6's figure grids).
//
// A SweepGrid names the space of independent simulation points an
// experiment covers: either the cartesian product of a handful of axes
// (model × fps × pool-size × strategy × seed — Fig. 5's shape) or an
// explicit list of point objects (Fig. 6's five named variants). Grids are
// plain JSON so a sweep can be described in a file, shipped to the
// sweep_runner binary, fingerprinted into checkpoints and embedded in the
// merged result:
//
//   {
//     "name": "fig5-coral-pie",
//     "driver": "scalability",          // PointFn the runner dispatches to
//     "seed": 7,                        // base seed for derivation
//     "axes": [
//       {"name": "mode", "values": ["baseline", "no_wp", "wp"]},
//       {"name": "tpus", "values": [1, 2, 3, 4, 5, 6]}
//     ],
//     "points": [ {...}, ... ]          // explicit list (instead of axes)
//   }
//
// Point order is the row-major cartesian order (last axis fastest) or the
// explicit list order; it is the canonical order of the merged output. A
// point's seed is splitMix64 chained over (base seed, coordinates) — a pure
// function of grid position, so neither the thread that happens to run the
// point nor the order points complete can perturb any downstream RNG.

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/status.hpp"

namespace microedge {

// One materialized grid point, handed to the point function.
struct SweepPoint {
  std::size_t index = 0;             // position in canonical grid order
  std::vector<std::size_t> coords;   // per-axis value index ({index} when
                                     // the grid is an explicit point list)
  JsonValue values;                  // object: axis/field name -> value
  std::uint64_t seed = 0;            // derived; see deriveSweepSeed()

  // Typed field access with defaults (missing fields fall back).
  std::int64_t getInt(std::string_view key, std::int64_t fallback) const {
    return values.getInt(key, fallback);
  }
  double getDouble(std::string_view key, double fallback) const {
    return values.getDouble(key, fallback);
  }
  std::string getString(std::string_view key,
                        std::string_view fallback) const {
    return values.getString(key, fallback);
  }
  bool getBool(std::string_view key, bool fallback) const {
    return values.getBool(key, fallback);
  }
};

// splitMix64 chained over the base seed and the point's coordinates.
std::uint64_t deriveSweepSeed(std::uint64_t baseSeed,
                              const std::vector<std::size_t>& coords);

class SweepGrid {
 public:
  struct Axis {
    std::string name;
    std::vector<JsonValue> values;
  };

  SweepGrid() = default;

  // Builder API (benches assemble their grids in code, then dump them).
  static SweepGrid cartesian(std::string name, std::vector<Axis> axes,
                             std::uint64_t baseSeed = 0);
  static SweepGrid explicitPoints(std::string name,
                                  std::vector<JsonValue> points,
                                  std::uint64_t baseSeed = 0);

  static StatusOr<SweepGrid> fromJson(const JsonValue& spec);
  static StatusOr<SweepGrid> fromJsonText(std::string_view text);
  JsonValue toJson() const;

  // FNV-1a over the compact grid JSON; names the grid in shard files and
  // checkpoint manifests so a stale manifest cannot poison a changed sweep.
  std::string fingerprint() const;

  const std::string& name() const { return name_; }
  const std::string& driver() const { return driver_; }
  void setDriver(std::string driver) { driver_ = std::move(driver); }
  std::uint64_t baseSeed() const { return baseSeed_; }
  const std::vector<Axis>& axes() const { return axes_; }
  bool isExplicit() const { return !points_.empty(); }

  std::size_t pointCount() const;
  // Materializes point `index` (coords, merged values, derived seed).
  // Precondition: index < pointCount().
  SweepPoint point(std::size_t index) const;

 private:
  std::string name_;
  std::string driver_;
  std::uint64_t baseSeed_ = 0;
  std::vector<Axis> axes_;           // cartesian form
  std::vector<JsonValue> points_;    // explicit form (objects)
};

}  // namespace microedge
