#pragma once

// Checkpoint manifest for resumable sweeps.
//
// A sweep over a real grid is minutes-to-hours of wall clock; an
// interrupted run must not re-pay the points that already finished. The
// manifest is an append-only JSONL file next to the output: line one is a
// header binding it to a grid fingerprint, every following line is one
// completed point with its full result:
//
//   {"sweep_manifest": 1, "grid": "fig5", "fingerprint": "9c0f..."}
//   {"i": 3, "result": {...}}
//   {"i": 0, "result": {...}}
//
// Lines land in completion order (append + flush under a mutex, so
// concurrent workers interleave whole lines, never bytes). Order does not
// matter: the runner folds the manifest into its results *slot by point
// index*, so the merged output of a resumed sweep is byte-identical to an
// uninterrupted one. A process killed mid-write leaves at most one
// truncated final line, which load() tolerates by dropping it — that
// point simply reruns.

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"
#include "util/status.hpp"

namespace microedge {

class SweepManifest {
 public:
  struct Entry {
    std::size_t pointIndex = 0;
    JsonValue result;
  };

  explicit SweepManifest(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  // Reads completed entries from an existing manifest. Missing file is not
  // an error (fresh sweep: no entries). A fingerprint mismatch *is*: the
  // grid changed under the checkpoint, and silently mixing results from
  // two different grids is exactly the corruption this file exists to
  // prevent. A truncated or garbled trailing line is dropped; a garbled
  // interior line fails.
  StatusOr<std::vector<Entry>> load(const std::string& fingerprint,
                                    std::size_t pointCount) const;

  // Opens for append, writing the header when the file is new/empty.
  // Pass resume=false to start over (truncates any previous manifest).
  Status openForAppend(const std::string& gridName,
                       const std::string& fingerprint, bool resume);

  // Thread-safe: appends one completed point and flushes the line.
  void append(std::size_t pointIndex, const JsonValue& result);

 private:
  std::string path_;
  std::mutex mu_;
  std::ofstream out_;
};

}  // namespace microedge
