#pragma once

// Work-stealing thread pool for the sweep runner — the repo's first
// concurrent code, kept deliberately simple and sanitizer-friendly.
//
// The unit of work is one grid point: a multi-second Simulator run. At that
// granularity queue overhead is irrelevant and the problem work stealing
// actually solves is *tail imbalance* — a (model × fps × pool-size) grid's
// points differ in cost by an order of magnitude (6-TPU trace replays vs
// 1-TPU capacity probes), so static round-robin sharding strands workers
// idle behind whoever drew the expensive block. Each worker owns a deque
// seeded round-robin, pops its own work from the front, and when empty
// steals from the *back* of a victim's deque (the classic arrangement:
// owner and thief touch opposite ends, and the stolen tail item is the one
// seeded last, i.e. least likely to share warm state). Mutex-per-deque is
// plenty at points-per-second contention rates and keeps the TSan model
// trivial.
//
// run() is a one-shot batch: no tasks are added after launch, so
// termination is simply "every deque is empty", with no condition-variable
// dance. Threads are spawned per run() call — microseconds against
// seconds-long points.

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace microedge {

class WorkStealingPool {
 public:
  using Task = std::function<void()>;

  // threads == 0 or 1 runs tasks inline on the calling thread, in order —
  // the serial path (--threads=1) shares this code.
  explicit WorkStealingPool(unsigned threads) : threads_(threads) {}

  unsigned threadCount() const { return threads_ < 1 ? 1 : threads_; }

  // Runs every task to completion; returns when all are done. Tasks must
  // not add further tasks. Exceptions escaping a task are routed to
  // std::terminate (point functions report failures in-band as results).
  void run(std::vector<Task> tasks);

  // Telemetry from the last run(): how many tasks were executed by a
  // worker other than the one they were seeded on.
  std::size_t stolenCount() const { return stolen_; }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<Task> q;
  };

  unsigned threads_;
  std::size_t stolen_ = 0;
};

}  // namespace microedge
