#include "sweep/grid.hpp"

#include <cassert>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace microedge {

std::uint64_t deriveSweepSeed(std::uint64_t baseSeed,
                              const std::vector<std::size_t>& coords) {
  // Chained finalizer: every coordinate permutes the whole state, so
  // neighbouring points (one coordinate apart) get uncorrelated seeds.
  std::uint64_t s = splitMix64(baseSeed ^ 0x5157454550ULL);  // "SWEEP"
  for (std::size_t c : coords) {
    s = splitMix64(s ^ (static_cast<std::uint64_t>(c) + 1));
  }
  return s;
}

SweepGrid SweepGrid::cartesian(std::string name, std::vector<Axis> axes,
                               std::uint64_t baseSeed) {
  SweepGrid grid;
  grid.name_ = std::move(name);
  grid.axes_ = std::move(axes);
  grid.baseSeed_ = baseSeed;
  return grid;
}

SweepGrid SweepGrid::explicitPoints(std::string name,
                                    std::vector<JsonValue> points,
                                    std::uint64_t baseSeed) {
  SweepGrid grid;
  grid.name_ = std::move(name);
  grid.points_ = std::move(points);
  grid.baseSeed_ = baseSeed;
  return grid;
}

StatusOr<SweepGrid> SweepGrid::fromJson(const JsonValue& spec) {
  if (!spec.isObject()) return invalidArgument("sweep grid: not an object");
  SweepGrid grid;
  grid.name_ = spec.getString("name", "sweep");
  grid.driver_ = spec.getString("driver", "");
  grid.baseSeed_ = static_cast<std::uint64_t>(spec.getInt("seed", 0));

  const JsonValue* points = spec.find("points");
  const JsonValue* axes = spec.find("axes");
  if (points != nullptr && axes != nullptr) {
    return invalidArgument("sweep grid: give either \"axes\" or \"points\"");
  }
  if (points != nullptr) {
    if (!points->isArray() || points->items().empty()) {
      return invalidArgument("sweep grid: \"points\" must be a non-empty array");
    }
    for (const JsonValue& p : points->items()) {
      if (!p.isObject()) {
        return invalidArgument("sweep grid: every point must be an object");
      }
    }
    grid.points_ = points->items();
    return grid;
  }
  if (axes == nullptr || !axes->isArray() || axes->items().empty()) {
    return invalidArgument("sweep grid: missing \"axes\" (or \"points\")");
  }
  for (const JsonValue& axis : axes->items()) {
    const JsonValue* values = axis.find("values");
    std::string axisName = axis.getString("name", "");
    if (axisName.empty() || values == nullptr || !values->isArray() ||
        values->items().empty()) {
      return invalidArgument(
          "sweep grid: each axis needs a name and non-empty values");
    }
    grid.axes_.push_back(Axis{std::move(axisName), values->items()});
  }
  return grid;
}

StatusOr<SweepGrid> SweepGrid::fromJsonText(std::string_view text) {
  StatusOr<JsonValue> parsed = JsonValue::parse(text);
  if (!parsed.isOk()) return parsed.status();
  return fromJson(*parsed);
}

JsonValue SweepGrid::toJson() const {
  JsonValue spec = JsonValue::object();
  spec.set("name", name_);
  if (!driver_.empty()) spec.set("driver", driver_);
  spec.set("seed", baseSeed_);
  if (!points_.empty()) {
    JsonValue points = JsonValue::array();
    for (const JsonValue& p : points_) points.push(p);
    spec.set("points", std::move(points));
    return spec;
  }
  JsonValue axes = JsonValue::array();
  for (const Axis& axis : axes_) {
    JsonValue a = JsonValue::object();
    a.set("name", axis.name);
    JsonValue values = JsonValue::array();
    for (const JsonValue& v : axis.values) values.push(v);
    a.set("values", std::move(values));
    axes.push(std::move(a));
  }
  spec.set("axes", std::move(axes));
  return spec;
}

std::string SweepGrid::fingerprint() const {
  std::string text = toJson().dump();
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  char buf[17];
  static const char* kHex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[h & 0xf];
    h >>= 4;
  }
  buf[16] = '\0';
  return std::string(buf);
}

std::size_t SweepGrid::pointCount() const {
  if (!points_.empty()) return points_.size();
  std::size_t n = axes_.empty() ? 0 : 1;
  for (const Axis& axis : axes_) n *= axis.values.size();
  return n;
}

SweepPoint SweepGrid::point(std::size_t index) const {
  assert(index < pointCount() && "sweep point index out of range");
  SweepPoint p;
  p.index = index;
  if (!points_.empty()) {
    p.coords = {index};
    p.values = points_[index];
    p.seed = deriveSweepSeed(baseSeed_, p.coords);
    return p;
  }
  // Row-major: the last axis varies fastest, matching nested for-loops in
  // the hand-written benches this replaces.
  p.coords.resize(axes_.size());
  std::size_t rest = index;
  for (std::size_t a = axes_.size(); a-- > 0;) {
    p.coords[a] = rest % axes_[a].values.size();
    rest /= axes_[a].values.size();
  }
  p.values = JsonValue::object();
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    p.values.set(axes_[a].name, axes_[a].values[p.coords[a]]);
  }
  p.seed = deriveSweepSeed(baseSeed_, p.coords);
  return p;
}

}  // namespace microedge
