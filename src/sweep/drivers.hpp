#pragma once

// Point functions and built-in grids for the experiments the sweep runner
// serves (Fig. 5 capacity/utilization, Fig. 6 trace study).
//
// A grid's "driver" field names the PointFn that interprets its points:
//
//   "scalability" — one runScalabilityPoint (admission fill + data-plane
//       horizon) per point. Fields: model, fps, mode (baseline|no_wp|wp),
//       tpus; optional tpus_per_node, horizon_s, camera_upper_bound, seed
//       (explicit seed overrides the derived per-point seed so paper-shape
//       grids reproduce the fixed-seed bench output).
//   "trace" — one runTraceScenario (MAF-like replay) per point. Fields:
//       mode, co_compile; optional horizon_min, capacity_units, window_s,
//       seed.
//   "scenario" — one ShardedCluster scenario run (DESIGN.md §15) per point:
//       SLO attainment x load shape x control policy. Fields: scenario
//       (builtin name: diurnal|flashcrowd|churn|failures|city), policy
//       (none|admit|degrade|full); optional peak (flash-crowd multiplier
//       override), fps, slo_ms, shards, racks, vrpis_per_rack,
//       streams_per_vrpi, seed.
//
// The smoke grid is a milliseconds-cheap scalability grid (tiny horizon,
// small camera cap) used by the CI determinism check and tests.
//
// Every driver builds its entire world inside the call, which combined
// with the runner's InternScope makes points bit-reproducible regardless
// of what other workers are doing.

#include <string>

#include "sweep/grid.hpp"
#include "sweep/runner.hpp"
#include "util/status.hpp"

namespace microedge {

// Resolves a grid's driver name. Unknown names -> NotFound.
StatusOr<SweepPointFn> findSweepDriver(const std::string& name);

// Built-in grids, dumpable via toJson() (sweep_runner --dump-grid).
SweepGrid fig5SweepGrid();   // scalability: Coral-Pie + BodyPix series
SweepGrid fig6SweepGrid();   // trace: the five scheduling variants
SweepGrid smokeSweepGrid();  // tiny deterministic grid for CI smoke
// SLO attainment x load shape x {none, admit, degrade, full}: every builtin
// scenario against every control-policy bundle.
SweepGrid scenarioSweepGrid();

// Grid by name ("fig5" | "fig6" | "smoke" | "scenario") -> NotFound
// otherwise.
StatusOr<SweepGrid> builtinSweepGrid(const std::string& name);

}  // namespace microedge
