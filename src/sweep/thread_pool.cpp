#include "sweep/thread_pool.hpp"

#include <atomic>
#include <memory>
#include <thread>

namespace microedge {

void WorkStealingPool::run(std::vector<Task> tasks) {
  stolen_ = 0;
  if (tasks.empty()) return;
  const unsigned n = threadCount();
  if (n == 1) {
    for (Task& task : tasks) task();
    return;
  }

  // Seed the deques round-robin so every worker starts with a spread of the
  // grid (adjacent points often share cost characteristics).
  std::vector<std::unique_ptr<Queue>> queues;
  queues.reserve(n);
  for (unsigned i = 0; i < n; ++i) queues.push_back(std::make_unique<Queue>());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    queues[t % n]->q.push_back(std::move(tasks[t]));
  }

  std::atomic<std::size_t> stolen{0};
  auto worker = [&queues, &stolen, n](unsigned self) {
    for (;;) {
      Task task;
      bool wasSteal = false;
      {
        // Own queue first: pop from the front.
        Queue& mine = *queues[self];
        std::lock_guard<std::mutex> lock(mine.mu);
        if (!mine.q.empty()) {
          task = std::move(mine.q.front());
          mine.q.pop_front();
        }
      }
      if (!task) {
        // Steal from the back of the first non-empty victim.
        for (unsigned off = 1; off < n && !task; ++off) {
          Queue& victim = *queues[(self + off) % n];
          std::lock_guard<std::mutex> lock(victim.mu);
          if (!victim.q.empty()) {
            task = std::move(victim.q.back());
            victim.q.pop_back();
            wasSteal = true;
          }
        }
      }
      if (!task) return;  // every deque empty: batch is done
      if (wasSteal) stolen.fetch_add(1, std::memory_order_relaxed);
      task();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (unsigned i = 0; i < n; ++i) threads.emplace_back(worker, i);
  for (std::thread& t : threads) t.join();
  stolen_ = stolen.load(std::memory_order_relaxed);
}

}  // namespace microedge
