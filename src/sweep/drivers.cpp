#include "sweep/drivers.hpp"

#include "models/zoo.hpp"
#include "scenario/spec.hpp"
#include "testbed/scenarios.hpp"
#include "testbed/sharded_cluster.hpp"
#include "util/strings.hpp"

namespace microedge {

namespace {

StatusOr<SchedulingMode> parseMode(const std::string& mode) {
  if (mode == "baseline") return SchedulingMode::kBaselineDedicated;
  if (mode == "no_wp") return SchedulingMode::kMicroEdgeNoWp;
  if (mode == "wp") return SchedulingMode::kMicroEdgeWp;
  return invalidArgument(
      strCat("sweep: unknown mode \"", mode, "\" (baseline|no_wp|wp)"));
}

// Explicit "seed" field wins (paper-shape grids pin the seed the serial
// benches used); otherwise the coordinate-derived per-point seed.
std::uint64_t pointSeed(const SweepPoint& p) {
  const JsonValue* seed = p.values.find("seed");
  return seed != nullptr && seed->isNumber() ? seed->asUint() : p.seed;
}

JsonValue runScalabilitySweepPoint(const SweepPoint& p) {
  ScalabilityScenario scenario;
  StatusOr<SchedulingMode> mode = parseMode(p.getString("mode", "wp"));
  // A bad mode string is a grid-authoring error; surface it in-band so the
  // offending point is visible in the merged output.
  if (!mode.isOk()) {
    JsonValue err = JsonValue::object();
    err.set("error", mode.status().toString());
    return err;
  }
  scenario.mode = *mode;
  scenario.deployment.model = p.getString("model", zoo::kSsdMobileNetV2);
  scenario.deployment.fps = p.getDouble("fps", 15.0);
  scenario.tpusPerNode = static_cast<int>(p.getInt("tpus_per_node", 1));
  scenario.cameraUpperBound =
      static_cast<int>(p.getInt("camera_upper_bound", 64));
  scenario.horizon = secondsF(p.getDouble("horizon_s", 40.0));
  scenario.seed = pointSeed(p);
  const int tpus = static_cast<int>(p.getInt("tpus", 1));

  ScalabilityPoint r = runScalabilityPoint(scenario, tpus);
  JsonValue out = JsonValue::object();
  out.set("tpus", r.tpuCount);
  out.set("cameras", r.camerasSupported);
  out.set("mean_utilization", r.meanUtilization);
  out.set("slo_met", r.sloMet);
  out.set("min_fps", r.minAchievedFps);
  return out;
}

JsonValue runTraceSweepPoint(const SweepPoint& p) {
  StatusOr<SchedulingMode> mode = parseMode(p.getString("mode", "wp"));
  if (!mode.isOk()) {
    JsonValue err = JsonValue::object();
    err.set("error", mode.status().toString());
    return err;
  }
  TraceScenarioConfig config;
  config.trace = MafTraceGenerator::paperDefaults();
  config.trace.horizon = secondsF(p.getDouble("horizon_min", 20.0) * 60.0);
  config.trace.seed = pointSeed(p);
  config.capacityUnits = p.getDouble("capacity_units", 10.0);
  config.sampleWindow = secondsF(p.getDouble("window_s", 60.0));
  config.testbed.mode = *mode;
  config.testbed.enableCoCompile = p.getBool("co_compile", true);

  TraceRunResult r = runTraceScenario(config);
  JsonValue out = JsonValue::object();
  out.set("attempted", r.attempted);
  out.set("accepted", r.accepted);
  out.set("rejected", r.rejected);
  out.set("streams", r.slo.streams);
  out.set("streams_meeting_slo", r.slo.streamsMeetingSlo);
  JsonValue utilization = JsonValue::array();
  for (double u : r.utilizationPerWindow) utilization.push(u);
  out.set("utilization_per_window", std::move(utilization));
  JsonValue active = JsonValue::array();
  for (int a : r.activePerWindow) active.push(static_cast<std::int64_t>(a));
  out.set("active_per_window", std::move(active));
  return out;
}

// Overload-control bundles for the scenario driver, cumulative by design
// (admit ⊂ degrade ⊂ full) so the sweep reads as an ablation.
Status applyScenarioPolicy(const std::string& policy, SimDuration deadline,
                           ShardedClusterConfig* config) {
  if (policy == "none") return Status::ok();
  config->frameDeadline = deadline;
  config->frameAdmission.enabled = true;
  if (policy == "admit") return Status::ok();
  config->degradation.enabled = true;
  if (policy == "degrade") return Status::ok();
  if (policy == "full") {
    config->repack.enabled = true;
    return Status::ok();
  }
  return invalidArgument(strCat("sweep: unknown policy \"", policy,
                                "\" (none|admit|degrade|full)"));
}

JsonValue runScenarioSweepPoint(const SweepPoint& p) {
  auto fail = [](const Status& status) {
    JsonValue err = JsonValue::object();
    err.set("error", status.toString());
    return err;
  };
  const std::string name = p.getString("scenario", "flashcrowd");
  StatusOr<ScenarioSpec> specOr = builtinScenario(name);
  if (!specOr.isOk()) return fail(specOr.status());
  ScenarioSpec spec = *std::move(specOr);
  spec.seed = pointSeed(p);
  const double peak = p.getDouble("peak", 0.0);
  if (peak > 0.0) {
    for (FlashCrowdSpec& flash : spec.flash) flash.peakMultiplier = peak;
  }

  ShardedClusterConfig config;
  config.shards = static_cast<unsigned>(p.getInt("shards", 1));
  config.racks = static_cast<int>(p.getInt("racks", 2));
  config.tRpisPerRack = 1;
  config.vRpisPerRack = static_cast<int>(p.getInt("vrpis_per_rack", 4));
  config.streamsPerVRpi = static_cast<int>(p.getInt("streams_per_vrpi", 2));
  config.fps = p.getDouble("fps", 24.0);
  const SimDuration slo = millisecondsF(p.getDouble("slo_ms", 60.0));
  config.scenario.enabled = true;
  config.scenario.spec = spec;
  config.scenario.sloDeadline = slo;
  const std::string policy = p.getString("policy", "none");
  Status applied = applyScenarioPolicy(policy, slo, &config);
  if (!applied.isOk()) return fail(applied);

  ShardedCluster cluster(std::move(config));
  if (!cluster.setupStatus().isOk()) return fail(cluster.setupStatus());
  Status ran = cluster.runScenario();
  if (!ran.isOk()) return fail(ran);

  JsonValue out = JsonValue::object();
  out.set("scenario", name);
  out.set("policy", policy);
  out.set("submitted", static_cast<std::int64_t>(cluster.totalSubmitted()));
  out.set("completed", static_cast<std::int64_t>(cluster.totalCompleted()));
  out.set("deadline_met",
          static_cast<std::int64_t>(cluster.totalDeadlineMet()));
  out.set("repacks", static_cast<std::int64_t>(cluster.totalRepacks()));
  const std::uint64_t completed = cluster.totalCompleted();
  out.set("attainment",
          completed > 0 ? static_cast<double>(cluster.totalDeadlineMet()) /
                              static_cast<double>(completed)
                        : 1.0);
  out.set("digest", strCat(cluster.digest()));
  JsonValue phases = JsonValue::array();
  for (const ShardedCluster::PhaseStats& ph : cluster.phaseStats()) {
    JsonValue entry = JsonValue::object();
    entry.set("name", ph.name);
    entry.set("completed", static_cast<std::int64_t>(ph.completed));
    entry.set("deadline_met", static_cast<std::int64_t>(ph.deadlineMet));
    entry.set("attainment", ph.attainment);
    entry.set("goodput_fps", ph.goodputFps);
    entry.set("repacks", static_cast<std::int64_t>(ph.repacks));
    phases.push(std::move(entry));
  }
  out.set("phases", std::move(phases));
  return out;
}

JsonValue scalabilityPointSpec(const char* series, const char* label,
                               const char* model, const char* mode, int tpus,
                               int tpusPerNode) {
  JsonValue p = JsonValue::object();
  p.set("series", series);
  p.set("label", label);
  p.set("model", model);
  p.set("fps", 15.0);
  p.set("mode", mode);
  p.set("tpus", tpus);
  p.set("tpus_per_node", tpusPerNode);
  p.set("seed", 7);  // the serial bench's fixed seed (paper-shape output)
  return p;
}

}  // namespace

StatusOr<SweepPointFn> findSweepDriver(const std::string& name) {
  if (name == "scalability") return SweepPointFn(runScalabilitySweepPoint);
  if (name == "trace") return SweepPointFn(runTraceSweepPoint);
  if (name == "scenario") return SweepPointFn(runScenarioSweepPoint);
  return notFound(strCat("sweep: unknown driver \"", name,
                         "\" (scalability|trace|scenario)"));
}

SweepGrid fig5SweepGrid() {
  std::vector<JsonValue> points;
  // Fig. 5a/5b — Coral-Pie: three variants over 1..6 TPUs.
  struct Variant {
    const char* label;
    const char* mode;
  };
  const Variant coralVariants[] = {{"baseline", "baseline"},
                                   {"MicroEdge w/o W.P.", "no_wp"},
                                   {"MicroEdge w/ W.P.", "wp"}};
  for (const Variant& v : coralVariants) {
    for (int tpus = 1; tpus <= 6; ++tpus) {
      points.push_back(scalabilityPointSpec("coral-pie", v.label,
                                            zoo::kSsdMobileNetV2, v.mode,
                                            tpus, 1));
    }
  }
  // Fig. 5c/5d — BodyPix: the bare-metal baseline attaches 2 TPUs per RPi.
  const int bodypixTpus[] = {2, 4, 6};
  for (int tpus : bodypixTpus) {
    points.push_back(scalabilityPointSpec("bodypix", "baseline (2 TPUs/cam)",
                                          zoo::kBodyPixMobileNetV1, "baseline",
                                          tpus, 2));
  }
  for (int tpus : bodypixTpus) {
    points.push_back(scalabilityPointSpec("bodypix", "MicroEdge w/ W.P.",
                                          zoo::kBodyPixMobileNetV1, "wp",
                                          tpus, 1));
  }
  SweepGrid grid = SweepGrid::explicitPoints("fig5", std::move(points), 7);
  grid.setDriver("scalability");
  return grid;
}

SweepGrid fig6SweepGrid() {
  struct Variant {
    const char* label;
    const char* mode;
    bool coCompile;
  };
  const Variant variants[] = {{"baseline", "baseline", true},
                              {"WP+CC", "wp", true},
                              {"WP only", "wp", false},
                              {"CC only", "no_wp", true},
                              {"neither", "no_wp", false}};
  std::vector<JsonValue> points;
  for (const Variant& v : variants) {
    JsonValue p = JsonValue::object();
    p.set("label", v.label);
    p.set("mode", v.mode);
    p.set("co_compile", v.coCompile);
    p.set("horizon_min", 20.0);
    p.set("capacity_units", 10.0);
    p.set("window_s", 60.0);
    p.set("seed", 2022);  // the serial bench's trace seed
    points.push_back(std::move(p));
  }
  SweepGrid grid = SweepGrid::explicitPoints("fig6", std::move(points), 2022);
  grid.setDriver("trace");
  return grid;
}

SweepGrid smokeSweepGrid() {
  // Cartesian on purpose (the built-in explicit grids don't exercise that
  // path): 2 modes x 2 pool sizes, 2-second horizons, derived seeds.
  std::vector<SweepGrid::Axis> axes;
  axes.push_back({"mode", {JsonValue("wp"), JsonValue("no_wp")}});
  axes.push_back({"tpus", {JsonValue(1), JsonValue(2)}});
  axes.push_back({"horizon_s", {JsonValue(2.0)}});
  axes.push_back({"camera_upper_bound", {JsonValue(6)}});
  SweepGrid grid = SweepGrid::cartesian("smoke", std::move(axes), 99);
  grid.setDriver("scalability");
  return grid;
}

SweepGrid scenarioSweepGrid() {
  // SLO attainment x load shape x control policy: every builtin scenario
  // against every overload-control bundle (the §15 ablation map).
  std::vector<SweepGrid::Axis> axes;
  axes.push_back({"scenario",
                  {JsonValue("diurnal"), JsonValue("flashcrowd"),
                   JsonValue("churn"), JsonValue("failures"),
                   JsonValue("city")}});
  axes.push_back({"policy",
                  {JsonValue("none"), JsonValue("admit"), JsonValue("degrade"),
                   JsonValue("full")}});
  SweepGrid grid = SweepGrid::cartesian("scenario", std::move(axes), 41);
  grid.setDriver("scenario");
  return grid;
}

StatusOr<SweepGrid> builtinSweepGrid(const std::string& name) {
  if (name == "fig5") return fig5SweepGrid();
  if (name == "fig6") return fig6SweepGrid();
  if (name == "smoke") return smokeSweepGrid();
  if (name == "scenario") return scenarioSweepGrid();
  return notFound(strCat("sweep: no built-in grid \"", name,
                         "\" (fig5|fig6|smoke|scenario)"));
}

}  // namespace microedge
