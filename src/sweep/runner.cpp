#include "sweep/runner.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>

#include "sweep/thread_pool.hpp"
#include "util/intern.hpp"
#include "util/strings.hpp"

namespace microedge {

namespace {

using WallClock = std::chrono::steady_clock;

double secondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

// Once-a-second completed/total + ETA lines while workers run. Joined (and
// thereby quiesced) before any result is read, so it needs nothing beyond
// one atomic counter.
class ProgressReporter {
 public:
  ProgressReporter(std::ostream& out, std::string label, std::size_t total,
                   std::size_t resumed, const std::atomic<std::size_t>& done)
      : out_(out),
        label_(std::move(label)),
        total_(total),
        resumed_(resumed),
        done_(done),
        start_(WallClock::now()),
        thread_([this] { loop(); }) {}

  ~ProgressReporter() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    print();  // final line: 100% with the total wall time
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::seconds(1),
                         [this] { return stop_; })) {
      print();
    }
  }

  void print() {
    const std::size_t done = done_.load(std::memory_order_relaxed);
    const double elapsed = secondsSince(start_);
    std::string line = strCat("sweep ", label_, ": ", resumed_ + done, "/",
                              total_, " points");
    if (resumed_ > 0) line += strCat(" (", resumed_, " resumed)");
    line += strCat(", ", fmtDouble(elapsed, 1), "s elapsed");
    const std::size_t remaining = total_ - resumed_ - done;
    if (done > 0 && remaining > 0) {
      line += strCat(", eta ",
                     fmtDouble(elapsed / static_cast<double>(done) *
                                   static_cast<double>(remaining),
                               1),
                     "s");
    }
    out_ << line << "\n";
  }

  std::ostream& out_;
  std::string label_;
  std::size_t total_;
  std::size_t resumed_;
  const std::atomic<std::size_t>& done_;
  WallClock::time_point start_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

StatusOr<SweepReport> runSweep(const SweepGrid& grid, const SweepPointFn& fn,
                               const SweepOptions& options) {
  const auto start = WallClock::now();
  const std::size_t total = grid.pointCount();
  if (total == 0) return invalidArgument("sweep: empty grid");
  if (options.shards > 1 && options.outPath.empty()) {
    return invalidArgument("sweep: shard files need an output path");
  }
  const std::string fingerprint = grid.fingerprint();

  SweepReport report;
  report.totalPoints = total;

  // Per-point result slots. A slot is written by exactly one worker task
  // (or prefilled from the manifest before workers start) and read only
  // after the pool joins — no locking, no ordering sensitivity.
  std::vector<SweepPointRecord> records(total);
  std::vector<char> present(total, 0);

  SweepManifest manifest(options.manifestPath.empty() ? std::string()
                                                      : options.manifestPath);
  if (!options.manifestPath.empty()) {
    if (options.resume) {
      StatusOr<std::vector<SweepManifest::Entry>> entries =
          manifest.load(fingerprint, total);
      if (!entries.isOk()) return entries.status();
      for (SweepManifest::Entry& entry : *entries) {
        if (present[entry.pointIndex]) continue;  // later dup wins nothing
        SweepPoint p = grid.point(entry.pointIndex);
        records[entry.pointIndex] =
            SweepPointRecord{p.index, p.seed, std::move(p.values),
                             std::move(entry.result)};
        present[entry.pointIndex] = 1;
        ++report.resumed;
      }
    }
    ME_RETURN_IF_ERROR(
        manifest.openForAppend(grid.name(), fingerprint, options.resume));
  }

  // Missing points, in canonical order (the serial path runs them exactly
  // in this order; parallel order is irrelevant by construction).
  std::vector<std::size_t> pending;
  pending.reserve(total - report.resumed);
  for (std::size_t i = 0; i < total; ++i) {
    if (!present[i]) pending.push_back(i);
  }
  if (options.maxNewPoints > 0 && pending.size() > options.maxNewPoints) {
    pending.resize(options.maxNewPoints);
  }

  std::atomic<std::size_t> done{0};
  const bool checkpointing = !options.manifestPath.empty();
  auto runPoint = [&](std::size_t index) {
    // Fresh intern tables for this point: handle values become a pure
    // function of the point's own intern sequence, bit-identical to a solo
    // run (and the tables cannot grow across a long sweep).
    InternScope scope;
    SweepPoint p = grid.point(index);
    JsonValue result = fn(p);
    records[index] =
        SweepPointRecord{p.index, p.seed, std::move(p.values), result};
    present[index] = 1;
    if (checkpointing) manifest.append(index, records[index].result);
    done.fetch_add(1, std::memory_order_relaxed);
  };

  {
    std::unique_ptr<ProgressReporter> reporter;
    if (options.progress) {
      reporter = std::make_unique<ProgressReporter>(
          options.progressOut != nullptr ? *options.progressOut : std::cerr,
          grid.name(), total, report.resumed, done);
    }
    WorkStealingPool pool(options.threads);
    std::vector<WorkStealingPool::Task> tasks;
    tasks.reserve(pending.size());
    for (std::size_t index : pending) {
      tasks.push_back([&runPoint, index] { runPoint(index); });
    }
    pool.run(std::move(tasks));
    report.stolen = pool.stolenCount();
  }
  report.ran = done.load();

  report.complete = report.resumed + report.ran == total;
  report.wallSeconds = secondsSince(start);
  if (!report.complete) return report;  // interrupted (maxNewPoints)

  // Shard + merge. Sharding is by point index, so the shard documents —
  // like the merge — are independent of which worker ran what.
  const std::size_t shardCount = options.shards < 1 ? 1 : options.shards;
  std::vector<JsonValue> shardDocs;
  shardDocs.reserve(shardCount);
  for (std::size_t shard = 0; shard < shardCount; ++shard) {
    std::vector<SweepPointRecord> owned;
    for (std::size_t i = shard; i < total; i += shardCount) {
      owned.push_back(records[i]);
    }
    shardDocs.push_back(
        buildShardDocument(grid, std::move(owned), shard, shardCount));
  }
  StatusOr<JsonValue> merged = mergeShardDocuments(grid, shardDocs);
  if (!merged.isOk()) return merged.status();
  report.merged = std::move(*merged);

  if (!options.outPath.empty()) {
    if (shardCount > 1) {
      for (std::size_t shard = 0; shard < shardCount; ++shard) {
        std::string path = sweepShardPath(options.outPath, shard, shardCount);
        ME_RETURN_IF_ERROR(writeTextFile(path, shardDocs[shard].dump(2) + "\n"));
        report.shardPaths.push_back(std::move(path));
      }
    }
    ME_RETURN_IF_ERROR(
        writeTextFile(options.outPath, report.merged.dump(2) + "\n"));
  }
  report.wallSeconds = secondsSince(start);
  return report;
}

}  // namespace microedge
