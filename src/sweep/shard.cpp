#include "sweep/shard.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace microedge {

std::string sweepShardPath(const std::string& basePath, std::size_t shard,
                           std::size_t shardCount) {
  return strCat(basePath, ".shard", shard, "-of", shardCount, ".json");
}

namespace {

JsonValue recordToJson(const SweepPointRecord& record) {
  JsonValue p = JsonValue::object();
  p.set("i", record.index);
  p.set("seed", record.seed);
  p.set("config", record.config);
  p.set("result", record.result);
  return p;
}

}  // namespace

JsonValue buildShardDocument(const SweepGrid& grid,
                             std::vector<SweepPointRecord> records,
                             std::size_t shard, std::size_t shardCount) {
  std::sort(records.begin(), records.end(),
            [](const SweepPointRecord& a, const SweepPointRecord& b) {
              return a.index < b.index;
            });
  JsonValue doc = JsonValue::object();
  doc.set("sweep_shard", 1);
  doc.set("grid", grid.name());
  doc.set("fingerprint", grid.fingerprint());
  doc.set("shard", shard);
  doc.set("shards", shardCount);
  JsonValue points = JsonValue::array();
  for (SweepPointRecord& record : records) {
    points.push(recordToJson(record));
  }
  doc.set("points", std::move(points));
  return doc;
}

StatusOr<JsonValue> mergeShardDocuments(const SweepGrid& grid,
                                        const std::vector<JsonValue>& shards) {
  const std::string fingerprint = grid.fingerprint();
  std::vector<const JsonValue*> points(grid.pointCount(), nullptr);
  for (const JsonValue& doc : shards) {
    if (doc.getInt("sweep_shard", 0) != 1) {
      return invalidArgument("sweep merge: not a shard document");
    }
    if (doc.getString("fingerprint", "") != fingerprint) {
      return failedPrecondition(
          strCat("sweep merge: shard belongs to a different grid (",
                 doc.getString("fingerprint", "?"), " != ", fingerprint, ")"));
    }
    const JsonValue* shardPoints = doc.find("points");
    if (shardPoints == nullptr || !shardPoints->isArray()) {
      return invalidArgument("sweep merge: shard without points array");
    }
    for (const JsonValue& p : shardPoints->items()) {
      std::int64_t index = p.getInt("i", -1);
      if (index < 0 || static_cast<std::size_t>(index) >= points.size()) {
        return invalidArgument(
            strCat("sweep merge: point index ", index, " out of range"));
      }
      if (points[static_cast<std::size_t>(index)] != nullptr) {
        return invalidArgument(
            strCat("sweep merge: duplicate point ", index));
      }
      points[static_cast<std::size_t>(index)] = &p;
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i] == nullptr) {
      return failedPrecondition(
          strCat("sweep merge: point ", i, " missing from shards"));
    }
  }
  // Canonical order (by index) + canonical serialization = byte-identical
  // output for any shard/thread split.
  JsonValue merged = JsonValue::object();
  merged.set("sweep", 1);
  merged.set("grid", grid.name());
  merged.set("fingerprint", fingerprint);
  JsonValue out = JsonValue::array();
  for (const JsonValue* p : points) out.push(*p);
  merged.set("points", std::move(out));
  return merged;
}

Status writeTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out.is_open()) {
    return internalError(strCat("cannot open ", path, " for writing"));
  }
  out << contents;
  out.flush();
  if (!out.good()) return internalError(strCat("short write to ", path));
  return Status::ok();
}

StatusOr<std::string> readTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return notFound(strCat("cannot open ", path));
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

StatusOr<JsonValue> mergeShardFiles(const SweepGrid& grid,
                                    const std::vector<std::string>& paths) {
  std::vector<JsonValue> docs;
  docs.reserve(paths.size());
  for (const std::string& path : paths) {
    StatusOr<std::string> text = readTextFile(path);
    if (!text.isOk()) return text.status();
    StatusOr<JsonValue> doc = JsonValue::parse(*text);
    if (!doc.isOk()) {
      return invalidArgument(
          strCat(path, ": ", doc.status().message()));
    }
    docs.push_back(std::move(*doc));
  }
  return mergeShardDocuments(grid, docs);
}

}  // namespace microedge
