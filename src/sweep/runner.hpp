#pragma once

// SweepRunner: turns a SweepGrid into sharded, work-stolen units of
// independent Simulator runs and merges the per-point results
// deterministically.
//
// Determinism contract (the subsystem's reason to exist):
//   merged_bytes = f(grid, point function)      — nothing else.
// Thread count, shard count, completion order, steals, and interrupted/
// resumed histories all produce the identical BENCH_sweep.json. Three
// mechanisms carry that guarantee:
//
//   1. Per-point isolation. Every point runs inside its own InternScope
//      (fresh intern tables for the worker thread) with a fresh Testbed/
//      Simulator built by the point function, and its seed comes from the
//      grid coordinates (deriveSweepSeed), so a point's result is
//      bit-identical to the same point run alone in a fresh process.
//   2. Slotted collection. Workers write into a per-point slot (no shared
//      accumulator), the manifest records completions in arrival order but
//      is folded back by index, and the merge sorts by global index.
//   3. Canonical serialization. util/json prints one spelling per value.
//
// Work distribution is the WorkStealingPool (tail imbalance across grid
// points is the real scheduling problem; see thread_pool.hpp). Progress is
// wall-clock: a reporter thread prints completed/total and an ETA to
// stderr once a second while workers run.

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sweep/checkpoint.hpp"
#include "sweep/grid.hpp"
#include "sweep/shard.hpp"
#include "util/status.hpp"

namespace microedge {

// Runs one grid point, returning its result object. Must be thread-safe in
// the trivial sense: everything it touches is built inside the call (the
// runner supplies the InternScope; hidden process-global state is a bug —
// see the InternScope notes in util/intern.hpp).
using SweepPointFn = std::function<JsonValue(const SweepPoint&)>;

struct SweepOptions {
  // 1 = serial path (inline on the calling thread, canonical grid order).
  unsigned threads = 1;
  // Shard files written alongside outPath when > 1 (outPath required).
  std::size_t shards = 1;
  // Merged document path; empty = keep the merge in memory only.
  std::string outPath;
  // Checkpoint manifest path; empty disables checkpointing.
  std::string manifestPath;
  // Fold a pre-existing manifest in and run only the missing points.
  bool resume = false;
  // Test hook / simulated kill: run at most this many new points (0 = all).
  // The sweep then reports complete=false and writes no merged output —
  // exactly the state an interrupted run leaves behind.
  std::size_t maxNewPoints = 0;
  // Wall-clock progress lines (to *progressOut, default std::cerr).
  bool progress = false;
  std::ostream* progressOut = nullptr;
};

struct SweepReport {
  std::size_t totalPoints = 0;
  std::size_t ran = 0;      // executed this run
  std::size_t resumed = 0;  // folded in from the manifest
  std::size_t stolen = 0;   // tasks that changed workers (pool telemetry)
  double wallSeconds = 0.0;
  bool complete = false;
  JsonValue merged;  // valid when complete
  std::vector<std::string> shardPaths;  // written when complete && sharded
};

StatusOr<SweepReport> runSweep(const SweepGrid& grid, const SweepPointFn& fn,
                               const SweepOptions& options);

}  // namespace microedge
