#include "sweep/checkpoint.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace microedge {

StatusOr<std::vector<SweepManifest::Entry>> SweepManifest::load(
    const std::string& fingerprint, std::size_t pointCount) const {
  std::vector<Entry> entries;
  std::ifstream in(path_);
  if (!in.is_open()) return entries;  // no manifest yet: fresh sweep

  std::string line;
  bool sawHeader = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    StatusOr<JsonValue> parsed = JsonValue::parse(line);
    if (!parsed.isOk()) {
      // A truncated tail is the signature of a killed writer; anything
      // malformed *before* EOF means the file is not ours.
      if (in.peek() == std::ifstream::traits_type::eof()) break;
      return invalidArgument(
          strCat("sweep manifest ", path_, ": corrupt line: ", line));
    }
    const JsonValue& v = *parsed;
    if (!sawHeader) {
      if (v.getInt("sweep_manifest", 0) != 1) {
        return invalidArgument(
            strCat("sweep manifest ", path_, ": missing header"));
      }
      std::string got = v.getString("fingerprint", "");
      if (got != fingerprint) {
        return failedPrecondition(
            strCat("sweep manifest ", path_, ": grid fingerprint ", got,
                   " does not match current grid ", fingerprint,
                   " (delete the manifest to start over)"));
      }
      sawHeader = true;
      continue;
    }
    // Tail tolerance covers only lines that fail to *parse*: a torn write
    // is a proper prefix of a complete line, which never balances its
    // braces. A line that parses but names a bad point is real corruption.
    const JsonValue* result = v.find("result");
    std::int64_t index = v.getInt("i", -1);
    if (result == nullptr || index < 0 ||
        static_cast<std::size_t>(index) >= pointCount) {
      return invalidArgument(
          strCat("sweep manifest ", path_, ": bad entry: ", line));
    }
    entries.push_back(Entry{static_cast<std::size_t>(index), *result});
  }
  return entries;
}

Status SweepManifest::openForAppend(const std::string& gridName,
                                    const std::string& fingerprint,
                                    bool resume) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool fresh = [&] {
    if (!resume) return true;
    std::ifstream probe(path_);
    return !probe.is_open() || probe.peek() == std::ifstream::traits_type::eof();
  }();
  out_.open(path_, fresh ? std::ios::trunc : std::ios::app);
  if (!out_.is_open()) {
    return internalError(strCat("cannot open sweep manifest ", path_));
  }
  if (fresh) {
    JsonValue header = JsonValue::object();
    header.set("sweep_manifest", 1);
    header.set("grid", gridName);
    header.set("fingerprint", fingerprint);
    out_ << header.dump() << '\n';
    out_.flush();
  }
  return Status::ok();
}

void SweepManifest::append(std::size_t pointIndex, const JsonValue& result) {
  JsonValue entry = JsonValue::object();
  entry.set("i", pointIndex);
  entry.set("result", result);
  std::string line = entry.dump();
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  out_ << line << '\n';
  out_.flush();  // a killed process loses at most the in-flight line
}

}  // namespace microedge
