#pragma once

// Model registry: name -> ModelInfo lookup shared by the control plane (the
// extended scheduler infers parameter-data size from the requested model
// name, §4.1) and the data plane (TPU Service resolves service times).
//
// Models are stored densely and addressed by interned ModelId handles
// (util/intern.hpp): the Model Size Rule check at admission resolves a
// model's parameter size with one vector index instead of a string-map
// probe. Name-based lookups intern once on entry.

#include <string>
#include <vector>

#include "models/model.hpp"
#include "util/intern.hpp"
#include "util/status.hpp"

namespace microedge {

class ModelRegistry {
 public:
  // Registers a model; replaces kInvalidArgument fields with an error.
  // Assigns info.id from the process-wide symbol table.
  Status add(ModelInfo info);
  // Registers or overwrites (used by tests to tweak calibration).
  void addOrReplace(ModelInfo info);

  bool contains(const std::string& name) const;
  StatusOr<ModelInfo> find(const std::string& name) const;
  // Like find() but without copying; nullptr when absent. The pointer is
  // invalidated by the next add/addOrReplace (admission resolves and uses it
  // within one call).
  const ModelInfo* findPtr(const std::string& name) const;
  // Precondition: contains(name) / model registered here. Asserts otherwise.
  const ModelInfo& at(const std::string& name) const;
  const ModelInfo& at(ModelId id) const;
  // O(1); nullptr when this registry has no model under that handle.
  const ModelInfo* byId(ModelId id) const;

  std::vector<std::string> names() const;
  std::size_t size() const { return infos_.size(); }

 private:
  std::uint32_t slotOf(ModelId id) const;

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  std::vector<ModelInfo> infos_;        // dense, registration order
  std::vector<std::uint32_t> slotById_;  // global ModelId.value -> slot
};

}  // namespace microedge
