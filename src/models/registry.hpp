#pragma once

// Model registry: name -> ModelInfo lookup shared by the control plane (the
// extended scheduler infers parameter-data size from the requested model
// name, §4.1) and the data plane (TPU Service resolves service times).

#include <map>
#include <string>
#include <vector>

#include "models/model.hpp"
#include "util/status.hpp"

namespace microedge {

class ModelRegistry {
 public:
  // Registers a model; replaces kInvalidArgument fields with an error.
  Status add(ModelInfo info);
  // Registers or overwrites (used by tests to tweak calibration).
  void addOrReplace(ModelInfo info);

  bool contains(const std::string& name) const;
  StatusOr<ModelInfo> find(const std::string& name) const;
  // Precondition: contains(name). Asserts otherwise.
  const ModelInfo& at(const std::string& name) const;

  std::vector<std::string> names() const;
  std::size_t size() const { return models_.size(); }

 private:
  std::map<std::string, ModelInfo> models_;
};

}  // namespace microedge
