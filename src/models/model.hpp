#pragma once

// ML model descriptors.
//
// The reproduction does not execute real neural networks: from the point of
// view of MicroEdge's scheduler and data plane, a model is fully described
// by (a) its per-frame service time on the Edge TPU, (b) the size of its
// parameter data (which must fit the TPU's ~8 MB SRAM, 6.9 MB of which is
// usable for parameters), and (c) its input resolution (which determines the
// bytes moved from TPU Client to TPU Service). These are the only properties
// the paper's evaluation depends on; values are calibrated from the paper's
// text (see models/zoo.hpp).

#include <cstddef>
#include <string>

#include "util/intern.hpp"
#include "util/time.hpp"

namespace microedge {

enum class ModelTask { kDetection, kClassification, kSegmentation };

std::string_view toString(ModelTask task);

struct ModelInfo {
  std::string name;
  // Interned dense handle, assigned by ModelRegistry::add/addOrReplace; the
  // control plane keys all hot per-TPU state on this instead of the name.
  ModelId id{};
  ModelTask task = ModelTask::kClassification;
  // Per-frame service time on the TPU with the model fully cached in TPU
  // memory (no swap, no partial-cache streaming).
  SimDuration inferenceLatency{};
  // Parameter-data footprint in TPU memory, MB.
  double paramSizeMb = 0.0;
  int inputWidth = 0;
  int inputHeight = 0;
  int inputChannels = 3;
  // Client-side pipeline stage costs on an RPi 4 (Fig. 2 / Fig. 7b): frame
  // resize + normalization before transmission, and application
  // post-processing of the inference result.
  SimDuration preprocessLatency = milliseconds(2);
  SimDuration postprocessLatency = microseconds(800);
  // Result payload returned by the TPU Service: small boxes/labels for
  // detection/classification, a dense mask for segmentation.
  std::size_t outputBytes = 2048;

  // Bytes transmitted per pre-processed frame (client resizes before send).
  std::size_t inputBytes() const {
    return static_cast<std::size_t>(inputWidth) * inputHeight * inputChannels;
  }

  // The paper's TPU-unit duty cycle at a given frame rate: t / T.
  // May exceed 1.0 (e.g. BodyPix at 15 FPS needs 1.2 units).
  double tpuUnitsAt(double fps) const {
    return toSeconds(inferenceLatency) * fps;
  }

  // Frame rate that drives a dedicated TPU to 100% utilization (the orange
  // line in the paper's Fig. 1).
  double fpsForFullUtilization() const {
    double s = toSeconds(inferenceLatency);
    return s > 0.0 ? 1.0 / s : 0.0;
  }
};

}  // namespace microedge
