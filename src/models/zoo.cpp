#include "models/zoo.hpp"

#include <cassert>

namespace microedge {
namespace zoo {

const std::vector<std::string>& fig1Models() {
  static const std::vector<std::string> kOrder = {
      kSsdLiteMobileDet, kSsdMobileNetV1,  kSsdMobileNetV2, kEfficientDetLite0,
      kMobileNetV1,      kMobileNetV2,     kInceptionV1,    kResNet50,
  };
  return kOrder;
}

ModelRegistry standardZoo() {
  ModelRegistry reg;
  auto add = [&reg](const char* name, ModelTask task, double latencyMs,
                    double paramMb, int w, int h) {
    ModelInfo info;
    info.name = name;
    info.task = task;
    info.inferenceLatency = millisecondsF(latencyMs);
    info.paramSizeMb = paramMb;
    info.inputWidth = w;
    info.inputHeight = h;
    // Resize cost on the RPi grows with the target resolution; ~2.5 ms for
    // 300x300 (Fig. 7b's pre-processing share).
    info.preprocessLatency = millisecondsF(
        0.7 + 2e-5 * static_cast<double>(w) * static_cast<double>(h));
    if (task == ModelTask::kSegmentation) {
      // Dense mask: one byte per pixel back to the client, and a heavier
      // post-processing stage (mask decode/overlay).
      info.outputBytes = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
      info.postprocessLatency = millisecondsF(2.0);
    } else if (task == ModelTask::kDetection) {
      info.outputBytes = 2048;  // boxes + classes + scores
      info.postprocessLatency = millisecondsF(0.8);
    } else {
      info.outputBytes = 1024;  // top-k labels
      info.postprocessLatency = millisecondsF(0.3);
    }
    Status s = reg.add(std::move(info));
    assert(s.isOk());
    (void)s;
  };

  // Detection (Fig. 1, left group).
  add(kSsdLiteMobileDet, ModelTask::kDetection, 9.0, 4.5, 320, 320);
  add(kSsdMobileNetV1, ModelTask::kDetection, 12.0, 5.9, 300, 300);
  add(kSsdMobileNetV2, ModelTask::kDetection, 23.3, 6.2, 300, 300);
  add(kEfficientDetLite0, ModelTask::kDetection, 90.0, 4.4, 320, 320);

  // Classification (Fig. 1, right group).
  add(kMobileNetV1, ModelTask::kClassification, 4.5, 4.2, 224, 224);
  add(kMobileNetV2, ModelTask::kClassification, 6.0, 3.5, 224, 224);
  add(kInceptionV1, ModelTask::kClassification, 16.0, 6.4, 224, 224);
  add(kResNet50, ModelTask::kClassification, 75.0, 25.0, 224, 224);

  // Intro example: 69 ms per frame, needs 2 TPUs for 15 FPS.
  add(kEfficientNetLite0, ModelTask::kClassification, 69.0, 4.6, 224, 224);
  // BodyPix at 15 FPS needs 1.2 TPU units -> 80 ms.
  add(kBodyPixMobileNetV1, ModelTask::kSegmentation, 80.0, 4.7, 481, 353);
  // UNet V2, used in the §6.3 trace study.
  add(kUNetV2, ModelTask::kSegmentation, 55.0, 2.5, 256, 256);

  return reg;
}

}  // namespace zoo
}  // namespace microedge
