#include "models/model.hpp"

namespace microedge {

std::string_view toString(ModelTask task) {
  switch (task) {
    case ModelTask::kDetection:
      return "detection";
    case ModelTask::kClassification:
      return "classification";
    case ModelTask::kSegmentation:
      return "segmentation";
  }
  return "unknown";
}

}  // namespace microedge
