#pragma once

// The model zoo used throughout the reproduction.
//
// Calibration sources (all from the paper text):
//   - Coral-Pie's detection model (SSD MobileNet V2) "needs 0.35 TPU units"
//     at 15 FPS  =>  0.35 * 66.7 ms  = 23.3 ms per frame.
//   - BodyPix MobileNet V1 "requires > 1 TPU unit at 15 FPS", quantified as
//     1.2 units  =>  80 ms per frame.
//   - "per-frame inference processing for the EfficientNet-Lite0 model on a
//     TPU takes 69 ms".
//   - ResNet-50 and EfficientDet-Lite0 "may exceed the inter-arrival time
//     between camera frames even at 15 FPS" (> 66.7 ms).
//   - Fig. 1 profiles four detection + four classification models; five of
//     the eight need > 50 FPS (i.e. < 20 ms/frame) to reach 100% TPU
//     utilization.
//   - TPU memory: ~8 MB, of which 6.9 MB usable for parameter data.
// Remaining latencies/sizes follow Coral's published USB-accelerator
// benchmarks, scaled to stay consistent with the constraints above.

#include "models/registry.hpp"

namespace microedge {
namespace zoo {

// Fig. 1's eight models: four detection...
inline constexpr const char* kSsdMobileNetV1 = "ssd-mobilenet-v1";
inline constexpr const char* kSsdMobileNetV2 = "ssd-mobilenet-v2";
inline constexpr const char* kSsdLiteMobileDet = "ssdlite-mobiledet";
inline constexpr const char* kEfficientDetLite0 = "efficientdet-lite0";
// ...and four classification.
inline constexpr const char* kMobileNetV1 = "mobilenet-v1";
inline constexpr const char* kMobileNetV2 = "mobilenet-v2";
inline constexpr const char* kInceptionV1 = "inception-v1";
inline constexpr const char* kResNet50 = "resnet-50";

// Additional models used by the evaluation sections.
inline constexpr const char* kEfficientNetLite0 = "efficientnet-lite0";
inline constexpr const char* kBodyPixMobileNetV1 = "bodypix-mobilenet-v1";
inline constexpr const char* kUNetV2 = "unet-v2";

// The eight Fig. 1 models, in the figure's plotting order.
const std::vector<std::string>& fig1Models();

// Registry preloaded with every model above.
ModelRegistry standardZoo();

}  // namespace zoo
}  // namespace microedge
