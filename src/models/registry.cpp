#include "models/registry.hpp"

#include <algorithm>
#include <cassert>

#include "util/strings.hpp"

namespace microedge {

std::uint32_t ModelRegistry::slotOf(ModelId id) const {
  if (!id.valid() || id.value >= slotById_.size()) return kNoSlot;
  return slotById_[id.value];
}

Status ModelRegistry::add(ModelInfo info) {
  if (info.name.empty()) return invalidArgument("model name must be non-empty");
  if (info.inferenceLatency <= SimDuration::zero()) {
    return invalidArgument(strCat("model ", info.name,
                                  ": inference latency must be positive"));
  }
  if (info.paramSizeMb <= 0.0) {
    return invalidArgument(
        strCat("model ", info.name, ": parameter size must be positive"));
  }
  if (info.inputWidth <= 0 || info.inputHeight <= 0 || info.inputChannels <= 0) {
    return invalidArgument(
        strCat("model ", info.name, ": input dimensions must be positive"));
  }
  info.id = internModel(info.name);
  if (slotOf(info.id) != kNoSlot) {
    return alreadyExists(strCat("model ", info.name, " already registered"));
  }
  if (info.id.value >= slotById_.size()) {
    slotById_.resize(info.id.value + 1, kNoSlot);
  }
  slotById_[info.id.value] = static_cast<std::uint32_t>(infos_.size());
  infos_.push_back(std::move(info));
  return Status::ok();
}

void ModelRegistry::addOrReplace(ModelInfo info) {
  info.id = internModel(info.name);
  std::uint32_t slot = slotOf(info.id);
  if (slot != kNoSlot) {
    infos_[slot] = std::move(info);
    return;
  }
  if (info.id.value >= slotById_.size()) {
    slotById_.resize(info.id.value + 1, kNoSlot);
  }
  slotById_[info.id.value] = static_cast<std::uint32_t>(infos_.size());
  infos_.push_back(std::move(info));
}

bool ModelRegistry::contains(const std::string& name) const {
  return slotOf(lookupModel(name)) != kNoSlot;
}

StatusOr<ModelInfo> ModelRegistry::find(const std::string& name) const {
  const ModelInfo* info = findPtr(name);
  if (info == nullptr) {
    return notFound(strCat("model ", name, " not registered"));
  }
  return *info;
}

const ModelInfo* ModelRegistry::findPtr(const std::string& name) const {
  std::uint32_t slot = slotOf(lookupModel(name));
  return slot == kNoSlot ? nullptr : &infos_[slot];
}

const ModelInfo& ModelRegistry::at(const std::string& name) const {
  const ModelInfo* info = findPtr(name);
  assert(info != nullptr && "ModelRegistry::at on unknown model");
  return *info;
}

const ModelInfo& ModelRegistry::at(ModelId id) const {
  const ModelInfo* info = byId(id);
  assert(info != nullptr && "ModelRegistry::at on unknown model id");
  return *info;
}

const ModelInfo* ModelRegistry::byId(ModelId id) const {
  std::uint32_t slot = slotOf(id);
  return slot == kNoSlot ? nullptr : &infos_[slot];
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(infos_.size());
  for (const auto& info : infos_) out.push_back(info.name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace microedge
