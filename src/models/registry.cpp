#include "models/registry.hpp"

#include <cassert>

#include "util/strings.hpp"

namespace microedge {

Status ModelRegistry::add(ModelInfo info) {
  if (info.name.empty()) return invalidArgument("model name must be non-empty");
  if (info.inferenceLatency <= SimDuration::zero()) {
    return invalidArgument(strCat("model ", info.name,
                                  ": inference latency must be positive"));
  }
  if (info.paramSizeMb <= 0.0) {
    return invalidArgument(
        strCat("model ", info.name, ": parameter size must be positive"));
  }
  if (info.inputWidth <= 0 || info.inputHeight <= 0 || info.inputChannels <= 0) {
    return invalidArgument(
        strCat("model ", info.name, ": input dimensions must be positive"));
  }
  auto [it, inserted] = models_.emplace(info.name, std::move(info));
  (void)it;
  if (!inserted) {
    return alreadyExists(strCat("model ", it->first, " already registered"));
  }
  return Status::ok();
}

void ModelRegistry::addOrReplace(ModelInfo info) {
  models_[info.name] = std::move(info);
}

bool ModelRegistry::contains(const std::string& name) const {
  return models_.count(name) > 0;
}

StatusOr<ModelInfo> ModelRegistry::find(const std::string& name) const {
  auto it = models_.find(name);
  if (it == models_.end()) {
    return notFound(strCat("model ", name, " not registered"));
  }
  return it->second;
}

const ModelInfo& ModelRegistry::at(const std::string& name) const {
  auto it = models_.find(name);
  assert(it != models_.end() && "ModelRegistry::at on unknown model");
  return it->second;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, info] : models_) out.push_back(name);
  return out;
}

}  // namespace microedge
