#include "util/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/strings.hpp"

namespace microedge {

// ---- value mutation ---------------------------------------------------------

JsonValue& JsonValue::push(JsonValue v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  assert(type_ == Type::kArray && "push on non-array JsonValue");
  array_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(std::string_view key, JsonValue v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  assert(type_ == Type::kObject && "set on non-object JsonValue");
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(std::string(key), std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

std::int64_t JsonValue::getInt(std::string_view key,
                               std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isNumber() ? v->asInt() : fallback;
}

double JsonValue::getDouble(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isNumber() ? v->asDouble() : fallback;
}

std::string JsonValue::getString(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isString() ? v->asString()
                                       : std::string(fallback);
}

bool JsonValue::getBool(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isBool() ? v->asBool() : fallback;
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case JsonValue::Type::kNull:
      return true;
    case JsonValue::Type::kBool:
      return a.bool_ == b.bool_;
    case JsonValue::Type::kInt:
      return a.int_ == b.int_;
    case JsonValue::Type::kDouble:
      return a.double_ == b.double_;
    case JsonValue::Type::kString:
      return a.string_ == b.string_;
    case JsonValue::Type::kArray:
      return a.array_ == b.array_;
    case JsonValue::Type::kObject:
      return a.object_ == b.object_;
  }
  return false;
}

// ---- serialization ----------------------------------------------------------

std::string jsonFormatDouble(double v) {
  if (std::isnan(v)) return "null";  // JSON has no NaN/Inf
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc());
  std::string s(buf, end);
  // Keep doubles distinguishable from ints on re-parse ("3" -> "3.0"), so a
  // dump/parse/dump round trip is byte-stable.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void appendIndent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::dumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kInt: {
      char buf[24];
      auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), int_);
      (void)ec;
      out.append(buf, end);
      return;
    }
    case Type::kDouble:
      out += jsonFormatDouble(double_);
      return;
    case Type::kString:
      appendEscaped(out, string_);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) appendIndent(out, indent, depth + 1);
        array_[i].dumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) appendIndent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) appendIndent(out, indent, depth + 1);
        appendEscaped(out, object_[i].first);
        out += indent >= 0 ? ": " : ":";
        object_[i].second.dumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) appendIndent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

// ---- parsing ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> run() {
    JsonValue v;
    ME_RETURN_IF_ERROR(parseValue(v, 0));
    skipWs();
    if (pos_ != text_.size()) return fail("trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 96;

  Status fail(std::string_view what) const {
    return invalidArgument(
        strCat("JSON parse error at byte ", pos_, ": ", what));
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status expect(char c) {
    if (!consume(c)) return fail(strCat("expected '", std::string(1, c), "'"));
    return Status::ok();
  }

  Status parseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return fail("bad literal");
    pos_ += lit.size();
    return Status::ok();
  }

  Status parseString(std::string& out) {
    ME_RETURN_IF_ERROR(expect('"'));
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (sweep files are ASCII in
          // practice; surrogate pairs are rejected rather than mis-merged).
          if (cp >= 0xd800 && cp <= 0xdfff) return fail("surrogate \\u escape");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  Status parseNumber(JsonValue& out) {
    std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool isDouble = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      isDouble = true;
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      isDouble = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return fail("bad number");
    if (!isDouble) {
      std::int64_t iv = 0;
      auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), iv);
      if (ec == std::errc() && p == token.data() + token.size()) {
        out = JsonValue(iv);
        return Status::ok();
      }
      // Integer overflow: fall through to double.
    }
    double dv = 0.0;
    auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), dv);
    if (ec != std::errc() || p != token.data() + token.size()) {
      return fail("bad number");
    }
    out = JsonValue(dv);
    return Status::ok();
  }

  Status parseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skipWs();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case 'n':
        ME_RETURN_IF_ERROR(parseLiteral("null"));
        out = JsonValue();
        return Status::ok();
      case 't':
        ME_RETURN_IF_ERROR(parseLiteral("true"));
        out = JsonValue(true);
        return Status::ok();
      case 'f':
        ME_RETURN_IF_ERROR(parseLiteral("false"));
        out = JsonValue(false);
        return Status::ok();
      case '"': {
        std::string s;
        ME_RETURN_IF_ERROR(parseString(s));
        out = JsonValue(std::move(s));
        return Status::ok();
      }
      case '[': {
        ++pos_;
        out = JsonValue::array();
        skipWs();
        if (consume(']')) return Status::ok();
        while (true) {
          JsonValue item;
          ME_RETURN_IF_ERROR(parseValue(item, depth + 1));
          out.push(std::move(item));
          skipWs();
          if (consume(']')) return Status::ok();
          ME_RETURN_IF_ERROR(expect(','));
        }
      }
      case '{': {
        ++pos_;
        out = JsonValue::object();
        skipWs();
        if (consume('}')) return Status::ok();
        while (true) {
          skipWs();
          std::string key;
          ME_RETURN_IF_ERROR(parseString(key));
          skipWs();
          ME_RETURN_IF_ERROR(expect(':'));
          JsonValue item;
          ME_RETURN_IF_ERROR(parseValue(item, depth + 1));
          out.set(key, std::move(item));
          skipWs();
          if (consume('}')) return Status::ok();
          ME_RETURN_IF_ERROR(expect(','));
        }
      }
      default:
        return parseNumber(out);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace microedge
