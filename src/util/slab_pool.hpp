#pragma once

// SlabPool: a chunked object pool with generation-checked handles, built for
// per-frame contexts on the data-plane fast path.
//
// TpuClient used to heap-allocate a shared_ptr'd InvokeContext per frame and
// thread it through every pipeline stage, paying an allocation plus refcount
// churn on each of the millions of frames a figure reproduction replays.
// The pool replaces that with recycled slots: stages capture a {this, Handle}
// pair (16 bytes — inline in the event slot) and re-resolve the context at
// each hop.
//
// Design points:
//  * storage is chunked (fixed-size slabs), so T* stay stable for the pool's
//    lifetime — growth never moves live objects, and a stage may hold a
//    pointer across calls that acquire new slots;
//  * each slot carries a generation counter bumped on acquire AND release
//    (odd = live). A Handle embeds the generation it was minted with, so a
//    stale handle — slot released, possibly reused — resolves to nullptr
//    instead of someone else's frame;
//  * slots are recycled LIFO through an index free list, keeping the hot
//    working set small and cache-resident;
//  * steady state performs zero heap allocations: a chunk is allocated only
//    when the in-use high-water mark grows.
//
// T must be default-constructible; objects are constructed once per slot and
// reused, so the caller resets whatever fields matter on acquire.

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace microedge {

template <typename T, std::size_t ChunkSize = 64>
class SlabPool {
  static_assert(ChunkSize > 0 && (ChunkSize & (ChunkSize - 1)) == 0,
                "ChunkSize must be a power of two");

 public:
  struct Handle {
    std::uint32_t index = kInvalidIndex;
    std::uint32_t generation = 0;
    bool valid() const { return index != kInvalidIndex; }
    friend bool operator==(Handle a, Handle b) {
      return a.index == b.index && a.generation == b.generation;
    }
  };

  // Returns a handle to a live slot. The object is recycled, not
  // re-constructed — reset its fields before use.
  Handle acquire() {
    if (freeList_.empty()) addChunk();
    std::uint32_t index = freeList_.back();
    freeList_.pop_back();
    std::uint32_t gen = ++generation_[index];  // even -> odd: live
    assert((gen & 1u) == 1u && "acquired slot must be generation-odd");
    ++inUse_;
    return Handle{index, gen};
  }

  // Acquires `n` slots in one call (a burst of frames entering the
  // pipeline), appending their handles to `out`. Equivalent to n acquire()
  // calls — same LIFO recycling, one free-list top-up instead of n empty
  // checks; chunks are added upfront so at most one growth path runs per
  // burst regardless of n.
  void acquireRun(std::size_t n, std::vector<Handle>& out) {
    while (freeList_.size() < n) addChunk();
    out.reserve(out.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t index = freeList_.back();
      freeList_.pop_back();
      std::uint32_t gen = ++generation_[index];
      assert((gen & 1u) == 1u && "acquired slot must be generation-odd");
      out.push_back(Handle{index, gen});
    }
    inUse_ += n;
  }

  // Resolves a handle; nullptr if the handle is stale (its slot has been
  // released since, whether or not it was reacquired).
  T* get(Handle h) {
    if (h.index >= generation_.size()) return nullptr;
    if (generation_[h.index] != h.generation || (h.generation & 1u) == 0u) {
      return nullptr;
    }
    return slotPtr(h.index);
  }

  // Releases a live slot back to the free list. Stale handles are rejected
  // (returns false) rather than corrupting the freelist with double-frees.
  bool release(Handle h) {
    if (get(h) == nullptr) return false;
    ++generation_[h.index];  // odd -> even: free
    freeList_.push_back(h.index);
    --inUse_;
    return true;
  }

  // Visits every live slot as (Handle, T&). `fn` must not acquire or
  // release slots while iterating — snapshot handles first if it needs to.
  // O(capacity); meant for rare lifecycle sweeps (service removal), never
  // the per-frame path.
  template <typename Fn>
  void forEachLive(Fn&& fn) {
    for (std::uint32_t i = 0; i < generation_.size(); ++i) {
      if ((generation_[i] & 1u) != 0u) {
        fn(Handle{i, generation_[i]}, *slotPtr(i));
      }
    }
  }

  std::size_t inUse() const { return inUse_; }
  std::size_t capacity() const { return generation_.size(); }

 private:
  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  T* slotPtr(std::uint32_t index) {
    return &chunks_[index / ChunkSize][index % ChunkSize];
  }

  void addChunk() {
    std::size_t base = generation_.size();
    assert(base + ChunkSize < kInvalidIndex && "slab pool index space");
    chunks_.push_back(std::make_unique<T[]>(ChunkSize));
    generation_.resize(base + ChunkSize, 0);
    freeList_.reserve(base + ChunkSize);
    // LIFO free list: push in reverse so the lowest index comes out first.
    for (std::size_t i = ChunkSize; i-- > 0;) {
      freeList_.push_back(static_cast<std::uint32_t>(base + i));
    }
  }

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<std::uint32_t> generation_;  // per slot; odd = live
  std::vector<std::uint32_t> freeList_;
  std::size_t inUse_ = 0;
};

}  // namespace microedge
