#pragma once

// Bounded exponential backoff schedule: base * 2^attempt, saturating at
// `cap`, for at most `maxAttempts` retries. Plain value type — callers
// carry it by copy and index it with the attempt number, so retry loops
// stay stateless and replay-deterministic.

#include <cstdint>

#include "util/time.hpp"

namespace microedge {

struct ExpBackoff {
  SimDuration base = milliseconds(10);
  SimDuration cap = seconds(2);
  std::uint32_t maxAttempts = 5;

  // Delay before retry number `attempt` (0-based).
  SimDuration delay(std::uint32_t attempt) const {
    if (base <= SimDuration::zero()) return SimDuration::zero();
    SimDuration d = base;
    for (std::uint32_t i = 0; i < attempt && d < cap; ++i) d += d;
    return d < cap ? d : cap;
  }
};

}  // namespace microedge
