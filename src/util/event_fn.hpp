#pragma once

// MoveFn: a move-only, small-buffer-optimized replacement for std::function
// on the data-plane and simulator hot paths, generalized over the call
// signature. Two instantiations matter:
//
//   EventFn                  = MoveFn<void()>                 — every event
//     scheduled on the Simulator stores exactly one inside its heap slot;
//   TpuDevice::InvokeCallback = MoveFn<void(const InvokeStats&)> — every
//     queued inference carries its completion through the device FIFO.
//
// Callables up to kInlineSize bytes (48 — enough for every closure the
// actors capture: a this-pointer plus a pool handle, a whole
// std::function<void()>, or a ~40-byte stats blob) live inline in the slot;
// firing is then a small memcpy-class move with zero heap traffic. Larger
// callables fall back to a single heap allocation, and moving the wrapper
// just moves the pointer.
//
// Unlike std::function, MoveFn is move-only: callbacks are consumed exactly
// once, so copyability would only force captured state to be copyable and
// hide accidental copies. Invoking an empty MoveFn is undefined (asserted
// in debug builds).

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace microedge {

template <typename Sig, std::size_t InlineSize = 48>
class MoveFn;

template <typename R, typename... Args, std::size_t InlineSize>
class MoveFn<R(Args...), InlineSize> {
 public:
  // Floor required by the actors; raising it grows every event slot.
  static constexpr std::size_t kInlineSize = InlineSize;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  MoveFn() noexcept = default;
  MoveFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, MoveFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  MoveFn(F&& f) {  // NOLINT(google-explicit-constructor): function-like wrapper
    if constexpr (fitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* p, Args... args) -> R {
        return (*static_cast<D*>(p))(std::forward<Args>(args)...);
      };
      manage_ = [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        if (dst != nullptr) ::new (dst) D(std::move(*s));
        s->~D();
      };
    } else {
      D* heap = new D(std::forward<F>(f));
      ::new (static_cast<void*>(buf_)) D*(heap);
      invoke_ = [](void* p, Args... args) -> R {
        return (**static_cast<D**>(p))(std::forward<Args>(args)...);
      };
      manage_ = [](void* dst, void* src) {
        D** s = static_cast<D**>(src);
        if (dst != nullptr) {
          ::new (dst) D*(*s);  // transfer ownership of the pointer
        } else {
          delete *s;
        }
      };
    }
  }

  MoveFn(MoveFn&& other) noexcept { moveFrom(other); }

  MoveFn& operator=(MoveFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  MoveFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  MoveFn(const MoveFn&) = delete;
  MoveFn& operator=(const MoveFn&) = delete;

  ~MoveFn() { reset(); }

  R operator()(Args... args) {
    assert(invoke_ != nullptr && "invoking empty MoveFn");
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  // Whether a callable of type F would be stored inline (no heap allocation).
  template <typename F>
  static constexpr bool fitsInline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  using Invoke = R (*)(void*, Args...);
  // dst != nullptr: move the payload from src into dst, then destroy src's.
  // dst == nullptr: destroy src's payload.
  using Manage = void (*)(void* dst, void* src);

  void moveFrom(MoveFn& other) noexcept {
    if (other.invoke_ != nullptr) {
      other.manage_(buf_, other.buf_);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  void reset() noexcept {
    if (invoke_ != nullptr) {
      manage_(nullptr, buf_);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

using EventFn = MoveFn<void()>;

}  // namespace microedge
