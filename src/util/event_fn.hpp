#pragma once

// EventFn: a move-only, small-buffer-optimized replacement for
// std::function<void()> on the simulator hot path.
//
// Every scheduled event stores exactly one of these inside its heap slot.
// Callables up to kInlineSize bytes (48 — enough for every closure the
// actors capture: a this-pointer plus a shared context pointer, a whole
// std::function<void()>, or a ~40-byte stats blob) live inline in the slot;
// firing an event is then a small memcpy-class move with zero heap traffic.
// Larger callables fall back to a single heap allocation, and moving the
// wrapper just moves the pointer.
//
// Unlike std::function, EventFn is move-only: events are consumed exactly
// once, so copyability would only force captured state to be copyable and
// hide accidental copies. Invoking an empty EventFn is undefined (asserted
// in debug builds).

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace microedge {

class EventFn {
 public:
  // Floor required by the actors; raising it grows every event slot.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  EventFn() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): function-like wrapper
    if constexpr (fitsInline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
      manage_ = [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        if (dst != nullptr) ::new (dst) D(std::move(*s));
        s->~D();
      };
    } else {
      D* heap = new D(std::forward<F>(f));
      ::new (static_cast<void*>(buf_)) D*(heap);
      invoke_ = [](void* p) { (**static_cast<D**>(p))(); };
      manage_ = [](void* dst, void* src) {
        D** s = static_cast<D**>(src);
        if (dst != nullptr) {
          ::new (dst) D*(*s);  // transfer ownership of the pointer
        } else {
          delete *s;
        }
      };
    }
  }

  EventFn(EventFn&& other) noexcept { moveFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() {
    assert(invoke_ != nullptr && "invoking empty EventFn");
    invoke_(buf_);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  // Whether a callable of type F would be stored inline (no heap allocation).
  template <typename F>
  static constexpr bool fitsInline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  using Invoke = void (*)(void*);
  // dst != nullptr: move the payload from src into dst, then destroy src's.
  // dst == nullptr: destroy src's payload.
  using Manage = void (*)(void* dst, void* src);

  void moveFrom(EventFn& other) noexcept {
    if (other.invoke_ != nullptr) {
      other.manage_(buf_, other.buf_);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  void reset() noexcept {
    if (invoke_ != nullptr) {
      manage_(nullptr, buf_);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace microedge
