#pragma once

// Interned dense identifiers for control-plane hot paths.
//
// Admission, reclamation and routing used to key every per-TPU and per-model
// probe on heap-allocated std::string ids (map<string, ...> in TpuState, the
// registry and the LB service). At 100k-TPU scale those string compares and
// node allocations dominate the scan. A process-wide symbol table interns
// each distinct id once and hands out a dense u32 handle; all hot state is
// then vectors indexed (or small dense lists keyed) by handle, and the
// public string-based APIs remain as thin wrappers that intern on entry.
//
// Handles are append-only for the process lifetime, so a ModelId/TpuId can
// be cached freely (in allocations, LB configs, benchmark fixtures) and
// never dangles. The tables are mutex-guarded: interning happens on the
// control plane (admission, registration), never per frame.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace microedge {

class Interner {
 public:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  // Returns the existing handle for `name` or assigns the next dense one.
  std::uint32_t intern(std::string_view name);
  // Returns kInvalid if `name` was never interned (no insertion).
  std::uint32_t lookup(std::string_view name) const;
  // Precondition: `id` was returned by intern(). The reference is stable for
  // the process lifetime.
  const std::string& name(std::uint32_t id) const;
  std::size_t size() const;

 private:
  // Heterogeneous lookup: probing with a string_view must not materialize a
  // temporary std::string (the string-API wrappers route through here).
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>>
      ids_;
  // Pointers into ids_ keys: stable across rehash (node-based buckets).
  std::vector<const std::string*> names_;
};

// Typed u32 handles so a TPU handle cannot be used where a model handle is
// expected. Default-constructed handles are invalid ("no id").
struct ModelId {
  std::uint32_t value = Interner::kInvalid;
  constexpr bool valid() const { return value != Interner::kInvalid; }
  friend constexpr bool operator==(ModelId a, ModelId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(ModelId a, ModelId b) {
    return a.value != b.value;
  }
};

struct TpuId {
  std::uint32_t value = Interner::kInvalid;
  constexpr bool valid() const { return value != Interner::kInvalid; }
  friend constexpr bool operator==(TpuId a, TpuId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(TpuId a, TpuId b) {
    return a.value != b.value;
  }
};

// Cluster node (RPi) handle: the data plane resolves transfer latencies by
// comparing/indexing these instead of probing string node names per frame.
struct NodeId {
  std::uint32_t value = Interner::kInvalid;
  constexpr bool valid() const { return value != Interner::kInvalid; }
  friend constexpr bool operator==(NodeId a, NodeId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(NodeId a, NodeId b) {
    return a.value != b.value;
  }
};

// Process-wide symbol tables, one per id domain.
Interner& modelInterner();
Interner& tpuInterner();
Interner& nodeInterner();

inline ModelId internModel(std::string_view name) {
  return ModelId{modelInterner().intern(name)};
}
inline ModelId lookupModel(std::string_view name) {
  return ModelId{modelInterner().lookup(name)};
}
inline const std::string& modelName(ModelId id) {
  return modelInterner().name(id.value);
}

inline TpuId internTpu(std::string_view name) {
  return TpuId{tpuInterner().intern(name)};
}
inline TpuId lookupTpu(std::string_view name) {
  return TpuId{tpuInterner().lookup(name)};
}
inline const std::string& tpuName(TpuId id) {
  return tpuInterner().name(id.value);
}

inline NodeId internNode(std::string_view name) {
  return NodeId{nodeInterner().intern(name)};
}
inline NodeId lookupNode(std::string_view name) {
  return NodeId{nodeInterner().lookup(name)};
}
inline const std::string& nodeName(NodeId id) {
  return nodeInterner().name(id.value);
}

}  // namespace microedge
