#pragma once

// Interned dense identifiers for control-plane hot paths.
//
// Admission, reclamation and routing used to key every per-TPU and per-model
// probe on heap-allocated std::string ids (map<string, ...> in TpuState, the
// registry and the LB service). At 100k-TPU scale those string compares and
// node allocations dominate the scan. A process-wide symbol table interns
// each distinct id once and hands out a dense u32 handle; all hot state is
// then vectors indexed (or small dense lists keyed) by handle, and the
// public string-based APIs remain as thin wrappers that intern on entry.
//
// Handles are append-only for the lifetime of their *domain*, so a
// ModelId/TpuId can be cached freely (in allocations, LB configs, benchmark
// fixtures) and never dangles. The tables are mutex-guarded: interning
// happens on the control plane (admission, registration), never per frame.
//
// Domains: by default every thread resolves modelInterner()/tpuInterner()/
// nodeInterner() to one process-wide InternDomain — the seed behaviour.
// That shared table is hidden global state for the sweep runner: two
// concurrent Simulator runs interleave their intern calls, so the dense
// value a name receives depends on what other threads did first, and any
// tie-break or iteration keyed on handle values diverges from a solo run
// (the tables also grow without bound across a long sweep, dragging every
// handle-indexed vector with them). An InternScope pushes a fresh domain
// for the current thread; a sweep worker wraps each grid point in one so
// handle assignment is a pure function of that run's own intern sequence —
// bit-identical to the same seed running alone in a fresh process. Handles
// must not be cached across a scope boundary.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace microedge {

class Interner {
 public:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  // Returns the existing handle for `name` or assigns the next dense one.
  std::uint32_t intern(std::string_view name);
  // Returns kInvalid if `name` was never interned (no insertion).
  std::uint32_t lookup(std::string_view name) const;
  // Precondition: `id` was returned by intern(). The reference is stable for
  // the process lifetime.
  const std::string& name(std::uint32_t id) const;
  std::size_t size() const;

 private:
  // Heterogeneous lookup: probing with a string_view must not materialize a
  // temporary std::string (the string-API wrappers route through here).
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>>
      ids_;
  // Pointers into ids_ keys: stable across rehash (node-based buckets).
  std::vector<const std::string*> names_;
};

// Typed u32 handles so a TPU handle cannot be used where a model handle is
// expected. Default-constructed handles are invalid ("no id").
struct ModelId {
  std::uint32_t value = Interner::kInvalid;
  constexpr bool valid() const { return value != Interner::kInvalid; }
  friend constexpr bool operator==(ModelId a, ModelId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(ModelId a, ModelId b) {
    return a.value != b.value;
  }
};

struct TpuId {
  std::uint32_t value = Interner::kInvalid;
  constexpr bool valid() const { return value != Interner::kInvalid; }
  friend constexpr bool operator==(TpuId a, TpuId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(TpuId a, TpuId b) {
    return a.value != b.value;
  }
};

// Cluster node (RPi) handle: the data plane resolves transfer latencies by
// comparing/indexing these instead of probing string node names per frame.
struct NodeId {
  std::uint32_t value = Interner::kInvalid;
  constexpr bool valid() const { return value != Interner::kInvalid; }
  friend constexpr bool operator==(NodeId a, NodeId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(NodeId a, NodeId b) {
    return a.value != b.value;
  }
};

// One symbol table per id kind. A domain is the unit of handle validity.
struct InternDomain {
  Interner model;
  Interner tpu;
  Interner node;
};

// The domain the calling thread currently resolves ids against: the
// innermost live InternScope on this thread, else the process-wide default.
InternDomain& currentInternDomain();

// RAII: swaps a fresh, empty InternDomain in for the current thread and
// restores the previous one on destruction. Scopes nest. Everything that
// interns or resolves ids (Testbed, Simulator runs, reports) must live and
// die strictly inside the scope.
class InternScope {
 public:
  InternScope();
  ~InternScope();
  InternScope(const InternScope&) = delete;
  InternScope& operator=(const InternScope&) = delete;

  InternDomain& domain() { return fresh_; }

 private:
  InternDomain fresh_;
  InternDomain* prev_;
};

// RAII: makes the calling thread resolve ids against a domain owned
// elsewhere, restoring the previous binding on destruction. The sharded
// simulator's worker threads adopt the harness thread's domain so the dense
// handles minted at setup stay valid on every shard (the Interner itself is
// mutex-guarded, and handle *assignment* only happens on the single-threaded
// setup path, so adoption adds no ordering hazard).
class InternDomainAdopt {
 public:
  explicit InternDomainAdopt(InternDomain& domain);
  ~InternDomainAdopt();
  InternDomainAdopt(const InternDomainAdopt&) = delete;
  InternDomainAdopt& operator=(const InternDomainAdopt&) = delete;

 private:
  InternDomain* prev_;
};

// Symbol tables of the current thread's domain, one per id kind.
Interner& modelInterner();
Interner& tpuInterner();
Interner& nodeInterner();

inline ModelId internModel(std::string_view name) {
  return ModelId{modelInterner().intern(name)};
}
inline ModelId lookupModel(std::string_view name) {
  return ModelId{modelInterner().lookup(name)};
}
inline const std::string& modelName(ModelId id) {
  return modelInterner().name(id.value);
}

inline TpuId internTpu(std::string_view name) {
  return TpuId{tpuInterner().intern(name)};
}
inline TpuId lookupTpu(std::string_view name) {
  return TpuId{tpuInterner().lookup(name)};
}
inline const std::string& tpuName(TpuId id) {
  return tpuInterner().name(id.value);
}

inline NodeId internNode(std::string_view name) {
  return NodeId{nodeInterner().intern(name)};
}
inline NodeId lookupNode(std::string_view name) {
  return NodeId{nodeInterner().lookup(name)};
}
inline const std::string& nodeName(NodeId id) {
  return nodeInterner().name(id.value);
}

}  // namespace microedge
