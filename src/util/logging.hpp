#pragma once

// Minimal leveled logger. Experiments run with kWarning by default so the
// benches print clean report tables; tests can raise verbosity per-case.

#include <mutex>
#include <sstream>
#include <string>

namespace microedge {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void setLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarning;
  std::mutex mu_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace microedge

#define ME_LOG(level) \
  ::microedge::detail::LogLine(::microedge::LogLevel::level, __FILE__, __LINE__)
