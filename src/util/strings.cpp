#include "util/strings.hpp"

#include <iomanip>

namespace microedge {

std::string fmtDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string padLeft(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string padRight(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

std::vector<std::string> splitLines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n";
  auto b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  auto e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace microedge
