#include "util/time.hpp"

#include "util/strings.hpp"

namespace microedge {

std::string toString(SimDuration d) {
  double ns = static_cast<double>(d.count());
  double abs = ns < 0 ? -ns : ns;
  if (abs < 1e3) return strCat(d.count(), "ns");
  if (abs < 1e6) return strCat(fmtDouble(ns / 1e3, 2), "us");
  if (abs < 1e9) return strCat(fmtDouble(ns / 1e6, 2), "ms");
  return strCat(fmtDouble(ns / 1e9, 3), "s");
}

std::string toString(SimTime t) {
  return strCat("t=", fmtDouble(toSecondsSinceEpoch(t), 6), "s");
}

}  // namespace microedge
