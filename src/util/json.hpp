#pragma once

// Minimal deterministic JSON for the sweep subsystem (grids in, results out).
//
// Determinism is the point: the sweep runner's merged BENCH_sweep.json must
// be byte-identical regardless of thread count, shard count or resume
// history, so serialization has exactly one spelling per value — objects
// keep insertion order (no hash-map iteration order leaking in), integers
// and doubles are distinct storage classes (a 64-bit seed survives a
// round-trip bit-exactly; doubles print as the shortest std::to_chars
// representation, which is platform-stable for IEEE-754 binary64), and the
// writer emits no locale-dependent formatting.
//
// The parser is a small recursive-descent reader for trusted inputs (grid
// files, our own shard/manifest output): full JSON minus surrogate-pair
// exotica is supported; errors carry byte offsets.

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace microedge {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(int v) : type_(Type::kInt), int_(v) {}
  JsonValue(std::int64_t v) : type_(Type::kInt), int_(v) {}
  JsonValue(std::uint64_t v)
      : type_(Type::kInt), int_(static_cast<std::int64_t>(v)) {}
  // size_t on LP64 is uint64_t; keep a distinct overload only where it is.
  template <typename T,
            typename = std::enable_if_t<
                std::is_same_v<T, std::size_t> &&
                !std::is_same_v<std::size_t, std::uint64_t>>>
  JsonValue(T v) : type_(Type::kInt), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(double v) : type_(Type::kDouble), double_(v) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(std::string_view s) : type_(Type::kString), string_(s) {}

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isBool() const { return type_ == Type::kBool; }
  bool isInt() const { return type_ == Type::kInt; }
  bool isDouble() const { return type_ == Type::kDouble; }
  bool isNumber() const { return isInt() || isDouble(); }
  bool isString() const { return type_ == Type::kString; }
  bool isArray() const { return type_ == Type::kArray; }
  bool isObject() const { return type_ == Type::kObject; }

  bool asBool() const { return bool_; }
  std::int64_t asInt() const {
    return type_ == Type::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  std::uint64_t asUint() const { return static_cast<std::uint64_t>(asInt()); }
  double asDouble() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& asString() const { return string_; }

  Array& items() { return array_; }
  const Array& items() const { return array_; }
  Object& members() { return object_; }
  const Object& members() const { return object_; }
  std::size_t size() const {
    return type_ == Type::kObject ? object_.size() : array_.size();
  }

  // Array append. Converts a null value into an array on first push.
  JsonValue& push(JsonValue v);

  // Object set: replaces in place if `key` exists (keeping its position),
  // appends otherwise. Converts a null value into an object on first set.
  JsonValue& set(std::string_view key, JsonValue v);

  // nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Lookup helpers with defaults, for grid/config reading.
  std::int64_t getInt(std::string_view key, std::int64_t fallback) const;
  double getDouble(std::string_view key, double fallback) const;
  std::string getString(std::string_view key, std::string_view fallback) const;
  bool getBool(std::string_view key, bool fallback) const;

  // Exact structural equality (int 1 != double 1.0, as in serialization).
  friend bool operator==(const JsonValue& a, const JsonValue& b);
  friend bool operator!=(const JsonValue& a, const JsonValue& b) {
    return !(a == b);
  }

  // Compact (indent < 0) or pretty (2-space style indent) serialization.
  // Deterministic: same value -> same bytes, always.
  std::string dump(int indent = -1) const;

  static StatusOr<JsonValue> parse(std::string_view text);

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

// Shortest round-trip decimal form of `v` (the writer's double format),
// exposed so other emitters can match BENCH_sweep.json's number spelling.
std::string jsonFormatDouble(double v);

}  // namespace microedge
