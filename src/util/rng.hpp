#pragma once

// Deterministic pseudo-randomness for workload generation.
//
// Every stochastic element of the reproduction (trace arrivals, scene
// activity, latency jitter) draws from a seeded Pcg32 so that experiments
// are bit-for-bit repeatable across runs and platforms. std::mt19937 +
// std::*_distribution are avoided because distribution implementations
// differ across standard libraries.

#include <cmath>
#include <cstdint>
#include <vector>

namespace microedge {

// PCG-XSH-RR 64/32 (O'Neill 2014). Small, fast, statistically solid.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next();
    state_ += seed;
    next();
  }

  std::uint32_t next() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  // Uniform in [0, 1).
  double nextDouble() {
    return next() * (1.0 / 4294967296.0);
  }

  // Uniform integer in [0, bound) without modulo bias.
  std::uint32_t nextBounded(std::uint32_t bound) {
    if (bound == 0) return 0;
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * nextDouble(); }

  bool bernoulli(double p) { return nextDouble() < p; }

  // Exponential with the given mean (inter-arrival sampling).
  double exponential(double mean) {
    double u = nextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 1e-12;
    return -mean * std::log(u);
  }

  // Knuth's method for small lambda; normal approximation above.
  int poisson(double lambda) {
    if (lambda <= 0.0) return 0;
    if (lambda < 30.0) {
      double l = std::exp(-lambda);
      int k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= nextDouble();
      } while (p > l);
      return k - 1;
    }
    double g = gaussian(lambda, std::sqrt(lambda));
    return g < 0.0 ? 0 : static_cast<int>(g + 0.5);
  }

  // Box-Muller.
  double gaussian(double mean, double stddev) {
    if (has_spare_) {
      has_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    s = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * s;
    has_spare_ = true;
    return mean + stddev * u * s;
  }

  // Log-normal parameterised by the mean/stddev of the *resulting* value.
  double lognormal(double mean, double stddev) {
    double variance = stddev * stddev;
    double mu = std::log(mean * mean / std::sqrt(variance + mean * mean));
    double sigma = std::sqrt(std::log(1.0 + variance / (mean * mean)));
    return std::exp(gaussian(mu, sigma));
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = nextBounded(static_cast<std::uint32_t>(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child generator (per camera / per function).
  Pcg32 split() {
    std::uint64_t seed = (static_cast<std::uint64_t>(next()) << 32) | next();
    std::uint64_t stream = (static_cast<std::uint64_t>(next()) << 32) | next();
    return Pcg32{seed, stream};
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

// SplitMix64 finalizer (Steele et al.). The sweep runner chains it over a
// point's grid coordinates to derive per-point seeds that depend only on
// *where* the point sits in the grid — never on thread or completion order.
inline constexpr std::uint64_t splitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace microedge
