#pragma once

// RingQueue: a power-of-two growable FIFO for hot-path queues.
//
// TpuDevice's run-to-completion FIFO used to be a std::deque<Pending> whose
// entries carried std::string model names and std::function callbacks —
// node allocations and indirections on every enqueued frame. This ring keeps
// elements in one contiguous power-of-two array: push/pop are an index mask
// and a move, and once the queue has seen its high-water depth the steady
// state never touches the heap again (capacity is retained across
// drain/refill cycles).
//
// T must be default-constructible and movable (move-only is fine — the
// device queues MoveFn callbacks). pop_front() move-assigns a fresh T over
// the vacated slot so popped payloads release their resources immediately,
// not when the slot is next overwritten.

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace microedge {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  void push_back(T value) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  // Ensures capacity for `extra` more elements in one growth step (a burst
  // of pushes then takes the non-growing path every time, instead of up to
  // log2(extra) incremental doublings mid-burst).
  void reserve(std::size_t extra) {
    while (size_ + extra > slots_.size()) grow();
  }

  T& front() {
    assert(size_ > 0 && "front() on empty RingQueue");
    return slots_[head_];
  }

  void pop_front() {
    assert(size_ > 0 && "pop_front() on empty RingQueue");
    slots_[head_] = T{};  // release the payload's resources now
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

 private:
  void grow() {
    std::size_t newCap = slots_.empty() ? kInitialCapacity : slots_.size() * 2;
    std::vector<T> next(newCap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(next);
    head_ = 0;
    mask_ = slots_.size() - 1;
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace microedge
