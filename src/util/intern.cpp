#include "util/intern.hpp"

#include <cassert>

namespace microedge {

std::uint32_t Interner::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(names_.size());
  assert(id != kInvalid && "interner exhausted u32 id space");
  auto [inserted, ok] = ids_.emplace(std::string(name), id);
  (void)ok;
  names_.push_back(&inserted->first);
  return id;
}

std::uint32_t Interner::lookup(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalid : it->second;
}

const std::string& Interner::name(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < names_.size() && "Interner::name on unknown id");
  return *names_[id];
}

std::size_t Interner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

namespace {

InternDomain& processInternDomain() {
  static InternDomain domain;
  return domain;
}

// Innermost live InternScope of this thread (nullptr = process default).
thread_local InternDomain* tlsInternDomain = nullptr;

}  // namespace

InternDomain& currentInternDomain() {
  InternDomain* d = tlsInternDomain;
  return d != nullptr ? *d : processInternDomain();
}

InternScope::InternScope() : prev_(tlsInternDomain) {
  tlsInternDomain = &fresh_;
}

InternScope::~InternScope() { tlsInternDomain = prev_; }

InternDomainAdopt::InternDomainAdopt(InternDomain& domain)
    : prev_(tlsInternDomain) {
  tlsInternDomain = &domain;
}

InternDomainAdopt::~InternDomainAdopt() { tlsInternDomain = prev_; }

Interner& modelInterner() { return currentInternDomain().model; }

Interner& tpuInterner() { return currentInternDomain().tpu; }

Interner& nodeInterner() { return currentInternDomain().node; }

}  // namespace microedge
