#pragma once

// Simulated-time types for MicroEdge.
//
// All latencies in the system (inference service time, network transmission,
// frame periods, pod lifetimes) are expressed in SimDuration, and instants on
// the simulation timeline in SimTime. Using a dedicated chrono clock keeps
// simulated time from being accidentally mixed with wall-clock time.

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>

namespace microedge {

// Clock for the discrete-event simulation. Never ticks on its own; the
// Simulator advances it. Satisfies the chrono Clock requirements minus now().
struct SimClock {
  using rep = std::int64_t;
  using period = std::nano;
  using duration = std::chrono::nanoseconds;
  using time_point = std::chrono::time_point<SimClock>;
  static constexpr bool is_steady = true;
};

using SimDuration = SimClock::duration;
using SimTime = SimClock::time_point;

// Simulation origin (t = 0).
inline constexpr SimTime kSimEpoch{};

inline constexpr SimDuration nanoseconds(std::int64_t n) {
  return SimDuration{n};
}
inline constexpr SimDuration microseconds(std::int64_t us) {
  return std::chrono::duration_cast<SimDuration>(std::chrono::microseconds{us});
}
inline constexpr SimDuration milliseconds(std::int64_t ms) {
  return std::chrono::duration_cast<SimDuration>(std::chrono::milliseconds{ms});
}
inline constexpr SimDuration seconds(std::int64_t s) {
  return std::chrono::duration_cast<SimDuration>(std::chrono::seconds{s});
}
inline constexpr SimDuration minutes(std::int64_t m) {
  return std::chrono::duration_cast<SimDuration>(std::chrono::minutes{m});
}

// Fractional constructors, used by calibration code ("23.3 ms per frame").
inline SimDuration millisecondsF(double ms) {
  return SimDuration{static_cast<std::int64_t>(ms * 1e6)};
}
inline SimDuration secondsF(double s) {
  return SimDuration{static_cast<std::int64_t>(s * 1e9)};
}

inline constexpr double toMilliseconds(SimDuration d) {
  return static_cast<double>(d.count()) / 1e6;
}
inline constexpr double toSeconds(SimDuration d) {
  return static_cast<double>(d.count()) / 1e9;
}
inline constexpr double toSecondsSinceEpoch(SimTime t) {
  return toSeconds(t.time_since_epoch());
}

// Period of a fixed frame rate, e.g. framePeriod(15.0) == 66.67ms.
inline SimDuration framePeriod(double fps) {
  return SimDuration{static_cast<std::int64_t>(1e9 / fps)};
}

std::string toString(SimDuration d);
std::string toString(SimTime t);

inline std::ostream& operator<<(std::ostream& os, SimDuration d) {
  return os << toString(d);
}
inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << toString(t);
}

}  // namespace microedge
