#pragma once

// Latency/statistics accumulators used by the metrics layer and the bench
// report printers. Samples are stored exactly (experiment scales are small
// enough), so quantiles are exact rather than sketch-approximated.

#include <cstddef>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace microedge {

// Streaming summary over double samples: count/mean/stddev/min/max plus exact
// quantiles computed on demand.
class Summary {
 public:
  void add(double v);
  void merge(const Summary& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  // q in [0, 1]; linear interpolation between closest ranks.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void sortIfNeeded() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sumSq_ = 0.0;
};

// Summary over durations, reported in milliseconds.
class DurationSummary {
 public:
  void add(SimDuration d) { summary_.add(toMilliseconds(d)); }
  std::size_t count() const { return summary_.count(); }
  bool empty() const { return summary_.empty(); }
  double meanMs() const { return summary_.mean(); }
  double stddevMs() const { return summary_.stddev(); }
  double minMs() const { return summary_.min(); }
  double maxMs() const { return summary_.max(); }
  double p50Ms() const { return summary_.p50(); }
  double p90Ms() const { return summary_.p90(); }
  double p99Ms() const { return summary_.p99(); }
  const Summary& raw() const { return summary_; }

 private:
  Summary summary_;
};

// Fixed-width bucket histogram (for distribution-shaped report output).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double v);
  std::size_t count() const { return total_; }
  std::size_t bucketCount() const { return counts_.size(); }
  std::size_t bucketValue(std::size_t i) const { return counts_[i]; }
  double bucketLow(std::size_t i) const { return lo_ + i * width_; }
  double bucketHigh(std::size_t i) const { return lo_ + (i + 1) * width_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  // ASCII rendering, one line per non-empty bucket.
  std::string render(std::size_t maxBarWidth = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace microedge
