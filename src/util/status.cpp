#include "util/status.hpp"

namespace microedge {

std::string_view statusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace microedge
