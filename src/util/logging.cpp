#include "util/logging.hpp"

#include <cstring>
#include <iostream>

namespace microedge {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mu_);
  std::cerr << "[" << kNames[static_cast<int>(level)] << "] " << message
            << std::endl;
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : level_(level), enabled_(Logger::instance().enabled(level)) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    os_ << (base ? base + 1 : file) << ":" << line << " ";
  }
}

LogLine::~LogLine() {
  if (enabled_) Logger::instance().write(level_, os_.str());
}

}  // namespace detail
}  // namespace microedge
