#pragma once

// Lightweight Status / StatusOr error handling (absl-flavoured, std-only).
//
// MicroEdge's control plane rejects deployments for well-defined reasons
// (insufficient TPU units, model-size rule violation, no candidate nodes);
// those reasons travel through Status codes rather than exceptions so the
// admission path stays allocation-light and explicit.

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace microedge {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
};

std::string_view statusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  bool isOk() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string toString() const {
    if (isOk()) return "OK";
    return std::string(statusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status invalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status notFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status alreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status resourceExhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status failedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status internalError(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.toString();
}

// Value-or-error. Accessing value() on an error status is a programming
// error (asserted in debug builds).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(implicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    assert(!status_.isOk() && "StatusOr constructed from OK status");
  }

  bool isOk() const { return status_.isOk(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(isOk());
    return *value_;
  }
  T& value() & {
    assert(isOk());
    return *value_;
  }
  T&& value() && {
    assert(isOk());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T valueOr(T fallback) const {
    return isOk() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace microedge

// Propagate errors up the call stack without exceptions.
#define ME_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::microedge::Status me_status_ = (expr);      \
    if (!me_status_.isOk()) return me_status_;    \
  } while (false)
