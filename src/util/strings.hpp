#pragma once

// Small string helpers (no std::format on this toolchain).

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace microedge {

template <typename... Args>
std::string strCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

// Fixed-precision double formatting, e.g. fmtDouble(1.23456, 2) == "1.23".
std::string fmtDouble(double v, int precision);

// Left/right padding for plain-text report tables.
std::string padLeft(std::string_view s, std::size_t width);
std::string padRight(std::string_view s, std::size_t width);

std::vector<std::string> splitLines(std::string_view text);
std::string_view trim(std::string_view s);
bool startsWith(std::string_view s, std::string_view prefix);

}  // namespace microedge
