#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.hpp"

namespace microedge {

void Summary::add(double v) {
  samples_.push_back(v);
  sorted_ = false;
  sum_ += v;
  sumSq_ += v * v;
}

void Summary::merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
  sum_ += other.sum_;
  sumSq_ += other.sumSq_;
}

double Summary::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  double n = static_cast<double>(samples_.size());
  double var = (sumSq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

void Summary::sortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::min() const {
  if (samples_.empty()) return 0.0;
  sortIfNeeded();
  return samples_.front();
}

double Summary::max() const {
  if (samples_.empty()) return 0.0;
  sortIfNeeded();
  return samples_.back();
}

double Summary::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  sortIfNeeded();
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(samples_.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double v) {
  ++total_;
  if (v < lo_) {
    ++underflow_;
  } else if (v >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((v - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

std::string Histogram::render(std::size_t maxBarWidth) const {
  std::size_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    std::size_t bar =
        peak == 0 ? 0 : counts_[i] * maxBarWidth / peak;
    out += strCat(padLeft(fmtDouble(bucketLow(i), 1), 8), " - ",
                  padLeft(fmtDouble(bucketHigh(i), 1), 8), " | ",
                  std::string(bar, '#'), " ", counts_[i], "\n");
  }
  return out;
}

}  // namespace microedge
