#include "apps/diff_detector.hpp"

namespace microedge {

DiffDetector::DiffDetector(Config config, Pcg32 rng)
    : config_(config), rng_(rng) {
  // Start in a quiet phase of random length.
  active_ = false;
  phaseEnd_ = kSimEpoch + secondsF(rng_.exponential(
                              toSeconds(config_.meanQuietGap)));
}

void DiffDetector::advanceTo(SimTime now) {
  while (now >= phaseEnd_) {
    active_ = !active_;
    if (active_) ++activePhases_;
    double mean = toSeconds(active_ ? config_.meanActivityDwell
                                    : config_.meanQuietGap);
    phaseEnd_ += secondsF(rng_.exponential(mean));
  }
}

bool DiffDetector::activeAt(SimTime now) {
  advanceTo(now);
  return active_;
}

bool DiffDetector::shouldForward(SimTime now) {
  advanceTo(now);
  bool forward = active_ || rng_.bernoulli(config_.quietPassRate);
  if (forward) {
    ++forwarded_;
  } else {
    ++suppressed_;
  }
  return forward;
}

}  // namespace microedge
