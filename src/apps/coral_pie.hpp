#pragma once

// Coral-Pie (Xu et al., Middleware'20): space-time vehicle tracking on a
// geo-distributed camera network — the paper's first exemplar application.
//
// Bare metal dedicates two RPis + one TPU per camera: RPi #1 runs the
// detection pipeline (this is the TPU workload the scalability study
// measures), RPi #2 re-identifies vehicles reported by upstream cameras and
// notifies downstream cameras to extend trajectories. The two RPis work
// independently in pipelined fashion, so the stages are modelled as the
// detection CameraPipeline plus a ReIdStage fed over the cluster network.

#include <memory>
#include <set>
#include <string>

#include "apps/pipeline.hpp"
#include "dataplane/transport.hpp"

namespace microedge {

// Re-identification stage on the second RPi. Matches locally detected
// vehicles against the set announced by upstream cameras and constructs
// space-time track segments.
class ReIdStage {
 public:
  struct Config {
    std::string node;  // RPi hosting this stage
    // Embedding comparison + track bookkeeping per detection.
    SimDuration matchLatency = millisecondsF(12.0);
  };

  ReIdStage(Simulator& sim, Config config) : sim_(sim), config_(config) {}

  const std::string& node() const { return config_.node; }

  // A vehicle id announced by an upstream camera (it should appear in this
  // camera's FOV shortly).
  void onUpstreamNotification(std::uint64_t vehicleId);

  // A local detection of `vehicleId`; after the match latency it is counted
  // as re-identified (upstream announced it) or as a new track head.
  void onLocalDetection(std::uint64_t vehicleId);

  std::uint64_t reIdentifiedCount() const { return reIdentified_; }
  std::uint64_t newTrackCount() const { return newTracks_; }
  std::uint64_t pendingUpstreamCount() const { return expected_.size(); }

 private:
  Simulator& sim_;
  Config config_;
  std::set<std::uint64_t> expected_;
  std::set<std::uint64_t> matched_;
  std::uint64_t reIdentified_ = 0;
  std::uint64_t newTracks_ = 0;
};

class CoralPieApp {
 public:
  struct Config {
    std::string name;
    double fps = 15.0;
    std::uint64_t maxFrames = 0;
    bool useDiffDetector = true;
    DiffDetector::Config diffConfig{};
    ReIdStage::Config reid{};
    SloMonitor::Config slo{};
    // Global id space offset so every camera's vehicle phases are distinct
    // unless deliberately shared (the time-shifted dataset trick).
    std::uint64_t vehicleIdBase = 0;
  };

  CoralPieApp(Simulator& sim, std::unique_ptr<TpuClient> client,
              SimTransport& transport, Config config, Pcg32 rng);

  // Downstream camera to notify when a vehicle leaves this FOV.
  void linkDownstream(CoralPieApp* downstream) { downstream_ = downstream; }

  void start() { detection_.start(); }
  void stop() { detection_.stop(); }

  const std::string& name() const { return config_.name; }
  CameraPipeline& detection() { return detection_; }
  const CameraPipeline& detection() const { return detection_; }
  ReIdStage& reid() { return reid_; }
  const ReIdStage& reid() const { return reid_; }
  std::uint64_t vehiclesReported() const { return vehiclesReported_; }

 private:
  void onDetectionComplete(const FrameBreakdown& frame);

  Simulator& sim_;
  SimTransport& transport_;
  Config config_;
  CameraPipeline detection_;
  ReIdStage reid_;
  CoralPieApp* downstream_ = nullptr;
  std::uint64_t lastReportedVehicle_ = 0;
  std::uint64_t vehiclesReported_ = 0;
};

}  // namespace microedge
