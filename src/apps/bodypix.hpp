#pragma once

// Google Coral BodyPix: real-time person segmentation — the paper's second
// exemplar application, chosen because its model needs *more* than one TPU
// unit at 15 FPS (1.2), exercising workload partitioning. The bare-metal
// baseline attaches two TPUs per RPi and alternates frames between them.
//
// Application logic past the model is light: decode the returned mask and
// derive occupancy (person pixels / frame), which downstream consumers use
// for crowd analytics.

#include <memory>
#include <string>

#include "apps/pipeline.hpp"
#include "util/histogram.hpp"

namespace microedge {

class BodyPixApp {
 public:
  struct Config {
    std::string name;
    double fps = 15.0;
    std::uint64_t maxFrames = 0;
    SloMonitor::Config slo{};
    // Scene occupancy model: mean fraction of mask pixels that are person.
    double meanOccupancy = 0.18;
    double occupancyJitter = 0.08;
  };

  BodyPixApp(Simulator& sim, std::unique_ptr<TpuClient> client, Config config,
             Pcg32 rng);

  void start() { pipeline_.start(); }
  void stop() { pipeline_.stop(); }

  const std::string& name() const { return config_.name; }
  CameraPipeline& pipeline() { return pipeline_; }
  const CameraPipeline& pipeline() const { return pipeline_; }

  // Mask-derived occupancy statistics.
  const Summary& occupancy() const { return occupancy_; }
  std::uint64_t framesWithPeople() const { return framesWithPeople_; }

 private:
  Config config_;
  Pcg32 rng_;
  CameraPipeline pipeline_;
  Summary occupancy_;
  std::uint64_t framesWithPeople_ = 0;
};

}  // namespace microedge
