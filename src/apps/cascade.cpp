#include "apps/cascade.hpp"

#include "util/logging.hpp"

namespace microedge {

CascadeApp::CascadeApp(Simulator& sim, std::unique_ptr<TpuClient> gateClient,
                       std::unique_ptr<TpuClient> expertClient, Config config,
                       Pcg32 rng)
    : sim_(sim), gate_(std::move(gateClient)), expert_(std::move(expertClient)),
      config_(std::move(config)), scene_(config_.scene, rng.split()),
      rng_(rng.split()), slo_(config_.slo),
      camera_(sim, CameraStream::Config{config_.fps, config_.maxFrames},
              [this](std::uint64_t id) { onFrame(id); }) {}

void CascadeApp::stop() {
  camera_.stop();
  gate_->stop();
  expert_->stop();
}

double CascadeApp::escalationRate() const {
  return gateFrames_ == 0
             ? 0.0
             : static_cast<double>(expertFrames_) /
                   static_cast<double>(gateFrames_);
}

void CascadeApp::onFrame(std::uint64_t frameId) {
  (void)frameId;
  // Stage 1: every frame runs the cheap gate model.
  slo_.recordSubmitted(sim_.now());
  ++gateFrames_;
  bool interesting = scene_.activeAt(sim_.now()) ||
                     rng_.bernoulli(config_.quietEscalationRate);
  Status s = gate_->invoke([this, interesting](const FrameBreakdown& gateFrame) {
    if (gateFrame.outcome != FrameOutcome::kCompleted) {
      gateOnly_.add(gateFrame);  // tallies the terminal outcome
      slo_.recordDropped();
      return;
    }
    if (!interesting) {
      gateOnly_.add(gateFrame);
      slo_.recordCompleted(gateFrame.completed, gateFrame.endToEnd());
      return;
    }
    // Stage 2: escalate to the expert model.
    ++expertFrames_;
    SimTime gateSubmitted = gateFrame.submitted;
    Status st = expert_->invoke(
        [this, gateFrame, gateSubmitted](const FrameBreakdown& expertFrame) {
          if (expertFrame.outcome != FrameOutcome::kCompleted) {
            fullCascade_.add(expertFrame);  // tallies the terminal outcome
            // The gate stage did finish: fall back to gate-only accounting
            // so the stream's SLO reflects the partial result.
            slo_.recordCompleted(gateFrame.completed, gateFrame.endToEnd());
            return;
          }
          fullCascade_.add(expertFrame);
          SimDuration total = expertFrame.completed - gateSubmitted;
          cascadeLatency_.add(total);
          slo_.recordCompleted(expertFrame.completed, total);
        });
    if (!st.isOk()) {
      ME_LOG(kWarning) << "cascade " << config_.name
                       << ": expert invoke failed: " << st.toString();
      slo_.recordCompleted(gateFrame.completed, gateFrame.endToEnd());
    }
  });
  if (!s.isOk()) {
    ME_LOG(kWarning) << "cascade " << config_.name
                     << ": gate invoke failed: " << s.toString();
  }
}

}  // namespace microedge
