#pragma once

// Multi-model cascade pipeline (the paper's §8 future-work item: "data
// plane optimization for pipelines that involve multiple models").
//
// The NoScope-style cascade generalizes the difference detector: every
// frame runs a cheap *gate* model (e.g. MobileNet V1, 4.5 ms), and only
// frames the gate flags as interesting continue to the expensive *expert*
// model (e.g. SSD MobileNet V2 or UNet). From MicroEdge's point of view the
// two stages are two tenants with very different duty cycles:
//
//   gate:   units = gateLatency / framePeriod            (every frame)
//   expert: units = expertLatency * hitRate / framePeriod (filtered frames)
//
// which is exactly the fractional-sharing shape the extended scheduler
// exploits — the expert's small residual duty cycle packs into TPUs other
// tenants already occupy. Each stage has its own TPU client (in MicroEdge
// terms, the stages are separate pods with separate model/tpu-units knobs);
// this class chains them and accounts for end-to-end latency across both
// hops.

#include <memory>
#include <string>

#include "apps/camera.hpp"
#include "apps/diff_detector.hpp"
#include "dataplane/tpu_client.hpp"
#include "metrics/breakdown.hpp"
#include "metrics/slo.hpp"
#include "util/rng.hpp"

namespace microedge {

class CascadeApp {
 public:
  struct Config {
    std::string name;
    double fps = 15.0;
    std::uint64_t maxFrames = 0;
    // Scene-content process deciding which gated frames are "interesting";
    // its activity statistics define the expert's hit rate.
    DiffDetector::Config scene{};
    // Frames the gate escalates even when the scene is quiet (model
    // uncertainty near the threshold).
    double quietEscalationRate = 0.08;
    SloMonitor::Config slo{};
  };

  CascadeApp(Simulator& sim, std::unique_ptr<TpuClient> gateClient,
             std::unique_ptr<TpuClient> expertClient, Config config,
             Pcg32 rng);

  void start() { camera_.start(); }
  void stop();

  const std::string& name() const { return config_.name; }
  TpuClient& gateClient() { return *gate_; }
  TpuClient& expertClient() { return *expert_; }

  // Measured hit rate: expert invocations / gate invocations.
  double escalationRate() const;
  std::uint64_t gateFrames() const { return gateFrames_; }
  std::uint64_t expertFrames() const { return expertFrames_; }

  // Latency of gate-only frames vs full-cascade frames.
  const BreakdownAggregator& gateOnly() const { return gateOnly_; }
  const BreakdownAggregator& fullCascade() const { return fullCascade_; }
  // End-to-end across both stages for escalated frames.
  const DurationSummary& cascadeLatency() const { return cascadeLatency_; }
  SloMonitor& slo() { return slo_; }
  const SloMonitor& slo() const { return slo_; }

  // Expected duty cycles for admission, given profiled latencies.
  static double gateUnits(const ModelInfo& gate, double fps) {
    return gate.tpuUnitsAt(fps);
  }
  static double expertUnits(const ModelInfo& expert, double fps,
                            double expectedHitRate) {
    return expert.tpuUnitsAt(fps) * expectedHitRate;
  }

 private:
  void onFrame(std::uint64_t frameId);

  Simulator& sim_;
  std::unique_ptr<TpuClient> gate_;
  std::unique_ptr<TpuClient> expert_;
  Config config_;
  DiffDetector scene_;
  Pcg32 rng_;
  SloMonitor slo_;
  BreakdownAggregator gateOnly_;
  BreakdownAggregator fullCascade_;
  DurationSummary cascadeLatency_;
  std::uint64_t gateFrames_ = 0;
  std::uint64_t expertFrames_ = 0;
  CameraStream camera_;
};

}  // namespace microedge
