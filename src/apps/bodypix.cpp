#include "apps/bodypix.hpp"

#include <algorithm>

namespace microedge {

namespace {
CameraPipeline::Config pipelineConfig(const BodyPixApp::Config& config) {
  CameraPipeline::Config out;
  out.name = config.name + "/segmentation";
  out.fps = config.fps;
  out.maxFrames = config.maxFrames;
  out.slo = config.slo;
  return out;
}
}  // namespace

BodyPixApp::BodyPixApp(Simulator& sim, std::unique_ptr<TpuClient> client,
                       Config config, Pcg32 rng)
    : config_(std::move(config)), rng_(rng.split()),
      pipeline_(sim, std::move(client), pipelineConfig(config_), rng.split()) {
  pipeline_.setFrameHook([this](const FrameBreakdown& frame) {
    (void)frame;
    double occ = std::clamp(
        rng_.gaussian(config_.meanOccupancy, config_.occupancyJitter), 0.0,
        1.0);
    occupancy_.add(occ);
    if (occ > 0.01) ++framesWithPeople_;
  });
}

}  // namespace microedge
