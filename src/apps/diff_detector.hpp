#pragma once

// NoScope-style difference detector (Kang et al., VLDB'17), as used in the
// paper's motivation: inserted before the expensive model, it forwards a
// frame only when the scene changed enough to warrant inference. In
// Coral-Pie terms: while no vehicle is in the field of view, almost all
// frames are filtered out, dropping TPU duty cycle from ~30% to ~20% and
// below — more fragmentation for MicroEdge to reclaim.
//
// Scene content is modelled as an on/off renewal process: quiet gaps
// (exponential) alternate with activity dwells (vehicle crossing the FOV,
// ~10 s in the paper's campus dataset). During activity every frame is
// forwarded; during quiet periods a small background fraction passes the
// difference threshold (lighting changes, foliage).

#include <cstdint>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace microedge {

class DiffDetector {
 public:
  struct Config {
    // Mean quiet gap between vehicles.
    SimDuration meanQuietGap = seconds(20);
    // Mean dwell of a vehicle in the FOV (paper: ~10 s).
    SimDuration meanActivityDwell = seconds(10);
    // Fraction of quiet-period frames that still pass the threshold.
    double quietPassRate = 0.04;
    // CPU cost of the frame-difference computation itself (cheap by
    // design — that is NoScope's point).
    SimDuration computeCost = millisecondsF(1.2);
  };

  DiffDetector(Config config, Pcg32 rng);

  // Decides whether the frame arriving at `now` is forwarded to inference.
  bool shouldForward(SimTime now);

  // True while a vehicle is (modelled as) present.
  bool activeAt(SimTime now);

  const Config& config() const { return config_; }
  std::uint64_t forwardedCount() const { return forwarded_; }
  std::uint64_t suppressedCount() const { return suppressed_; }
  // Number of activity phases entered so far; during an active phase this
  // doubles as a stable identity for the object in the FOV (Coral-Pie uses
  // it as the vehicle id feeding re-identification).
  std::uint64_t activePhaseCount() const { return activePhases_; }

 private:
  void advanceTo(SimTime now);

  Config config_;
  Pcg32 rng_;
  // Current phase: [phaseStart_, phaseEnd_), active or quiet.
  bool active_ = false;
  SimTime phaseEnd_{};
  std::uint64_t forwarded_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t activePhases_ = 0;
};

}  // namespace microedge
