#include "apps/camera.hpp"

#include <cassert>

namespace microedge {

CameraStream::CameraStream(Simulator& sim, Config config, FrameCallback onFrame)
    : config_(config), onFrame_(std::move(onFrame)),
      task_(sim, framePeriod(config.fps), [this] { emitFrame(); }) {
  assert(config_.fps > 0.0 && "camera FPS must be positive");
}

void CameraStream::start() { task_.start(); }

void CameraStream::emitFrame() {
  ++frames_;
  std::uint64_t id = frames_;
  if (config_.maxFrames != 0 && frames_ >= config_.maxFrames) {
    task_.stop();
  }
  onFrame_(id);
}

}  // namespace microedge
