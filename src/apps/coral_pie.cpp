#include "apps/coral_pie.hpp"

namespace microedge {

void ReIdStage::onUpstreamNotification(std::uint64_t vehicleId) {
  expected_.insert(vehicleId);
}

void ReIdStage::onLocalDetection(std::uint64_t vehicleId) {
  if (matched_.count(vehicleId) > 0) return;  // already tracked locally
  // The match itself costs embedding-comparison time on the second RPi; the
  // stage is pipelined with detection, so the cost is modelled as a delay on
  // the bookkeeping, not back-pressure on the camera. Matching compares the
  // local detection's embedding against the gallery announced by upstream
  // cameras: the oldest pending announcement wins (FIFO corridor traffic).
  sim_.scheduleAfter(config_.matchLatency, [this, vehicleId] {
    if (matched_.insert(vehicleId).second) {
      if (expected_.erase(vehicleId) > 0 ||
          (!expected_.empty() && [this] {
            expected_.erase(expected_.begin());
            return true;
          }())) {
        ++reIdentified_;
      } else {
        ++newTracks_;
      }
    }
  });
}

namespace {

CameraPipeline::Config detectionConfig(const CoralPieApp::Config& config) {
  CameraPipeline::Config out;
  out.name = config.name + "/detection";
  out.fps = config.fps;
  out.maxFrames = config.maxFrames;
  if (config.useDiffDetector) out.diffDetector = config.diffConfig;
  out.slo = config.slo;
  if (config.useDiffDetector) {
    // With the difference detector the inference rate is data dependent;
    // throughput is judged by queue stability + latency instead.
    out.slo.targetFps = 0.0;
  }
  return out;
}

}  // namespace

CoralPieApp::CoralPieApp(Simulator& sim, std::unique_ptr<TpuClient> client,
                         SimTransport& transport, Config config, Pcg32 rng)
    : sim_(sim), transport_(transport), config_(std::move(config)),
      detection_(sim, std::move(client), detectionConfig(config_), rng.split()),
      reid_(sim, config_.reid) {
  detection_.setFrameHook(
      [this](const FrameBreakdown& frame) { onDetectionComplete(frame); });
}

void CoralPieApp::onDetectionComplete(const FrameBreakdown& frame) {
  (void)frame;
  DiffDetector* diff = detection_.diffDetector();
  // Without the difference detector the pipeline has no vehicle-identity
  // signal; every frame is inference-only and re-id is a no-op.
  if (diff == nullptr) return;
  if (!diff->activeAt(sim_.now())) return;
  std::uint64_t vehicleId = config_.vehicleIdBase + diff->activePhaseCount();
  if (vehicleId == lastReportedVehicle_) return;  // one report per crossing
  lastReportedVehicle_ = vehicleId;
  ++vehiclesReported_;

  // Ship the detection (thumbnail + embedding, ~24 KB) to the local re-id
  // RPi, then notify the downstream camera's re-id stage over the network.
  transport_.send(detection_.client().config().clientNode, reid_.node(),
                  24 * 1024, [this, vehicleId] {
                    reid_.onLocalDetection(vehicleId);
                    if (downstream_ != nullptr) {
                      transport_.send(reid_.node(), downstream_->reid().node(),
                                      4 * 1024, [app = downstream_, vehicleId] {
                                        app->reid().onUpstreamNotification(
                                            vehicleId);
                                      });
                    }
                  });
}

}  // namespace microedge
