#pragma once

// Camera frame source.
//
// Cameras produce frames at a fixed rate 24x7 (§2); the *application*
// decides which frames enter the inference pipeline. The source here emits
// a callback per frame at the configured FPS, optionally stopping after a
// fixed frame count (the paper's Coral-Pie dataset is a 1000-frame clip).

#include <cstdint>
#include <functional>

#include "sim/simulator.hpp"

namespace microedge {

class CameraStream {
 public:
  struct Config {
    double fps = 15.0;
    // 0 = run until stop(); otherwise emit exactly this many frames.
    std::uint64_t maxFrames = 0;
  };
  // Receives the frame sequence number (1-based).
  using FrameCallback = std::function<void(std::uint64_t frameId)>;

  CameraStream(Simulator& sim, Config config, FrameCallback onFrame);

  // First frame fires one period from now.
  void start();
  void stop() { task_.stop(); }
  bool running() const { return task_.running(); }

  const Config& config() const { return config_; }
  std::uint64_t framesEmitted() const { return frames_; }
  SimDuration framePeriodDuration() const { return task_.period(); }
  // The underlying frame clock, exposed so a rate controller
  // (testbed/rate_control.hpp) can retune the period at runtime.
  PeriodicTask& task() { return task_; }

 private:
  void emitFrame();

  Config config_;
  FrameCallback onFrame_;
  std::uint64_t frames_ = 0;
  PeriodicTask task_;
};

}  // namespace microedge
