#pragma once

// The generic camera-application pipeline (Fig. 2): frame source ->
// (optional difference detector) -> pre-process -> ML inference ->
// post-process, with per-stream SLO monitoring and latency breakdowns.
//
// The pre/infer/post stages execute inside the TpuClient invoke path; this
// class owns the cadence, the filtering, and the metrics.

#include <memory>
#include <optional>
#include <string>

#include "apps/camera.hpp"
#include "apps/diff_detector.hpp"
#include "dataplane/tpu_client.hpp"
#include "metrics/breakdown.hpp"
#include "metrics/slo.hpp"

namespace microedge {

class CameraPipeline {
 public:
  struct Config {
    std::string name;
    double fps = 15.0;
    std::uint64_t maxFrames = 0;
    // Engage the NoScope-style difference detector stage.
    std::optional<DiffDetector::Config> diffDetector;
    SloMonitor::Config slo;
  };
  // Fired after each frame finishes post-processing (optional app hook —
  // Coral-Pie attaches re-identification here).
  using FrameHook = std::function<void(const FrameBreakdown&)>;

  CameraPipeline(Simulator& sim, std::unique_ptr<TpuClient> client,
                 Config config, Pcg32 rng);

  void start() { camera_.start(); }
  // Stops frame generation and the client; in-flight frames drain.
  void stop();
  bool running() const { return camera_.running(); }

  void setFrameHook(FrameHook hook) { frameHook_ = std::move(hook); }

  const std::string& name() const { return config_.name; }
  const Config& config() const { return config_; }
  TpuClient& client() { return *client_; }
  const TpuClient& client() const { return *client_; }
  CameraStream& camera() { return camera_; }
  DiffDetector* diffDetector() {
    return diff_.has_value() ? &*diff_ : nullptr;
  }
  SloMonitor& slo() { return slo_; }
  const SloMonitor& slo() const { return slo_; }
  BreakdownAggregator& breakdown() { return breakdown_; }
  const BreakdownAggregator& breakdown() const { return breakdown_; }

 private:
  void onFrame(std::uint64_t frameId);

  Simulator& sim_;
  std::unique_ptr<TpuClient> client_;
  Config config_;
  std::optional<DiffDetector> diff_;
  SloMonitor slo_;
  BreakdownAggregator breakdown_;
  FrameHook frameHook_;
  CameraStream camera_;
};

}  // namespace microedge
