#include "apps/pipeline.hpp"

#include "util/logging.hpp"

namespace microedge {

CameraPipeline::CameraPipeline(Simulator& sim,
                               std::unique_ptr<TpuClient> client,
                               Config config, Pcg32 rng)
    : sim_(sim), client_(std::move(client)), config_(std::move(config)),
      slo_(config_.slo),
      camera_(sim, CameraStream::Config{config_.fps, config_.maxFrames},
              [this](std::uint64_t id) { onFrame(id); }) {
  if (config_.diffDetector.has_value()) {
    diff_.emplace(*config_.diffDetector, rng.split());
  }
}

void CameraPipeline::stop() {
  camera_.stop();
  client_->stop();
}

void CameraPipeline::onFrame(std::uint64_t frameId) {
  (void)frameId;
  if (diff_.has_value() && !diff_->shouldForward(sim_.now())) {
    return;  // frame filtered before the expensive model
  }
  slo_.recordSubmitted(sim_.now());
  Status s = client_->invoke([this](const FrameBreakdown& frame) {
    // Every frame terminates exactly once; only completed frames count
    // toward throughput/latency and reach the app hook — the rest are
    // recorded as drops (outcome tallied by the aggregator).
    if (frame.outcome != FrameOutcome::kCompleted) {
      slo_.recordDropped();
      breakdown_.add(frame);
      return;
    }
    slo_.recordCompleted(frame.completed, frame.endToEnd());
    breakdown_.add(frame);
    if (frameHook_) frameHook_(frame);
  });
  if (!s.isOk()) {
    ME_LOG(kWarning) << "pipeline " << config_.name
                     << ": invoke rejected: " << s.toString();
  }
}

}  // namespace microedge
