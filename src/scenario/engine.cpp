#include "scenario/engine.hpp"

#include <algorithm>
#include <cmath>

namespace microedge {

namespace {

double diurnalAt(const DiurnalSpec& diurnal, double atS) {
  const std::vector<DiurnalSpec::Point>& pts = diurnal.points;
  if (pts.empty()) return 1.0;
  if (atS <= pts.front().atS) return pts.front().multiplier;
  if (atS >= pts.back().atS) return pts.back().multiplier;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (atS > pts[i].atS) continue;
    const DiurnalSpec::Point& a = pts[i - 1];
    const DiurnalSpec::Point& b = pts[i];
    const double f = (atS - a.atS) / (b.atS - a.atS);
    return a.multiplier + f * (b.multiplier - a.multiplier);
  }
  return pts.back().multiplier;
}

double flashAt(const FlashCrowdSpec& flash, double atS) {
  const double t = atS - flash.startS;
  if (t <= 0.0) return 1.0;
  const double peak = flash.peakMultiplier;
  if (t < flash.rampS) return 1.0 + (peak - 1.0) * (t / flash.rampS);
  const double afterRamp = t - flash.rampS;
  if (afterRamp < flash.holdS) return peak;
  const double afterHold = afterRamp - flash.holdS;
  if (afterHold < flash.decayS) {
    return peak + (1.0 - peak) * (afterHold / flash.decayS);
  }
  return 1.0;
}

}  // namespace

double scenarioEnvelopeAt(const ScenarioSpec& spec, int tenant, double atS) {
  double m = diurnalAt(spec.diurnal, atS);
  for (const FlashCrowdSpec& f : spec.flash) {
    if (f.tenant < 0 || f.tenant == tenant) m *= flashAt(f, atS);
  }
  return m;
}

CompiledScenario compileScenario(const ScenarioSpec& spec, int tenants) {
  if (tenants < 1) tenants = 1;
  CompiledScenario out;
  out.horizon = secondsF(spec.horizonS);

  // --- Rate updates ---------------------------------------------------------
  // Tenant-uniform scenarios (no tenant-scoped flash crowd) emit one
  // tenant=-1 series; otherwise one series per tenant. Each series emits an
  // update only at samples where the envelope value changed, so a flat
  // scenario compiles to zero rate events.
  bool uniform = true;
  for (const FlashCrowdSpec& f : spec.flash) {
    if (f.tenant >= 0) uniform = false;
  }
  const int series = uniform ? 1 : tenants;
  const std::int64_t samples = static_cast<std::int64_t>(
      std::floor(spec.horizonS / spec.envelopePeriodS));
  for (int s = 0; s < series; ++s) {
    const int tenant = uniform ? -1 : s;
    double prev = 1.0;  // streams start at nominal rate
    for (std::int64_t k = 0; k <= samples; ++k) {
      const double atS = static_cast<double>(k) * spec.envelopePeriodS;
      if (atS >= spec.horizonS) break;
      const double m = scenarioEnvelopeAt(spec, tenant < 0 ? 0 : tenant, atS);
      if (m == prev) continue;
      out.rateUpdates.push_back({secondsF(atS), tenant, m});
      prev = m;
    }
  }
  std::sort(out.rateUpdates.begin(), out.rateUpdates.end(),
            [](const ScenarioRateUpdate& a, const ScenarioRateUpdate& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.tenant < b.tenant;
            });

  // --- Churn ----------------------------------------------------------------
  // Round-robin tenant assignment for tenant=-1 entries; the counter runs
  // across entries so successive waves spread over different tenants.
  int rr = 0;
  for (const ChurnSpec& c : spec.churn) {
    for (int k = 0; k < c.count; ++k) {
      ScenarioChurnCamera cam;
      cam.tenant = c.tenant >= 0 ? c.tenant % tenants : (rr++ % tenants);
      cam.joinAt = c.joinS > 0.0 ? secondsF(c.joinS) : SimDuration::zero();
      cam.leaveAt = c.leaveS > 0.0 ? secondsF(c.leaveS) : SimDuration::zero();
      out.churn.push_back(cam);
    }
  }

  // --- Phases ---------------------------------------------------------------
  for (const PhaseSpec& p : spec.phases) {
    out.phaseNames.push_back(p.name);
    out.phaseEnds.push_back(secondsF(p.untilS));
  }
  if (out.phaseEnds.empty()) {
    out.phaseNames.push_back("run");
    out.phaseEnds.push_back(out.horizon);
  } else if (out.phaseEnds.back() < out.horizon) {
    out.phaseNames.push_back("tail");
    out.phaseEnds.push_back(out.horizon);
  }
  return out;
}

FaultPlan compileScenarioFaults(
    const ScenarioSpec& spec,
    const std::vector<std::vector<std::string>>& nodesByRack) {
  FaultPlan plan;
  plan.seed = spec.seed;
  plan.detectionDelay = secondsF(spec.detectionDelayS);
  for (const FailureGroupSpec& g : spec.failures) {
    const std::size_t rack = static_cast<std::size_t>(g.tenant);
    if (rack >= nodesByRack.size()) continue;
    const std::vector<std::string>& nodes = nodesByRack[rack];
    std::size_t n = g.count > 0 ? static_cast<std::size_t>(g.count)
                                : nodes.size();
    if (n > nodes.size()) n = nodes.size();
    for (std::size_t i = 0; i < n; ++i) {
      FaultEvent event;
      event.at = secondsF(g.atS);
      event.kind = FaultKind::kNodeDeath;
      event.target = nodes[i];
      plan.events.push_back(std::move(event));
    }
  }
  return plan;
}

}  // namespace microedge
