#pragma once

// Scenario compiler (DESIGN.md §15): turns a declarative ScenarioSpec into
// the concrete, deterministic timeline a harness arms at setup.
//
//   * rate updates — the diurnal x flash envelope sampled on the spec's
//     envelope period, one update per tenant at each sample where the value
//     changed (a tenant-uniform scenario collapses to a single tenant=-1
//     series). The harness schedules each update onto the affected streams'
//     owner shards as an emitter-tagged event.
//   * churn — entries expanded to per-camera (tenant, joinAt, leaveAt)
//     triples with a deterministic round-robin tenant assignment.
//   * failures — rack-scoped fault groups compiled into the existing
//     FaultPlan format (kNodeDeath per member tRPi, the spec's detection
//     delay), so FaultInjector / armFaults / replay tooling run unchanged.
//   * phases — boundaries normalized to cover exactly [0, horizon].
//
// Everything here is a pure function of (spec, tenant count, node names):
// no RNG beyond the seed carried into the FaultPlan, no clocks — the same
// spec compiles to the same timeline on every shard count and every rerun.

#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "sim/fault_injector.hpp"
#include "util/time.hpp"

namespace microedge {

// Envelope value (diurnal x applicable flash crowds) for `tenant` at `atS`
// seconds — the continuous signal the rate updates sample.
double scenarioEnvelopeAt(const ScenarioSpec& spec, int tenant, double atS);

struct ScenarioRateUpdate {
  SimDuration at{};
  int tenant = -1;  // -1 = every tenant
  double multiplier = 1.0;
};

struct ScenarioChurnCamera {
  int tenant = 0;
  SimDuration joinAt{};   // zero = present from the start
  SimDuration leaveAt{};  // zero = never leaves
};

struct CompiledScenario {
  SimDuration horizon{};
  // Sorted by (at, tenant); at most one update per (sample, tenant).
  std::vector<ScenarioRateUpdate> rateUpdates;
  std::vector<ScenarioChurnCamera> churn;
  std::vector<std::string> phaseNames;
  std::vector<SimDuration> phaseEnds;  // ascending; back() == horizon
};

// Compiles the spec for a harness with `tenants` tenants. The spec must
// already validate().
CompiledScenario compileScenario(const ScenarioSpec& spec, int tenants);

// Correlated failure groups -> FaultPlan. `nodesByRack[r]` lists rack r's
// TPU-hosting nodes in rack order (the harness supplies its topology's
// names); group entries naming a tenant with no rack are ignored.
FaultPlan compileScenarioFaults(
    const ScenarioSpec& spec,
    const std::vector<std::vector<std::string>>& nodesByRack);

}  // namespace microedge
