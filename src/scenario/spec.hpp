#pragma once

// Declarative scenario specs (DESIGN.md §15).
//
// A ScenarioSpec is a seeded, JSON-loadable description of a time-varying
// workload — the shape of the traffic, not the cluster serving it:
//
//   * diurnal   — a piecewise-linear (or sampled-sinusoid) fps-multiplier
//                 envelope over the whole fleet: the time-of-day curve.
//   * flash     — per-tenant multiplicative crowds with ramp / hold / decay
//                 edges stacked on top of the diurnal curve.
//   * churn     — cameras joining mid-run (admitted live) and leaving
//                 (drained: in-flight frames still reach exactly one
//                 terminal outcome, ledger charges credited).
//   * failures  — rack-scoped correlated fault groups, compiled into the
//                 existing FaultPlan format so the injector, replay and
//                 chaos-soak machinery apply unchanged.
//   * phases    — named time segments; the harness snapshots windowed
//                 metrics (goodput, attainment, rung occupancy, repacks)
//                 at each phase boundary.
//
// Like SweepGrid, a spec is pure data with a deterministic JSON round-trip
// and an FNV fingerprint; scenario/engine.hpp compiles it into a timeline
// of simulator events. "Tenant" is an abstract index the harness maps onto
// its own multi-tenancy unit (the sharded harness: one tenant per rack);
// tenant -1 addresses every tenant.
//
// All times are seconds from run start; all rate knobs are fps multipliers
// (1.0 = the harness's nominal rate). `quantumNs` is the tick-lattice
// quantum handed to every stream's StreamRateControl — the determinism rule
// that keeps re-timed streams collision-free across shard counts (see
// testbed/rate_control.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/status.hpp"

namespace microedge {

struct DiurnalSpec {
  struct Point {
    double atS = 0.0;
    double multiplier = 1.0;
  };
  // Piecewise-linear control points, strictly ascending in time. Empty =
  // flat 1.0. Before the first / after the last point the envelope holds
  // that point's value.
  std::vector<Point> points;
};

struct FlashCrowdSpec {
  int tenant = -1;  // -1 = every tenant
  double startS = 0.0;
  double rampS = 1.0;   // linear rise 1.0 -> peak
  double holdS = 1.0;   // flat at peak
  double decayS = 1.0;  // linear fall peak -> 1.0
  double peakMultiplier = 2.0;
};

struct ChurnSpec {
  int tenant = -1;      // hosting tenant; -1 = round-robin over tenants
  double joinS = 0.0;   // <= 0: present from the start
  double leaveS = 0.0;  // <= 0: never leaves
  int count = 1;        // cameras this entry adds
};

struct FailureGroupSpec {
  double atS = 1.0;
  int tenant = 0;  // rack whose TPU hosts die together
  int count = 0;   // tRPis to kill, in rack order; 0 = the whole rack
};

struct PhaseSpec {
  std::string name;
  double untilS = 0.0;  // phase boundary; strictly ascending across phases
};

struct ScenarioSpec {
  std::string name = "scenario";
  std::uint64_t seed = 1;  // keys the compiled FaultPlan
  double horizonS = 10.0;
  // Envelope sampling interval: the engine emits one rate update per tenant
  // at each multiple of this where the envelope value changed.
  double envelopePeriodS = 0.25;
  // Tick-lattice quantum (testbed/rate_control.hpp). Must exceed the
  // harness's stream count; 0 disables the lattice (and with it the
  // cross-shard-count byte-identity guarantee for re-timed streams).
  std::int64_t quantumNs = 1 << 20;
  // Data-plane-to-control-plane detection gap for compiled failures.
  double detectionDelayS = 0.75;

  DiurnalSpec diurnal;
  std::vector<FlashCrowdSpec> flash;
  std::vector<ChurnSpec> churn;
  std::vector<FailureGroupSpec> failures;
  std::vector<PhaseSpec> phases;  // empty = one phase "run" to the horizon

  // Structural sanity: ordered diurnal points / phases, positive horizon
  // and quantum, edge durations >= 0, churn windows inside the horizon.
  Status validate() const;

  static StatusOr<ScenarioSpec> fromJson(const JsonValue& spec);
  static StatusOr<ScenarioSpec> fromJsonText(std::string_view text);
  JsonValue toJson() const;
  // FNV-1a over the compact JSON — names the scenario in dumps the way
  // SweepGrid::fingerprint names grids.
  std::string fingerprint() const;
};

// Built-in scenarios ("diurnal" | "flashcrowd" | "churn" | "failures" |
// "city" — the combined everything-at-once workload the determinism tests
// pin). NotFound otherwise.
StatusOr<ScenarioSpec> builtinScenario(const std::string& name);

}  // namespace microedge
