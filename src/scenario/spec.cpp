#include "scenario/spec.hpp"

#include "util/strings.hpp"

namespace microedge {

namespace {

Status checkEdge(const char* what, double v) {
  if (v < 0.0) {
    return invalidArgument(strCat("scenario: ", what, " must be >= 0 (got ",
                                  v, ")"));
  }
  return Status::ok();
}

}  // namespace

Status ScenarioSpec::validate() const {
  if (name.empty()) return invalidArgument("scenario: name must be non-empty");
  if (horizonS <= 0.0) {
    return invalidArgument("scenario: horizon_s must be > 0");
  }
  if (envelopePeriodS <= 0.0) {
    return invalidArgument("scenario: envelope_period_s must be > 0");
  }
  if (quantumNs < 0) {
    return invalidArgument("scenario: quantum_ns must be >= 0");
  }
  if (detectionDelayS < 0.0) {
    return invalidArgument("scenario: detection_delay_s must be >= 0");
  }
  for (std::size_t i = 0; i < diurnal.points.size(); ++i) {
    const DiurnalSpec::Point& p = diurnal.points[i];
    if (p.multiplier <= 0.0) {
      return invalidArgument("scenario: diurnal multiplier must be > 0");
    }
    if (i > 0 && p.atS <= diurnal.points[i - 1].atS) {
      return invalidArgument(
          "scenario: diurnal points must be strictly ascending in time");
    }
  }
  for (const FlashCrowdSpec& f : flash) {
    if (f.peakMultiplier <= 0.0) {
      return invalidArgument("scenario: flash peak must be > 0");
    }
    Status s = checkEdge("flash start_s", f.startS);
    if (s.isOk()) s = checkEdge("flash ramp_s", f.rampS);
    if (s.isOk()) s = checkEdge("flash hold_s", f.holdS);
    if (s.isOk()) s = checkEdge("flash decay_s", f.decayS);
    if (!s.isOk()) return s;
  }
  for (const ChurnSpec& c : churn) {
    if (c.count < 1) return invalidArgument("scenario: churn count must be >= 1");
    if (c.joinS < 0.0 || c.leaveS < 0.0) {
      return invalidArgument("scenario: churn times must be >= 0");
    }
    if (c.joinS >= horizonS) {
      return invalidArgument("scenario: churn join_s must precede the horizon");
    }
    if (c.leaveS > 0.0 && c.leaveS <= c.joinS) {
      return invalidArgument("scenario: churn leave_s must follow join_s");
    }
  }
  for (const FailureGroupSpec& g : failures) {
    if (g.tenant < 0) {
      return invalidArgument("scenario: failure tenant must be >= 0");
    }
    if (g.count < 0) {
      return invalidArgument("scenario: failure count must be >= 0");
    }
    Status s = checkEdge("failure at_s", g.atS);
    if (!s.isOk()) return s;
  }
  double prev = 0.0;
  for (const PhaseSpec& p : phases) {
    if (p.name.empty()) {
      return invalidArgument("scenario: phase name must be non-empty");
    }
    if (p.untilS <= prev) {
      return invalidArgument(
          "scenario: phase boundaries must be strictly ascending");
    }
    prev = p.untilS;
  }
  if (!phases.empty() && phases.back().untilS > horizonS) {
    return invalidArgument("scenario: phases must end at or before horizon_s");
  }
  return Status::ok();
}

JsonValue ScenarioSpec::toJson() const {
  JsonValue out = JsonValue::object();
  out.set("name", name);
  out.set("seed", seed);
  out.set("horizon_s", horizonS);
  out.set("envelope_period_s", envelopePeriodS);
  out.set("quantum_ns", quantumNs);
  out.set("detection_delay_s", detectionDelayS);
  if (!diurnal.points.empty()) {
    JsonValue points = JsonValue::array();
    for (const DiurnalSpec::Point& p : diurnal.points) {
      JsonValue pt = JsonValue::object();
      pt.set("at_s", p.atS);
      pt.set("mult", p.multiplier);
      points.push(std::move(pt));
    }
    out.set("diurnal", std::move(points));
  }
  if (!flash.empty()) {
    JsonValue crowds = JsonValue::array();
    for (const FlashCrowdSpec& f : flash) {
      JsonValue c = JsonValue::object();
      c.set("tenant", f.tenant);
      c.set("start_s", f.startS);
      c.set("ramp_s", f.rampS);
      c.set("hold_s", f.holdS);
      c.set("decay_s", f.decayS);
      c.set("peak", f.peakMultiplier);
      crowds.push(std::move(c));
    }
    out.set("flash", std::move(crowds));
  }
  if (!churn.empty()) {
    JsonValue entries = JsonValue::array();
    for (const ChurnSpec& c : churn) {
      JsonValue e = JsonValue::object();
      e.set("tenant", c.tenant);
      e.set("join_s", c.joinS);
      e.set("leave_s", c.leaveS);
      e.set("count", c.count);
      entries.push(std::move(e));
    }
    out.set("churn", std::move(entries));
  }
  if (!failures.empty()) {
    JsonValue groups = JsonValue::array();
    for (const FailureGroupSpec& g : failures) {
      JsonValue e = JsonValue::object();
      e.set("at_s", g.atS);
      e.set("tenant", g.tenant);
      e.set("count", g.count);
      groups.push(std::move(e));
    }
    out.set("failures", std::move(groups));
  }
  if (!phases.empty()) {
    JsonValue list = JsonValue::array();
    for (const PhaseSpec& p : phases) {
      JsonValue e = JsonValue::object();
      e.set("name", p.name);
      e.set("until_s", p.untilS);
      list.push(std::move(e));
    }
    out.set("phases", std::move(list));
  }
  return out;
}

StatusOr<ScenarioSpec> ScenarioSpec::fromJson(const JsonValue& spec) {
  if (!spec.isObject()) {
    return invalidArgument("scenario: spec must be a JSON object");
  }
  ScenarioSpec out;
  out.name = spec.getString("name", out.name);
  out.seed = static_cast<std::uint64_t>(spec.getInt("seed", 1));
  out.horizonS = spec.getDouble("horizon_s", out.horizonS);
  out.envelopePeriodS = spec.getDouble("envelope_period_s", out.envelopePeriodS);
  out.quantumNs = spec.getInt("quantum_ns", out.quantumNs);
  out.detectionDelayS = spec.getDouble("detection_delay_s", out.detectionDelayS);
  if (const JsonValue* points = spec.find("diurnal");
      points != nullptr && points->isArray()) {
    for (const JsonValue& p : points->items()) {
      DiurnalSpec::Point pt;
      pt.atS = p.getDouble("at_s", 0.0);
      pt.multiplier = p.getDouble("mult", 1.0);
      out.diurnal.points.push_back(pt);
    }
  }
  if (const JsonValue* crowds = spec.find("flash");
      crowds != nullptr && crowds->isArray()) {
    for (const JsonValue& c : crowds->items()) {
      FlashCrowdSpec f;
      f.tenant = static_cast<int>(c.getInt("tenant", -1));
      f.startS = c.getDouble("start_s", f.startS);
      f.rampS = c.getDouble("ramp_s", f.rampS);
      f.holdS = c.getDouble("hold_s", f.holdS);
      f.decayS = c.getDouble("decay_s", f.decayS);
      f.peakMultiplier = c.getDouble("peak", f.peakMultiplier);
      out.flash.push_back(f);
    }
  }
  if (const JsonValue* entries = spec.find("churn");
      entries != nullptr && entries->isArray()) {
    for (const JsonValue& e : entries->items()) {
      ChurnSpec c;
      c.tenant = static_cast<int>(e.getInt("tenant", -1));
      c.joinS = e.getDouble("join_s", 0.0);
      c.leaveS = e.getDouble("leave_s", 0.0);
      c.count = static_cast<int>(e.getInt("count", 1));
      out.churn.push_back(c);
    }
  }
  if (const JsonValue* groups = spec.find("failures");
      groups != nullptr && groups->isArray()) {
    for (const JsonValue& e : groups->items()) {
      FailureGroupSpec g;
      g.atS = e.getDouble("at_s", g.atS);
      g.tenant = static_cast<int>(e.getInt("tenant", 0));
      g.count = static_cast<int>(e.getInt("count", 0));
      out.failures.push_back(g);
    }
  }
  if (const JsonValue* list = spec.find("phases");
      list != nullptr && list->isArray()) {
    for (const JsonValue& e : list->items()) {
      PhaseSpec p;
      p.name = e.getString("name", "");
      p.untilS = e.getDouble("until_s", 0.0);
      out.phases.push_back(p);
    }
  }
  Status valid = out.validate();
  if (!valid.isOk()) return valid;
  return out;
}

StatusOr<ScenarioSpec> ScenarioSpec::fromJsonText(std::string_view text) {
  StatusOr<JsonValue> parsed = JsonValue::parse(text);
  if (!parsed.isOk()) return parsed.status();
  return fromJson(*parsed);
}

std::string ScenarioSpec::fingerprint() const {
  std::string text = toJson().dump();
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  char buf[17];
  static const char* kHex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[h & 0xf];
    h >>= 4;
  }
  buf[16] = '\0';
  return std::string(buf);
}

StatusOr<ScenarioSpec> builtinScenario(const std::string& name) {
  ScenarioSpec s;
  s.name = name;
  if (name == "diurnal") {
    // A compressed day: quiet night, morning ramp to full rate, evening
    // fall-off. Pure envelope — no crowds, churn or faults.
    s.horizonS = 9.0;
    s.diurnal.points = {{0.0, 0.55}, {3.0, 1.0}, {6.0, 1.0}, {9.0, 0.5}};
    s.phases = {{"night", 3.0}, {"day", 6.0}, {"evening", 9.0}};
    return s;
  }
  if (name == "flashcrowd") {
    // Every tenant's rate doubles for a 3-second hold: the 2x-peak workload
    // the overload-control acceptance bench runs per policy.
    s.horizonS = 12.0;
    s.flash = {{/*tenant=*/-1, /*startS=*/4.0, /*rampS=*/1.0, /*holdS=*/3.0,
                /*decayS=*/1.0, /*peakMultiplier=*/2.0}};
    s.phases = {{"baseline", 4.0}, {"ramp", 5.0}, {"peak", 8.0},
                {"decay", 9.0}, {"recovery", 12.0}};
    return s;
  }
  if (name == "churn") {
    // A wave of cameras joins mid-run and drains out again, plus a late
    // tenant-0 join that stays to the end.
    s.horizonS = 10.0;
    s.churn = {{/*tenant=*/-1, /*joinS=*/2.0, /*leaveS=*/7.0, /*count=*/4},
               {/*tenant=*/0, /*joinS=*/3.5, /*leaveS=*/0.0, /*count=*/2}};
    s.phases = {{"steady", 2.0}, {"joined", 7.0}, {"drained", 10.0}};
    return s;
  }
  if (name == "failures") {
    // Correlated rack failure: every tRPi of tenant 0 dies at t=3 (the
    // rack/switch-scoped fault group), through the standard FaultPlan path.
    s.horizonS = 8.0;
    s.failures = {{/*atS=*/3.0, /*tenant=*/0, /*count=*/0}};
    s.phases = {{"healthy", 3.0}, {"degraded", 8.0}};
    return s;
  }
  if (name == "city") {
    // Everything at once — the determinism suite's combined witness:
    // diurnal swing + a tenant-1 flash crowd + join/leave churn + a
    // correlated tenant-0 failure.
    s.horizonS = 12.0;
    s.diurnal.points = {{0.0, 0.7}, {4.0, 1.0}, {10.0, 0.8}};
    s.flash = {{/*tenant=*/1, /*startS=*/5.0, /*rampS=*/1.0, /*holdS=*/2.0,
                /*decayS=*/1.0, /*peakMultiplier=*/1.8}};
    s.churn = {{/*tenant=*/-1, /*joinS=*/2.5, /*leaveS=*/9.0, /*count=*/3},
               {/*tenant=*/1, /*joinS=*/4.25, /*leaveS=*/0.0, /*count=*/1}};
    s.failures = {{/*atS=*/6.5, /*tenant=*/0, /*count=*/1}};
    s.phases = {{"warmup", 2.5}, {"churned", 5.0}, {"crowded", 9.0},
                {"drain", 12.0}};
    return s;
  }
  return notFound(strCat("scenario: no built-in \"", name,
                         "\" (diurnal|flashcrowd|churn|failures|city)"));
}

}  // namespace microedge
