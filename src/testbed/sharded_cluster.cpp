#include "testbed/sharded_cluster.hpp"

#include <cassert>

#include "core/extended_scheduler.hpp"
#include "models/zoo.hpp"
#include "sim/topology.hpp"
#include "util/backoff.hpp"
#include "util/strings.hpp"

namespace microedge {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnvFold(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

std::uint64_t fnvFoldString(std::uint64_t h, const std::string& s) {
  for (char c : s) h = fnvFold(h, static_cast<unsigned char>(c));
  return fnvFold(h, s.size());
}

}  // namespace

// One camera stream: a PeriodicTask on the vRPi's shard submitting frames
// through the pod's TpuClient. `client` is declared before `task` so the
// task (which captures the stream) dies first at teardown.
struct ShardedCluster::Stream {
  std::string camera;     // vRPi node name
  int targetRack = 0;
  bool crossRack = false;
  unsigned shard = 0;
  std::uint64_t uid = 0;
  bool evicted = false;
  std::uint64_t digest = kFnvOffset;
  std::unique_ptr<TpuClient> client;
  std::unique_ptr<PeriodicTask> task;
  // Declared after task/client (destroyed first; it references both). Null
  // unless degradation is enabled.
  std::unique_ptr<StreamDegrader> degrader;

  void fold(const FrameBreakdown& b) {
    std::uint64_t h = digest;
    h = fnvFold(h, b.frameId);
    h = fnvFold(h, static_cast<std::uint64_t>(b.outcome));
    h = fnvFold(h, b.failovers);
    // The serving TPU by *name*, not dense handle, so the witness is
    // independent of intern order.
    h = fnvFoldString(h, b.servedByName());
    h = fnvFold(h, static_cast<std::uint64_t>(
                       b.submitted.time_since_epoch().count()));
    h = fnvFold(h, static_cast<std::uint64_t>(
                       b.completed.time_since_epoch().count()));
    h = fnvFold(h, static_cast<std::uint64_t>(b.preprocess.count()));
    h = fnvFold(h, static_cast<std::uint64_t>(b.requestTransmit.count()));
    h = fnvFold(h, static_cast<std::uint64_t>(b.queueDelay.count()));
    h = fnvFold(h, static_cast<std::uint64_t>(b.inference.count()));
    h = fnvFold(h, static_cast<std::uint64_t>(b.responseTransmit.count()));
    h = fnvFold(h, static_cast<std::uint64_t>(b.postprocess.count()));
    digest = h;
  }
};

// One rack's control plane, living on the rack's owner shard: its own TPU
// pool (only this rack's TPUs), admission, reclamation and failure
// recovery. Control actions affecting clients on other shards are posted
// one lookahead later (the modelled control-push latency).
struct ShardedCluster::RackControl {
  int rack = 0;
  unsigned shard = 0;
  TpuPool pool;
  std::unique_ptr<AdmissionController> admission;
  std::unique_ptr<Reclamation> reclamation;
  std::unique_ptr<FailureRecovery> recovery;
};

ShardedCluster::ShardedCluster(ShardedClusterConfig config)
    : config_(std::move(config)), zoo_(zoo::standardZoo()) {
  if (config_.shards < 1) config_.shards = 1;
  if (config_.racks < 1) config_.racks = 1;
  const int racks = config_.racks;

  sharded_ = std::make_unique<ShardedSim>(config_.shards,
                                          config_.networkConfig.baseLatency,
                                          config_.windowBound);
  sharded_->setBarrierRelief(config_.barrierRelief);
  ShardMap& map = sharded_->shardMap();
  // Placement policy must be fixed before the first shardOfName() — the
  // topology factory below resolves each node's owner sim through it.
  map.setRackMapping(config_.rackMapping, racks);

  TopologySpec spec;
  spec.racks = racks;
  spec.tRpiCount = racks * config_.tRpisPerRack;
  spec.vRpiCount = racks * config_.vRpisPerRack;
  spec.tpusPerTRpi = config_.tpusPerTRpi;
  spec.tpuConfig = config_.tpuConfig;
  spec.networkConfig = config_.networkConfig;
  topology_ = std::make_unique<ClusterTopology>(
      [this](const std::string& name) -> Simulator& {
        return sharded_->shardSim(shardOfName(name));
      },
      zoo_, spec);
  for (const auto& node : topology_->nodes()) map.assignByName(node->name());

  dataPlane_ = std::make_unique<DataPlane>(*sharded_, *topology_, zoo_);

  // --- Per-rack control planes ---------------------------------------------
  racks_.reserve(static_cast<std::size_t>(racks));
  for (int r = 0; r < racks; ++r) {
    auto rc = std::make_unique<RackControl>();
    rc->rack = r;
    rc->shard = map.shardOfRack(r);
    AdmissionConfig admission;
    admission.strategy = config_.strategy;
    rc->admission =
        std::make_unique<AdmissionController>(rc->pool, zoo_, admission);
    rc->reclamation = std::make_unique<Reclamation>(*rc->admission);
    FailureRecovery::Callbacks callbacks;
    callbacks.loadModel = [this](const LoadCommand& command) {
      Status s = dataPlane_->executeLoad(command);
      if (s.isOk() || dataPlane_->service(command.tpuId) == nullptr) return s;
      dataPlane_->executeLoadWithRetry(command, ExpBackoff{}, {});
      return Status::ok();
    };
    callbacks.reconfigureLb = [this](std::uint64_t uid, const LbConfig& lb) {
      pushLbConfig(uid, lb);
    };
    callbacks.evictPod = [this](std::uint64_t uid, const Status&) {
      evictStream(uid);
    };
    rc->recovery = std::make_unique<FailureRecovery>(
        *rc->admission, *rc->reclamation, std::move(callbacks));
    racks_.push_back(std::move(rc));
  }
  for (const auto& tpu : topology_->tpus()) {
    int rack = ShardMap::rackOfName(tpu->id());
    if (rack < 0) rack = 0;
    Status added =
        racks_[rack]->pool.addTpu(tpu->id(), tpu->config().paramMemoryMb);
    assert(added.isOk());
    (void)added;
  }

  // --- Camera streams -------------------------------------------------------
  auto infoOr = zoo_.find(config_.model);
  if (!infoOr.isOk()) {
    setupStatus_ = infoOr.status();
    return;
  }
  const double units = config_.tpuUnits > 0.0
                           ? config_.tpuUnits
                           : zoo_.at(config_.model).tpuUnitsAt(config_.fps);
  const SimDuration period = secondsF(1.0 / config_.fps);
  // Camera host list: every vRPi `streamsPerVRpi` times, then every tRPi
  // `streamsPerTRpi` times. The default (1, 0) is byte-identical to the
  // historical one-stream-per-vRPi workload — same hosts, uids and phases.
  std::vector<RpiNode*> cameras;
  {
    const std::vector<RpiNode*> vRpis = topology_->vRpis();
    const std::vector<RpiNode*> tRpis = topology_->tRpis();
    const int perV = config_.streamsPerVRpi < 0 ? 0 : config_.streamsPerVRpi;
    const int perT = config_.streamsPerTRpi < 0 ? 0 : config_.streamsPerTRpi;
    cameras.reserve(vRpis.size() * static_cast<std::size_t>(perV) +
                    tRpis.size() * static_cast<std::size_t>(perT));
    for (RpiNode* host : vRpis) {
      for (int k = 0; k < perV; ++k) cameras.push_back(host);
    }
    for (RpiNode* host : tRpis) {
      for (int k = 0; k < perT; ++k) cameras.push_back(host);
    }
  }
  const int total = static_cast<int>(cameras.size());
  streams_.reserve(cameras.size());
  for (int i = 0; i < total; ++i) {
    RpiNode* camera = cameras[static_cast<std::size_t>(i)];
    int rack = ShardMap::rackOfName(camera->name());
    if (rack < 0) rack = 0;
    const bool cross = racks > 1 && config_.crossRackStride > 0 &&
                       i % config_.crossRackStride == 0;
    const int targetRack = cross ? (rack + 1) % racks : rack;
    const std::uint64_t uid = static_cast<std::uint64_t>(i) + 1;

    RackControl& rc = *racks_[static_cast<std::size_t>(targetRack)];
    auto admitted =
        rc.admission->admit(uid, config_.model, TpuUnit::fromDouble(units));
    if (!admitted.isOk()) {
      setupStatus_ = admitted.status();
      return;
    }
    for (const LoadCommand& load : admitted->loads) {
      Status s = dataPlane_->executeLoad(load);
      if (!s.isOk()) {
        setupStatus_ = s;
        return;
      }
    }
    const LbConfig lb =
        ExtendedScheduler::lbConfigFromAllocation(admitted->allocation);
    rc.reclamation->track(uid, std::move(admitted)->allocation);

    auto stream = std::make_unique<Stream>();
    stream->camera = camera->name();
    stream->targetRack = targetRack;
    stream->crossRack = cross;
    stream->shard = shardOfName(camera->name());
    stream->uid = uid;

    TpuClient::Config clientConfig;
    clientConfig.clientNode = camera->name();
    clientConfig.model = config_.model;
    clientConfig.spread = config_.spread;
    // Cross-rack streams run deadline-free: the deadline/shed/NACK paths are
    // the one place sharded timing legitimately differs from solo (see
    // header), so the differential witness keeps them rack-local only.
    clientConfig.frameDeadline =
        cross ? SimDuration::zero() : config_.frameDeadline;
    clientConfig.maxFailovers = config_.maxFailovers;
    clientConfig.health = config_.lbHealth;
    // Per-frame admission: with a zero deadline (cross-rack streams) the
    // estimate is zero and the ledger is never consulted.
    clientConfig.admission = config_.frameAdmission;
    // Keyed transport loss: the stream uid tokens every message, so which
    // frames a loss window drops is a pure function of (plan seed, uid,
    // frame seq) — identical at every shard count AND for batched ingest.
    clientConfig.streamToken = uid;
    stream->client = dataPlane_->makeClient(std::move(clientConfig));
    Status configured = stream->client->configureLb(lb);
    if (!configured.isOk()) {
      setupStatus_ = configured;
      return;
    }

    Stream* raw = stream.get();
    Simulator& sim = sharded_->shardSim(stream->shard);
    // Emitter-tag only streams whose target rack lives on ANOTHER shard:
    // their frame cascades are the steady-state source of cross-shard sends,
    // so the adaptive window bound must see them (sim/sharded_sim.hpp).
    // Same-shard cross-rack streams stay untagged — tagging them would pin
    // the ECSB to every frame tick and erase the adaptive win.
    const bool crossShard =
        cross && map.shardOfRack(targetRack) != stream->shard;
    stream->task = std::make_unique<PeriodicTask>(
        sim, period,
        [raw] {
          (void)raw->client->invoke([raw](const FrameBreakdown& b) {
            raw->fold(b);
            if (raw->degrader) raw->degrader->onFrame();
          });
        },
        crossShard);
    if (config_.degradation.enabled) {
      stream->degrader = std::make_unique<StreamDegrader>(
          *stream->client, *stream->task, period, config_.degradation);
    }
    // Stagger camera phases so no two frames in the cluster ever share a
    // timestamp: the global event order — and with it every breakdown — is
    // then independent of how shards interleave.
    const SimDuration phase = (period * (i + 1)) / (total + 1);
    stream->task->startAt(sim.now() + phase);
    streams_.push_back(std::move(stream));
  }
}

ShardedCluster::~ShardedCluster() = default;

void ShardedCluster::stopStreams() {
  assert(!sharded_->running());
  for (const auto& stream : streams_) {
    stream->task->stop();
    stream->client->stop();
  }
}

unsigned ShardedCluster::shardOfName(const std::string& nodeName) const {
  return sharded_->shardMap().shardOfRack(ShardMap::rackOfName(nodeName));
}

ShardedCluster::Stream* ShardedCluster::streamByUid(std::uint64_t uid) {
  const std::size_t index = static_cast<std::size_t>(uid) - 1;
  return uid >= 1 && index < streams_.size() ? streams_[index].get() : nullptr;
}

void ShardedCluster::pushLbConfig(std::uint64_t uid, const LbConfig& lb) {
  Stream* stream = streamByUid(uid);
  if (stream == nullptr) return;
  // The push crosses from the rack's control shard to the client's shard
  // one lookahead later — ALWAYS delayed, even when both live on the same
  // shard, so every shard count observes the identical push time.
  const SimTime at = sharded_->currentSim().now() + sharded_->lookahead();
  sharded_->postToShard(stream->shard, at, [client = stream->client.get(), lb] {
    (void)client->configureLb(lb);
  });
}

void ShardedCluster::evictStream(std::uint64_t uid) {
  Stream* stream = streamByUid(uid);
  if (stream == nullptr || stream->evicted) return;
  stream->evicted = true;
  const SimTime at = sharded_->currentSim().now() + sharded_->lookahead();
  sharded_->postToShard(stream->shard, at, [stream] {
    stream->task->stop();
    stream->client->stop();
  });
}

void ShardedCluster::armTpuFailure(const std::string& tpuId, SimTime at,
                                   SimDuration detectionDelay) {
  int rack = ShardMap::rackOfName(tpuId);
  if (rack < 0) rack = 0;
  RackControl* rc = racks_[static_cast<std::size_t>(rack)].get();
  // Fault roots are armed at setup, outside any firing cascade, so each is
  // emitter-tagged explicitly: their cascades (failure broadcast, recovery
  // pushes, evictions) are exactly the rare cross-shard control traffic the
  // adaptive window bound must account for.
  // Data-plane edge at t, on the TPU's owner shard: the service vanishes,
  // local clients fail over instantly, other shards notice +lookahead.
  sharded_->postToShard(
      rc->shard, at, [this, tpuId] { dataPlane_->removeService(tpuId); },
      /*emitter=*/true);
  // Control-plane edge at t + detectionDelay, same shard (the rack's
  // control plane is rack-local): pool removal + replan/evict.
  sharded_->postToShard(
      rc->shard, at + detectionDelay,
      [rc, tpuId] {
        Status removed = rc->pool.removeTpu(tpuId);
        if (!removed.isOk()) return;  // already failed by an earlier event
        (void)rc->recovery->onTpuFailure(tpuId);
      },
      /*emitter=*/true);
}

void ShardedCluster::armFaults(const FaultPlan& plan) {
  assert(!faultsArmed_ && "one fault plan per harness instance");
  faultsArmed_ = true;
  const SimTime base = sharded_->now();
  for (const FaultEvent& event : plan.events) {
    const SimTime at = base + event.at;
    switch (event.kind) {
      case FaultKind::kTpuCrash:
        armTpuFailure(event.target, at, plan.detectionDelay);
        break;
      case FaultKind::kNodeDeath:
        // The tRPi dies: every hosted TPU goes through the crash path.
        for (const auto& tpu : topology_->tpus()) {
          if (topology_->nodeOfTpu(tpu->id()) == event.target) {
            armTpuFailure(tpu->id(), at, plan.detectionDelay);
          }
        }
        break;
      case FaultKind::kTpuHang: {
        const unsigned shard = shardOfName(topology_->nodeOfTpu(event.target));
        sharded_->postToShard(
            shard, at,
            [this, id = event.target] {
              TpuService* service = dataPlane_->service(id);
              if (service != nullptr) service->setHung(true);
            },
            /*emitter=*/true);
        sharded_->postToShard(
            shard, at + event.duration,
            [this, id = event.target] {
              TpuService* service = dataPlane_->service(id);
              if (service != nullptr) service->setHung(false);
            },
            /*emitter=*/true);
        break;
      }
      case FaultKind::kTransportLoss:
      case FaultKind::kLatencySpike: {
        const double loss =
            event.kind == FaultKind::kTransportLoss ? event.magnitude : 0.0;
        const double multiplier =
            event.kind == FaultKind::kLatencySpike ? event.magnitude : 1.0;
        // One window per transport lane, applied by each lane's own shard
        // (lanes are shard-local state). Every stream's client is keyed
        // (streamToken = uid), so the drop decision for each message is a
        // pure function of (plan seed, stream uid, frame seq, attempt, hop)
        // — no per-lane draw order involved — and the loss pattern is
        // identical at every shard count, including for cross-shard frames.
        for (unsigned s = 0; s < sharded_->shardCount(); ++s) {
          sharded_->postToShard(
              s, at,
              [this, s, loss, multiplier, seed = plan.seed] {
                dataPlane_->transport().setFaultOnLane(s, loss, multiplier,
                                                       seed);
              },
              /*emitter=*/true);
          sharded_->postToShard(
              s, at + event.duration,
              [this, s] { dataPlane_->transport().clearFaultOnLane(s); },
              /*emitter=*/true);
        }
        break;
      }
    }
  }
}

ShardedCluster::StreamStats ShardedCluster::streamStats(
    std::size_t index) const {
  const Stream& stream = *streams_[index];
  StreamStats stats;
  stats.camera = stream.camera;
  stats.crossRack = stream.crossRack;
  stats.submitted = stream.client->submittedCount();
  stats.completed = stream.client->completedCount();
  stats.failovers = stream.client->failoverCount();
  if (stream.degrader != nullptr) {
    stats.degradeDowns = stream.degrader->stepDowns();
    stats.degradeUps = stream.degrader->stepUps();
  }
  for (std::size_t o = 0; o < kFrameOutcomeCount; ++o) {
    stats.outcomes[o] =
        stream.client->outcomeCount(static_cast<FrameOutcome>(o));
  }
  stats.digest = stream.digest;
  return stats;
}

std::uint64_t ShardedCluster::totalSubmitted() const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) n += s->client->submittedCount();
  return n;
}

std::uint64_t ShardedCluster::totalCompleted() const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) n += s->client->completedCount();
  return n;
}

std::uint64_t ShardedCluster::outcomeTotal(FrameOutcome outcome) const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) n += s->client->outcomeCount(outcome);
  return n;
}

std::uint64_t ShardedCluster::totalDegradeDowns() const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) {
    if (s->degrader != nullptr) n += s->degrader->stepDowns();
  }
  return n;
}

std::uint64_t ShardedCluster::totalDegradeUps() const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) {
    if (s->degrader != nullptr) n += s->degrader->stepUps();
  }
  return n;
}

std::uint64_t ShardedCluster::digest() const {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    h = fnvFold(h, i);
    h = fnvFold(h, streams_[i]->digest);
  }
  return h;
}

std::string ShardedCluster::metricsJson(bool withSimStats) const {
  std::string out = strCat("{\n  \"streams\": [");
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const StreamStats stats = streamStats(i);
    out += strCat(i == 0 ? "\n" : ",\n", "    {\"camera\": \"", stats.camera,
                  "\", \"crossRack\": ", stats.crossRack ? "true" : "false",
                  ", \"submitted\": ", stats.submitted,
                  ", \"completed\": ", stats.completed,
                  ", \"failovers\": ", stats.failovers,
                  ", \"degradeDowns\": ", stats.degradeDowns,
                  ", \"degradeUps\": ", stats.degradeUps, ", \"outcomes\": [");
    for (std::size_t o = 0; o < kFrameOutcomeCount; ++o) {
      out += strCat(o == 0 ? "" : ", ", stats.outcomes[o]);
    }
    out += strCat("], \"digest\": ", stats.digest, "}");
  }
  out += strCat("\n  ],\n  \"totalSubmitted\": ", totalSubmitted(),
                ",\n  \"totalCompleted\": ", totalCompleted(),
                ",\n  \"totalAdmissionRejected\": ",
                outcomeTotal(FrameOutcome::kAdmissionRejected),
                ",\n  \"totalDegradeDowns\": ", totalDegradeDowns(),
                ",\n  \"totalDegradeUps\": ", totalDegradeUps(),
                ",\n  \"digest\": ", digest());
  if (withSimStats) {
    // Opt-in: window counts vary with shard count / window mode and stall
    // time is wall-clock — none of it may leak into the byte-compared
    // default dump (see header).
    out += strCat(",\n  \"sim\": {\n    \"windows\": ",
                  sharded_->windowCount(),
                  ",\n    \"reliefWindows\": ", sharded_->reliefWindowCount(),
                  ",\n    \"adaptiveWindows\": ",
                  sharded_->adaptiveWindowCount(),
                  ",\n    \"crossShardMessages\": ",
                  sharded_->crossShardMessages(),
                  ",\n    \"eventsPerWindowHist\": [");
    const auto& hist = sharded_->eventsPerWindowHist();
    for (std::size_t b = 0; b < hist.size(); ++b) {
      out += strCat(b == 0 ? "" : ", ", hist[b]);
    }
    out += "],\n    \"perShardStallNanos\": [";
    const auto& stalls = sharded_->shardStallNanos();
    for (std::size_t s = 0; s < stalls.size(); ++s) {
      out += strCat(s == 0 ? "" : ", ", stalls[s]);
    }
    out += "]\n  }";
  }
  out += "\n}\n";
  return out;
}

}  // namespace microedge
