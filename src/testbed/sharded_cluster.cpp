#include "testbed/sharded_cluster.hpp"

#include <algorithm>
#include <cassert>

#include "core/extended_scheduler.hpp"
#include "models/zoo.hpp"
#include "sim/topology.hpp"
#include "util/backoff.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace microedge {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnvFold(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

std::uint64_t fnvFoldString(std::uint64_t h, const std::string& s) {
  for (char c : s) h = fnvFold(h, static_cast<unsigned char>(c));
  return fnvFold(h, s.size());
}

}  // namespace

// One camera stream: a PeriodicTask on the vRPi's shard submitting frames
// through the pod's TpuClient. `client` is declared before `task` so the
// task (which captures the stream) dies first at teardown.
struct ShardedCluster::Stream {
  std::string camera;     // vRPi node name
  int targetRack = 0;
  bool crossRack = false;
  unsigned shard = 0;
  std::uint64_t uid = 0;
  bool evicted = false;
  // Scenario churn state: a churn camera with joinAt > 0 is built (client,
  // task, rate control) at setup but admitted — units, loads, LB config —
  // by its join event mid-run; `joined` stays false if that admission
  // fails. A leave event drains the stream: task + client stop, in-flight
  // frames reach their terminal outcomes, units released after drainGrace.
  bool churn = false;
  bool joined = true;
  bool departed = false;
  SimDuration joinAt{};
  SimDuration leaveAt{};
  std::uint64_t deadlineMet = 0;  // completed within sloDeadline_
  std::uint64_t digest = kFnvOffset;
  std::unique_ptr<TpuClient> client;
  std::unique_ptr<PeriodicTask> task;
  // Period arbiter (scenario envelope x degrader rung); declared after
  // task (destroyed first; it references it).
  std::unique_ptr<StreamRateControl> rate;
  // Declared after rate/client (destroyed first; it references both). Null
  // unless degradation is enabled.
  std::unique_ptr<StreamDegrader> degrader;

  void fold(const FrameBreakdown& b) {
    std::uint64_t h = digest;
    h = fnvFold(h, b.frameId);
    h = fnvFold(h, static_cast<std::uint64_t>(b.outcome));
    h = fnvFold(h, b.failovers);
    // The serving TPU by *name*, not dense handle, so the witness is
    // independent of intern order.
    h = fnvFoldString(h, b.servedByName());
    h = fnvFold(h, static_cast<std::uint64_t>(
                       b.submitted.time_since_epoch().count()));
    h = fnvFold(h, static_cast<std::uint64_t>(
                       b.completed.time_since_epoch().count()));
    h = fnvFold(h, static_cast<std::uint64_t>(b.preprocess.count()));
    h = fnvFold(h, static_cast<std::uint64_t>(b.requestTransmit.count()));
    h = fnvFold(h, static_cast<std::uint64_t>(b.queueDelay.count()));
    h = fnvFold(h, static_cast<std::uint64_t>(b.inference.count()));
    h = fnvFold(h, static_cast<std::uint64_t>(b.responseTransmit.count()));
    h = fnvFold(h, static_cast<std::uint64_t>(b.postprocess.count()));
    digest = h;
  }
};

// One rack's control plane, living on the rack's owner shard: its own TPU
// pool (only this rack's TPUs), admission, reclamation and failure
// recovery. Control actions affecting clients on other shards are posted
// one lookahead later (the modelled control-push latency).
struct ShardedCluster::RackControl {
  int rack = 0;
  unsigned shard = 0;
  TpuPool pool;
  std::unique_ptr<AdmissionController> admission;
  std::unique_ptr<Reclamation> reclamation;
  std::unique_ptr<FailureRecovery> recovery;
  // SLO-attainment-triggered repacking (config.repack; null when off): the
  // supervisor ticks on the rack's own shard and replans through the same
  // weight-push path failure recovery uses.
  std::unique_ptr<Defragmenter> defrag;
  std::unique_ptr<RepackSupervisor> repackSupervisor;
  std::unique_ptr<PeriodicTask> repackTask;
};

ShardedCluster::ShardedCluster(ShardedClusterConfig config)
    : config_(std::move(config)), zoo_(zoo::standardZoo()) {
  if (config_.shards < 1) config_.shards = 1;
  if (config_.racks < 1) config_.racks = 1;
  const int racks = config_.racks;

  sharded_ = std::make_unique<ShardedSim>(config_.shards,
                                          config_.networkConfig.baseLatency,
                                          config_.windowBound);
  sharded_->setBarrierRelief(config_.barrierRelief);
  ShardMap& map = sharded_->shardMap();
  // Placement policy must be fixed before the first shardOfName() — the
  // topology factory below resolves each node's owner sim through it.
  map.setRackMapping(config_.rackMapping, racks);

  TopologySpec spec;
  spec.racks = racks;
  spec.tRpiCount = racks * config_.tRpisPerRack;
  spec.vRpiCount = racks * config_.vRpisPerRack;
  spec.tpusPerTRpi = config_.tpusPerTRpi;
  spec.tpuConfig = config_.tpuConfig;
  spec.networkConfig = config_.networkConfig;
  topology_ = std::make_unique<ClusterTopology>(
      [this](const std::string& name) -> Simulator& {
        return sharded_->shardSim(shardOfName(name));
      },
      zoo_, spec);
  for (const auto& node : topology_->nodes()) map.assignByName(node->name());

  dataPlane_ = std::make_unique<DataPlane>(*sharded_, *topology_, zoo_);

  // --- Per-rack control planes ---------------------------------------------
  racks_.reserve(static_cast<std::size_t>(racks));
  for (int r = 0; r < racks; ++r) {
    auto rc = std::make_unique<RackControl>();
    rc->rack = r;
    rc->shard = map.shardOfRack(r);
    AdmissionConfig admission;
    admission.strategy = config_.strategy;
    rc->admission =
        std::make_unique<AdmissionController>(rc->pool, zoo_, admission);
    rc->reclamation = std::make_unique<Reclamation>(*rc->admission);
    FailureRecovery::Callbacks callbacks;
    callbacks.loadModel = [this](const LoadCommand& command) {
      Status s = dataPlane_->executeLoad(command);
      if (s.isOk() || dataPlane_->service(command.tpuId) == nullptr) return s;
      dataPlane_->executeLoadWithRetry(command, ExpBackoff{}, {});
      return Status::ok();
    };
    callbacks.reconfigureLb = [this](std::uint64_t uid, const LbConfig& lb) {
      pushLbConfig(uid, lb);
    };
    callbacks.evictPod = [this](std::uint64_t uid, const Status&) {
      evictStream(uid);
    };
    rc->recovery = std::make_unique<FailureRecovery>(
        *rc->admission, *rc->reclamation, std::move(callbacks));
    racks_.push_back(std::move(rc));
  }
  for (const auto& tpu : topology_->tpus()) {
    int rack = ShardMap::rackOfName(tpu->id());
    if (rack < 0) rack = 0;
    Status added =
        racks_[rack]->pool.addTpu(tpu->id(), tpu->config().paramMemoryMb);
    assert(added.isOk());
    (void)added;
  }

  // --- Camera streams -------------------------------------------------------
  auto infoOr = zoo_.find(config_.model);
  if (!infoOr.isOk()) {
    setupStatus_ = infoOr.status();
    return;
  }
  const double units = config_.tpuUnits > 0.0
                           ? config_.tpuUnits
                           : zoo_.at(config_.model).tpuUnitsAt(config_.fps);
  streamUnits_ = units;
  const SimDuration nominalPeriod = secondsF(1.0 / config_.fps);
  const bool scenarioOn = config_.scenario.enabled;
  SimDuration quantum{};
  if (scenarioOn) {
    setupStatus_ = config_.scenario.spec.validate();
    if (!setupStatus_.isOk()) return;
    compiled_ = compileScenario(config_.scenario.spec, racks);
    quantum = SimDuration{config_.scenario.spec.quantumNs};
    sloDeadline_ = config_.scenario.sloDeadline > SimDuration::zero()
                       ? config_.scenario.sloDeadline
                       : config_.frameDeadline;
  } else {
    // Repack attainment accounting without a scenario judges against the
    // enforced frame deadline (zero keeps the counter off).
    sloDeadline_ = config_.frameDeadline;
  }
  // Scenario runs start on the tick lattice (rate_control.hpp): the period
  // is quantized up front and every stream's first fire lands on its own
  // uid residue, so retimed tick sets stay disjoint at every shard count.
  const SimDuration period =
      scenarioOn ? StreamRateControl::periodFor(nominalPeriod, 1.0, quantum)
                 : nominalPeriod;
  // Camera host list: every vRPi `streamsPerVRpi` times, then every tRPi
  // `streamsPerTRpi` times. The default (1, 0) is byte-identical to the
  // historical one-stream-per-vRPi workload — same hosts, uids and phases.
  std::vector<RpiNode*> cameras;
  {
    const std::vector<RpiNode*> vRpis = topology_->vRpis();
    const std::vector<RpiNode*> tRpis = topology_->tRpis();
    const int perV = config_.streamsPerVRpi < 0 ? 0 : config_.streamsPerVRpi;
    const int perT = config_.streamsPerTRpi < 0 ? 0 : config_.streamsPerTRpi;
    cameras.reserve(vRpis.size() * static_cast<std::size_t>(perV) +
                    tRpis.size() * static_cast<std::size_t>(perT));
    for (RpiNode* host : vRpis) {
      for (int k = 0; k < perV; ++k) cameras.push_back(host);
    }
    for (RpiNode* host : tRpis) {
      for (int k = 0; k < perT; ++k) cameras.push_back(host);
    }
  }
  // Churn cameras (scenario only) are appended after the base set so base
  // uids/phases are unchanged; each is placed round-robin over its tenant
  // rack's vRPis.
  struct ChurnHost {
    RpiNode* host = nullptr;
    SimDuration joinAt{};
    SimDuration leaveAt{};
  };
  std::vector<ChurnHost> churnCameras;
  if (scenarioOn && !compiled_.churn.empty()) {
    std::vector<std::vector<RpiNode*>> vRpisByRack(
        static_cast<std::size_t>(racks));
    for (RpiNode* host : topology_->vRpis()) {
      int r = ShardMap::rackOfName(host->name());
      if (r < 0) r = 0;
      vRpisByRack[static_cast<std::size_t>(r)].push_back(host);
    }
    std::vector<std::size_t> cursor(static_cast<std::size_t>(racks), 0);
    for (const ScenarioChurnCamera& cam : compiled_.churn) {
      const std::size_t r = static_cast<std::size_t>(cam.tenant % racks);
      if (vRpisByRack[r].empty()) {
        setupStatus_ =
            invalidArgument("scenario: churn tenant rack has no vRPis");
        return;
      }
      RpiNode* host = vRpisByRack[r][cursor[r]++ % vRpisByRack[r].size()];
      churnCameras.push_back({host, cam.joinAt, cam.leaveAt});
    }
  }
  const int base = static_cast<int>(cameras.size());
  const int total = base + static_cast<int>(churnCameras.size());
  setupStatus_ = validateScenario(static_cast<std::size_t>(total));
  if (!setupStatus_.isOk()) return;
  streams_.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    const bool isChurn = i >= base;
    RpiNode* camera =
        isChurn ? churnCameras[static_cast<std::size_t>(i - base)].host
                : cameras[static_cast<std::size_t>(i)];
    int rack = ShardMap::rackOfName(camera->name());
    if (rack < 0) rack = 0;
    const bool cross = !isChurn && racks > 1 && config_.crossRackStride > 0 &&
                       i % config_.crossRackStride == 0;
    const int targetRack = cross ? (rack + 1) % racks : rack;
    const std::uint64_t uid = static_cast<std::uint64_t>(i) + 1;

    auto stream = std::make_unique<Stream>();
    stream->camera = camera->name();
    stream->targetRack = targetRack;
    stream->crossRack = cross;
    stream->shard = shardOfName(camera->name());
    stream->uid = uid;
    if (isChurn) {
      const ChurnHost& churn = churnCameras[static_cast<std::size_t>(i - base)];
      stream->churn = true;
      stream->joinAt = churn.joinAt;
      stream->leaveAt = churn.leaveAt;
    }

    RackControl& rc = *racks_[static_cast<std::size_t>(targetRack)];
    LbConfig lb;
    // Churn cameras with a positive join time defer admission (units, weight
    // loads, LB config) to their join event; everyone else admits at setup.
    const bool admitNow = stream->joinAt == SimDuration::zero();
    if (admitNow) {
      auto admitted =
          rc.admission->admit(uid, config_.model, TpuUnit::fromDouble(units));
      if (!admitted.isOk()) {
        setupStatus_ = admitted.status();
        return;
      }
      for (const LoadCommand& load : admitted->loads) {
        Status s = dataPlane_->executeLoad(load);
        if (!s.isOk()) {
          setupStatus_ = s;
          return;
        }
      }
      lb = ExtendedScheduler::lbConfigFromAllocation(admitted->allocation);
      rc.reclamation->track(uid, std::move(admitted)->allocation);
    } else {
      stream->joined = false;
    }

    TpuClient::Config clientConfig;
    clientConfig.clientNode = camera->name();
    clientConfig.model = config_.model;
    clientConfig.spread = config_.spread;
    // Cross-rack streams run deadline-free: the deadline/shed/NACK paths are
    // the one place sharded timing legitimately differs from solo (see
    // header), so the differential witness keeps them rack-local only.
    clientConfig.frameDeadline =
        cross ? SimDuration::zero() : config_.frameDeadline;
    clientConfig.maxFailovers = config_.maxFailovers;
    clientConfig.health = config_.lbHealth;
    // Per-frame admission: with a zero deadline (cross-rack streams) the
    // estimate is zero and the ledger is never consulted.
    clientConfig.admission = config_.frameAdmission;
    // Keyed transport loss: the stream uid tokens every message, so which
    // frames a loss window drops is a pure function of (plan seed, uid,
    // frame seq) — identical at every shard count AND for batched ingest.
    clientConfig.streamToken = uid;
    stream->client = dataPlane_->makeClient(std::move(clientConfig));
    if (admitNow) {
      Status configured = stream->client->configureLb(lb);
      if (!configured.isOk()) {
        setupStatus_ = configured;
        return;
      }
    }

    Stream* raw = stream.get();
    Simulator& sim = sharded_->shardSim(stream->shard);
    // Emitter-tag only streams whose target rack lives on ANOTHER shard:
    // their frame cascades are the steady-state source of cross-shard sends,
    // so the adaptive window bound must see them (sim/sharded_sim.hpp).
    // Same-shard cross-rack streams stay untagged — tagging them would pin
    // the ECSB to every frame tick and erase the adaptive win.
    const bool crossShard =
        cross && map.shardOfRack(targetRack) != stream->shard;
    stream->task = std::make_unique<PeriodicTask>(
        sim, period,
        [this, raw] {
          (void)raw->client->invoke([this, raw](const FrameBreakdown& b) {
            raw->fold(b);
            if (sloDeadline_ > SimDuration::zero() &&
                b.outcome == FrameOutcome::kCompleted &&
                b.endToEnd() <= sloDeadline_) {
              ++raw->deadlineMet;
            }
            if (raw->degrader) raw->degrader->onFrame();
          });
        },
        crossShard);
    stream->rate = std::make_unique<StreamRateControl>(*stream->task,
                                                       nominalPeriod, quantum);
    if (config_.degradation.enabled) {
      stream->degrader = std::make_unique<StreamDegrader>(
          *stream->client, *stream->rate, config_.degradation);
    }
    // Stagger camera phases so no two frames in the cluster ever share a
    // timestamp: the global event order — and with it every breakdown — is
    // then independent of how shards interleave. Scenario runs snap the
    // staggered start onto the stream's lattice residue instead.
    const SimDuration phase = (period * (i + 1)) / (total + 1);
    if (admitNow) {
      stream->task->startAt(scenarioOn ? latticeTick(sim.now() + phase, uid)
                                       : sim.now() + phase);
    }
    streams_.push_back(std::move(stream));
  }
  if (scenarioOn) armScenarioTimeline();
  if (config_.repack.enabled) armRepackSupervisors();
}

ShardedCluster::~ShardedCluster() = default;

void ShardedCluster::stopStreams() {
  assert(!sharded_->running());
  for (const auto& stream : streams_) {
    stream->task->stop();
    stream->client->stop();
  }
}

unsigned ShardedCluster::shardOfName(const std::string& nodeName) const {
  return sharded_->shardMap().shardOfRack(ShardMap::rackOfName(nodeName));
}

ShardedCluster::Stream* ShardedCluster::streamByUid(std::uint64_t uid) {
  const std::size_t index = static_cast<std::size_t>(uid) - 1;
  return uid >= 1 && index < streams_.size() ? streams_[index].get() : nullptr;
}

void ShardedCluster::pushLbConfig(std::uint64_t uid, const LbConfig& lb) {
  Stream* stream = streamByUid(uid);
  if (stream == nullptr) return;
  // The push crosses from the rack's control shard to the client's shard
  // one lookahead later — ALWAYS delayed, even when both live on the same
  // shard, so every shard count observes the identical push time.
  const SimTime at = sharded_->currentSim().now() + sharded_->lookahead();
  sharded_->postToShard(stream->shard, at, [client = stream->client.get(), lb] {
    (void)client->configureLb(lb);
  });
}

void ShardedCluster::evictStream(std::uint64_t uid) {
  Stream* stream = streamByUid(uid);
  if (stream == nullptr || stream->evicted) return;
  stream->evicted = true;
  const SimTime at = sharded_->currentSim().now() + sharded_->lookahead();
  sharded_->postToShard(stream->shard, at, [stream] {
    stream->task->stop();
    stream->client->stop();
  });
}

void ShardedCluster::armTpuFailure(const std::string& tpuId, SimTime at,
                                   SimDuration detectionDelay) {
  int rack = ShardMap::rackOfName(tpuId);
  if (rack < 0) rack = 0;
  RackControl* rc = racks_[static_cast<std::size_t>(rack)].get();
  // Fault roots are armed at setup, outside any firing cascade, so each is
  // emitter-tagged explicitly: their cascades (failure broadcast, recovery
  // pushes, evictions) are exactly the rare cross-shard control traffic the
  // adaptive window bound must account for.
  // Data-plane edge at t, on the TPU's owner shard: the service vanishes,
  // local clients fail over instantly, other shards notice +lookahead.
  sharded_->postToShard(
      rc->shard, at, [this, tpuId] { dataPlane_->removeService(tpuId); },
      /*emitter=*/true);
  // Control-plane edge at t + detectionDelay, same shard (the rack's
  // control plane is rack-local): pool removal + replan/evict.
  sharded_->postToShard(
      rc->shard, at + detectionDelay,
      [rc, tpuId] {
        Status removed = rc->pool.removeTpu(tpuId);
        if (!removed.isOk()) return;  // already failed by an earlier event
        (void)rc->recovery->onTpuFailure(tpuId);
      },
      /*emitter=*/true);
}

void ShardedCluster::armFaults(const FaultPlan& plan) {
  assert(!faultsArmed_ && "one fault plan per harness instance");
  faultsArmed_ = true;
  const SimTime base = sharded_->now();
  for (const FaultEvent& event : plan.events) {
    const SimTime at = base + event.at;
    switch (event.kind) {
      case FaultKind::kTpuCrash:
        armTpuFailure(event.target, at, plan.detectionDelay);
        break;
      case FaultKind::kNodeDeath:
        // The tRPi dies: every hosted TPU goes through the crash path.
        for (const auto& tpu : topology_->tpus()) {
          if (topology_->nodeOfTpu(tpu->id()) == event.target) {
            armTpuFailure(tpu->id(), at, plan.detectionDelay);
          }
        }
        break;
      case FaultKind::kTpuHang: {
        const unsigned shard = shardOfName(topology_->nodeOfTpu(event.target));
        sharded_->postToShard(
            shard, at,
            [this, id = event.target] {
              TpuService* service = dataPlane_->service(id);
              if (service != nullptr) service->setHung(true);
            },
            /*emitter=*/true);
        sharded_->postToShard(
            shard, at + event.duration,
            [this, id = event.target] {
              TpuService* service = dataPlane_->service(id);
              if (service != nullptr) service->setHung(false);
            },
            /*emitter=*/true);
        break;
      }
      case FaultKind::kTransportLoss:
      case FaultKind::kLatencySpike: {
        const double loss =
            event.kind == FaultKind::kTransportLoss ? event.magnitude : 0.0;
        const double multiplier =
            event.kind == FaultKind::kLatencySpike ? event.magnitude : 1.0;
        // One window per transport lane, applied by each lane's own shard
        // (lanes are shard-local state). Every stream's client is keyed
        // (streamToken = uid), so the drop decision for each message is a
        // pure function of (plan seed, stream uid, frame seq, attempt, hop)
        // — no per-lane draw order involved — and the loss pattern is
        // identical at every shard count, including for cross-shard frames.
        for (unsigned s = 0; s < sharded_->shardCount(); ++s) {
          sharded_->postToShard(
              s, at,
              [this, s, loss, multiplier, seed = plan.seed] {
                dataPlane_->transport().setFaultOnLane(s, loss, multiplier,
                                                       seed);
              },
              /*emitter=*/true);
          sharded_->postToShard(
              s, at + event.duration,
              [this, s] { dataPlane_->transport().clearFaultOnLane(s); },
              /*emitter=*/true);
        }
        break;
      }
    }
  }
}

Status ShardedCluster::validateScenario(std::size_t totalStreams) const {
  if (!config_.scenario.enabled) return Status::ok();
  // The lattice argument (rate_control.hpp) needs every stream to share one
  // arrival-time constant: rack-local targets only (no cross-rack hops) and
  // vRPi camera hosts only (tRPi-hosted streams ride loopback lanes with a
  // different constant). Residues must also be unique, so the quantum has to
  // exceed the stream count.
  if (config_.crossRackStride != 0) {
    return invalidArgument(
        "scenario: requires rack-local streams (crossRackStride == 0)");
  }
  if (config_.streamsPerTRpi != 0) {
    return invalidArgument(
        "scenario: requires vRPi-hosted streams (streamsPerTRpi == 0)");
  }
  const std::int64_t quantum = config_.scenario.spec.quantumNs;
  if (quantum > 0 && static_cast<std::int64_t>(totalStreams) >= quantum) {
    return invalidArgument(
        "scenario: quantum_ns must exceed the stream count (uids are "
        "lattice residues)");
  }
  return Status::ok();
}

SimTime ShardedCluster::latticeTick(SimTime notBefore,
                                    std::uint64_t uid) const {
  const std::int64_t q = config_.scenario.spec.quantumNs;
  if (q <= 0) return notBefore;
  const std::int64_t at = notBefore.time_since_epoch().count();
  const std::int64_t next = (at / q + 1) * q;
  return SimTime{SimDuration{next + static_cast<std::int64_t>(uid)}};
}

void ShardedCluster::armScenarioTimeline() {
  scenarioBase_ = sharded_->now();
  // Envelope rate updates: one emitter-tagged event per (update, affected
  // stream) on the stream's owner shard. setEnvelope() retunes the task at
  // its next re-arm, so the retimed ticks stay on the stream's lattice
  // residue. All timeline events are scheduled here at setup, in stream
  // order, so their same-timestamp sequence is shard-count invariant.
  for (const ScenarioRateUpdate& update : compiled_.rateUpdates) {
    for (const auto& s : streams_) {
      if (update.tenant >= 0 && s->targetRack != update.tenant) continue;
      sharded_->postToShard(
          s->shard, scenarioBase_ + update.at,
          [rate = s->rate.get(), m = update.multiplier] {
            rate->setEnvelope(m);
          },
          /*emitter=*/true);
    }
  }
  // Churn joins and leaves. A leave stops the task and the client (in-flight
  // frames drain to their terminal outcomes and credit the ledger), then
  // releases the admitted units one drain-grace later on the rack's control
  // shard — which IS the stream's shard, scenario streams being rack-local.
  for (const auto& sp : streams_) {
    Stream* s = sp.get();
    if (s->joinAt > SimDuration::zero()) {
      sharded_->postToShard(
          s->shard, scenarioBase_ + s->joinAt, [this, s] { joinStream(s); },
          /*emitter=*/true);
    }
    if (s->leaveAt > SimDuration::zero()) {
      sharded_->postToShard(
          s->shard, scenarioBase_ + s->leaveAt,
          [s] {
            s->departed = true;
            s->task->stop();
            s->client->stop();
          },
          /*emitter=*/true);
      sharded_->postToShard(
          s->shard, scenarioBase_ + s->leaveAt + config_.scenario.drainGrace,
          [this, s] {
            if (s->joined) {
              (void)racks_[static_cast<std::size_t>(s->targetRack)]
                  ->reclamation->releaseNow(s->uid);
            }
          },
          /*emitter=*/true);
    }
  }
  // Correlated failures ride the standard fault-plan path: compile the
  // rack-scoped groups against this topology's tRPi names and arm them like
  // any hand-written plan.
  std::vector<std::vector<std::string>> tRpisByRack(
      static_cast<std::size_t>(config_.racks));
  for (RpiNode* node : topology_->tRpis()) {
    int r = ShardMap::rackOfName(node->name());
    if (r < 0) r = 0;
    tRpisByRack[static_cast<std::size_t>(r)].push_back(node->name());
  }
  FaultPlan plan = compileScenarioFaults(config_.scenario.spec, tRpisByRack);
  if (!plan.events.empty()) armFaults(plan);
}

void ShardedCluster::joinStream(Stream* stream) {
  // Runs as an event on the stream's shard — the rack's control shard, so
  // pool/admission state is touched only by its owner. A full rack (or one
  // gutted by a failure group) deterministically refuses the join: the
  // camera simply never starts.
  RackControl& rc = *racks_[static_cast<std::size_t>(stream->targetRack)];
  auto admitted = rc.admission->admit(stream->uid, config_.model,
                                      TpuUnit::fromDouble(streamUnits_));
  if (!admitted.isOk()) return;
  for (const LoadCommand& load : admitted->loads) {
    Status s = dataPlane_->executeLoad(load);
    if (!s.isOk() && dataPlane_->service(load.tpuId) != nullptr) {
      dataPlane_->executeLoadWithRetry(load, ExpBackoff{}, {});
    }
  }
  const LbConfig lb =
      ExtendedScheduler::lbConfigFromAllocation(admitted->allocation);
  rc.reclamation->track(stream->uid, std::move(admitted)->allocation);
  (void)stream->client->configureLb(lb);
  stream->joined = true;
  Simulator& sim = sharded_->shardSim(stream->shard);
  stream->task->startAt(latticeTick(sim.now(), stream->uid));
}

void ShardedCluster::armRepackSupervisors() {
  for (const auto& rcp : racks_) {
    RackControl* rc = rcp.get();
    Defragmenter::Callbacks callbacks;
    callbacks.loadModel = [this](const LoadCommand& command) {
      Status s = dataPlane_->executeLoad(command);
      if (s.isOk() || dataPlane_->service(command.tpuId) == nullptr) return s;
      dataPlane_->executeLoadWithRetry(command, ExpBackoff{}, {});
      return Status::ok();
    };
    callbacks.reconfigureLb = [this](std::uint64_t uid, const LbConfig& lb) {
      pushLbConfig(uid, lb);
    };
    rc->defrag = std::make_unique<Defragmenter>(
        *rc->admission, *rc->reclamation, std::move(callbacks));
    const int rack = rc->rack;
    rc->repackSupervisor = std::make_unique<RepackSupervisor>(
        config_.repack,
        [this, rack] {
          // Windowed attainment over the rack's own (rack-local) streams:
          // good = frames inside the SLO bound when one is set, else all
          // completions; total = every terminal outcome.
          RepackSupervisor::Sample sample;
          for (const auto& s : streams_) {
            if (s->targetRack != rack || s->crossRack) continue;
            sample.good += sloDeadline_ > SimDuration::zero()
                               ? s->deadlineMet
                               : s->client->completedCount();
            for (std::size_t o = 0; o < kFrameOutcomeCount; ++o) {
              const auto outcome = static_cast<FrameOutcome>(o);
              if (outcome == FrameOutcome::kInFlight) continue;
              sample.total += s->client->outcomeCount(outcome);
            }
          }
          return sample;
        },
        [rc] { return rc->defrag->replanAll(); });
    // The supervisor ticks on the rack's own shard; emitter-tagged because a
    // triggered repack pushes weights at +lookahead (a cross-shard cascade
    // root the adaptive window bound must see).
    Simulator& sim = sharded_->shardSim(rc->shard);
    rc->repackTask = std::make_unique<PeriodicTask>(
        sim, config_.repack.window,
        [supervisor = rc->repackSupervisor.get()] {
          (void)supervisor->onWindow();
        },
        /*emitter=*/true);
    rc->repackTask->startAt(sim.now() + config_.repack.window);
  }
}

Status ShardedCluster::runScenario() {
  if (!setupStatus_.isOk()) return setupStatus_;
  if (!config_.scenario.enabled) {
    return failedPrecondition("runScenario: scenario not enabled");
  }
  if (scenarioRan_) {
    return failedPrecondition("runScenario: already ran");
  }
  scenarioRan_ = true;
  for (std::size_t p = 0; p < compiled_.phaseEnds.size(); ++p) {
    const SimTime target = scenarioBase_ + compiled_.phaseEnds[p];
    const SimDuration remaining = target - sharded_->now();
    if (remaining > SimDuration::zero()) sharded_->runFor(remaining);
    samplePhase(p);
  }
  return Status::ok();
}

void ShardedCluster::samplePhase(std::size_t phase) {
  // Cumulative snapshot at the phase boundary (every shard is barrier-synced
  // here: runScenario() only samples between runFor() segments), then delta
  // against the previous boundary.
  PhaseStats cum;
  cum.name = compiled_.phaseNames[phase];
  cum.end = compiled_.phaseEnds[phase];
  const std::size_t rungs =
      std::max<std::size_t>(1, config_.degradation.ladder.size());
  cum.rungOccupancy.assign(rungs, 0);
  for (const auto& s : streams_) {
    cum.submitted += s->client->submittedCount();
    cum.completed += s->client->completedCount();
    cum.deadlineMet += s->deadlineMet;
    cum.admissionRejected +=
        s->client->outcomeCount(FrameOutcome::kAdmissionRejected);
    cum.timedOut += s->client->outcomeCount(FrameOutcome::kTimedOut);
    cum.shed += s->client->outcomeCount(FrameOutcome::kShed);
    if (s->degrader != nullptr) {
      cum.degradeDowns += s->degrader->stepDowns();
      cum.degradeUps += s->degrader->stepUps();
    }
    if (s->task->running()) {
      ++cum.activeStreams;
      std::size_t rung = s->degrader != nullptr ? s->degrader->rung() : 0;
      if (rung >= rungs) rung = rungs - 1;
      ++cum.rungOccupancy[rung];
    }
  }
  cum.repacks = totalRepacks();

  PhaseStats delta = cum;  // name/end/activeStreams/rungOccupancy stay as-is
  delta.submitted -= phaseCursor_.submitted;
  delta.completed -= phaseCursor_.completed;
  delta.deadlineMet -= phaseCursor_.deadlineMet;
  delta.admissionRejected -= phaseCursor_.admissionRejected;
  delta.timedOut -= phaseCursor_.timedOut;
  delta.shed -= phaseCursor_.shed;
  delta.degradeDowns -= phaseCursor_.degradeDowns;
  delta.degradeUps -= phaseCursor_.degradeUps;
  delta.repacks -= phaseCursor_.repacks;
  const SimDuration start =
      phase == 0 ? SimDuration::zero() : compiled_.phaseEnds[phase - 1];
  const double seconds =
      static_cast<double>((cum.end - start).count()) / 1e9;
  delta.attainment = delta.completed > 0
                         ? static_cast<double>(delta.deadlineMet) /
                               static_cast<double>(delta.completed)
                         : 1.0;
  delta.goodputFps =
      seconds > 0.0 ? static_cast<double>(delta.deadlineMet) / seconds : 0.0;
  phases_.push_back(std::move(delta));
  phaseCursor_ = std::move(cum);
}

ShardedCluster::StreamStats ShardedCluster::streamStats(
    std::size_t index) const {
  const Stream& stream = *streams_[index];
  StreamStats stats;
  stats.camera = stream.camera;
  stats.crossRack = stream.crossRack;
  stats.churn = stream.churn;
  stats.joined = stream.joined;
  stats.departed = stream.departed;
  stats.deadlineMet = stream.deadlineMet;
  stats.submitted = stream.client->submittedCount();
  stats.completed = stream.client->completedCount();
  stats.failovers = stream.client->failoverCount();
  if (stream.degrader != nullptr) {
    stats.degradeDowns = stream.degrader->stepDowns();
    stats.degradeUps = stream.degrader->stepUps();
  }
  for (std::size_t o = 0; o < kFrameOutcomeCount; ++o) {
    stats.outcomes[o] =
        stream.client->outcomeCount(static_cast<FrameOutcome>(o));
  }
  stats.digest = stream.digest;
  return stats;
}

std::uint64_t ShardedCluster::totalSubmitted() const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) n += s->client->submittedCount();
  return n;
}

std::uint64_t ShardedCluster::totalCompleted() const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) n += s->client->completedCount();
  return n;
}

std::uint64_t ShardedCluster::outcomeTotal(FrameOutcome outcome) const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) n += s->client->outcomeCount(outcome);
  return n;
}

std::uint64_t ShardedCluster::totalDegradeDowns() const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) {
    if (s->degrader != nullptr) n += s->degrader->stepDowns();
  }
  return n;
}

std::uint64_t ShardedCluster::totalDegradeUps() const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) {
    if (s->degrader != nullptr) n += s->degrader->stepUps();
  }
  return n;
}

std::uint64_t ShardedCluster::totalDeadlineMet() const {
  std::uint64_t n = 0;
  for (const auto& s : streams_) n += s->deadlineMet;
  return n;
}

std::uint64_t ShardedCluster::totalRepacks() const {
  std::uint64_t n = 0;
  for (const auto& rc : racks_) {
    if (rc->repackSupervisor != nullptr) {
      n += rc->repackSupervisor->repacksTriggered();
    }
  }
  return n;
}

std::uint64_t ShardedCluster::digest() const {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    h = fnvFold(h, i);
    h = fnvFold(h, streams_[i]->digest);
  }
  return h;
}

std::string ShardedCluster::metricsJson(bool withSimStats) const {
  std::string out = strCat("{\n  \"streams\": [");
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const StreamStats stats = streamStats(i);
    out += strCat(i == 0 ? "\n" : ",\n", "    {\"camera\": \"", stats.camera,
                  "\", \"crossRack\": ", stats.crossRack ? "true" : "false",
                  ", \"submitted\": ", stats.submitted,
                  ", \"completed\": ", stats.completed,
                  ", \"failovers\": ", stats.failovers,
                  ", \"degradeDowns\": ", stats.degradeDowns,
                  ", \"degradeUps\": ", stats.degradeUps, ", \"outcomes\": [");
    for (std::size_t o = 0; o < kFrameOutcomeCount; ++o) {
      out += strCat(o == 0 ? "" : ", ", stats.outcomes[o]);
    }
    out += strCat("], \"digest\": ", stats.digest, "}");
  }
  out += strCat("\n  ],\n  \"totalSubmitted\": ", totalSubmitted(),
                ",\n  \"totalCompleted\": ", totalCompleted(),
                ",\n  \"totalAdmissionRejected\": ",
                outcomeTotal(FrameOutcome::kAdmissionRejected),
                ",\n  \"totalDegradeDowns\": ", totalDegradeDowns(),
                ",\n  \"totalDegradeUps\": ", totalDegradeUps(),
                ",\n  \"digest\": ", digest());
  if (config_.scenario.enabled) {
    // Scenario runs append the per-phase windowed metrics series; like the
    // rest of the dump it is pure counter arithmetic, so it sits on the
    // byte-compared differential path.
    out += strCat(",\n  \"scenario\": {\n    \"name\": \"",
                  config_.scenario.spec.name, "\",\n    \"fingerprint\": \"",
                  config_.scenario.spec.fingerprint(),
                  "\",\n    \"totalDeadlineMet\": ", totalDeadlineMet(),
                  ",\n    \"totalRepacks\": ", totalRepacks(),
                  ",\n    \"phases\": [");
    for (std::size_t p = 0; p < phases_.size(); ++p) {
      const PhaseStats& ph = phases_[p];
      out += strCat(p == 0 ? "\n" : ",\n", "      {\"name\": \"", ph.name,
                    "\", \"endMs\": ", ph.end.count() / 1000000,
                    ", \"submitted\": ", ph.submitted,
                    ", \"completed\": ", ph.completed,
                    ", \"deadlineMet\": ", ph.deadlineMet,
                    ", \"admissionRejected\": ", ph.admissionRejected,
                    ", \"timedOut\": ", ph.timedOut, ", \"shed\": ", ph.shed,
                    ", \"degradeDowns\": ", ph.degradeDowns,
                    ", \"degradeUps\": ", ph.degradeUps,
                    ", \"repacks\": ", ph.repacks,
                    ", \"activeStreams\": ", ph.activeStreams,
                    ", \"attainment\": ", jsonFormatDouble(ph.attainment),
                    ", \"goodputFps\": ", jsonFormatDouble(ph.goodputFps),
                    ", \"rungOccupancy\": [");
      for (std::size_t r = 0; r < ph.rungOccupancy.size(); ++r) {
        out += strCat(r == 0 ? "" : ", ", ph.rungOccupancy[r]);
      }
      out += "]}";
    }
    out += "\n    ]\n  }";
  }
  if (withSimStats) {
    // Opt-in: window counts vary with shard count / window mode and stall
    // time is wall-clock — none of it may leak into the byte-compared
    // default dump (see header).
    out += strCat(",\n  \"sim\": {\n    \"windows\": ",
                  sharded_->windowCount(),
                  ",\n    \"reliefWindows\": ", sharded_->reliefWindowCount(),
                  ",\n    \"adaptiveWindows\": ",
                  sharded_->adaptiveWindowCount(),
                  ",\n    \"crossShardMessages\": ",
                  sharded_->crossShardMessages(),
                  ",\n    \"eventsPerWindowHist\": [");
    const auto& hist = sharded_->eventsPerWindowHist();
    for (std::size_t b = 0; b < hist.size(); ++b) {
      out += strCat(b == 0 ? "" : ", ", hist[b]);
    }
    out += "],\n    \"perShardStallNanos\": [";
    const auto& stalls = sharded_->shardStallNanos();
    for (std::size_t s = 0; s < stalls.size(); ++s) {
      out += strCat(s == 0 ? "" : ", ", stalls[s]);
    }
    out += "]\n  }";
  }
  out += "\n}\n";
  return out;
}

}  // namespace microedge
