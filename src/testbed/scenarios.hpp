#pragma once

// Reusable experiment drivers behind the bench binaries (Figs. 5/6,
// Table 1). Each driver builds a fresh Testbed, runs one configuration and
// returns the measured point, so benches stay declarative.

#include <string>
#include <vector>

#include "testbed/testbed.hpp"
#include "trace/maf.hpp"
#include "trace/replay.hpp"

namespace microedge {

// ---- Fig. 5: scalability & utilization -------------------------------------

struct ScalabilityScenario {
  SchedulingMode mode = SchedulingMode::kMicroEdgeWp;
  CameraDeployment deployment;  // template; names are generated
  // BodyPix's bare-metal baseline attaches 2 TPUs per RPi.
  int tpusPerNode = 1;
  int cameraUpperBound = 64;
  SimDuration horizon = seconds(40);
  std::uint64_t seed = 7;
};

struct ScalabilityPoint {
  int tpuCount = 0;
  int camerasSupported = 0;     // deployments accepted by admission
  double meanUtilization = 0.0; // measured mean TPU utilization
  bool sloMet = false;          // every admitted stream met its SLO
  double minAchievedFps = 0.0;
};

// Deploys cameras (from the template) until admission rejects one, then runs
// the horizon and measures utilization + SLO compliance.
ScalabilityPoint runScalabilityPoint(const ScalabilityScenario& scenario,
                                     int tpuCount);

// Admission capacity only (no data-plane run): how many cameras fit.
int admissionCapacity(const ScalabilityScenario& scenario, int tpuCount);

// ---- Table 1: cost to support a target camera count ------------------------

struct CostPoint {
  std::string label;
  int tpus = 0;
  int rpis = 0;
  double totalCost = 0.0;
};

// Minimum TPU count (searched) for `cameras` instances of the deployment
// under the given mode; RPi count follows the paper's accounting (one RPi
// per camera pipeline, as in Coral-Pie's detection stage).
CostPoint costToSupport(SchedulingMode mode, const CameraDeployment& deployment,
                        int cameras);

// ---- Fig. 6: trace-driven study ---------------------------------------------

struct TraceScenarioConfig {
  TestbedConfig testbed;
  MafTraceConfig trace;
  // Downsizing cap in TPU units (the paper trims the trace to cluster
  // capacity; a factor above the TPU count keeps contention meaningful).
  double capacityUnits = 7.5;
  SimDuration sampleWindow = minutes(1);
};

struct TraceRunResult {
  std::vector<double> utilizationPerWindow;  // cluster-mean per window
  std::vector<int> activePerWindow;          // cameras served per window
  std::size_t attempted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  SloReport slo;
};

TraceRunResult runTraceScenario(const TraceScenarioConfig& config);

}  // namespace microedge
