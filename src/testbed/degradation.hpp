#pragma once

// Adaptive per-stream degradation (DESIGN.md §14, loop 2).
//
// When a stream's target shares are saturated, the admission ledger (and,
// without it, deadline shedding) turns the excess into rejected/late frames.
// Dropping every fourth frame of a 15 fps stream is strictly worse for a
// vision pipeline than running the whole stream at a clean 11 fps: the
// controller below trades frame *rate* for frame *reliability* by stepping
// the stream's submit period down a discrete fps-multiplier ladder under
// sustained pressure, and back up with hysteresis once the pressure clears.
//
// The controller is deliberately event-free: it piggybacks on the stream's
// completion callback (onFrame() after every terminal outcome) and evaluates
// one window every `windowFrames` terminals, retuning the stream's period
// through its StreamRateControl arbiter (rate_control.hpp), which composes
// the rung multiplier with the scenario engine's rate envelope and applies
// the one PeriodicTask::setPeriod — effective at the next re-arm. No timer
// of its own means no new event timestamps — a degradation-off run's event
// schedule is untouched byte for byte — and the whole loop is a pure
// function of the stream's own outcome sequence, so a run is exactly
// replayable from its seed. (Cross-shard-count byte-identity with
// degradation on needs the arbiter's quantum lattice — see
// rate_control.hpp; without it, a degraded stream's re-timed frames may
// collide with another stream's timestamps, and same-timestamp tie order is
// a per-shard-count property.)
//
// Hysteresis sketch (why it cannot flap): stepping down requires
// `sustainWindows` consecutive windows with pressure >= stepDownPressure;
// stepping up requires `coolDownWindows` consecutive windows with pressure
// below it, and both counters reset on any opposite-sign window. A step in
// either direction therefore moves at most one rung per
// min(sustainWindows, coolDownWindows) windows, and an oscillation
// down-then-up needs the pressure signal itself to cross the threshold in
// both directions at least `sustainWindows + coolDownWindows` windows apart
// — bounded-frequency by construction. The ladder is finite, so the rung
// sequence converges whenever the pressure signal settles on one side of
// the threshold.

#include <cstdint>
#include <vector>

#include "dataplane/tpu_client.hpp"
#include "sim/simulator.hpp"
#include "testbed/rate_control.hpp"
#include "util/time.hpp"

namespace microedge {

struct DegradationConfig {
  bool enabled = false;
  // fps multipliers, descending from full rate. Rung r runs the stream at
  // nominal fps * ladder[r].
  std::vector<double> ladder = {1.0, 0.75, 0.5, 1.0 / 3.0, 0.25};
  // Terminal outcomes per evaluation window.
  std::uint32_t windowFrames = 30;
  // Window pressure (bad terminals / window terminals) at or above which the
  // window counts toward stepping down. Bad = admission-rejected + timed-out
  // + shed: the outcomes overload produces.
  double stepDownPressure = 0.1;
  std::uint32_t sustainWindows = 2;
  std::uint32_t coolDownWindows = 4;
};

class StreamDegrader {
 public:
  // `rate` is the stream's period arbiter (the degrader owns the degrade
  // input; the scenario envelope composes through the same arbiter). The
  // degrader never starts/stops the task, only retunes it.
  StreamDegrader(TpuClient& client, StreamRateControl& rate,
                 DegradationConfig config)
      : client_(client), rate_(rate), config_(std::move(config)) {
    if (config_.ladder.empty()) config_.ladder.push_back(1.0);
  }

  // Hook this into the stream's completion callback (after every terminal
  // outcome, not just completions).
  void onFrame();

  std::size_t rung() const { return rung_; }
  double multiplier() const { return config_.ladder[rung_]; }
  std::uint64_t stepDowns() const { return stepDowns_; }
  std::uint64_t stepUps() const { return stepUps_; }
  std::uint64_t windowsObserved() const { return windowsObserved_; }
  const DegradationConfig& config() const { return config_; }

 private:
  void applyRung();

  TpuClient& client_;
  StreamRateControl& rate_;
  DegradationConfig config_;
  std::uint64_t terminals_ = 0;
  // Previous window's cumulative bad-outcome count (admission-rejected +
  // timed-out + shed).
  std::uint64_t prevBad_ = 0;
  std::size_t rung_ = 0;
  std::uint32_t pressStreak_ = 0;
  std::uint32_t cleanStreak_ = 0;
  std::uint64_t stepDowns_ = 0;
  std::uint64_t stepUps_ = 0;
  std::uint64_t windowsObserved_ = 0;
};

}  // namespace microedge
