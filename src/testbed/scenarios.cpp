#include "testbed/scenarios.hpp"

#include <cassert>

#include "cluster/cost.hpp"
#include "util/strings.hpp"

namespace microedge {

namespace {

TestbedConfig scalabilityTestbedConfig(const ScalabilityScenario& scenario,
                                       int tpuCount) {
  assert(tpuCount % scenario.tpusPerNode == 0);
  TestbedConfig config;
  config.mode = scenario.mode;
  config.seed = scenario.seed;
  config.topology.tRpiCount = tpuCount / scenario.tpusPerNode;
  config.topology.tpusPerTRpi = scenario.tpusPerNode;
  // Enough vanilla RPis to host every candidate application pod.
  config.topology.vRpiCount = scenario.cameraUpperBound / 2 + 8;
  config.utilizationWindow = seconds(10);
  return config;
}

int deployUntilRejected(Testbed& testbed, const ScalabilityScenario& scenario) {
  int count = 0;
  for (int i = 0; i < scenario.cameraUpperBound; ++i) {
    CameraDeployment deployment = scenario.deployment;
    deployment.name = strCat("cam-", i);
    auto result = testbed.deployCamera(deployment);
    if (!result.isOk()) break;
    ++count;
  }
  return count;
}

}  // namespace

int admissionCapacity(const ScalabilityScenario& scenario, int tpuCount) {
  Testbed testbed(scalabilityTestbedConfig(scenario, tpuCount));
  return deployUntilRejected(testbed, scenario);
}

ScalabilityPoint runScalabilityPoint(const ScalabilityScenario& scenario,
                                     int tpuCount) {
  Testbed testbed(scalabilityTestbedConfig(scenario, tpuCount));
  ScalabilityPoint point;
  point.tpuCount = tpuCount;
  point.camerasSupported = deployUntilRejected(testbed, scenario);
  testbed.run(scenario.horizon);
  point.meanUtilization = testbed.meanTpuUtilization();
  SloReport slo = testbed.sloReport();
  point.sloMet = slo.allMet();
  point.minAchievedFps = slo.minAchievedFps;
  return point;
}

CostPoint costToSupport(SchedulingMode mode,
                        const CameraDeployment& deployment, int cameras) {
  CostPoint point;
  point.label = std::string(toString(mode));
  // The paper's Table 1 accounting: one RPi per camera pipeline (the
  // detection stage's host), TPUs from the scheduler's packing.
  point.rpis = cameras;

  ScalabilityScenario scenario;
  scenario.mode = mode;
  scenario.deployment = deployment;
  scenario.cameraUpperBound = cameras;
  // Smallest TPU count whose admission capacity reaches the target.
  for (int tpus = 1; tpus <= 4 * cameras; ++tpus) {
    if (admissionCapacity(scenario, tpus) >= cameras) {
      point.tpus = tpus;
      break;
    }
  }
  CostModel cost;
  point.totalCost = cost.clusterCost(point.rpis, point.tpus);
  return point;
}

TraceRunResult runTraceScenario(const TraceScenarioConfig& config) {
  TestbedConfig testbedConfig = config.testbed;
  testbedConfig.utilizationWindow = config.sampleWindow;
  Testbed testbed(testbedConfig);
  MafTraceGenerator generator(config.trace);
  std::vector<TraceEvent> events = generator.generate(testbed.zoo());
  events = downsizeToCapacity(std::move(events), config.capacityUnits,
                              config.trace.horizon);

  TraceReplayer::Callbacks callbacks;
  callbacks.onCreate = [&testbed](const TraceEvent& ev) {
    CameraDeployment deployment;
    deployment.name = ev.instanceName;
    deployment.model = ev.model;
    deployment.fps = ev.fps;
    deployment.tpuUnits = ev.tpuUnits;
    return testbed.deployCamera(deployment).isOk();
  };
  callbacks.onDelete = [&testbed](const TraceEvent& ev) {
    Status s = testbed.removeCamera(ev.instanceName);
    (void)s;
  };
  TraceReplayer replayer(testbed.sim(), std::move(events),
                         std::move(callbacks));
  replayer.scheduleAll(config.trace.horizon);

  TraceRunResult result;
  PeriodicTask activeSampler(testbed.sim(), config.sampleWindow, [&] {
    result.activePerWindow.push_back(
        static_cast<int>(testbed.liveCameraCount()));
  });
  activeSampler.start();
  testbed.run(config.trace.horizon);
  activeSampler.stop();

  for (const auto& sample : testbed.utilization().samples()) {
    result.utilizationPerWindow.push_back(sample.mean);
  }
  result.attempted = replayer.attempted();
  result.accepted = replayer.accepted();
  result.rejected = replayer.rejected();
  result.slo = testbed.sloReport();
  return result;
}

}  // namespace microedge
