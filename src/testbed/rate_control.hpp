#pragma once

// Per-stream frame-rate arbitration (DESIGN.md §15).
//
// Two controllers retune a camera stream's PeriodicTask period at runtime:
// the scenario engine's rate *envelope* (diurnal curve x flash crowd, an fps
// multiplier per tenant) and the §14 StreamDegrader's fps-ladder rung. Both
// used to call setPeriod() directly, so whichever wrote last silently erased
// the other. This arbiter owns the one setPeriod() call site and composes
// the two inputs explicitly:
//
//   effective period = quantize(nominal / (envelope * degrade))
//
// Each setter stores its own multiplier and recomputes from both — an
// envelope update and a rung change landing in the same window both survive,
// in either order (the no-lost-update property the unit test pins).
//
// Quantization (the scenario determinism lattice): with a nonzero `quantum`
// Q, every effective period is rounded to a positive multiple of Q. The
// sharded harness starts stream uid u's first tick at a timestamp congruent
// to u (mod Q); since PeriodicTask re-arms at lastFire + period and every
// period is ≡ 0 (mod Q), the stream's ticks stay on residue u forever —
// through any sequence of envelope/degrader retunes. Tick timestamps of
// distinct streams therefore never collide, which is what keeps scenario
// runs byte-identical across shard counts even as per-stream rates diverge
// (same-timestamp tie order is the one per-shard-count property in the
// event engine). quantum == 0 disables rounding: the effective period is
// llround(nominal / multiplier), bit-identical to the historical
// StreamDegrader::applyRung formula when the envelope is 1.

#include <cmath>
#include <cstdint>

#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace microedge {

class StreamRateControl {
 public:
  // `task` is the stream's frame source; `nominalPeriod` its full-rate
  // period. The arbiter never starts/stops the task, only retunes it.
  StreamRateControl(PeriodicTask& task, SimDuration nominalPeriod,
                    SimDuration quantum = {})
      : task_(task), nominal_(nominalPeriod), quantum_(quantum) {}

  StreamRateControl(const StreamRateControl&) = delete;
  StreamRateControl& operator=(const StreamRateControl&) = delete;

  // Scenario rate envelope (fps multiplier; 1.0 = nominal rate).
  void setEnvelope(double multiplier) {
    envelope_ = multiplier > 0.0 ? multiplier : 1.0;
    apply();
  }
  // Degradation-ladder rung (fps multiplier; 1.0 = full rate).
  void setDegrade(double multiplier) {
    degrade_ = multiplier > 0.0 ? multiplier : 1.0;
    apply();
  }

  double envelope() const { return envelope_; }
  double degrade() const { return degrade_; }
  SimDuration nominalPeriod() const { return nominal_; }
  SimDuration quantum() const { return quantum_; }
  SimDuration effectivePeriod() const {
    return periodFor(nominal_, envelope_ * degrade_, quantum_);
  }

  // The shared rounding rule, exposed so the harness can pre-quantize the
  // period it constructs the PeriodicTask with (the arbiter only writes on
  // later retunes).
  static SimDuration periodFor(SimDuration nominal, double fpsMultiplier,
                               SimDuration quantum) {
    std::int64_t ns = std::llround(static_cast<double>(nominal.count()) /
                                   fpsMultiplier);
    const std::int64_t q = quantum.count();
    if (q > 0) {
      // Round to the nearest positive multiple of the quantum.
      ns = (ns + q / 2) / q * q;
      if (ns < q) ns = q;
    }
    return SimDuration{ns};
  }

 private:
  void apply() { task_.setPeriod(effectivePeriod()); }

  PeriodicTask& task_;
  SimDuration nominal_;
  SimDuration quantum_;
  double envelope_ = 1.0;
  double degrade_ = 1.0;
};

}  // namespace microedge
