#pragma once

// Offline admission planner.
//
// Operators deciding how many TPUs a site needs (or whether a new tenant
// fits an existing cluster) shouldn't have to deploy to find out. The
// planner consumes a scenario document — cluster size, scheduler
// configuration, ordered pod list — and produces exactly the placement the
// extended scheduler would make: per-pod TPU shares (the LBS weights),
// per-TPU residual capacity and resident models, and a reason string for
// every rejection.
//
// Scenario YAML:
//
//   cluster:
//     tpus: 6
//     param-memory-mb: 6.9        # optional
//   scheduler:
//     mode: microedge-wp          # baseline | microedge | microedge-wp
//     co-compile: true            # optional
//     strategy: first-fit         # first-fit | next-fit | best-fit | worst-fit
//   pods:
//     - name: gate-cam
//       model: ssd-mobilenet-v2
//       fps: 15                   # tpu-units profiled from the zoo, or:
//     - name: lobby-seg
//       model: bodypix-mobilenet-v1
//       tpu-units: 1.2            # explicit duty cycle

#include <string>
#include <vector>

#include "core/admission.hpp"
#include "models/registry.hpp"
#include "testbed/testbed.hpp"
#include "util/status.hpp"

namespace microedge {

struct PlannerScenario {
  int tpus = 6;
  double paramMemoryMb = 6.9;
  SchedulingMode mode = SchedulingMode::kMicroEdgeWp;
  bool coCompile = true;
  PackingStrategy strategy = PackingStrategy::kFirstFit;

  struct PodRequest {
    std::string name;
    std::string model;
    double fps = 15.0;
    double tpuUnits = 0.0;  // 0 => profile from the zoo at `fps`
  };
  std::vector<PodRequest> pods;
};

// Parses and validates a scenario (models must exist in the registry).
StatusOr<PlannerScenario> scenarioFromYaml(const std::string& yamlText,
                                           const ModelRegistry& registry);

struct PlannerResult {
  struct Placement {
    std::string pod;
    std::string model;
    double units = 0.0;
    bool accepted = false;
    std::vector<TpuShare> shares;  // empty when rejected
    std::string reason;            // rejection reason
  };
  struct TpuRow {
    std::string id;
    double load = 0.0;
    double usedParamMb = 0.0;
    std::vector<std::string> models;
  };

  std::vector<Placement> placements;
  std::vector<TpuRow> tpus;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
};

// Replays the pod list through the chosen allocator (pure control plane, no
// simulation) and reports the resulting plan.
PlannerResult planScenario(const PlannerScenario& scenario,
                           const ModelRegistry& registry);

// Human-readable plan (placement table + per-TPU summary).
std::string renderPlan(const PlannerScenario& scenario,
                       const PlannerResult& result);

// Goes beyond planning: deploys the scenario's pods on a full simulated
// cluster, streams frames for `horizon`, and reports what the plan
// *delivers* — per-stream achieved FPS and latency, SLO compliance and
// measured TPU utilization.
struct SimulationOutcome {
  struct StreamRow {
    std::string pod;
    bool admitted = false;
    double achievedFps = 0.0;
    double p99LatencyMs = 0.0;
    bool sloMet = false;
  };
  std::vector<StreamRow> streams;
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  double meanTpuUtilization = 0.0;
};

SimulationOutcome simulateScenario(const PlannerScenario& scenario,
                                   SimDuration horizon);

std::string renderSimulation(const PlannerScenario& scenario,
                             const SimulationOutcome& outcome,
                             SimDuration horizon);

}  // namespace microedge
