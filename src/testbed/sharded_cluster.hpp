#pragma once

// City-scale experiment harness over the sharded simulation
// (sim/sharded_sim.hpp).
//
// Where Testbed assembles the full single-Simulator MicroEdge stack, this
// harness assembles a rack-structured cluster across a ShardedSim: every
// rack's nodes, TPU Services, cameras AND control plane (TpuPool +
// AdmissionController + Reclamation + FailureRecovery) live on the rack's
// owner shard, so steady-state traffic is shard-local and only genuinely
// cross-rack interactions — cross-rack streams, failure-detection
// broadcasts, weight pushes — ride the conservative-lookahead mailboxes.
//
// Workload: one camera stream per vRPi, each a PeriodicTask on the vRPi's
// shard with staggered phases (camera i of N starts at (i+1) * period /
// (N+1)) so no two frames share a timestamp and the event order — hence
// every breakdown — is identical at every shard count. Streams target
// their own rack's TPUs by default; with `crossRackStride` = k, every k-th
// camera instead targets the NEXT rack's TPUs (a deliberately cross-shard
// pipeline) and runs without a deadline, keeping the deadline/shed/NACK
// machinery — whose cross-shard timing legitimately differs from solo —
// off the differential path.
//
// Chaos: a FaultPlan is pre-armed at setup onto each event's owner shard
// (TPU crash -> removeService at t + pool/recovery at t+detectionDelay on
// the TPU's shard; hang -> setHung window; transport faults -> one
// per-shard lane window whose keyed drop decisions depend only on (plan
// seed, stream uid, frame seq) — shard-count invariant, so LOSS sits on
// the differential path). Weight pushes and evictions
// from recovery are posted to the affected client's shard one lookahead
// later — the modelled control-plane push latency — so they are
// deterministic and identical at every shard count.
//
// Determinism witness: each stream folds every completed frame's breakdown
// into a running FNV-1a digest on its own shard; metricsJson() serializes
// per-stream digests and outcome counters in stream order. Two runs of the
// same config agree byte for byte regardless of shard count (the CI smoke
// literally `cmp`s shards=1 vs shards=4 output).

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/topology.hpp"
#include "core/admission.hpp"
#include "core/defragmenter.hpp"
#include "core/failure_recovery.hpp"
#include "core/overload_supervisor.hpp"
#include "core/reclamation.hpp"
#include "dataplane/dataplane.hpp"
#include "models/registry.hpp"
#include "scenario/engine.hpp"
#include "scenario/spec.hpp"
#include "sim/fault_injector.hpp"
#include "sim/sharded_sim.hpp"
#include "testbed/degradation.hpp"
#include "util/status.hpp"

namespace microedge {

// Scenario engine attachment (DESIGN.md §15): when enabled, the spec is
// compiled at construction and its whole timeline — envelope rate updates,
// churn joins/leaves, correlated failures — is pre-armed as emitter-tagged
// events on the owner shards, exactly like a fault plan. Scenario runs keep
// the cross-shard-count byte-identity witness through the tick lattice
// (testbed/rate_control.hpp): they require rack-local, vRPi-hosted streams
// (crossRackStride == 0, streamsPerTRpi == 0) so every stream shares one
// arrival-time constant, and a quantum larger than the stream count so each
// stream owns a unique tick residue.
struct ScenarioRunConfig {
  bool enabled = false;
  ScenarioSpec spec;
  // Nominal deadline for SLO-attainment accounting (the per-phase
  // deadlineMet counter); falls back to frameDeadline when zero. Purely an
  // accounting bound — it never sheds or times out frames, so policy "none"
  // runs can still be judged against the bound the others enforce.
  SimDuration sloDeadline{};
  // Gap between a departing camera's drain (task + client stop) and the
  // release of its admitted units back to the rack pool.
  SimDuration drainGrace = milliseconds(250);
};

struct ShardedClusterConfig {
  unsigned shards = 1;
  int racks = 2;
  int tRpisPerRack = 2;
  int vRpisPerRack = 4;
  int tpusPerTRpi = 1;
  // Camera streams hosted per RPi. vRPis are the classic camera hosts;
  // tRPis can host streams too (they are full RPis that happen to carry
  // TPUs) — that is what grids the 10k-node city slice out to 100k+
  // streams without growing the node count. Stream order: all vRPi
  // streams (host-major), then all tRPi streams, so the default
  // (1 per vRPi, 0 per tRPi) reproduces the historical stream set, uids
  // and phases exactly.
  int streamsPerVRpi = 1;
  int streamsPerTRpi = 0;
  // Window-bound mode for the sharded run (fire traces are identical in
  // both; kAdaptive widens windows on the ECSB — see sim/sharded_sim.hpp).
  // The harness emitter-tags every cross-shard cascade root, which is what
  // makes kAdaptive sound here.
  ShardedSim::WindowBound windowBound = ShardedSim::WindowBound::kFixed;
  // Rack->shard placement policy. kBlock keeps stride-to-next-rack streams
  // shard-local except at block boundaries, which is what gives the
  // adaptive bound its long emitter-free stretches.
  RackMapping rackMapping = RackMapping::kRoundRobin;
  std::string model = "mobilenet-v1";
  double fps = 15.0;
  // 0 => profile from the model's zoo service time at `fps`.
  double tpuUnits = 0.0;
  // Deadline for rack-local streams; zero disables (cross-rack streams are
  // always deadline-free — see header).
  SimDuration frameDeadline{};
  std::uint32_t maxFailovers = 1;
  LbHealthConfig lbHealth{};
  // Every `crossRackStride`-th camera targets the next rack's TPUs
  // (cross-shard when racks land on different shards); 0 = all rack-local.
  int crossRackStride = 0;
  // ShardedSim::setBarrierRelief budget: max windows per empty-mailbox
  // episode advanced on the light-weight sub-barrier. 1 disables relief;
  // digests are identical at any value (see sharded_sim.hpp).
  unsigned barrierRelief = 8;
  PackingStrategy strategy = PackingStrategy::kFirstFit;
  LbSpread spread = LbSpread::kSmooth;
  TpuHardwareConfig tpuConfig{};
  NetworkConfig networkConfig{};
  // Per-frame admission for every rack-local stream's client (cross-rack
  // streams run deadline-free, which disables the ledger's estimate). Off
  // keeps the submit path — and the default dump — byte-identical.
  FrameAdmissionConfig frameAdmission{};
  // Per-stream fps-ladder degradation. With the scenario lattice (quantum
  // > 0) re-timed streams keep their unique tick residues, so degraded runs
  // stay on the cross-shard-count byte-identity path; without it they are
  // deterministic and seed-replayable per shard count only (see
  // rate_control.hpp).
  DegradationConfig degradation{};
  // Time-varying workload driven by the scenario engine (off by default —
  // the default dump is byte-identical to a build without it).
  ScenarioRunConfig scenario{};
  // SLO-attainment-triggered repacking, one supervisor per rack on the
  // rack's own shard (off by default).
  RepackSupervisorConfig repack{};
};

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterConfig config = {});
  ~ShardedCluster();

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  // Setup status: admission or load failures at construction land here
  // instead of throwing (tests assert ok()).
  const Status& setupStatus() const { return setupStatus_; }

  // Pre-arms a replayable fault plan (call before run; one plan per
  // instance). Events are scheduled onto their owner shards.
  void armFaults(const FaultPlan& plan);

  void run(SimDuration horizon) { sharded_->runFor(horizon); }
  // Runs the armed scenario to its horizon, segment by segment, snapshotting
  // the per-phase metrics series at every phase boundary (all shards are
  // barrier-synced between segments, so sampling reads no mid-window state).
  // Requires scenario.enabled; call at most once.
  Status runScenario();
  // Stops every camera (call between run()s, never inside one); a
  // subsequent run() then drains in-flight frames to terminal outcomes.
  void stopStreams();

  // --- Wiring access --------------------------------------------------------
  ShardedSim& shardedSim() { return *sharded_; }
  ClusterTopology& topology() { return *topology_; }
  DataPlane& dataPlane() { return *dataPlane_; }
  const ModelRegistry& zoo() const { return zoo_; }
  std::size_t streamCount() const { return streams_.size(); }

  // --- Results --------------------------------------------------------------
  struct StreamStats {
    std::string camera;
    bool crossRack = false;
    bool churn = false;      // scenario churn camera (join/leave mid-run)
    bool joined = true;      // admitted and configured (false: join failed)
    bool departed = false;   // drained out by a scenario leave event
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadlineMet = 0;  // completed within the SLO deadline
    std::uint64_t failovers = 0;
    std::uint64_t degradeDowns = 0;  // fps-ladder steps down (0 when off)
    std::uint64_t degradeUps = 0;    // recovery steps back up
    std::array<std::uint64_t, kFrameOutcomeCount> outcomes{};
    std::uint64_t digest = 0;  // FNV-1a over completed breakdowns, in order
  };
  StreamStats streamStats(std::size_t index) const;

  // One scenario phase's windowed metrics (deltas between boundaries except
  // where noted). Deterministic counter arithmetic only — the series is part
  // of the byte-compared scenario dump.
  struct PhaseStats {
    std::string name;
    SimDuration end{};
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadlineMet = 0;
    std::uint64_t admissionRejected = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t shed = 0;
    std::uint64_t degradeDowns = 0;
    std::uint64_t degradeUps = 0;
    std::uint64_t repacks = 0;
    std::uint64_t activeStreams = 0;  // tasks running at the boundary
    std::vector<std::uint64_t> rungOccupancy;  // streams per ladder rung
    double attainment = 1.0;  // deadlineMet / completed over the phase
    double goodputFps = 0.0;  // deadlineMet / phase seconds
  };
  const std::vector<PhaseStats>& phaseStats() const { return phases_; }
  std::uint64_t totalDeadlineMet() const;
  // Repacks triggered across all rack supervisors (0 with repack off).
  std::uint64_t totalRepacks() const;
  std::uint64_t totalSubmitted() const;
  std::uint64_t totalCompleted() const;
  std::uint64_t outcomeTotal(FrameOutcome outcome) const;
  // Degradation step events across all streams (zero with degradation off).
  std::uint64_t totalDegradeDowns() const;
  std::uint64_t totalDegradeUps() const;
  // Order-fixed fold of every stream's digest: the one number two runs (at
  // any shard count) must agree on.
  std::uint64_t digest() const;
  // Deterministic serialization of the full result surface (per-stream and
  // totals) — what the CI determinism smoke byte-compares. With
  // `withSimStats`, appends a "sim" section (windows advanced, relief/
  // adaptive windows, events-per-window histogram, per-shard barrier stall
  // wall-nanos). The section is opt-in because window counts differ by
  // shard count/window mode and stall time is wall-clock — none of it
  // belongs in the byte-compared default dump.
  std::string metricsJson(bool withSimStats = false) const;

 private:
  struct Stream;
  struct RackControl;

  unsigned shardOfName(const std::string& nodeName) const;
  Stream* streamByUid(std::uint64_t uid);
  // Control-plane pushes toward a pod's client (weights / eviction) land on
  // the client's shard one lookahead later — at EVERY shard count, so solo
  // and sharded runs observe the identical push time.
  void pushLbConfig(std::uint64_t uid, const LbConfig& lb);
  void evictStream(std::uint64_t uid);
  void armTpuFailure(const std::string& tpuId, SimTime at,
                     SimDuration detectionDelay);
  // Scenario wiring (all no-ops with scenario off).
  Status validateScenario(std::size_t totalStreams) const;
  // Smallest lattice timestamp strictly after `notBefore` owned by `uid`
  // (t ≡ uid mod quantum — see rate_control.hpp).
  SimTime latticeTick(SimTime notBefore, std::uint64_t uid) const;
  // Mid-run admission of a churn camera; runs as an event on the stream's
  // shard at its join time.
  void joinStream(Stream* stream);
  void armScenarioTimeline();
  void armRepackSupervisors();
  void samplePhase(std::size_t phase);

  ShardedClusterConfig config_;
  ModelRegistry zoo_;
  std::unique_ptr<ShardedSim> sharded_;
  std::unique_ptr<ClusterTopology> topology_;
  std::unique_ptr<DataPlane> dataPlane_;
  std::vector<std::unique_ptr<RackControl>> racks_;
  std::vector<std::unique_ptr<Stream>> streams_;
  Status setupStatus_ = Status::ok();
  bool faultsArmed_ = false;
  // Scenario state (empty/zero with scenario off).
  CompiledScenario compiled_;
  double streamUnits_ = 0.0;      // admitted units per stream (churn joins)
  SimDuration sloDeadline_{};     // deadlineMet accounting bound
  SimTime scenarioBase_{};        // sim time the timeline was armed at
  std::vector<PhaseStats> phases_;
  PhaseStats phaseCursor_;        // cumulative snapshot behind the deltas
  bool scenarioRan_ = false;
};

}  // namespace microedge
