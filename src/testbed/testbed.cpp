#include "testbed/testbed.hpp"

#include <cassert>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace microedge {

std::string_view toString(SchedulingMode mode) {
  switch (mode) {
    case SchedulingMode::kBaselineDedicated:
      return "baseline (dedicated TPUs)";
    case SchedulingMode::kMicroEdgeNoWp:
      return "MicroEdge w/o W.P.";
    case SchedulingMode::kMicroEdgeWp:
      return "MicroEdge w/ W.P.";
  }
  return "unknown";
}

Testbed::Testbed(TestbedConfig config)
    : config_(config), zoo_(zoo::standardZoo()),
      topology_(sim_, zoo_, config_.topology), rng_(config_.seed) {
  // Register nodes with the orchestrator; tRPis are labelled so specs can
  // target or avoid them.
  for (const auto& node : topology_.nodes()) {
    Status s = nodes_.addNode(
        node->name(), node->resources().cpuMillicores,
        node->resources().memoryMb,
        {{"tpu", node->isTRpi() ? "true" : "false"}});
    assert(s.isOk());
    (void)s;
  }
  // The TPU Service process consumes CPU/memory on every tRPi from cluster
  // boot; reserving it up front also steers application pods toward vRPis.
  for (const RpiNode* trpi : topology_.tRpis()) {
    PodSpec system;
    system.name = strCat("tpu-service-", trpi->name());
    system.resources = {1000, 512};
    Status s = nodes_.allocate(trpi->name(), system);
    assert(s.isOk());
    (void)s;
  }
  for (const auto& tpu : topology_.tpus()) {
    Status s = pool_.addTpu(tpu->id(), tpu->config().paramMemoryMb);
    assert(s.isOk());
    (void)s;
  }

  api_ = std::make_unique<ApiServer>(nodes_, [this] { return sim_.now(); });
  dataPlane_ = std::make_unique<DataPlane>(sim_, topology_, zoo_);

  if (config_.mode == SchedulingMode::kBaselineDedicated) {
    baselineAllocator_ = std::make_unique<DedicatedAllocator>(pool_, zoo_);
    allocator_ = baselineAllocator_.get();
  } else {
    AdmissionConfig admission;
    admission.enableWorkloadPartitioning =
        config_.mode == SchedulingMode::kMicroEdgeWp;
    admission.enableCoCompile = config_.enableCoCompile;
    admission.strategy = config_.strategy;
    microEdgeAllocator_ =
        std::make_unique<AdmissionController>(pool_, zoo_, admission);
    allocator_ = microEdgeAllocator_.get();
  }
  reclamation_ = std::make_unique<Reclamation>(*allocator_);

  ExtendedScheduler::Callbacks callbacks;
  callbacks.loadModel = callbacksLoadModel();
  scheduler_ = std::make_unique<ExtendedScheduler>(*allocator_, *reclamation_,
                                                   std::move(callbacks));
  api_->setSchedulerExtension(
      [this](const Pod& pod, const std::vector<std::string>& candidates) {
        return scheduler_->schedule(pod, candidates);
      });

  FailureRecovery::Callbacks recovery;
  // Recovery replans race with hung-but-alive services: a transient Load
  // failure retries in the background with bounded backoff (optimistically
  // reported as success to the replanner); a missing service is permanent
  // and the error propagates so recovery evicts instead of waiting.
  recovery.loadModel = [this](const LoadCommand& command) {
    Status s = dataPlane_->executeLoad(command);
    if (s.isOk() || dataPlane_->service(command.tpuId) == nullptr) return s;
    dataPlane_->executeLoadWithRetry(command, config_.loadRetryBackoff, {});
    return Status::ok();
  };
  recovery.reconfigureLb = [this](std::uint64_t uid, const LbConfig& config) {
    reconfigurePodLb(uid, config);
  };
  recovery.evictPod = [this](std::uint64_t uid, const Status& reason) {
    evictPodByUid(uid, reason);
  };
  failureRecovery_ = std::make_unique<FailureRecovery>(
      *allocator_, *reclamation_, std::move(recovery));
  if (microEdgeAllocator_ != nullptr) {
    Defragmenter::Callbacks defrag;
    defrag.loadModel = callbacksLoadModel();
    defrag.reconfigureLb = [this](std::uint64_t uid, const LbConfig& config) {
      reconfigurePodLb(uid, config);
    };
    defragmenter_ = std::make_unique<Defragmenter>(
        *microEdgeAllocator_, *reclamation_, std::move(defrag));
  }

  std::vector<TpuDevice*> devices;
  for (const auto& tpu : topology_.tpus()) devices.push_back(tpu.get());
  utilization_ = std::make_unique<UtilizationTracker>(
      sim_, std::move(devices), config_.utilizationWindow);
  reclamationTask_ = std::make_unique<PeriodicTask>(
      sim_, config_.reclamationPeriod, [this] { pollReclamationNow(); });
  if (config_.repack.enabled && defragmenter_ != nullptr) {
    // Attainment sample: completed / terminal across every stream that ever
    // ran. The supervisor differences successive samples, so the window
    // signal reacts to *current* misery, not run-lifetime averages.
    repackSupervisor_ = std::make_unique<RepackSupervisor>(
        config_.repack,
        [this]() -> RepackSupervisor::Sample {
          RepackSupervisor::Sample s;
          for (const SloMonitor* m : collectSloMonitors()) {
            s.good += m->completed();
            s.total += m->completed() + m->dropped();
          }
          return s;
        },
        [this] { return defragmenter_->replanAll(); });
    repackTask_ = std::make_unique<PeriodicTask>(
        sim_, config_.repack.window, [this] { repackSupervisor_->onWindow(); });
  }
}

std::function<Status(const LoadCommand&)> Testbed::callbacksLoadModel() {
  return [this](const LoadCommand& command) {
    return dataPlane_->executeLoad(command);
  };
}

double Testbed::profiledUnits(const std::string& model, double fps) const {
  return zoo_.at(model).tpuUnitsAt(fps);
}

PodSpec Testbed::buildPodSpec(const CameraDeployment& deployment) const {
  PodSpec spec;
  spec.name = deployment.name;
  spec.image = "microedge/camera-app:1.0";
  spec.fps = deployment.fps;
  spec.resources = {deployment.cpuMillicores, deployment.memoryMb};
  double units = deployment.tpuUnits > 0.0
                     ? deployment.tpuUnits
                     : profiledUnits(deployment.model, deployment.fps);
  spec.tpu = TpuRequest{deployment.model, units};
  spec.labels = {{"app", "camera"}};
  return spec;
}

SloMonitor::Config Testbed::sloConfigFor(
    const CameraDeployment& deployment) const {
  SloMonitor::Config slo;
  // With a difference detector the inference rate is content dependent, so
  // the throughput check switches off and queue/latency checks carry it.
  slo.targetFps = deployment.useDiffDetector ? 0.0 : deployment.fps;
  slo.latencyBound = deployment.latencyBound;
  slo.maxOutstanding = 8;
  return slo;
}

StatusOr<std::unique_ptr<TpuClient>> Testbed::deployClient(
    const CameraDeployment& deployment, std::uint64_t* uid) {
  auto created = api_->createPod(buildPodSpec(deployment));
  if (!created.isOk()) return created.status();
  *uid = *created;

  const Allocation* allocation = reclamation_->allocationOf(*uid);
  assert(allocation != nullptr && !allocation->shares.empty());
  const Pod* pod = api_->getPod(*uid);
  assert(pod != nullptr);
  // The bare-metal baseline collocates the application with its dedicated
  // TPU (no network hop); MicroEdge runs it wherever K3s bound the pod.
  std::string clientNode =
      config_.mode == SchedulingMode::kBaselineDedicated
          ? topology_.nodeOfTpu(allocation->shares.front().tpuId)
          : pod->nodeName;

  TpuClient::Config clientConfig;
  clientConfig.clientNode = clientNode;
  clientConfig.model = deployment.model;
  clientConfig.spread = config_.spread;
  clientConfig.frameDeadline = deployment.frameDeadline > SimDuration::zero()
                                   ? deployment.frameDeadline
                                   : config_.frameDeadline;
  clientConfig.maxFailovers = config_.maxFailovers;
  clientConfig.health = config_.lbHealth;
  clientConfig.admission = config_.frameAdmission;
  auto client = dataPlane_->makeClient(std::move(clientConfig));
  const LbConfig* lb = scheduler_->lbConfig(*uid);
  if (lb == nullptr) {
    (void)api_->deletePod(*uid);
    return internalError(
        strCat("pod ", deployment.name, ": no LB config after admission"));
  }
  Status configured = client->configureLb(*lb);
  if (!configured.isOk()) {
    (void)api_->deletePod(*uid);
    return configured;
  }
  return client;
}

StatusOr<CameraPipeline*> Testbed::deployCamera(
    const CameraDeployment& deployment) {
  if (cameras_.count(deployment.name) > 0) {
    return alreadyExists(strCat("camera ", deployment.name, " already live"));
  }
  std::uint64_t uid = 0;
  auto client = deployClient(deployment, &uid);
  if (!client.isOk()) return client.status();

  CameraPipeline::Config config;
  config.name = deployment.name;
  config.fps = deployment.fps;
  config.maxFrames = deployment.maxFrames;
  if (deployment.useDiffDetector) config.diffDetector = deployment.diffConfig;
  config.slo = sloConfigFor(deployment);

  CameraInstance instance;
  instance.uid = uid;
  instance.pipeline = std::make_unique<CameraPipeline>(
      sim_, std::move(client).value(), std::move(config), rng_.split());
  CameraPipeline* pipeline = instance.pipeline.get();
  cameras_.emplace(deployment.name, std::move(instance));
  pipeline->start();
  return pipeline;
}

Status Testbed::removeCamera(const std::string& name) {
  auto it = cameras_.find(name);
  if (it == cameras_.end()) {
    return notFound(strCat("camera ", name, " not deployed"));
  }
  it->second.pipeline->stop();
  Status s = api_->deletePodByName(name);
  retiredCameras_.push_back(std::move(it->second));
  cameras_.erase(it);
  return s;
}

CameraPipeline* Testbed::findCamera(const std::string& name) {
  auto it = cameras_.find(name);
  return it == cameras_.end() ? nullptr : it->second.pipeline.get();
}

std::vector<CameraPipeline*> Testbed::liveCameras() {
  std::vector<CameraPipeline*> out;
  out.reserve(cameras_.size());
  for (auto& [name, instance] : cameras_) out.push_back(instance.pipeline.get());
  return out;
}

StatusOr<CoralPieApp*> Testbed::deployCoralPie(
    const CameraDeployment& deployment) {
  if (coralPies_.count(deployment.name) > 0) {
    return alreadyExists(strCat("coral-pie ", deployment.name, " already live"));
  }
  std::uint64_t uid = 0;
  auto client = deployClient(deployment, &uid);
  if (!client.isOk()) return client.status();

  // The second RPi of the Coral-Pie pair: a plain CPU pod for re-id.
  PodSpec reidSpec;
  reidSpec.name = deployment.name + "-reid";
  reidSpec.image = "microedge/coral-pie-reid:1.0";
  reidSpec.resources = {1500, 1024};
  reidSpec.labels = {{"app", "coral-pie-reid"}};
  auto reidCreated = api_->createPod(reidSpec);
  if (!reidCreated.isOk()) {
    (void)api_->deletePod(uid);
    return reidCreated.status();
  }
  const Pod* reidPod = api_->getPod(*reidCreated);
  assert(reidPod != nullptr);

  CoralPieApp::Config config;
  config.name = deployment.name;
  config.fps = deployment.fps;
  config.maxFrames = deployment.maxFrames;
  config.useDiffDetector = deployment.useDiffDetector;
  config.diffConfig = deployment.diffConfig;
  config.reid.node = reidPod->nodeName;
  config.slo = sloConfigFor(deployment);
  config.vehicleIdBase = nextVehicleBase_;
  nextVehicleBase_ += 1000000;

  CoralPieInstance instance;
  instance.uid = uid;
  instance.reidUid = *reidCreated;
  instance.app = std::make_unique<CoralPieApp>(
      sim_, std::move(client).value(), dataPlane_->transport(),
      std::move(config), rng_.split());
  CoralPieApp* app = instance.app.get();
  coralPies_.emplace(deployment.name, std::move(instance));
  app->start();
  return app;
}

Status Testbed::removeCoralPie(const std::string& name) {
  auto it = coralPies_.find(name);
  if (it == coralPies_.end()) {
    return notFound(strCat("coral-pie ", name, " not deployed"));
  }
  it->second.app->stop();
  Status s1 = api_->deletePod(it->second.uid);
  Status s2 = api_->deletePod(it->second.reidUid);
  retiredCoralPies_.push_back(std::move(it->second));
  coralPies_.erase(it);
  return s1.isOk() ? s2 : s1;
}

std::vector<CoralPieApp*> Testbed::liveCoralPies() {
  std::vector<CoralPieApp*> out;
  for (auto& [name, instance] : coralPies_) out.push_back(instance.app.get());
  return out;
}

StatusOr<BodyPixApp*> Testbed::deployBodyPix(
    const CameraDeployment& deployment) {
  if (bodypixes_.count(deployment.name) > 0) {
    return alreadyExists(strCat("bodypix ", deployment.name, " already live"));
  }
  std::uint64_t uid = 0;
  auto client = deployClient(deployment, &uid);
  if (!client.isOk()) return client.status();

  BodyPixApp::Config config;
  config.name = deployment.name;
  config.fps = deployment.fps;
  config.maxFrames = deployment.maxFrames;
  config.slo = sloConfigFor(deployment);

  BodyPixInstance instance;
  instance.uid = uid;
  instance.app = std::make_unique<BodyPixApp>(
      sim_, std::move(client).value(), std::move(config), rng_.split());
  BodyPixApp* app = instance.app.get();
  bodypixes_.emplace(deployment.name, std::move(instance));
  app->start();
  return app;
}

StatusOr<CascadeApp*> Testbed::deployCascade(
    const CascadeDeployment& deployment) {
  if (cascades_.count(deployment.name) > 0) {
    return alreadyExists(
        strCat("cascade ", deployment.name, " already live"));
  }
  auto gateInfo = zoo_.find(deployment.gateModel);
  if (!gateInfo.isOk()) return gateInfo.status();
  auto expertInfo = zoo_.find(deployment.expertModel);
  if (!expertInfo.isOk()) return expertInfo.status();

  // Stage pods: the gate sees every frame; the expert only the escalated
  // fraction — its fractional duty cycle is MicroEdge's bread and butter.
  CameraDeployment gatePod;
  gatePod.name = deployment.name + "-gate";
  gatePod.model = deployment.gateModel;
  gatePod.fps = deployment.fps;
  gatePod.cpuMillicores = deployment.cpuMillicores;
  gatePod.memoryMb = deployment.memoryMb;
  std::uint64_t gateUid = 0;
  auto gateClient = deployClient(gatePod, &gateUid);
  if (!gateClient.isOk()) return gateClient.status();

  CameraDeployment expertPod;
  expertPod.name = deployment.name + "-expert";
  expertPod.model = deployment.expertModel;
  expertPod.fps = deployment.fps;
  expertPod.tpuUnits = CascadeApp::expertUnits(*expertInfo, deployment.fps,
                                               deployment.expectedHitRate);
  expertPod.cpuMillicores = deployment.cpuMillicores;
  expertPod.memoryMb = deployment.memoryMb;
  std::uint64_t expertUid = 0;
  auto expertClient = deployClient(expertPod, &expertUid);
  if (!expertClient.isOk()) {
    (void)api_->deletePod(gateUid);
    pollReclamationNow();
    return expertClient.status();
  }

  CascadeApp::Config config;
  config.name = deployment.name;
  config.fps = deployment.fps;
  config.maxFrames = deployment.maxFrames;
  config.scene = deployment.scene;
  config.quietEscalationRate = deployment.quietEscalationRate;
  config.slo.targetFps = deployment.fps;

  CascadeInstance instance;
  instance.gateUid = gateUid;
  instance.expertUid = expertUid;
  instance.app = std::make_unique<CascadeApp>(
      sim_, std::move(gateClient).value(), std::move(expertClient).value(),
      std::move(config), rng_.split());
  CascadeApp* app = instance.app.get();
  cascades_.emplace(deployment.name, std::move(instance));
  app->start();
  return app;
}

Status Testbed::removeCascade(const std::string& name) {
  auto it = cascades_.find(name);
  if (it == cascades_.end()) {
    return notFound(strCat("cascade ", name, " not deployed"));
  }
  it->second.app->stop();
  Status s1 = api_->deletePod(it->second.gateUid);
  Status s2 = api_->deletePod(it->second.expertUid);
  retiredCascades_.push_back(std::move(it->second));
  cascades_.erase(it);
  return s1.isOk() ? s2 : s1;
}

std::vector<CascadeApp*> Testbed::liveCascades() {
  std::vector<CascadeApp*> out;
  for (auto& [name, instance] : cascades_) out.push_back(instance.app.get());
  return out;
}

std::vector<BodyPixApp*> Testbed::liveBodyPixes() {
  std::vector<BodyPixApp*> out;
  for (auto& [name, instance] : bodypixes_) out.push_back(instance.app.get());
  return out;
}

void Testbed::startBackgroundTasks() {
  if (backgroundStarted_) return;
  backgroundStarted_ = true;
  utilization_->start();
  reclamationTask_->start();
  if (repackTask_ != nullptr) repackTask_->start();
}

void Testbed::run(SimDuration horizon) {
  startBackgroundTasks();
  sim_.runFor(horizon);
}

void Testbed::pollReclamationNow() {
  reclamation_->pollOnce(
      [this](std::uint64_t uid) { return api_->isAlive(uid); },
      [this](std::uint64_t uid) { scheduler_->forgetPod(uid); });
}

TpuClient* Testbed::clientForUid(std::uint64_t uid) {
  for (auto& [name, instance] : cameras_) {
    if (instance.uid == uid) return &instance.pipeline->client();
  }
  for (auto& [name, instance] : coralPies_) {
    if (instance.uid == uid) return &instance.app->detection().client();
  }
  for (auto& [name, instance] : bodypixes_) {
    if (instance.uid == uid) return &instance.app->pipeline().client();
  }
  for (auto& [name, instance] : cascades_) {
    if (instance.gateUid == uid) return &instance.app->gateClient();
    if (instance.expertUid == uid) return &instance.app->expertClient();
  }
  return nullptr;
}

void Testbed::reconfigurePodLb(std::uint64_t uid, const LbConfig& config) {
  scheduler_->recordLbConfig(uid, config);
  TpuClient* client = clientForUid(uid);
  if (client == nullptr) return;  // control-plane-only pod (tests)
  Status s = client->configureLb(config);
  if (!s.isOk()) {
    ME_LOG(kError) << "LB reconfiguration for pod uid " << uid
                   << " failed: " << s.toString();
  }
}

void Testbed::evictPodByUid(std::uint64_t uid, const Status& reason) {
  ME_LOG(kWarning) << "evicting pod uid " << uid << ": " << reason.toString();
  scheduler_->forgetPod(uid);
  // Stop the application's frame flow, then terminate the pod.
  for (auto it = cameras_.begin(); it != cameras_.end(); ++it) {
    if (it->second.uid == uid) {
      it->second.pipeline->stop();
      retiredCameras_.push_back(std::move(it->second));
      cameras_.erase(it);
      break;
    }
  }
  for (auto it = coralPies_.begin(); it != coralPies_.end(); ++it) {
    if (it->second.uid == uid) {
      it->second.app->stop();
      (void)api_->failPod(it->second.reidUid);
      retiredCoralPies_.push_back(std::move(it->second));
      coralPies_.erase(it);
      break;
    }
  }
  for (auto it = bodypixes_.begin(); it != bodypixes_.end(); ++it) {
    if (it->second.uid == uid) {
      it->second.app->stop();
      retiredBodyPixes_.push_back(std::move(it->second));
      bodypixes_.erase(it);
      break;
    }
  }
  for (auto it = cascades_.begin(); it != cascades_.end(); ++it) {
    if (it->second.gateUid == uid || it->second.expertUid == uid) {
      // Losing either stage kills the pipeline; terminate the sibling too.
      it->second.app->stop();
      std::uint64_t sibling =
          it->second.gateUid == uid ? it->second.expertUid : it->second.gateUid;
      if (api_->isAlive(sibling)) (void)api_->failPod(sibling);
      retiredCascades_.push_back(std::move(it->second));
      cascades_.erase(it);
      break;
    }
  }
  if (api_->isAlive(uid)) (void)api_->failPod(uid);
}

FailureRecovery::Report Testbed::failTpu(const std::string& tpuId) {
  ME_LOG(kInfo) << "injecting failure of " << tpuId;
  // Data plane first: the service stops answering; in-flight routes drop.
  dataPlane_->removeService(tpuId);
  Status removed = pool_.removeTpu(tpuId);
  if (!removed.isOk()) {
    ME_LOG(kWarning) << "failTpu: " << removed.toString();
    return {};
  }
  return failureRecovery_->onTpuFailure(tpuId);
}

Testbed::NodeFailureReport Testbed::failNode(const std::string& nodeName) {
  NodeFailureReport report;
  RpiNode* node = topology_.findNode(nodeName);
  if (node == nullptr) {
    ME_LOG(kWarning) << "failNode: unknown node " << nodeName;
    return report;
  }
  ME_LOG(kInfo) << "injecting failure of node " << nodeName;
  Status ready = nodes_.setReady(nodeName, false);
  (void)ready;

  // Pods hosted on the dead RPi die with it.
  std::vector<std::uint64_t> lost;
  for (const Pod* pod : api_->livePods()) {
    if (pod->nodeName == nodeName) lost.push_back(pod->uid);
  }
  for (std::uint64_t uid : lost) {
    evictPodByUid(uid, unavailable(strCat("node ", nodeName, " failed")));
  }
  report.podsLost = lost.size();
  // Their TPU units return to the pool before the TPU recovery replans.
  pollReclamationNow();

  // Attached TPUs are gone; recover their tenants onto survivors.
  for (TpuDevice* tpu : node->tpus()) {
    dataPlane_->removeService(tpu->id());
    Status removed = pool_.removeTpu(tpu->id());
    if (!removed.isOk()) continue;  // already failed earlier
    ++report.tpusLost;
    FailureRecovery::Report r = failureRecovery_->onTpuFailure(tpu->id());
    report.recovery.affectedPods += r.affectedPods;
    report.recovery.recoveredPods += r.recoveredPods;
    report.recovery.evictedPods += r.evictedPods;
    report.recovery.reshapedPods += r.reshapedPods;
  }
  return report;
}

Status Testbed::applyScenario(const ScenarioSpec& spec,
                              const CameraDeployment& churnTemplate) {
  if (scenarioArmed_) {
    return failedPrecondition("applyScenario: one scenario per testbed");
  }
  Status valid = spec.validate();
  if (!valid.isOk()) return valid;
  scenarioArmed_ = true;
  const CompiledScenario compiled = compileScenario(spec, /*tenants=*/1);
  const SimTime base = sim_.now();

  // Envelope: every update retunes all cameras live right now through their
  // rate arbiters, so a degrader rung applied later composes instead of
  // being overwritten.
  for (CameraPipeline* pipeline : liveCameras()) {
    scenarioRates_.push_back(std::make_unique<StreamRateControl>(
        pipeline->camera().task(), pipeline->camera().framePeriodDuration()));
  }
  for (const ScenarioRateUpdate& update : compiled.rateUpdates) {
    sim_.schedule(base + update.at, [this, m = update.multiplier] {
      for (const auto& rate : scenarioRates_) rate->setEnvelope(m);
    });
  }

  // Churn: each compiled entry deploys its own camera (join) and removes it
  // again (leave) — ordinary control-plane calls, just fired from events
  // instead of between run() segments. Removed pipelines retire, not die,
  // so in-flight frames drain to terminal outcomes as usual.
  int index = 0;
  for (const ScenarioChurnCamera& cam : compiled.churn) {
    CameraDeployment deployment = churnTemplate;
    if (deployment.model.empty()) deployment.model = zoo::kMobileNetV1;
    if (deployment.name.empty()) deployment.name = "scenario-cam";
    deployment.name = strCat(deployment.name, "-", index++);
    if (cam.joinAt > SimDuration::zero()) {
      sim_.schedule(base + cam.joinAt, [this, deployment] {
        StatusOr<CameraPipeline*> joined = deployCamera(deployment);
        if (!joined.isOk()) {
          ME_LOG(kWarning) << "scenario join " << deployment.name
                           << " failed: " << joined.status().toString();
        }
      });
    } else {
      StatusOr<CameraPipeline*> deployed = deployCamera(deployment);
      if (!deployed.isOk()) return deployed.status();
    }
    if (cam.leaveAt > SimDuration::zero()) {
      sim_.schedule(base + cam.leaveAt, [this, name = deployment.name] {
        Status left = removeCamera(name);
        if (!left.isOk()) {
          ME_LOG(kWarning) << "scenario leave " << name
                           << " failed: " << left.toString();
        }
      });
    }
  }

  // Correlated failures ride the standard fault-plan path (single-tenant:
  // every tRPi sits in group 0).
  std::vector<std::vector<std::string>> nodesByRack(1);
  for (RpiNode* node : topology_.tRpis()) {
    nodesByRack[0].push_back(node->name());
  }
  FaultPlan plan = compileScenarioFaults(spec, nodesByRack);
  if (!plan.events.empty()) armFaults(plan);
  return Status::ok();
}

FaultInjector& Testbed::armFaults(const FaultPlan& plan) {
  assert(faultInjector_ == nullptr && "one fault plan per testbed");
  FaultInjector::Hooks hooks;
  // Crash, data-plane edge: the service vanishes; registered clients fail
  // over immediately. Pool + recovery learn nothing until detection.
  hooks.tpuFailDataPlane = [this](const std::string& tpuId) {
    dataPlane_->removeService(tpuId);
  };
  // Crash, control-plane edge: health checks caught up — full failTpu path
  // (removeService is an idempotent no-op by now).
  hooks.tpuFailControlPlane = [this](const std::string& tpuId) {
    (void)failTpu(tpuId);
  };
  hooks.nodeFailDataPlane = [this](const std::string& nodeName) {
    RpiNode* node = topology_.findNode(nodeName);
    if (node == nullptr) return;
    for (TpuDevice* tpu : node->tpus()) dataPlane_->removeService(tpu->id());
  };
  hooks.nodeFailControlPlane = [this](const std::string& nodeName) {
    (void)failNode(nodeName);
  };
  hooks.setTpuHung = [this](const std::string& tpuId, bool hung) {
    TpuService* service = dataPlane_->service(tpuId);
    if (service != nullptr) service->setHung(hung);
  };
  hooks.setTransportFault = [this](double loss, double latencyMultiplier,
                                   std::uint64_t seed) {
    dataPlane_->transport().setFault(loss, latencyMultiplier, seed);
  };
  hooks.clearTransportFault = [this] { dataPlane_->transport().clearFault(); };
  faultInjector_ = std::make_unique<FaultInjector>(sim_, std::move(hooks));
  faultInjector_->arm(plan);
  return *faultInjector_;
}

Defragmenter::Report Testbed::defragment(bool full) {
  if (defragmenter_ == nullptr) return {};  // dedicated baseline: nothing to do
  return full ? defragmenter_->replanAll() : defragmenter_->consolidate();
}

std::vector<const CameraPipeline*> Testbed::allCameras() const {
  std::vector<const CameraPipeline*> out;
  for (const auto& [name, instance] : cameras_) {
    out.push_back(instance.pipeline.get());
  }
  for (const auto& instance : retiredCameras_) {
    out.push_back(instance.pipeline.get());
  }
  return out;
}

std::vector<const SloMonitor*> Testbed::collectSloMonitors() const {
  std::vector<const SloMonitor*> monitors;
  auto addPipeline = [&monitors](const CameraPipeline& p) {
    monitors.push_back(&p.slo());
  };
  for (const auto& [name, i] : cameras_) addPipeline(*i.pipeline);
  for (const auto& i : retiredCameras_) addPipeline(*i.pipeline);
  for (const auto& [name, i] : coralPies_) addPipeline(i.app->detection());
  for (const auto& i : retiredCoralPies_) addPipeline(i.app->detection());
  for (const auto& [name, i] : bodypixes_) addPipeline(i.app->pipeline());
  for (const auto& i : retiredBodyPixes_) addPipeline(i.app->pipeline());
  for (const auto& [name, i] : cascades_) monitors.push_back(&i.app->slo());
  for (const auto& i : retiredCascades_) monitors.push_back(&i.app->slo());
  return monitors;
}

SloReport Testbed::sloReport() const {
  return summarizeSlo(collectSloMonitors());
}

}  // namespace microedge
