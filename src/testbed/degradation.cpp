#include "testbed/degradation.hpp"

#include <cmath>

namespace microedge {

void StreamDegrader::onFrame() {
  if (!config_.enabled) return;
  ++terminals_;
  if (terminals_ % config_.windowFrames != 0) return;
  ++windowsObserved_;

  const std::uint64_t bad =
      client_.outcomeCount(FrameOutcome::kAdmissionRejected) +
      client_.outcomeCount(FrameOutcome::kTimedOut) +
      client_.outcomeCount(FrameOutcome::kShed);
  const std::uint64_t dBad = bad - prevBad_;
  prevBad_ = bad;
  const double pressure =
      static_cast<double>(dBad) / static_cast<double>(config_.windowFrames);

  if (pressure >= config_.stepDownPressure) {
    cleanStreak_ = 0;
    if (++pressStreak_ >= config_.sustainWindows &&
        rung_ + 1 < config_.ladder.size()) {
      ++rung_;
      ++stepDowns_;
      pressStreak_ = 0;
      applyRung();
    }
    return;
  }
  pressStreak_ = 0;
  if (rung_ > 0 && ++cleanStreak_ >= config_.coolDownWindows) {
    --rung_;
    ++stepUps_;
    cleanStreak_ = 0;
    applyRung();
  }
}

void StreamDegrader::applyRung() {
  // Hand the rung multiplier to the arbiter, which composes it with the
  // scenario envelope and rounds (nanosecond, or the scenario lattice
  // quantum). Takes effect when the in-flight firing re-arms — no
  // cancel/reschedule, so the event schedule mutation is deterministic
  // wherever onFrame() was called from.
  rate_.setDegrade(config_.ladder[rung_]);
}

}  // namespace microedge
