#pragma once

// Serverless-style per-request scheduling comparator (§2 / §6.4.2).
//
// Cloud inference systems (Clipper, Clockwork, INFaaS, Triton) forward every
// request to a shared per-model queue and make scheduling decisions at
// runtime. The paper argues this design is wrong for a low-cost edge
// cluster: the extra data movement (frame -> dispatcher -> accelerator) and
// the per-request decision work add latency an RPi-class cluster cannot
// hide, and a runtime-chosen TPU frequently lacks the model in memory (swap
// on the critical path). This dispatcher implements exactly that design so
// the ablation bench can quantify the difference against MicroEdge's
// deployment-time allocation.

#include <cstdint>
#include <functional>
#include <string>

#include "dataplane/dataplane.hpp"
#include "metrics/breakdown.hpp"

namespace microedge {

class ServerlessDispatcher {
 public:
  struct Config {
    std::string dispatcherNode;  // host of the shared queue + scheduler
    // Runtime scheduling decision cost per request (queue ops, policy).
    SimDuration decisionCost = millisecondsF(1.5);
  };
  using CompletionCallback = std::function<void(const FrameBreakdown&)>;

  ServerlessDispatcher(Simulator& sim, DataPlane& dataPlane,
                       const ClusterTopology& topology,
                       const ModelRegistry& registry, Config config);

  // Full serverless invoke path: client pre-processes, ships the frame to
  // the dispatcher, the dispatcher picks the least-loaded TPU *at runtime*
  // and forwards the frame; the response returns directly to the client.
  Status invoke(const std::string& clientNode, const std::string& model,
                CompletionCallback done);

  std::uint64_t dispatchedCount() const { return dispatched_; }

 private:
  TpuService* pickLeastLoaded();

  Simulator& sim_;
  DataPlane& dataPlane_;
  const ClusterTopology& topology_;
  const ModelRegistry& registry_;
  Config config_;
  std::uint64_t dispatched_ = 0;
  std::uint64_t nextFrameId_ = 1;
};

}  // namespace microedge
