#include "testbed/serverless_baseline.hpp"

#include <memory>

#include "util/logging.hpp"

namespace microedge {

ServerlessDispatcher::ServerlessDispatcher(Simulator& sim,
                                           DataPlane& dataPlane,
                                           const ClusterTopology& topology,
                                           const ModelRegistry& registry,
                                           Config config)
    : sim_(sim), dataPlane_(dataPlane), topology_(topology),
      registry_(registry), config_(std::move(config)) {}

TpuService* ServerlessDispatcher::pickLeastLoaded() {
  TpuService* best = nullptr;
  std::size_t bestDepth = 0;
  for (TpuService* service : dataPlane_.services()) {
    std::size_t depth = service->device().queueDepth();
    if (best == nullptr || depth < bestDepth) {
      best = service;
      bestDepth = depth;
    }
  }
  return best;
}

Status ServerlessDispatcher::invoke(const std::string& clientNode,
                                    const std::string& model,
                                    CompletionCallback done) {
  auto info = registry_.find(model);
  if (!info.isOk()) return info.status();
  const ModelInfo modelInfo = std::move(info).value();

  auto b = std::make_shared<FrameBreakdown>();
  b->frameId = nextFrameId_++;
  b->submitted = sim_.now();
  b->preprocess = modelInfo.preprocessLatency;
  SimTransport& transport = dataPlane_.transport();

  sim_.scheduleAfter(modelInfo.preprocessLatency, [this, b, modelInfo,
                                                   clientNode, &transport,
                                                   done = std::move(done)]() mutable {
    // Hop 1: frame to the shared queue on the dispatcher node.
    SimDuration hop1 = transport.send(
        clientNode, config_.dispatcherNode, modelInfo.inputBytes(),
        [this, b, modelInfo, clientNode, &transport,
         done = std::move(done), hopStart = sim_.now()]() mutable {
          (void)hopStart;
          // Runtime scheduling decision.
          sim_.scheduleAfter(config_.decisionCost, [this, b, modelInfo,
                                                    clientNode, &transport,
                                                    done = std::move(done)]() mutable {
            TpuService* service = pickLeastLoaded();
            if (service == nullptr) {
              ME_LOG(kWarning) << "serverless dispatch: no TPU services";
              return;
            }
            ++dispatched_;
            b->servedBy = service->tpu();
            const std::string serviceNode = service->node();
            // Hop 2: frame moves again, dispatcher -> chosen tRPi.
            SimDuration hop2 = transport.send(
                config_.dispatcherNode, serviceNode, modelInfo.inputBytes(),
                [this, b, modelInfo, clientNode, serviceNode, service,
                 &transport, done = std::move(done)]() mutable {
                  Status s = service->invoke(
                      modelInfo.name,
                      [this, b, modelInfo, clientNode, serviceNode, &transport,
                       done = std::move(done)](
                          const TpuDevice::InvokeStats& stats) mutable {
                        b->queueDelay = stats.queueDelay;
                        b->inference = stats.serviceTime;
                        b->responseTransmit = transport.send(
                            serviceNode, clientNode, modelInfo.outputBytes,
                            [this, b, modelInfo,
                             done = std::move(done)]() mutable {
                              b->postprocess = modelInfo.postprocessLatency;
                              sim_.scheduleAfter(
                                  modelInfo.postprocessLatency,
                                  [this, b, done = std::move(done)]() mutable {
                                    b->completed = sim_.now();
                                    b->outcome = FrameOutcome::kCompleted;
                                    if (done) done(*b);
                                  });
                            });
                      });
                  if (!s.isOk()) {
                    ME_LOG(kWarning) << "serverless invoke failed: "
                                     << s.toString();
                  }
                });
            b->requestTransmit += hop2;
          });
        });
    b->requestTransmit += hop1 + config_.decisionCost;
  });
  return Status::ok();
}

}  // namespace microedge
